package rabid

import (
	"bytes"
	"testing"

	"repro/internal/exp"
	"repro/internal/par"
)

// TestKernelSuiteEquivalence is the pipeline-level acceptance gate of the
// search-kernel matrix, over all ten suite circuits at Workers 1/2/4/8
// (CI's test job runs it under -race):
//
//   - "dial" must be BYTE-identical to "heap": same trees, same stage
//     stats, same buffer assignments, at every worker count. The bucket
//     queue reproduces the heap's (key, node) pop order exactly, so any
//     divergence is a kernel bug, not a tie-break.
//   - "astar" must be deterministic: byte-identical to itself at every
//     worker count. Its popped order differs from heap's, so equal-cost
//     tie-breaks may pick different trees and full-pipeline bytes are NOT
//     compared against heap; the per-call cost-identity contract (equal
//     per-sink selection keys, equal reconnection costs) is proven at the
//     unit level in internal/route/kernel_test.go, including over the
//     suite circuits.
func TestKernelSuiteEquivalence(t *testing.T) {
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	workers := []int{1, 2, 4, 8}
	if err := par.ForEach(0, len(names), func(i int) error {
		name := names[i]
		g := coarseGrids[name]
		c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
		if err != nil {
			return err
		}
		run := func(kernel string, w int) []byte {
			p := BenchmarkParams(name)
			p.SearchKernel = kernel
			p.Workers = w
			res, err := Run(c, p)
			if err != nil {
				t.Errorf("%s/%s/w%d: %v", name, kernel, w, err)
				return nil
			}
			return goldenBytes(t, res)
		}
		heapBytes := run("heap", 1)
		var astarBytes []byte
		for _, w := range workers {
			if db := run("dial", w); !bytes.Equal(db, heapBytes) {
				t.Errorf("%s: dial result at Workers=%d differs from heap (must be byte-identical)", name, w)
			}
			ab := run("astar", w)
			if astarBytes == nil {
				astarBytes = ab
			} else if !bytes.Equal(ab, astarBytes) {
				t.Errorf("%s: astar result at Workers=%d differs from Workers=1 (kernel nondeterministic)", name, w)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
