package rabid

import (
	"strings"
	"testing"
)

// TestFacadeSubsystems exercises every re-exported subsystem end to end on
// one small run, ensuring the public API is sufficient without touching
// internal packages.
func TestFacadeSubsystems(t *testing.T) {
	c, err := GenerateBenchmark("hp", GenOptions{GridW: 10, GridH: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, BenchmarkParams("hp"))
	if err != nil {
		t.Fatal(err)
	}

	// Delay evaluator.
	de, err := NewDelayEvaluator(Default018(), c.TileUm)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := de.SinkDelays(res.Routes[0], res.Assignments[0].Buffers)
	if err != nil || len(ds) == 0 {
		t.Fatalf("delay eval: %v %v", ds, err)
	}

	// Slew evaluator + L derivation.
	se, err := NewSlewEvaluator(Default018(), c.TileUm)
	if err != nil {
		t.Fatal(err)
	}
	if l := se.DeriveL(400e-12); l < 1 {
		t.Errorf("DeriveL = %d", l)
	}

	// Layer promotion.
	asg, err := PromoteLayers(c, Default018(), DefaultStack018(), 0.2, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.LayerOf) != len(c.Nets) {
		t.Error("layer assignment incomplete")
	}

	// Site planning.
	plan, err := PlanSites(c, SitePlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalRecommended == 0 {
		t.Error("site plan empty")
	}

	// Annealing.
	ar, err := AnnealFloorplan([]AnnealBlock{{Area: 100}, {Area: 200}, {Area: 50}}, nil,
		AnnealOptions{Seed: 1, Moves: 500})
	if err != nil || len(ar.Rects) != 3 {
		t.Fatalf("anneal: %v %v", ar, err)
	}

	// Visualization.
	if svg := PlanSVG(res); !strings.Contains(svg, "<svg") {
		t.Error("SVG missing")
	}
	if a := CongestionASCII(res); len(strings.Split(strings.TrimSpace(a), "\n")) != c.GridH {
		t.Error("congestion ASCII wrong height")
	}
	if a := BufferDensityASCII(res); len(a) == 0 {
		t.Error("buffer ASCII empty")
	}

	// Report.
	rep, err := res.Report()
	if err != nil || len(rep.PerNet) != len(c.Nets) {
		t.Fatalf("report: %v", err)
	}

	// Timing-driven retime.
	reports, err := RetimeCriticalNets(res, 3, DefaultLibrary018())
	if err != nil || len(reports) != 3 {
		t.Fatalf("retime: %v %v", reports, err)
	}
}

func TestFacadeAnnealedGeneration(t *testing.T) {
	c, err := GenerateBenchmark("apte", GenOptions{Annealed: true, GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 9 {
		t.Errorf("apte annealed has %d blocks", len(c.Blocks))
	}
}

func TestFacadeDecap(t *testing.T) {
	c, err := GenerateBenchmark("apte", GenOptions{GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, BenchmarkParams("apte"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeDecap(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUsed != res.TotalBuffers() || rep.TotalDecapF <= 0 {
		t.Errorf("decap report inconsistent: %+v", rep)
	}
}

func TestFacadeEvaluateFloorplans(t *testing.T) {
	spec, err := BenchmarkSpec("apte")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := EvaluateFloorplans(spec, FlowOptions{
		Seeds:  []int64{5, 6},
		GenOpt: GenOptions{GridW: 10, GridH: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || cands[0].Score > cands[1].Score {
		t.Errorf("candidates not ranked: %v", cands)
	}
}
