// Siteplanning: the paper's Section I-B methodology for deciding how many
// buffer sites each macro block must reserve: "assume an infinite number
// of available buffer sites, run a buffer allocation tool like RABID, and
// compute the number of buffers inserted in each block. Then, this number
// can be used to help determine the actual number of buffer sites to
// allocate within the block."
//
// This example runs the unlimited-supply analysis on the hp benchmark,
// prints the per-block recommendation, applies it, and shows that RABID
// against the planned allocation performs close to the original generous
// random scattering while spending far fewer sites.
//
//	go run ./examples/siteplanning
package main

import (
	"fmt"
	"log"

	rabid "repro"
)

func main() {
	c, err := rabid.GenerateBenchmark("hp", rabid.GenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := rabid.PlanSites(c, rabid.SitePlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unlimited-supply demand analysis on hp (headroom 5x):")
	fmt.Printf("%8s  %12s  %8s  %12s\n", "region", "area(mm2)", "demand", "recommended")
	for _, r := range plan.Regions {
		name := fmt.Sprintf("block %d", r.Block)
		if r.Block < 0 {
			name = "channels"
		}
		fmt.Printf("%8s  %12.1f  %8d  %12d\n", name, r.AreaUm2/1e6, r.Buffers, r.Recommended)
	}
	fmt.Printf("\ntotal: %d buffers demanded -> %d sites recommended (circuit had %d)\n\n",
		plan.TotalBuffers, plan.TotalRecommended, c.TotalBufferSites())

	params := rabid.BenchmarkParams("hp")
	baseline, err := rabid.Run(c, params)
	if err != nil {
		log.Fatal(err)
	}
	planned, err := rabid.Run(plan.Apply(c), params)
	if err != nil {
		log.Fatal(err)
	}
	b := baseline.Stages[len(baseline.Stages)-1]
	p := planned.Stages[len(planned.Stages)-1]
	fmt.Printf("%-26s  %7s  %6s  %10s  %10s\n", "allocation", "sites", "fails", "dmax(ps)", "davg(ps)")
	fmt.Printf("%-26s  %7d  %6d  %10.0f  %10.0f\n",
		"random scatter (Table I)", c.TotalBufferSites(), b.Fails, b.MaxDelayPs, b.AvgDelayPs)
	fmt.Printf("%-26s  %7d  %6d  %10.0f  %10.0f\n",
		"demand-planned per block", plan.TotalRecommended, p.Fails, p.MaxDelayPs, p.AvgDelayPs)
	fmt.Println()
	fmt.Println("The planned allocation concentrates sites where global routes actually")
	fmt.Println("need them, which is how block owners would budget the 'holes in macros'")
	fmt.Println("the methodology asks for.")
}
