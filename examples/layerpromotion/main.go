// Layerpromotion: the paper's footnote to the problem formulation — "if
// some nets can be routed on higher metal layers while others cannot,
// different nets can have different L_i values depending on their layer."
// Thick top metal has a fraction of the resistance, so the slew rule
// allows a gate to drive several times more of it before a repeater is
// needed.
//
// This example derives the per-layer length constraints from one slew
// target, promotes the longest third of ami33's nets to thick metal, and
// compares the plans: the promoted run needs fewer buffers and the
// layer-aware delays improve.
//
//	go run ./examples/layerpromotion
package main

import (
	"fmt"
	"log"

	rabid "repro"
)

func main() {
	c, err := rabid.GenerateBenchmark("ami33", rabid.GenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	base := rabid.Default018()
	stack := rabid.DefaultStack018()
	const slewTarget = 400e-12

	thinOnly, err := rabid.PromoteLayers(c, base, stack[:1], 0, slewTarget)
	if err != nil {
		log.Fatal(err)
	}
	promoted, err := rabid.PromoteLayers(c, base, stack, 0.33, slewTarget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slew target %.0f ps: thin-metal L = %d tiles, thick-metal L = %d tiles\n\n",
		slewTarget*1e12, thinOnly.LOf[0], maxL(promoted.LOf))

	params := rabid.BenchmarkParams("ami33")
	fmt.Printf("%-24s  %8s  %7s  %6s  %10s  %10s\n",
		"assignment", "promoted", "buffers", "fails", "dmax(ps)", "davg(ps)")
	for _, cfg := range []struct {
		name string
		asg  *rabid.LayerAssignment
	}{
		{"all thin metal", thinOnly},
		{"longest third on thick", promoted},
	} {
		res, err := rabid.Run(cfg.asg.Apply(c), params)
		if err != nil {
			log.Fatal(err)
		}
		promotedCount := 0
		for _, l := range cfg.asg.LayerOf {
			if l > 0 {
				promotedCount++
			}
		}
		final := res.Stages[len(res.Stages)-1]
		maxPs, avgPs, err := cfg.asg.Evaluate(res, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s  %8d  %7d  %6d  %10.0f  %10.0f\n",
			cfg.name, promotedCount, final.Buffers, final.Fails, maxPs, avgPs)
	}
	fmt.Println()
	fmt.Println("Thick metal relaxes the length rule for the longest nets, so the plan")
	fmt.Println("spends fewer buffer sites on them and their evaluated delays improve —")
	fmt.Println("the footnote's 'larger L_i in conjunction with wider wire assignment'.")
}

func maxL(ls []int) int {
	m := 0
	for _, l := range ls {
		if l > m {
			m = l
		}
	}
	return m
}
