// Floorplaneval: the paper's Section II motivation. At the floorplanning
// stage, timing numbers without buffer planning are "absurdly far" from
// their targets for every candidate, so they cannot rank floorplans. Run
// RABID first, and the post-buffering delays become meaningful evaluation
// numbers.
//
// This example generates two candidate "floorplans" of the same design
// (same statistics, different placement seed), shows that the unbuffered
// Stage-2 delays are both huge and nearly indistinguishable in relative
// terms, and then ranks the candidates by their post-RABID delays.
//
//	go run ./examples/floorplaneval
package main

import (
	"fmt"
	"log"

	rabid "repro"
)

func main() {
	spec, err := rabid.BenchmarkSpec("hp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two floorplan candidates of the hp netlist (different placement seeds)")
	fmt.Println()
	fmt.Printf("%-12s  %14s  %14s  %12s  %8s\n",
		"candidate", "unbuffered max", "unbuffered avg", "planned max", "fails")

	type outcome struct {
		name    string
		planned float64
	}
	var results []outcome
	for i, seed := range []int64{0, 4242} { // 0 keeps the spec seed
		c, err := rabid.GenerateCircuit(spec, rabid.GenOptions{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rabid.Run(c, rabid.BenchmarkParams("hp"))
		if err != nil {
			log.Fatal(err)
		}
		unbuf := res.Stages[1] // after congestion-aware routing, before buffers
		final := res.Stages[len(res.Stages)-1]
		name := fmt.Sprintf("candidate %d", i+1)
		fmt.Printf("%-12s  %12.0fps  %12.0fps  %10.0fps  %8d\n",
			name, unbuf.MaxDelayPs, unbuf.AvgDelayPs, final.MaxDelayPs, final.Fails)
		results = append(results, outcome{name, final.MaxDelayPs})
	}
	best := results[0]
	if results[1].planned < best.planned {
		best = results[1]
	}
	fmt.Println()
	fmt.Println("The unbuffered columns are the 'slack -40ns vs -43ns' situation the")
	fmt.Println("paper describes: both numbers are so far from any realistic clock")
	fmt.Println("target that they cannot rank the candidates. After buffer and wire")
	fmt.Printf("planning, the comparison is meaningful: pick %s (max %.0f ps).\n",
		best.name, best.planned)
}
