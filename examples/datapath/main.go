// Datapath: the scenario from the paper's introduction (Section I-B). A
// data bus routes straight across a dense data-path region. If the region
// reserves no buffer sites, the bus nets must detour to reach buffers,
// hurting wirelength and timing exactly where the design can least afford
// it; designing a few buffer sites INTO the data path keeps the bus
// straight.
//
//	go run ./examples/datapath
package main

import (
	"fmt"
	"log"

	rabid "repro"
	"repro/internal/geom"
)

// busChip builds a 24x10 chip whose middle rows (y in [3,6]) model the
// data-path region crossed by an 8-bit bus. sitesInside controls whether
// the data-path region reserves buffer sites.
func busChip(sitesInside bool) *rabid.Circuit {
	const w, h, tileUm = 24, 10, 600.0
	c := &rabid.Circuit{
		Name:        "datapath",
		GridW:       w,
		GridH:       h,
		TileUm:      tileUm,
		BufferSites: make([]int, w*h),
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			inside := y >= 3 && y <= 6
			switch {
			case !inside:
				c.BufferSites[y*w+x] = 3
			case sitesInside:
				c.BufferSites[y*w+x] = 1 // sparse sites designed into the data path
			default:
				c.BufferSites[y*w+x] = 0 // 100%-dense data path
			}
		}
	}
	pin := func(x, y int) rabid.Pin {
		pos := geom.FPt{X: (float64(x) + 0.5) * tileUm, Y: (float64(y) + 0.5) * tileUm}
		return rabid.Pin{Tile: geom.Pt{X: x, Y: y}, Pos: pos}
	}
	for bit := 0; bit < 8; bit++ {
		y := 3 + bit%4
		c.Nets = append(c.Nets, &rabid.Net{
			ID: bit, Name: fmt.Sprintf("bus[%d]", bit), L: 5,
			Source: pin(0, y),
			Sinks:  []rabid.Pin{pin(23, y)},
		})
	}
	return c
}

func main() {
	p := rabid.DefaultParams()
	p.Capacity = 6 // fixed capacity so the two runs are directly comparable

	fmt.Println("8-bit bus across a 4-row data-path region, 24 tiles wide, L=5")
	fmt.Println()
	fmt.Printf("%-28s  %8s  %7s  %6s  %10s  %10s\n",
		"configuration", "wire(mm)", "buffers", "fails", "dmax(ps)", "davg(ps)")
	for _, cfg := range []struct {
		name   string
		inside bool
	}{
		{"no sites in data path", false},
		{"sparse sites in data path", true},
	} {
		res, err := rabid.Run(busChip(cfg.inside), p)
		if err != nil {
			log.Fatal(err)
		}
		f := res.Stages[len(res.Stages)-1]
		fmt.Printf("%-28s  %8.1f  %7d  %6d  %10.0f  %10.0f\n",
			cfg.name, f.WirelenMm, f.Buffers, f.Fails, f.MaxDelayPs, f.AvgDelayPs)
	}
	fmt.Println()
	fmt.Println("With buffer sites inside the region the bus stays straight (minimum")
	fmt.Println("wirelength is 8 x 23 tiles = 110.4 mm); without them the nets either")
	fmt.Println("detour to reach buffers or fail their length constraint.")
}
