// Timingdriven: the paper's Section II hand-off. RABID plans buffers with
// a delay-ignorant length rule (timing constraints do not exist yet at the
// floorplanning stage); later, "when more accurate timing information is
// available, one can rip up the buffering solution for a given net and
// recompute a potentially better solution via a timing-driven buffering
// algorithm". This example runs that follow-up: the worst nets of a RABID
// run are re-buffered with delay-optimal van Ginneken insertion over the
// remaining free buffer sites, using a 1x/2x/4x buffer library.
//
//	go run ./examples/timingdriven
package main

import (
	"fmt"
	"log"

	rabid "repro"
)

func main() {
	c, err := rabid.GenerateBenchmark("ami33", rabid.GenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rabid.Run(c, rabid.BenchmarkParams("ami33"))
	if err != nil {
		log.Fatal(err)
	}
	planned := res.Stages[len(res.Stages)-1]
	fmt.Printf("RABID plan on ami33: %d buffers, max delay %.0f ps, avg %.0f ps\n\n",
		planned.Buffers, planned.MaxDelayPs, planned.AvgDelayPs)

	reports, err := rabid.RetimeCriticalNets(res, 10, rabid.DefaultLibrary018())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("timing-driven re-buffering of the 10 most critical nets:")
	fmt.Printf("%5s  %12s  %12s  %10s  %9s  %9s\n",
		"net", "before(ps)", "after(ps)", "improved", "old bufs", "new bufs")
	for _, r := range reports {
		impr := (1 - r.AfterMaxPs/r.BeforeMaxPs) * 100
		fmt.Printf("%5d  %12.0f  %12.0f  %9.1f%%  %9d  %9d\n",
			r.NetIndex, r.BeforeMaxPs, r.AfterMaxPs, impr, r.OldBuffers, len(r.NewBuffers))
	}
	fmt.Println()
	fmt.Println("The length-based plan reserved the resources; the timing-driven pass")
	fmt.Println("re-spends them (with sized buffers) exactly where delay matters.")
}
