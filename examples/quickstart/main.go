// Quickstart: build a tiny circuit by hand, run the four-stage RABID
// heuristic, and inspect where the buffers landed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rabid "repro"
	"repro/internal/geom"
)

func main() {
	// A 12x12 tile chip (600 um tiles, ~7.2 mm on a side) with two buffer
	// sites per tile, except a blocked 4x4 "cache" in the middle.
	const grid, tileUm = 12, 600.0
	c := &rabid.Circuit{
		Name:        "quickstart",
		GridW:       grid,
		GridH:       grid,
		TileUm:      tileUm,
		BufferSites: make([]int, grid*grid),
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 2
	}
	for y := 4; y < 8; y++ {
		for x := 4; x < 8; x++ {
			c.BufferSites[y*grid+x] = 0
		}
	}

	pin := func(x, y int) rabid.Pin {
		pos := geom.FPt{X: (float64(x) + 0.5) * tileUm, Y: (float64(y) + 0.5) * tileUm}
		return rabid.Pin{Tile: geom.Pt{X: x, Y: y}, Pos: pos}
	}
	// Three global nets with a tile length constraint of 4: no driver or
	// buffer may drive more than 4 tiles (2.4 mm) of wire.
	c.Nets = []*rabid.Net{
		{ID: 0, Name: "cross", L: 4, Source: pin(0, 0),
			Sinks: []rabid.Pin{pin(11, 11)}},
		{ID: 1, Name: "fanout", L: 4, Source: pin(0, 11),
			Sinks: []rabid.Pin{pin(11, 0), pin(11, 6), pin(6, 0)}},
		{ID: 2, Name: "short", L: 4, Source: pin(2, 2),
			Sinks: []rabid.Pin{pin(3, 4)}},
	}

	res, err := rabid.Run(c, rabid.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stage  overflow  buffers  fails  max-delay(ps)")
	for _, s := range res.Stages {
		fmt.Printf("%5d  %8d  %7d  %5d  %13.0f\n",
			s.Stage, s.Overflows, s.Buffers, s.Fails, s.MaxDelayPs)
	}

	fmt.Println("\nper-net buffer placement:")
	for i, n := range c.Nets {
		a := res.Assignments[i]
		rt := res.Routes[i]
		fmt.Printf("  %-7s route %2d tiles, %d buffers at:", n.Name, rt.NumNodes(), len(a.Buffers))
		for _, b := range a.Buffers {
			fmt.Printf(" %v", rt.Tile[b.Node])
		}
		if !a.Feasible() {
			fmt.Printf("  (length constraint violated by %d tiles)", a.Violations)
		}
		fmt.Println()
	}
}
