// Sitesweep: Section IV-B's buffer-site budget study. Sweeping the number
// of available buffer sites shows the paper's guidance that good solutions
// need roughly no more than one in every five sites occupied — scarce
// budgets drive up length-rule failures and delay.
//
//	go run ./examples/sitesweep
package main

import (
	"fmt"
	"log"

	rabid "repro"
)

func main() {
	budgets := []int{280, 700, 1600, 3200, 6400}
	fmt.Println("apte with varying buffer-site budgets (paper Table III, extended)")
	fmt.Println()
	fmt.Printf("%6s  %9s  %9s  %7s  %6s  %10s  %10s\n",
		"sites", "occupancy", "bc max", "#bufs", "fails", "dmax(ps)", "davg(ps)")
	for _, sites := range budgets {
		c, err := rabid.GenerateBenchmark("apte", rabid.GenOptions{Sites: sites})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rabid.Run(c, rabid.BenchmarkParams("apte"))
		if err != nil {
			log.Fatal(err)
		}
		f := res.Stages[len(res.Stages)-1]
		occ := float64(f.Buffers) / float64(sites)
		marker := ""
		if occ <= 0.2 {
			marker = "  <= 1-in-5 occupied"
		}
		fmt.Printf("%6d  %8.0f%%  %9.2f  %7d  %6d  %10.0f  %10.0f%s\n",
			sites, occ*100, f.BufMax, f.Buffers, f.Fails, f.MaxDelayPs, f.AvgDelayPs, marker)
	}
	fmt.Println()
	fmt.Println("As the budget shrinks, more nets fail their length constraint and")
	fmt.Println("delays rise; once occupancy drops to ~20% or below, quality saturates")
	fmt.Println("(the paper's 'no more than one in five sites occupied' rule).")
}
