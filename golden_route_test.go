package rabid

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/par"
)

// updateGolden regenerates the checked-in router golden fixtures. The
// fixtures were produced by the pre-workspace router and lock the router
// overhaul to byte-identical outputs; regenerate only when a change is
// *meant* to alter results (and say so in the PR).
var updateGolden = flag.Bool("update-route-golden", false, "rewrite testdata/golden_route fixtures")

// goldenResult is the canonical full-result serialization the router
// equivalence fixtures store: every stage statistic (CPU zeroed — wall
// time is the one nondeterministic output), every route tile-by-tile, and
// every buffer assignment. Byte identity of this document is a much
// stronger check than the stage-stat comparisons of TestPipelineDeterminism:
// a single moved route tile or re-ordered tree node changes the bytes.
type goldenResult struct {
	Capacity int          `json:"capacity"`
	Stages   []StageStats `json:"stages"`
	Routes   []goldenTree `json:"routes"`
	Buffers  [][]int      `json:"buffers"` // per net: flattened (node, branch) pairs
}

type goldenTree struct {
	Tiles   [][2]int `json:"tiles"` // node order IS part of the contract
	Parents []int    `json:"parents"`
	Sinks   []int    `json:"sinks"`
}

func goldenBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	gr := goldenResult{Capacity: res.Capacity}
	for _, s := range res.Stages {
		s.CPU = 0
		gr.Stages = append(gr.Stages, s)
	}
	for _, rt := range res.Routes {
		gt := goldenTree{Parents: rt.Parent, Sinks: rt.SinkNode}
		for _, p := range rt.Tile {
			gt.Tiles = append(gt.Tiles, [2]int{p.X, p.Y})
		}
		gr.Routes = append(gr.Routes, gt)
	}
	for _, a := range res.Assignments {
		pairs := []int{}
		for _, b := range a.Buffers {
			pairs = append(pairs, b.Node, b.Branch)
		}
		gr.Buffers = append(gr.Buffers, pairs)
	}
	b, err := json.MarshalIndent(gr, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenRouteEquivalence runs the full benchmark suite and asserts the
// complete result — stage stats, route trees node for node, buffer
// assignments — is byte-identical to the checked-in fixtures, for Workers 1
// and 4. This is the acceptance gate of the router hot-path overhaul: the
// workspace/adjacency/heap rewrite must be mechanically equivalent to the
// original container/heap + map kernel, not merely "as good".
func TestGoldenRouteEquivalence(t *testing.T) {
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	got := make([][]byte, len(names))
	if err := par.ForEach(0, len(names), func(i int) error {
		name := names[i]
		g := coarseGrids[name]
		c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
		if err != nil {
			return err
		}
		for wi, workers := range []int{1, 4} {
			p := BenchmarkParams(name)
			p.Workers = workers
			res, err := Run(c, p)
			if err != nil {
				return err
			}
			b := goldenBytes(t, res)
			if wi == 0 {
				got[i] = b
			} else if !bytes.Equal(got[i], b) {
				t.Errorf("%s: Workers=1 and Workers=4 results differ", name)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		path := filepath.Join("testdata", "golden_route", name+".json")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got[i], 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (regenerate deliberately with -update-route-golden)", err)
		}
		if !bytes.Equal(want, got[i]) {
			t.Errorf("%s: result differs from golden fixture %s (router must stay byte-identical; see DESIGN.md \"Router hot path\")", name, path)
		}
	}
}
