// Package rabid is a from-scratch reproduction of "A Practical Methodology
// for Early Buffer and Wire Resource Allocation" (Alpert, Hu, Sapatnekar,
// Villarrubia; DAC 2001 / IEEE TCAD 2003): the buffer-site methodology and
// the four-stage RABID heuristic for simultaneous early buffer and wire
// planning on a tile graph.
//
// This package is the public facade over the implementation packages in
// internal/: it re-exports the problem model (circuits, nets, tile length
// constraints), the benchmark suite cloned from the paper's Table I, the
// RABID pipeline, the BBP/FR comparison baseline, and the experiment
// harness that regenerates the paper's Tables I-V.
//
// Quick start:
//
//	c, _ := rabid.GenerateBenchmark("apte", rabid.GenOptions{})
//	res, _ := rabid.Run(c, rabid.DefaultParams())
//	for _, s := range res.Stages {
//	    fmt.Printf("stage %d: %d buffers, %d overflows\n", s.Stage, s.Buffers, s.Overflows)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package rabid

import (
	"context"
	"io"

	"repro/internal/anneal"
	"repro/internal/backend"
	"repro/internal/bbp"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/decap"
	"repro/internal/delay"
	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/flow"
	"repro/internal/layers"
	"repro/internal/mcf"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/server"
	"repro/internal/siteplan"
	"repro/internal/slew"
	"repro/internal/tech"
	"repro/internal/textable"
	"repro/internal/tile"
	"repro/internal/vanginneken"
	"repro/internal/viz"
)

// Problem model.
type (
	// Circuit is a complete planning instance: tiling, nets, buffer sites.
	Circuit = netlist.Circuit
	// Net is a multi-sink global net with a tile length constraint L.
	Net = netlist.Net
	// Pin is a net terminal.
	Pin = netlist.Pin
)

// RABID pipeline.
type (
	// Params configures a RABID run (Prim-Dijkstra alpha, router options,
	// rip-up passes, capacity calibration, technology, and Workers — the
	// bound on the deterministic per-net worker pool; 0 means GOMAXPROCS,
	// and results are bit-identical for every value).
	Params = core.Params
	// Result is a completed run: per-stage statistics, final routes,
	// buffer assignments, and the tile graph.
	Result = core.Result
	// StageStats reports the paper's Table II columns for one stage.
	StageStats = core.StageStats
)

// Benchmarks.
type (
	// Spec is one Table I benchmark description.
	Spec = floorplan.Spec
	// GenOptions override a Spec (grid, buffer-site budget, seed).
	GenOptions = floorplan.Options
)

// Technology.
type (
	// Tech is the process model used for Elmore delay reporting.
	Tech = tech.Tech
	// Gate is the electrical model of a buffer.
	Gate = tech.Gate
)

// BBPResult is the outcome of the buffer-block planning baseline.
type BBPResult = bbp.Result

// RetimeReport records the effect of timing-driven re-buffering on one net.
type RetimeReport = vanginneken.RetimeReport

// DefaultLibrary018 returns the sized buffer library (1x/2x/4x) used by
// the timing-driven re-buffering pass.
func DefaultLibrary018() []Gate { return tech.DefaultLibrary018() }

// RetimeCriticalNets re-buffers the k worst-delay nets of a completed run
// with delay-optimal van Ginneken insertion over the remaining free buffer
// sites — the paper's "later in the design flow" timing-driven follow-up.
func RetimeCriticalNets(res *Result, k int, lib []Gate) ([]RetimeReport, error) {
	return vanginneken.RetimeCriticalNets(res, k, lib)
}

// DefaultParams returns the paper's parameter set (alpha 0.4, three rip-up
// passes, calibrated capacities, 0.18 um technology).
func DefaultParams() Params { return core.DefaultParams() }

// Default018 returns the 0.18 um technology used by the experiments.
func Default018() Tech { return tech.Default018() }

// Run executes the four-stage RABID heuristic on a circuit.
func Run(c *Circuit, p Params) (*Result, error) { return core.Run(c, p) }

// RouteWorkspacePool recycles the router's scratch workspaces across runs.
// A long-lived embedder sets Params.WorkspacePool to one pool so repeated
// Run calls reuse the warmed wavefront arrays instead of re-growing them
// (the planning server does this per process). Purely a memory-reuse
// mechanism: results and cache keys are identical with or without it.
type RouteWorkspacePool = route.Pool

// NewRouteWorkspacePool returns an empty workspace pool.
func NewRouteWorkspacePool() *RouteWorkspacePool { return route.NewPool() }

// RunContext is Run with cooperative cancellation: the pipeline checks ctx
// at stage boundaries, rip-up-pass boundaries, and per-net dispatch, so an
// expired deadline aborts the run promptly with ctx's error. A run that
// completes is bit-identical to Run — cancellation can stop work, never
// change results.
func RunContext(ctx context.Context, c *Circuit, p Params) (*Result, error) {
	return core.RunContext(ctx, c, p)
}

// RunBBP runs the BBP/FR baseline on a two-pin-decomposed circuit with the
// given uniform edge capacity. o taps the run's telemetry ("bbp.run" span);
// pass nil for an untapped, clock-free run (BBPResult.CPU stays zero).
func RunBBP(c *Circuit, capacity int, t Tech, o Observer) (*BBPResult, error) {
	return bbp.Run(c, capacity, t, o)
}

// Suite returns the ten benchmark specs of the paper's Table I.
func Suite() []Spec { return floorplan.Suite() }

// BenchmarkSpec looks up a suite benchmark by name.
func BenchmarkSpec(name string) (Spec, error) { return floorplan.BySuiteName(name) }

// GenerateBenchmark builds a named suite circuit (with optional overrides).
func GenerateBenchmark(name string, opt GenOptions) (*Circuit, error) {
	return exp.Generate(name, opt)
}

// GenerateCircuit builds a circuit from an arbitrary spec.
func GenerateCircuit(spec Spec, opt GenOptions) (*Circuit, error) {
	return floorplan.Generate(spec, opt)
}

// BenchmarkParams returns the RABID parameters used by the experiments for
// a named suite circuit (per-circuit capacity calibration).
func BenchmarkParams(name string) Params { return exp.ParamsFor(name) }

// ReadCircuit deserializes and validates a circuit from JSON.
func ReadCircuit(r io.Reader) (*Circuit, error) { return netlist.ReadJSON(r) }

// --- delay, slew, and sized buffers -----------------------------------

// PlacedBuffer is a buffer with an explicit gate from a library.
type PlacedBuffer = delay.Placed

// DelayEvaluator computes Elmore sink delays on buffered routed trees.
type DelayEvaluator = delay.Evaluator

// NewDelayEvaluator builds an evaluator for a technology and tile size.
func NewDelayEvaluator(t Tech, tileUm float64) (DelayEvaluator, error) {
	return delay.NewEvaluator(t, tileUm)
}

// SlewEvaluator computes worst 10-90% slews and derives length constraints
// from a slew target (the physical grounding of the paper's length rule).
type SlewEvaluator = slew.Evaluator

// NewSlewEvaluator builds a slew evaluator.
func NewSlewEvaluator(t Tech, tileUm float64) (SlewEvaluator, error) {
	return slew.NewEvaluator(t, tileUm)
}

// --- layer assignment ---------------------------------------------------

// Layer scales wire parasitics for a metal-layer pair; LayerAssignment
// maps nets to layers with slew-derived per-layer L_i (paper footnote 4).
type (
	Layer           = layers.Layer
	LayerAssignment = layers.Assignment
)

// DefaultStack018 returns the thin/thick layer stack for 0.18 um.
func DefaultStack018() []Layer { return layers.DefaultStack018() }

// PromoteLayers assigns the longest nets to thick metal within a budget
// and rederives every net's L from the slew target on its layer.
func PromoteLayers(c *Circuit, base Tech, stack []Layer, budgetFraction, slewTarget float64) (*LayerAssignment, error) {
	return layers.Promote(c, base, stack, budgetFraction, slewTarget)
}

// --- site planning ------------------------------------------------------

// SitePlan recommends per-block buffer-site budgets from an
// unlimited-supply RABID run (the paper's Section I-B procedure).
type (
	SitePlan        = siteplan.Plan
	SitePlanOptions = siteplan.Options
)

// PlanSites runs the unlimited-supply analysis.
func PlanSites(c *Circuit, opt SitePlanOptions) (*SitePlan, error) {
	return siteplan.Run(c, opt)
}

// --- floorplan annealing -------------------------------------------------

// AnnealBlock, AnnealNet, and AnnealOptions parameterize the slicing
// simulated annealer; AnnealResult is a placed floorplan.
type (
	AnnealBlock   = anneal.Block
	AnnealNet     = anneal.Net
	AnnealOptions = anneal.Options
	AnnealResult  = anneal.Result
)

// AnnealFloorplan places blocks with the wirelength-aware slicing annealer.
func AnnealFloorplan(blocks []AnnealBlock, nets []AnnealNet, opt AnnealOptions) (*AnnealResult, error) {
	return anneal.Floorplan(blocks, nets, opt)
}

// --- floorplan evaluation loop ---------------------------------------------

// FlowCandidate and FlowOptions drive the paper's intended use: rank
// floorplan candidates by their post-planning metrics instead of raw,
// meaningless pre-buffering slack.
type (
	FlowCandidate = flow.Candidate
	FlowOptions   = flow.Options
)

// EvaluateFloorplans generates, plans, and ranks floorplan candidates of a
// benchmark spec, best first.
func EvaluateFloorplans(spec Spec, opt FlowOptions) ([]*FlowCandidate, error) {
	return flow.EvaluateCandidates(spec, opt)
}

// --- decap / spare-cell utilization ---------------------------------------

// DecapReport summarizes the unused buffer sites of a completed run as
// decoupling capacitance and ECO spare area (Section I-B's point that
// reserved sites are never wasted).
type DecapReport = decap.Report

// AnalyzeDecap builds the utilization report from a completed run.
func AnalyzeDecap(res *Result) (*DecapReport, error) {
	return decap.Analyze(res.Circuit, res.Graph)
}

// --- multicommodity-flow routing ------------------------------------------

// MCFOptions and MCFResult parameterize the multicommodity-flow global
// router (the paper's cited alternative to Stages 1-2); it can also be
// selected inside Run via Params.UseMCFRouter.
type (
	MCFOptions = mcf.Options
	MCFResult  = mcf.Result
)

// RouteMCF routes all nets with the multicommodity-flow router on a tile
// graph built from the circuit with the given uniform capacity. Returned
// routes are not registered on any graph.
func RouteMCF(c *Circuit, capacity int, opt MCFOptions) (*MCFResult, error) {
	g, err := tile.New(c.GridW, c.GridH, c.BufferSites, capacity)
	if err != nil {
		return nil, err
	}
	return mcf.Route(g, c.Nets, opt)
}

// --- planning backends ----------------------------------------------------

// LibGate is one gate of a planning buffer library: an electrical model
// plus an area cost and an inverting flag. Params.Library, together with
// Params.Backend = "rabid+lib", runs the Stage-3 DP over the library
// (drive-scaled length constraints, area-scaled site costs, inverter
// polarity tracking) instead of the single planning buffer.
type LibGate = tech.LibGate

// DefaultPlanningLibrary018 returns the default 0.18 um planning library:
// 1x/2x/4x buffers and 1x/2x inverters, area costs relative to the 1x
// planning buffer.
func DefaultPlanningLibrary018() []LibGate { return tech.DefaultPlanningLibrary018() }

// Backends returns the registered planning-engine names ("mcf", "rabid",
// "rabid+lib"), sorted.
func Backends() []string { return backend.Names() }

// SearchKernels returns the router wavefront-kernel names ("heap", "dial",
// "astar") accepted by Params.SearchKernel.
func SearchKernels() []string { return route.Kernels() }

// SteinerModes returns the Stage-1 construction names ("pd", "costdist")
// accepted by Params.SteinerMode.
func SteinerModes() []string { return core.SteinerModes() }

// DescribeBackend returns the one-line summary of a registered engine
// ("" names the default).
func DescribeBackend(name string) (string, bool) {
	e, ok := backend.Lookup(name)
	if !ok {
		return "", false
	}
	return e.Describe(), true
}

// NormalizeParams canonicalizes the engine-selection fields of p (Backend
// "" → "rabid"; "rabid+lib" with no Library → the default library) and
// validates them against the registry. Plan and the HTTP service apply it
// automatically; call it directly when deriving cache keys by hand.
func NormalizeParams(p Params) (Params, error) { return backend.Normalize(p) }

// Plan runs the planning engine named by p.Backend ("" = the rabid
// pipeline, making Plan a superset of RunContext). Engines are
// deterministic: identical inputs produce identical results at every
// Workers value.
func Plan(ctx context.Context, c *Circuit, p Params) (*Result, error) {
	return backend.Plan(ctx, c, p)
}

// RunMCF executes the multicommodity-flow buffered-routing engine
// directly: fractional relaxation with site-aware edge lengths and
// approximate dual updates, deterministic seeded rounding, greedy repair,
// then the length-based buffer DP (equivalent to Plan with Backend "mcf").
func RunMCF(c *Circuit, p Params) (*Result, error) { return core.RunMCF(c, p) }

// --- observability --------------------------------------------------------

// Observability types: Params.Observer taps a run's structured telemetry —
// hierarchical trace spans (run → stage → rip-up pass → per-net
// operation), work counters and state gauges, and per-stage congestion
// heat snapshots. With no observer attached the pipeline builds no events
// and reads no clocks; with one attached the event stream is deterministic
// for every Params.Workers value (only span durations vary).
type (
	// Observer is the telemetry hook (Params.Observer).
	Observer = obs.Observer
	// TelemetryEvent is one record of the event stream.
	TelemetryEvent = obs.Event
	// TelemetryKind discriminates span/counter/gauge/heat/log events.
	TelemetryKind = obs.Kind
	// MetricsObserver aggregates counters, gauges, power-of-two-bucket
	// histograms, and span statistics, keyed "scope.stage"; it dumps as
	// expvar-style JSON (WriteJSON) or a human summary (WriteSummary).
	MetricsObserver = obs.Metrics
	// JSONObserver streams events as JSON lines. By default it omits the
	// wall-clock duration field so traces are byte-identical across worker
	// counts; set Durations to true to include it.
	JSONObserver = obs.JSONLines
)

// NewJSONObserver returns an observer writing one JSON object per event
// to w (see JSONObserver; check Err after the run).
func NewJSONObserver(w io.Writer) *JSONObserver { return obs.NewJSONLines(w) }

// NewMetricsObserver returns an empty aggregating metrics registry.
func NewMetricsObserver() *MetricsObserver { return obs.NewMetrics() }

// MultiObserver fans events out to several observers; nils are dropped
// and a fully-nil argument list returns nil (keeping the zero-cost path).
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// ProgressObserver renders log-kind events (the experiment harness's
// progress lines) to w, one per line.
func ProgressObserver(w io.Writer) Observer { return obs.Progress(w) }

// SetTableObserver installs an observer tapping every RABID run performed
// by Table and receiving its progress lines as log events; the sink must
// be safe for concurrent use (all sinks in this package are). Pass nil to
// detach. Not safe to call while a Table call is in flight.
func SetTableObserver(o Observer) { exp.Observer = o }

// StartProfiles starts the stdlib profilers selected by non-empty paths —
// a CPU profile, a runtime/trace, and/or a heap profile written on stop —
// and returns the function that stops them and flushes the files.
func StartProfiles(cpuPath, tracePath, memPath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, tracePath, memPath)
}

// --- visualization -------------------------------------------------------

// PlanSVG renders a completed run (blocks, congestion heat, routes,
// buffers) as an SVG document.
func PlanSVG(res *Result) string {
	return viz.SVG(res.Circuit, viz.SVGOptions{Graph: res.Graph, Routes: res.Routes})
}

// CongestionASCII renders the run's per-tile wire congestion as text.
func CongestionASCII(res *Result) string {
	return viz.ASCII(viz.WireHeat(res.Graph), res.Circuit.GridW, res.Circuit.GridH)
}

// BufferDensityASCII renders the run's per-tile buffer occupancy as text.
func BufferDensityASCII(res *Result) string {
	return viz.ASCII(viz.BufferHeat(res.Graph), res.Circuit.GridW, res.Circuit.GridH)
}

// Table regenerates one of the experiment tables, logging progress to log
// (may be nil): 1-5 are the paper's Tables I-V; 6 is this reproduction's
// cross-backend comparison (rabid / rabid+lib / mcf over the ten-circuit
// suite at a coarse tiling). The returned table renders with String().
func Table(n int, log io.Writer) (*textable.Table, error) {
	switch n {
	case 1:
		return exp.Table1(log)
	case 2:
		return exp.Table2(log)
	case 3:
		return exp.Table3(log)
	case 4:
		return exp.Table4(log)
	case 5:
		return exp.Table5(log)
	case 6:
		return exp.Table6(log)
	}
	return nil, errUnknownTable(n)
}

type errUnknownTable int

func (e errUnknownTable) Error() string {
	return "rabid: unknown table (want 1-6)"
}

// --- planning service -----------------------------------------------------

// ServerConfig and PlanServer expose the HTTP planning service (see
// internal/server and cmd/rabidd): POST /v1/plan and /v1/bbp with bounded
// admission, per-request deadlines, and a content-addressed result cache;
// GET /v1/healthz and /v1/metricz for probing and telemetry.
type (
	ServerConfig = server.Config
	PlanServer   = server.Server
)

// NewPlanServer builds the planning service; serve its Handler with any
// http.Server (cmd/rabidd is the packaged daemon).
func NewPlanServer(cfg ServerConfig) *PlanServer { return server.New(cfg) }

// PlanCacheKey returns the content address of a planning run — the hex
// SHA-256 of the canonical (circuit, params, tech) serialization the
// service's cache and ETags use. Params are normalized first (see
// NormalizeParams) so the empty and explicit spellings of an engine share
// one address. It fails for params carrying a custom route weight
// function, which cannot be addressed by content, and for an unknown
// backend.
func PlanCacheKey(c *Circuit, p Params) (string, error) {
	p, err := backend.Normalize(p)
	if err != nil {
		return "", err
	}
	return cache.PlanKey(c, p)
}
