package rabid

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/par"
)

// coarseGrids mirrors the fast tilings of the exp suite test so the whole
// benchmark suite stays tractable in unit-test time.
var coarseGrids = map[string][2]int{
	"apte": {10, 11}, "xerox": {10, 10}, "hp": {10, 10},
	"ami33": {11, 10}, "ami49": {10, 10}, "playout": {11, 10},
	"ac3": {10, 10}, "xc5": {10, 10}, "hc7": {10, 10}, "a9c3": {10, 10},
}

// TestWorkersDeterminismSuite is the tentpole's acceptance test: on every
// benchmark of the suite, Workers: 1 and Workers: N produce identical
// StageStats (CPU aside), stage for stage — the worker pool must be pure
// parallelism, never a behaviour change. The per-benchmark runs themselves
// fan out over the pool, so with -race this also race-checks the layer.
func TestWorkersDeterminismSuite(t *testing.T) {
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	type outcome struct {
		seq, par []StageStats
	}
	outcomes := make([]outcome, len(names))
	if err := par.ForEach(0, len(names), func(i int) error {
		name := names[i]
		g := coarseGrids[name]
		c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
		if err != nil {
			return err
		}
		run := func(workers int) ([]StageStats, error) {
			p := BenchmarkParams(name)
			p.Workers = workers
			res, err := Run(c, p)
			if err != nil {
				return nil, err
			}
			return res.Stages, nil
		}
		if outcomes[i].seq, err = run(1); err != nil {
			return err
		}
		outcomes[i].par, err = run(4)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		seq, par4 := outcomes[i].seq, outcomes[i].par
		if len(seq) != len(par4) {
			t.Fatalf("%s: %d stages sequential vs %d parallel", name, len(seq), len(par4))
		}
		for si := range seq {
			a, b := seq[si], par4[si]
			a.CPU, b.CPU = 0, 0
			if a != b {
				t.Errorf("%s stage %d: Workers=1 and Workers=4 diverge:\n  seq: %+v\n  par: %+v",
					name, si+1, a, b)
			}
		}
	}
}

// TestSuiteFanoutMatchesSequential checks the experiment-suite layer the
// same way: running benchmarks concurrently must not change any of them.
func TestSuiteFanoutMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("suite fan-out in -short mode")
	}
	names := []string{"apte", "hp", "ac3"}
	runOne := func(name string) []StageStats {
		g := coarseGrids[name]
		res, err := exp.RunBenchmark(name, floorplan.Options{GridW: g[0], GridH: g[1]})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages
	}
	want := make([][]StageStats, len(names))
	for i, name := range names {
		want[i] = runOne(name)
	}
	got := make([][]StageStats, len(names))
	if err := par.ForEach(len(names), len(names), func(i int) error {
		got[i] = runOne(names[i])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		for si := range want[i] {
			a, b := want[i][si], got[i][si]
			a.CPU, b.CPU = 0, 0
			if a != b {
				t.Errorf("%s stage %d: fan-out run diverges from sequential", name, si+1)
			}
		}
	}
}
