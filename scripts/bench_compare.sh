#!/usr/bin/env bash
# Router hot-path benchmark runner (CI's bench-smoke job; runnable locally
# from the repo root). Stdlib-only: go test + cmd/benchjson, no external
# benchstat.
#
#   1. run the route microbenchmarks (Reroute / RipupPass / BufferAwarePath)
#      and the search-kernel matrix (heap / dial / astar over Reroute and
#      BufferAwarePath), the end-to-end BenchmarkRunSuite, and the
#      cross-backend BenchmarkBackendPlan (rabid / rabid+lib / mcf),
#   2. convert the text output to JSON with cmd/benchjson,
#   3. if a baseline exists, print an old-vs-new delta table and gate the
#      default (heap) kernel's hot paths: a >10% ns/op regression of
#      BenchmarkReroute / BenchmarkRipupPass / BenchmarkBufferAwarePath or
#      any */heap kernel-matrix row fails the script. benchjson disables
#      the gate automatically when the baseline was recorded on a
#      different CPU (cross-machine wall clock measures the hardware);
#      the rest of the table stays report-only — runner noise on the
#      non-default rows and macro benchmarks is not worth failing on.
#
# Usage:
#   scripts/bench_compare.sh                 # write BENCH_route.new.json, compare
#   scripts/bench_compare.sh -update        # refresh the checked-in baseline
#   BENCHTIME=0.2s scripts/bench_compare.sh # shorter timed run (CI)
#
# The allocation contracts are gated by tests
# (internal/route/alloc_test.go), which `go test ./...` already runs.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=BENCH_route.json
benchtime=${BENCHTIME:-1s}
suite_benchtime=${SUITE_BENCHTIME:-1x}
update=0
[ "${1:-}" = "-update" ] && update=1

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/benchjson" ./cmd/benchjson

echo "== route microbenchmarks (benchtime=$benchtime)" >&2
go test -run '^$' -bench 'BenchmarkReroute$|BenchmarkRipupPass$|BenchmarkRipupPassParallel$|BenchmarkBufferAwarePath$' \
  -benchmem -benchtime "$benchtime" ./internal/route | tee "$workdir/bench.txt" >&2

echo "== search-kernel matrix (benchtime=$benchtime)" >&2
go test -run '^$' -bench 'BenchmarkRerouteKernel$|BenchmarkRerouteKernelAlpha1$|BenchmarkBufferAwarePathKernel$' \
  -benchmem -benchtime "$benchtime" ./internal/route | tee -a "$workdir/bench.txt" >&2

echo "== end-to-end suite benchmark (benchtime=$suite_benchtime)" >&2
go test -run '^$' -bench 'BenchmarkRunSuite$|BenchmarkRunSuiteSteiner$' \
  -benchmem -benchtime "$suite_benchtime" -timeout 20m . | tee -a "$workdir/bench.txt" >&2

echo "== backend comparison benchmark (benchtime=$suite_benchtime)" >&2
go test -run '^$' -bench 'BenchmarkBackendPlan$' \
  -benchmem -benchtime "$suite_benchtime" -timeout 20m . | tee -a "$workdir/bench.txt" >&2

if [ "$update" = 1 ]; then
  "$workdir/benchjson" -o "$baseline" < "$workdir/bench.txt"
  echo "baseline refreshed: $baseline" >&2
  exit 0
fi

new=BENCH_route.new.json
"$workdir/benchjson" -o "$new" < "$workdir/bench.txt"
echo "wrote $new" >&2

if [ -f "$baseline" ]; then
  # Gate the default kernel's hot paths at 10%; everything else (parallel
  # variants, non-default kernels, macro benchmarks) is report-only.
  "$workdir/benchjson" -compare -maxregress 10 \
    -gate '^(BenchmarkReroute|BenchmarkRipupPass|BenchmarkBufferAwarePath)$|Kernel(Alpha1)?/heap$' \
    "$baseline" "$new"
else
  echo "no baseline ($baseline) checked in; run with -update to create one" >&2
fi
