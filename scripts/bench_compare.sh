#!/usr/bin/env bash
# Router hot-path benchmark runner (CI's bench-smoke job; runnable locally
# from the repo root). Stdlib-only: go test + cmd/benchjson, no external
# benchstat.
#
#   1. run the route microbenchmarks (Reroute / RipupPass / BufferAwarePath),
#      the end-to-end BenchmarkRunSuite, and the cross-backend
#      BenchmarkBackendPlan (rabid / rabid+lib / mcf),
#   2. convert the text output to JSON with cmd/benchjson,
#   3. if a baseline exists, print an old-vs-new delta table.
#
# Usage:
#   scripts/bench_compare.sh                 # write BENCH_route.new.json, compare
#   scripts/bench_compare.sh -update        # refresh the checked-in baseline
#   BENCHTIME=0.2s scripts/bench_compare.sh # shorter timed run (CI)
#
# The comparison is a report, not a gate: wall-clock deltas on shared
# runners are noise. The allocation contracts are gated by tests
# (internal/route/alloc_test.go), which `go test ./...` already runs.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=BENCH_route.json
benchtime=${BENCHTIME:-1s}
suite_benchtime=${SUITE_BENCHTIME:-1x}
update=0
[ "${1:-}" = "-update" ] && update=1

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/benchjson" ./cmd/benchjson

echo "== route microbenchmarks (benchtime=$benchtime)" >&2
go test -run '^$' -bench 'BenchmarkReroute$|BenchmarkRipupPass$|BenchmarkRipupPassParallel$|BenchmarkBufferAwarePath$' \
  -benchmem -benchtime "$benchtime" ./internal/route | tee "$workdir/bench.txt" >&2

echo "== end-to-end suite benchmark (benchtime=$suite_benchtime)" >&2
go test -run '^$' -bench 'BenchmarkRunSuite$' \
  -benchmem -benchtime "$suite_benchtime" -timeout 20m . | tee -a "$workdir/bench.txt" >&2

echo "== backend comparison benchmark (benchtime=$suite_benchtime)" >&2
go test -run '^$' -bench 'BenchmarkBackendPlan$' \
  -benchmem -benchtime "$suite_benchtime" -timeout 20m . | tee -a "$workdir/bench.txt" >&2

if [ "$update" = 1 ]; then
  "$workdir/benchjson" -o "$baseline" < "$workdir/bench.txt"
  echo "baseline refreshed: $baseline" >&2
  exit 0
fi

new=BENCH_route.new.json
"$workdir/benchjson" -o "$new" < "$workdir/bench.txt"
echo "wrote $new" >&2

if [ -f "$baseline" ]; then
  "$workdir/benchjson" -compare "$baseline" "$new"
else
  echo "no baseline ($baseline) checked in; run with -update to create one" >&2
fi
