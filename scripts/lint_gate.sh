#!/usr/bin/env bash
# lint_gate.sh — the exact static-analysis gate CI runs, reproducible
# locally. One rabidlint invocation covers all three layers:
#
#   * the six intraprocedural checks (maprange, wallclock, globalrand,
#     floateq, narrowcast, errdrop),
#   * the three interprocedural checks (transitive taint with call paths,
#     specpure, ctxflow),
#   * the compiler-backed escape gate (-escape) over the hot set in
#     internal/lint/hotset.txt.
#
# Outputs: rabidlint-findings.json (machine-readable findings, written
# even when the gate fails) and rabidlint.sarif (for code-host inline
# annotation). Exit status is rabidlint's: 0 clean, 1 findings, 2 error.
set -euo pipefail

cd "$(dirname "$0")/.."

# Warm the build cache before the escape gate: `go build -gcflags=-m`
# replays its diagnostics from the cache, so the -escape pass costs one
# compile, not two.
go build ./...

# pipefail (set above) keeps rabidlint's exit-1-on-findings through the
# tee; without it the pipeline would report tee's status instead.
go run ./cmd/rabidlint -escape -json -sarif rabidlint.sarif ./... |
	tee rabidlint-findings.json
