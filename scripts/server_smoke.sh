#!/usr/bin/env bash
# Server smoke test (CI's server-smoke job; runnable locally from the repo
# root). End-to-end over a real daemon:
#
#   1. start rabidd and wait for /v1/healthz,
#   2. POST a suite circuit to /v1/plan twice — the first response must be
#      a cache miss, the second a hit, and the bodies byte-identical (the
#      content-addressed cache's soundness claim),
#   3. scrape /v1/metricz and validate it with cmd/metricscheck (stage
#      spans present, every exported value finite),
#   4. SIGTERM the daemon and require a clean drain: exit status 0.
set -euo pipefail

addr=127.0.0.1:18080
workdir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/rabidd" ./cmd/rabidd
go build -o "$workdir/genbench" ./cmd/genbench
go build -o "$workdir/metricscheck" ./cmd/metricscheck

"$workdir/genbench" -bench apte -grid 10x11 -o "$workdir/apte.json"
printf '{"circuit":%s,"timeout_ms":120000}' "$(cat "$workdir/apte.json")" \
  > "$workdir/req.json"

"$workdir/rabidd" -addr "$addr" &
pid=$!

for _ in $(seq 1 100); do
  curl -sf "http://$addr/v1/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "rabidd died during startup" >&2; exit 1; }
  sleep 0.1
done
curl -sf "http://$addr/v1/healthz" >/dev/null

curl -sf -D "$workdir/h1.txt" -o "$workdir/r1.json" \
  -X POST --data-binary @"$workdir/req.json" "http://$addr/v1/plan"
curl -sf -D "$workdir/h2.txt" -o "$workdir/r2.json" \
  -X POST --data-binary @"$workdir/req.json" "http://$addr/v1/plan"

grep -qi '^x-cache: miss' "$workdir/h1.txt" || {
  echo "first plan was not a cache miss:"; cat "$workdir/h1.txt"; exit 1; }
grep -qi '^x-cache: hit' "$workdir/h2.txt" || {
  echo "second plan was not a cache hit:"; cat "$workdir/h2.txt"; exit 1; }
cmp "$workdir/r1.json" "$workdir/r2.json" || {
  echo "cached response is not byte-identical to the fresh one"; exit 1; }

curl -sf -o "$workdir/metricz.json" "http://$addr/v1/metricz"
"$workdir/metricscheck" "$workdir/metricz.json"

kill -TERM "$pid"
wait "$pid" || { echo "rabidd drain exited nonzero" >&2; exit 1; }
pid=
echo "server smoke OK: miss->hit byte-identical, metricz valid, clean drain"
