#!/usr/bin/env bash
# Server smoke test (CI's server-smoke job; runnable locally from the repo
# root). End-to-end over a real daemon:
#
#   1. start rabidd with a run journal and an access log attached and wait
#      for /v1/healthz,
#   2. POST a suite circuit to /v1/plan twice — the first response must be
#      a cache miss, the second a hit, and the bodies byte-identical (the
#      content-addressed cache's soundness claim) — then plan the same
#      circuit through the rabid+lib and mcf backends and require three
#      pairwise-distinct ETags (engine identity is part of the content
#      address),
#   3. submit a second circuit as an async job (POST /v1/jobs), stream its
#      SSE event feed to completion with curl -N, and require the terminal
#      "done" frame plus a done status with an embedded result,
#   4. replay the journal with cmd/journal and require every recorded
#      digest (content key, result, event stream) to be reproduced,
#   5. scrape /v1/metricz and validate it with cmd/metricscheck, including
#      the -quantiles gate (finite monotone p50/p95/p99 per histogram),
#   6. require a non-empty structured access log carrying request ids,
#   7. SIGTERM the daemon and require a clean drain: exit status 0.
#
# Set SMOKE_ARTIFACTS to a directory to keep the access log, journal, and
# metricz scrape after the run (CI uploads them as artifacts).
set -euo pipefail

addr=127.0.0.1:18080
workdir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  if [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    cp -f "$workdir"/runs.jsonl "$workdir"/access.jsonl "$workdir"/metricz.json "$SMOKE_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/rabidd" ./cmd/rabidd
go build -o "$workdir/genbench" ./cmd/genbench
go build -o "$workdir/metricscheck" ./cmd/metricscheck
go build -o "$workdir/journal" ./cmd/journal

"$workdir/genbench" -bench apte -grid 10x11 -o "$workdir/apte.json"
printf '{"circuit":%s,"timeout_ms":120000}' "$(cat "$workdir/apte.json")" \
  > "$workdir/req.json"
# A second, distinct circuit for the async job so its run is a fresh
# pipeline execution (recording an event stream in the journal), not a
# cache hit on the sync plans above.
"$workdir/genbench" -bench apte -grid 9x10 -o "$workdir/apte2.json"
printf '{"circuit":%s,"timeout_ms":120000}' "$(cat "$workdir/apte2.json")" \
  > "$workdir/jobreq.json"

"$workdir/rabidd" -addr "$addr" \
  -journal "$workdir/runs.jsonl" -access-log "$workdir/access.jsonl" &
pid=$!

for _ in $(seq 1 100); do
  curl -sf "http://$addr/v1/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "rabidd died during startup" >&2; exit 1; }
  sleep 0.1
done
curl -sf "http://$addr/v1/healthz" >/dev/null

curl -sf -D "$workdir/h1.txt" -o "$workdir/r1.json" \
  -X POST --data-binary @"$workdir/req.json" "http://$addr/v1/plan"
curl -sf -D "$workdir/h2.txt" -o "$workdir/r2.json" \
  -X POST --data-binary @"$workdir/req.json" "http://$addr/v1/plan"

grep -qi '^x-cache: miss' "$workdir/h1.txt" || {
  echo "first plan was not a cache miss:"; cat "$workdir/h1.txt"; exit 1; }
grep -qi '^x-cache: hit' "$workdir/h2.txt" || {
  echo "second plan was not a cache hit:"; cat "$workdir/h2.txt"; exit 1; }
cmp "$workdir/r1.json" "$workdir/r2.json" || {
  echo "cached response is not byte-identical to the fresh one"; exit 1; }
grep -qi '^x-request-id: ' "$workdir/h1.txt" || {
  echo "plan response carries no X-Request-ID:"; cat "$workdir/h1.txt"; exit 1; }

# --- planning backends: the same circuit through two more engines must
# plan successfully and mint distinct content addresses (ETags) — the
# engines can never alias in the cache.
etag() { sed -n 's/^[Ee][Tt]ag: *//p' "$1" | tr -d '\r'; }
for be in rabid+lib mcf; do
  printf '{"circuit":%s,"params":{"backend":"%s"},"timeout_ms":120000}' \
    "$(cat "$workdir/apte.json")" "$be" > "$workdir/req_be.json"
  curl -sf -D "$workdir/h_$be.txt" -o "$workdir/r_$be.json" \
    -X POST --data-binary @"$workdir/req_be.json" "http://$addr/v1/plan"
done
e_default=$(etag "$workdir/h1.txt")
e_lib=$(etag "$workdir/h_rabid+lib.txt")
e_mcf=$(etag "$workdir/h_mcf.txt")
[ -n "$e_lib" ] && [ -n "$e_mcf" ] || {
  echo "backend plans returned no ETag"; exit 1; }
if [ "$e_lib" = "$e_default" ] || [ "$e_mcf" = "$e_default" ] || [ "$e_lib" = "$e_mcf" ]; then
  echo "backend ETags alias: default=$e_default rabid+lib=$e_lib mcf=$e_mcf"; exit 1
fi

# --- async job: submit, stream events live, await the terminal status ---
curl -sf -o "$workdir/job.json" \
  -X POST --data-binary @"$workdir/jobreq.json" "http://$addr/v1/jobs"
job_id=$(sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p' "$workdir/job.json")
[ -n "$job_id" ] || { echo "job submit returned no id:"; cat "$workdir/job.json"; exit 1; }

# curl -N streams until the server closes the feed after the done frame.
curl -sfN -o "$workdir/events.sse" "http://$addr/v1/jobs/$job_id/events"
grep -q '^event: done' "$workdir/events.sse" || {
  echo "SSE stream did not end with a done frame:"; tail "$workdir/events.sse"; exit 1; }
grep -q '^data: {"k":' "$workdir/events.sse" || {
  echo "SSE stream carried no telemetry events:"; head "$workdir/events.sse"; exit 1; }

curl -sf -o "$workdir/jobstatus.json" "http://$addr/v1/jobs/$job_id"
grep -q '"state":"done"' "$workdir/jobstatus.json" || {
  echo "job did not finish done:"; cat "$workdir/jobstatus.json"; exit 1; }
grep -q '"result":' "$workdir/jobstatus.json" || {
  echo "done job embeds no result:"; cat "$workdir/jobstatus.json"; exit 1; }

# --- journal: list, then replay every recorded run and verify digests ---
"$workdir/journal" -file "$workdir/runs.jsonl" list
"$workdir/journal" -file "$workdir/runs.jsonl" replay || {
  echo "journal replay diverged from the recorded digests"; exit 1; }

curl -sf -o "$workdir/metricz.json" "http://$addr/v1/metricz"
"$workdir/metricscheck" -quantiles "$workdir/metricz.json"
grep -q '"http.latency_ms.POST /v1/plan"' "$workdir/metricz.json" || {
  echo "metricz carries no per-route latency histogram"; exit 1; }

# --- access log: one structured line per request, each with an id ---
[ -s "$workdir/access.jsonl" ] || { echo "access log is empty" >&2; exit 1; }
grep -q '"route":"POST /v1/jobs"' "$workdir/access.jsonl" || {
  echo "access log has no job-submit line"; exit 1; }
if grep -vq '"id":"' "$workdir/access.jsonl"; then
  echo "access log has lines without request ids"; exit 1; fi

kill -TERM "$pid"
wait "$pid" || { echo "rabidd drain exited nonzero" >&2; exit 1; }
pid=
echo "server smoke OK: miss->hit byte-identical, job streamed to done, journal replay verified, metricz quantiles valid, access log populated, clean drain"
