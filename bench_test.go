// Benchmarks regenerating the paper's experiments. One benchmark per table
// (I-V) plus microbenchmarks of the core algorithms and ablations of the
// design choices called out in DESIGN.md.
//
// Per-iteration work is a full experiment, so most of these run a handful
// of iterations; the interesting output is wall time per operation, which
// corresponds to the paper's CPU columns.
package rabid

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/bufferdp"
	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/rtree"
)

// BenchmarkTable1Suite generates all ten benchmark circuits (Table I).
func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range floorplan.Suite() {
			if _, err := floorplan.Generate(spec, floorplan.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Stages runs the full four-stage RABID pipeline per CBL
// circuit (Table II). Sub-benchmarks are named by circuit.
func BenchmarkTable2Stages(b *testing.B) {
	for _, name := range exp.CBLNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunBenchmark(name, floorplan.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Random covers the four random circuits of Table II.
func BenchmarkTable2Random(b *testing.B) {
	for _, name := range exp.RandomNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunBenchmark(name, floorplan.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Sites sweeps the buffer-site budget (Table III) on apte.
func BenchmarkTable3Sites(b *testing.B) {
	for _, sites := range []int{280, 700, 3200} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunBenchmark("apte", floorplan.Options{Sites: sites}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Grids sweeps the tiling granularity (Table IV) on apte;
// the paper observes CPU growing slightly superlinearly with tile count.
func BenchmarkTable4Grids(b *testing.B) {
	for _, g := range [][2]int{{10, 11}, {20, 22}, {30, 33}, {40, 44}} {
		b.Run(fmt.Sprintf("grid=%dx%d", g[0], g[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunBenchmark("apte", floorplan.Options{GridW: g[0], GridH: g[1]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5VsBBP runs the RABID-versus-BBP/FR comparison (Table V).
func BenchmarkTable5VsBBP(b *testing.B) {
	for _, name := range []string{"apte", "hp", "ami33"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunTable5Pair(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- parallel execution layer ----------------------------------------

// BenchmarkPipelineWorkers measures the deterministic worker pool on the
// full pipeline: workers=1 is the sequential baseline, workers=0 uses all
// CPUs. Stage-1 Steiner construction, the per-stage delay refresh, and the
// snapshot accounting fan out; results are bit-identical for every value.
func BenchmarkPipelineWorkers(b *testing.B) {
	c, err := GenerateBenchmark("apte", GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := BenchmarkParams("apte")
			p.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := Run(c, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSuiteFanout runs the whole ten-circuit suite (the Table II
// workload) through the per-benchmark fan-out, sequentially and with one
// worker per CPU.
func BenchmarkSuiteFanout(b *testing.B) {
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	for _, w := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := par.ForEach(w, len(names), func(j int) error {
					_, err := exp.RunBenchmark(names[j], floorplan.Options{})
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunSuite runs the full four-stage pipeline over every suite
// benchmark at the coarse unit-test tilings, sequentially with one worker —
// the end-to-end workload the router hot-path overhaul targets. ns/op and
// allocs/op here are the system-level counterpart of the internal/route
// kernel microbenchmarks (BenchmarkReroute etc.); scripts/bench_compare.sh
// snapshots both into BENCH_route.json.
func BenchmarkRunSuite(b *testing.B) {
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	type job struct {
		c *Circuit
		p Params
	}
	jobs := make([]job, len(names))
	for i, name := range names {
		g := coarseGrids[name]
		c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
		if err != nil {
			b.Fatal(err)
		}
		p := BenchmarkParams(name)
		p.Workers = 1
		jobs[i] = job{c, p}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, err := Run(j.c, j.p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunSuiteSteiner compares the two Stage-1 constructions over the
// full ten-circuit suite: "pd" (Prim–Dijkstra tradeoff at the per-circuit
// alpha) versus "costdist" (the Held–Perner cost-distance tree with
// w = 1/L, Stage 2 rerouted at alpha = 1 — the regime where the astar
// kernel engages). ns/op per mode is the end-to-end cost of the
// alternative objective; scripts/bench_compare.sh snapshots both rows
// into BENCH_route.json.
func BenchmarkRunSuiteSteiner(b *testing.B) {
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	for _, mode := range SteinerModes() {
		b.Run(mode, func(b *testing.B) {
			type job struct {
				c *Circuit
				p Params
			}
			jobs := make([]job, len(names))
			for i, name := range names {
				g := coarseGrids[name]
				c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
				if err != nil {
					b.Fatal(err)
				}
				p := BenchmarkParams(name)
				p.SteinerMode = mode
				p.Workers = 1
				jobs[i] = job{c, p}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, j := range jobs {
					if _, err := Run(j.c, j.p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkBackendPlan compares the three planning engines on coarse apte
// — the backend registry's cross-engine cost picture (ns/op per engine is
// the CPU column of the Table VI comparison). Sub-benchmarks are named by
// engine; scripts/bench_compare.sh snapshots them into BENCH_route.json.
func BenchmarkBackendPlan(b *testing.B) {
	g := coarseGrids["apte"]
	c, err := GenerateBenchmark("apte", GenOptions{GridW: g[0], GridH: g[1]})
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range Backends() {
		b.Run(name, func(b *testing.B) {
			p := BenchmarkParams("apte")
			p.Backend = name
			p.Workers = 1
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Plan(context.Background(), c, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- core-algorithm microbenchmarks ----------------------------------

// pathTree builds a straight n-tile route.
func pathTree(n int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x < n; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: n - 1}})
	if err != nil {
		panic(err)
	}
	return t
}

// BenchmarkFig7SingleSinkDP measures the O(nL) single-sink buffer DP
// (Fig. 6/7) on paths of increasing length; ns/op should scale linearly
// with n, the complexity claim of Section III-C.
func BenchmarkFig7SingleSinkDP(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		rt := pathTree(n)
		q := func(v int) float64 {
			if v%7 == 0 {
				return math.Inf(1)
			}
			return 1 + float64(v%5)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bufferdp.Assign(rt, 6, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiSinkDP measures the multi-sink variant (Fig. 9) on a comb
// tree with many branch joins (the O(mL^2) term).
func BenchmarkMultiSinkDP(b *testing.B) {
	// Comb: spine along x, a 3-tile tooth at every 4th spine tile.
	parent := map[geom.Pt]geom.Pt{}
	var sinks []geom.Pt
	for x := 1; x < 128; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
		if x%4 == 0 {
			for y := 1; y <= 3; y++ {
				parent[geom.Pt{X: x, Y: y}] = geom.Pt{X: x, Y: y - 1}
			}
			sinks = append(sinks, geom.Pt{X: x, Y: 3})
		}
	}
	sinks = append(sinks, geom.Pt{X: 127})
	rt, err := rtree.FromParentMap(geom.Pt{}, parent, sinks)
	if err != nil {
		b.Fatal(err)
	}
	q := func(v int) float64 { return 1 + float64(v%3) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bufferdp.Assign(rt, 6, q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ---------------------------------------------------------

// ablationRun executes apte with a parameter mutation and reports the
// final fails/overflow/delay as benchmark metrics.
func ablationRun(b *testing.B, mutate func(*Params)) {
	b.Helper()
	c, err := GenerateBenchmark("apte", GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	p := BenchmarkParams("apte")
	mutate(&p)
	var fails, overflow, delay float64
	for i := 0; i < b.N; i++ {
		res, err := Run(c, p)
		if err != nil {
			b.Fatal(err)
		}
		f := res.Stages[len(res.Stages)-1]
		fails = float64(f.Fails)
		overflow = float64(f.Overflows)
		delay = f.AvgDelayPs
	}
	b.ReportMetric(fails, "fails")
	b.ReportMetric(overflow, "overflow")
	b.ReportMetric(delay, "avg-ps")
}

// BenchmarkAblationRipupAll contrasts Nair-style full rip-up (3 passes,
// the paper's choice) with a single pass.
func BenchmarkAblationRipupAll(b *testing.B) {
	b.Run("passes=3", func(b *testing.B) { ablationRun(b, func(p *Params) { p.MaxRipupPasses = 3 }) })
	b.Run("passes=1", func(b *testing.B) { ablationRun(b, func(p *Params) { p.MaxRipupPasses = 1 }) })
}

// BenchmarkAblationAlpha sweeps the Prim-Dijkstra tradeoff around the
// paper's 0.4.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, a := range []float64{0.0, 0.4, 1.0} {
		b.Run(fmt.Sprintf("alpha=%.1f", a), func(b *testing.B) {
			ablationRun(b, func(p *Params) { p.Alpha = a; p.RouteOpt.Alpha = a })
		})
	}
}

// BenchmarkAblationDemandTerm removes the probabilistic p(v) term from the
// Eq. (2) site cost.
func BenchmarkAblationDemandTerm(b *testing.B) {
	b.Run("with-p", func(b *testing.B) { ablationRun(b, func(p *Params) {}) })
	b.Run("without-p", func(b *testing.B) { ablationRun(b, func(p *Params) { p.DisableDemandTerm = true }) })
}

// BenchmarkAblationMCFRouter contrasts Stage 2's Nair-style rip-up with
// the multicommodity-flow router the paper names as the alternative.
func BenchmarkAblationMCFRouter(b *testing.B) {
	b.Run("ripup", func(b *testing.B) { ablationRun(b, func(p *Params) {}) })
	b.Run("mcf", func(b *testing.B) { ablationRun(b, func(p *Params) { p.UseMCFRouter = true }) })
}

// BenchmarkAblationTwoPath contrasts the full pipeline with Stage 4
// disabled (the two-path post-processing the paper credits for the final
// fails/wirelength reductions).
func BenchmarkAblationTwoPath(b *testing.B) {
	b.Run("with-stage4", func(b *testing.B) { ablationRun(b, func(p *Params) {}) })
	b.Run("without-stage4", func(b *testing.B) { ablationRun(b, func(p *Params) { p.SkipStage4 = true }) })
}
