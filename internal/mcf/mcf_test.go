package mcf

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tile"
)

func mkNet(id int, src geom.Pt, sinks ...geom.Pt) *netlist.Net {
	pin := func(p geom.Pt) netlist.Pin {
		return netlist.Pin{Tile: p, Pos: geom.FPt{X: float64(p.X) * 100, Y: float64(p.Y) * 100}}
	}
	n := &netlist.Net{ID: id, Name: "t", Source: pin(src), L: 5}
	for _, s := range sinks {
		n.Sinks = append(n.Sinks, pin(s))
	}
	return n
}

func TestOptionsValidation(t *testing.T) {
	g, _ := tile.New(4, 4, nil, 2)
	nets := []*netlist.Net{mkNet(0, geom.Pt{}, geom.Pt{X: 3})}
	if _, err := Route(g, nets, Options{Phases: -1}); err == nil {
		t.Error("negative phases accepted")
	}
	if _, err := Route(g, nets, Options{Epsilon: 2}); err == nil {
		t.Error("epsilon >= 1 accepted")
	}
}

func TestRoutesAllNetsValidly(t *testing.T) {
	g, err := tile.New(10, 10, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	var nets []*netlist.Net
	for i := 0; i < 15; i++ {
		nets = append(nets, mkNet(i,
			geom.Pt{X: r.Intn(10), Y: r.Intn(10)},
			geom.Pt{X: r.Intn(10), Y: r.Intn(10)},
			geom.Pt{X: r.Intn(10), Y: r.Intn(10)}))
	}
	res, err := Route(g, nets, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != len(nets) {
		t.Fatalf("routed %d of %d nets", len(res.Routes), len(nets))
	}
	for i, rt := range res.Routes {
		if rt == nil {
			t.Fatalf("net %d unrouted", i)
		}
		if err := rt.Validate(g.InGrid); err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		if rt.Tile[0] != nets[i].Source.Tile {
			t.Fatalf("net %d root moved", i)
		}
		for k, s := range nets[i].Sinks {
			if rt.Tile[rt.SinkNode[k]] != s.Tile {
				t.Fatalf("net %d sink %d moved", i, k)
			}
		}
	}
	if res.FractionalMaxCongestion <= 0 {
		t.Error("fractional bound missing")
	}
	if res.RoundedMaxCongestion < res.FractionalMaxCongestion-1e-9 {
		// Rounding can beat the average only by luck of discreteness; it
		// should never be dramatically below the fractional max, but a
		// slightly lower value is possible. Only sanity-check positivity.
		t.Logf("rounded %v below fractional %v", res.RoundedMaxCongestion, res.FractionalMaxCongestion)
	}
}

func TestSpreadsParallelDemand(t *testing.T) {
	// The classic fixture: 8 identical nets across a capacity-3 grid row.
	// Naive shortest routing stacks all 8 on one row (congestion 8/3);
	// MCF must spread them to approach the fractional optimum.
	g, err := tile.New(10, 10, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	var nets []*netlist.Net
	for i := 0; i < 8; i++ {
		nets = append(nets, mkNet(i, geom.Pt{X: 0, Y: 4}, geom.Pt{X: 9, Y: 4}))
	}
	res, err := Route(g, nets, Options{Seed: 2, Phases: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundedMaxCongestion > 1.0+1e-9 {
		t.Errorf("MCF left congestion %v > 1 on a spreadable instance", res.RoundedMaxCongestion)
	}
	if res.FractionalMaxCongestion > 1.0+1e-9 {
		t.Errorf("fractional congestion %v > 1", res.FractionalMaxCongestion)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g, _ := tile.New(8, 8, nil, 2)
	var nets []*netlist.Net
	for i := 0; i < 6; i++ {
		nets = append(nets, mkNet(i, geom.Pt{X: 0, Y: i}, geom.Pt{X: 7, Y: i}))
	}
	a, err := Route(g, nets, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(g, nets, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Routes {
		if treeKey(a.Routes[i]) != treeKey(b.Routes[i]) {
			t.Fatal("same seed produced different routings")
		}
	}
}

func TestComparableToRipupOnContention(t *testing.T) {
	// MCF and the greedy rip-up router should both resolve this solvable
	// instance; MCF's certificate bounds the gap. Sources are distinct
	// tiles so the instance is actually feasible (a single shared source
	// tile would cap the escaping wires at 3 edges x capacity).
	g, err := tile.New(12, 6, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nets []*netlist.Net
	for i := 0; i < 10; i++ {
		nets = append(nets, mkNet(i, geom.Pt{X: 0, Y: i % 6}, geom.Pt{X: 11, Y: i % 6}))
	}
	res, err := Route(g, nets, Options{Seed: 3, Phases: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range res.Routes {
		route.AddUsage(g, rt)
	}
	if st := g.WireCongestion(); st.Overflow != 0 {
		t.Errorf("MCF rounding left %d overflow on a solvable instance", st.Overflow)
	}
}

func TestTreeKeyDistinguishesRoutes(t *testing.T) {
	g, _ := tile.New(4, 4, nil, 8)
	n := mkNet(0, geom.Pt{}, geom.Pt{X: 3, Y: 3})
	a, err := route.Reroute(g, n, route.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Congest a's edges to force a different route.
	for _, pq := range a.EdgePairs() {
		e, _ := g.EdgeBetween(pq[0], pq[1])
		for i := 0; i < 8; i++ {
			g.AddWire(e)
		}
	}
	b, err := route.Reroute(g, n, route.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if treeKey(a) == treeKey(b) {
		t.Error("different routes share a key")
	}
	if treeKey(a) != treeKey(a) {
		t.Error("key not stable")
	}
}
