// Package mcf implements a multicommodity-flow-based global router in the
// style of Albrecht (ISPD 2000), the alternative the paper names for its
// Stages 1-2: "one could alternatively begin with the solution from any
// global router, e.g., the multicommodity flow-based approach of [1]".
//
// The algorithm is the Garg–Könemann/Fleischer fractional approximation of
// maximum concurrent flow, specialized to min-max edge congestion: every
// phase routes each net once along a (near-)minimum-length Steiner tree
// under exponential edge lengths, then inflates the lengths of the used
// edges proportionally to how much capacity the tree consumed. The
// per-phase trees form a fractional routing; randomized rounding (seeded)
// selects one tree per net, and the fractional congestion provides a lower
// bound certificate for the rounded solution's quality.
package mcf

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// Options tunes the approximation.
type Options struct {
	// Phases is the number of routing phases (default 12). More phases
	// tighten the fractional solution at linear cost.
	Phases int
	// Epsilon is the exponential length step (default 0.3).
	Epsilon float64
	// Seed drives the randomized rounding.
	Seed int64
	// SiteWeight couples buffer-site scarcity into the length system —
	// the buffered-routing coupling of Albrecht–Kahng–Măndoiu–Zelikovsky,
	// where wire congestion and buffer availability are priced jointly.
	// Each edge's initial length is scaled by 1 + SiteWeight*scarcity(e),
	// with scarcity(e) the average of 1/(1+B(v)) over the edge's endpoint
	// tiles, so routes are steered through buffer-site-rich regions and
	// the downstream insertion DP finds sites where the length rule needs
	// them. 0 (the default) reproduces the pure wire-capacity lengths.
	SiteWeight float64
	// RouteOpt configures the underlying Steiner router; its congestion
	// cost is replaced by the MCF edge lengths.
	RouteOpt route.Options
	// Obs receives per-phase spans and congestion gauges (see internal/obs)
	// and is propagated to the underlying router. nil disables telemetry.
	Obs obs.Observer
}

// Result is a complete MCF routing.
type Result struct {
	// Routes holds the selected tree per net.
	Routes []*rtree.Tree
	// FractionalMaxCongestion is the max edge congestion of the averaged
	// per-phase routing — a lower-bound certificate: no integral selection
	// of the generated trees beats it by more than the rounding gap.
	FractionalMaxCongestion float64
	// RoundedMaxCongestion is the max congestion of the selected routes.
	RoundedMaxCongestion float64
	// DualLowerBound is the approximate Garg–Könemann dual certificate:
	// the maximum over phases of sum_i len_y(T_i) / sum_e y(e)*cap(e),
	// where y is the exponential length system and T_i the tree routed
	// for net i in that phase. Because the trees are heuristic (not
	// exactly minimum) Steiner trees and y evolves within a phase, this
	// is a quality indicator for the fractional solution, not a proof.
	DualLowerBound float64
}

// Route computes routes for all nets on the graph. Wire usage present on g
// is ignored and not modified; callers register the returned routes
// themselves (route.AddUsage).
func Route(g *tile.Graph, nets []*netlist.Net, opt Options) (*Result, error) {
	return RouteCtx(context.Background(), g, nets, opt) //rabid:allow ctxflow Route is the documented Background wrapper over RouteCtx for context-free callers (tables, tests); service paths call RouteCtx
}

// RouteCtx is Route with cooperative cancellation: the context is checked
// at every phase boundary and between nets within a phase, so a deadline
// lands promptly even on large grids. A run that completes is bit-identical
// to Route's — cancellation can only abort, never change a result.
func RouteCtx(ctx context.Context, g *tile.Graph, nets []*netlist.Net, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //rabid:allow ctxflow nil-ctx guard: normalized to the documented Background behavior instead of panicking at the first checkpoint
	}
	if opt.Phases == 0 {
		opt.Phases = 12
	}
	if opt.Phases < 1 {
		return nil, fmt.Errorf("mcf: phases %d < 1", opt.Phases)
	}
	if opt.Epsilon == 0 {
		opt.Epsilon = 0.3
	}
	if opt.Epsilon <= 0 || opt.Epsilon >= 1 {
		return nil, fmt.Errorf("mcf: epsilon %g outside (0,1)", opt.Epsilon)
	}
	if opt.SiteWeight < 0 || math.IsInf(opt.SiteWeight, 1) || math.IsNaN(opt.SiteWeight) {
		return nil, fmt.Errorf("mcf: site weight %g not in [0, inf)", opt.SiteWeight)
	}
	if opt.RouteOpt.OverflowPenalty == 0 {
		stage := opt.RouteOpt.Stage
		opt.RouteOpt = route.DefaultOptions()
		opt.RouteOpt.Stage = stage
	}
	// Pure shortest trees under the MCF lengths: no PD discounting, which
	// would distort the length system.
	opt.RouteOpt.Alpha = 1
	opt.RouteOpt.Obs = opt.Obs

	ne := g.NumEdges()
	length := make([]float64, ne)
	for e := range length {
		length[e] = 1 / float64(g.Capacity(e))
	}
	if opt.SiteWeight > 0 {
		// Buffer-site scarcity scaling: iterate each edge once through the
		// flat adjacency (nbr > v visits an edge from its lower endpoint).
		for v := 0; v < g.NumTiles(); v++ {
			nbrs, edges := g.Adjacency(v)
			for k, w := range nbrs {
				if int(w) <= v {
					continue
				}
				scarcity := (1/(1+float64(g.Sites(v))) + 1/(1+float64(g.Sites(int(w))))) / 2
				length[edges[k]] *= 1 + opt.SiteWeight*scarcity
			}
		}
	}
	opt.RouteOpt.Weight = func(e int) float64 { return length[e] }

	// Per-net tree pool with selection counts.
	type pooled struct {
		tree  *rtree.Tree
		count int
	}
	pools := make([][]pooled, len(nets))
	// Fractional per-edge usage accumulated over phases.
	fracUse := make([]float64, ne)

	addTree := func(i int, rt *rtree.Tree) {
		key := treeKey(rt)
		for k := range pools[i] {
			if treeKey(pools[i][k].tree) == key {
				pools[i][k].count++
				return
			}
		}
		pools[i] = append(pools[i], pooled{tree: rt, count: 1})
	}

	// One workspace for all phase routing. Never donate trees back to it:
	// every Reroute result may be retained in a pool.
	ws := route.NewWorkspace()
	dualBound := 0.0
	for phase := 0; phase < opt.Phases; phase++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mcf: cancelled before phase %d: %w", phase, err)
		}
		popt := opt.RouteOpt
		popt.Pass = phase + 1
		t0 := obs.Now(opt.Obs)
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindSpanBegin, Scope: "mcf.phase",
			Stage: popt.Stage, Pass: popt.Pass, Net: -1})
		// Dual denominator sum_e y(e)*cap(e), frozen at phase start; the
		// exponential length inflations below are the approximate
		// dual-variable updates of the Garg–Könemann scheme.
		denom := 0.0
		for e := 0; e < ne; e++ {
			denom += length[e] * float64(g.Capacity(e))
		}
		treeLens := 0.0
		for i, n := range nets {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("mcf: cancelled in phase %d: %w", phase, err)
			}
			rt, err := route.Reroute(g, n, popt, ws)
			if err != nil {
				return nil, fmt.Errorf("mcf: phase %d: %w", phase, err)
			}
			addTree(i, rt)
			for _, pq := range rt.EdgePairs() {
				e, _ := g.EdgeBetween(pq[0], pq[1])
				treeLens += length[e]
				fracUse[e]++
				// Exponential length update: inflate by the fraction of
				// the edge's capacity this unit of flow consumes.
				length[e] *= 1 + opt.Epsilon/float64(g.Capacity(e))
			}
		}
		if denom > 0 {
			if b := treeLens / denom; b > dualBound {
				dualBound = b
			}
		}
		if opt.Obs != nil {
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindSpanEnd, Scope: "mcf.phase",
				Stage: popt.Stage, Pass: popt.Pass, Net: -1, Dur: obs.Since(opt.Obs, t0)})
		}
	}

	res := &Result{Routes: make([]*rtree.Tree, len(nets)), DualLowerBound: dualBound}
	obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "mcf.dual_bound",
		Stage: opt.RouteOpt.Stage, Net: -1, Value: dualBound})
	for e := 0; e < ne; e++ {
		c := fracUse[e] / float64(opt.Phases) / float64(g.Capacity(e))
		if c > res.FractionalMaxCongestion {
			res.FractionalMaxCongestion = c
		}
	}
	obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "mcf.frac_congestion",
		Stage: opt.RouteOpt.Stage, Net: -1, Value: res.FractionalMaxCongestion})
	// Randomized rounding: pick each net's tree with probability
	// proportional to its phase count.
	rng := rand.New(rand.NewSource(opt.Seed))
	use := make([]int, ne)
	addUse := func(rt *rtree.Tree, delta int) {
		for _, pq := range rt.EdgePairs() {
			e, _ := g.EdgeBetween(pq[0], pq[1])
			use[e] += delta
		}
	}
	for i := range nets {
		total := 0
		for _, p := range pools[i] {
			total += p.count
		}
		pick := rng.Intn(total)
		for _, p := range pools[i] {
			pick -= p.count
			if pick < 0 {
				res.Routes[i] = p.tree
				break
			}
		}
		addUse(res.Routes[i], 1)
	}
	// Repair (Albrecht's rerouting step): a few greedy passes re-choosing
	// each net's pooled tree to minimize overflow, then congestion.
	score := func() (int, float64) {
		over := 0
		worst := 0.0
		for e := 0; e < ne; e++ {
			if d := use[e] - g.Capacity(e); d > 0 {
				over += d
			}
			if c := float64(use[e]) / float64(g.Capacity(e)); c > worst {
				worst = c
			}
		}
		return over, worst
	}
	for pass := 0; pass < 2; pass++ {
		for i := range nets {
			bestTree := res.Routes[i]
			addUse(bestTree, -1)
			bestOver, bestCong := -1, 0.0
			for _, p := range pools[i] {
				addUse(p.tree, 1)
				over, cong := score()
				addUse(p.tree, -1)
				if bestOver < 0 || over < bestOver || (over == bestOver && cong < bestCong) {
					bestOver, bestCong, bestTree = over, cong, p.tree
				}
			}
			res.Routes[i] = bestTree
			addUse(bestTree, 1)
		}
	}
	_, res.RoundedMaxCongestion = score()
	obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "mcf.rounded_congestion",
		Stage: opt.RouteOpt.Stage, Net: -1, Value: res.RoundedMaxCongestion})
	return res, nil
}

// pack16 folds one tile coordinate pair into 32 bits of a tree key.
func pack16(p geom.Pt) uint64 {
	//rabid:allow narrowcast hash key only: truncating a >65535 coordinate can at worst alias a pool entry, never corrupt a route
	return uint64(uint16(p.X))<<16 | uint64(uint16(p.Y))
}

// treeKey builds a canonical identity for a routed tree (sorted edge set).
func treeKey(rt *rtree.Tree) string {
	pairs := rt.EdgePairs()
	keys := make([]uint64, len(pairs))
	for i, pq := range pairs {
		a := pack16(pq[0])<<32 | pack16(pq[1])
		b := pack16(pq[1])<<32 | pack16(pq[0])
		if b < a {
			a = b
		}
		keys[i] = a
	}
	// Order-independent fold (commutative hash) plus length; collisions
	// only cause a pool entry to be reused, never a wrong route.
	var sum, xor uint64
	for _, k := range keys {
		sum += k * 0x9e3779b97f4a7c15
		xor ^= k
	}
	return fmt.Sprintf("%d:%x:%x", len(keys), sum, xor)
}
