// Package viz renders tile-graph state as ASCII heat maps and SVG: wire
// congestion, buffer-site density, floorplan blocks, and routed trees. The
// paper's Figs. 1-2 motivate exactly these views (buffer clumping between
// blocks vs. dispersed buffer sites on a tiling).
package viz

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// ramp maps intensity 0..1 to a character, light to dark.
const ramp = " .:-=+*#%@"

// WireHeat returns, per tile, the maximum congestion w/W of its incident
// edges (values may exceed 1 when edges overflow).
func WireHeat(g *tile.Graph) []float64 {
	heat := make([]float64, g.NumTiles())
	var nbuf []geom.Pt
	for v := 0; v < g.NumTiles(); v++ {
		p := g.TileAt(v)
		nbuf = g.Neighbors(p, nbuf[:0])
		for _, q := range nbuf {
			e, _ := g.EdgeBetween(p, q)
			// EdgeUtil guards blocked (zero-capacity) edges, keeping the
			// rendered field finite.
			c := g.EdgeUtil(e)
			if c > heat[v] {
				heat[v] = c
			}
		}
	}
	return heat
}

// BufferHeat returns, per tile, the buffer-site occupancy b/B (zero for
// tiles without sites).
func BufferHeat(g *tile.Graph) []float64 {
	heat := make([]float64, g.NumTiles())
	for v := 0; v < g.NumTiles(); v++ {
		if s := g.Sites(v); s > 0 {
			heat[v] = float64(g.UsedSites(v)) / float64(s)
		}
	}
	return heat
}

// ASCII renders a per-tile heat slice (row-major, w x h) as a character
// map, top row first (y grows upward, so row h-1 prints first). Values are
// clamped to [0, 1]; tiles at or above 1 render with the densest glyph.
func ASCII(heat []float64, w, h int) string {
	if len(heat) != w*h || w <= 0 || h <= 0 {
		return ""
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			v := heat[y*w+x]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SVGOptions selects what the SVG shows.
type SVGOptions struct {
	// Routes to overlay (may be nil).
	Routes []*rtree.Tree
	// BufferTiles marks tiles whose used sites should be drawn as dots
	// (usually from the tile graph; may be nil).
	Graph *tile.Graph
	// PxPerTile scales the drawing (default 12).
	PxPerTile float64
}

// SVG renders the circuit's floorplan, wire-congestion heat, routes, and
// buffer usage as a standalone SVG document.
func SVG(c *netlist.Circuit, opt SVGOptions) string {
	px := opt.PxPerTile
	if px <= 0 {
		px = 12
	}
	W := float64(c.GridW) * px
	H := float64(c.GridH) * px
	// SVG y grows downward; chip y grows upward. Flip via yFlip.
	yFlip := func(y float64) float64 { return H - y }
	sx := px / c.TileUm // chip um -> svg px

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", W, H, W, H)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", W, H)

	// Wire congestion heat per tile.
	if opt.Graph != nil {
		heat := WireHeat(opt.Graph)
		for v, hv := range heat {
			if hv <= 0 {
				continue
			}
			if hv > 1 {
				hv = 1
			}
			p := opt.Graph.TileAt(v)
			// Light blue to saturated red.
			r := int(255 * hv)
			g := int(64 * (1 - hv))
			bl := int(255 * (1 - hv))
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" fill-opacity="0.5"/>`+"\n",
				float64(p.X)*px, yFlip(float64(p.Y+1)*px), px, px, r, g, bl)
		}
	}
	// Blocks.
	for _, blk := range c.Blocks {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="black" stroke-width="1"/>`+"\n",
			blk.Lo.X*sx, yFlip(blk.Hi.Y*sx), blk.W()*sx, blk.H()*sx)
	}
	// Routes.
	for _, rt := range opt.Routes {
		if rt == nil {
			continue
		}
		for _, pq := range rt.EdgePairs() {
			x1 := (float64(pq[0].X) + 0.5) * px
			y1 := yFlip((float64(pq[0].Y) + 0.5) * px)
			x2 := (float64(pq[1].X) + 0.5) * px
			y2 := yFlip((float64(pq[1].Y) + 0.5) * px)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="darkgreen" stroke-width="0.8" stroke-opacity="0.6"/>`+"\n",
				x1, y1, x2, y2)
		}
	}
	// Buffer usage dots sized by count.
	if opt.Graph != nil {
		for v := 0; v < opt.Graph.NumTiles(); v++ {
			used := opt.Graph.UsedSites(v)
			if used == 0 {
				continue
			}
			p := opt.Graph.TileAt(v)
			rr := px * 0.12 * (1 + float64(used)/4)
			if rr > px/2 {
				rr = px / 2
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="purple" fill-opacity="0.8"/>`+"\n",
				(float64(p.X)+0.5)*px, yFlip((float64(p.Y)+0.5)*px), rr)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}
