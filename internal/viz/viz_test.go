package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/tile"
)

func graph(t *testing.T) *tile.Graph {
	t.Helper()
	sites := make([]int, 16)
	sites[5] = 3
	g, err := tile.New(4, 4, sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWireHeat(t *testing.T) {
	g := graph(t)
	e, _ := g.EdgeBetween(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 1, Y: 0})
	g.AddWire(e)
	g.AddWire(e)
	g.AddWire(e) // 3/2 = 1.5, overflowing
	heat := WireHeat(g)
	if heat[0] != 1.5 || heat[1] != 1.5 {
		t.Errorf("heat at edge endpoints = %v, %v, want 1.5", heat[0], heat[1])
	}
	if heat[15] != 0 {
		t.Errorf("far tile heat = %v", heat[15])
	}
}

func TestBufferHeat(t *testing.T) {
	g := graph(t)
	g.AddBuffer(5)
	heat := BufferHeat(g)
	if heat[5] != 1.0/3.0 {
		t.Errorf("buffer heat = %v", heat[5])
	}
	if heat[0] != 0 {
		t.Error("siteless tile should be 0")
	}
}

func TestASCII(t *testing.T) {
	heat := []float64{0, 0.5, 1.0, 2.0, -1, 0.1}
	out := ASCII(heat, 3, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("dimensions wrong:\n%s", out)
	}
	// Top line is row y=1: values 2.0(clamped), -1(clamped 0), 0.1.
	if lines[0][0] != '@' || lines[0][1] != ' ' {
		t.Errorf("clamping wrong: %q", lines[0])
	}
	// Bottom line is row y=0: 0, 0.5, 1.0.
	if lines[1][0] != ' ' || lines[1][2] != '@' {
		t.Errorf("bottom row wrong: %q", lines[1])
	}
	if ASCII(heat, 2, 2) != "" {
		t.Error("size mismatch should return empty")
	}
}

func TestASCIIRampMonotone(t *testing.T) {
	prev := -1
	for i := 0; i <= 10; i++ {
		v := float64(i) / 10
		out := ASCII([]float64{v}, 1, 1)
		idx := strings.IndexByte(ramp, out[0])
		if idx < prev {
			t.Fatalf("ramp not monotone at %v", v)
		}
		prev = idx
	}
}

func TestSVGWellFormedAndComplete(t *testing.T) {
	g := graph(t)
	e, _ := g.EdgeBetween(geom.Pt{X: 1, Y: 1}, geom.Pt{X: 2, Y: 1})
	g.AddWire(e)
	g.AddBuffer(5)
	c := &netlist.Circuit{
		Name: "v", GridW: 4, GridH: 4, TileUm: 100,
		BufferSites: make([]int, 16),
		Blocks:      []geom.Rect{{Lo: geom.FPt{X: 50, Y: 50}, Hi: geom.FPt{X: 250, Y: 150}}},
	}
	rt, err := rtree.FromParentMap(geom.Pt{}, map[geom.Pt]geom.Pt{{X: 1}: {}}, []geom.Pt{{X: 1}})
	if err != nil {
		t.Fatal(err)
	}
	svg := SVG(c, SVGOptions{Graph: g, Routes: []*rtree.Tree{rt, nil}})
	for _, want := range []string{"<svg", "<rect", "<line", "<circle", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestSVGDefaultScale(t *testing.T) {
	c := &netlist.Circuit{Name: "v", GridW: 2, GridH: 2, TileUm: 100, BufferSites: make([]int, 4)}
	svg := SVG(c, SVGOptions{})
	if !strings.Contains(svg, `width="24"`) {
		t.Errorf("default 12px/tile scale missing:\n%s", svg[:100])
	}
}
