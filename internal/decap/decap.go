// Package decap accounts for the buffer sites a plan leaves unused.
// Section I-B argues reserved sites are not wasted: leftovers become
// decoupling capacitors ("the design needs to be populated with decoupling
// capacitors to enhance local power supply and signal stability") or spare
// cells for metal-only ECOs. This package turns a completed run's
// unused-site map into that utilization report: per-region decap
// capacitance and spare-cell counts.
package decap

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tile"
)

// CapPerSiteF is the decoupling capacitance one converted buffer site
// provides. A ~400 um^2 MOS cap in 0.18 um (~5 fF/um^2 of gate oxide)
// yields on the order of 2 pF.
const CapPerSiteF = 2e-12

// Region summarizes one floorplan region's leftover resources.
type Region struct {
	// Block indexes Circuit.Blocks; -1 is the channel space.
	Block int
	// Sites and Used are the region's total and consumed buffer sites.
	Sites, Used int
	// DecapF is the decoupling capacitance available if every unused site
	// converts to a capacitor.
	DecapF float64
}

// Unused returns the free-site count.
func (r Region) Unused() int { return r.Sites - r.Used }

// Report is the chip-level utilization summary.
type Report struct {
	Regions []Region
	// TotalSites, TotalUsed cover the whole chip.
	TotalSites, TotalUsed int
	// TotalDecapF is the chip-wide convertible capacitance.
	TotalDecapF float64
	// SpareAreaUm2 is the silicon area of the unused sites (ECO spares).
	SpareAreaUm2 float64
}

// Analyze attributes every tile's unused sites to the region owning the
// tile center and prices the decap conversion.
func Analyze(c *netlist.Circuit, g *tile.Graph) (*Report, error) {
	if g.NumTiles() != c.NumTiles() {
		return nil, fmt.Errorf("decap: graph has %d tiles, circuit %d", g.NumTiles(), c.NumTiles())
	}
	regions := make([]Region, len(c.Blocks)+1)
	for i := range regions {
		regions[i].Block = i
	}
	regions[len(c.Blocks)].Block = -1
	rep := &Report{}
	for ti := 0; ti < c.NumTiles(); ti++ {
		t := geom.Pt{X: ti % c.GridW, Y: ti / c.GridW}
		center := geom.FPt{
			X: (float64(t.X) + 0.5) * c.TileUm,
			Y: (float64(t.Y) + 0.5) * c.TileUm,
		}
		idx := len(c.Blocks)
		for bi, blk := range c.Blocks {
			if blk.Contains(center) {
				idx = bi
				break
			}
		}
		regions[idx].Sites += g.Sites(ti)
		regions[idx].Used += g.UsedSites(ti)
	}
	for i := range regions {
		regions[i].DecapF = float64(regions[i].Unused()) * CapPerSiteF
		rep.TotalSites += regions[i].Sites
		rep.TotalUsed += regions[i].Used
	}
	rep.Regions = regions
	unused := rep.TotalSites - rep.TotalUsed
	rep.TotalDecapF = float64(unused) * CapPerSiteF
	rep.SpareAreaUm2 = float64(unused) * floorplan.BufferSiteAreaUm2
	return rep, nil
}
