package decap

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tile"
)

func TestAnalyzeAttribution(t *testing.T) {
	c := &netlist.Circuit{
		Name: "d", GridW: 4, GridH: 4, TileUm: 100,
		BufferSites: make([]int, 16),
		Blocks: []geom.Rect{
			{Lo: geom.FPt{X: 0, Y: 0}, Hi: geom.FPt{X: 200, Y: 200}}, // tiles (0,0),(1,0),(0,1),(1,1)
		},
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 2
	}
	g, err := tile.New(4, 4, c.BufferSites, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.AddBuffer(0) // inside block 0
	g.AddBuffer(5) // inside block 0 (tile (1,1))
	g.AddBuffer(15)
	rep, err := Analyze(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSites != 32 || rep.TotalUsed != 3 {
		t.Fatalf("totals: %d sites %d used", rep.TotalSites, rep.TotalUsed)
	}
	if len(rep.Regions) != 2 {
		t.Fatalf("regions: %d", len(rep.Regions))
	}
	blk := rep.Regions[0]
	if blk.Sites != 8 || blk.Used != 2 {
		t.Errorf("block region: %d sites %d used", blk.Sites, blk.Used)
	}
	ch := rep.Regions[1]
	if ch.Block != -1 || ch.Sites != 24 || ch.Used != 1 {
		t.Errorf("channel region: %+v", ch)
	}
	wantDecap := float64(29) * CapPerSiteF
	if math.Abs(rep.TotalDecapF-wantDecap) > 1e-21 {
		t.Errorf("decap = %v, want %v", rep.TotalDecapF, wantDecap)
	}
	if rep.SpareAreaUm2 != 29*floorplan.BufferSiteAreaUm2 {
		t.Errorf("spare area = %v", rep.SpareAreaUm2)
	}
	if blk.Unused() != 6 {
		t.Errorf("Unused = %d", blk.Unused())
	}
}

func TestAnalyzeMismatch(t *testing.T) {
	c := &netlist.Circuit{Name: "d", GridW: 4, GridH: 4, TileUm: 100, BufferSites: make([]int, 16)}
	g, _ := tile.New(3, 3, nil, 1)
	if _, err := Analyze(c, g); err == nil {
		t.Error("tile mismatch accepted")
	}
}

func TestAnalyzeAfterRun(t *testing.T) {
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Generate(spec, floorplan.Options{GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(c, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUsed != res.TotalBuffers() {
		t.Errorf("used %d != buffers %d", rep.TotalUsed, res.TotalBuffers())
	}
	if rep.TotalSites != c.TotalBufferSites() {
		t.Errorf("sites %d != circuit %d", rep.TotalSites, c.TotalBufferSites())
	}
	sum := 0
	for _, r := range rep.Regions {
		sum += r.Used
	}
	if sum != rep.TotalUsed {
		t.Error("per-region used does not sum")
	}
	if rep.TotalDecapF <= 0 {
		t.Error("no decap capacity reported")
	}
}
