// Package rtree represents a net's global route as a tree over tiles: every
// tile the route passes through is a node, edges join grid-adjacent tiles,
// node 0 is the source tile. This is the structure Stage 3's buffer
// insertion walks (one DP step per tile) and the delay model evaluates.
package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Tree is a rooted tree of tiles. Node 0 is the root (the tile containing
// the net's source). SinkNode[k] is the node index of the tile containing
// the net's k-th sink; several sinks may share a node, and a sink node may
// be internal (a route passing through it).
type Tree struct {
	Tile     []geom.Pt
	Parent   []int // Parent[0] == -1
	SinkNode []int

	children [][]int // built lazily
}

// FromParentMap assembles a Tree from a parent-pointer map produced by a
// router: parent[t] is the tile preceding t on its path to the source. The
// source tile must not appear as a key. Sink tiles must be present (or be
// the source tile itself).
func FromParentMap(source geom.Pt, parent map[geom.Pt]geom.Pt, sinks []geom.Pt) (*Tree, error) {
	index := map[geom.Pt]int{source: 0}
	t := &Tree{Tile: []geom.Pt{source}, Parent: []int{-1}}
	// Insert tiles in an order that guarantees parents exist first: walk up
	// from every key to the source, then unwind.
	var insert func(p geom.Pt) (int, error)
	insert = func(p geom.Pt) (int, error) {
		if i, ok := index[p]; ok {
			return i, nil
		}
		pp, ok := parent[p]
		if !ok {
			return 0, fmt.Errorf("rtree: tile %v has no parent and is not the source", p)
		}
		if pp.Manhattan(p) != 1 {
			return 0, fmt.Errorf("rtree: parent %v not adjacent to %v", pp, p)
		}
		pi, err := insert(pp)
		if err != nil {
			return 0, err
		}
		i := len(t.Tile)
		index[p] = i
		t.Tile = append(t.Tile, p)
		t.Parent = append(t.Parent, pi)
		return i, nil
	}
	// Insert in a deterministic order: map iteration order would otherwise
	// vary the node numbering between runs, and downstream tie-breaking
	// (e.g. the buffer DP's argmin) would follow it.
	keys := make([]geom.Pt, 0, len(parent))
	for p := range parent {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Y != keys[b].Y {
			return keys[a].Y < keys[b].Y
		}
		return keys[a].X < keys[b].X
	})
	for _, p := range keys {
		if _, err := insert(p); err != nil {
			return nil, err
		}
	}
	for _, s := range sinks {
		i, ok := index[s]
		if !ok {
			return nil, fmt.Errorf("rtree: sink tile %v not on route", s)
		}
		t.SinkNode = append(t.SinkNode, i)
	}
	return t, nil
}

// Reset empties the tree in place, keeping the slice capacity, so its
// storage can back a new route (see route.Workspace.Recycle). The cached
// child adjacency is dropped — it would describe the old shape.
func (t *Tree) Reset() {
	t.Tile = t.Tile[:0]
	t.Parent = t.Parent[:0]
	t.SinkNode = t.SinkNode[:0]
	t.children = nil
}

// NumNodes returns the number of tiles spanned by the route.
func (t *Tree) NumNodes() int { return len(t.Tile) }

// NumEdges returns the number of tile-graph edges used (nodes - 1).
func (t *Tree) NumEdges() int { return len(t.Tile) - 1 }

// Children returns the child node indices of v. The adjacency is built on
// first use and cached; callers must not mutate Parent afterwards.
func (t *Tree) Children(v int) []int {
	if t.children == nil {
		t.children = make([][]int, len(t.Tile))
		for i := 1; i < len(t.Parent); i++ {
			p := t.Parent[i]
			t.children[p] = append(t.children[p], i)
		}
	}
	return t.children[v]
}

// PostOrder returns the node indices in post-order (children before
// parents), root last.
func (t *Tree) PostOrder() []int {
	order := make([]int, 0, len(t.Tile))
	// Iterative DFS to avoid recursion depth issues on long snakes.
	type frame struct {
		node, next int
	}
	stack := []frame{{0, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.Children(f.node)
		if f.next < len(kids) {
			c := kids[f.next]
			f.next++
			stack = append(stack, frame{c, 0})
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// IsSink reports whether node v carries at least one sink.
func (t *Tree) IsSink(v int) bool {
	for _, s := range t.SinkNode {
		if s == v {
			return true
		}
	}
	return false
}

// SinksAt returns how many sinks node v carries.
func (t *Tree) SinksAt(v int) int {
	n := 0
	for _, s := range t.SinkNode {
		if s == v {
			n++
		}
	}
	return n
}

// EdgePairs returns the (parent tile, child tile) pairs of all tree edges,
// in node order. Useful for registering wire usage on a tile graph.
func (t *Tree) EdgePairs() [][2]geom.Pt {
	out := make([][2]geom.Pt, 0, t.NumEdges())
	for v := 1; v < len(t.Tile); v++ {
		out = append(out, [2]geom.Pt{t.Tile[t.Parent[v]], t.Tile[v]})
	}
	return out
}

// Validate checks the structural invariants: a single root at node 0,
// parent-child tiles grid-adjacent, no duplicate tiles, all sink indices in
// range, and inGrid (when non-nil) satisfied by every tile.
func (t *Tree) Validate(inGrid func(geom.Pt) bool) error {
	if len(t.Tile) == 0 || len(t.Parent) != len(t.Tile) {
		return fmt.Errorf("rtree: malformed arrays (%d tiles, %d parents)", len(t.Tile), len(t.Parent))
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("rtree: node 0 must be the root")
	}
	seen := make(map[geom.Pt]bool, len(t.Tile))
	for v, p := range t.Parent {
		if seen[t.Tile[v]] {
			return fmt.Errorf("rtree: duplicate tile %v", t.Tile[v])
		}
		seen[t.Tile[v]] = true
		if inGrid != nil && !inGrid(t.Tile[v]) {
			return fmt.Errorf("rtree: tile %v outside grid", t.Tile[v])
		}
		if v == 0 {
			continue
		}
		if p < 0 || p >= len(t.Tile) {
			return fmt.Errorf("rtree: node %d parent %d out of range", v, p)
		}
		if p >= v {
			// FromParentMap and the routers always insert parents first;
			// relying on it keeps traversals simple.
			return fmt.Errorf("rtree: node %d has parent %d >= itself", v, p)
		}
		if t.Tile[v].Manhattan(t.Tile[p]) != 1 {
			return fmt.Errorf("rtree: nodes %d-%d tiles %v-%v not adjacent", v, p, t.Tile[v], t.Tile[p])
		}
	}
	for _, s := range t.SinkNode {
		if s < 0 || s >= len(t.Tile) {
			return fmt.Errorf("rtree: sink node %d out of range", s)
		}
	}
	return nil
}

// Prune removes leaf tiles that carry no sink and are not the root,
// repeating until none remain. Routers that graft paths can leave such
// stubs behind. It returns a new tree; the receiver is unchanged.
func (t *Tree) Prune() *Tree {
	n := len(t.Tile)
	deg := make([]int, n) // child counts
	for v := 1; v < n; v++ {
		deg[t.Parent[v]]++
	}
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	isSink := make([]bool, n)
	for _, s := range t.SinkNode {
		isSink[s] = true
	}
	// Iteratively peel childless, sinkless, non-root nodes.
	queue := []int{}
	for v := 1; v < n; v++ {
		if deg[v] == 0 && !isSink[v] {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		keep[v] = false
		p := t.Parent[v]
		deg[p]--
		if p != 0 && deg[p] == 0 && !isSink[p] && keep[p] {
			queue = append(queue, p)
		}
	}
	// Rebuild with dense indices, preserving parent-before-child order.
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	nt := &Tree{}
	for v := 0; v < n; v++ {
		if !keep[v] {
			continue
		}
		remap[v] = len(nt.Tile)
		nt.Tile = append(nt.Tile, t.Tile[v])
		if v == 0 {
			nt.Parent = append(nt.Parent, -1)
		} else {
			nt.Parent = append(nt.Parent, remap[t.Parent[v]])
		}
	}
	for _, s := range t.SinkNode {
		nt.SinkNode = append(nt.SinkNode, remap[s])
	}
	return nt
}

// TwoPaths decomposes the tree into its two-paths: maximal paths whose
// interior nodes have degree two (one child, no sink), ending at the root,
// a sink node, or a branching (Steiner) node. Each path is returned as node
// indices from the upstream end (head, closer to the root) to the
// downstream end (tail).
func (t *Tree) TwoPaths() [][]int {
	n := len(t.Tile)
	childCount := make([]int, n)
	for v := 1; v < n; v++ {
		childCount[t.Parent[v]]++
	}
	endpoint := func(v int) bool {
		return v == 0 || childCount[v] != 1 || t.IsSink(v)
	}
	var paths [][]int
	// Walk down from every endpoint through degree-2 chains.
	for v := 0; v < n; v++ {
		if !endpoint(v) {
			continue
		}
		for _, c := range t.Children(v) {
			path := []int{v, c}
			for !endpoint(path[len(path)-1]) {
				path = append(path, t.Children(path[len(path)-1])[0])
			}
			paths = append(paths, path)
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		return paths[i][0] < paths[j][0] || (paths[i][0] == paths[j][0] && paths[i][1] < paths[j][1])
	})
	return paths
}

// PathTiles maps a node-index path to its tiles.
func (t *Tree) PathTiles(path []int) []geom.Pt {
	out := make([]geom.Pt, len(path))
	for i, v := range path {
		out[i] = t.Tile[v]
	}
	return out
}
