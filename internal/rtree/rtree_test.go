package rtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// chain builds a straight horizontal route source (0,0) .. (n-1,0) with a
// sink at the far end.
func chain(n int) *Tree {
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x < n; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: n - 1}})
	if err != nil {
		panic(err)
	}
	return t
}

// tee builds a T: source (0,0) to (2,0), branching at (1,0) up to (1,2);
// sinks at (2,0) and (1,2).
func tee() *Tree {
	p := map[geom.Pt]geom.Pt{
		{X: 1, Y: 0}: {X: 0, Y: 0},
		{X: 2, Y: 0}: {X: 1, Y: 0},
		{X: 1, Y: 1}: {X: 1, Y: 0},
		{X: 1, Y: 2}: {X: 1, Y: 1},
	}
	t, err := FromParentMap(geom.Pt{}, p, []geom.Pt{{X: 2, Y: 0}, {X: 1, Y: 2}})
	if err != nil {
		panic(err)
	}
	return t
}

func TestFromParentMapChain(t *testing.T) {
	tr := chain(5)
	if tr.NumNodes() != 5 || tr.NumEdges() != 4 {
		t.Fatalf("nodes/edges = %d/%d", tr.NumNodes(), tr.NumEdges())
	}
	if err := tr.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if len(tr.SinkNode) != 1 || tr.Tile[tr.SinkNode[0]] != (geom.Pt{X: 4}) {
		t.Error("sink node wrong")
	}
}

func TestFromParentMapErrors(t *testing.T) {
	// Orphan tile.
	_, err := FromParentMap(geom.Pt{}, map[geom.Pt]geom.Pt{{X: 5}: {X: 4}}, nil)
	if err == nil {
		t.Error("orphan chain accepted")
	}
	// Non-adjacent parent.
	_, err = FromParentMap(geom.Pt{}, map[geom.Pt]geom.Pt{{X: 2}: {X: 0}}, nil)
	if err == nil {
		t.Error("non-adjacent parent accepted")
	}
	// Sink off route.
	_, err = FromParentMap(geom.Pt{}, map[geom.Pt]geom.Pt{{X: 1}: {X: 0}}, []geom.Pt{{X: 3}})
	if err == nil {
		t.Error("off-route sink accepted")
	}
}

func TestSourceIsSinkTile(t *testing.T) {
	tr, err := FromParentMap(geom.Pt{}, map[geom.Pt]geom.Pt{{X: 1}: {X: 0}}, []geom.Pt{{X: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.SinkNode[0] != 0 {
		t.Error("sink at source tile should map to node 0")
	}
}

func TestChildrenAndPostOrder(t *testing.T) {
	tr := tee()
	if err := tr.Validate(nil); err != nil {
		t.Fatal(err)
	}
	po := tr.PostOrder()
	if len(po) != tr.NumNodes() {
		t.Fatalf("post order has %d entries", len(po))
	}
	if po[len(po)-1] != 0 {
		t.Error("root must come last in post order")
	}
	pos := make([]int, tr.NumNodes())
	for i, v := range po {
		pos[v] = i
	}
	for v := 1; v < tr.NumNodes(); v++ {
		if pos[v] > pos[tr.Parent[v]] {
			t.Errorf("node %d appears after its parent", v)
		}
	}
	// The branch node (1,0) must have two children.
	for v, tl := range tr.Tile {
		if tl == (geom.Pt{X: 1, Y: 0}) && len(tr.Children(v)) != 2 {
			t.Errorf("branch node has %d children", len(tr.Children(v)))
		}
	}
}

func TestSinkQueries(t *testing.T) {
	tr := tee()
	sinks := 0
	for v := range tr.Tile {
		sinks += tr.SinksAt(v)
		if tr.SinksAt(v) > 0 != tr.IsSink(v) {
			t.Errorf("IsSink/SinksAt disagree at %d", v)
		}
	}
	if sinks != 2 {
		t.Errorf("total sinks = %d", sinks)
	}
}

func TestEdgePairsAdjacent(t *testing.T) {
	tr := tee()
	pairs := tr.EdgePairs()
	if len(pairs) != tr.NumEdges() {
		t.Fatalf("EdgePairs len %d", len(pairs))
	}
	for _, pq := range pairs {
		if pq[0].Manhattan(pq[1]) != 1 {
			t.Errorf("pair %v not adjacent", pq)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := tee()
	tr.Tile[2] = tr.Tile[1]
	if err := tr.Validate(nil); err == nil {
		t.Error("duplicate tile accepted")
	}
	tr = tee()
	tr.Parent[0] = 0
	if err := tr.Validate(nil); err == nil {
		t.Error("bad root accepted")
	}
	tr = tee()
	tr.SinkNode[0] = 99
	if err := tr.Validate(nil); err == nil {
		t.Error("sink out of range accepted")
	}
	tr = tee()
	if err := tr.Validate(func(p geom.Pt) bool { return p.X < 2 }); err == nil {
		t.Error("out-of-grid tile accepted")
	}
}

func TestPruneRemovesStubs(t *testing.T) {
	// Route with a dangling stub off the main chain.
	p := map[geom.Pt]geom.Pt{
		{X: 1, Y: 0}: {X: 0, Y: 0},
		{X: 2, Y: 0}: {X: 1, Y: 0},
		{X: 1, Y: 1}: {X: 1, Y: 0}, // stub
		{X: 1, Y: 2}: {X: 1, Y: 1}, // stub
	}
	tr, err := FromParentMap(geom.Pt{}, p, []geom.Pt{{X: 2, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	pruned := tr.Prune()
	if pruned.NumNodes() != 3 {
		t.Fatalf("pruned to %d nodes, want 3", pruned.NumNodes())
	}
	if err := pruned.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 5 {
		t.Error("Prune mutated the receiver")
	}
	want := []geom.Pt{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	if !reflect.DeepEqual(pruned.Tile, want) {
		t.Errorf("pruned tiles = %v", pruned.Tile)
	}
	if pruned.Tile[pruned.SinkNode[0]] != (geom.Pt{X: 2, Y: 0}) {
		t.Error("sink remap wrong")
	}
}

func TestPruneKeepsSinkLeaves(t *testing.T) {
	tr := tee()
	pruned := tr.Prune()
	if pruned.NumNodes() != tr.NumNodes() {
		t.Error("Prune removed needed nodes")
	}
}

func TestTwoPathsTee(t *testing.T) {
	tr := tee()
	paths := tr.TwoPaths()
	// Tee: source->(1,0) [branch], (1,0)->(2,0), (1,0)->(1,2).
	if len(paths) != 3 {
		t.Fatalf("got %d two-paths: %v", len(paths), paths)
	}
	for _, p := range paths {
		if len(p) < 2 {
			t.Errorf("degenerate path %v", p)
		}
		// Interior nodes must be degree-2 non-sinks.
		for _, v := range p[1 : len(p)-1] {
			if len(tr.Children(v)) != 1 || tr.IsSink(v) {
				t.Errorf("path %v has invalid interior %d", p, v)
			}
		}
	}
}

func TestTwoPathsChain(t *testing.T) {
	tr := chain(6)
	paths := tr.TwoPaths()
	if len(paths) != 1 || len(paths[0]) != 6 {
		t.Fatalf("chain two-paths = %v", paths)
	}
	if paths[0][0] != 0 {
		t.Error("path must start at the head (root side)")
	}
	tiles := tr.PathTiles(paths[0])
	if tiles[0] != (geom.Pt{}) || tiles[5] != (geom.Pt{X: 5}) {
		t.Errorf("PathTiles = %v", tiles)
	}
}

// randomTreeMap builds a random connected route by a lattice random walk.
func randomTreeMap(r *rand.Rand, steps int) (map[geom.Pt]geom.Pt, []geom.Pt) {
	parent := map[geom.Pt]geom.Pt{}
	cur := geom.Pt{}
	visited := []geom.Pt{cur}
	for i := 0; i < steps; i++ {
		// Restart from a random visited tile to create branches.
		cur = visited[r.Intn(len(visited))]
		d := [4]geom.Pt{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}[r.Intn(4)]
		nxt := cur.Add(d)
		if nxt == (geom.Pt{}) {
			continue
		}
		if _, ok := parent[nxt]; ok {
			continue
		}
		parent[nxt] = cur
		visited = append(visited, nxt)
	}
	sinks := []geom.Pt{visited[len(visited)-1]}
	return parent, sinks
}

func TestRandomTreesInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pm, sinks := randomTreeMap(r, 1+r.Intn(60))
		tr, err := FromParentMap(geom.Pt{}, pm, sinks)
		if err != nil {
			return false
		}
		if tr.Validate(nil) != nil {
			return false
		}
		if tr.NumNodes() != len(pm)+1 {
			return false
		}
		// Two-paths partition the edge set.
		edges := 0
		for _, p := range tr.TwoPaths() {
			edges += len(p) - 1
		}
		if edges != tr.NumEdges() {
			return false
		}
		// Prune keeps validity and all sinks reachable.
		pr := tr.Prune()
		return pr.Validate(nil) == nil && len(pr.SinkNode) == len(tr.SinkNode)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSingleTileTree(t *testing.T) {
	tr, err := FromParentMap(geom.Pt{X: 3, Y: 3}, nil, []geom.Pt{{X: 3, Y: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || tr.NumEdges() != 0 {
		t.Error("single-tile tree malformed")
	}
	if len(tr.TwoPaths()) != 0 {
		t.Error("single node has no two-paths")
	}
	if got := tr.Prune(); got.NumNodes() != 1 {
		t.Error("prune broke single node")
	}
}
