// Package delay evaluates Elmore delay on buffered routed trees. The paper
// reports maximum and average source-to-sink delay to quantify timing (no
// timing constraints exist at the planning stage), so this evaluator is the
// measurement instrument behind the delay columns of Tables II-V.
//
// Model: every route-tree edge is one tile of wire with distributed RC
// (pi-model: the edge resistance sees half its own capacitance plus all
// downstream capacitance). The net's driver has resistance Tech.DriverRes;
// each sink loads its tile junction with Tech.SinkCap. Inserted buffers use
// Tech.Buffer: input capacitance decouples everything downstream of the
// buffer from the upstream gate, the output resistance and intrinsic delay
// start a new stage. Trunk buffers (Branch == -1) drive the node's whole
// junction; branch buffers drive a single child edge (Fig. 8).
package delay

import (
	"fmt"
	"math"

	"repro/internal/bufferdp"
	"repro/internal/rtree"
	"repro/internal/tech"
)

// Evaluator computes sink delays for routed trees on a particular tiling.
type Evaluator struct {
	Tech tech.Tech
	// TileUm is the tile side length in micrometers (one tree edge = one
	// tile of wire).
	TileUm float64
}

// NewEvaluator validates the technology and returns an evaluator.
func NewEvaluator(t tech.Tech, tileUm float64) (Evaluator, error) {
	if err := t.Validate(); err != nil {
		return Evaluator{}, err
	}
	if tileUm <= 0 {
		return Evaluator{}, fmt.Errorf("delay: tile size %g must be positive", tileUm)
	}
	return Evaluator{Tech: t, TileUm: tileUm}, nil
}

// Placed is a buffer with an explicit gate from the library, for the
// timing-driven flows that size buffers.
type Placed struct {
	Buf  bufferdp.Buffer
	Gate tech.Gate
}

// buffering is the per-tree view of an assignment.
type buffering struct {
	trunk  []*tech.Gate          // trunk buffer at node (nil = none)
	branch map[[2]int]*tech.Gate // branch buffer on edge (node, child)
}

func newBuffering(rt *rtree.Tree, bufs []Placed) (buffering, error) {
	b := buffering{
		trunk:  make([]*tech.Gate, rt.NumNodes()),
		branch: map[[2]int]*tech.Gate{},
	}
	for _, pl := range bufs {
		bf := pl.Buf
		g := pl.Gate
		if bf.Node < 0 || bf.Node >= rt.NumNodes() {
			return b, fmt.Errorf("delay: buffer node %d out of range", bf.Node)
		}
		if bf.Branch == -1 {
			b.trunk[bf.Node] = &g
			continue
		}
		if bf.Branch < 0 || bf.Branch >= rt.NumNodes() || rt.Parent[bf.Branch] != bf.Node {
			return b, fmt.Errorf("delay: buffer branch %d is not a child of %d", bf.Branch, bf.Node)
		}
		b.branch[[2]int{bf.Node, bf.Branch}] = &g
	}
	return b, nil
}

// SinkDelays returns the Elmore delay in seconds from the net's driver to
// each sink, in the order of rt.SinkNode, with every buffer using the
// technology's single planning buffer.
func (e Evaluator) SinkDelays(rt *rtree.Tree, bufs []bufferdp.Buffer) ([]float64, error) {
	placed := make([]Placed, len(bufs))
	for i, b := range bufs {
		placed[i] = Placed{Buf: b, Gate: e.Tech.Buffer}
	}
	return e.SinkDelaysSized(rt, placed)
}

// SinkDelaysSized is SinkDelays with an explicit gate per buffer, for
// timing-driven flows that choose sizes from a library.
func (e Evaluator) SinkDelaysSized(rt *rtree.Tree, bufs []Placed) ([]float64, error) {
	bf, err := newBuffering(rt, bufs)
	if err != nil {
		return nil, err
	}
	t := e.Tech
	wireR := t.WireRes(e.TileUm)
	wireC := t.WireCap(e.TileUm)

	n := rt.NumNodes()
	// junction[v]: capacitance at node v's junction (after a trunk buffer,
	// if any) looking down.
	junction := make([]float64, n)
	// nodeLoad(v): capacitance the incoming wire sees at v.
	nodeLoad := func(v int) float64 {
		if g := bf.trunk[v]; g != nil {
			return g.InCap
		}
		return junction[v]
	}
	for _, v := range rt.PostOrder() {
		c := float64(rt.SinksAt(v)) * t.SinkCap
		for _, w := range rt.Children(v) {
			if g := bf.branch[[2]int{v, w}]; g != nil {
				c += g.InCap
			} else {
				c += wireC + nodeLoad(w)
			}
		}
		junction[v] = c
	}

	arrival := make([]float64, n)
	for i := range arrival {
		arrival[i] = math.NaN()
	}

	// descend propagates arrival times inside one gate stage starting at
	// node v's junction with arrival time tAt.
	var descend func(v int, tAt float64)
	// driveJunction starts a gate (driver or buffer) with output resistance
	// rg at node v's junction; t0 is the arrival at the gate input plus its
	// intrinsic delay.
	driveJunction := func(v int, rg, t0 float64) {
		descend(v, t0+rg*junction[v])
	}
	// enterNode handles arrival at node w's junction entry, accounting for
	// a trunk buffer there.
	enterNode := func(w int, tw float64) {
		if g := bf.trunk[w]; g != nil {
			driveJunction(w, g.OutRes, tw+g.Intrinsic)
		} else {
			descend(w, tw)
		}
	}
	descend = func(v int, tAt float64) {
		arrival[v] = tAt
		for _, w := range rt.Children(v) {
			if g := bf.branch[[2]int{v, w}]; g != nil {
				// Dedicated buffer at v for this branch.
				t1 := tAt + g.Intrinsic
				load := wireC + nodeLoad(w)
				tw := t1 + g.OutRes*load + wireR*(wireC/2+nodeLoad(w))
				enterNode(w, tw)
				continue
			}
			tw := tAt + wireR*(wireC/2+nodeLoad(w))
			enterNode(w, tw)
		}
	}
	if g := bf.trunk[0]; g != nil {
		// A buffer right at the source tile: the driver sees only its
		// input capacitance.
		t0 := t.DriverRes*g.InCap + g.Intrinsic
		driveJunction(0, g.OutRes, t0)
	} else {
		driveJunction(0, t.DriverRes, 0)
	}

	out := make([]float64, len(rt.SinkNode))
	for i, s := range rt.SinkNode {
		out[i] = arrival[s]
	}
	return out, nil
}

// Stats summarizes a set of per-sink delays.
type Stats struct {
	Max, Sum float64
	Count    int
	// NonFinite counts delays that were NaN or ±Inf and were therefore
	// excluded from Max/Sum/Count: a broken net's +Inf sentinel (see
	// core.refreshDelays) must never poison the aggregate delay columns.
	// Callers surface it as the "delay.nonfinite" telemetry counter.
	NonFinite int
}

// Add folds one net's sink delays into the stats, skipping (but counting)
// non-finite values.
func (s *Stats) Add(delays []float64) {
	for _, d := range delays {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			s.NonFinite++
			continue
		}
		if d > s.Max {
			s.Max = d
		}
		s.Sum += d
		s.Count++
	}
}

// Avg returns the mean sink delay, or zero with no sinks.
func (s Stats) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// MaxPs and AvgPs report in picoseconds, the unit of the paper's tables.
func (s Stats) MaxPs() float64 { return s.Max * 1e12 }

// AvgPs reports the mean sink delay in picoseconds.
func (s Stats) AvgPs() float64 { return s.Avg() * 1e12 }
