package delay

import (
	"math"
	"testing"

	"repro/internal/bufferdp"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/tech"
)

// toyTech uses round numbers so expected delays can be computed by hand.
func toyTech() tech.Tech {
	return tech.Tech{
		WireResPerUm: 2,
		WireCapPerUm: 3,
		DriverRes:    5,
		Buffer:       tech.Gate{OutRes: 7, InCap: 11, Intrinsic: 13},
		SinkCap:      17,
	}
}

func pathTree(n int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x < n; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: n - 1}})
	if err != nil {
		panic(err)
	}
	return t
}

func mustEval(t *testing.T, tt tech.Tech, tile float64) Evaluator {
	t.Helper()
	e, err := NewEvaluator(tt, tile)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(tech.Tech{}, 1); err == nil {
		t.Error("zero tech accepted")
	}
	if _, err := NewEvaluator(tech.Default018(), 0); err == nil {
		t.Error("zero tile accepted")
	}
}

func TestHandComputedUnbuffered(t *testing.T) {
	e := mustEval(t, toyTech(), 1)
	rt := pathTree(3) // source, t1, t2(sink): 2 edges
	d, err := e.SinkDelays(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// junction(t2)=17; junction(t1)=3+17=20; junction(root)=3+20=23
	// arrival(root)=5*23=115; t1 = 115+2*(1.5+20)=158; t2 = 158+2*(1.5+17)=195
	if len(d) != 1 || math.Abs(d[0]-195) > 1e-9 {
		t.Errorf("delay = %v, want 195", d)
	}
}

func TestHandComputedTrunkBuffer(t *testing.T) {
	e := mustEval(t, toyTech(), 1)
	rt := pathTree(3)
	d, err := e.SinkDelays(rt, []bufferdp.Buffer{{Node: 1, Branch: -1}})
	if err != nil {
		t.Fatal(err)
	}
	// junction(root)=3+11=14; arrival(root)=70; wire to t1: +2*(1.5+11)=95;
	// buffer: +13, then 7*(3+17)=140 -> 248; wire to t2: +2*(1.5+17)=285.
	if math.Abs(d[0]-285) > 1e-9 {
		t.Errorf("delay = %v, want 285", d[0])
	}
}

func TestSourceTileTrunkBuffer(t *testing.T) {
	e := mustEval(t, toyTech(), 1)
	rt := pathTree(2)
	d, err := e.SinkDelays(rt, []bufferdp.Buffer{{Node: 0, Branch: -1}})
	if err != nil {
		t.Fatal(err)
	}
	// driver: 5*11 + 13 = 68; buffer drives junction(root)=3+17=20: +7*20=140
	// -> 208; wire: +2*(1.5+17)=37 -> 245.
	if math.Abs(d[0]-245) > 1e-9 {
		t.Errorf("delay = %v, want 245", d[0])
	}
}

func TestUnbufferedDelayIsSuperlinear(t *testing.T) {
	e := mustEval(t, tech.Default018(), 600)
	short, err := e.SinkDelays(pathTree(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	long, err := e.SinkDelays(pathTree(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	if long[0] <= 2*short[0] {
		t.Errorf("RC delay should grow superlinearly: 5 tiles %.3gps, 10 tiles %.3gps",
			short[0]*1e12, long[0]*1e12)
	}
}

func TestBuffersHelpLongLines(t *testing.T) {
	e := mustEval(t, tech.Default018(), 600)
	rt := pathTree(31) // 30 tiles = 18mm of wire
	unbuf, err := e.SinkDelays(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var bufs []bufferdp.Buffer
	for v := 5; v < 31; v += 5 {
		bufs = append(bufs, bufferdp.Buffer{Node: v, Branch: -1})
	}
	buf, err := e.SinkDelays(rt, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] >= unbuf[0] {
		t.Errorf("buffering a 18mm line must reduce delay: %.3gps -> %.3gps",
			unbuf[0]*1e12, buf[0]*1e12)
	}
}

// yTree: source with a 1-edge branch to sink A and a long branch to sink B.
func yTree(longLen int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{
		{X: 0, Y: 1}: {X: 0, Y: 0}, // short branch (sink A)
	}
	for x := 1; x <= longLen; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := rtree.FromParentMap(geom.Pt{}, parent,
		[]geom.Pt{{X: 0, Y: 1}, {X: longLen, Y: 0}})
	if err != nil {
		panic(err)
	}
	return t
}

func TestDecouplingShieldsShortBranch(t *testing.T) {
	e := mustEval(t, tech.Default018(), 600)
	rt := yTree(12)
	// Find the long branch's first node (child of root at (1,0)).
	longChild := -1
	for v, tl := range rt.Tile {
		if tl == (geom.Pt{X: 1, Y: 0}) {
			longChild = v
		}
	}
	plain, err := e.SinkDelays(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := e.SinkDelays(rt, []bufferdp.Buffer{{Node: 0, Branch: longChild}})
	if err != nil {
		t.Fatal(err)
	}
	// Sink A (index 0) must get faster when the heavy branch is decoupled.
	if dec[0] >= plain[0] {
		t.Errorf("decoupling did not shield the short sink: %.3gps -> %.3gps",
			plain[0]*1e12, dec[0]*1e12)
	}
}

func TestMoreLoadMoreDelay(t *testing.T) {
	e := mustEval(t, tech.Default018(), 600)
	// Same route, one vs two sinks at the end tile.
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x <= 5; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	one, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: 5}})
	if err != nil {
		t.Fatal(err)
	}
	two, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: 5}, {X: 5}})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := e.SinkDelays(one, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.SinkDelays(two, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0] <= d1[0] {
		t.Error("extra sink load should increase delay")
	}
}

func TestDelaysArePositiveAndFinite(t *testing.T) {
	e := mustEval(t, tech.Default018(), 600)
	rt := yTree(7)
	d, err := e.SinkDelays(rt, []bufferdp.Buffer{{Node: 3, Branch: -1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("sink %d delay %v", i, v)
		}
	}
}

func TestBufferValidation(t *testing.T) {
	e := mustEval(t, toyTech(), 1)
	rt := pathTree(3)
	if _, err := e.SinkDelays(rt, []bufferdp.Buffer{{Node: 99, Branch: -1}}); err == nil {
		t.Error("out-of-range buffer node accepted")
	}
	if _, err := e.SinkDelays(rt, []bufferdp.Buffer{{Node: 0, Branch: 2}}); err == nil {
		t.Error("non-child branch accepted")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Add([]float64{1e-12, 3e-12})
	s.Add([]float64{2e-12})
	if s.Count != 3 {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.MaxPs()-3) > 1e-9 {
		t.Errorf("max = %v ps", s.MaxPs())
	}
	if math.Abs(s.AvgPs()-2) > 1e-9 {
		t.Errorf("avg = %v ps", s.AvgPs())
	}
	var empty Stats
	if empty.Avg() != 0 {
		t.Error("empty avg should be 0")
	}
}
