package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/spanning"
)

func TestMedian3(t *testing.T) {
	cases := [][4]int{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 1, 3, 2}, {5, 5, 1, 5}, {1, 1, 1, 1}, {0, 9, 4, 4},
	}
	for _, c := range cases {
		if got := median3(c[0], c[1], c[2]); got != c[3] {
			t.Errorf("median3(%d,%d,%d) = %d, want %d", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestFig4OverlapRemoval(t *testing.T) {
	// Fig. 4: a node with two edges going right-up and right-down overlaps
	// on the shared horizontal run; a Steiner point removes it.
	pts := []geom.Pt{{X: 0, Y: 2}, {X: 4, Y: 0}, {X: 4, Y: 4}}
	parent := []int{-1, 0, 0}
	before := spanning.Wirelength(pts, parent) // 6 + 6 = 12
	st := RemoveOverlaps(pts, parent)
	if st.Wirelength() >= before {
		t.Fatalf("overlap removal did not reduce wirelength: %d -> %d", before, st.Wirelength())
	}
	// Optimal: Steiner point at (4,2): 4 + 2 + 2 = 8.
	if st.Wirelength() != 8 {
		t.Errorf("wirelength = %d, want 8", st.Wirelength())
	}
	if len(st.Pts) != 4 {
		t.Errorf("expected one Steiner point, got pts %v", st.Pts)
	}
	if st.Pts[3] != (geom.Pt{X: 4, Y: 2}) {
		t.Errorf("Steiner point = %v, want (4,2)", st.Pts[3])
	}
}

func TestOverlapRemovalNoGain(t *testing.T) {
	// Collinear chain has no overlap to remove.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 6, Y: 0}}
	parent := []int{-1, 0, 1}
	st := RemoveOverlaps(pts, parent)
	if len(st.Pts) != 3 || st.Wirelength() != 6 {
		t.Errorf("chain modified: %v wl=%d", st.Pts, st.Wirelength())
	}
}

func TestOverlapRemovalReusesExistingNode(t *testing.T) {
	// Steiner point coincides with an endpoint: edges (u,a),(u,b) where the
	// median of the triple is a itself.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}
	parent := []int{-1, 0, 0} // u=0: edges to (2,0) and (4,0); median is (2,0)
	st := RemoveOverlaps(pts, parent)
	if len(st.Pts) != 3 {
		t.Fatalf("should not add a node, got %v", st.Pts)
	}
	if st.Wirelength() != 4 {
		t.Errorf("wirelength = %d, want 4", st.Wirelength())
	}
}

// spanningConnected verifies the Steiner tree connects all terminals.
func connected(st *Tree) bool {
	if len(st.Pts) == 0 {
		return false
	}
	adj := make([][]int, len(st.Pts))
	for _, e := range st.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, len(st.Pts))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for i := 0; i < st.NumTerminals; i++ {
		if !seen[i] {
			return false
		}
	}
	return true
}

func randomDistinctPts(r *rand.Rand, n int) []geom.Pt {
	seen := map[geom.Pt]bool{}
	var pts []geom.Pt
	for len(pts) < n {
		p := geom.Pt{X: r.Intn(20), Y: r.Intn(20)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func TestOverlapRemovalProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomDistinctPts(r, 2+r.Intn(10))
		parent, err := spanning.Tree(pts, 0.4)
		if err != nil {
			return false
		}
		before := spanning.Wirelength(pts, parent)
		st := RemoveOverlaps(pts, parent)
		// Never increases wirelength, remains connected, remains a tree
		// (#edges == #nodes - 1).
		if st.Wirelength() > before {
			return false
		}
		if !connected(st) {
			return false
		}
		return len(st.Edges) == len(st.Pts)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLPath(t *testing.T) {
	p := LPath(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 3, Y: 2})
	if len(p) != 6 {
		t.Fatalf("path length %d, want 6 tiles", len(p))
	}
	if p[0] != (geom.Pt{X: 0, Y: 0}) || p[len(p)-1] != (geom.Pt{X: 3, Y: 2}) {
		t.Error("endpoints wrong")
	}
	for i := 1; i < len(p); i++ {
		if p[i-1].Manhattan(p[i]) != 1 {
			t.Fatalf("non-adjacent steps %v -> %v", p[i-1], p[i])
		}
	}
	// Degenerate.
	if got := LPath(geom.Pt{X: 2, Y: 2}, geom.Pt{X: 2, Y: 2}); len(got) != 1 {
		t.Errorf("self path = %v", got)
	}
	// Straight line.
	if got := LPath(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 0, Y: -3}); len(got) != 4 {
		t.Errorf("straight path = %v", got)
	}
}

func TestLPathBothOrientationsOccur(t *testing.T) {
	a := geom.Pt{X: 0, Y: 0}
	hFirst := LPath(a, geom.Pt{X: 2, Y: 2}) // parity even -> horizontal first
	vFirst := LPath(a, geom.Pt{X: 2, Y: 1}) // parity odd -> vertical first
	if hFirst[1] != (geom.Pt{X: 1, Y: 0}) {
		t.Errorf("expected horizontal-first, got second tile %v", hFirst[1])
	}
	if vFirst[1] != (geom.Pt{X: 0, Y: 1}) {
		t.Errorf("expected vertical-first, got second tile %v", vFirst[1])
	}
}

func mkNet(id int, src geom.Pt, sinks ...geom.Pt) *netlist.Net {
	pin := func(p geom.Pt) netlist.Pin {
		return netlist.Pin{Tile: p, Pos: geom.FPt{X: float64(p.X) * 100, Y: float64(p.Y) * 100}}
	}
	n := &netlist.Net{ID: id, Name: "t", Source: pin(src), L: 5}
	for _, s := range sinks {
		n.Sinks = append(n.Sinks, pin(s))
	}
	return n
}

func TestInitialRouteSimple(t *testing.T) {
	n := mkNet(0, geom.Pt{X: 0, Y: 0}, geom.Pt{X: 5, Y: 3}, geom.Pt{X: 2, Y: 4})
	rt, err := InitialRoute(n, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkNode) != 2 {
		t.Fatalf("sink nodes = %d", len(rt.SinkNode))
	}
	if rt.Tile[0] != (geom.Pt{X: 0, Y: 0}) {
		t.Error("root must be source tile")
	}
	// Route length is at least the RSMT lower bound (half perimeter of the
	// bounding box) and no worse than the star routing.
	if rt.NumEdges() < 8 {
		t.Errorf("route too short: %d edges", rt.NumEdges())
	}
	if rt.NumEdges() > 14 {
		t.Errorf("route too long: %d edges", rt.NumEdges())
	}
}

func TestInitialRouteCoincidentPins(t *testing.T) {
	// Source and sink in the same tile.
	n := mkNet(0, geom.Pt{X: 1, Y: 1}, geom.Pt{X: 1, Y: 1})
	rt, err := InitialRoute(n, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumNodes() != 1 {
		t.Errorf("coincident net spans %d tiles", rt.NumNodes())
	}
}

func TestInitialRouteProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomDistinctPts(r, 2+r.Intn(8))
		n := mkNet(0, pts[0], pts[1:]...)
		rt, err := InitialRoute(n, 0.4)
		if err != nil {
			return false
		}
		if rt.Validate(nil) != nil {
			return false
		}
		if len(rt.SinkNode) != len(n.Sinks) {
			return false
		}
		// Every sink tile must be on the route.
		for i, s := range n.Sinks {
			if rt.Tile[rt.SinkNode[i]] != s.Tile {
				return false
			}
		}
		// No leaf without a sink after pruning.
		childCount := make([]int, rt.NumNodes())
		for v := 1; v < rt.NumNodes(); v++ {
			childCount[rt.Parent[v]]++
		}
		for v := 1; v < rt.NumNodes(); v++ {
			if childCount[v] == 0 && !rt.IsSink(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
