// Package steiner converts spanning trees into rectilinear Steiner trees by
// the paper's Stage-1 greedy overlap removal (Fig. 4) and embeds the result
// onto the tile grid as a routed tree (rtree.Tree).
package steiner

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/spanning"
)

// Tree is a Steiner tree over tile coordinates: the input terminals first
// (in their original order), then any Steiner points introduced.
type Tree struct {
	Pts          []geom.Pt
	NumTerminals int
	Edges        [][2]int
}

// Wirelength returns the total Manhattan length of the tree edges.
func (t *Tree) Wirelength() int {
	total := 0
	for _, e := range t.Edges {
		total += t.Pts[e[0]].Manhattan(t.Pts[e[1]])
	}
	return total
}

// median3 returns the median of three ints.
func median3(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// steinerPoint returns the 1-median (componentwise median) of three points,
// the optimal meeting point for the triple in the Manhattan metric.
func steinerPoint(u, a, b geom.Pt) geom.Pt {
	return geom.Pt{X: median3(u.X, a.X, b.X), Y: median3(u.Y, a.Y, b.Y)}
}

// RemoveOverlaps greedily removes wirelength overlap from a spanning tree
// (Fig. 4): it repeatedly finds the pair of tree edges sharing an endpoint
// with the largest positive overlap, replaces them with three edges through
// the triple's median point, and stops when no pair improves. parent is the
// spanning-tree parent array over pts (parent[0] = -1).
func RemoveOverlaps(pts []geom.Pt, parent []int) *Tree {
	t := &Tree{
		Pts:          append([]geom.Pt(nil), pts...),
		NumTerminals: len(pts),
	}
	for v, p := range parent {
		if p >= 0 {
			t.Edges = append(t.Edges, [2]int{p, v})
		}
	}
	for {
		gain, e1, e2, u, s := t.bestOverlap()
		if gain <= 0 {
			return t
		}
		t.apply(e1, e2, u, s)
	}
}

// bestOverlap scans all edge pairs sharing an endpoint and returns the best
// gain with the chosen edges, shared node, and Steiner point.
func (t *Tree) bestOverlap() (gain, e1, e2, u int, s geom.Pt) {
	// adjacency: node -> incident edge indices
	adj := make([][]int, len(t.Pts))
	for i, e := range t.Edges {
		adj[e[0]] = append(adj[e[0]], i)
		adj[e[1]] = append(adj[e[1]], i)
	}
	gain, e1, e2, u = 0, -1, -1, -1
	for node, inc := range adj {
		for i := 0; i < len(inc); i++ {
			for j := i + 1; j < len(inc); j++ {
				a := t.other(inc[i], node)
				b := t.other(inc[j], node)
				sp := steinerPoint(t.Pts[node], t.Pts[a], t.Pts[b])
				before := t.Pts[node].Manhattan(t.Pts[a]) + t.Pts[node].Manhattan(t.Pts[b])
				after := t.Pts[node].Manhattan(sp) + sp.Manhattan(t.Pts[a]) + sp.Manhattan(t.Pts[b])
				if g := before - after; g > gain {
					gain, e1, e2, u, s = g, inc[i], inc[j], node, sp
				}
			}
		}
	}
	return gain, e1, e2, u, s
}

// other returns the endpoint of edge e that is not node.
func (t *Tree) other(e, node int) int {
	if t.Edges[e][0] == node {
		return t.Edges[e][1]
	}
	return t.Edges[e][0]
}

// apply replaces edges e1 = (u,a) and e2 = (u,b) with (u,s), (s,a), (s,b),
// reusing an existing node when s coincides with one.
func (t *Tree) apply(e1, e2, u int, s geom.Pt) {
	a := t.other(e1, u)
	b := t.other(e2, u)
	si := -1
	for _, cand := range [3]int{u, a, b} {
		if t.Pts[cand] == s {
			si = cand
			break
		}
	}
	if si == -1 {
		si = len(t.Pts)
		t.Pts = append(t.Pts, s)
	}
	// Remove e1, e2 (delete the higher index first).
	if e1 < e2 {
		e1, e2 = e2, e1
	}
	t.Edges = append(t.Edges[:e1], t.Edges[e1+1:]...)
	t.Edges = append(t.Edges[:e2], t.Edges[e2+1:]...)
	for _, pair := range [3][2]int{{u, si}, {si, a}, {si, b}} {
		if pair[0] != pair[1] {
			t.Edges = append(t.Edges, pair)
		}
	}
}

// LPath returns the tiles of an L-shaped route from a to b (inclusive). The
// bend orientation is chosen deterministically from the endpoint parity so
// that Stage-1 embeddings spread over both orientations.
func LPath(a, b geom.Pt) []geom.Pt {
	horizFirst := (a.X+a.Y+b.X+b.Y)%2 == 0
	path := []geom.Pt{a}
	cur := a
	step := func(dx, dy int) {
		cur = cur.Add(geom.Pt{X: dx, Y: dy})
		path = append(path, cur)
	}
	walkX := func() {
		for cur.X != b.X {
			if b.X > cur.X {
				step(1, 0)
			} else {
				step(-1, 0)
			}
		}
	}
	walkY := func() {
		for cur.Y != b.Y {
			if b.Y > cur.Y {
				step(0, 1)
			} else {
				step(0, -1)
			}
		}
	}
	if horizFirst {
		walkX()
		walkY()
	} else {
		walkY()
		walkX()
	}
	return path
}

// Embed lays the Steiner tree onto the tile grid: every tree edge becomes an
// L-shaped tile path, paths are grafted into a single routed tree (crossing
// an already-routed tile reconnects there), and sinkless stubs are pruned.
// Terminal 0 is the source. sinkTiles lists the tiles of the net's sinks.
func Embed(t *Tree, sinkTiles []geom.Pt) (*rtree.Tree, error) {
	if t.NumTerminals == 0 {
		return nil, fmt.Errorf("steiner: no terminals")
	}
	source := t.Pts[0]
	adj := make([][]int, len(t.Pts))
	for _, e := range t.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	parent := map[geom.Pt]geom.Pt{}
	inTree := func(p geom.Pt) bool {
		if p == source {
			return true
		}
		_, ok := parent[p]
		return ok
	}
	// BFS over Steiner nodes from the source so each edge's upstream end is
	// already embedded when we route it.
	visited := make([]bool, len(t.Pts))
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if visited[m] {
				continue
			}
			visited[m] = true
			queue = append(queue, m)
			path := LPath(t.Pts[n], t.Pts[m])
			if !inTree(path[0]) {
				return nil, fmt.Errorf("steiner: embedding anchor %v not in tree", path[0])
			}
			prev := path[0]
			for _, tl := range path[1:] {
				if !inTree(tl) {
					parent[tl] = prev
				}
				prev = tl
			}
		}
	}
	for n, ok := range visited {
		if !ok {
			return nil, fmt.Errorf("steiner: node %d (%v) disconnected", n, t.Pts[n])
		}
	}
	rt, err := rtree.FromParentMap(source, parent, sinkTiles)
	if err != nil {
		return nil, err
	}
	return rt.Prune(), nil
}

// InitialRoute runs the complete Stage-1 construction for one net: the
// Prim–Dijkstra tradeoff tree over the net's distinct pin tiles, greedy
// overlap removal, and tile embedding.
func InitialRoute(n *netlist.Net, alpha float64) (*rtree.Tree, error) {
	tiles := n.Tiles()
	par, err := spanning.Tree(tiles, alpha)
	if err != nil {
		return nil, fmt.Errorf("steiner: net %d: %w", n.ID, err)
	}
	return finishRoute(n, tiles, par)
}

// InitialRouteCostDistance is the cost-distance alternative to InitialRoute
// (core.Params.SteinerMode "costdist"): the spanning skeleton is the
// Held–Perner-style cost-distance tree with per-net weight w = 1/L, so
// delay-critical nets (small length constraints) lean toward shortest
// source paths while relaxed nets approach the MST. Overlap removal and
// embedding are shared with the Prim–Dijkstra path.
func InitialRouteCostDistance(n *netlist.Net) (*rtree.Tree, error) {
	tiles := n.Tiles()
	if n.L < 1 {
		return nil, fmt.Errorf("steiner: net %d: length constraint %d < 1", n.ID, n.L)
	}
	par, err := spanning.CostDistanceTree(tiles, 1/float64(n.L))
	if err != nil {
		return nil, fmt.Errorf("steiner: net %d: %w", n.ID, err)
	}
	return finishRoute(n, tiles, par)
}

// finishRoute is the shared tail of the Stage-1 constructions: greedy
// overlap removal over the spanning skeleton, then tile embedding.
func finishRoute(n *netlist.Net, tiles []geom.Pt, par []int) (*rtree.Tree, error) {
	st := RemoveOverlaps(tiles, par)
	sinks := make([]geom.Pt, len(n.Sinks))
	for i, s := range n.Sinks {
		sinks[i] = s.Tile
	}
	rt, err := Embed(st, sinks)
	if err != nil {
		return nil, fmt.Errorf("steiner: net %d: %w", n.ID, err)
	}
	return rt, nil
}
