package route

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// benchWorkload builds a deterministic congested routing instance shaped
// like a mid-size suite benchmark: a 32x32 grid, 120 nets of 1-3 sinks,
// capacity tight enough that rip-up has real work to do.
func benchWorkload(b testing.TB) (*tile.Graph, []*netlist.Net, []*rtree.Tree, []int) {
	b.Helper()
	const w, h, numNets = 32, 32, 120
	sites := make([]int, w*h)
	for i := range sites {
		sites[i] = 4
	}
	g, err := tile.New(w, h, sites, 3)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	nets := make([]*netlist.Net, numNets)
	for i := range nets {
		pin := func(p geom.Pt) netlist.Pin {
			return netlist.Pin{Tile: p, Pos: geom.FPt{X: float64(p.X) * 100, Y: float64(p.Y) * 100}}
		}
		n := &netlist.Net{ID: i, Name: "b", L: 6,
			Source: pin(geom.Pt{X: r.Intn(w), Y: r.Intn(h)})}
		for k := 0; k <= r.Intn(3); k++ {
			n.Sinks = append(n.Sinks, pin(geom.Pt{X: r.Intn(w), Y: r.Intn(h)}))
		}
		nets[i] = n
	}
	routes := make([]*rtree.Tree, numNets)
	order := make([]int, numNets)
	for i, n := range nets {
		rt, err := Reroute(g, n, DefaultOptions(), nil)
		if err != nil {
			b.Fatal(err)
		}
		routes[i] = rt
		AddUsage(g, rt)
		order[i] = i
	}
	return g, nets, routes, order
}

// BenchmarkReroute measures one wavefront reroute of a multi-sink net on a
// congested graph — the Stage-2 inner kernel. The returned tree is recycled
// each iteration, the steady state RipupPass runs in, so allocs/op should
// read 0 with a warmed workspace.
func BenchmarkReroute(b *testing.B) {
	g, nets, routes, _ := benchWorkload(b)
	n := nets[17]
	RemoveUsage(g, routes[17])
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := Reroute(g, n, DefaultOptions(), ws)
		if err != nil {
			b.Fatal(err)
		}
		ws.Recycle(rt)
	}
}

// BenchmarkRipupPass measures one full Nair pass over every net — the unit
// of Stage-2 work ReduceCongestion repeats.
func BenchmarkRipupPass(b *testing.B) {
	g, nets, routes, order := benchWorkload(b)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RipupPass(g, nets, routes, order, DefaultOptions(), ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRipupPassParallel measures the speculative parallel pass at a
// few worker counts against the same workload as BenchmarkRipupPass. On a
// single-CPU host the Workers>1 rows mostly exercise the protocol overhead
// (speculate + validate + commit); the speedup shows up on multi-core.
func BenchmarkRipupPassParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g, nets, routes, order := benchWorkload(b)
			ws := NewWorkspace()
			px := NewParallel(workers, NewPool())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := px.Pass(g, nets, routes, order, DefaultOptions(), ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// reportWavefront attaches deterministic pops/op and relaxations/op custom
// metrics to b. The instrumented probe call runs before the timer starts
// and the metrics are reported after the loop (ResetTimer clears custom
// metrics), so the timed loop stays observer-free; the counts are exact
// because the search is deterministic.
func reportWavefront(b *testing.B, m *obs.Metrics, popsKey, relaxKey string) {
	b.Helper()
	b.ReportMetric(m.Counter(popsKey), "pops/op")
	b.ReportMetric(m.Counter(relaxKey), "relaxations/op")
}

// BenchmarkRerouteKernel is the search-kernel matrix for the Stage-2
// wavefront at the pipeline's default alpha (0.4). The astar row falls back
// to heap order here (the PD key is non-monotone below alpha = 1; see
// kernel.go), so it documents the fallback's overhead — the heuristic's
// pops win shows up in BenchmarkRerouteKernelAlpha1 and the Stage-4 matrix.
func BenchmarkRerouteKernel(b *testing.B) {
	for _, kernel := range Kernels() {
		b.Run(kernel, func(b *testing.B) {
			g, nets, routes, _ := benchWorkload(b)
			n := nets[17]
			RemoveUsage(g, routes[17])
			opt := DefaultOptions()
			opt.Kernel = kernel
			probe := opt
			probe.Obs = obs.NewMetrics()
			ws := NewWorkspace()
			rt, err := Reroute(g, n, probe, ws)
			if err != nil {
				b.Fatal(err)
			}
			ws.Recycle(rt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt, err := Reroute(g, n, opt, ws)
				if err != nil {
					b.Fatal(err)
				}
				ws.Recycle(rt)
			}
			b.StopTimer()
			reportWavefront(b, probe.Obs.(*obs.Metrics), "route.pops", "route.relaxations")
		})
	}
}

// BenchmarkRerouteKernelAlpha1 is the same matrix at alpha = 1 — the
// cost-distance Steiner mode's Stage-2 regime, where the astar kernel's
// consistent heuristic engages and prunes pops while returning identical
// path costs (TestAstarCostIdenticalReroute).
func BenchmarkRerouteKernelAlpha1(b *testing.B) {
	for _, kernel := range Kernels() {
		b.Run(kernel, func(b *testing.B) {
			g, nets, routes, _ := benchWorkload(b)
			n := nets[17]
			RemoveUsage(g, routes[17])
			opt := DefaultOptions()
			opt.Kernel = kernel
			opt.Alpha = 1
			probe := opt
			probe.Obs = obs.NewMetrics()
			ws := NewWorkspace()
			rt, err := Reroute(g, n, probe, ws)
			if err != nil {
				b.Fatal(err)
			}
			ws.Recycle(rt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt, err := Reroute(g, n, opt, ws)
				if err != nil {
					b.Fatal(err)
				}
				ws.Recycle(rt)
			}
			b.StopTimer()
			reportWavefront(b, probe.Obs.(*obs.Metrics), "route.pops", "route.relaxations")
		})
	}
}

// BenchmarkBufferAwarePathKernel is the kernel matrix for the Stage-4
// (tile, j) maze — the pipeline's dominant pops source, and the search the
// astar kernel always accelerates (pure Dijkstra, consistent heuristic,
// goal-directed long two-point path).
func BenchmarkBufferAwarePathKernel(b *testing.B) {
	for _, kernel := range Kernels() {
		b.Run(kernel, func(b *testing.B) {
			g, _, routes, _ := benchWorkload(b)
			tail, head := geom.Pt{X: 29, Y: 29}, geom.Pt{X: 2, Y: 2}
			blocked := make([]bool, g.NumTiles())
			for _, t := range routes[3].Tile {
				blocked[g.TileIndex(t)] = true
			}
			blocked[g.TileIndex(tail)] = false
			blocked[g.TileIndex(head)] = false
			opt := DefaultOptions()
			opt.Kernel = kernel
			probe := opt
			probe.Obs = obs.NewMetrics()
			ws := NewWorkspace()
			if _, err := BufferAwarePath(g, tail, head, 6, blocked, probe, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BufferAwarePath(g, tail, head, 6, blocked, opt, ws); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportWavefront(b, probe.Obs.(*obs.Metrics), "route.bap.pops", "route.bap.relaxations")
		})
	}
}

// BenchmarkBufferAwarePath measures the Stage-4 (tile, j) combined-cost maze
// on a long two-path with a blocked tree mask.
func BenchmarkBufferAwarePath(b *testing.B) {
	g, _, routes, _ := benchWorkload(b)
	tail, head := geom.Pt{X: 29, Y: 29}, geom.Pt{X: 2, Y: 2}
	blocked := make([]bool, g.NumTiles())
	for _, t := range routes[3].Tile {
		blocked[g.TileIndex(t)] = true
	}
	blocked[g.TileIndex(tail)] = false
	blocked[g.TileIndex(head)] = false
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BufferAwarePath(g, tail, head, 6, blocked, DefaultOptions(), ws); err != nil {
			b.Fatal(err)
		}
	}
}
