// Package route implements the tile-graph routing used by Stages 2 and 4:
// a Prim–Dijkstra-flavored wavefront expansion under the congestion cost of
// Eq. (1), whole-net rip-up-and-reroute in the style of Nair, and the
// buffer-aware two-path maze search of Stage 4 that minimizes the combined
// wire and buffer congestion costs (Eqs. (1) + (2)).
package route

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// Options controls the router.
type Options struct {
	// Alpha is the Prim–Dijkstra tradeoff applied to the accumulated path
	// cost when relaxing neighbors (1 = pure shortest paths). The paper
	// reuses its Stage-1 value, 0.4.
	Alpha float64
	// LengthWeight is added to every edge cost so that among equally
	// uncongested routes the shorter one wins.
	LengthWeight float64
	// OverflowPenalty replaces the +Inf of Eq. (1)/(2) so that a route (or
	// buffer) always exists even when every alternative is saturated; the
	// huge cost still makes the router exhaust all finite options first.
	OverflowPenalty float64
	// Weight, when non-nil, replaces the congestion cost of Eq. (1) as the
	// per-edge routing cost (LengthWeight is still added). The
	// multicommodity-flow router uses this to route under its own
	// exponential edge lengths.
	Weight func(e int) float64
	// Obs receives router telemetry: per-net wavefront pop/push counters,
	// rip-up pass spans with the per-pass overflow trajectory, and
	// congestion-heat snapshots after every pass. nil (the default)
	// disables instrumentation at zero cost.
	Obs obs.Observer
	// Stage labels emitted telemetry with the pipeline stage (0 outside
	// the RABID pipeline).
	Stage int
	// Pass labels emitted telemetry with the rip-up pass number;
	// ReduceCongestion sets it on the per-pass Options copy.
	Pass int
}

// DefaultOptions returns the parameter set used by the experiments.
func DefaultOptions() Options {
	return Options{Alpha: 0.4, LengthWeight: 0.05, OverflowPenalty: 1e6}
}

// edgeCost returns the finite routing cost for edge e.
func edgeCost(g *tile.Graph, e int, opt Options) float64 {
	var c float64
	if opt.Weight != nil {
		c = opt.Weight(e)
	} else {
		c = g.WireCost(e)
	}
	if c > opt.OverflowPenalty {
		c = opt.OverflowPenalty
	}
	return c + opt.LengthWeight
}

// pqItem is a priority-queue entry for the wavefront.
type pqItem struct {
	node int
	key  float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].key < q[j].key }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Reroute computes a fresh route tree for the net on the current congestion
// state of g. The net's own previous wires must already be removed from g
// (see RemoveUsage). The route is a union of wavefront paths from the
// source tile to every sink tile, traced back through the predecessor
// labels, exactly as described for Stage 2.
func Reroute(g *tile.Graph, n *netlist.Net, opt Options) (*rtree.Tree, error) {
	src := n.Source.Tile
	if !g.InGrid(src) {
		return nil, fmt.Errorf("route: net %d source %v outside grid", n.ID, src)
	}
	nt := g.NumTiles()
	key := make([]float64, nt)      // PD selection key
	pathCost := make([]float64, nt) // accumulated edge cost from source
	pred := make([]int, nt)
	done := make([]bool, nt)
	for i := range key {
		key[i] = math.Inf(1)
		pred[i] = -1
	}
	want := map[int]bool{}
	for _, s := range n.Sinks {
		if !g.InGrid(s.Tile) {
			return nil, fmt.Errorf("route: net %d sink %v outside grid", n.ID, s.Tile)
		}
		want[g.TileIndex(s.Tile)] = true
	}
	srcIdx := g.TileIndex(src)
	delete(want, srcIdx)

	key[srcIdx] = 0
	q := pq{{srcIdx, 0}}
	var nbuf []geom.Pt
	pops, pushes := 0, 1
	for len(q) > 0 && len(want) > 0 {
		it := heap.Pop(&q).(pqItem)
		pops++
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		delete(want, u)
		pu := g.TileAt(u)
		nbuf = g.Neighbors(pu, nbuf[:0])
		for _, pv := range nbuf {
			v := g.TileIndex(pv)
			if done[v] {
				continue
			}
			e, _ := g.EdgeBetween(pu, pv)
			ec := edgeCost(g, e, opt)
			k := opt.Alpha*pathCost[u] + ec
			if k < key[v] {
				key[v] = k
				pathCost[v] = pathCost[u] + ec
				pred[v] = u
				heap.Push(&q, pqItem{v, k})
				pushes++
			}
		}
	}
	if opt.Obs != nil {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.pops", Stage: opt.Stage, Net: n.ID, Value: float64(pops)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.pushes", Stage: opt.Stage, Net: n.ID, Value: float64(pushes)})
	}
	if len(want) > 0 {
		return nil, fmt.Errorf("route: net %d: %d sinks unreachable", n.ID, len(want))
	}
	// Trace each sink back to the source; the union of predecessor paths is
	// a tree because every node has one predecessor.
	parent := map[geom.Pt]geom.Pt{}
	for _, s := range n.Sinks {
		for v := g.TileIndex(s.Tile); v != srcIdx; v = pred[v] {
			pv := g.TileAt(v)
			if _, ok := parent[pv]; ok {
				break // already traced from here up
			}
			parent[pv] = g.TileAt(pred[v])
		}
	}
	sinks := make([]geom.Pt, len(n.Sinks))
	for i, s := range n.Sinks {
		sinks[i] = s.Tile
	}
	rt, err := rtree.FromParentMap(src, parent, sinks)
	if err != nil {
		return nil, fmt.Errorf("route: net %d: %w", n.ID, err)
	}
	return rt.Prune(), nil
}

// AddUsage registers one wire per route-tree edge on the graph.
func AddUsage(g *tile.Graph, rt *rtree.Tree) {
	for _, pq := range rt.EdgePairs() {
		e, ok := g.EdgeBetween(pq[0], pq[1])
		if !ok {
			panic(fmt.Sprintf("route: tree edge %v-%v not a grid edge", pq[0], pq[1]))
		}
		g.AddWire(e)
	}
}

// RemoveUsage removes the route tree's wires from the graph.
func RemoveUsage(g *tile.Graph, rt *rtree.Tree) {
	for _, pq := range rt.EdgePairs() {
		e, ok := g.EdgeBetween(pq[0], pq[1])
		if !ok {
			panic(fmt.Sprintf("route: tree edge %v-%v not a grid edge", pq[0], pq[1]))
		}
		g.RemoveWire(e)
	}
}

// RipupPass performs one full Nair-style pass: every net, in the given
// order, is deleted entirely and rerouted under the current congestion.
// routes is updated in place (indexed like nets). With an observer
// attached it counts reroutes attempted versus improved/degraded (by
// routed wirelength), the convergence signal of the Nair iteration.
func RipupPass(g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, opt Options) error {
	reroutes, improved, degraded := 0, 0, 0
	for _, i := range order {
		oldEdges := routes[i].NumEdges()
		RemoveUsage(g, routes[i])
		rt, err := Reroute(g, nets[i], opt)
		if err != nil {
			AddUsage(g, routes[i]) // restore before failing
			return err
		}
		routes[i] = rt
		AddUsage(g, rt)
		reroutes++
		if n := rt.NumEdges(); n < oldEdges {
			improved++
		} else if n > oldEdges {
			degraded++
		}
	}
	if opt.Obs != nil {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.reroutes", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(reroutes)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.improved", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(improved)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.degraded", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(degraded)})
	}
	return nil
}

// ReduceCongestion is Stage 2: up to maxPasses full rip-up-and-reroute
// passes, stopping early once no edge exceeds capacity. It returns the
// number of passes executed. Each pass is a trace span carrying the
// post-pass overflow trajectory and a congestion-heat snapshot.
func ReduceCongestion(g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, maxPasses int, opt Options) (int, error) {
	return ReduceCongestionCtx(context.Background(), g, nets, routes, order, maxPasses, opt)
}

// ReduceCongestionCtx is ReduceCongestion with a cancellation checkpoint at
// every rip-up pass boundary: once ctx is done no further pass starts and
// ctx.Err() is returned with the passes completed so far. A pass itself
// always runs to completion, so the graph's usage accounting is only ever
// observed at a pass boundary.
func ReduceCongestionCtx(ctx context.Context, g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, maxPasses int, opt Options) (int, error) {
	passes := 0
	for passes < maxPasses {
		if err := ctx.Err(); err != nil {
			return passes, err
		}
		if g.WireCongestion().Overflow == 0 && passes > 0 {
			break
		}
		popt := opt
		popt.Pass = passes + 1
		t0 := obs.Now(opt.Obs)
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindSpanBegin, Scope: "ripup.pass", Stage: opt.Stage, Pass: popt.Pass, Net: -1})
		err := RipupPass(g, nets, routes, order, popt)
		if opt.Obs != nil {
			ws := g.WireCongestion()
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "ripup.overflow", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Value: float64(ws.Overflow)})
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "ripup.wire_max", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Value: ws.Max})
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindHeat, Scope: "heat.wire", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Vals: wireHeat(g)})
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindSpanEnd, Scope: "ripup.pass", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Dur: obs.Since(opt.Obs, t0)})
		}
		if err != nil {
			return passes, err
		}
		passes++
		if g.WireCongestion().Overflow == 0 {
			break
		}
	}
	return passes, nil
}

// wireHeat is the per-tile congestion field emitted with heat snapshots:
// each tile's maximum incident w(e)/W(e).
func wireHeat(g *tile.Graph) []float64 {
	heat := make([]float64, g.NumTiles())
	var nbuf []geom.Pt
	for v := range heat {
		pv := g.TileAt(v)
		nbuf = g.Neighbors(pv, nbuf[:0])
		for _, pw := range nbuf {
			e, _ := g.EdgeBetween(pv, pw)
			if c := float64(g.Usage(e)) / float64(g.Capacity(e)); c > heat[v] {
				heat[v] = c
			}
		}
	}
	return heat
}

// BufferAwarePath finds the cheapest tail-to-head reconnection for a ripped
// two-path under the combined wire + buffer congestion cost. The search
// state is (tile, j) where j is the tile distance since the last buffer
// (bounded by L-1, as in the Stage-3 cost arrays); moving to a tile either
// advances j or places a buffer there (adding the Eq. (2) site cost) and
// resets j. blocked tiles (the rest of the net's tree) are not entered.
// The returned path runs from head to tail inclusive.
func BufferAwarePath(g *tile.Graph, tail, head geom.Pt, L int, blocked map[geom.Pt]bool, opt Options) ([]geom.Pt, error) {
	if L < 1 {
		return nil, fmt.Errorf("route: length constraint %d < 1", L)
	}
	if !g.InGrid(tail) || !g.InGrid(head) {
		return nil, fmt.Errorf("route: endpoints %v,%v outside grid", tail, head)
	}
	nt := g.NumTiles()
	// The (tile, j) state space is indexed by int32 predecessor labels; a
	// large grid times a large L would silently wrap the labels and corrupt
	// the traceback, so the size is guarded up front (before allocation).
	if int64(nt)*int64(L) > math.MaxInt32 {
		return nil, fmt.Errorf("route: DP state space %d tiles x L=%d = %d exceeds %d states",
			nt, L, int64(nt)*int64(L), int64(math.MaxInt32))
	}
	size := nt * L
	dist := make([]float64, size)
	pred := make([]int32, size)
	done := make([]bool, size)
	for i := range dist {
		dist[i] = math.Inf(1)
		pred[i] = -1
	}
	siteCost := func(v int) float64 {
		c := g.SiteCost(v)
		if c > opt.OverflowPenalty {
			c = opt.OverflowPenalty
		}
		return c
	}
	state := func(v, j int) int { return v*L + j }
	start := state(g.TileIndex(tail), 0)
	dist[start] = 0
	q := pq{{start, 0}}
	headIdx := g.TileIndex(head)
	var nbuf []geom.Pt
	goal := -1
	pops, pushes := 0, 1
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		pops++
		s := it.node
		if done[s] {
			continue
		}
		done[s] = true
		v, j := s/L, s%L
		if v == headIdx {
			goal = s
			break
		}
		pv := g.TileAt(v)
		nbuf = g.Neighbors(pv, nbuf[:0])
		for _, pw := range nbuf {
			if blocked[pw] && pw != head {
				continue
			}
			w := g.TileIndex(pw)
			e, _ := g.EdgeBetween(pv, pw)
			wc := edgeCost(g, e, opt)
			// Advance without buffering.
			if j+1 < L {
				ns := state(w, j+1)
				if nd := dist[s] + wc; nd < dist[ns] {
					dist[ns] = nd
					//rabid:allow narrowcast s < nt*L, guarded against MaxInt32 at function entry
					pred[ns] = int32(s)
					heap.Push(&q, pqItem{ns, nd})
					pushes++
				}
			}
			// Buffer at the new tile.
			ns := state(w, 0)
			if nd := dist[s] + wc + siteCost(w); nd < dist[ns] {
				dist[ns] = nd
				//rabid:allow narrowcast s < nt*L, guarded against MaxInt32 at function entry
				pred[ns] = int32(s)
				heap.Push(&q, pqItem{ns, nd})
				pushes++
			}
		}
	}
	if opt.Obs != nil {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.bap.pops", Stage: opt.Stage, Net: -1, Value: float64(pops)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.bap.pushes", Stage: opt.Stage, Net: -1, Value: float64(pushes)})
	}
	if goal < 0 {
		return nil, fmt.Errorf("route: no reconnection from %v to %v", tail, head)
	}
	var rev []geom.Pt
	for s := goal; s != -1; s = int(pred[s]) {
		v := s / L
		pv := g.TileAt(v)
		if len(rev) == 0 || rev[len(rev)-1] != pv {
			rev = append(rev, pv)
		}
	}
	// rev is head..tail already (we traced from the head state back).
	return rev, nil
}
