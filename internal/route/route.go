// Package route implements the tile-graph routing used by Stages 2 and 4:
// a Prim–Dijkstra-flavored wavefront expansion under the congestion cost of
// Eq. (1), whole-net rip-up-and-reroute in the style of Nair, and the
// buffer-aware two-path maze search of Stage 4 that minimizes the combined
// wire and buffer congestion costs (Eqs. (1) + (2)).
package route

import (
	"context"
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// Options controls the router.
type Options struct {
	// Alpha is the Prim–Dijkstra tradeoff applied to the accumulated path
	// cost when relaxing neighbors (1 = pure shortest paths). The paper
	// reuses its Stage-1 value, 0.4.
	Alpha float64
	// LengthWeight is added to every edge cost so that among equally
	// uncongested routes the shorter one wins.
	LengthWeight float64
	// OverflowPenalty replaces the +Inf of Eq. (1)/(2) so that a route (or
	// buffer) always exists even when every alternative is saturated; the
	// huge cost still makes the router exhaust all finite options first.
	OverflowPenalty float64
	// Weight, when non-nil, replaces the congestion cost of Eq. (1) as the
	// per-edge routing cost (LengthWeight is still added). The
	// multicommodity-flow router uses this to route under its own
	// exponential edge lengths.
	Weight func(e int) float64
	// Kernel selects the wavefront priority-queue implementation:
	// KernelHeap (binary heap, the default; "" means heap), KernelDial
	// (bucket queue, byte-identical results), or KernelAstar (goal-directed,
	// identical path costs, fewer pops). See kernel.go and DESIGN.md
	// "Search kernels". A non-nil Weight falls back to the heap — the
	// custom cost function publishes none of the bounds the other kernels
	// need.
	Kernel string
	// Obs receives router telemetry: per-net wavefront pop/push counters,
	// rip-up pass spans with the per-pass overflow trajectory, and
	// congestion-heat snapshots after every pass. nil (the default)
	// disables instrumentation at zero cost.
	Obs obs.Observer
	// Stage labels emitted telemetry with the pipeline stage (0 outside
	// the RABID pipeline).
	Stage int
	// Pass labels emitted telemetry with the rip-up pass number;
	// ReduceCongestion sets it on the per-pass Options copy.
	Pass int
}

// DefaultOptions returns the parameter set used by the experiments.
func DefaultOptions() Options {
	return Options{Alpha: 0.4, LengthWeight: 0.05, OverflowPenalty: 1e6}
}

// edgeCost returns the finite routing cost for edge e.
func edgeCost(g *tile.Graph, e int, opt Options) float64 {
	var c float64
	if opt.Weight != nil {
		c = opt.Weight(e)
	} else {
		c = g.WireCost(e)
	}
	if c > opt.OverflowPenalty {
		c = opt.OverflowPenalty
	}
	return c + opt.LengthWeight
}

// edgeCostMemo is edgeCost with a per-call memo: within one kernel call the
// congestion state of g is static (a net's own wires are removed before it
// reroutes), so every evaluation of an edge yields the same value and the
// first one can be cached under the call's epoch. memo is false under
// Options.Weight — a caller-supplied cost function may close over state the
// workspace cannot see.
func (ws *Workspace) edgeCostMemo(g *tile.Graph, e int, opt Options, memo bool) float64 {
	if memo {
		if ws.ecStamp[e] == ws.epoch {
			return ws.ec[e]
		}
		var c float64
		if ws.spec.active {
			c = ws.specEdgeCost(g, e, opt)
		} else {
			c = edgeCost(g, e, opt)
		}
		ws.ecStamp[e] = ws.epoch
		ws.ec[e] = c
		return c
	}
	return edgeCost(g, e, opt)
}

// specEdgeCost prices edge e for a speculative reroute: the Eq. (1)
// congestion term is evaluated at the net's effective usage — the shared
// graph's current usage minus one on the net's own old wires (marked in
// spec.ownStamp) — so the cost matches what the sequential kernel would
// see after RemoveUsage, without mutating g. The raw usage read is
// recorded in the read set; the memoization wrapping this call guarantees
// exactly one entry per distinct edge, making the read set both complete
// (every congestion value the search depended on) and duplicate-free.
func (ws *Workspace) specEdgeCost(g *tile.Graph, e int, opt Options) float64 {
	u := g.Usage(e)
	//rabid:allow narrowcast edge indices are < NumEdges <= MaxInt32 (tile.New) and usage is bounded by the net count
	ws.spec.reads = append(ws.spec.reads, specRead{e: int32(e), use: int32(u)})
	if ws.spec.ownStamp[e] == ws.epoch {
		u--
	}
	c := g.WireCostAt(e, u)
	if c > opt.OverflowPenalty {
		c = opt.OverflowPenalty
	}
	return c + opt.LengthWeight
}

// Reroute computes a fresh route tree for the net on the current congestion
// state of g. The net's own previous wires must already be removed from g
// (see RemoveUsage). The route is a union of wavefront paths from the
// source tile to every sink tile, traced back through the predecessor
// labels, exactly as described for Stage 2.
//
// ws supplies the reusable scratch arrays and recycled tree storage; nil is
// allowed (a private workspace is allocated). With a warmed workspace and a
// nil observer the call performs no allocations.
func Reroute(g *tile.Graph, n *netlist.Net, opt Options, ws *Workspace) (*rtree.Tree, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	src := n.Source.Tile
	if !g.InGrid(src) {
		return nil, fmt.Errorf("route: net %d source %v outside grid", n.ID, src) //rabid:allow allocfree cold abort path: fmt argument boxing only when the route fails
	}
	nt := g.NumTiles()
	ws.begin(g.NumEdges()) //rabid:allow allocfree inlined grow path: begin reallocates edge scratch only when the graph outgrows the workspace
	ws.growTiles(nt)       //rabid:allow allocfree inlined grow path: tile scratch reallocates only when the graph outgrows the workspace
	if ws.spec.active {
		// Speculative reroute: stamp the net's own old wires so
		// specEdgeCost can price them at usage-1 (the sequential kernel
		// would have called RemoveUsage before routing).
		ws.markOwnWires(g)
	}
	ep := ws.epoch
	// Mark the sink tiles still to be reached; remaining counts distinct
	// marked tiles (the wantStamp epoch check deduplicates co-located
	// sinks, as the map insert used to).
	remaining := 0
	for _, s := range n.Sinks {
		if !g.InGrid(s.Tile) {
			return nil, fmt.Errorf("route: net %d sink %v outside grid", n.ID, s.Tile) //rabid:allow allocfree cold abort path: fmt argument boxing only when the route fails
		}
		if ti := g.TileIndex(s.Tile); ws.wantStamp[ti] != ep {
			ws.wantStamp[ti] = ep
			remaining++
		}
	}
	srcIdx := g.TileIndex(src)
	if ws.wantStamp[srcIdx] == ep {
		ws.wantStamp[srcIdx] = 0
		remaining--
	}

	kern, err := resolveKernel(opt)
	if err != nil {
		return nil, err
	}
	if kern == kAstar && opt.Alpha != 1 { //rabid:allow floateq exact gate: A* keeps heap-identical labels only at exactly alpha=1 (see kernel.go)
		// The PD key is non-monotone for alpha < 1: a later pop can offer a
		// done node a smaller key (k_v - k_u = ec_uv - (1-alpha)*ec_parent),
		// so the labels are pop-order-defined and any goal-directed
		// reordering changes results (TestAstarCostIdenticalReroute pins
		// the alpha=1 guarantee; the divergence is real at 0.4). Fall back
		// to the heap order; BufferAwarePath — a pure Dijkstra — and
		// alpha=1 reroutes (the cost-distance Steiner mode) keep the
		// goal-directed speedup.
		kern = kHeap
	}
	ws.qReset(kern, g, opt)
	if kern == kAstar {
		ws.astarArmReroute(g, n, opt)
	}
	ws.stamp[srcIdx] = ep
	ws.key[srcIdx] = 0
	ws.pathCost[srcIdx] = 0
	ws.done[srcIdx] = false
	ws.qPush(pqItem{srcIdx, 0}) // sole item: its priority never competes
	memo := opt.Weight == nil
	tally := opt.Obs != nil // counter bookkeeping only when someone listens
	pops, pushes, relaxations := 0, 0, 0
	if tally {
		pushes = 1
	}
	for ws.qLen() > 0 && remaining > 0 {
		it := ws.qPop()
		if tally {
			pops++
		}
		u := it.node
		if ws.done[u] {
			continue
		}
		ws.done[u] = true
		if ws.wantStamp[u] == ep {
			ws.wantStamp[u] = 0
			remaining--
		}
		nbrs, edges := g.Adjacency(u)
		pcu := ws.pathCost[u]
		base := opt.Alpha * pcu
		for x, v32 := range nbrs {
			v := int(v32)
			if ws.stamp[v] != ep {
				// First touch this call: an unstamped tile reads as
				// key = +Inf, not done.
				ws.stamp[v] = ep
				ws.key[v] = math.Inf(1)
				ws.done[v] = false
			} else if ws.done[v] {
				continue
			}
			if tally {
				relaxations++
			}
			ec := ws.edgeCostMemo(g, int(edges[x]), opt, memo)
			if k := base + ec; k < ws.key[v] {
				ws.key[v] = k
				ws.pathCost[v] = pcu + ec
				//rabid:allow narrowcast tile indices are < NumTiles <= MaxInt32, enforced by tile.New
				ws.pred[v] = int32(u)
				pr := k
				if kern == kAstar {
					pr += ws.astarHR(v, ec)
				}
				ws.qPush(pqItem{v, pr})
				if tally {
					pushes++
				}
			}
		}
	}
	if tally {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.pops", Stage: opt.Stage, Net: n.ID, Value: float64(pops)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.pushes", Stage: opt.Stage, Net: n.ID, Value: float64(pushes)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.relaxations", Stage: opt.Stage, Net: n.ID, Value: float64(relaxations)})
	}
	if remaining > 0 {
		return nil, fmt.Errorf("route: net %d: %d sinks unreachable", n.ID, remaining) //rabid:allow allocfree cold abort path: fmt argument boxing only when the route fails
	}
	// Trace each sink back to the source; the union of predecessor paths is
	// a tree because every node has one predecessor. parent[v] (valid while
	// pstamp[v] == ep) replaces the old geom.Pt parent map; a tile whose
	// chain was already traced stops the walk, like the map-presence check
	// used to.
	tb := ws.touched[:0]
	for _, s := range n.Sinks {
		for v := g.TileIndex(s.Tile); v != srcIdx; v = int(ws.pred[v]) {
			if ws.pstamp[v] == ep {
				break // already traced from here up
			}
			ws.pstamp[v] = ep
			ws.parent[v] = ws.pred[v]
			//rabid:allow narrowcast tile indices are < NumTiles <= MaxInt32, enforced by tile.New
			tb = append(tb, int32(v))
		}
	}
	// Insert in ascending tile-index order: indices are row-major (y*W+x),
	// so this is exactly the (Y, X) key order rtree.FromParentMap sorts
	// its map keys into — the node numbering, which downstream
	// tie-breaking follows, is unchanged.
	slices.Sort(tb)
	ws.touched = tb

	rt := ws.takeTree() //rabid:allow allocfree fresh tree only when the recycle pool is empty; the steady state reuses storage returned through Recycle
	rt.Tile = append(rt.Tile, src)
	rt.Parent = append(rt.Parent, -1)
	ws.nstamp[srcIdx] = ep
	ws.nodeIdx[srcIdx] = 0
	stack := ws.stack[:0]
	for _, v32 := range tb {
		// Parent-first insertion, iteratively: climb to the nearest already
		// inserted ancestor, then unwind. Mirrors FromParentMap's recursive
		// insert; its no-parent/non-adjacent errors cannot fire here because
		// every chain ends at the source over grid edges.
		v := int(v32)
		stack = stack[:0]
		for ws.nstamp[v] != ep {
			//rabid:allow narrowcast v round-trips through int32 tile indices (tile.New caps the grid at MaxInt32 tiles)
			stack = append(stack, int32(v))
			v = int(ws.parent[v])
		}
		pi := int(ws.nodeIdx[v])
		for x := len(stack) - 1; x >= 0; x-- {
			u := int(stack[x])
			ni := len(rt.Tile)
			rt.Tile = append(rt.Tile, g.TileAt(u))
			rt.Parent = append(rt.Parent, pi)
			ws.nstamp[u] = ep
			//rabid:allow narrowcast node count <= NumTiles <= MaxInt32, enforced by tile.New
			ws.nodeIdx[u] = int32(ni)
			pi = ni
		}
	}
	ws.stack = stack
	for _, s := range n.Sinks {
		rt.SinkNode = append(rt.SinkNode, int(ws.nodeIdx[g.TileIndex(s.Tile)]))
	}
	// Pruning is provably a no-op on wavefront traceback output — every
	// inserted tile lies on some sink-to-source path, so every childless
	// node carries a sink. Verify the invariant cheaply instead of paying
	// Prune's rebuild per net; the fallback keeps the contract honest if
	// the invariant is ever broken.
	if treeNeedsPrune(rt, ws) {
		pruned := rt.Prune()
		ws.Recycle(rt)
		rt = pruned
	}
	return rt, nil
}

// treeNeedsPrune reports whether rt has a childless non-root node carrying
// no sink — the only nodes rtree.Prune removes.
func treeNeedsPrune(rt *rtree.Tree, ws *Workspace) bool {
	n := rt.NumNodes()
	cnt := ws.nodeCnt
	if cap(cnt) < n {
		cnt = make([]int32, n)
	}
	cnt = cnt[:n]
	for i := range cnt {
		cnt[i] = 0
	}
	ws.nodeCnt = cnt
	for v := 1; v < n; v++ {
		cnt[rt.Parent[v]]++
	}
	for _, sn := range rt.SinkNode {
		cnt[sn] = -1 // sink nodes are never prunable
	}
	for v := 1; v < n; v++ {
		if cnt[v] == 0 {
			return true
		}
	}
	return false
}

// AddUsage registers one wire per route-tree edge on the graph. Edges are
// visited in node order (as EdgePairs enumerates them) without
// materializing the pair list.
func AddUsage(g *tile.Graph, rt *rtree.Tree) {
	for v := 1; v < len(rt.Tile); v++ {
		a, b := rt.Tile[rt.Parent[v]], rt.Tile[v]
		e, ok := g.EdgeBetween(a, b)
		if !ok {
			panic(fmt.Sprintf("route: tree edge %v-%v not a grid edge", a, b)) //rabid:allow allocfree panic path: boxing only when a corrupted tree violates the grid invariant
		}
		g.AddWire(e)
	}
}

// RemoveUsage removes the route tree's wires from the graph.
func RemoveUsage(g *tile.Graph, rt *rtree.Tree) {
	for v := 1; v < len(rt.Tile); v++ {
		a, b := rt.Tile[rt.Parent[v]], rt.Tile[v]
		e, ok := g.EdgeBetween(a, b)
		if !ok {
			panic(fmt.Sprintf("route: tree edge %v-%v not a grid edge", a, b)) //rabid:allow allocfree panic path: boxing only when a corrupted tree violates the grid invariant
		}
		g.RemoveWire(e)
	}
}

// RipupPass performs one full Nair-style pass: every net, in the given
// order, is deleted entirely and rerouted under the current congestion.
// routes is updated in place (indexed like nets). With an observer
// attached it counts reroutes attempted versus improved/degraded (by
// routed wirelength), the convergence signal of the Nair iteration.
//
// It returns the number of order entries fully committed (old tree
// replaced, wire usage re-registered). On success that is len(order); when
// a Reroute fails mid-pass the earlier nets of the pass have already been
// replaced and their old trees recycled, and the returned count tells the
// caller exactly which prefix of order committed — routes[order[:committed]]
// hold the new trees, the remaining entries still hold their pre-pass
// trees, and the graph's wire usage is consistent with the routes slice in
// either region (the failing net's own wires are restored before the error
// returns). TestRipupPassPartialFailure pins this contract.
//
// Each ripped-up tree is donated to the workspace once its replacement is
// registered (the pass holds the only reference by contract — callers hand
// over routes they own), so a warmed workspace reroutes every net without
// allocating.
func RipupPass(g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, opt Options, ws *Workspace) (committed int, err error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	reroutes, improved, degraded := 0, 0, 0
	for _, i := range order {
		old := routes[i]
		oldEdges := old.NumEdges()
		RemoveUsage(g, old)
		rt, err := Reroute(g, nets[i], opt, ws)
		if err != nil {
			AddUsage(g, old)                                                                               // restore before failing
			return committed, fmt.Errorf("route: rip-up pass failed at net %d after %d of %d commits: %w", //rabid:allow allocfree cold abort path: fmt argument boxing only when the pass fails
				nets[i].ID, committed, len(order), err)
		}
		routes[i] = rt
		AddUsage(g, rt)
		ws.Recycle(old)
		committed++
		reroutes++
		if n := rt.NumEdges(); n < oldEdges {
			improved++
		} else if n > oldEdges {
			degraded++
		}
	}
	if opt.Obs != nil {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.reroutes", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(reroutes)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.improved", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(improved)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.degraded", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(degraded)})
	}
	return committed, nil
}

// ReduceCongestion is Stage 2: up to maxPasses full rip-up-and-reroute
// passes, stopping early once no edge exceeds capacity. It returns the
// number of passes executed — 0 when the circuit is already overflow-free
// at entry (a zero-overflow circuit has nothing for Nair iteration to
// reduce, so no pass runs and the Stage-1 routes are kept verbatim). Each
// pass is a trace span carrying the post-pass overflow trajectory and a
// congestion-heat snapshot.
//
// px, when non-nil, executes each pass with the deterministic speculative
// parallel engine (see Parallel); results and observer event streams are
// byte-identical to px == nil for every worker count. A nil px (or an
// Options.Weight hook, which the speculative cost model cannot see
// through) runs the sequential kernel.
func ReduceCongestion(g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, maxPasses int, opt Options, ws *Workspace, px *Parallel) (int, error) {
	return ReduceCongestionCtx(context.Background(), g, nets, routes, order, maxPasses, opt, ws, px) //rabid:allow ctxflow ReduceCongestion is the documented Background wrapper over ReduceCongestionCtx for context-free callers; core.RunContext calls the Ctx variant
}

// ReduceCongestionCtx is ReduceCongestion with a cancellation checkpoint at
// every rip-up pass boundary: once ctx is done no further pass starts and
// ctx.Err() is returned with the passes completed so far. A pass itself
// always runs to completion, so the graph's usage accounting is only ever
// observed at a pass boundary.
func ReduceCongestionCtx(ctx context.Context, g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, maxPasses int, opt Options, ws *Workspace, px *Parallel) (int, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	// With an observer attached, interpose a counting tap: it forwards
	// every event unchanged (streams stay byte-identical) while summing the
	// per-net route.pops / route.relaxations counters, so the per-kernel
	// totals below reflect exactly the committed event stream — identical
	// under the speculative engine at every worker count, because only
	// committed speculation events flush through the observer.
	var tap *kernelTap
	if opt.Obs != nil {
		tap = &kernelTap{inner: opt.Obs}
		opt.Obs = tap
	}
	passes := 0
	for passes < maxPasses {
		if err := ctx.Err(); err != nil {
			return passes, err
		}
		if g.WireCongestion().Overflow == 0 {
			break
		}
		popt := opt
		popt.Pass = passes + 1
		t0 := obs.Now(opt.Obs)
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindSpanBegin, Scope: "ripup.pass", Stage: opt.Stage, Pass: popt.Pass, Net: -1})
		var err error
		if px != nil && opt.Weight == nil {
			_, err = px.Pass(g, nets, routes, order, popt, ws)
		} else {
			_, err = RipupPass(g, nets, routes, order, popt, ws)
		}
		if opt.Obs != nil {
			wst := g.WireCongestion()
			// The heat snapshot reuses the workspace buffer across passes;
			// observers must not retain Event.Vals (see obs.Event).
			ws.heat = wireHeat(g, ws.heat)
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "ripup.overflow", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Value: float64(wst.Overflow)})
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindGauge, Scope: "ripup.wire_max", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Value: wst.Max})
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindHeat, Scope: "heat.wire", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Vals: ws.heat})
			obs.Emit(opt.Obs, obs.Event{Kind: obs.KindSpanEnd, Scope: "ripup.pass", Stage: opt.Stage, Pass: popt.Pass, Net: -1, Dur: obs.Since(opt.Obs, t0)})
		}
		if err != nil {
			return passes, err
		}
		passes++
		if g.WireCongestion().Overflow == 0 {
			break
		}
	}
	// The speculation totals are emitted once per Stage-2 call, not per
	// pass, so the counters exist (possibly zero) even when the circuit
	// was overflow-free and no pass ran — cmd/metricscheck requires them.
	if px != nil && opt.Obs != nil && opt.Weight == nil {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.speculative", Stage: opt.Stage, Net: -1, Value: float64(px.stats.speculative)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.conflicts", Stage: opt.Stage, Net: -1, Value: float64(px.stats.conflicts)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.replayed", Stage: opt.Stage, Net: -1, Value: float64(px.stats.replayed)})
	}
	// Kernel-labeled wavefront totals, emitted like the speculation totals
	// above: once per Stage-2 call, zero-valued when no pass ran, so
	// cmd/metricscheck can require e.g. route.pops.heap.<stage> whenever an
	// observer is attached.
	if tap != nil {
		label := kernelLabel(opt)
		obs.Emit(tap.inner, obs.Event{Kind: obs.KindCounter, Scope: "route.pops." + label, Stage: opt.Stage, Net: -1, Value: tap.pops})
		obs.Emit(tap.inner, obs.Event{Kind: obs.KindCounter, Scope: "route.relaxations." + label, Stage: opt.Stage, Net: -1, Value: tap.relaxations})
	}
	return passes, nil
}

// kernelTap is a pass-through observer that totals the per-net wavefront
// counters flowing by; ReduceCongestionCtx uses it to emit per-kernel
// aggregates without a second bookkeeping path in the hot loops.
type kernelTap struct {
	inner             obs.Observer
	pops, relaxations float64
}

func (t *kernelTap) Observe(e obs.Event) {
	if e.Kind == obs.KindCounter {
		switch e.Scope {
		case "route.pops":
			t.pops += e.Value
		case "route.relaxations":
			t.relaxations += e.Value
		}
	}
	t.inner.Observe(e)
}

// wireHeat is the per-tile congestion field emitted with heat snapshots:
// each tile's maximum incident w(e)/W(e). The result is written into heat
// (grown as needed) and returned, so a caller-held buffer is reused across
// pass snapshots instead of allocating NumTiles floats per pass.
// Utilization goes through tile.Graph.EdgeUtil, whose zero-capacity guard
// (the analogue of SiteCost's zero-sites check) keeps every snapshot value
// finite — a raw w/W division would plant +Inf or NaN on a blocked edge
// and poison heat.wire observer events and downstream aggregation.
func wireHeat(g *tile.Graph, heat []float64) []float64 {
	nt := g.NumTiles()
	if cap(heat) < nt {
		heat = make([]float64, nt)
	}
	heat = heat[:nt]
	for v := range heat {
		h := 0.0
		_, edges := g.Adjacency(v)
		for _, e32 := range edges {
			if c := g.EdgeUtil(int(e32)); c > h {
				h = c
			}
		}
		heat[v] = h
	}
	return heat
}

// siteCostClamped is the Eq. (2) site cost with the router's overflow
// clamp applied.
func siteCostClamped(g *tile.Graph, v int, opt Options) float64 {
	c := g.SiteCost(v)
	if c > opt.OverflowPenalty {
		c = opt.OverflowPenalty
	}
	return c
}

// BufferAwarePath finds the cheapest tail-to-head reconnection for a ripped
// two-path under the combined wire + buffer congestion cost. The search
// state is (tile, j) where j is the tile distance since the last buffer
// (bounded by L-1, as in the Stage-3 cost arrays); moving to a tile either
// advances j or places a buffer there (adding the Eq. (2) site cost) and
// resets j. blocked tiles (the rest of the net's tree, as a per-tile-index
// mask; nil blocks nothing) are not entered. The returned path runs from
// head to tail inclusive.
//
// ws supplies the reusable (tile, j) state arrays; nil is allowed. The
// returned path aliases the workspace's traceback buffer and is valid only
// until the workspace's next use — callers that keep paths must copy.
func BufferAwarePath(g *tile.Graph, tail, head geom.Pt, L int, blocked []bool, opt Options, ws *Workspace) ([]geom.Pt, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if L < 1 {
		return nil, fmt.Errorf("route: length constraint %d < 1", L) //rabid:allow allocfree cold abort path: fmt argument boxing only on invalid input
	}
	if !g.InGrid(tail) || !g.InGrid(head) {
		return nil, fmt.Errorf("route: endpoints %v,%v outside grid", tail, head) //rabid:allow allocfree cold abort path: fmt argument boxing only on invalid input
	}
	nt := g.NumTiles()
	// The (tile, j) state space is indexed by int32 predecessor labels; a
	// large grid times a large L would silently wrap the labels and corrupt
	// the traceback, so the size is guarded up front (before allocation).
	if int64(nt)*int64(L) > math.MaxInt32 {
		return nil, fmt.Errorf("route: DP state space %d tiles x L=%d = %d exceeds %d states", //rabid:allow allocfree cold abort path: fmt argument boxing only when the guard rejects the instance
			nt, L, int64(nt)*int64(L), int64(math.MaxInt32))
	}
	ws.begin(g.NumEdges()) //rabid:allow allocfree inlined grow path: begin reallocates edge scratch only when the graph outgrows the workspace
	ws.growStates(nt * L)  //rabid:allow allocfree inlined grow path: DP state scratch reallocates only when tiles*L outgrows the workspace
	ep := ws.epoch
	headIdx := g.TileIndex(head)
	kern, err := resolveKernel(opt)
	if err != nil {
		return nil, err
	}
	ws.qReset(kern, g, opt)
	if kern == kAstar {
		ws.astarArmPath(g, headIdx, blocked, opt)
	}
	start := g.TileIndex(tail) * L // state (tail, 0)
	ws.sStamp[start] = ep
	ws.sDist[start] = 0
	ws.sPred[start] = -1
	ws.sDone[start] = false
	ws.qPush(pqItem{start, 0}) // sole item: its priority never competes
	goal := -1
	memo := opt.Weight == nil
	tally := opt.Obs != nil
	pops, pushes, relaxations := 0, 0, 0
	if tally {
		pushes = 1
		if kern == kAstar {
			// The arming reverse Dijkstra is real queue work; charging it
			// here keeps the per-kernel pops/relaxations comparison honest.
			pops += ws.astar.armPops
			relaxations += ws.astar.armRelax
		}
	}
	for ws.qLen() > 0 {
		it := ws.qPop()
		if tally {
			pops++
		}
		s := it.node
		if ws.sDone[s] {
			continue
		}
		ws.sDone[s] = true
		v, j := s/L, s%L
		if v == headIdx {
			goal = s
			break
		}
		ds := ws.sDist[s]
		nbrs, edges := g.Adjacency(v)
		for x, w32 := range nbrs {
			w := int(w32)
			if blocked != nil && blocked[w] && w != headIdx {
				continue
			}
			if tally {
				relaxations++
			}
			wc := ws.edgeCostMemo(g, int(edges[x]), opt, memo)
			var hw float64
			if kern == kAstar {
				hw = ws.astarHPath(w)
			}
			// Advance without buffering.
			if j+1 < L {
				ns := w*L + j + 1
				if ws.sStamp[ns] != ep {
					ws.sStamp[ns] = ep
					ws.sDist[ns] = math.Inf(1)
					ws.sDone[ns] = false
				}
				if nd := ds + wc; nd < ws.sDist[ns] {
					ws.sDist[ns] = nd
					//rabid:allow narrowcast s < nt*L, guarded against MaxInt32 at function entry
					ws.sPred[ns] = int32(s)
					ws.qPush(pqItem{ns, nd + hw})
					if tally {
						pushes++
					}
				}
			}
			// Buffer at the new tile.
			ns := w * L
			if ws.sStamp[ns] != ep {
				ws.sStamp[ns] = ep
				ws.sDist[ns] = math.Inf(1)
				ws.sDone[ns] = false
			}
			if nd := ds + wc + siteCostClamped(g, w, opt); nd < ws.sDist[ns] {
				ws.sDist[ns] = nd
				//rabid:allow narrowcast s < nt*L, guarded against MaxInt32 at function entry
				ws.sPred[ns] = int32(s)
				ws.qPush(pqItem{ns, nd + hw})
				if tally {
					pushes++
				}
			}
		}
	}
	if tally {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.bap.pops", Stage: opt.Stage, Net: -1, Value: float64(pops)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.bap.pushes", Stage: opt.Stage, Net: -1, Value: float64(pushes)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "route.bap.relaxations", Stage: opt.Stage, Net: -1, Value: float64(relaxations)})
	}
	if goal < 0 {
		return nil, fmt.Errorf("route: no reconnection from %v to %v", tail, head) //rabid:allow allocfree cold abort path: fmt argument boxing only when no path exists
	}
	rev := ws.path[:0]
	for s := goal; s != -1; s = int(ws.sPred[s]) {
		pv := g.TileAt(s / L)
		if len(rev) == 0 || rev[len(rev)-1] != pv {
			rev = append(rev, pv)
		}
	}
	ws.path = rev
	// rev is head..tail already (we traced from the head state back).
	return rev, nil
}
