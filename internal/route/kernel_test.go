package route

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// treesEqual and cloneRoutes live in workspace_test.go / parallel_test.go.

// TestDialByteIdenticalRipup pins the tentpole claim at the unit level:
// full multi-pass rip-up under the dial kernel produces exactly the trees
// and final congestion state the heap kernel produces.
func TestDialByteIdenticalRipup(t *testing.T) {
	gh, nets, routesH, order := benchWorkload(t)
	gd := gh.Clone()
	routesD := cloneRoutes(routesH)

	optH := DefaultOptions()
	optD := DefaultOptions()
	optD.Kernel = KernelDial

	for pass := 0; pass < 3; pass++ {
		if _, err := RipupPass(gh, nets, routesH, order, optH, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := RipupPass(gd, nets, routesD, order, optD, nil); err != nil {
			t.Fatal(err)
		}
		for i := range routesH {
			if !treesEqual(routesH[i], routesD[i]) {
				t.Fatalf("pass %d: net %d: dial tree differs from heap tree", pass, i)
			}
		}
	}
	for e := 0; e < gh.NumEdges(); e++ {
		if gh.Usage(e) != gd.Usage(e) {
			t.Fatalf("edge %d: usage heap=%d dial=%d", e, gh.Usage(e), gd.Usage(e))
		}
	}
}

// TestDialByteIdenticalRandom fuzzes the byte-identity over random grids,
// capacities, and nets — including capacity-starved instances where
// penalty-priced keys exercise the far heap.
func TestDialByteIdenticalRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		w, h := 3+r.Intn(14), 3+r.Intn(14)
		g, err := tile.New(w, h, nil, 1+r.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		// Random non-uniform capacities, some blocked edges.
		for e := 0; e < g.NumEdges(); e++ {
			if r.Intn(4) == 0 {
				g.SetCapacity(e, r.Intn(3))
			}
		}
		// Random pre-existing congestion.
		for e := 0; e < g.NumEdges(); e++ {
			for k := r.Intn(3); k > 0; k-- {
				g.AddWire(e)
			}
		}
		n := &netlist.Net{ID: trial, Name: "f", L: 4,
			Source: netlist.Pin{Tile: geom.Pt{X: r.Intn(w), Y: r.Intn(h)}}}
		for k := 0; k <= r.Intn(4); k++ {
			n.Sinks = append(n.Sinks, netlist.Pin{Tile: geom.Pt{X: r.Intn(w), Y: r.Intn(h)}})
		}
		optH := DefaultOptions()
		optD := DefaultOptions()
		optD.Kernel = KernelDial
		rtH, errH := Reroute(g, n, optH, nil)
		rtD, errD := Reroute(g, n, optD, nil)
		if (errH == nil) != (errD == nil) {
			t.Fatalf("trial %d: heap err=%v dial err=%v", trial, errH, errD)
		}
		if errH != nil {
			continue
		}
		if !treesEqual(rtH, rtD) {
			t.Fatalf("trial %d: dial tree differs from heap tree", trial)
		}
	}
}

// rerouteSinkKeys routes net n on a private clone and returns the final
// per-sink selection keys (the wavefront's objective labels) plus the
// wavefront pop count.
func rerouteSinkKeys(t *testing.T, g *tile.Graph, n *netlist.Net, opt Options) ([]float64, float64) {
	t.Helper()
	m := obs.NewMetrics()
	opt.Obs = m
	ws := NewWorkspace()
	if _, err := Reroute(g.Clone(), n, opt, ws); err != nil {
		t.Fatal(err)
	}
	keys := make([]float64, len(n.Sinks))
	for i, s := range n.Sinks {
		keys[i] = ws.key[g.TileIndex(s.Tile)]
	}
	return keys, m.Counter("route.pops")
}

// TestAstarCostIdenticalReroute asserts the astar kernel's Reroute
// contract on the congested bench workload, at both pipeline alphas:
//
//   - alpha = 1 (pure shortest paths, the cost-distance Steiner mode's
//     Stage 2): the heuristic is consistent, so A* genuinely reorders pops
//     — strictly fewer in aggregate — yet every per-sink selection key
//     matches the heap kernel exactly.
//   - alpha = 0.4 (the PD default): the kernel falls back to heap order
//     (the PD key is non-monotone, see kernel.go), so even the trees are
//     byte-identical.
func TestAstarCostIdenticalReroute(t *testing.T) {
	g, nets, routes, _ := benchWorkload(t)
	for _, alpha := range []float64{1, 0.4} {
		popsH, popsA := 0.0, 0.0
		optH := DefaultOptions()
		optH.Alpha = alpha
		optA := optH
		optA.Kernel = KernelAstar
		for i, n := range nets {
			RemoveUsage(g, routes[i])
			kh, ph := rerouteSinkKeys(t, g, n, optH)
			ka, pa := rerouteSinkKeys(t, g, n, optA)
			for s := range kh {
				if kh[s] != ka[s] {
					t.Fatalf("alpha=%v net %d sink %d: key heap=%v astar=%v", alpha, n.ID, s, kh[s], ka[s])
				}
			}
			popsH += ph
			popsA += pa
			AddUsage(g, routes[i])
		}
		if alpha == 1 && popsA >= popsH {
			t.Fatalf("alpha=1: astar pops %v not below heap pops %v (heuristic not engaging)", popsA, popsH)
		}
		if alpha != 1 && popsA != popsH {
			t.Fatalf("alpha=%v: astar pops %v != heap pops %v (fallback must reproduce heap exactly)", alpha, popsA, popsH)
		}
	}
}

// TestAstarCostIdenticalSuite extends the cost-identity contract from the
// synthetic bench workload to the ten real suite circuits at their coarse
// test tilings: per net, at alpha = 1, the astar kernel's per-sink
// selection keys equal the heap kernel's exactly, and per circuit the
// astar wavefront pops strictly fewer states in aggregate.
func TestAstarCostIdenticalSuite(t *testing.T) {
	grids := map[string][2]int{
		"apte": {10, 11}, "xerox": {10, 10}, "hp": {10, 10},
		"ami33": {11, 10}, "ami49": {10, 10}, "playout": {11, 10},
		"ac3": {10, 10}, "xc5": {10, 10}, "hc7": {10, 10}, "a9c3": {10, 10},
	}
	for _, name := range []string{"apte", "xerox", "hp", "ami33", "ami49", "playout", "ac3", "xc5", "hc7", "a9c3"} {
		spec, err := floorplan.BySuiteName(name)
		if err != nil {
			t.Fatal(err)
		}
		g2 := grids[name]
		c, err := floorplan.Generate(spec, floorplan.Options{GridW: g2[0], GridH: g2[1]})
		if err != nil {
			t.Fatal(err)
		}
		g, err := tile.New(c.GridW, c.GridH, c.BufferSites, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Seed realistic congestion: route every net once and register it.
		routes := make([]*rtree.Tree, len(c.Nets))
		for i, n := range c.Nets {
			rt, err := Reroute(g, n, DefaultOptions(), nil)
			if err != nil {
				t.Fatal(err)
			}
			routes[i] = rt
			AddUsage(g, rt)
		}
		optH := DefaultOptions()
		optH.Alpha = 1
		optA := optH
		optA.Kernel = KernelAstar
		popsH, popsA := 0.0, 0.0
		for i, n := range c.Nets {
			RemoveUsage(g, routes[i])
			kh, ph := rerouteSinkKeys(t, g, n, optH)
			ka, pa := rerouteSinkKeys(t, g, n, optA)
			for s := range kh {
				if kh[s] != ka[s] {
					t.Fatalf("%s net %d sink %d: key heap=%v astar=%v", name, n.ID, s, kh[s], ka[s])
				}
			}
			popsH += ph
			popsA += pa
			AddUsage(g, routes[i])
		}
		if popsA >= popsH {
			t.Errorf("%s: astar pops %v not below heap pops %v", name, popsA, popsH)
		}
	}
}

// bapCost returns BufferAwarePath's optimal reconnection cost by reading
// the reached head states off the workspace after the call.
func bapCost(t *testing.T, g *tile.Graph, tail, head geom.Pt, L int, opt Options) float64 {
	t.Helper()
	ws := NewWorkspace()
	if _, err := BufferAwarePath(g, tail, head, L, nil, opt, ws); err != nil {
		t.Fatal(err)
	}
	base := g.TileIndex(head) * L
	best := math.Inf(1)
	for j := 0; j < L; j++ {
		s := base + j
		if ws.sStamp[s] == ws.epoch && ws.sDone[s] && ws.sDist[s] < best {
			best = ws.sDist[s]
		}
	}
	return best
}

// TestAstarCostIdenticalPath asserts the provable BufferAwarePath contract:
// the astar kernel's reconnection cost equals the heap kernel's on a
// congested instance (the search is pure Dijkstra and the heuristic is
// consistent, so the first head pop is cost-optimal in both).
func TestAstarCostIdenticalPath(t *testing.T) {
	g, _, _, _ := benchWorkload(t)
	optH := DefaultOptions()
	optA := DefaultOptions()
	optA.Kernel = KernelAstar
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		tail := geom.Pt{X: r.Intn(32), Y: r.Intn(32)}
		head := geom.Pt{X: r.Intn(32), Y: r.Intn(32)}
		if tail == head {
			continue
		}
		ch := bapCost(t, g, tail, head, 6, optH)
		ca := bapCost(t, g, tail, head, 6, optA)
		if ch != ca {
			t.Fatalf("trial %d %v->%v: cost heap=%v astar=%v", trial, tail, head, ch, ca)
		}
	}
}

// distHeap is a plain container/heap used by the reference Dijkstra in the
// admissibility property test (deliberately independent of the kernels
// under test).
type distHeap []pqItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)         { *h = append(*h, x.(pqItem)) }
func (h *distHeap) Pop() any           { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *distHeap) popMin() pqItem     { return heap.Pop(h).(pqItem) }
func (h *distHeap) pushItem(it pqItem) { heap.Push(h, it) }

// TestAstarBoundAdmissible is the property test behind the astar kernel:
// on random congested grids, the heuristic cmin * manhattan-to-nearest-goal
// never exceeds the true remaining cost (the exact multi-source Dijkstra
// distance to the goal set under the live Eq. (1) edge costs). Grid edges
// are symmetric, so the reverse search gives the true forward remaining
// cost.
func TestAstarBoundAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	opt := DefaultOptions()
	for trial := 0; trial < 40; trial++ {
		w, h := 4+r.Intn(12), 4+r.Intn(12)
		g, err := tile.New(w, h, nil, 1+r.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < g.NumEdges(); e++ {
			for k := r.Intn(4); k > 0; k-- {
				g.AddWire(e) // overload some edges past capacity
			}
		}
		// Goal set: 1-3 random tiles.
		var goals []int
		n := &netlist.Net{ID: trial, Name: "p", L: 4,
			Source: netlist.Pin{Tile: geom.Pt{X: r.Intn(w), Y: r.Intn(h)}}}
		for k := 0; k <= r.Intn(3); k++ {
			p := geom.Pt{X: r.Intn(w), Y: r.Intn(h)}
			n.Sinks = append(n.Sinks, netlist.Pin{Tile: p})
			goals = append(goals, g.TileIndex(p))
		}

		// True remaining cost: multi-source Dijkstra from the goals.
		dist := make([]float64, g.NumTiles())
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		var q distHeap
		for _, gi := range goals {
			if dist[gi] > 0 {
				dist[gi] = 0
				q.pushItem(pqItem{gi, 0})
			}
		}
		for q.Len() > 0 {
			it := q.popMin()
			if it.key > dist[it.node] {
				continue
			}
			nbrs, edges := g.Adjacency(it.node)
			for x, v32 := range nbrs {
				v := int(v32)
				if d := it.key + edgeCost(g, int(edges[x]), opt); d < dist[v] {
					dist[v] = d
					q.pushItem(pqItem{v, d})
				}
			}
		}

		// The armed heuristic must lower-bound it everywhere, for every
		// feasible incoming edge cost (at alpha = 1 the ec term vanishes;
		// smaller alpha only shrinks the bound, and the ec subtraction is
		// covered by feeding the smallest legal ec).
		ws := NewWorkspace()
		ws.growTiles(g.NumTiles())
		ws.begin(g.NumEdges())
		ws.astarArmReroute(g, n, opt)
		ws.astar.alpha = 1
		for v := 0; v < g.NumTiles(); v++ {
			if hv := ws.astarHR(v, 0); hv > dist[v]+1e-12 {
				t.Fatalf("trial %d tile %d: heuristic %v exceeds true remaining cost %v", trial, v, hv, dist[v])
			}
		}
	}
}
