// Search kernels: interchangeable wavefront priority queues behind the
// router's relaxation loops (see DESIGN.md, "Search kernels").
//
// All kernels pop by the same explicit total order (key, node) — see
// pqLess — so any two kernels that pop the *same* priorities are
// interchangeable bit for bit:
//
//   - heap: the binary heap of workspace.go (the default).
//   - dial: a Dial bucket queue — keys quantized into monotone buckets
//     sized from the Eq. (1) cost bounds at graph build (tile.CapMax),
//     exact (key, node) min selection inside a bucket, and a (key, node)
//     overflow heap past the bucketed range. Quantization only groups
//     keys, it never reorders them, so the pop sequence is identical to
//     the heap's and Reroute/RipupPass/BufferAwarePath stay byte-identical.
//   - astar: the heap machinery ordered by key + h(node), where h is an
//     admissible lower bound on the remaining key increase (Manhattan
//     distance x the minimum residual edge cost, PD-discounted — see
//     astarHR). Popped order differs; returned path costs do not.
//
// The Prim–Dijkstra key is not monotone under congestion-varying edge
// costs (k_v - k_u = ec_uv - (1-alpha)*ec_parent_u can be negative), so the
// Dial queue keeps a scan-back cursor: a push below the cursor moves the
// cursor back, restoring the invariant that no live bucket precedes it.
package route

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/tile"
)

// Kernel names accepted by Options.Kernel and Params.SearchKernel.
const (
	KernelHeap  = "heap"
	KernelDial  = "dial"
	KernelAstar = "astar"
)

// Kernels lists the accepted kernel names.
func Kernels() []string { return []string{KernelHeap, KernelDial, KernelAstar} }

// kernelID is the resolved kernel for one kernel call.
type kernelID uint8

const (
	kHeap kernelID = iota
	kDial
	kAstar
)

// resolveKernel maps Options.Kernel to a kernelID. A caller-supplied
// Options.Weight forces the heap: the custom cost function publishes no
// bounds, so neither Dial's bucket sizing nor A*'s admissible lower bound
// is sound under it (the same reason route.Parallel falls back to the
// sequential kernel there).
func resolveKernel(opt Options) (kernelID, error) {
	switch opt.Kernel {
	case "", KernelHeap:
		return kHeap, nil
	case KernelDial:
		if opt.Weight != nil {
			return kHeap, nil
		}
		return kDial, nil
	case KernelAstar:
		if opt.Weight != nil {
			return kHeap, nil
		}
		return kAstar, nil
	default:
		return kHeap, fmt.Errorf("route: unknown search kernel %q (want %q, %q or %q)", opt.Kernel, KernelHeap, KernelDial, KernelAstar) //rabid:allow allocfree cold abort path: fmt argument boxing only on invalid input
	}
}

// kernelLabel returns the kernel name a call with these options actually
// runs under (after the Options.Weight fallback), for counter labeling.
func kernelLabel(opt Options) string {
	k, err := resolveKernel(opt)
	if err != nil {
		return opt.Kernel
	}
	switch k {
	case kDial:
		return KernelDial
	case kAstar:
		return KernelAstar
	default:
		return KernelHeap
	}
}

// maxDialBuckets caps the Dial bucket array: beyond it, keys spill into
// the far heap. 1<<15 buckets bound the per-workspace footprint at ~1.2 MB
// while covering any realistic finite-cost key range (suite grids need a
// few hundred).
const maxDialBuckets = 1 << 15

// dialState is the Dial bucket queue. Buckets are epoch-stamped (a stale
// stamp reads as empty, so reset is O(1)); far is a (key, node) binary
// heap holding every item at or past thr, which keeps penalty-priced keys
// (OverflowPenalty ~ 1e6) from demanding millions of buckets.
type dialState struct {
	buckets [][]pqItem
	stamp   []uint64
	far     []pqItem
	cur     int     // lowest possibly-live bucket (scan-back cursor)
	n       int     // buckets in use this call
	count   int     // live items across buckets and far
	scale   float64 // buckets per unit key (1/width)
	thr     float64 // keys >= thr go to far
}

// astarState carries the per-call heuristic inputs. Reroute mode uses the
// goal coordinates plus the static per-edge cost lower bound (gx, gy, w,
// cmin, alpha); BufferAwarePath mode uses hd, the exact tile-level
// reverse-Dijkstra distance table armed by astarArmPath (hs is its epoch
// stamp; a stale entry reads as unreachable). armPops and armRelax record
// the arming pass's queue work so the caller can fold it into the
// wavefront counters — the heuristic's cost is never hidden from the
// pops/relaxations accounting.
type astarState struct {
	gx, gy   []int32
	w        int
	cmin     float64
	alpha    float64
	hd       []float64
	hs       []uint64
	armPops  int
	armRelax int
}

// qReset arms the workspace's queue for one kernel call. For Dial it
// derives the bucket geometry from the graph's Eq. (1) cost bounds:
// width = the cheapest possible finite edge cost (1/CapMax + LengthWeight,
// one wire on an empty max-capacity edge), and enough buckets to span a
// grid-diameter path of costliest finite edges (CapMax + LengthWeight per
// edge, the last legal wire). Keys past that span — penalty-priced routes —
// go to the far heap. The geometry affects only how finely keys are
// grouped, never their order, so a conservative span costs performance,
// not correctness.
func (ws *Workspace) qReset(kern kernelID, g *tile.Graph, opt Options) {
	ws.kern = kern
	if kern != kDial {
		return
	}
	d := &ws.dial
	capMax := g.CapMax()
	if capMax < 1 {
		capMax = 1
	}
	width := 1/float64(capMax) + opt.LengthWeight
	if width <= 0 || math.IsInf(width, 0) || math.IsNaN(width) {
		width = 1
	}
	span := float64(g.W+g.H+1) * (float64(capMax) + opt.LengthWeight)
	n := int(span/width) + 2
	if n > maxDialBuckets {
		n = maxDialBuckets
	}
	if n < 1 {
		n = 1
	}
	if len(d.buckets) < n {
		// Seed every new bucket with a few slots carved from one slab, so
		// cold buckets (touched for the first time as congestion drifts
		// between passes) append without allocating. Previously-warmed
		// buckets keep their grown backing arrays via the copy.
		const seedCap = 8
		nb := make([][]pqItem, n)         //rabid:allow allocfree cold grow path: runs only while the bucket array is still smaller than the grid's span, never in steady state
		slab := make([]pqItem, n*seedCap) //rabid:allow allocfree cold grow path: one-time slab seeding the new buckets' capacity
		for i := range nb {
			nb[i] = slab[i*seedCap : i*seedCap : (i+1)*seedCap]
		}
		copy(nb, d.buckets)
		d.buckets = nb
		ns := make([]uint64, n) //rabid:allow allocfree cold grow path: grows with the bucket array, then stable
		copy(ns, d.stamp)
		d.stamp = ns
	}
	d.n = n
	d.scale = 1 / width
	d.thr = float64(n) * width
	d.cur = 0
	d.count = 0
	d.far = d.far[:0]
}

// qPush inserts an item under the active kernel. A* callers fold their
// heuristic into the item's key before pushing; the queue itself is
// heuristic-agnostic.
func (ws *Workspace) qPush(it pqItem) {
	if ws.kern == kDial {
		ws.dialPush(it)
		return
	}
	ws.pushPQ(it)
}

// qPop removes and returns the (key, node)-minimal item.
func (ws *Workspace) qPop() pqItem {
	if ws.kern == kDial {
		return ws.dialPop()
	}
	return ws.popPQ()
}

// qLen returns the number of live items.
func (ws *Workspace) qLen() int {
	if ws.kern == kDial {
		return ws.dial.count
	}
	return len(ws.q)
}

func (ws *Workspace) dialPush(it pqItem) {
	d := &ws.dial
	d.count++
	if it.key >= d.thr {
		d.far = heapPushPQ(d.far, it)
		return
	}
	b := int(it.key * d.scale)
	if b >= d.n {
		b = d.n - 1 // float rounding at the threshold boundary
	}
	if d.stamp[b] != ws.epoch {
		d.stamp[b] = ws.epoch
		d.buckets[b] = d.buckets[b][:0]
	}
	d.buckets[b] = append(d.buckets[b], it) //rabid:allow allocfree amortized grow path: a bucket's backing array reallocates only until the workspace has warmed to the workload
	if b < d.cur {
		// PD keys are not monotone: a relaxation may push below the pop
		// front. Scanning back keeps "no live bucket precedes cur" exact.
		d.cur = b
	}
}

func (ws *Workspace) dialPop() pqItem {
	d := &ws.dial
	d.count--
	for d.cur < d.n {
		if d.stamp[d.cur] == ws.epoch {
			if s := d.buckets[d.cur]; len(s) > 0 {
				// Exact (key, node) min inside the bucket: quantization
				// groups keys but the pop order stays the heap's.
				m := 0
				for i := 1; i < len(s); i++ {
					if pqLess(s[i], s[m]) {
						m = i
					}
				}
				it := s[m]
				last := len(s) - 1
				s[m] = s[last]
				d.buckets[d.cur] = s[:last]
				return it
			}
		}
		d.cur++
	}
	var it pqItem
	it, d.far = heapPopPQ(d.far)
	return it
}

// --- A* heuristic -------------------------------------------------------

// astarArmReroute loads the net's sink coordinates and the static Eq. (1)
// per-edge lower bound. The bound is deliberately usage-independent
// (1/CapMax + LengthWeight): the speculative parallel engine must see the
// same pop order as the sequential kernel, and a live residual scan would
// read congestion outside the recorded read set.
func (ws *Workspace) astarArmReroute(g *tile.Graph, n *netlist.Net, opt Options) {
	a := &ws.astar
	a.gx, a.gy = a.gx[:0], a.gy[:0]
	for _, s := range n.Sinks {
		//rabid:allow narrowcast tile coordinates are < W,H <= MaxInt32, enforced by tile.New
		a.gx = append(a.gx, int32(s.Tile.X)) //rabid:allow allocfree amortized grow path: goal slices reallocate only until the workspace has seen the max fanout
		//rabid:allow narrowcast tile coordinates are < W,H <= MaxInt32, enforced by tile.New
		a.gy = append(a.gy, int32(s.Tile.Y)) //rabid:allow allocfree amortized grow path: goal slices reallocate only until the workspace has seen the max fanout
	}
	a.w = g.W
	capMax := g.CapMax()
	if capMax < 1 {
		capMax = 1
	}
	a.cmin = 1/float64(capMax) + opt.LengthWeight
	a.alpha = opt.Alpha
}

// astarArmPath arms the BufferAwarePath heuristic: an exact reverse
// Dijkstra from the head over the tile graph, under the live Eq. (1) edge
// costs and the caller's blocked mask. The tile metric is a relaxation of
// the (tile, j) state search — it drops the buffer-spacing constraint and
// the non-negative Eq. (2) site costs but keeps the edge costs and the
// blocked semantics exactly — so hd[t] is an admissible, consistent lower
// bound on any state (t, j)'s true remaining cost: h(v) <= wc + h(w) is
// the triangle inequality of the relaxed metric, and a buffer placement
// stays in the same tile at non-negative cost. Tiles the reverse scan
// never reaches read as +Inf, which is itself exact: no forward path from
// them can reach the head either.
//
// Usage is static within one call and Stage 4 never speculates, so the
// scan is deterministic; it also pre-warms the per-edge cost memo the
// main search reads. The arming queue work is recorded in armPops /
// armRelax and folded into the wavefront counters by the caller.
func (ws *Workspace) astarArmPath(g *tile.Graph, head int, blocked []bool, opt Options) {
	a := &ws.astar
	nt := g.NumTiles()
	if len(a.hd) < nt {
		a.hd = make([]float64, nt) //rabid:allow allocfree cold grow path: the heuristic table reallocates only when the grid outgrows the workspace
		a.hs = make([]uint64, nt)  //rabid:allow allocfree cold grow path: the heuristic table reallocates only when the grid outgrows the workspace
	}
	a.armPops, a.armRelax = 0, 0
	ep := ws.epoch
	memo := opt.Weight == nil
	a.hd[head] = 0
	a.hs[head] = ep
	ws.q = ws.q[:0]
	ws.pushPQ(pqItem{head, 0})
	for len(ws.q) > 0 {
		it := ws.popPQ()
		a.armPops++
		u := it.node
		if it.key > a.hd[u] {
			continue // stale entry, superseded by a better push
		}
		// Expanding u corresponds to a forward move v -> u, which the main
		// search permits only into unblocked tiles (the head excepted).
		if u != head && blocked != nil && blocked[u] {
			continue
		}
		nbrs, edges := g.Adjacency(u)
		for x, v32 := range nbrs {
			v := int(v32)
			a.armRelax++
			d := it.key + ws.edgeCostMemo(g, int(edges[x]), opt, memo)
			if a.hs[v] != ep || d < a.hd[v] {
				a.hs[v] = ep
				a.hd[v] = d
				ws.pushPQ(pqItem{v, d})
			}
		}
	}
}

// astarManh returns the Manhattan distance from tile t to the nearest
// goal.
func (ws *Workspace) astarManh(t int) int32 {
	a := &ws.astar
	//rabid:allow narrowcast tile coordinates are < W,H <= MaxInt32, enforced by tile.New
	x, y := int32(t%a.w), int32(t/a.w)
	best := int32(math.MaxInt32)
	for i, gx := range a.gx {
		dx := x - gx
		if dx < 0 {
			dx = -dx
		}
		dy := y - a.gy[i]
		if dy < 0 {
			dy = -dy
		}
		if d := dx + dy; d < best {
			best = d
		}
	}
	return best
}

// astarHR is the Reroute (PD-key) heuristic for tile v reached over an
// edge of cost ec: a lower bound on how much the PD selection key still
// has to grow before any sink pops.
//
// Admissibility: write k_v = alpha*g(v) + (1-alpha)*ec_v (substituting
// g(v) = g(parent) + ec_v into k_v = alpha*g(parent) + ec_v). For any sink
// s reached through v over m >= manh(v) further edges, each costing at
// least cmin, k_s >= alpha*g(s) >= alpha*(g(v) + m*cmin) =
// k_v - (1-alpha)*ec_v + alpha*m*cmin. Hence
//
//	k_s - k_v >= alpha*manh(v)*cmin - (1-alpha)*ec_v,
//
// which is exactly the value below (clamped at zero). At alpha = 1 this is
// the textbook Manhattan x min-edge-cost bound. The property test
// TestAstarBoundAdmissible pins the inequality on random congested grids.
func (ws *Workspace) astarHR(v int, ec float64) float64 {
	a := &ws.astar
	h := a.alpha*a.cmin*float64(ws.astarManh(v)) - (1-a.alpha)*ec
	if h < 0 {
		return 0
	}
	return h
}

// astarHPath is the BufferAwarePath heuristic for tile t: the exact
// relaxed-metric distance armed by astarArmPath. Consistency of that
// metric (see astarArmPath) means the first head-state pop carries the
// exact same optimal distance the heap kernel returns.
func (ws *Workspace) astarHPath(t int) float64 {
	a := &ws.astar
	if a.hs[t] != ws.epoch {
		return math.Inf(1) // the head is unreachable from t
	}
	return a.hd[t]
}
