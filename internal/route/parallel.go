// Speculative parallel rip-up-and-reroute. The sequential RipupPass is a
// strict loop: remove a net's wires, reroute it under the now-current
// congestion, re-register the new wires, next net. Parallel is the
// optimistic version of that loop — route many nets concurrently against a
// usage snapshot, then commit the results one at a time in the original
// net order, validating each speculation against the usage the committed
// prefix actually produced — built so that its results, and the observer
// event stream, are byte-identical to the sequential kernel at every
// worker count.
//
// The protocol, per batch:
//
//  1. Batch: take the maximal contiguous prefix of the remaining net order
//     whose current route bounding boxes, each expanded by one tile, are
//     pairwise disjoint. Expanded-disjoint routes cannot share a tile edge
//     today, and mostly won't after rerouting, so intra-batch conflicts
//     are rare; the rule is purely a conflict-rate heuristic — correctness
//     never depends on it.
//  2. Speculate: route every net of the batch concurrently, read-only on
//     the shared graph, each worker slot using its own Workspace. The
//     net's own old wires are priced at usage-1 via Workspace.markOwnWires
//     (the sequential kernel would have called RemoveUsage first), and
//     every first-touch congestion read (edge, raw usage) is recorded —
//     the memoized cost path guarantees exactly one read per distinct
//     edge, so the read set is the complete congestion input of the
//     search. Per-net telemetry goes into an obs.Buffer.
//  3. Commit, in net order: a speculation is valid iff every edge it read
//     still has the usage it assumed (value comparison — tolerant of
//     usage that changed and changed back; the per-edge usage stamps of
//     tile.Graph serve as the cheap untouched-since-snapshot filter). A
//     valid net commits exactly as the sequential loop would — remove old
//     wires, register the speculative tree, flush its buffered events. An
//     invalid (or failed) speculation is discarded and the net is replayed
//     serially on the spot, which is literally the sequential kernel's
//     iteration.
//
// Why byte-identity holds: the wavefront search is deterministic given its
// edge costs, and the commit-time validation proves those costs equal what
// a sequential reroute running at that exact point would compute (same raw
// usages, same own-wire subtraction). By induction over the net order,
// every committed tree, every usage mutation, and every emitted event
// matches the sequential execution. The worker count only changes how the
// speculation work is scheduled across goroutines — batches, snapshots,
// conflicts, and replays depend on net order and graph state alone — so
// Workers=1 and Workers=64 produce identical output and identical
// ripup.speculative / ripup.conflicts / ripup.replayed counters.
package route

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// specRead records one first-touch congestion read of a speculative
// reroute: edge e was priced assuming raw usage use.
type specRead struct{ e, use int32 }

// specBox is a route's bounding box in tile coordinates, inclusive.
type specBox struct{ x0, y0, x1, y1 int }

// touches reports whether the boxes overlap or are within one tile of each
// other in both axes — i.e. whether the underlying routes could possibly
// share a tile edge (two routes at Chebyshev distance >= 2 cannot).
func (a specBox) touches(b specBox) bool {
	return a.x0 <= b.x1+1 && b.x0 <= a.x1+1 && a.y0 <= b.y1+1 && b.y0 <= a.y1+1
}

// treeBox returns the bounding box of a route's tiles.
func treeBox(rt *rtree.Tree) specBox {
	b := specBox{x0: rt.Tile[0].X, y0: rt.Tile[0].Y, x1: rt.Tile[0].X, y1: rt.Tile[0].Y}
	for _, t := range rt.Tile[1:] {
		if t.X < b.x0 {
			b.x0 = t.X
		}
		if t.X > b.x1 {
			b.x1 = t.X
		}
		if t.Y < b.y0 {
			b.y0 = t.Y
		}
		if t.Y > b.y1 {
			b.y1 = t.Y
		}
	}
	return b
}

// Parallel is the deterministic speculative engine behind the Stage-2
// rip-up passes. One Parallel serves one run at a time (its scratch is not
// synchronized); construct with NewParallel and hand it to
// ReduceCongestion[Ctx], which falls back to the sequential kernel under
// an Options.Weight hook (a caller-supplied cost function may close over
// state the speculative pricing cannot see or validate).
type Parallel struct {
	workers int
	pool    *Pool

	// stats accumulate across every Pass of the engine's lifetime and are
	// emitted once per Stage-2 call by ReduceCongestionCtx. They are
	// worker-count-independent (see the package comment).
	stats struct {
		speculative int // speculative reroutes attempted
		conflicts   int // speculations discarded by commit-time validation
		replayed    int // serial replays (conflicted or failed speculations)
	}

	// Per-order-position scratch, reused across batches and passes.
	boxes []specBox    // bounding boxes of the current batch
	specs []specResult // speculative route trees / errors
	reads [][]specRead // read sets, one per order position
	bufs  []obs.Buffer // buffered per-net telemetry
	wss   []*Workspace // per-worker-slot workspaces, held per Pass
	rr    int          // round-robin cursor for carcass redistribution
}

// specResult is one net's speculation outcome.
type specResult struct {
	tree *rtree.Tree
	err  error
}

// NewParallel returns a speculative rip-up engine routing on
// par.Workers(workers) goroutines with per-worker workspaces drawn from
// pool (nil allocates fresh ones per pass). Results and event streams are
// byte-identical to the sequential RipupPass for every workers value,
// including 1, so callers thread a Parallel unconditionally and choose
// workers purely for speed.
func NewParallel(workers int, pool *Pool) *Parallel {
	return &Parallel{workers: workers, pool: pool}
}

// grow sizes the per-order-position scratch for a pass over n nets.
func (px *Parallel) grow(n int) {
	if len(px.specs) < n {
		px.specs = make([]specResult, n)
		px.reads = append(px.reads, make([][]specRead, n-len(px.reads))...)
		px.bufs = make([]obs.Buffer, n)
	}
}

// batchEnd returns the end (exclusive) of the maximal contiguous batch of
// order starting at s whose routes' expanded bounding boxes are pairwise
// disjoint, leaving the boxes in px.boxes. At least one net is always
// taken.
func (px *Parallel) batchEnd(routes []*rtree.Tree, order []int, s int) int {
	px.boxes = px.boxes[:0]
	e := s
	for e < len(order) {
		b := treeBox(routes[order[e]])
		clash := false
		for _, a := range px.boxes {
			if a.touches(b) {
				clash = true
				break
			}
		}
		if clash {
			break
		}
		px.boxes = append(px.boxes, b)
		e++
	}
	if e == s {
		e = s + 1 // unreachable (the first box never clashes), but safe
	}
	return e
}

// conflicted reports whether a speculation's read set is stale: some edge
// it priced no longer carries the usage it assumed. snap is the graph's
// usage epoch at speculation time — edges untouched since then are valid
// without a value comparison, and a graph untouched as a whole validates
// the entire set at once (the usual case for the first commit of a batch).
func conflicted(g *tile.Graph, reads []specRead, snap uint64) bool {
	if g.UsageEpoch() == snap {
		return false
	}
	for _, r := range reads {
		if !g.UsageChangedSince(int(r.e), snap) {
			continue
		}
		if g.Usage(int(r.e)) != int(r.use) {
			return true
		}
	}
	return false
}

// rerouteSpec is the speculative Reroute wrapper run by worker slots: it
// arms the workspace's speculation state (own-tree marking, read-set
// recording), routes the net read-only against the shared graph, and
// returns the tree, the grown read set, and any search error. Telemetry
// goes to opt.Obs, which the caller points at a per-net buffer.
func rerouteSpec(g *tile.Graph, n *netlist.Net, old *rtree.Tree, opt Options, ws *Workspace, reads []specRead) (*rtree.Tree, []specRead, error) {
	ws.spec.active = true
	ws.spec.old = old
	ws.spec.reads = reads[:0]
	rt, err := Reroute(g, n, opt, ws)
	reads = ws.spec.reads
	ws.spec.active = false
	ws.spec.old = nil
	ws.spec.reads = nil
	return rt, reads, err
}

// speculate routes order[jj]'s net speculatively on worker slot w, storing
// the tree, read set, and buffered telemetry in position jj's scratch.
func (px *Parallel) speculate(g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, opt Options, w, jj int) {
	i := order[jj]
	sopt := opt
	if opt.Obs != nil {
		px.bufs[jj].Reset()
		sopt.Obs = &px.bufs[jj]
	}
	rt, reads, rerr := rerouteSpec(g, nets[i], routes[i], sopt, px.wss[w], px.reads[jj])
	px.reads[jj] = reads
	px.specs[jj] = specResult{tree: rt, err: rerr}
}

// Pass runs one full rip-up pass over order with the speculate-then-commit
// protocol. It is a drop-in replacement for RipupPass: routes, the graph's
// wire usage, the emitted event stream, the returned committed-prefix
// count, and the error contract are all byte-identical to the sequential
// kernel's, at every worker count. opt.Weight must be nil (ReduceCongestion
// enforces the fallback).
func (px *Parallel) Pass(g *tile.Graph, nets []*netlist.Net, routes []*rtree.Tree, order []int, opt Options, ws *Workspace) (committed int, err error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	n := len(order)
	px.grow(n)
	// Acquire one workspace per worker slot for the pass; the pool keeps
	// their scratch arrays warm across passes and runs.
	slots := par.Workers(px.workers)
	if slots > n {
		slots = n
	}
	for len(px.wss) < slots {
		px.wss = append(px.wss, px.pool.Get())
	}
	defer func() {
		for k, w := range px.wss {
			px.pool.Put(w)
			px.wss[k] = nil
		}
		px.wss = px.wss[:0]
	}()

	reroutes, improved, degraded := 0, 0, 0
	for s := 0; s < n; {
		e := px.batchEnd(routes, order, s)

		// Speculate: route the batch concurrently against the usage
		// snapshot. Workers only read g; every write target (specs, reads,
		// bufs) is per order position. With one slot the fan-out machinery
		// would only add per-batch overhead, so run the items inline — the
		// outcome is identical either way.
		snap := g.UsageEpoch()
		px.stats.speculative += e - s
		if slots == 1 {
			for jj := s; jj < e; jj++ {
				px.speculate(g, nets, routes, order, opt, 0, jj)
			}
		} else if ferr := par.ForEachWorker(px.workers, e-s, func(w, k int) error {
			px.speculate(g, nets, routes, order, opt, w, s+k)
			return nil
		}); ferr != nil {
			// Only a panic inside a worker reaches here (speculation
			// errors are carried per net and replayed below).
			return committed, ferr
		}

		// Commit in net order.
		for jj := s; jj < e; jj++ {
			i := order[jj]
			old := routes[i]
			oldEdges := old.NumEdges()
			sp := px.specs[jj]
			px.specs[jj] = specResult{}
			var rt *rtree.Tree
			if sp.err == nil && !conflicted(g, px.reads[jj], snap) {
				// The speculation priced exactly the usage a sequential
				// reroute would see here; adopt its tree and telemetry.
				rt = sp.tree
				px.bufs[jj].FlushTo(opt.Obs)
				RemoveUsage(g, old)
			} else {
				// Stale or failed speculation: discard it and replay this
				// net serially — the literal sequential iteration, events
				// emitted directly.
				if sp.err == nil {
					px.stats.conflicts++
					ws.Recycle(sp.tree)
				}
				px.stats.replayed++
				px.bufs[jj].Reset()
				RemoveUsage(g, old)
				var rerr error
				rt, rerr = Reroute(g, nets[i], opt, ws)
				if rerr != nil {
					AddUsage(g, old) // restore before failing, like RipupPass
					px.drop(jj+1, e, ws)
					return committed, fmt.Errorf("route: rip-up pass failed at net %d after %d of %d commits: %w",
						nets[i].ID, committed, len(order), rerr)
				}
			}
			routes[i] = rt
			AddUsage(g, rt)
			// Hand the dead tree's storage back to a worker slot: the
			// speculative trees are built from the slot workspaces' free
			// lists, so without redistribution every pass would allocate a
			// fresh tree per net (the sequential kernel recycles into the
			// one workspace that also routes). Round-robin keeps the slots
			// stocked; which slot gets which carcass cannot affect results.
			px.wss[px.rr%len(px.wss)].Recycle(old)
			px.rr++
			committed++
			reroutes++
			if ne := rt.NumEdges(); ne < oldEdges {
				improved++
			} else if ne > oldEdges {
				degraded++
			}
		}
		s = e
	}
	if opt.Obs != nil {
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.reroutes", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(reroutes)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.improved", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(improved)})
		obs.Emit(opt.Obs, obs.Event{Kind: obs.KindCounter, Scope: "ripup.degraded", Stage: opt.Stage, Pass: opt.Pass, Net: -1, Value: float64(degraded)})
	}
	return committed, nil
}

// drop releases the uncommitted remainder [jj, e) of a batch after a
// mid-batch failure: speculative trees are recycled and buffered telemetry
// discarded, leaving routes and the graph exactly as the sequential
// kernel's error path would.
func (px *Parallel) drop(jj, e int, ws *Workspace) {
	for ; jj < e; jj++ {
		ws.Recycle(px.specs[jj].tree)
		px.specs[jj] = specResult{}
		px.bufs[jj].Reset()
	}
}
