package route

import (
	"testing"

	"repro/internal/geom"
)

// TestRerouteZeroAllocSteadyState enforces the headline contract for every
// search kernel: with a warmed Workspace and a nil observer, Reroute
// performs zero heap allocations per call. This is a test, not just a
// benchmark, so a regression fails CI rather than only shifting a number
// nobody reads. The dial kernel's bucket array and the astar kernel's goal
// buffers are workspace-owned and sized on the warm-up calls, so they are
// held to the same exact-zero bound as the heap.
func TestRerouteZeroAllocSteadyState(t *testing.T) {
	for _, kernel := range Kernels() {
		t.Run(kernel, func(t *testing.T) {
			g, nets, routes, _ := benchWorkload(t)
			n := nets[17]
			RemoveUsage(g, routes[17])
			opt := DefaultOptions()
			opt.Kernel = kernel
			ws := NewWorkspace()
			// Warm: first call sizes every workspace array and the recycled tree.
			for i := 0; i < 3; i++ {
				rt, err := Reroute(g, n, opt, ws)
				if err != nil {
					t.Fatal(err)
				}
				ws.Recycle(rt)
			}
			avg := testing.AllocsPerRun(200, func() {
				rt, err := Reroute(g, n, opt, ws)
				if err != nil {
					t.Fatal(err)
				}
				ws.Recycle(rt)
			})
			if avg != 0 {
				t.Fatalf("Reroute[%s] with warmed workspace: %v allocs/run, want 0", kernel, avg)
			}
		})
	}
}

// TestRipupPassAllocBound: a full Nair pass over 120 nets must stay O(1)
// allocations — independent of net count — once the workspace and the
// recycled-tree free list are warm, under every kernel. The pre-workspace
// kernel allocated ~100k times per pass on this workload.
func TestRipupPassAllocBound(t *testing.T) {
	for _, kernel := range Kernels() {
		t.Run(kernel, func(t *testing.T) {
			g, nets, routes, order := benchWorkload(t)
			opt := DefaultOptions()
			opt.Kernel = kernel
			ws := NewWorkspace()
			// Warm until the amortized growth settles: dial buckets keep
			// growing for a few passes while congestion drifts (keys land in
			// previously-untouched buckets), then reach a fixed point.
			for i := 0; i < 6; i++ {
				if _, err := RipupPass(g, nets, routes, order, opt, ws); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(20, func() {
				if _, err := RipupPass(g, nets, routes, order, opt, ws); err != nil {
					t.Fatal(err)
				}
			})
			// O(1) bound: a handful of allocations (occasional amortized slice
			// regrowth) is acceptable; anything scaling with the 120 nets is not.
			if avg > 8 {
				t.Fatalf("RipupPass[%s] with warmed workspace: %v allocs/run, want <= 8", kernel, avg)
			}
		})
	}
}

// TestBufferAwarePathZeroAllocSteadyState: Stage 4's maze search shares the
// same workspace discipline as Reroute, under every kernel (astar arms its
// residual-scan heuristic here, so this also pins that scan as alloc-free).
func TestBufferAwarePathZeroAllocSteadyState(t *testing.T) {
	for _, kernel := range Kernels() {
		t.Run(kernel, func(t *testing.T) {
			g, _, routes, _ := benchWorkload(t)
			tail, head := geom.Pt{X: 29, Y: 29}, geom.Pt{X: 2, Y: 2}
			blocked := make([]bool, g.NumTiles())
			for _, p := range routes[3].Tile {
				blocked[g.TileIndex(p)] = true
			}
			blocked[g.TileIndex(tail)] = false
			blocked[g.TileIndex(head)] = false
			opt := DefaultOptions()
			opt.Kernel = kernel
			ws := NewWorkspace()
			for i := 0; i < 2; i++ {
				if _, err := BufferAwarePath(g, tail, head, 6, blocked, opt, ws); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if _, err := BufferAwarePath(g, tail, head, 6, blocked, opt, ws); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("BufferAwarePath[%s] with warmed workspace: %v allocs/run, want 0", kernel, avg)
			}
		})
	}
}
