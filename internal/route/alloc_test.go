package route

import (
	"testing"

	"repro/internal/geom"
)

// TestRerouteZeroAllocSteadyState enforces the tentpole's headline contract:
// with a warmed Workspace and a nil observer, Reroute performs zero heap
// allocations per call. This is a test, not just a benchmark, so a
// regression fails CI rather than only shifting a number nobody reads.
func TestRerouteZeroAllocSteadyState(t *testing.T) {
	g, nets, routes, _ := benchWorkload(t)
	n := nets[17]
	RemoveUsage(g, routes[17])
	opt := DefaultOptions()
	ws := NewWorkspace()
	// Warm: first call sizes every workspace array and the recycled tree.
	for i := 0; i < 3; i++ {
		rt, err := Reroute(g, n, opt, ws)
		if err != nil {
			t.Fatal(err)
		}
		ws.Recycle(rt)
	}
	avg := testing.AllocsPerRun(200, func() {
		rt, err := Reroute(g, n, opt, ws)
		if err != nil {
			t.Fatal(err)
		}
		ws.Recycle(rt)
	})
	if avg != 0 {
		t.Fatalf("Reroute with warmed workspace: %v allocs/run, want 0", avg)
	}
}

// TestRipupPassAllocBound: a full Nair pass over 120 nets must stay O(1)
// allocations — independent of net count — once the workspace and the
// recycled-tree free list are warm. The pre-workspace kernel allocated
// ~100k times per pass on this workload.
func TestRipupPassAllocBound(t *testing.T) {
	g, nets, routes, order := benchWorkload(t)
	opt := DefaultOptions()
	ws := NewWorkspace()
	for i := 0; i < 2; i++ {
		if _, err := RipupPass(g, nets, routes, order, opt, ws); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := RipupPass(g, nets, routes, order, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	// O(1) bound: a handful of allocations (occasional amortized slice
	// regrowth) is acceptable; anything scaling with the 120 nets is not.
	if avg > 8 {
		t.Fatalf("RipupPass with warmed workspace: %v allocs/run, want <= 8", avg)
	}
}

// TestBufferAwarePathZeroAllocSteadyState: Stage 4's maze search shares the
// same workspace discipline as Reroute.
func TestBufferAwarePathZeroAllocSteadyState(t *testing.T) {
	g, _, routes, _ := benchWorkload(t)
	tail, head := geom.Pt{X: 29, Y: 29}, geom.Pt{X: 2, Y: 2}
	blocked := make([]bool, g.NumTiles())
	for _, p := range routes[3].Tile {
		blocked[g.TileIndex(p)] = true
	}
	blocked[g.TileIndex(tail)] = false
	blocked[g.TileIndex(head)] = false
	opt := DefaultOptions()
	ws := NewWorkspace()
	for i := 0; i < 2; i++ {
		if _, err := BufferAwarePath(g, tail, head, 6, blocked, opt, ws); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := BufferAwarePath(g, tail, head, 6, blocked, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("BufferAwarePath with warmed workspace: %v allocs/run, want 0", avg)
	}
}
