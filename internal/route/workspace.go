// Workspace: reusable scratch memory for the router's hot loops. One
// Workspace serves one goroutine at a time; core owns one per run, the
// speculative rip-up engine draws one per worker slot from the Pool (see
// DESIGN.md, "Parallel rip-up-and-reroute"), and the server recycles them
// across requests through that same Pool. Every kernel
// entry point (Reroute, RipupPass, ReduceCongestion[Ctx], BufferAwarePath)
// accepts a *Workspace and tolerates nil by allocating a private one, so
// one-shot callers and tests need no ceremony.
//
// The arrays are epoch-stamped: each kernel call bumps a generation
// counter, and a per-entry stamp records which call last wrote the entry.
// Reads treat a stale stamp as "unset" (infinite key, no predecessor), so
// clearing between calls is O(entries touched), not O(grid). Stamps are
// uint64 — at daemon rates a 32-bit counter could wrap within hours and
// resurrect stale labels. Clearing a stamp to zero is always safe because
// epochs start at one.
package route

import (
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// pqItem is a priority-queue entry for the wavefront.
type pqItem struct {
	node int
	key  float64
}

// Workspace holds the router's reusable per-call state. The zero value is
// ready to use (arrays grow on first call); see NewWorkspace.
type Workspace struct {
	epoch uint64 // bumped by begin; entry stamps compare against this

	// Wavefront state, one entry per tile (Reroute).
	stamp    []uint64  // generation stamp for key/pathCost/pred/done
	key      []float64 // PD selection key
	pathCost []float64 // accumulated edge cost from source
	pred     []int32   // predecessor tile
	done     []bool

	wantStamp []uint64 // stamp == epoch marks a sink tile not yet reached

	// Traceback state (replaces the map[geom.Pt]geom.Pt parent map).
	pstamp  []uint64 // stamp for parent
	parent  []int32  // per-tile parent on some sink-to-source path
	touched []int32  // tiles entered into parent this call
	nstamp  []uint64 // stamp for nodeIdx
	nodeIdx []int32  // tile -> tree node index during tree assembly
	stack   []int32  // pending chain in the iterative parent-first insert

	// Per-call memoized edge costs (Reroute and BufferAwarePath evaluate
	// each edge many times; usage is static within one call). Disabled
	// under Options.Weight — see edgeCost.
	ecStamp []uint64
	ec      []float64

	// Wavefront heap (concrete pqItem slice, no interface boxing). The
	// heap and astar kernels pop from q; the dial kernel uses the bucket
	// queue below. kern is armed per call by qReset (see kernel.go).
	q    []pqItem
	kern kernelID

	// Dial bucket-queue and A*-heuristic state (see kernel.go).
	dial  dialState
	astar astarState

	// (tile, j) search state, one entry per state (BufferAwarePath).
	sStamp []uint64
	sDist  []float64
	sPred  []int32
	sDone  []bool
	path   []geom.Pt // traceback result buffer, returned to the caller

	blocked []bool    // Stage-4 blocked-tile mask, managed by the caller
	heat    []float64 // per-pass congestion snapshot buffer
	nodeCnt []int32   // per-node child counts for the needs-prune check

	// Speculative-routing state (the parallel rip-up protocol; see
	// Parallel and rerouteSpec). active only inside rerouteSpec: edge
	// costs are then priced at the net's effective usage — the raw usage
	// minus one on edges carrying the net's own old wires, marked
	// per-epoch in ownStamp — and every first-touch raw usage read is
	// appended to reads for commit-time validation.
	spec struct {
		active   bool
		old      *rtree.Tree // the net's current tree, whose wires to subtract
		ownStamp []uint64    // per-edge: stamp == epoch means subtract one wire
		reads    []specRead  // (edge, raw usage) in first-evaluation order
	}

	// Dead route trees donated by RipupPass (see Recycle); their storage
	// backs the next Reroute's tree, making the steady state alloc-free.
	free []*rtree.Tree
}

// NewWorkspace returns an empty Workspace. Arrays are sized lazily by the
// first kernel call, so constructing one is cheap.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin opens a new kernel call: bumps the epoch (invalidating all stamped
// entries at once), resets the heap, and sizes the per-edge memo table.
func (ws *Workspace) begin(numEdges int) {
	ws.epoch++
	ws.q = ws.q[:0]
	if len(ws.ecStamp) < numEdges {
		ws.ecStamp = make([]uint64, numEdges)
		ws.ec = make([]float64, numEdges)
	}
}

// growTiles sizes the per-tile arrays. Freshly allocated entries carry
// stamp zero, which no epoch ever equals, so growth needs no fill.
func (ws *Workspace) growTiles(n int) {
	if len(ws.stamp) >= n {
		return
	}
	ws.stamp = make([]uint64, n)
	ws.key = make([]float64, n)
	ws.pathCost = make([]float64, n)
	ws.pred = make([]int32, n)
	ws.done = make([]bool, n)
	ws.wantStamp = make([]uint64, n)
	ws.pstamp = make([]uint64, n)
	ws.parent = make([]int32, n)
	ws.nstamp = make([]uint64, n)
	ws.nodeIdx = make([]int32, n)
}

// markOwnWires stamps, at the current epoch, every edge carrying a wire of
// the speculating net's old tree. specEdgeCost prices stamped edges at
// usage-1, reproducing the congestion the sequential kernel sees after
// RemoveUsage(old) without mutating the shared graph. Walking the tree's
// parent pointers directly (instead of EdgePairs) keeps this alloc-free.
func (ws *Workspace) markOwnWires(g *tile.Graph) {
	if len(ws.spec.ownStamp) < g.NumEdges() {
		ws.spec.ownStamp = make([]uint64, g.NumEdges())
	}
	old := ws.spec.old
	if old == nil {
		return
	}
	for v := 1; v < old.NumNodes(); v++ {
		if e, ok := g.EdgeBetween(old.Tile[old.Parent[v]], old.Tile[v]); ok {
			ws.spec.ownStamp[e] = ws.epoch
		}
	}
}

// growStates sizes the (tile, j) arrays of the Stage-4 search.
func (ws *Workspace) growStates(n int) {
	if len(ws.sStamp) >= n {
		return
	}
	ws.sStamp = make([]uint64, n)
	ws.sDist = make([]float64, n)
	ws.sPred = make([]int32, n)
	ws.sDone = make([]bool, n)
}

// --- wavefront heap ----------------------------------------------------
//
// pushPQ and popPQ are container/heap.Push and container/heap.Pop
// specialized to []pqItem, with one deliberate strengthening: the
// comparison is the explicit total order (key, node) rather than key
// alone. Equal-key pops therefore surface the smallest node index first —
// an order every search kernel (heap, dial, astar far region) can
// reproduce independently of its internal layout, which is what lets the
// Dial bucket queue match the heap byte for byte. A node is pushed again
// only when its key strictly improves, so no two live entries are ever
// fully equal and the order is strict.

// pqLess is the wavefront's total order: by key, then by node index.
func pqLess(a, b pqItem) bool {
	return a.key < b.key || (a.key == b.key && a.node < b.node) //rabid:allow floateq tie-break on exact key equality is the point: equal keys fall through to the node index, never to float tolerance
}

// heapPushPQ and heapPopPQ are the slice-level sift loops, shared by the
// main wavefront heap and the dial kernel's far region (kernel.go).

func heapPushPQ(q []pqItem, it pqItem) []pqItem {
	q = append(q, it)
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !pqLess(q[j], q[i]) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

func heapPopPQ(q []pqItem) (pqItem, []pqItem) {
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && pqLess(q[j2], q[j1]) {
			j = j2 // right child
		}
		if !pqLess(q[j], q[i]) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return q[n], q[:n]
}

func (ws *Workspace) pushPQ(it pqItem) {
	ws.q = heapPushPQ(ws.q, it)
}

func (ws *Workspace) popPQ() pqItem {
	it, q := heapPopPQ(ws.q)
	ws.q = q
	return it
}

// --- tree recycling ----------------------------------------------------

// takeTree returns a recycled tree carcass, or a fresh one.
func (ws *Workspace) takeTree() *rtree.Tree {
	if n := len(ws.free); n > 0 {
		t := ws.free[n-1]
		ws.free[n-1] = nil
		ws.free = ws.free[:n-1]
		return t
	}
	return &rtree.Tree{}
}

// Recycle donates a dead route tree's storage to the workspace. The caller
// must hold the only reference: RipupPass donates each ripped-up tree once
// its replacement is registered, which is what makes a warmed Workspace's
// Reroute allocation-free. Never recycle a tree that is still reachable
// (e.g. one held in a Result or a cache).
func (ws *Workspace) Recycle(rt *rtree.Tree) {
	if ws == nil || rt == nil {
		return
	}
	rt.Reset()
	ws.free = append(ws.free, rt)
}

// BlockedMask returns the workspace's blocked-tile mask sized to n tiles.
// The mask is zero on first use; afterwards the caller owns the clearing
// discipline — set the entries you need, run the search, unset the same
// entries — so successive calls stay O(entries touched).
func (ws *Workspace) BlockedMask(n int) []bool {
	if cap(ws.blocked) < n {
		ws.blocked = make([]bool, n)
	}
	ws.blocked = ws.blocked[:n]
	return ws.blocked
}

// --- pool ---------------------------------------------------------------

// Pool is a concurrency-safe recycler of Workspaces for reuse across runs;
// the planning server keeps one per process so steady-state requests route
// without growing fresh scratch arrays. A nil *Pool is valid: Get returns
// a fresh Workspace and Put discards. Construct with NewPool.
type Pool struct{ p sync.Pool }

// NewPool returns an empty Pool.
func NewPool() *Pool {
	pl := &Pool{}
	pl.p.New = func() any { return NewWorkspace() }
	return pl
}

// Get returns a pooled or fresh Workspace.
func (pl *Pool) Get() *Workspace {
	if pl == nil {
		return NewWorkspace()
	}
	return pl.p.Get().(*Workspace)
}

// Put returns a Workspace to the pool. The workspace must not be used
// after Put.
func (pl *Pool) Put(ws *Workspace) {
	if pl == nil || ws == nil {
		return
	}
	pl.p.Put(ws)
}
