package route

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/tile"
)

// cloneRoutes deep-copies a routes slice so two kernels can run from the
// same starting state.
func cloneRoutes(routes []*rtree.Tree) []*rtree.Tree {
	out := make([]*rtree.Tree, len(routes))
	for i, rt := range routes {
		c := &rtree.Tree{
			Tile:     append([]geom.Pt(nil), rt.Tile...),
			Parent:   append([]int(nil), rt.Parent...),
			SinkNode: append([]int(nil), rt.SinkNode...),
		}
		out[i] = c
	}
	return out
}

// TestParallelPassMatchesSequential is the engine's core contract: on the
// same starting state, Parallel.Pass and RipupPass produce identical trees,
// identical graph usage, and identical observer event streams, at every
// worker count.
func TestParallelPassMatchesSequential(t *testing.T) {
	opt := DefaultOptions()
	opt.Stage = 2
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			gSeq, nets, routesSeq, order := benchWorkload(t)
			gPar, _, routesPar, _ := benchWorkload(t)

			var seqBuf, parBuf bytes.Buffer
			seqSink, parSink := obs.NewJSONLines(&seqBuf), obs.NewJSONLines(&parBuf)

			seqOpt := opt
			seqOpt.Obs = seqSink
			// Two passes so the second starts from a rip-up-shaped state.
			for pass := 0; pass < 2; pass++ {
				if _, err := RipupPass(gSeq, nets, routesSeq, order, seqOpt, nil); err != nil {
					t.Fatal(err)
				}
			}

			parOpt := opt
			parOpt.Obs = parSink
			px := NewParallel(workers, NewPool())
			for pass := 0; pass < 2; pass++ {
				if _, err := px.Pass(gPar, nets, routesPar, order, parOpt, nil); err != nil {
					t.Fatal(err)
				}
			}

			for i := range routesSeq {
				if !treesEqual(routesSeq[i], routesPar[i]) {
					t.Fatalf("net %d: parallel tree differs from sequential", i)
				}
			}
			for e := 0; e < gSeq.NumEdges(); e++ {
				if gSeq.Usage(e) != gPar.Usage(e) {
					t.Fatalf("edge %d: usage %d (seq) vs %d (par)", e, gSeq.Usage(e), gPar.Usage(e))
				}
			}
			if !bytes.Equal(seqBuf.Bytes(), parBuf.Bytes()) {
				t.Fatalf("event streams differ\nseq: %.300s\npar: %.300s", seqBuf.Bytes(), parBuf.Bytes())
			}
			if px.stats.speculative == 0 {
				t.Error("no speculative reroutes recorded")
			}
		})
	}
}

// TestParallelStatsWorkerIndependent: the speculation counters are part of
// the observable event stream, so they must not depend on the worker
// count — the protocol (batching, snapshots, conflicts) is a function of
// net order and graph state only.
func TestParallelStatsWorkerIndependent(t *testing.T) {
	type stats struct{ spec, conf, repl int }
	var ref stats
	for k, workers := range []int{1, 3, 7} {
		g, nets, routes, order := benchWorkload(t)
		px := NewParallel(workers, nil)
		for pass := 0; pass < 2; pass++ {
			if _, err := px.Pass(g, nets, routes, order, DefaultOptions(), nil); err != nil {
				t.Fatal(err)
			}
		}
		got := stats{px.stats.speculative, px.stats.conflicts, px.stats.replayed}
		if k == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("workers=%d: stats %+v differ from workers=1 %+v", workers, got, ref)
		}
	}
}

// TestParallelForcedConflictReplaysInOrder builds a two-net instance where
// the batch rule cannot separate the nets (disjoint expanded boxes) yet
// net B's speculative wavefront prices an edge that net A's commit
// changes: A's hand-built detour straightens on reroute, raising usage on
// an edge inside B's search ball. B's speculation must be discarded and
// replayed serially, and the final state must equal the sequential
// kernel's.
func TestParallelForcedConflictReplaysInOrder(t *testing.T) {
	build := func() (*tile.Graph, []*netlist.Net, []*rtree.Tree, []int) {
		g, err := tile.New(9, 2, make([]int, 18), 2)
		if err != nil {
			t.Fatal(err)
		}
		pin := func(x, y int) netlist.Pin {
			return netlist.Pin{Tile: geom.Pt{X: x, Y: y}, Pos: geom.FPt{X: float64(x), Y: float64(y)}}
		}
		netA := &netlist.Net{ID: 0, Name: "a", L: 4, Source: pin(0, 1), Sinks: []netlist.Pin{pin(3, 1)}}
		netB := &netlist.Net{ID: 1, Name: "b", L: 4, Source: pin(5, 1), Sinks: []netlist.Pin{pin(8, 1)}}
		// Net A starts on a detour through y=0; rerouting straightens it
		// onto y=1, adding usage on edges net B's speculation read.
		parentA := map[geom.Pt]geom.Pt{
			{X: 0, Y: 0}: {X: 0, Y: 1},
			{X: 1, Y: 0}: {X: 0, Y: 0},
			{X: 2, Y: 0}: {X: 1, Y: 0},
			{X: 3, Y: 0}: {X: 2, Y: 0},
			{X: 3, Y: 1}: {X: 3, Y: 0},
		}
		trA, err := rtree.FromParentMap(geom.Pt{X: 0, Y: 1}, parentA, []geom.Pt{{X: 3, Y: 1}})
		if err != nil {
			t.Fatal(err)
		}
		parentB := map[geom.Pt]geom.Pt{
			{X: 6, Y: 1}: {X: 5, Y: 1},
			{X: 7, Y: 1}: {X: 6, Y: 1},
			{X: 8, Y: 1}: {X: 7, Y: 1},
		}
		trB, err := rtree.FromParentMap(geom.Pt{X: 5, Y: 1}, parentB, []geom.Pt{{X: 8, Y: 1}})
		if err != nil {
			t.Fatal(err)
		}
		routes := []*rtree.Tree{trA, trB}
		for _, rt := range routes {
			AddUsage(g, rt)
		}
		return g, []*netlist.Net{netA, netB}, routes, []int{0, 1}
	}

	// Boxes: A spans x 0..3, B spans x 5..8 — expanded by one they still
	// don't touch, so both nets land in one batch.
	gp, nets, routesPar, order := build()
	bA, bB := treeBox(routesPar[0]), treeBox(routesPar[1])
	if bA.touches(bB) {
		t.Fatalf("setup: boxes %+v and %+v must be batchable together", bA, bB)
	}

	px := NewParallel(4, nil)
	if _, err := px.Pass(gp, nets, routesPar, order, DefaultOptions(), nil); err != nil {
		t.Fatal(err)
	}
	if px.stats.conflicts < 1 || px.stats.replayed < 1 {
		t.Errorf("stats %+v: expected at least one conflict and one replay", px.stats)
	}

	gs, _, routesSeq, _ := build()
	if _, err := RipupPass(gs, nets, routesSeq, order, DefaultOptions(), nil); err != nil {
		t.Fatal(err)
	}
	for i := range routesSeq {
		if !treesEqual(routesSeq[i], routesPar[i]) {
			t.Fatalf("net %d: conflicted parallel pass diverged from sequential", i)
		}
	}
	for e := 0; e < gs.NumEdges(); e++ {
		if gs.Usage(e) != gp.Usage(e) {
			t.Fatalf("edge %d: usage %d (seq) vs %d (par)", e, gs.Usage(e), gp.Usage(e))
		}
	}
}

// TestRipupPassPartialFailure pins the committed-prefix error contract:
// when a reroute fails mid-pass, RipupPass reports how many order entries
// committed, and the graph's usage accounting still matches the routes
// slice exactly (the failing net's wires are restored).
func TestRipupPassPartialFailure(t *testing.T) {
	g, err := tile.New(6, 6, make([]int, 36), 4)
	if err != nil {
		t.Fatal(err)
	}
	pin := func(x, y int) netlist.Pin {
		return netlist.Pin{Tile: geom.Pt{X: x, Y: y}, Pos: geom.FPt{X: float64(x), Y: float64(y)}}
	}
	mk := func(id, sx, sy, tx, ty int) *netlist.Net {
		return &netlist.Net{ID: id, Name: "n", L: 4, Source: pin(sx, sy), Sinks: []netlist.Pin{pin(tx, ty)}}
	}
	nets := []*netlist.Net{mk(0, 0, 0, 3, 3), mk(1, 1, 0, 4, 2), mk(2, 0, 1, 5, 5)}
	routes := make([]*rtree.Tree, len(nets))
	order := []int{0, 1, 2}
	for i, n := range nets {
		rt, err := Reroute(g, n, DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		routes[i] = rt
		AddUsage(g, rt)
	}
	// Sabotage net 1 after its initial route exists: an out-of-grid sink
	// makes its reroute fail while net 0 has already committed.
	nets[1].Sinks[0].Tile = geom.Pt{X: 99, Y: 99}

	committed, err := RipupPass(g, nets, routes, order, DefaultOptions(), nil)
	if err == nil {
		t.Fatal("expected mid-pass failure")
	}
	if committed != 1 {
		t.Fatalf("committed = %d, want 1 (net 0 only)", committed)
	}
	// The accounting invariant: total registered wires equal total route
	// edges, for the half-updated routes slice.
	sum := 0
	for e := 0; e < g.NumEdges(); e++ {
		sum += g.Usage(e)
	}
	want := 0
	for _, rt := range routes {
		want += rt.NumEdges()
	}
	if sum != want {
		t.Fatalf("usage %d != route edges %d after partial failure", sum, want)
	}

	// The parallel engine honors the same contract (net 1's speculation
	// fails, its serial replay reproduces the sequential error).
	g2, err := tile.New(6, 6, make([]int, 36), 4)
	if err != nil {
		t.Fatal(err)
	}
	nets[1].Sinks[0].Tile = geom.Pt{X: 4, Y: 2}
	routes2 := make([]*rtree.Tree, len(nets))
	for i, n := range nets {
		rt, err := Reroute(g2, n, DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		routes2[i] = rt
		AddUsage(g2, rt)
	}
	nets[1].Sinks[0].Tile = geom.Pt{X: 99, Y: 99}
	px := NewParallel(2, nil)
	committed2, err := px.Pass(g2, nets, routes2, order, DefaultOptions(), nil)
	if err == nil {
		t.Fatal("expected mid-pass failure from parallel pass")
	}
	if committed2 != 1 {
		t.Fatalf("parallel committed = %d, want 1", committed2)
	}
	sum = 0
	for e := 0; e < g2.NumEdges(); e++ {
		sum += g2.Usage(e)
	}
	want = 0
	for _, rt := range routes2 {
		want += rt.NumEdges()
	}
	if sum != want {
		t.Fatalf("parallel usage %d != route edges %d after partial failure", sum, want)
	}
}

// TestReduceCongestionZeroOverflowSkipsPass: an overflow-free circuit has
// nothing for Nair iteration to reduce — Stage 2 must report 0 passes and
// leave the routes untouched (this pinned the wasted-first-pass fix).
func TestReduceCongestionZeroOverflowSkipsPass(t *testing.T) {
	g, err := tile.New(8, 8, make([]int, 64), 16)
	if err != nil {
		t.Fatal(err)
	}
	pin := func(x, y int) netlist.Pin {
		return netlist.Pin{Tile: geom.Pt{X: x, Y: y}, Pos: geom.FPt{X: float64(x), Y: float64(y)}}
	}
	n := &netlist.Net{ID: 0, Name: "n", L: 4, Source: pin(0, 0), Sinks: []netlist.Pin{pin(7, 7)}}
	rt, err := Reroute(g, n, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	routes := []*rtree.Tree{rt}
	AddUsage(g, rt)
	if g.WireCongestion().Overflow != 0 {
		t.Fatal("setup: expected zero overflow")
	}
	before := cloneRoutes(routes)
	passes, err := ReduceCongestion(g, []*netlist.Net{n}, routes, []int{0}, 3, DefaultOptions(), nil, NewParallel(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if passes != 0 {
		t.Fatalf("passes = %d on an overflow-free circuit, want 0", passes)
	}
	if !treesEqual(before[0], routes[0]) {
		t.Error("routes changed despite zero passes")
	}
}

// TestWireHeatZeroCapacity: a blocked (zero-capacity) edge must not plant
// +Inf/NaN in the per-tile heat snapshot.
func TestWireHeatZeroCapacity(t *testing.T) {
	g, err := tile.New(3, 3, make([]int, 9), 2)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.EdgeBetween(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 1, Y: 0})
	if !ok {
		t.Fatal("missing grid edge")
	}
	g.SetCapacity(e, 0)
	g.AddWire(e) // a wire on a blocked edge: utilization would be 1/0
	heat := wireHeat(g, nil)
	for v, h := range heat {
		if h != h || h > 1e18 { // NaN or absurd
			t.Fatalf("tile %d heat = %v with a zero-capacity edge", v, h)
		}
	}
	if heat[0] != 1 {
		t.Errorf("blocked-edge tile heat = %v, want 1 (usage counts as raw wires)", heat[0])
	}
}
