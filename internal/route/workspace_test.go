package route

import (
	"testing"

	"repro/internal/rtree"
)

// treesEqual compares the full observable state of two route trees.
func treesEqual(a, b *rtree.Tree) bool {
	if len(a.Tile) != len(b.Tile) || len(a.Parent) != len(b.Parent) || len(a.SinkNode) != len(b.SinkNode) {
		return false
	}
	for i := range a.Tile {
		if a.Tile[i] != b.Tile[i] || a.Parent[i] != b.Parent[i] {
			return false
		}
	}
	for i := range a.SinkNode {
		if a.SinkNode[i] != b.SinkNode[i] {
			return false
		}
	}
	return true
}

// TestWorkspaceReuseEquivalence is the mechanical-equivalence check for the
// workspace kernel itself: routing every workload net with one shared,
// progressively dirtier Workspace must produce node-for-node identical trees
// to routing each net with a fresh (nil) workspace. Epoch stamping, the tree
// free list, and the edge-cost memo are all pure mechanism — any state
// leaking between calls shows up here as a diverged tree.
func TestWorkspaceReuseEquivalence(t *testing.T) {
	gA, netsA, _, _ := benchWorkload(t)
	gB, netsB, _, _ := benchWorkload(t)
	ws := NewWorkspace()
	for i := range netsA {
		fresh, errA := Reroute(gA, netsA[i], DefaultOptions(), nil)
		shared, errB := Reroute(gB, netsB[i], DefaultOptions(), ws)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("net %d: error divergence: fresh=%v shared=%v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !treesEqual(fresh, shared) {
			t.Fatalf("net %d: shared-workspace tree differs from fresh-workspace tree", i)
		}
		// Keep usage in lockstep so later nets see identical congestion.
		AddUsage(gA, fresh)
		AddUsage(gB, shared)
	}
}

// TestRecycledTreeReuseEquivalence drives the free-list path specifically:
// trees recycled from earlier nets must come back fully reset, with no
// carcass nodes influencing the next route.
func TestRecycledTreeReuseEquivalence(t *testing.T) {
	gA, netsA, _, _ := benchWorkload(t)
	gB, netsB, _, _ := benchWorkload(t)
	ws := NewWorkspace()
	for i := range netsA {
		fresh, errA := Reroute(gA, netsA[i], DefaultOptions(), nil)
		shared, errB := Reroute(gB, netsB[i], DefaultOptions(), ws)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("net %d: error divergence: fresh=%v shared=%v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !treesEqual(fresh, shared) {
			t.Fatalf("net %d: recycled-tree route differs from fresh route", i)
		}
		// Neither tree is retained: donate the shared one so net i+1 builds
		// into net i's recycled carcass.
		ws.Recycle(shared)
	}
}

// TestRecycleNilSafe: Recycle must tolerate nil so error paths can donate
// unconditionally.
func TestRecycleNilSafe(t *testing.T) {
	ws := NewWorkspace()
	ws.Recycle(nil) // must not panic
	if got := len(ws.free); got != 0 {
		t.Fatalf("nil recycle grew the free list to %d", got)
	}
}

// TestPoolNilSafe: a nil *Pool hands out fresh workspaces and swallows puts,
// so callers never need to guard.
func TestPoolNilSafe(t *testing.T) {
	var pl *Pool
	ws := pl.Get()
	if ws == nil {
		t.Fatal("nil pool returned nil workspace")
	}
	pl.Put(ws) // must not panic
}

// TestBlockedMaskZeroedOnGrowth: the Stage-4 mask must arrive all-false on
// first use and after growth, since callers only clear the bits they set.
func TestBlockedMaskZeroedOnGrowth(t *testing.T) {
	ws := NewWorkspace()
	m := ws.BlockedMask(8)
	for i, v := range m {
		if v {
			t.Fatalf("fresh mask bit %d set", i)
		}
	}
	m[3] = true
	m[3] = false // caller discipline: clear what you set
	big := ws.BlockedMask(64)
	if len(big) != 64 {
		t.Fatalf("mask length %d, want 64", len(big))
	}
	for i, v := range big {
		if v {
			t.Fatalf("grown mask bit %d set", i)
		}
	}
}
