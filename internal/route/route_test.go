package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/tile"
)

func mkNet(id int, src geom.Pt, sinks ...geom.Pt) *netlist.Net {
	pin := func(p geom.Pt) netlist.Pin {
		return netlist.Pin{Tile: p, Pos: geom.FPt{X: float64(p.X) * 100, Y: float64(p.Y) * 100}}
	}
	n := &netlist.Net{ID: id, Name: "t", Source: pin(src), L: 5}
	for _, s := range sinks {
		n.Sinks = append(n.Sinks, pin(s))
	}
	return n
}

func grid(t *testing.T, w, h, cap int) *tile.Graph {
	t.Helper()
	g, err := tile.New(w, h, nil, cap)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRerouteStraightLine(t *testing.T) {
	g := grid(t, 10, 1, 4)
	n := mkNet(0, geom.Pt{X: 0, Y: 0}, geom.Pt{X: 9, Y: 0})
	rt, err := Reroute(g, n, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumEdges() != 9 {
		t.Errorf("straight route has %d edges, want 9", rt.NumEdges())
	}
	if err := rt.Validate(g.InGrid); err != nil {
		t.Fatal(err)
	}
}

func TestRerouteAvoidsCongestion(t *testing.T) {
	// 3-wide corridor; saturate the middle row's edges so the route detours.
	g := grid(t, 5, 3, 1)
	for x := 0; x < 4; x++ {
		e, ok := g.EdgeBetween(geom.Pt{X: x, Y: 1}, geom.Pt{X: x + 1, Y: 1})
		if !ok {
			t.Fatal("edge lookup failed")
		}
		g.AddWire(e)
	}
	n := mkNet(0, geom.Pt{X: 0, Y: 1}, geom.Pt{X: 4, Y: 1})
	rt, err := Reroute(g, n, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Route must leave row 1 (the direct 4-edge path is saturated).
	usedMiddle := 0
	for _, pq := range rt.EdgePairs() {
		if pq[0].Y == 1 && pq[1].Y == 1 {
			usedMiddle++
		}
	}
	if usedMiddle != 0 {
		t.Errorf("route used %d saturated middle edges", usedMiddle)
	}
	if rt.NumEdges() < 6 {
		t.Errorf("detour too short: %d edges", rt.NumEdges())
	}
}

func TestRerouteMultiSinkSharing(t *testing.T) {
	g := grid(t, 10, 10, 8)
	n := mkNet(0, geom.Pt{X: 0, Y: 0}, geom.Pt{X: 9, Y: 0}, geom.Pt{X: 9, Y: 1})
	rt, err := Reroute(g, n, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Union of wavefront paths shares the common run: far fewer edges than
	// two disjoint routes (9 + 10 = 19).
	if rt.NumEdges() > 12 {
		t.Errorf("no sharing: %d edges", rt.NumEdges())
	}
	if len(rt.SinkNode) != 2 {
		t.Error("missing sink")
	}
}

func TestRerouteErrors(t *testing.T) {
	g := grid(t, 5, 5, 2)
	n := mkNet(0, geom.Pt{X: 9, Y: 9}, geom.Pt{X: 0, Y: 0})
	if _, err := Reroute(g, n, DefaultOptions(), nil); err == nil {
		t.Error("out-of-grid source accepted")
	}
	n = mkNet(0, geom.Pt{X: 0, Y: 0}, geom.Pt{X: 9, Y: 9})
	if _, err := Reroute(g, n, DefaultOptions(), nil); err == nil {
		t.Error("out-of-grid sink accepted")
	}
}

func TestAddRemoveUsageConserves(t *testing.T) {
	g := grid(t, 8, 8, 4)
	n := mkNet(0, geom.Pt{X: 1, Y: 1}, geom.Pt{X: 6, Y: 6}, geom.Pt{X: 1, Y: 6})
	rt, err := Reroute(g, n, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	AddUsage(g, rt)
	sum := 0
	for e := 0; e < g.NumEdges(); e++ {
		sum += g.Usage(e)
	}
	if sum != rt.NumEdges() {
		t.Errorf("registered %d wires for %d edges", sum, rt.NumEdges())
	}
	RemoveUsage(g, rt)
	if st := g.WireCongestion(); st.Max != 0 {
		t.Error("usage not conserved")
	}
}

func TestRipupPassKeepsAccountingConsistent(t *testing.T) {
	g := grid(t, 12, 12, 2)
	r := rand.New(rand.NewSource(3))
	var nets []*netlist.Net
	for i := 0; i < 20; i++ {
		nets = append(nets, mkNet(i,
			geom.Pt{X: r.Intn(12), Y: r.Intn(12)},
			geom.Pt{X: r.Intn(12), Y: r.Intn(12)},
			geom.Pt{X: r.Intn(12), Y: r.Intn(12)}))
	}
	routes := make([]*rtree.Tree, len(nets))
	order := make([]int, len(nets))
	for i := range nets {
		rt, err := Reroute(g, nets[i], DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		routes[i] = rt
		AddUsage(g, rt)
		order[i] = i
	}
	committed, err := RipupPass(g, nets, routes, order, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if committed != len(order) {
		t.Errorf("committed %d of %d nets on success", committed, len(order))
	}
	// Total registered wires must equal total route edges.
	sum := 0
	for e := 0; e < g.NumEdges(); e++ {
		sum += g.Usage(e)
	}
	want := 0
	for _, rt := range routes {
		want += rt.NumEdges()
	}
	if sum != want {
		t.Errorf("usage %d != route edges %d", sum, want)
	}
}

func TestReduceCongestionEliminatesOverflow(t *testing.T) {
	// Many parallel nets through a narrow region; capacity 3 forces spreading.
	g := grid(t, 10, 10, 3)
	var nets []*netlist.Net
	for i := 0; i < 8; i++ {
		nets = append(nets, mkNet(i, geom.Pt{X: 0, Y: 4}, geom.Pt{X: 9, Y: 4}))
	}
	routes := make([]*rtree.Tree, len(nets))
	order := make([]int, len(nets))
	for i := range nets {
		// Deliberately identical initial routes: all on row 4.
		parent := map[geom.Pt]geom.Pt{}
		for x := 1; x < 10; x++ {
			parent[geom.Pt{X: x, Y: 4}] = geom.Pt{X: x - 1, Y: 4}
		}
		rt, err := rtree.FromParentMap(geom.Pt{X: 0, Y: 4}, parent, []geom.Pt{{X: 9, Y: 4}})
		if err != nil {
			t.Fatal(err)
		}
		routes[i] = rt
		AddUsage(g, rt)
		order[i] = i
	}
	if g.WireCongestion().Overflow == 0 {
		t.Fatal("test setup should overflow")
	}
	passes, err := ReduceCongestion(g, nets, routes, order, 3, DefaultOptions(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if passes < 1 {
		t.Error("no passes executed")
	}
	if st := g.WireCongestion(); st.Overflow != 0 {
		t.Errorf("overflow %d remains after %d passes", st.Overflow, passes)
	}
}

func TestBufferAwarePathStraight(t *testing.T) {
	sites := make([]int, 100)
	for i := range sites {
		sites[i] = 4
	}
	g, err := tile.New(10, 10, sites, 4)
	if err != nil {
		t.Fatal(err)
	}
	path, err := BufferAwarePath(g, geom.Pt{X: 9, Y: 5}, geom.Pt{X: 0, Y: 5}, 4, nil, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != (geom.Pt{X: 0, Y: 5}) || path[len(path)-1] != (geom.Pt{X: 9, Y: 5}) {
		t.Fatalf("endpoints wrong: %v", path)
	}
	if len(path) != 10 {
		t.Errorf("path length %d, want 10 (straight)", len(path))
	}
	for i := 1; i < len(path); i++ {
		if path[i-1].Manhattan(path[i]) != 1 {
			t.Fatal("path not contiguous")
		}
	}
}

func TestBufferAwarePathAvoidsSitelessCorridor(t *testing.T) {
	// L = 2 forces a buffer every other tile; the straight row has no sites,
	// an adjacent row has plenty. The path should shift rows.
	w, h := 12, 3
	sites := make([]int, w*h)
	for x := 0; x < w; x++ {
		sites[0*w+x] = 0 // y=0: no sites
		sites[1*w+x] = 5 // y=1: sites
		sites[2*w+x] = 0
	}
	g, err := tile.New(w, h, sites, 10)
	if err != nil {
		t.Fatal(err)
	}
	path, err := BufferAwarePath(g, geom.Pt{X: 11, Y: 0}, geom.Pt{X: 0, Y: 0}, 2, nil, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	onSiteRow := 0
	for _, p := range path {
		if p.Y == 1 {
			onSiteRow++
		}
	}
	if onSiteRow == 0 {
		t.Errorf("path never used the buffered row: %v", path)
	}
}

func TestBufferAwarePathRespectsBlocked(t *testing.T) {
	g := grid(t, 6, 3, 10)
	blocked := make([]bool, g.NumTiles())
	for x := 0; x < 6; x++ {
		blocked[g.TileIndex(geom.Pt{X: x, Y: 1})] = true // wall across the middle
	}
	// Tail below the wall, head above: impossible without entering blocked.
	if _, err := BufferAwarePath(g, geom.Pt{X: 3, Y: 0}, geom.Pt{X: 3, Y: 2}, 3, blocked, DefaultOptions(), nil); err == nil {
		t.Error("blocked wall should make head unreachable")
	}
	// Head on the wall itself is allowed (endpoint exemption).
	if _, err := BufferAwarePath(g, geom.Pt{X: 3, Y: 0}, geom.Pt{X: 3, Y: 1}, 3, blocked, DefaultOptions(), nil); err != nil {
		t.Errorf("head exemption failed: %v", err)
	}
}

func TestBufferAwarePathBadArgs(t *testing.T) {
	g := grid(t, 4, 4, 2)
	if _, err := BufferAwarePath(g, geom.Pt{}, geom.Pt{X: 3}, 0, nil, DefaultOptions(), nil); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := BufferAwarePath(g, geom.Pt{X: 9, Y: 9}, geom.Pt{}, 2, nil, DefaultOptions(), nil); err == nil {
		t.Error("off-grid tail accepted")
	}
}

// TestBufferAwarePathStateOverflowGuard probes the exact int32 boundary of
// the (tile, j) DP state space. NumTiles()*L one past math.MaxInt32 used to
// silently wrap the int32 predecessor labels and corrupt the traceback; it
// must now be rejected, and rejected *before* any state array is allocated
// (a 2^31-state allocation would be tens of gigabytes — if the guard ran
// after the allocation this test would OOM instead of passing).
func TestBufferAwarePathStateOverflowGuard(t *testing.T) {
	g := grid(t, 2, 2, 2) // 4 tiles
	overL := math.MaxInt32/4 + 1
	if int64(4)*int64(overL) != int64(math.MaxInt32)+1 {
		t.Fatalf("bad boundary arithmetic: 4*%d", overL)
	}
	if _, err := BufferAwarePath(g, geom.Pt{}, geom.Pt{X: 1}, overL, nil, DefaultOptions(), nil); err == nil {
		t.Fatal("state space of MaxInt32+1 accepted; int32 predecessors would overflow")
	}
	// A two-path under the same options but a sane L still routes.
	path, err := BufferAwarePath(g, geom.Pt{}, geom.Pt{X: 1}, 4, nil, DefaultOptions(), nil)
	if err != nil {
		t.Fatalf("sane L rejected: %v", err)
	}
	if len(path) < 2 || path[0] != (geom.Pt{X: 1}) || path[len(path)-1] != (geom.Pt{}) {
		t.Fatalf("bad path %v", path)
	}
}

func TestRerouteAlwaysConnectsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, h := 4+r.Intn(10), 4+r.Intn(10)
		g, err := tile.New(w, h, nil, 1+r.Intn(4))
		if err != nil {
			return false
		}
		// Random pre-existing congestion.
		for i := 0; i < r.Intn(100); i++ {
			g.AddWire(r.Intn(g.NumEdges()))
		}
		nSinks := 1 + r.Intn(4)
		sinks := make([]geom.Pt, nSinks)
		for i := range sinks {
			sinks[i] = geom.Pt{X: r.Intn(w), Y: r.Intn(h)}
		}
		n := mkNet(0, geom.Pt{X: r.Intn(w), Y: r.Intn(h)}, sinks...)
		rt, err := Reroute(g, n, DefaultOptions(), nil)
		if err != nil {
			return false
		}
		if rt.Validate(g.InGrid) != nil {
			return false
		}
		for i, s := range n.Sinks {
			if rt.Tile[rt.SinkNode[i]] != s.Tile {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
