package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// specpure.go machine-checks the PR 6 commit-protocol invariant: during
// route.Parallel's speculation phase, workers route read-only against the
// shared tile.Graph — every graph mutation happens in the serial commit
// loop. The runtime suites prove it for the circuits they run; this check
// proves it for every path the compiler can see:
//
//  1. The *mutating methods* of tile.Graph are discovered by
//     receiver-mutation analysis, not a hardcoded list: a method mutates
//     when it assigns through its receiver (field writes, element writes,
//     ++/--), hands a receiver-rooted slice/map to copy/append-into-self or
//     delete, or calls another mutating method on the receiver (fixpoint).
//  2. The *speculation phase* is seeded semantically: every function that
//     arms workspace speculation — an assignment of `true` to the
//     `spec.active` field of a route Workspace — is an entry point
//     (route.rerouteSpec today; renaming it cannot silently disable the
//     check, only removing the arming write can, and that write IS the
//     speculation mechanism).
//  3. Forward reachability from the seeds over the call graph: any
//     unsuppressed call site that reaches a mutating tile.Graph method is
//     reported with the full path from the seed.
//
// Soundness limits (shared with the rest of the interprocedural layer):
// function values crossing function boundaries (route.Options.Weight) are
// not tracked — ReduceCongestion already forces the sequential kernel when
// a Weight hook is set, so the untracked path cannot reach speculation.

// graphMutation is one direct receiver mutation inside a method.
type graphMutation struct {
	fn  *types.Func
	pos token.Pos
}

// checkSpecPure wires the three phases together.
func (a *analysis) checkSpecPure() {
	mutators := a.graphMutators()
	if len(mutators) == 0 {
		return
	}
	seeds := a.specSeeds()
	if len(seeds) == 0 {
		return
	}
	a.reportSpecReach(seeds, mutators)
}

// tileGraphType locates the tile.Graph type in the loaded module (package
// path element "tile", type name "Graph"), or nil when the module has none
// (the corpus defines its own miniature).
func (a *analysis) tileGraphType() *types.Named {
	for _, pkg := range a.mod.Pkgs {
		if pkgElem(pkg) != "tile" {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup("Graph").(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				return named
			}
		}
	}
	return nil
}

// graphMutators returns every tile.Graph method that (transitively through
// receiver method calls) mutates its receiver, with the position of one
// witness mutation.
func (a *analysis) graphMutators() map[*types.Func]token.Pos {
	graph := a.tileGraphType()
	if graph == nil {
		return nil
	}
	// Collect the graph's module-declared methods and analyze each body.
	methods := map[*types.Func]*specMethodInfo{}
	for _, n := range a.cg.nodeList {
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); !ok || named.Obj() != graph.Obj() {
			continue
		}
		mi := &specMethodInfo{node: n}
		methods[n.Fn] = mi
		a.analyzeReceiverMutation(n, mi)
	}
	// Fixpoint: a method calling a mutating method on its receiver mutates.
	// Membership first (the closure is order-independent), witnesses after,
	// so the reported positions never depend on map iteration order.
	mutating := map[*types.Func]bool{}
	for fn, mi := range methods {
		if mi.direct.IsValid() {
			mutating[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, mi := range methods {
			if mutating[fn] {
				continue
			}
			for _, callee := range mi.recvCalls {
				if mutating[callee] {
					mutating[fn] = true
					changed = true
					break
				}
			}
		}
	}
	out := map[*types.Func]token.Pos{}
	for fn, mi := range methods {
		if !mutating[fn] {
			continue
		}
		if mi.direct.IsValid() {
			out[fn] = mi.direct
			continue
		}
		for i, callee := range mi.recvCalls { // source order: first hit is the witness
			if mutating[callee] {
				out[fn] = mi.recvPos[i]
				break
			}
		}
	}
	return out
}

// specMethodInfo is the per-method scratch of the receiver-mutation
// analysis.
type specMethodInfo struct {
	node      *FuncNode
	direct    token.Pos     // first direct receiver mutation (NoPos = none)
	recvCalls []*types.Func // methods invoked on the receiver
	recvPos   []token.Pos   // matching call positions
}

// analyzeReceiverMutation fills mi with n's direct receiver mutations and
// receiver method calls.
func (a *analysis) analyzeReceiverMutation(n *FuncNode, mi *specMethodInfo) {
	recv := receiverObject(n)
	if recv == nil {
		return // unnamed receiver cannot be mutated through
	}
	info := n.Pkg.Info
	rooted := func(e ast.Expr) bool { return rootObject(info, e) == recv }
	note := func(pos token.Pos) {
		if !mi.direct.IsValid() || pos < mi.direct {
			mi.direct = pos
		}
	}
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nd.Lhs {
				if rooted(lhs) {
					note(lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if rooted(nd.X) {
				note(nd.X.Pos())
			}
		case *ast.CallExpr:
			fun := ast.Unparen(nd.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					// copy(recv.f, …) and delete(recv.m, …) mutate in place.
					if (b.Name() == "copy" || b.Name() == "delete") && len(nd.Args) > 0 && rooted(nd.Args[0]) {
						note(nd.Pos())
					}
				}
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok && rooted(sel.X) {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					mi.recvCalls = append(mi.recvCalls, fn)
					mi.recvPos = append(mi.recvPos, nd.Pos())
				}
			}
		}
		return true
	})
}

// receiverObject returns the types.Var of n's named receiver, or nil.
func receiverObject(n *FuncNode) types.Object {
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 || len(n.Decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return n.Pkg.Info.Defs[n.Decl.Recv.List[0].Names[0]]
}

// rootObject strips selectors, indexing, derefs, and parens down to the
// base identifier's object: the thing an assignment ultimately writes into.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// specSeeds finds the speculation entry points: functions whose body arms
// workspace speculation by assigning true into a Workspace's spec.active
// field (package element "route", receiver type name "Workspace").
func (a *analysis) specSeeds() []*FuncNode {
	var seeds []*FuncNode
	for _, n := range a.cg.nodeList {
		if pkgElem(n.Pkg) != "route" {
			continue
		}
		info := n.Pkg.Info
		armed := false
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || armed {
				return !armed
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if id, ok := as.Rhs[i].(*ast.Ident); !ok || id.Name != "true" {
					continue
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "active" {
					continue
				}
				inner, ok := sel.X.(*ast.SelectorExpr)
				if !ok || inner.Sel.Name != "spec" {
					continue
				}
				t := info.TypeOf(inner.X)
				if t == nil {
					continue
				}
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Workspace" {
					armed = true
				}
			}
			return !armed
		})
		if armed {
			seeds = append(seeds, n)
		}
	}
	return seeds
}

// reportSpecReach walks forward from the seeds and reports every
// unsuppressed call site that invokes a mutating tile.Graph method from a
// speculation-reachable function, with the full path from the seed.
func (a *analysis) reportSpecReach(seeds []*FuncNode, mutators map[*types.Func]token.Pos) {
	// BFS distances from the seed set; parent pointers reconstruct paths
	// deterministically (strictly decreasing distance, smallest position
	// wins ties).
	dist := map[*types.Func]int{}
	type parentEdge struct {
		caller *types.Func
		pos    token.Pos
	}
	parent := map[*types.Func]parentEdge{}
	for _, s := range seeds {
		dist[s.Fn] = 0
	}
	for changed := true; changed; {
		changed = false
		for _, n := range a.cg.nodeList {
			d, ok := dist[n.Fn]
			if !ok {
				continue
			}
			for _, cs := range n.Calls {
				if _, isMut := mutators[cs.Callee]; isMut {
					continue // findings, not traversal
				}
				if a.suppressed("specpure", cs.Pos) {
					continue
				}
				if cd, ok := dist[cs.Callee]; !ok || d+1 < cd {
					dist[cs.Callee] = d + 1
					changed = true
				}
			}
		}
	}
	for _, n := range a.cg.nodeList {
		d, ok := dist[n.Fn]
		if !ok {
			continue
		}
		for _, cs := range n.Calls {
			if cd, ok := dist[cs.Callee]; ok && cd == d+1 {
				// Candidate parents live in different files; order by
				// file/line/col, not raw Pos (see Module.posLess).
				if pe, ok := parent[cs.Callee]; !ok || a.mod.posLess(cs.Pos, pe.pos) {
					parent[cs.Callee] = parentEdge{caller: n.Fn, pos: cs.Pos}
				}
			}
		}
	}
	path := func(fn *types.Func) string {
		parts := []string{a.cg.shortFunc(fn)}
		for cur := fn; dist[cur] > 0; {
			pe := parent[cur]
			parts = append([]string{a.cg.shortFunc(pe.caller)}, parts...)
			cur = pe.caller
		}
		return joinPath(parts)
	}
	for _, n := range a.cg.nodeList {
		if _, ok := dist[n.Fn]; !ok {
			continue
		}
		for _, cs := range n.Calls {
			mpos, isMut := mutators[cs.Callee]
			if !isMut {
				continue
			}
			mw := a.mod.Fset.Position(mpos)
			a.report("specpure", cs.Pos, fmt.Sprintf(
				"speculation phase reaches graph mutation %s (mutates its receiver at %s:%d): %s → %s; "+
					"speculative routing must be read-only on the shared graph — move the mutation to the "+
					"commit loop (or annotate: //rabid:allow specpure <reason>)",
				a.cg.shortFunc(cs.Callee), a.mod.relFile(mw.Filename), mw.Line,
				path(n.Fn), a.cg.shortFunc(cs.Callee)))
		}
	}
}

func joinPath(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += " → " + p
	}
	return out
}
