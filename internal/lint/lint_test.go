package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// corpusMod loads testdata/corpus once for all tests.
var corpusMod = sync.OnceValues(func() (*Module, error) {
	return Load("testdata/corpus", nil)
})

// wantRe extracts expectation markers: a "// want:<check>" comment on the
// line a finding must land on.
var wantRe = regexp.MustCompile(`want:([a-z]+)`)

type key struct {
	file  string
	line  int
	check string
}

// corpusWants scans the corpus sources for expectation markers.
func corpusWants(t *testing.T) map[key]bool {
	t.Helper()
	wants := map[key]bool{}
	err := filepath.WalkDir("testdata/corpus", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel("testdata/corpus", path)
		for i, line := range strings.Split(string(b), "\n") {
			if !strings.Contains(line, "// want:") {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants[key{filepath.ToSlash(rel), i + 1, m[1]}] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestCorpusFindings drives every check over its positive and negative
// corpus files: each marked line must be found, and nothing else may be.
func TestCorpusFindings(t *testing.T) {
	mod, err := corpusMod()
	if err != nil {
		t.Fatal(err)
	}
	wants := corpusWants(t)
	got := map[key]bool{}
	for _, f := range Run(mod, nil) {
		if f.Check == "allow" {
			continue // asserted by TestAllowRequiresReason
		}
		got[key{f.File, f.Line, f.Check}] = true
	}
	for w := range wants {
		if !got[w] {
			t.Errorf("missing finding: %s:%d [%s]", w.file, w.line, w.check)
		}
	}
	for g := range got {
		if !wants[g] {
			t.Errorf("unexpected finding: %s:%d [%s]", g.file, g.line, g.check)
		}
	}
}

// TestAllowRequiresReason locks the annotation grammar: a //rabid:allow
// with no reason is itself reported and suppresses nothing.
func TestAllowRequiresReason(t *testing.T) {
	mod, err := corpusMod()
	if err != nil {
		t.Fatal(err)
	}
	// Find the bare annotation's line in the corpus source.
	src, err := os.ReadFile("testdata/corpus/route/maprange_pos.go")
	if err != nil {
		t.Fatal(err)
	}
	bareLine := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.TrimSpace(line) == "//rabid:allow maprange" {
			bareLine = i + 1
		}
	}
	if bareLine == 0 {
		t.Fatal("corpus lost its bare //rabid:allow maprange line")
	}
	var gotAllow, gotUnsuppressed bool
	for _, f := range Run(mod, nil) {
		if f.File != "route/maprange_pos.go" {
			continue
		}
		if f.Check == "allow" && f.Line == bareLine {
			gotAllow = true
			if !strings.Contains(f.Message, "reason") {
				t.Errorf("allow finding does not explain the missing reason: %q", f.Message)
			}
		}
		if f.Check == "maprange" && f.Line == bareLine+1 {
			gotUnsuppressed = true
		}
	}
	if !gotAllow {
		t.Errorf("bare annotation at route/maprange_pos.go:%d not reported", bareLine)
	}
	if !gotUnsuppressed {
		t.Errorf("bare annotation at route/maprange_pos.go:%d suppressed the finding below it", bareLine)
	}
}

// repoRoot locates the real module root (two levels up from this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestSelfClean is the self-application gate: rabidlint must load the real
// module — including internal/lint and internal/obs themselves — and come
// back with zero findings. This is the same invariant CI enforces with
// `go run ./cmd/rabidlint ./...`.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := Load(repoRoot(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawLint, sawObs, sawServer, sawCache, sawJournal, sawBackend bool
	var sawJobs, sawEdge bool
	for _, pkg := range mod.Pkgs {
		switch pkg.ImportPath {
		case mod.Path + "/internal/lint":
			sawLint = true
		case mod.Path + "/internal/obs":
			sawObs = true
		case mod.Path + "/internal/server":
			sawServer = true
			for _, f := range pkg.Files {
				switch filepath.Base(mod.Fset.Position(f.Pos()).Filename) {
				case "jobs.go":
					sawJobs = true
				case "edge.go":
					sawEdge = true
				}
			}
		case mod.Path + "/internal/cache":
			sawCache = true
		case mod.Path + "/internal/journal":
			sawJournal = true
		case mod.Path + "/internal/backend":
			sawBackend = true
		}
	}
	if !sawLint || !sawObs {
		t.Fatalf("self-application must load internal/lint (%v) and internal/obs (%v)", sawLint, sawObs)
	}
	if !sawServer || !sawCache || !sawJournal {
		t.Fatalf("self-application must load internal/server (%v), internal/cache (%v), and internal/journal (%v)",
			sawServer, sawCache, sawJournal)
	}
	if !sawJobs || !sawEdge {
		t.Fatalf("self-application must cover the async job runner (jobs.go: %v) and edge telemetry (edge.go: %v)", sawJobs, sawEdge)
	}
	if !sawBackend {
		t.Fatal("self-application must load internal/backend (the planning-engine registry)")
	}
	for _, f := range Run(mod, nil) {
		t.Errorf("tree not clean: %s", f)
	}
}

// TestSeededViolations seeds one instance of each violation class into
// internal/route via the overlay (no files touched) and asserts each is
// reported with its check ID at the exact file:line — the acceptance
// criterion that a regression in any invariant fails CI.
func TestSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	seeded := `package route

import (
	"math/rand"
	"time"
)

func seededMapRange(m map[int]bool) int { // line 8
	n := 0
	for k := range m { // line 10: maprange
		n += k
	}
	return n
}

func seededClock() time.Time {
	return time.Now() // line 17: wallclock
}

func seededRand(n int) int {
	return rand.Intn(n) // line 21: globalrand
}

func seededFloatEq(a, b float64) bool {
	return a == b // line 25: floateq
}

func seededNarrow(x int) int32 {
	return int32(x) // line 29: narrowcast
}

func seededErrDrop(g interface{ Validate() error }) {
	g.Validate() // line 33: errdrop
}
`
	mod, err := Load(repoRoot(t), map[string][]byte{
		"internal/route/zz_seeded.go": []byte(seeded),
	})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(mod, map[string]bool{mod.Path + "/internal/route": true})
	want := map[key]bool{
		{"internal/route/zz_seeded.go", 10, "maprange"}:   false,
		{"internal/route/zz_seeded.go", 17, "wallclock"}:  false,
		{"internal/route/zz_seeded.go", 21, "globalrand"}: false,
		{"internal/route/zz_seeded.go", 25, "floateq"}:    false,
		{"internal/route/zz_seeded.go", 29, "narrowcast"}: false,
		{"internal/route/zz_seeded.go", 33, "errdrop"}:    false,
	}
	for _, f := range findings {
		k := key{f.File, f.Line, f.Check}
		if _, ok := want[k]; ok {
			want[k] = true
		} else if f.File == "internal/route/zz_seeded.go" {
			t.Errorf("unexpected finding in seeded file: %s", f)
		}
	}
	for k, hit := range want {
		if !hit {
			t.Errorf("seeded violation not detected: %s:%d [%s]", k.file, k.line, k.check)
		}
	}
}

// TestFindingFormat locks the file:line:col rendering the CI log and the
// JSON artifact rely on.
func TestFindingFormat(t *testing.T) {
	f := Finding{Check: "maprange", File: "internal/route/route.go", Line: 12, Col: 3, Message: "m"}
	if got, want := f.Pos(), "internal/route/route.go:12:3"; got != want {
		t.Errorf("Pos() = %q, want %q", got, want)
	}
	if got := f.String(); got != fmt.Sprintf("%s: [maprange] m", f.Pos()) {
		t.Errorf("String() = %q", got)
	}
}
