package lint

import (
	"encoding/json"
	"io"
)

// sarif.go serializes findings as SARIF 2.1.0, the interchange format code
// hosts ingest for inline PR annotations. The writer emits the minimal
// conforming subset: one run, one rule per check ID in the catalog (so
// every result's ruleIndex resolves even when a check found nothing), one
// result per finding with a physical location anchored at the module root
// (%SRCROOT%). Findings are already sorted by position; the output is
// byte-identical for identical findings.

// ruleHelp maps each check ID to the one-line description embedded in the
// SARIF rule metadata.
var ruleHelp = map[string]string{
	"maprange":   "map iteration order must not reach results: collect and sort keys",
	"wallclock":  "wall-clock reads must go through the gated clock (obs.Now/obs.Since)",
	"globalrand": "randomness must come from a seeded *rand.Rand, not the global source",
	"floateq":    "floating-point equality must be tolerance-based or provably exact",
	"narrowcast": "integer narrowing must be range-checked",
	"errdrop":    "errors must be handled or explicitly discarded with a reason",
	"specpure":   "speculative routing must not mutate the shared tile graph",
	"ctxflow":    "a caller's context must flow to callees, not be swapped for a fresh root",
	"allocfree":  "hot-set functions must not heap-allocate (compiler escape analysis)",
	"allow":      "//rabid:allow annotations must name a known check and carry a reason",
}

// sarifLog mirrors the SARIF 2.1.0 envelope.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF serializes findings as a SARIF 2.1.0 log. Every catalog check
// (plus the synthetic "allow" rule) appears in the rule table regardless of
// whether it fired, so ruleIndex references are stable across runs.
func WriteSARIF(w io.Writer, findings []Finding) error {
	ruleIDs := append(Checks(), "allow")
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, len(ruleIDs))
	for i, id := range ruleIDs {
		ruleIndex[id] = i
		rules[i] = sarifRule{ID: id, ShortDescription: sarifMessage{Text: ruleHelp[id]}}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Check,
			RuleIndex: ruleIndex[f.Check],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rabidlint", Rules: rules}},
			Results: results,
		}},
	})
}
