package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go builds the static call graph the interprocedural checks
// (taint.go, specpure.go, ctxflow.go) walk. One graph is built per Run over
// the whole module; nodes are the module's declared functions and methods,
// edges are the call sites that can be resolved statically:
//
//   - direct calls to package functions and concrete methods resolve
//     through go/types object identity (the same *types.Func pointer is
//     shared across packages because the loader serves already-checked
//     packages to importers);
//   - calls through interface methods resolve CHA-style: conservatively, to
//     every module-declared concrete method that implements the interface
//     method (class-hierarchy analysis — sound for module-internal
//     dispatch, over-approximate by design);
//   - calls through function-typed variables resolve intraprocedurally: a
//     local assigned from named functions anywhere in the enclosing
//     declaration calls all of them. Function values that cross a function
//     boundary (stored in struct fields like route.Options.Weight, passed
//     as arguments) are NOT tracked — a documented soundness limit (see
//     DESIGN.md "Static analysis").
//
// Function literals do not get their own nodes: a literal's body is
// attributed to the enclosing declared function, which matches how the
// checks reason ("what can running f reach?") and covers closures handed to
// par.ForEach and friends. Calls to functions outside the module are kept
// as qualified external facts ("time.Now", "context.Background") — the
// taint seeds — rather than edges.
type CallGraph struct {
	mod *Module
	// Nodes indexes every module-declared function with a body.
	Nodes map[*types.Func]*FuncNode
	// nodeList is Nodes in deterministic (source position) order.
	nodeList []*FuncNode
	// named holds every module-declared non-interface named type, for CHA.
	named []*types.Named
	// chaCache memoizes interface-method resolution.
	chaCache map[chaKey][]*types.Func
}

// FuncNode is one call-graph node: a declared function or method.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls are resolved call sites targeting module functions, in source
	// order (one site may appear once per CHA target).
	Calls []CallSite
	// Exts are calls to functions outside the module, recorded by
	// qualified name ("time.Now", "math/rand.Intn", "context.Background").
	Exts []ExtCall
	// MapRanges are the positions of raw (non-sorted-idiom) map range
	// statements in the body — the maprange taint sources.
	MapRanges []token.Pos
}

// CallSite is one resolved module-internal call edge.
type CallSite struct {
	Pos    token.Pos
	Callee *types.Func
}

// ExtCall is a call to a function outside the module.
type ExtCall struct {
	Pos  token.Pos
	Name string
}

type chaKey struct {
	iface  *types.Interface
	method string
}

// inModule reports whether fn is declared in one of the module's packages.
func (m *Module) inModule(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == m.Path || strings.HasPrefix(p, m.Path+"/")
}

// BuildCallGraph constructs the module's call graph. Deterministic: nodes
// and edges are discovered in file/source order.
func BuildCallGraph(mod *Module) *CallGraph {
	cg := &CallGraph{
		mod:      mod,
		Nodes:    map[*types.Func]*FuncNode{},
		chaCache: map[chaKey][]*types.Func{},
	}
	// Enumerate named types once for CHA.
	for _, pkg := range mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			cg.named = append(cg.named, named)
		}
	}
	// Create nodes, then edges (two passes so every callee node exists).
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Pkg: pkg, Decl: fd}
				cg.Nodes[fn] = n
				cg.nodeList = append(cg.nodeList, n)
			}
		}
	}
	for _, n := range cg.nodeList {
		cg.buildEdges(n)
	}
	cg.collectMapRanges()
	return cg
}

// ForEachNode visits the nodes in deterministic source order.
func (cg *CallGraph) ForEachNode(fn func(n *FuncNode)) {
	for _, n := range cg.nodeList {
		fn(n)
	}
}

// buildEdges resolves every call expression in n's body (including nested
// function literals, attributed to n).
func (cg *CallGraph) buildEdges(n *FuncNode) {
	info := n.Pkg.Info
	// Pass 1: intraprocedural function-value tracking — every local
	// variable assigned from one or more named functions.
	funcVars := map[types.Object][]*types.Func{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if fn := cg.staticFunc(n.Pkg, rhs); fn != nil {
			funcVars[obj] = append(funcVars[obj], fn)
		}
	}
	ast.Inspect(n.Decl, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			if len(nd.Lhs) == len(nd.Rhs) {
				for i := range nd.Lhs {
					record(nd.Lhs[i], nd.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(nd.Names) == len(nd.Values) {
				for i := range nd.Names {
					record(nd.Names[i], nd.Values[i])
				}
			}
		}
		return true
	})

	// Pass 2: resolve calls.
	ast.Inspect(n.Decl, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		cg.resolveCall(n, call, funcVars)
		return true
	})
}

// staticFunc resolves an expression to the single named function it
// denotes, when it does (identifier or selector referencing a func).
func (cg *CallGraph) staticFunc(pkg *Package, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T]
		return cg.staticFunc(pkg, e.X)
	case *ast.IndexListExpr:
		return cg.staticFunc(pkg, e.X)
	}
	return nil
}

// resolveCall classifies one call expression and appends edges/externals.
func (cg *CallGraph) resolveCall(n *FuncNode, call *ast.CallExpr, funcVars map[types.Object][]*types.Func) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)
	// Conversions look like calls; skip them.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	// Generic instantiations wrap the callee.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if fn := cg.staticFunc(n.Pkg, ix.X); fn != nil {
			cg.addTarget(n, call.Pos(), fn)
			return
		}
	case *ast.IndexListExpr:
		if fn := cg.staticFunc(n.Pkg, ix.X); fn != nil {
			cg.addTarget(n, call.Pos(), fn)
			return
		}
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			cg.addTarget(n, call.Pos(), obj)
		case *types.Var:
			// Call through a function value: intraprocedural targets.
			for _, fn := range funcVars[obj] {
				cg.addTarget(n, call.Pos(), fn)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				// Interface dispatch: CHA over module impls.
				for _, impl := range cg.ifaceImpls(iface, fun.Sel.Name) {
					cg.addTarget(n, call.Pos(), impl)
				}
				return
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				cg.addTarget(n, call.Pos(), fn)
			}
			return
		}
		// Qualified package function (pkg.Fn) or method expression (T.M).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			cg.addTarget(n, call.Pos(), fn)
		}
	}
}

// addTarget appends a module edge or an external fact for one resolved
// callee.
func (cg *CallGraph) addTarget(n *FuncNode, pos token.Pos, fn *types.Func) {
	if cg.mod.inModule(fn) {
		n.Calls = append(n.Calls, CallSite{Pos: pos, Callee: fn})
		return
	}
	if fn.Pkg() == nil {
		return // builtins (error.Error has Pkg nil too; externals we track are package funcs)
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // external methods are not taint sources we track
	}
	n.Exts = append(n.Exts, ExtCall{Pos: pos, Name: fn.Pkg().Path() + "." + fn.Name()})
}

// ifaceImpls resolves an interface method CHA-style to every module-declared
// concrete method implementing it, sorted by position for determinism.
func (cg *CallGraph) ifaceImpls(iface *types.Interface, method string) []*types.Func {
	key := chaKey{iface, method}
	if impls, ok := cg.chaCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	seen := map[*types.Func]bool{}
	for _, named := range cg.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		mset := types.NewMethodSet(ptr)
		for i := 0; i < mset.Len(); i++ {
			m := mset.At(i)
			fn, ok := m.Obj().(*types.Func)
			if !ok || fn.Name() != method {
				continue
			}
			if cg.mod.inModule(fn) && cg.Nodes[fn] != nil && !seen[fn] {
				seen[fn] = true
				impls = append(impls, fn)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return cg.mod.posLess(impls[i].Pos(), impls[j].Pos()) })
	cg.chaCache[key] = impls
	return impls
}

// collectMapRanges records the raw map range statements of every function:
// ranges over map-typed expressions that are not the recognized
// collect-then-sort idiom. These are the maprange taint sources; whether
// they are also direct findings depends on the package (checkMapRange).
func (cg *CallGraph) collectMapRanges() {
	for _, pkg := range cg.mod.Pkgs {
		p := &pass{mod: cg.mod, pkg: pkg}
		var raws []token.Pos
		p.eachStmtList(func(list []ast.Stmt) {
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.pkg.Info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if p.isSortedKeyCollection(rs, list[i+1:]) {
					continue
				}
				raws = append(raws, rs.Pos())
			}
		})
		if len(raws) == 0 {
			continue
		}
		// Attribute each range to its enclosing declared function.
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := cg.Nodes[fn]
				if node == nil {
					continue
				}
				for _, pos := range raws {
					if fd.Pos() <= pos && pos < fd.End() {
						node.MapRanges = append(node.MapRanges, pos)
					}
				}
			}
		}
	}
}

// shortFunc renders a module function compactly for call-path messages:
// "route.Reroute", "(*route.Parallel).speculate", or the full name for
// functions outside the module.
func (cg *CallGraph) shortFunc(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, cg.mod.Path+"/internal/", "")
	name = strings.ReplaceAll(name, cg.mod.Path+"/", "")
	// The facade package itself ("repro.Run") keeps its module path element.
	name = strings.ReplaceAll(name, cg.mod.Path+".", pathBase(cg.mod.Path)+".")
	return name
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
