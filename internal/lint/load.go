package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/par"
)

// buildCtx pins file selection to linux/amd64 regardless of the host, so
// the set of files analyzed — and therefore the findings — is identical on
// every platform (checkNarrowCast pins 64-bit sizes for the same reason).
// It also keeps //go:build-constrained and GOOS/GOARCH-suffixed files of
// other platforms out of the type-checker, where they would collide as
// duplicate declarations.
var buildCtx = func() build.Context {
	ctx := build.Default
	ctx.GOOS, ctx.GOARCH = "linux", "amd64"
	ctx.CgoEnabled = false
	return ctx
}()

// Module is a fully parsed and type-checked Go module.
type Module struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs holds the module's packages in dependency order.
	Pkgs []*Package
}

// Package is one type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// posLess orders two positions by (file, line, column). Ordering raw
// token.Pos values is only meaningful within one file: across files it
// compares FileSet base offsets, which depend on parse registration order —
// nondeterministic under parallel parsing. Every cross-file comparison in
// the analyzer goes through here instead.
func (m *Module) posLess(a, b token.Pos) bool {
	pa, pb := m.Fset.Position(a), m.Fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// relFile returns filename relative to the module root (for stable,
// machine-comparable findings).
func (m *Module) relFile(filename string) string {
	if rel, err := filepath.Rel(m.Root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Load parses and type-checks every non-test package under root with one
// parse worker per CPU. overlay maps module-root-relative file paths to
// replacement/extra contents; it exists so tests can seed a violation into
// a real package without touching the tree. Test files (_test.go) are
// outside the analyzer's scope: the invariants guarded here are about what
// ships in results, and tests legitimately poke at clocks and exact floats.
func Load(root string, overlay map[string][]byte) (*Module, error) {
	return LoadWorkers(root, overlay, 0)
}

// LoadWorkers is Load with an explicit parse worker count (<1 = one per
// CPU). Parsing is the load-time hot spot and every file is independent, so
// files parse concurrently into the shared FileSet (which is
// concurrency-safe); type-checking stays sequential in topological import
// order, since a package's check needs its dependencies' results. The
// worker count cannot influence findings: per-file slots keep package file
// lists in deterministic order, and position ordering across files goes
// through Module.posLess (file/line/col), never raw FileSet offsets — the
// only thing parallel parsing perturbs.
func LoadWorkers(root string, overlay map[string][]byte, workers int) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	// Overlay files may introduce a package in a directory with no
	// on-disk Go files.
	for rel := range overlay {
		dirs[filepath.Dir(filepath.Join(root, rel))] = true
	}

	// Enumerate every file to parse, in deterministic (sorted dir, sorted
	// name) order, before any parsing happens.
	type parseJob struct {
		ip   string // import path of the enclosing package
		dir  string
		full string
		src  any // overlay contents, or nil to read from disk
	}
	var dirList []string
	for dir := range dirs {
		dirList = append(dirList, dir)
	}
	sort.Strings(dirList)
	var jobs []parseJob
	for _, dir := range dirList {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		names, err := goFiles(dir)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			full := filepath.Join(dir, name)
			var src any
			if b, ok := overlay[filepath.ToSlash(filepath.Join(rel, name))]; ok {
				src = b
			}
			jobs = append(jobs, parseJob{ip: ip, dir: dir, full: full, src: src})
		}
		// Overlay files that don't exist on disk, in sorted path order.
		var extras []string
		for orel := range overlay {
			full := filepath.Join(root, orel)
			if filepath.Dir(full) != dir {
				continue
			}
			if _, err := os.Stat(full); err == nil {
				continue // already enumerated above with overlay contents
			}
			extras = append(extras, orel)
		}
		sort.Strings(extras)
		for _, orel := range extras {
			jobs = append(jobs, parseJob{ip: ip, dir: dir, full: filepath.Join(root, orel), src: overlay[orel]})
		}
	}

	// Parse every file concurrently. Each job writes only its own slot;
	// package assembly below walks the slots in job order, so the resulting
	// Files lists are identical at every worker count.
	files := make([]*ast.File, len(jobs))
	if err := par.ForEach(workers, len(jobs), func(i int) error {
		f, perr := parser.ParseFile(mod.Fset, jobs[i].full, jobs[i].src, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("lint: %w", perr)
		}
		files[i] = f
		return nil
	}); err != nil {
		return nil, err
	}

	type parsed struct {
		pkg     *Package
		imports map[string]bool
	}
	byPath := map[string]*parsed{}
	for i, job := range jobs {
		p := byPath[job.ip]
		if p == nil {
			p = &parsed{pkg: &Package{ImportPath: job.ip, Dir: job.dir}, imports: map[string]bool{}}
			byPath[job.ip] = p
		}
		f := files[i]
		p.pkg.Files = append(p.pkg.Files, f)
		for _, imp := range f.Imports {
			p.imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}

	// Topological order over intra-module imports, alphabetical within a
	// rank so loading is deterministic.
	order, err := topoSort(byPath, func(ip string) []string {
		var deps []string
		for imp := range byPath[ip].imports {
			if _, ok := byPath[imp]; ok {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		return deps
	})
	if err != nil {
		return nil, err
	}

	// Stdlib dependencies type-check from GOROOT source; module-local
	// imports resolve against the packages checked earlier in the order.
	local := map[string]*types.Package{}
	imp := &moduleImporter{
		local:    local,
		fallback: importer.ForCompiler(mod.Fset, "source", nil),
	}
	for _, ip := range order {
		p := byPath[ip]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(ip, mod.Fset, p.pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", ip, err)
		}
		p.pkg.Types, p.pkg.Info = tpkg, info
		local[ip] = tpkg
		mod.Pkgs = append(mod.Pkgs, p.pkg)
	}
	return mod, nil
}

// moduleImporter serves module-local packages from the already-checked set
// and everything else (the standard library) from GOROOT source.
type moduleImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (rabidlint must run at a module root)", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// packageDirs walks the module and returns every directory containing
// non-test Go files, skipping testdata, vendor, and hidden directories
// (and nested modules, which have their own go.mod).
func packageDirs(root string) (map[string]bool, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if path != root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	return dirs, err
}

// goFiles lists the non-test Go files of one directory that match the
// pinned linux/amd64 build configuration (file-name suffixes and
// //go:build lines, via go/build), sorted.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		match, err := buildCtx.MatchFile(dir, n)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, n), err)
		}
		if match {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// topoSort orders the packages so every import precedes its importer.
func topoSort[T any](nodes map[string]T, deps func(string) []string) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", n)
		case 2:
			return nil
		}
		state[n] = 1
		for _, d := range deps(n) {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[n] = 2
		order = append(order, n)
		return nil
	}
	var keys []string
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}
