package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// taint.go re-grounds the wallclock, globalrand, and maprange checks as
// transitive call-graph properties. The intraprocedural checks in checks.go
// see one function body at a time, so a wall-clock read hidden behind a
// module-internal wrapper — or a map iteration inside a helper package —
// reaches results without a finding. Here each invariant becomes a taint:
//
//   - a function is *directly* tainted when its own body performs the
//     primitive (an unsuppressed time.Now call, a global math/rand draw, a
//     raw map range);
//   - taint propagates callee→caller through the call graph, except
//     through call sites suppressed by //rabid:allow — a blessed call site
//     documents why the callee is safe from there, so callers above it
//     stay clean;
//   - exempt packages never become tainted (internal/obs owns the gated
//     clock; the telemetry/rendering layers may range maps freely).
//
// A function tainted only transitively is reported once, at its earliest
// call site into the tainted region, with the full call path down to the
// leaf primitive ("a → b → time.Now"). Directly tainted functions are NOT
// re-reported here — the leaf checks already put a finding on the exact
// primitive line.

// taintInfo records how one function became tainted.
type taintInfo struct {
	// depth is the call distance to the leaf primitive (0 = in this body).
	depth int
	// via is the callee the witness call site targets (nil for depth 0).
	via *types.Func
	// pos is the witness: the primitive itself at depth 0, else the call
	// site into the tainted region.
	pos token.Pos
	// leaf names the primitive ("time.Now", "rand.Intn", "range over map").
	leaf string
}

type taintMap map[*types.Func]*taintInfo

// orderExempt lists the final import-path elements of packages whose map
// iteration is confined to aggregates and sorted rendering — they never
// become maprange taint sources, mirroring the rationale for
// resultAffecting in checks.go. Every other package (including helper
// libraries like tile, geom, or netlist that the direct check skips) taints
// its callers: a map range in a geometry helper is exactly the
// interprocedural hole this file closes.
var orderExempt = map[string]bool{
	"obs": true, "viz": true, "textable": true, "exp": true, "lint": true,
}

// pkgElem returns the final element of a package's import path.
func pkgElem(pkg *Package) string {
	ip := pkg.ImportPath
	if i := strings.LastIndexByte(ip, '/'); i >= 0 {
		return ip[i+1:]
	}
	return ip
}

// computeTaint runs the taint fixpoint for one check. direct reports a
// node's own primitive (already suppression-filtered); exempt nodes never
// taint. Depths are the Bellman-Ford fixpoint of
// depth(f) = 1 + min(depth(callee)) over unsuppressed call sites, so the
// witness chain strictly decreases in depth and path reconstruction
// terminates; ties pick the smallest source position — fully deterministic.
func (a *analysis) computeTaint(check string, direct func(*FuncNode) (token.Pos, string, bool), exempt func(*FuncNode) bool) taintMap {
	tm := taintMap{}
	for _, n := range a.cg.nodeList {
		if exempt != nil && exempt(n) {
			continue
		}
		if pos, leaf, ok := direct(n); ok {
			tm[n.Fn] = &taintInfo{depth: 0, pos: pos, leaf: leaf}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range a.cg.nodeList {
			if exempt != nil && exempt(n) {
				continue
			}
			cur := tm[n.Fn]
			if cur != nil && cur.depth == 0 {
				continue
			}
			best := -1
			for _, cs := range n.Calls {
				ct := tm[cs.Callee]
				if ct == nil || a.suppressed(check, cs.Pos) {
					continue
				}
				if best < 0 || ct.depth+1 < best {
					best = ct.depth + 1
				}
			}
			if best > 0 && (cur == nil || best < cur.depth) {
				tm[n.Fn] = &taintInfo{depth: best}
				changed = true
			}
		}
	}
	// Witnesses: the smallest-position call site into depth-1.
	for _, n := range a.cg.nodeList {
		t := tm[n.Fn]
		if t == nil || t.depth == 0 {
			continue
		}
		for _, cs := range n.Calls {
			ct := tm[cs.Callee]
			if ct == nil || ct.depth != t.depth-1 || a.suppressed(check, cs.Pos) {
				continue
			}
			if t.via == nil || cs.Pos < t.pos {
				t.via, t.pos = cs.Callee, cs.Pos
			}
		}
	}
	return tm
}

// taintPath renders the witness chain from fn down to the leaf primitive.
func (a *analysis) taintPath(tm taintMap, fn *types.Func) string {
	parts := []string{a.cg.shortFunc(fn)}
	for t := tm[fn]; ; {
		if t.via == nil {
			parts = append(parts, t.leaf)
			break
		}
		parts = append(parts, a.cg.shortFunc(t.via))
		t = tm[t.via]
	}
	return strings.Join(parts, " → ")
}

// directExts builds a direct-source detector over external calls: the first
// unsuppressed call matching sources (qualified name → leaf label) taints.
func (a *analysis) directExts(check string, sources map[string]string) func(*FuncNode) (token.Pos, string, bool) {
	return func(n *FuncNode) (token.Pos, string, bool) {
		for _, ext := range n.Exts {
			leaf, ok := sources[ext.Name]
			if !ok || a.suppressed(check, ext.Pos) {
				continue
			}
			return ext.Pos, leaf, true
		}
		return token.NoPos, "", false
	}
}

// checkTransitiveTaints runs the three re-grounded invariants over the call
// graph and reports transitive findings with full call paths.
func (a *analysis) checkTransitiveTaints() {
	if a.enabled("wallclock") {
		tm := a.computeTaint("wallclock",
			a.directExts("wallclock", map[string]string{
				"time.Now": "time.Now", "time.Since": "time.Since",
			}),
			func(n *FuncNode) bool { return clockExempt[pkgElem(n.Pkg)] })
		a.reportTaint("wallclock", tm,
			func(n *FuncNode) bool { return !clockExempt[pkgElem(n.Pkg)] },
			"reaches the wall clock through module-internal calls",
			"route the timing through the gated clock (obs.Now/obs.Since)")
	}
	if a.enabled("globalrand") {
		sources := map[string]string{}
		for fn := range globalRandFuncs {
			sources["math/rand."+fn] = "rand." + fn
		}
		tm := a.computeTaint("globalrand", a.directExts("globalrand", sources), nil)
		a.reportTaint("globalrand", tm,
			func(n *FuncNode) bool { return true },
			"reaches the shared global math/rand source through module-internal calls",
			"thread a seeded *rand.Rand instead")
	}
	if a.enabled("maprange") {
		direct := func(n *FuncNode) (token.Pos, string, bool) {
			for _, pos := range n.MapRanges {
				if a.suppressed("maprange", pos) {
					continue
				}
				return pos, "range over map", true
			}
			return token.NoPos, "", false
		}
		tm := a.computeTaint("maprange", direct,
			func(n *FuncNode) bool { return orderExempt[pkgElem(n.Pkg)] })
		a.reportTaint("maprange", tm,
			func(n *FuncNode) bool { return resultAffecting[pkgElem(n.Pkg)] },
			"iterates a map in nondeterministic order through module-internal calls",
			"collect and sort the keys at the source")
	}
}

// reportTaint emits one finding per transitively tainted reportable
// function, at its witness call site, carrying the full call path.
func (a *analysis) reportTaint(check string, tm taintMap, reportable func(*FuncNode) bool, what, remedy string) {
	for _, n := range a.cg.nodeList {
		t := tm[n.Fn]
		if t == nil || t.via == nil || !reportable(n) {
			continue
		}
		a.report(check, t.pos, fmt.Sprintf(
			"%s %s: %s; %s (or annotate: //rabid:allow %s <reason>)",
			a.cg.shortFunc(n.Fn), what, a.taintPath(tm, n.Fn), remedy, check))
	}
}
