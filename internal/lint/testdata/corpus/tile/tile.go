// Package tile is a miniature of the real tile graph: specpure discovers
// its mutating methods by receiver-mutation analysis, not by name.
package tile

// Graph is a minimal mutable graph.
type Graph struct {
	use  []int
	wire int
}

// AddWire mutates the receiver directly (element write) and through a
// receiver method call (bump) — either alone marks it mutating.
func (g *Graph) AddWire(e int) {
	g.use[e]++
	g.bump()
}

// bump mutates through a plain field write: the fixpoint also marks every
// method that calls it on the receiver.
func (g *Graph) bump() {
	g.wire++
}

// Usage is read-only: reachable from speculation without findings.
func (g *Graph) Usage(e int) int {
	return g.use[e]
}
