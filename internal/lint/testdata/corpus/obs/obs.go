// Package obs mirrors the real internal/obs: the one package allowed to
// read the wall clock, because it owns the gated clock everyone else uses.
package obs

import "time"

// Now is the gate; the raw read inside the obs package is exempt.
func Now(tapped bool) time.Time {
	if !tapped {
		return time.Time{}
	}
	return time.Now()
}
