// Package geomlib mimics a helper library outside the result-affecting
// set: its raw map range is not a direct finding, but it is a maprange
// taint source, so result-affecting callers are reported transitively.
package geomlib

// SumValues folds a map in hash order. No direct finding here — geomlib is
// not result-affecting — but any route/core caller inherits the taint.
func SumValues(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
