// Package errs exercises the errdrop check.
package errs

import "fmt"

func fail() error { return fmt.Errorf("errs: boom") }

func compute() (int, error) { return 0, nil }

// BadDrop discards the module's own error result on the statement line.
func BadDrop() {
	fail() // want:errdrop
}

// BadDropMulti discards an (int, error) pair the same way.
func BadDropMulti() {
	compute() // want:errdrop
}
