package errs

import "fmt"

// GoodHandled propagates the error.
func GoodHandled() error {
	if err := fail(); err != nil {
		return err
	}
	return nil
}

// GoodExplicitDiscard makes the drop visible in the source.
func GoodExplicitDiscard() {
	_ = fail()
}

// GoodStdlibDrop drops a standard-library error, which is outside this
// check's scope (fmt.Println's error is conventionally ignored).
func GoodStdlibDrop() {
	fmt.Println("hello")
}

// GoodNoError calls a function with no error result.
func GoodNoError() {
	noErr()
}

func noErr() {}

// GoodAnnotated documents an intentional drop.
func GoodAnnotated() {
	//rabid:allow errdrop best-effort cleanup: failure here must not mask the primary error
	fail()
}
