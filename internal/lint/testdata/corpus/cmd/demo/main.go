// Command demo: main packages own the process root context, so
// originating one here is not a finding.
package main

import "context"

func main() {
	_ = run(context.Background())
}

func run(ctx context.Context) error {
	return ctx.Err()
}
