// Package ctxlib exercises the three ctxflow rules.
package ctxlib

import "context"

// UsesParam passes its ctx through: clean.
func UsesParam(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	return ctx.Err()
}

// SwapsCtx takes a ctx but hands a fresh root to its callee: rule 1.
func SwapsCtx(ctx context.Context) error {
	return work(context.Background()) // want:ctxflow
}

// freshRoot originates a root context in a library package: rule 2.
func freshRoot() context.Context {
	return context.Background() // want:ctxflow
}

// blessedRoot is the annotated wrapper rule 2 permits: kept for
// context-free callers.
func blessedRoot() context.Context {
	return context.Background() //rabid:allow ctxflow corpus: wrapper kept for context-free callers
}

// DropsCtx holds a ctx but routes around it through the blessed wrapper:
// rule 3 sees through the wrapper's annotation on purpose.
func DropsCtx(ctx context.Context) error {
	return work(blessedRoot()) // want:ctxflow
}
