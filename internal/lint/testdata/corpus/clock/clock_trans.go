package clock

import "time"

// hiddenNow wraps the clock read: the leaf line is the direct finding.
func hiddenNow() time.Time {
	return time.Now() // want:wallclock
}

// Hidden reaches the clock one call deep: reported transitively, with the
// full call path in the message.
func Hidden() time.Time {
	return hiddenNow() // want:wallclock
}

// Blessed suppresses at the call site: the annotation stops propagation,
// so this caller stays clean.
func Blessed() time.Time {
	return hiddenNow() //rabid:allow wallclock corpus: caller tolerates wall time, documented here
}
