package clock

import "time"

// GoodAnnotated documents a legitimate raw read (e.g. stamping a report
// that never feeds back into results).
func GoodAnnotated() time.Time {
	//rabid:allow wallclock report timestamp only; never feeds results
	return time.Now()
}

// GoodOtherTimeUse uses the time package without touching the clock.
func GoodOtherTimeUse(d time.Duration) string { return d.String() }
