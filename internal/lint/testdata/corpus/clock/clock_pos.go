// Package clock is outside the obs exemption, so raw clock reads are
// violations.
package clock

import "time"

// BadTiming reads the wall clock directly.
func BadTiming() time.Duration {
	t0 := time.Now() // want:wallclock
	work()
	return time.Since(t0) // want:wallclock
}

func work() {}
