package narrow

import (
	"fmt"
	"math"
)

// GoodGuarded bounds the value before converting — the PR 1 remedy.
func GoodGuarded(x int) (int32, error) {
	if x > math.MaxInt32 {
		return 0, fmt.Errorf("narrow: %d exceeds int32", x)
	}
	return int32(x), nil
}

// GoodConstant converts a constant, which the compiler range-checks.
func GoodConstant() int32 {
	return int32(1 << 20)
}

// GoodWidening widens, which cannot lose bits.
func GoodWidening(x int32) int64 {
	return int64(x)
}

// GoodAnnotated documents a safe truncation the analyzer cannot prove.
func GoodAnnotated(x int) int16 {
	//rabid:allow narrowcast caller contract: x is a tile coordinate < 1024
	return int16(x)
}
