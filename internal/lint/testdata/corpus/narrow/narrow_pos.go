// Package narrow exercises the narrowcast check.
package narrow

// BadNarrow truncates an int (64-bit) into an int32 with no visible
// bound anywhere in the function.
func BadNarrow(labels []int32, x int) []int32 {
	return append(labels, int32(x)) // want:narrowcast
}

// BadNarrow16 is the same class one size down.
func BadNarrow16(x int32) int16 {
	return int16(x) // want:narrowcast
}
