module corpus

go 1.22
