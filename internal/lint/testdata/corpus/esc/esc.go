// Package esc is the escape-gate corpus: TestEscapeGate points a
// temporary hot-set manifest at these functions and asserts the compiler
// diagnostics map onto findings correctly. The "escwant" marker tags the
// line the seeded escape must be reported on (a distinct marker from
// "want:" so TestCorpusFindings, which only runs the static checks,
// ignores it).
package esc

// Leak returns a fresh slice: the heap escape the gate must flag.
func Leak(n int) []int {
	return make([]int, n) // escwant
}

// Sum is allocation-free: in the hot set, no finding.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Baselined allocates deliberately, with the annotation the gate honors.
func Baselined(n int) []int {
	return make([]int, n) //rabid:allow allocfree corpus: deliberate allocation, baselined for the gate test
}
