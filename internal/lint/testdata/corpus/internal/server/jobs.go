// Package server mimics the job-runner exemption: this file matches the
// internal/server/jobs.go path ctxflow exempts, so originating a root
// context here is the documented design (jobs outlive the submitting
// request), not a finding.
package server

import "context"

// Detach launches work that outlives the submitting request.
func Detach() context.Context {
	return context.Background()
}
