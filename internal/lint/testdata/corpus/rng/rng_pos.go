// Package rng exercises the globalrand check.
package rng

import "math/rand"

// BadGlobal draws from the shared global source: order-dependent across
// the whole process, so runs are not reproducible.
func BadGlobal(n int) int {
	return rand.Intn(n) // want:globalrand
}

// BadShuffle mutates through the global source too.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want:globalrand
}
