package rng

import "math/rand"

// hiddenDraw wraps the global source: the leaf line is the direct finding.
func hiddenDraw() int {
	return rand.Intn(6) // want:globalrand
}

// HiddenDraw reaches the global source one call deep: reported
// transitively with the full call path.
func HiddenDraw() int {
	return hiddenDraw() // want:globalrand
}
