package rng

import "math/rand"

// GoodSeeded threads an explicit seeded source: reproducible.
func GoodSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// GoodThreaded takes the generator from the caller.
func GoodThreaded(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
