package floats

import "math"

// GoodZeroSentinel tests the conventional unset sentinel: exact in
// IEEE-754.
func GoodZeroSentinel(x float64) bool {
	return x != 0
}

// GoodInfSentinel compares against the pipeline's +Inf sentinel: exact.
func GoodInfSentinel(x float64) bool {
	return x == math.Inf(1)
}

// GoodEpsilon is the recommended helper shape.
func GoodEpsilon(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// GoodIntCompare is not a float comparison at all.
func GoodIntCompare(a, b int) bool {
	return a == b
}

// GoodAnnotated documents a site where exact equality is the point.
func GoodAnnotated(a, b float64) bool {
	//rabid:allow floateq bit-identity check: the two values come from the same computation
	return a == b
}
