// Package floats exercises the floateq check.
package floats

// BadEqual compares accumulated floats exactly.
func BadEqual(a, b float64) bool {
	return a == b // want:floateq
}

// BadNotEqual is the != spelling.
func BadNotEqual(a, b float32) bool {
	return a != b // want:floateq
}

// BadAgainstConstant compares against a non-representable constant.
func BadAgainstConstant(x float64) bool {
	return x == 0.1 // want:floateq
}
