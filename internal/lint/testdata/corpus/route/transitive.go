package route

import "corpus/geomlib"

// UsesHelper launders a map iteration through a helper package: the
// intraprocedural check cannot see it, the call-graph taint can.
func UsesHelper(m map[int]float64) float64 {
	return geomlib.SumValues(m) // want:maprange
}

// UsesHelperBlessed suppresses at the call site: the annotation documents
// why hash order is safe from here, and the taint stops.
func UsesHelperBlessed(m map[int]float64) float64 {
	return geomlib.SumValues(m) //rabid:allow maprange corpus: result is order-independent (pure sum)
}
