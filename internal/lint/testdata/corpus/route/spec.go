package route

import "corpus/tile"

// Workspace mirrors the real workspace's speculation-arming field: the
// assignment of true into spec.active below is what makes armSpec a
// specpure seed — no function name is hardcoded anywhere.
type Workspace struct {
	spec struct {
		active bool
	}
}

// armSpec arms speculation and fans out: everything it reaches must be
// read-only on the shared graph.
func armSpec(ws *Workspace, g *tile.Graph) {
	ws.spec.active = true
	specHelper(g)
	specReader(g)
}

// specHelper mutates the shared graph from the speculation phase: the
// finding lands on the mutator call with the full path from the seed.
func specHelper(g *tile.Graph) {
	g.AddWire(0) // want:specpure
}

// specReader only reads: reachable, clean.
func specReader(g *tile.Graph) {
	_ = g.Usage(0)
}
