// Package route has a result-affecting name, so maprange applies.
package route

// BadIterate folds map values in iteration order: nondeterministic.
func BadIterate(m map[int]float64) float64 {
	total := 0.0
	prev := 0.0
	for _, v := range m { // want:maprange
		total += v * prev
		prev = v
	}
	return total
}

// BadAllowNoReason carries an annotation with no reason: the annotation is
// reported and the range stays reported too.
func BadAllowNoReason(m map[int]bool) int {
	n := 0
	//rabid:allow maprange
	for k := range m { // want:maprange
		n += k
	}
	return n
}

// want-allow: the bare annotation above is itself a finding (see
// TestCorpus, which expects check "allow" at the annotation line).
