package route

import "sort"

// GoodSortedKeys collects then sorts before any result-affecting use —
// the one idiom the check recognizes without an annotation.
func GoodSortedKeys(m map[int]float64) float64 {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// GoodAnnotated documents why this particular iteration is safe.
func GoodAnnotated(m map[int]int) int {
	n := 0
	//rabid:allow maprange commutative sum: iteration order cannot reach the result
	for _, v := range m {
		n += v
	}
	return n
}

// GoodSliceRange ranges over a slice, which is ordered.
func GoodSliceRange(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
