package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// findingsText renders findings exactly as the CLI does, for byte-identity
// comparisons.
func findingsText(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// corpusFinding locates the unique finding of one check on one line of the
// corpus run.
func corpusFinding(t *testing.T, fs []Finding, file, check string, substr string) Finding {
	t.Helper()
	for _, f := range fs {
		if f.File == file && f.Check == check && strings.Contains(f.Message, substr) {
			return f
		}
	}
	t.Fatalf("no %s finding in %s with message containing %q", check, file, substr)
	return Finding{}
}

// TestCorpusCallPaths asserts the interprocedural findings carry the full
// witness chain down to the leaf primitive — the property that makes a
// transitive finding actionable.
func TestCorpusCallPaths(t *testing.T) {
	mod, err := corpusMod()
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(mod, nil)
	for _, tc := range []struct {
		file, check, path string
	}{
		{"clock/clock_trans.go", "wallclock", "clock.Hidden → clock.hiddenNow → time.Now"},
		{"rng/rng_trans.go", "globalrand", "rng.HiddenDraw → rng.hiddenDraw → rand.Intn"},
		{"route/transitive.go", "maprange", "route.UsesHelper → geomlib.SumValues → range over map"},
		{"ctxlib/ctxlib.go", "ctxflow", "ctxlib.DropsCtx → ctxlib.blessedRoot → context.Background"},
		{"route/spec.go", "specpure", "route.armSpec → route.specHelper → (*tile.Graph).AddWire"},
	} {
		corpusFinding(t, fs, tc.file, tc.check, tc.path)
	}
	// The specpure message also names the mutation witness inside the
	// mutator, so the reader sees both ends of the violation.
	f := corpusFinding(t, fs, "route/spec.go", "specpure", "(*tile.Graph).AddWire")
	if !strings.Contains(f.Message, "tile/tile.go:") {
		t.Errorf("specpure finding does not cite the mutation witness: %q", f.Message)
	}
}

// TestCheckSelection locks RunChecks' -only semantics: a narrowed run
// reports only the selected checks, but malformed //rabid:allow annotations
// always surface.
func TestCheckSelection(t *testing.T) {
	mod, err := corpusMod()
	if err != nil {
		t.Fatal(err)
	}
	fs := RunChecks(mod, nil, map[string]bool{"ctxflow": true})
	var sawCtx, sawAllow bool
	for _, f := range fs {
		switch f.Check {
		case "ctxflow":
			sawCtx = true
		case "allow":
			sawAllow = true
		default:
			t.Errorf("check %q reported under -only ctxflow: %s", f.Check, f)
		}
	}
	if !sawCtx {
		t.Error("-only ctxflow reported no ctxflow findings")
	}
	if !sawAllow {
		t.Error("-only ctxflow dropped the malformed-annotation findings")
	}
}

// TestLoadWorkersDeterministic is the parallel-parse acceptance criterion:
// the rendered findings are byte-identical at every worker count.
func TestLoadWorkersDeterministic(t *testing.T) {
	var want string
	for i, workers := range []int{1, 2, 3, 8} {
		mod, err := LoadWorkers("testdata/corpus", nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := findingsText(Run(mod, nil))
		if i == 0 {
			want = got
			if want == "" {
				t.Fatal("corpus produced no findings; determinism check is vacuous")
			}
			continue
		}
		if got != want {
			t.Errorf("findings differ between workers=1 and workers=%d:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}

// escWantLine locates the "// escwant" marker in the escape corpus.
func escWantLine(t *testing.T) int {
	t.Helper()
	b, err := os.ReadFile("testdata/corpus/esc/esc.go")
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(b), "\n") {
		if strings.Contains(line, "// escwant") {
			return i + 1
		}
	}
	t.Fatal("escape corpus lost its escwant marker")
	return 0
}

// TestEscapeGateCorpus drives the compiler-backed gate over the corpus
// module with a temporary hot-set manifest: the seeded escape is reported
// at its exact line, the allocation-free function and the baselined
// allocation are not.
func TestEscapeGateCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	mod, err := corpusMod()
	if err != nil {
		t.Fatal(err)
	}
	hotset := filepath.Join(t.TempDir(), "hotset.txt")
	if err := os.WriteFile(hotset, []byte("# corpus gate\nesc.Leak\nesc.Sum\nesc.Baselined\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := EscapeGate(mod, hotset)
	if err != nil {
		t.Fatal(err)
	}
	wantLine := escWantLine(t)
	if len(fs) != 1 {
		t.Fatalf("want exactly the seeded escape, got %d findings:\n%s", len(fs), findingsText(fs))
	}
	f := fs[0]
	if f.Check != "allocfree" || f.File != "esc/esc.go" || f.Line != wantLine {
		t.Errorf("seeded escape reported at %s:%d [%s], want esc/esc.go:%d [allocfree]", f.File, f.Line, f.Check, wantLine)
	}
	if !strings.Contains(f.Message, "esc.Leak") {
		t.Errorf("finding does not name the hot-set function: %q", f.Message)
	}
}

// TestEscapeGateStaleSymbol locks the manifest-rot failure mode: a symbol
// that no longer resolves is a hard error naming it, not a silent skip.
func TestEscapeGateStaleSymbol(t *testing.T) {
	mod, err := corpusMod()
	if err != nil {
		t.Fatal(err)
	}
	hotset := filepath.Join(t.TempDir(), "hotset.txt")
	if err := os.WriteFile(hotset, []byte("esc.Leak\nesc.Renamed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := EscapeGate(mod, hotset); err == nil || !strings.Contains(err.Error(), "esc.Renamed") {
		t.Errorf("stale hot-set symbol not reported, err = %v", err)
	}
}

// TestEscapeGateSelfClean is the shipped-tree half of the allocfree
// acceptance criterion: the real hot set produces zero unbaselined escape
// diagnostics. The same invariant CI enforces with `rabidlint -escape`.
func TestEscapeGateSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole module")
	}
	mod, err := Load(repoRoot(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := EscapeGate(mod, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("hot set not allocation-clean: %s", f)
	}
}

// TestSeededInterprocedural seeds one violation of each interprocedural
// class into the PR 7 packages via the overlay and asserts the exact
// file:line:check plus the full call path in the message — the acceptance
// criterion that a wrapper-hidden regression fails CI with an actionable
// trace.
func TestSeededInterprocedural(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	journalSeed := `package journal

import "time"

func zzHidden() time.Time {
	return time.Now() // line 6: wallclock (direct, at the leaf)
}

func zzWhen() time.Time {
	return zzHidden() // line 10: wallclock (transitive, with path)
}
`
	serverSeed := `package server

import (
	"context"

	"repro/internal/core"
	"repro/internal/netlist"
)

func zzHandle(ctx context.Context, c *netlist.Circuit) {
	_, _ = core.Run(c, core.Params{}) // line 11: ctxflow (drops ctx into core.Run)
}
`
	routeSeed := `package route

import "repro/internal/tile"

func zzArm(g *tile.Graph, ws *Workspace) {
	ws.spec.active = true
	zzSpecHelper(g)
}

func zzSpecHelper(g *tile.Graph) {
	g.AddWire(0) // line 11: specpure (mutation reachable from speculation)
}
`
	mod, err := Load(repoRoot(t), map[string][]byte{
		"internal/journal/zz_seeded.go": []byte(journalSeed),
		"internal/server/zz_seeded.go":  []byte(serverSeed),
		"internal/route/zz_spec.go":     []byte(routeSeed),
	})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(mod, nil)
	seededFiles := map[string]bool{
		"internal/journal/zz_seeded.go": true,
		"internal/server/zz_seeded.go":  true,
		"internal/route/zz_spec.go":     true,
	}
	type want struct {
		file, check, path string
		line              int
	}
	wants := []want{
		{"internal/journal/zz_seeded.go", "wallclock", "", 6},
		{"internal/journal/zz_seeded.go", "wallclock", "journal.zzWhen → journal.zzHidden → time.Now", 10},
		{"internal/server/zz_seeded.go", "ctxflow", "server.zzHandle → core.Run → context.Background", 11},
		{"internal/route/zz_spec.go", "specpure", "route.zzArm → route.zzSpecHelper → (*tile.Graph).AddWire", 11},
	}
	matched := map[int]bool{}
	for _, f := range findings {
		if !seededFiles[f.File] {
			if strings.HasPrefix(f.File, "internal/") {
				t.Errorf("seeding leaked a finding into the real tree: %s", f)
			}
			continue
		}
		hit := false
		for i, w := range wants {
			if f.File == w.file && f.Check == w.check && f.Line == w.line && strings.Contains(f.Message, w.path) {
				matched[i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding in seeded file: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("seeded violation not detected: %s:%d [%s] path %q", w.file, w.line, w.check, w.path)
		}
	}
}
