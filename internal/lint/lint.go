// Package lint is rabidlint: a stdlib-only static-analysis suite that
// machine-checks the determinism and numeric-safety invariants this
// repository's results depend on. The pipeline's headline guarantees —
// bit-identical results for every Params.Workers value and byte-identical
// observer event streams — are properties of the source, not just of the
// tests: one unsorted map range in a result-affecting loop, one ungated
// wall-clock read, or one unchecked integer narrowing silently breaks
// reproducibility of the paper's tables. rabidlint walks every package of
// the module over go/parser + go/types and reports violations of six
// invariant classes (see checks.go); CI runs it on every PR.
//
// Sites that are provably safe for a reason the analyzer cannot see carry
// an annotation:
//
//	//rabid:allow <check> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — an annotation without one is itself reported (check "allow")
// and suppresses nothing, so every suppression documents its argument.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	// Check is the check ID ("maprange", "wallclock", "globalrand",
	// "floateq", "narrowcast", "errdrop", or "allow" for a malformed
	// annotation).
	Check string `json:"check"`
	// File is the offending file, relative to the module root.
	File string `json:"file"`
	// Line and Col are 1-based source coordinates.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the violation and the accepted remedies.
	Message string `json:"message"`
}

// Pos renders the finding's position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

func (f Finding) String() string { return fmt.Sprintf("%s: [%s] %s", f.Pos(), f.Check, f.Message) }

// Checks lists every check ID in the suite, in report order.
func Checks() []string {
	return []string{"maprange", "wallclock", "globalrand", "floateq", "narrowcast", "errdrop"}
}

// resultAffecting names the packages (by final import-path element) whose
// iteration order reaches results: the maprange check applies only here.
// The telemetry and rendering layers may range freely — their maps feed
// aggregates or sorted output, not routing decisions.
var resultAffecting = map[string]bool{
	"core": true, "route": true, "bufferdp": true, "vanginneken": true,
	"mcf": true, "steiner": true, "spanning": true, "flow": true,
	"siteplan": true,
}

// clockExempt lists the final import-path elements of the packages allowed
// to read the wall clock. internal/obs owns the gated clock (obs.Now /
// obs.Since) that every instrumented site must go through; internal/server
// measures real request latency and deadline headroom at the service
// boundary, where wall time is the quantity being reported, not a
// determinism hazard (responses never embed it).
var clockExempt = map[string]bool{"obs": true, "server": true}

// Run lints the loaded module and returns all findings sorted by position.
// only restricts reporting to packages whose import path is in the set
// (nil/empty = all); the whole module is always loaded, since type
// information needs every dependency anyway.
func Run(mod *Module, only map[string]bool) []Finding {
	var fs []Finding
	for _, pkg := range mod.Pkgs {
		if len(only) > 0 && !only[pkg.ImportPath] {
			continue
		}
		fs = append(fs, lintPackage(mod, pkg)...)
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Check < fs[j].Check
	})
	return fs
}

// lintPackage runs every check over one package and filters the findings
// through its //rabid:allow annotations.
func lintPackage(mod *Module, pkg *Package) []Finding {
	allows, fs := collectAllows(mod, pkg)
	p := &pass{mod: mod, pkg: pkg}
	p.report = func(check string, pos token.Pos, msg string) {
		position := mod.Fset.Position(pos)
		file := mod.relFile(position.Filename)
		if allows.suppressed(check, file, position.Line) {
			return
		}
		p.findings = append(p.findings, Finding{
			Check: check, File: file, Line: position.Line, Col: position.Column, Message: msg,
		})
	}
	checkMapRange(p)
	checkWallClock(p)
	checkGlobalRand(p)
	checkFloatEq(p)
	checkNarrowCast(p)
	checkErrDrop(p)
	return append(fs, p.findings...)
}

// pass carries one package's state through the checks.
type pass struct {
	mod      *Module
	pkg      *Package
	report   func(check string, pos token.Pos, msg string)
	findings []Finding
}

// pathElem returns the final element of the package's import path.
func (p *pass) pathElem() string {
	ip := p.pkg.ImportPath
	if i := strings.LastIndexByte(ip, '/'); i >= 0 {
		return ip[i+1:]
	}
	return ip
}

// allowSet indexes //rabid:allow annotations by (check, file, line). An
// annotation covers its own line and the line below it, so it can sit as a
// trailing comment or on its own line above the site.
type allowSet map[string]bool

func (a allowSet) key(check, file string, line int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", check, file, line)
}

func (a allowSet) suppressed(check, file string, line int) bool {
	return a[a.key(check, file, line)] || a[a.key(check, file, line-1)]
}

const allowPrefix = "//rabid:allow"

// collectAllows parses the package's annotations. Malformed annotations —
// no check named, a check outside the catalog, or a missing reason — are
// returned as findings with check ID "allow" and suppress nothing.
func collectAllows(mod *Module, pkg *Package) (allowSet, []Finding) {
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c] = true
	}
	allows := allowSet{}
	var fs []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				position := mod.Fset.Position(c.Pos())
				file := mod.relFile(position.Filename)
				bad := func(msg string) {
					fs = append(fs, Finding{
						Check: "allow", File: file, Line: position.Line,
						Col: position.Column, Message: msg,
					})
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //rabid:allowfoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad("annotation names no check: want //rabid:allow <check> <reason>")
					continue
				}
				if !known[fields[0]] {
					bad(fmt.Sprintf("annotation names unknown check %q (catalog: %s)",
						fields[0], strings.Join(Checks(), ", ")))
					continue
				}
				if len(fields) < 2 {
					bad(fmt.Sprintf("annotation for %q has no reason: suppression requires a justification", fields[0]))
					continue
				}
				allows[allows.key(fields[0], file, position.Line)] = true
			}
		}
	}
	return allows, fs
}
