// Package lint is rabidlint: a stdlib-only static-analysis suite that
// machine-checks the determinism and numeric-safety invariants this
// repository's results depend on. The pipeline's headline guarantees —
// bit-identical results for every Params.Workers value and byte-identical
// observer event streams — are properties of the source, not just of the
// tests: one unsorted map range in a result-affecting loop, one ungated
// wall-clock read, or one unchecked integer narrowing silently breaks
// reproducibility of the paper's tables. rabidlint walks every package of
// the module over go/parser + go/types and reports violations of six
// invariant classes (see checks.go); CI runs it on every PR.
//
// Sites that are provably safe for a reason the analyzer cannot see carry
// an annotation:
//
//	//rabid:allow <check> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — an annotation without one is itself reported (check "allow")
// and suppresses nothing, so every suppression documents its argument.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	// Check is the check ID ("maprange", "wallclock", "globalrand",
	// "floateq", "narrowcast", "errdrop", or "allow" for a malformed
	// annotation).
	Check string `json:"check"`
	// File is the offending file, relative to the module root.
	File string `json:"file"`
	// Line and Col are 1-based source coordinates.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the violation and the accepted remedies.
	Message string `json:"message"`
}

// Pos renders the finding's position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

func (f Finding) String() string { return fmt.Sprintf("%s: [%s] %s", f.Pos(), f.Check, f.Message) }

// Checks lists every check ID in the suite, in report order. The first six
// are the intraprocedural PR 3 checks; specpure, ctxflow, and allocfree are
// the interprocedural layer (allocfree findings are produced only by the
// compiler-backed escape gate, EscapeGate / `rabidlint -escape`).
func Checks() []string {
	return []string{
		"maprange", "wallclock", "globalrand", "floateq", "narrowcast", "errdrop",
		"specpure", "ctxflow", "allocfree",
	}
}

// resultAffecting names the packages (by final import-path element) whose
// iteration order reaches results: the maprange check applies only here.
// The telemetry and rendering layers may range freely — their maps feed
// aggregates or sorted output, not routing decisions.
var resultAffecting = map[string]bool{
	"core": true, "route": true, "bufferdp": true, "vanginneken": true,
	"mcf": true, "steiner": true, "spanning": true, "flow": true,
	"siteplan": true,
}

// clockExempt lists the final import-path elements of the packages allowed
// to read the wall clock. internal/obs owns the gated clock (obs.Now /
// obs.Since) that every instrumented site must go through; internal/server
// measures real request latency and deadline headroom at the service
// boundary, where wall time is the quantity being reported, not a
// determinism hazard (responses never embed it).
var clockExempt = map[string]bool{"obs": true, "server": true}

// Run lints the loaded module and returns all findings sorted by position.
// only restricts reporting to packages whose import path is in the set
// (nil/empty = all); the whole module is always loaded, since type
// information needs every dependency anyway.
func Run(mod *Module, only map[string]bool) []Finding {
	return RunChecks(mod, only, nil)
}

// RunChecks is Run with check selection: onlyChecks (nil/empty = all)
// restricts which checks run, validated IDs only (cmd/rabidlint rejects
// unknown names before calling in). Malformed //rabid:allow annotations are
// reported regardless of the selection — a broken suppression must never
// ride a narrowed run into CI green. The allocfree check is not run here
// (it needs the compiler; see EscapeGate).
func RunChecks(mod *Module, onlyPkgs, onlyChecks map[string]bool) []Finding {
	a := newAnalysis(mod, onlyPkgs, onlyChecks)
	for _, pkg := range mod.Pkgs {
		a.lintPackage(pkg)
	}
	a.checkTransitiveTaints()
	if a.enabled("specpure") {
		a.checkSpecPure()
	}
	if a.enabled("ctxflow") {
		a.checkCtxFlow()
	}
	return sortFindings(a.findings)
}

// SortFindings orders findings by position then check ID — the order every
// rabidlint surface (text, -json, -sarif) emits. cmd/rabidlint uses it to
// merge the escape gate's findings into the static run's.
func SortFindings(fs []Finding) []Finding { return sortFindings(fs) }

// sortFindings orders findings by position then check ID.
func sortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Check < fs[j].Check
	})
	return fs
}

// analysis carries the module-wide state of one Run: the call graph, every
// package's //rabid:allow annotations, and the accumulated findings. The
// interprocedural checks need allows and the file→package mapping across
// package boundaries, which the old per-package pass could not see.
type analysis struct {
	mod        *Module
	cg         *CallGraph
	allows     allowSet
	pkgByFile  map[string]*Package
	onlyPkgs   map[string]bool
	onlyChecks map[string]bool
	findings   []Finding
}

func newAnalysis(mod *Module, onlyPkgs, onlyChecks map[string]bool) *analysis {
	a := &analysis{
		mod: mod, allows: allowSet{}, pkgByFile: map[string]*Package{},
		onlyPkgs: onlyPkgs, onlyChecks: onlyChecks,
	}
	for _, pkg := range mod.Pkgs {
		allows, fs := collectAllows(mod, pkg)
		for k := range allows {
			a.allows[k] = true
		}
		if a.pkgSelected(pkg) {
			a.findings = append(a.findings, fs...)
		}
		for _, f := range pkg.Files {
			a.pkgByFile[mod.relFile(mod.Fset.Position(f.Pos()).Filename)] = pkg
		}
	}
	a.cg = BuildCallGraph(mod)
	return a
}

func (a *analysis) enabled(check string) bool {
	return len(a.onlyChecks) == 0 || a.onlyChecks[check]
}

func (a *analysis) pkgSelected(pkg *Package) bool {
	return len(a.onlyPkgs) == 0 || a.onlyPkgs[pkg.ImportPath]
}

// suppressed reports whether a //rabid:allow covers pos for check.
func (a *analysis) suppressed(check string, pos token.Pos) bool {
	p := a.mod.Fset.Position(pos)
	return a.allows.suppressed(check, a.mod.relFile(p.Filename), p.Line)
}

// report files one finding unless an annotation suppresses it or its
// package is outside the selection.
func (a *analysis) report(check string, pos token.Pos, msg string) {
	position := a.mod.Fset.Position(pos)
	file := a.mod.relFile(position.Filename)
	if a.allows.suppressed(check, file, position.Line) {
		return
	}
	if pkg := a.pkgByFile[file]; pkg != nil && !a.pkgSelected(pkg) {
		return
	}
	a.findings = append(a.findings, Finding{
		Check: check, File: file, Line: position.Line, Col: position.Column, Message: msg,
	})
}

// lintPackage runs the intraprocedural checks over one package.
func (a *analysis) lintPackage(pkg *Package) {
	if !a.pkgSelected(pkg) {
		return
	}
	p := &pass{mod: a.mod, pkg: pkg, report: a.report}
	if a.enabled("maprange") {
		checkMapRange(p)
	}
	if a.enabled("wallclock") {
		checkWallClock(p)
	}
	if a.enabled("globalrand") {
		checkGlobalRand(p)
	}
	if a.enabled("floateq") {
		checkFloatEq(p)
	}
	if a.enabled("narrowcast") {
		checkNarrowCast(p)
	}
	if a.enabled("errdrop") {
		checkErrDrop(p)
	}
}

// pass carries one package's state through the intraprocedural checks.
type pass struct {
	mod    *Module
	pkg    *Package
	report func(check string, pos token.Pos, msg string)
}

// pathElem returns the final element of the package's import path.
func (p *pass) pathElem() string { return pkgElem(p.pkg) }

// allowSet indexes //rabid:allow annotations by (check, file, line). An
// annotation covers its own line and the line below it, so it can sit as a
// trailing comment or on its own line above the site.
type allowSet map[string]bool

func (a allowSet) key(check, file string, line int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", check, file, line)
}

func (a allowSet) suppressed(check, file string, line int) bool {
	return a[a.key(check, file, line)] || a[a.key(check, file, line-1)]
}

const allowPrefix = "//rabid:allow"

// collectAllows parses the package's annotations. Malformed annotations —
// no check named, a check outside the catalog, or a missing reason — are
// returned as findings with check ID "allow" and suppress nothing.
func collectAllows(mod *Module, pkg *Package) (allowSet, []Finding) {
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c] = true
	}
	allows := allowSet{}
	var fs []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				position := mod.Fset.Position(c.Pos())
				file := mod.relFile(position.Filename)
				bad := func(msg string) {
					fs = append(fs, Finding{
						Check: "allow", File: file, Line: position.Line,
						Col: position.Column, Message: msg,
					})
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //rabid:allowfoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad("annotation names no check: want //rabid:allow <check> <reason>")
					continue
				}
				if !known[fields[0]] {
					bad(fmt.Sprintf("annotation names unknown check %q (catalog: %s)",
						fields[0], strings.Join(Checks(), ", ")))
					continue
				}
				if len(fields) < 2 {
					bad(fmt.Sprintf("annotation for %q has no reason: suppression requires a justification", fields[0]))
					continue
				}
				allows[allows.key(fields[0], file, position.Line)] = true
			}
		}
	}
	return allows, fs
}
