package lint

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// escape.go is the compiler-backed half of the allocfree check. The PR 5
// workspace kernel's contract — "with a warmed workspace and a nil observer,
// the router's inner loop performs no allocations" — is guarded at runtime
// by testing.AllocsPerRun over a handful of circuits. The escape gate proves
// the same property from the compiler's own escape analysis, for every call
// path: `go build -gcflags=-m` emits one diagnostic per value the compiler
// heap-allocates, and the gate fails if any of them lands inside a hot-set
// function without a //rabid:allow allocfree baseline annotation.
//
// The hot set lives in internal/lint/hotset.txt: one function symbol per
// line, written exactly as the call-path messages render them
// ("route.Reroute", "(*route.Workspace).pushPQ"). Symbols that no longer
// resolve fail the gate loudly — the manifest cannot rot silently.
//
// Two properties of the toolchain make the gate cheap and reliable:
//
//   - `go build` replays compiler diagnostics from the build cache, so a
//     warm-cache run costs milliseconds and still prints every -m line;
//   - escape diagnostics are positioned at the allocation site *after
//     inlining*: an allocation inside a callee that the compiler inlines
//     into a hot function is attributed to the hot function's call-site
//     line. That is exactly the frame the runtime allocation counter would
//     bill, so baselining happens where the cost is paid.
//
// Baseline annotations mark the deliberate allocations: the cold grow path
// (capacity doubling when the graph is larger than any seen before) and
// error-path boxing (fmt.Errorf interface args on paths that abort the
// route). Everything else inside the hot set is a regression.

// hotsetFile is the manifest's module-root-relative path.
const hotsetFile = "internal/lint/hotset.txt"

// ParseHotset reads a hot-set manifest: one symbol per line, '#' starts a
// comment, blank lines ignored.
func ParseHotset(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading hot-set manifest: %w", err)
	}
	var syms []string
	for _, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			syms = append(syms, line)
		}
	}
	return syms, nil
}

// hotRange is the body extent of one hot-set function.
type hotRange struct {
	symbol    string
	file      string // module-root relative
	startLine int
	endLine   int
}

// resolveHotset maps manifest symbols onto function body ranges, failing on
// symbols that no longer name a declared function.
func resolveHotset(mod *Module, cg *CallGraph, symbols []string) ([]hotRange, error) {
	byName := map[string]*FuncNode{}
	cg.ForEachNode(func(n *FuncNode) {
		byName[cg.shortFunc(n.Fn)] = n
	})
	var ranges []hotRange
	var missing []string
	for _, sym := range symbols {
		n, ok := byName[sym]
		if !ok {
			missing = append(missing, sym)
			continue
		}
		start := mod.Fset.Position(n.Decl.Pos())
		end := mod.Fset.Position(n.Decl.End())
		ranges = append(ranges, hotRange{
			symbol:    sym,
			file:      mod.relFile(start.Filename),
			startLine: start.Line,
			endLine:   end.Line,
		})
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("lint: hot-set symbols not found in module (stale %s?): %s",
			hotsetFile, strings.Join(missing, ", "))
	}
	return ranges, nil
}

// escapeDiagnostics runs the compiler over the whole module and returns the
// raw -m output lines. The build cache replays diagnostics, so warm runs are
// cheap; a failing build is a hard error with the compiler output attached.
func escapeDiagnostics(root string) ([]string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m failed: %w\n%s", err, out)
	}
	return strings.Split(string(out), "\n"), nil
}

// escapeDiag is one parsed heap diagnostic.
type escapeDiag struct {
	file string
	line int
	col  int
	msg  string
}

// parseEscapeLine extracts a heap diagnostic from one -m output line
// ("internal/route/route.go:135:10: make([]uint64, n) escapes to heap").
// Non-heap lines (inlining decisions, "does not escape", package headers)
// return ok=false.
func parseEscapeLine(s string) (escapeDiag, bool) {
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "#") {
		return escapeDiag{}, false
	}
	if !strings.HasSuffix(s, "escapes to heap") && !strings.Contains(s, "moved to heap") {
		return escapeDiag{}, false
	}
	// file:line:col: msg — split on the first three colons.
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return escapeDiag{}, false
	}
	line, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return escapeDiag{}, false
	}
	return escapeDiag{
		file: filepath.ToSlash(parts[0]),
		line: line,
		col:  col,
		msg:  strings.TrimSpace(parts[3]),
	}, true
}

// EscapeGate runs the compiler-backed allocfree check: every heap-escape
// diagnostic inside a hot-set function body that is not baselined by a
// //rabid:allow allocfree annotation becomes a finding. The hot set is read
// from hotsetPath ("" = internal/lint/hotset.txt under the module root).
func EscapeGate(mod *Module, hotsetPath string) ([]Finding, error) {
	if hotsetPath == "" {
		hotsetPath = filepath.Join(mod.Root, filepath.FromSlash(hotsetFile))
	}
	symbols, err := ParseHotset(hotsetPath)
	if err != nil {
		return nil, err
	}
	if len(symbols) == 0 {
		return nil, fmt.Errorf("lint: hot-set manifest %s lists no symbols", hotsetPath)
	}
	cg := BuildCallGraph(mod)
	ranges, err := resolveHotset(mod, cg, symbols)
	if err != nil {
		return nil, err
	}
	allows := allowSet{}
	for _, pkg := range mod.Pkgs {
		as, _ := collectAllows(mod, pkg) // malformed annotations are RunChecks findings
		for k := range as {
			allows[k] = true
		}
	}
	lines, err := escapeDiagnostics(mod.Root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	seen := map[string]bool{} // several makes can share one inlined call-site position
	for _, s := range lines {
		d, ok := parseEscapeLine(s)
		if !ok {
			continue
		}
		var hot *hotRange
		for i := range ranges {
			r := &ranges[i]
			if r.file == d.file && r.startLine <= d.line && d.line <= r.endLine {
				hot = r
				break
			}
		}
		if hot == nil {
			continue
		}
		if allows.suppressed("allocfree", d.file, d.line) {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", d.file, d.line, d.col, d.msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		findings = append(findings, Finding{
			Check: "allocfree", File: d.file, Line: d.line, Col: d.col,
			Message: fmt.Sprintf(
				"hot-set function %s heap-allocates: %s; the router's inner loop must be "+
					"allocation-free with a warmed workspace — hoist the allocation into the "+
					"workspace grow path (or baseline: //rabid:allow allocfree <reason>)",
				hot.symbol, d.msg),
		})
	}
	return sortFindings(findings), nil
}
