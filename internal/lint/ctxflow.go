package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// ctxflow.go pins the PR 4 cancellation plumbing: a request's
// context.Context must flow from the service boundary down through
// core.RunContext's checkpoints without being swapped for a fresh root
// context along the way. Three rules:
//
//  1. A function that takes a context.Context must not originate
//     context.Background() / context.TODO() — whether it passes the fresh
//     root to a callee or uses it itself, its own ctx parameter (or a
//     context derived from it) is what must flow.
//  2. Library packages must not originate fresh root contexts at all.
//     Exempt: main packages (commands and examples own the process root)
//     and the async job-runner in internal/server/jobs.go (jobs
//     deliberately outlive the submitting request, so detaching from its
//     ctx is the documented design). A Background wrapper kept for
//     context-free callers (core.Run over RunContext) carries a
//     //rabid:allow ctxflow annotation with its reason.
//  3. Transitively: a ctx-taking function must not call a context-less
//     module function that reaches a fresh-context origination — that
//     silently drops the caller's ctx one call deep (core.Run from a
//     handler, say). Rule 3 sees through rule-2 //rabid:allow annotations
//     on purpose: the annotation excuses the wrapper's existence for
//     context-free callers, not a ctx-holding caller routing around its
//     own ctx. Suppress at the call site if the detachment is deliberate.

// jobRunnerFile is the one library file allowed to originate contexts.
const jobRunnerFile = "internal/server/jobs.go"

// takesContext reports whether fn has a context.Context parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// inJobRunner reports whether a node's declaration lives in the exempted
// job-runner file.
func (a *analysis) inJobRunner(n *FuncNode) bool {
	file := a.mod.relFile(a.mod.Fset.Position(n.Decl.Pos()).Filename)
	return file == jobRunnerFile || strings.HasSuffix(file, "/"+jobRunnerFile)
}

// checkCtxFlow applies the three rules over the call graph.
func (a *analysis) checkCtxFlow() {
	freshOrigins := map[string]string{
		"context.Background": "context.Background",
		"context.TODO":       "context.TODO",
	}

	// Rules 1 and 2: direct originations.
	for _, n := range a.cg.nodeList {
		if a.inJobRunner(n) {
			continue
		}
		hasCtx := takesContext(n.Fn)
		isMain := n.Pkg.Types.Name() == "main"
		for _, ext := range n.Exts {
			leaf, ok := freshOrigins[ext.Name]
			if !ok {
				continue
			}
			switch {
			case hasCtx:
				a.report("ctxflow", ext.Pos, fmt.Sprintf(
					"%s receives a context.Context but originates %s(); pass the ctx parameter "+
						"(or derive from it) so cancellation flows through "+
						"(or annotate: //rabid:allow ctxflow <reason>)",
					a.cg.shortFunc(n.Fn), leaf))
			case !isMain:
				a.report("ctxflow", ext.Pos, fmt.Sprintf(
					"library function %s originates %s(); accept a ctx from the caller — only "+
						"main packages and the job-runner (%s) may create root contexts "+
						"(or annotate: //rabid:allow ctxflow <reason>)",
					a.cg.shortFunc(n.Fn), leaf, jobRunnerFile))
			}
		}
	}

	// Rule 3: ctx-taking functions must not drop their ctx into a
	// context-less callee that reaches an origination. The taint runs over
	// context-less non-main non-job-runner functions; origination sites
	// taint even when //rabid:allow-ed (see the package comment), so the
	// direct detector bypasses a.suppressed deliberately.
	direct := func(n *FuncNode) (token.Pos, string, bool) {
		for _, ext := range n.Exts {
			if leaf, ok := freshOrigins[ext.Name]; ok {
				return ext.Pos, leaf, true
			}
		}
		return token.NoPos, "", false
	}
	exempt := func(n *FuncNode) bool {
		return takesContext(n.Fn) || n.Pkg.Types.Name() == "main" || a.inJobRunner(n)
	}
	tm := a.computeTaint("ctxflow", direct, exempt)
	for _, n := range a.cg.nodeList {
		if !takesContext(n.Fn) || a.inJobRunner(n) {
			continue
		}
		// Witness: the smallest-position unsuppressed call into the taint.
		var wpos token.Pos
		var wfn *types.Func
		for _, cs := range n.Calls {
			if tm[cs.Callee] == nil || a.suppressed("ctxflow", cs.Pos) {
				continue
			}
			if wfn == nil || cs.Pos < wpos {
				wpos, wfn = cs.Pos, cs.Callee
			}
		}
		if wfn == nil {
			continue
		}
		a.report("ctxflow", wpos, fmt.Sprintf(
			"%s receives a context.Context but calls %s, which reaches a fresh root context: %s; "+
				"use a ctx-aware variant so the caller's cancellation is not dropped "+
				"(or annotate: //rabid:allow ctxflow <reason>)",
			a.cg.shortFunc(n.Fn), a.cg.shortFunc(wfn),
			a.cg.shortFunc(n.Fn)+" → "+a.taintPath(tm, wfn)))
	}
}
