package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// --- shared helpers -------------------------------------------------------

// pkgName resolves an expression to the *types.PkgName it denotes, or nil.
func (p *pass) pkgName(e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.pkg.Info.Uses[id].(*types.PkgName)
	return pn
}

// selOf matches a qualified reference pkgPath.name and returns the selector.
func (p *pass) selOf(e ast.Expr, pkgPath string) (*ast.SelectorExpr, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	pn := p.pkgName(sel.X)
	return sel, pn != nil && pn.Imported().Path() == pkgPath
}

// object resolves an identifier's types.Object through uses or defs.
func (p *pass) object(id *ast.Ident) types.Object {
	if o := p.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.pkg.Info.Defs[id]
}

// eachStmtList visits every statement list of the package (block bodies,
// switch cases, select clauses) — the granularity at which "a later
// statement in the same list" is meaningful.
func (p *pass) eachStmtList(fn func(list []ast.Stmt)) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				fn(n.List)
			case *ast.CaseClause:
				fn(n.Body)
			case *ast.CommClause:
				fn(n.Body)
			}
			return true
		})
	}
}

// --- maprange -------------------------------------------------------------

// checkMapRange flags ranging over a map in result-affecting packages. Map
// iteration order is randomized per run, so any map range whose body feeds
// routing, buffering, or ordering decisions breaks run-to-run determinism.
// The one recognized safe idiom is key collection followed by a sort in
// the same statement list:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)
//
// Anything else needs sorted keys or a //rabid:allow maprange annotation.
func checkMapRange(p *pass) {
	if !resultAffecting[p.pathElem()] {
		return
	}
	p.eachStmtList(func(list []ast.Stmt) {
		for i, st := range list {
			rs, ok := st.(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := p.pkg.Info.TypeOf(rs.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			if p.isSortedKeyCollection(rs, list[i+1:]) {
				continue
			}
			p.report("maprange", rs.Pos(),
				"map iteration order is nondeterministic in a result-affecting package; "+
					"collect and sort the keys first (or annotate: //rabid:allow maprange <reason>)")
		}
	})
}

// isSortedKeyCollection recognizes a range body that only appends to one
// local slice which a later statement in the same list sorts.
func (p *pass) isSortedKeyCollection(rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	target, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" || len(call.Args) < 1 {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || p.object(first) != p.object(target) {
		return false
	}
	obj := p.object(target)
	// A later statement must hand the slice to sort.* or slices.Sort*.
	for _, st := range rest {
		sorted := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := p.pkgName(sel.X)
			if pn == nil {
				return true
			}
			if path := pn.Imported().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, a := range call.Args {
				if id, ok := a.(*ast.Ident); ok && p.object(id) == obj {
					sorted = true
				}
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}

// --- wallclock ------------------------------------------------------------

// checkWallClock flags raw time.Now / time.Since reads. All pipeline timing
// goes through internal/obs's gated clock (obs.Now / obs.Since and the
// IndexBuffers equivalents), so untapped runs never touch the wall clock;
// only the clock-exempt packages (obs itself and the service boundary)
// may read it.
func checkWallClock(p *pass) {
	if clockExempt[p.pathElem()] {
		return
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := p.selOf(se, "time")
			if !ok {
				return true
			}
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				p.report("wallclock", sel.Pos(), fmt.Sprintf(
					"raw time.%s outside internal/obs; use the gated clock (obs.Now/obs.Since) "+
						"so untapped runs stay clock-free (or annotate: //rabid:allow wallclock <reason>)",
					sel.Sel.Name))
			}
			return true
		})
	}
}

// --- globalrand -----------------------------------------------------------

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source, whose draw order depends on everything else in the
// process. Constructors (New, NewSource, NewZipf) are fine: they are how
// code threads an explicit seeded *rand.Rand.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "NormFloat64": true, "ExpFloat64": true, "Read": true,
}

// checkGlobalRand flags math/rand package-level state in non-test code;
// deterministic runs require an explicit seeded *rand.Rand threaded
// through the API.
func checkGlobalRand(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := p.selOf(se, "math/rand")
			if !ok {
				return true
			}
			if globalRandFuncs[sel.Sel.Name] {
				p.report("globalrand", sel.Pos(), fmt.Sprintf(
					"rand.%s uses the shared global source; thread a seeded *rand.Rand instead "+
						"(or annotate: //rabid:allow globalrand <reason>)", sel.Sel.Name))
			}
			return true
		})
	}
}

// --- floateq --------------------------------------------------------------

// checkFloatEq flags == / != between floating-point operands. Exact float
// equality is almost always a rounding accident waiting to happen; compare
// through an epsilon helper instead. Two exact comparisons are recognized
// as sound and exempt: against literal zero (the conventional "unset"
// sentinel, exact by IEEE-754) and against math.Inf(...) (the pipeline's
// +Inf sentinel, likewise exact).
func checkFloatEq(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(be.X) && !p.isFloat(be.Y) {
				return true
			}
			if p.isExactSentinel(be.X) || p.isExactSentinel(be.Y) {
				return true
			}
			p.report("floateq", be.OpPos, fmt.Sprintf(
				"exact floating-point %s; compare via an epsilon helper, or against the 0 / math.Inf "+
					"sentinels (or annotate: //rabid:allow floateq <reason>)", be.Op))
			return true
		})
	}
}

func (p *pass) isFloat(e ast.Expr) bool {
	t := p.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactSentinel reports whether e is a comparison operand with an exact
// representation: the constant 0 or a math.Inf(...) call.
func (p *pass) isExactSentinel(e ast.Expr) bool {
	if tv, ok := p.pkg.Info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Float || tv.Value.Kind() == constant.Int {
			return constant.Sign(tv.Value) == 0
		}
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := p.selOf(call.Fun, "math"); ok && sel.Sel.Name == "Inf" {
			return true
		}
	}
	return false
}

// --- narrowcast -----------------------------------------------------------

// checkNarrowCast flags integer conversions to a strictly smaller type with
// no visible bounds guard — the overflow class behind PR 1's
// predecessor-label bug, where int32(...) of a tile-count product silently
// wrapped on large grids. A conversion is considered guarded when the
// enclosing function compares the converted expression (textually
// identical) against a bound anywhere, which covers both if-guards before
// the cast and loop conditions bounding it.
func checkNarrowCast(p *pass) {
	// Sizes are pinned to 64-bit, not the host GOARCH: whether int→int32
	// narrows must not depend on the machine running the linter (load.go
	// pins the file set to linux/amd64 for the same reason).
	var sizes types.Sizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}
	for _, f := range p.pkg.Files {
		var funcs []ast.Node // innermost enclosing FuncDecl/FuncLit stack
		var walk func(n ast.Node)
		walk = func(root ast.Node) {
			ast.Inspect(root, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					if n != root {
						funcs = append(funcs, n)
						walk(n)
						funcs = funcs[:len(funcs)-1]
						return false
					}
				case *ast.CallExpr:
					p.checkOneCast(n, sizes, funcs)
				}
				return true
			})
		}
		walk(f)
	}
}

func (p *pass) checkOneCast(call *ast.CallExpr, sizes types.Sizes, funcs []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, dok := basicInt(tv.Type)
	src, sok := basicInt(p.pkg.Info.TypeOf(call.Args[0]))
	if !dok || !sok {
		return
	}
	// Constant operands are range-checked by the compiler itself.
	if atv, ok := p.pkg.Info.Types[call.Args[0]]; ok && atv.Value != nil {
		return
	}
	if sizes.Sizeof(dst) >= sizes.Sizeof(src) {
		return
	}
	if len(funcs) > 0 && p.hasBoundsGuard(funcs[len(funcs)-1], call.Args[0]) {
		return
	}
	p.report("narrowcast", call.Pos(), fmt.Sprintf(
		"%s(%s) narrows without a bounds guard in the enclosing function; "+
			"check the range first (or annotate: //rabid:allow narrowcast <reason>)",
		types.ExprString(call.Fun), types.ExprString(call.Args[0])))
}

func basicInt(t types.Type) (*types.Basic, bool) {
	if t == nil {
		return nil, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil, false
	}
	return b, true
}

// hasBoundsGuard reports whether fn contains an ordered comparison with an
// operand textually identical to expr.
func (p *pass) hasBoundsGuard(fn ast.Node, expr ast.Expr) bool {
	want := types.ExprString(expr)
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if types.ExprString(be.X) == want || types.ExprString(be.Y) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// --- errdrop --------------------------------------------------------------

// checkErrDrop flags expression statements that call one of this module's
// own error-returning functions and ignore the result. Silently dropped
// errors are exactly how PR 1's delay-evaluation failures went unnoticed;
// handle the error or assign it explicitly.
func checkErrDrop(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != p.mod.Path && !strings.HasPrefix(path, p.mod.Path+"/") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			p.report("errdrop", es.Pos(), fmt.Sprintf(
				"error result of %s discarded; handle it or assign explicitly "+
					"(or annotate: //rabid:allow errdrop <reason>)", fn.Name()))
			return true
		})
	}
}

// calleeFunc resolves a call's static callee when it is a declared
// function or method (calls through function values are out of scope).
func (p *pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.object(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.object(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
