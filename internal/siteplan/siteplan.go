// Package siteplan implements the paper's Section I-B procedure for
// deciding how many buffer sites each macro block should reserve: "one
// could assume an infinite number of available buffer sites, run a buffer
// allocation tool like RABID, and compute the number of buffers inserted
// in each block. Then, this number can be used to help determine the
// actual number of buffer sites to allocate within the block."
//
// Plan runs RABID on a copy of the circuit with an effectively unlimited,
// uniform site supply, attributes every inserted buffer to the floorplan
// region containing its tile (a block, or the channel space between
// blocks), and scales the observed demand by a headroom factor into a
// per-region site recommendation.
package siteplan

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Region is one demand-attribution target: a macro block or the shared
// channel area.
type Region struct {
	// Block is the index into Circuit.Blocks, or -1 for channel space.
	Block int
	// Buffers is the number of buffers RABID placed in the region under
	// unlimited supply.
	Buffers int
	// Recommended is the suggested buffer-site allocation.
	Recommended int
	// AreaUm2 is the region area (chip minus blocks for the channel row).
	AreaUm2 float64
}

// Plan is the result of a site-planning run.
type Plan struct {
	Regions []Region
	// TotalBuffers is the buffer count of the unlimited-supply run.
	TotalBuffers int
	// TotalRecommended sums the recommendations.
	TotalRecommended int
}

// Options tunes the planning run.
type Options struct {
	// Headroom scales observed demand into the recommendation (the paper's
	// Table III guidance of <= 1-in-5 occupancy suggests ~5). Values < 1
	// are rejected. Zero defaults to 5.
	Headroom float64
	// SitesPerTile is the uniform "infinite" supply. Zero defaults to a
	// value safely above any per-tile demand (64).
	SitesPerTile int
	// Params for the underlying RABID run; zero value uses defaults.
	Params core.Params
}

// Run executes the unlimited-supply RABID run and attributes demand.
func Run(c *netlist.Circuit, opt Options) (*Plan, error) {
	if opt.Headroom == 0 {
		opt.Headroom = 5
	}
	if opt.Headroom < 1 {
		return nil, fmt.Errorf("siteplan: headroom %g < 1", opt.Headroom)
	}
	if opt.SitesPerTile == 0 {
		opt.SitesPerTile = 64
	}
	if opt.SitesPerTile < 1 {
		return nil, fmt.Errorf("siteplan: sites per tile %d < 1", opt.SitesPerTile)
	}
	if opt.Params.MaxRipupPasses == 0 {
		// Zero-value params: use the defaults.
		opt.Params = core.DefaultParams()
	}
	// Unlimited-supply copy: uniform sites everywhere (including regions
	// that were blocked), so the planner reveals where demand naturally
	// falls.
	cc := *c
	cc.BufferSites = make([]int, c.NumTiles())
	for i := range cc.BufferSites {
		cc.BufferSites[i] = opt.SitesPerTile
	}
	res, err := core.Run(&cc, opt.Params)
	if err != nil {
		return nil, err
	}
	// Attribute each buffer to the region owning its tile center.
	demand := make([]int, len(c.Blocks)+1) // last entry: channels
	for i, rt := range res.Routes {
		for _, b := range res.Assignments[i].Buffers {
			t := rt.Tile[b.Node]
			center := geom.FPt{
				X: (float64(t.X) + 0.5) * c.TileUm,
				Y: (float64(t.Y) + 0.5) * c.TileUm,
			}
			idx := len(c.Blocks)
			for bi, blk := range c.Blocks {
				if blk.Contains(center) {
					idx = bi
					break
				}
			}
			demand[idx]++
		}
	}
	p := &Plan{TotalBuffers: res.TotalBuffers()}
	chipArea := c.ChipW() * c.ChipH()
	blockArea := 0.0
	for bi, blk := range c.Blocks {
		rec := int(math.Ceil(float64(demand[bi]) * opt.Headroom))
		p.Regions = append(p.Regions, Region{
			Block:       bi,
			Buffers:     demand[bi],
			Recommended: rec,
			AreaUm2:     blk.Area(),
		})
		p.TotalRecommended += rec
		blockArea += blk.Area()
	}
	chRec := int(math.Ceil(float64(demand[len(c.Blocks)]) * opt.Headroom))
	p.Regions = append(p.Regions, Region{
		Block:       -1,
		Buffers:     demand[len(c.Blocks)],
		Recommended: chRec,
		AreaUm2:     chipArea - blockArea,
	})
	p.TotalRecommended += chRec
	return p, nil
}

// Apply writes a site distribution following the plan back onto a copy of
// the circuit: each region's recommended sites are spread uniformly over
// the tiles whose centers it owns. Useful to close the loop: plan sites,
// then run RABID against the planned allocation.
func (p *Plan) Apply(c *netlist.Circuit) *netlist.Circuit {
	cc := *c
	cc.BufferSites = make([]int, c.NumTiles())
	// Tiles per region.
	owner := make([]int, c.NumTiles())
	counts := make([]int, len(c.Blocks)+1)
	for ti := range owner {
		t := geom.Pt{X: ti % c.GridW, Y: ti / c.GridW}
		center := geom.FPt{
			X: (float64(t.X) + 0.5) * c.TileUm,
			Y: (float64(t.Y) + 0.5) * c.TileUm,
		}
		idx := len(c.Blocks)
		for bi, blk := range c.Blocks {
			if blk.Contains(center) {
				idx = bi
				break
			}
		}
		owner[ti] = idx
		counts[idx]++
	}
	perRegion := make([]int, len(counts))
	rem := make([]int, len(counts))
	for _, r := range p.Regions {
		idx := r.Block
		if idx < 0 {
			idx = len(c.Blocks)
		}
		if counts[idx] > 0 {
			perRegion[idx] = r.Recommended / counts[idx]
			rem[idx] = r.Recommended % counts[idx]
		}
	}
	for ti := range owner {
		idx := owner[ti]
		cc.BufferSites[ti] = perRegion[idx]
		if rem[idx] > 0 {
			cc.BufferSites[ti]++
			rem[idx]--
		}
	}
	return &cc
}
