package siteplan

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// circuitWithBlocks builds a 14x14 circuit with two blocks and random nets.
func circuitWithBlocks(seed int64, nets int) *netlist.Circuit {
	r := rand.New(rand.NewSource(seed))
	const grid, tileUm = 14, 600.0
	c := &netlist.Circuit{
		Name: "sp", GridW: grid, GridH: grid, TileUm: tileUm,
		BufferSites: make([]int, grid*grid),
		Blocks: []geom.Rect{
			{Lo: geom.FPt{X: 600, Y: 600}, Hi: geom.FPt{X: 4200, Y: 4200}},
			{Lo: geom.FPt{X: 4800, Y: 4800}, Hi: geom.FPt{X: 7800, Y: 7800}},
		},
	}
	pin := func() netlist.Pin {
		p := geom.FPt{X: r.Float64() * c.ChipW(), Y: r.Float64() * c.ChipH()}
		if p.X >= c.ChipW() {
			p.X = c.ChipW() - 1
		}
		if p.Y >= c.ChipH() {
			p.Y = c.ChipH() - 1
		}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i := 0; i < nets; i++ {
		n := &netlist.Net{ID: i, Name: "n", Source: pin(), L: 4}
		for s := 0; s <= r.Intn(2); s++ {
			n.Sinks = append(n.Sinks, pin())
		}
		c.Nets = append(c.Nets, n)
	}
	return c
}

func TestRunAttributesAllBuffers(t *testing.T) {
	c := circuitWithBlocks(1, 30)
	p, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBuffers == 0 {
		t.Fatal("unlimited-supply run inserted no buffers")
	}
	sum := 0
	for _, r := range p.Regions {
		sum += r.Buffers
		if r.Recommended < r.Buffers {
			t.Errorf("region %d: recommendation %d below demand %d", r.Block, r.Recommended, r.Buffers)
		}
	}
	if sum != p.TotalBuffers {
		t.Errorf("attributed %d of %d buffers", sum, p.TotalBuffers)
	}
	// Regions: two blocks + channel.
	if len(p.Regions) != 3 {
		t.Fatalf("got %d regions", len(p.Regions))
	}
	if p.Regions[2].Block != -1 {
		t.Error("last region must be the channel space")
	}
	// Headroom factor of 5.
	if p.TotalRecommended < 5*p.TotalBuffers {
		t.Errorf("recommended %d < 5x demand %d", p.TotalRecommended, p.TotalBuffers)
	}
}

func TestRunOptionValidation(t *testing.T) {
	c := circuitWithBlocks(2, 5)
	if _, err := Run(c, Options{Headroom: 0.5}); err == nil {
		t.Error("headroom < 1 accepted")
	}
	if _, err := Run(c, Options{SitesPerTile: -1}); err == nil {
		t.Error("negative supply accepted")
	}
}

func TestApplyClosesTheLoop(t *testing.T) {
	c := circuitWithBlocks(3, 30)
	p, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	planned := p.Apply(c)
	if got := planned.TotalBufferSites(); got != p.TotalRecommended {
		t.Fatalf("applied %d sites, plan recommended %d", got, p.TotalRecommended)
	}
	if err := planned.Validate(); err != nil {
		t.Fatal(err)
	}
	// RABID against the planned allocation should succeed with few fails:
	// the allocation was derived from actual demand.
	res, err := core.Run(planned, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	final := res.Stages[len(res.Stages)-1]
	if final.Fails > len(c.Nets)/4 {
		t.Errorf("planned allocation still fails %d/%d nets", final.Fails, len(c.Nets))
	}
	// The original (zero sites anywhere) would fail almost everywhere;
	// sanity-check the contrast.
	resZero, err := core.Run(c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if resZero.Stages[len(resZero.Stages)-1].Fails <= final.Fails {
		t.Error("planned allocation not better than no sites")
	}
}

func TestApplyDistributesWithinRegions(t *testing.T) {
	c := circuitWithBlocks(4, 20)
	p, err := Run(c, Options{Headroom: 2})
	if err != nil {
		t.Fatal(err)
	}
	planned := p.Apply(c)
	// Every region with demand must have sites inside it.
	for _, r := range p.Regions {
		if r.Buffers == 0 {
			continue
		}
		total := 0
		for ti, s := range planned.BufferSites {
			tp := geom.Pt{X: ti % c.GridW, Y: ti / c.GridW}
			center := geom.FPt{X: (float64(tp.X) + 0.5) * c.TileUm, Y: (float64(tp.Y) + 0.5) * c.TileUm}
			in := false
			if r.Block >= 0 {
				in = c.Blocks[r.Block].Contains(center)
			} else {
				in = true
				for _, blk := range c.Blocks {
					if blk.Contains(center) {
						in = false
						break
					}
				}
			}
			if in {
				total += s
			}
		}
		if total != r.Recommended {
			t.Errorf("region %d holds %d sites, want %d", r.Block, total, r.Recommended)
		}
	}
}
