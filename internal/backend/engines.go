// The three built-in planning engines. Each is a thin adapter: the
// pipelines themselves live in internal/core (they share stage-1 graph
// construction, the Stage-3 DP driver, delay evaluation, and the Table II
// snapshot accounting), and this package owns naming, normalization, and
// dispatch.
package backend

import (
	"context"

	"repro/internal/core"
	"repro/internal/netlist"
)

// Registered engine names.
const (
	NameRabid    = "rabid"
	NameRabidLib = "rabid+lib"
	NameMCF      = "mcf"
)

func init() {
	Register(rabidEngine{})
	Register(rabidLibEngine{})
	Register(mcfEngine{})
}

// rabidEngine is the paper's four-stage pipeline with the single planning
// buffer — the reference engine whose output is pinned byte-for-byte by
// the golden route fixtures.
type rabidEngine struct{}

func (rabidEngine) Name() string { return NameRabid }
func (rabidEngine) Describe() string {
	return "RABID four-stage pipeline (Steiner, rip-up/reroute, length-based buffer DP, post-processing)"
}
func (rabidEngine) Plan(ctx context.Context, c *netlist.Circuit, p core.Params) (*core.Result, error) {
	return core.RunContext(ctx, c, p)
}

// rabidLibEngine is the rabid pipeline with the multi-type Stage-3 DP: per
// buffer, a gate is chosen from Params.Library (drive-scaled length
// constraints, area-scaled site costs, inverter polarity tracking).
type rabidLibEngine struct{}

func (rabidLibEngine) Name() string { return NameRabidLib }
func (rabidLibEngine) Describe() string {
	return "RABID pipeline with a buffer library: multi-type DP over sizes and inverters (Li & Shi)"
}
func (rabidLibEngine) Plan(ctx context.Context, c *netlist.Circuit, p core.Params) (*core.Result, error) {
	return core.RunContext(ctx, c, p)
}

// mcfEngine is the multicommodity-flow buffered-routing engine.
type mcfEngine struct{}

func (mcfEngine) Name() string { return NameMCF }
func (mcfEngine) Describe() string {
	return "multicommodity-flow buffered routing: fractional relaxation, seeded rounding, buffer DP (Albrecht et al.)"
}
func (mcfEngine) Plan(ctx context.Context, c *netlist.Circuit, p core.Params) (*core.Result, error) {
	return core.RunMCFContext(ctx, c, p)
}
