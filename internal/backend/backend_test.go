package backend

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// testCircuit builds a compact deterministic instance that runs fast
// (mirrors the core package's test helper, which is package-private).
func testCircuit(t testing.TB, seed int64, nets, gridW, gridH, sitesPerTile, L int) *netlist.Circuit {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tileUm := 600.0
	c := &netlist.Circuit{
		Name:        "unit",
		GridW:       gridW,
		GridH:       gridH,
		TileUm:      tileUm,
		BufferSites: make([]int, gridW*gridH),
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = sitesPerTile
	}
	pin := func() netlist.Pin {
		p := geom.FPt{X: (r.Float64() * float64(gridW)) * tileUm, Y: (r.Float64() * float64(gridH)) * tileUm}
		if p.X >= c.ChipW() {
			p.X = c.ChipW() - 1
		}
		if p.Y >= c.ChipH() {
			p.Y = c.ChipH() - 1
		}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i := 0; i < nets; i++ {
		n := &netlist.Net{ID: i, Name: "n", Source: pin(), L: L}
		for s := 0; s <= r.Intn(3); s++ {
			n.Sinks = append(n.Sinks, pin())
		}
		c.Nets = append(c.Nets, n)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNames(t *testing.T) {
	want := []string{NameMCF, NameRabid, NameRabidLib}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range Names() {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if e.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, e.Name())
		}
		if e.Describe() == "" {
			t.Errorf("engine %q has no description", name)
		}
	}
}

func TestLookupDefault(t *testing.T) {
	e, ok := Lookup("")
	if !ok || e.Name() != NameRabid {
		t.Fatalf(`Lookup("") = %v, %v; want rabid engine`, e, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown engine succeeded")
	}
}

func TestNormalize(t *testing.T) {
	lib := tech.DefaultPlanningLibrary018()

	p, err := Normalize(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != NameRabid || len(p.Library) != 0 {
		t.Fatalf("empty backend normalized to %q with %d gates", p.Backend, len(p.Library))
	}

	q := core.DefaultParams()
	q.Backend = NameRabidLib
	q, err = Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Library, lib) {
		t.Fatalf("rabid+lib with empty library did not default to DefaultPlanningLibrary018")
	}

	// An explicit library passes through untouched.
	custom := []tech.LibGate{lib[0]}
	q = core.DefaultParams()
	q.Backend = NameRabidLib
	q.Library = custom
	q, err = Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Library, custom) {
		t.Fatal("explicit library was replaced")
	}

	bad := core.DefaultParams()
	bad.Backend = "fastest"
	if _, err := Normalize(bad); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine error = %v", err)
	}

	for _, name := range []string{NameRabid, NameMCF} {
		p := core.DefaultParams()
		p.Backend = name
		p.Library = custom
		if _, err := Normalize(p); err == nil {
			t.Errorf("engine %q accepted a buffer library", name)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, e Engine) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	mustPanic("duplicate", rabidEngine{})
	mustPanic("empty", emptyNameEngine{})
}

type emptyNameEngine struct{}

func (emptyNameEngine) Name() string     { return "" }
func (emptyNameEngine) Describe() string { return "" }
func (emptyNameEngine) Plan(context.Context, *netlist.Circuit, core.Params) (*core.Result, error) {
	return nil, nil
}

// TestPlanAllEngines runs the same circuit through every registered engine
// and checks the shared contract: a result with per-stage stats, buffers
// placed, and final constraint accounting.
func TestPlanAllEngines(t *testing.T) {
	c := testCircuit(t, 7, 30, 10, 10, 3, 4)
	wantStages := map[string]int{NameRabid: 4, NameRabidLib: 4, NameMCF: 3}
	for _, name := range Names() {
		p := core.DefaultParams()
		p.Backend = name
		res, err := Plan(context.Background(), c, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Stages) != wantStages[name] {
			t.Errorf("%s: %d stages, want %d", name, len(res.Stages), wantStages[name])
		}
		if res.TotalBuffers() == 0 {
			t.Errorf("%s: no buffers placed", name)
		}
	}
}

// scrub zeroes the fields that legitimately vary between runs — wall-clock
// stage times and the Params echo (Normalize fills Backend, and Workers is
// varied by the determinism test) — so DeepEqual compares the plan itself.
func scrub(r *core.Result) *core.Result {
	r.Params = core.Params{}
	for i := range r.Stages {
		r.Stages[i].CPU = 0
	}
	return r
}

// TestPlanRabidMatchesCore pins the refactor: the "rabid" engine is the
// pre-existing pipeline behind a name, identical to core.Run.
func TestPlanRabidMatchesCore(t *testing.T) {
	c := testCircuit(t, 11, 25, 10, 10, 3, 4)
	direct, err := core.Run(c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	viaBackend, err := Plan(context.Background(), c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrub(direct), scrub(viaBackend)) {
		t.Fatal("rabid engine result differs from core.Run")
	}
}

// TestPlanDeterministic checks each engine returns identical results across
// repeated runs and worker counts (the rounding seed and DP are seeded).
func TestPlanDeterministic(t *testing.T) {
	c := testCircuit(t, 3, 20, 8, 8, 3, 4)
	for _, name := range Names() {
		var base *core.Result
		for _, workers := range []int{1, 2, 4} {
			p := core.DefaultParams()
			p.Backend = name
			p.Workers = workers
			res, err := Plan(context.Background(), c, p)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			scrub(res)
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Errorf("%s: workers=%d result differs from workers=1", name, workers)
			}
		}
	}
}

// TestPlanUnknownEngine checks Plan surfaces Normalize errors.
func TestPlanUnknownEngine(t *testing.T) {
	c := testCircuit(t, 5, 5, 6, 6, 3, 4)
	p := core.DefaultParams()
	p.Backend = "bogus"
	if _, err := Plan(context.Background(), c, p); err == nil {
		t.Fatal("Plan with unknown engine succeeded")
	}
}
