// Package backend is the planning-engine subsystem: a registry of named
// engines that all satisfy one contract — Plan(ctx, circuit, params) →
// result + per-stage stats — so the facade, the CLIs, and the planning
// service select an engine by name instead of hard-coding the rabid
// pipeline. Three engines register at init:
//
//   - "rabid":     the paper's four-stage pipeline (core.RunContext),
//     single planning buffer.
//   - "rabid+lib": the same pipeline with the Stage-3 DP generalized to a
//     buffer library (sizes and inverting variants with polarity tracking,
//     after Li & Shi); an empty Params.Library defaults to
//     tech.DefaultPlanningLibrary018.
//   - "mcf":       multicommodity-flow buffered routing (core.RunMCFContext):
//     fractional relaxation with site-aware lengths and approximate dual
//     updates, deterministic seeded rounding, greedy repair, then the
//     length-based buffer DP.
//
// Engine identity is part of a plan's content address (see internal/cache):
// Normalize canonicalizes Params before any key is derived, so "" and
// "rabid" share cache entries while distinct engines never alias.
package backend

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// Engine is one planning backend. Implementations must be deterministic:
// identical (circuit, params) inputs produce byte-identical results at
// every Params.Workers value.
type Engine interface {
	// Name is the registry key ("rabid", "rabid+lib", "mcf").
	Name() string
	// Describe is a one-line human summary for CLI listings.
	Describe() string
	// Plan runs the engine. Params arrive normalized (see Normalize): the
	// Backend field names this engine and the Library field is consistent
	// with it.
	Plan(ctx context.Context, c *netlist.Circuit, p core.Params) (*core.Result, error)
}

// DefaultName is the engine an empty Params.Backend resolves to.
const DefaultName = "rabid"

var registry = map[string]Engine{}

// Register adds an engine to the registry. It panics on a duplicate or
// empty name: registration happens at init, where a conflict is a
// programming error, not a runtime condition.
func Register(e Engine) {
	name := e.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate engine %q", name))
	}
	registry[name] = e
}

// Lookup resolves an engine by name; "" resolves to DefaultName.
func Lookup(name string) (Engine, bool) {
	if name == "" {
		name = DefaultName
	}
	e, ok := registry[name]
	return e, ok
}

// Names returns the registered engine names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry { //rabid:allow maprange sorted immediately below; iteration order never escapes
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Normalize canonicalizes the engine-selection fields of p and validates
// them against the registry, returning the Params every downstream
// consumer — the engine itself and the cache-key derivation — must use:
//
//   - Backend "" becomes DefaultName, so the empty spelling and the
//     explicit one share one content address;
//   - "rabid+lib" with an empty Library gets tech.DefaultPlanningLibrary018,
//     so the default library is spelled out in the key and a future default
//     change cannot silently alias old cache entries;
//   - "rabid" and "mcf" reject a non-empty Library: those engines run the
//     single-type DP, and accepting (then ignoring) a library would mint
//     distinct keys for byte-identical results;
//   - SearchKernel "" becomes "heap" and SteinerMode "" becomes "pd", so
//     the empty and explicit spellings of the defaults share one content
//     address (the cache additionally aliases "dial" with "heap" — see
//     cache.PlanKey — because the dial kernel is byte-identical by
//     construction);
//   - the mcf engine knobs (MCFPhases, MCFEpsilon) are validated here so a
//     bad request fails before it is keyed or queued.
//
// Normalize must run before core.PlanKey / cache admission; the server and
// facade both do.
func Normalize(p core.Params) (core.Params, error) {
	if p.Backend == "" {
		p.Backend = DefaultName
	}
	if _, ok := registry[p.Backend]; !ok {
		return p, fmt.Errorf("backend: unknown engine %q (have %v)", p.Backend, Names())
	}
	switch p.SearchKernel {
	case "":
		p.SearchKernel = route.KernelHeap
	case route.KernelHeap, route.KernelDial, route.KernelAstar:
	default:
		return p, fmt.Errorf("backend: unknown search kernel %q (have %v)", p.SearchKernel, route.Kernels())
	}
	switch p.SteinerMode {
	case "":
		p.SteinerMode = core.SteinerPD
	case core.SteinerPD, core.SteinerCostDist:
	default:
		return p, fmt.Errorf("backend: unknown steiner mode %q (have %v)", p.SteinerMode, core.SteinerModes())
	}
	if p.MCFPhases < 0 {
		return p, fmt.Errorf("backend: mcf phases %d < 0", p.MCFPhases)
	}
	if p.MCFEpsilon != 0 && (p.MCFEpsilon <= 0 || p.MCFEpsilon >= 1) {
		return p, fmt.Errorf("backend: mcf epsilon %g outside (0,1)", p.MCFEpsilon)
	}
	switch p.Backend {
	case NameRabidLib:
		if len(p.Library) == 0 {
			p.Library = tech.DefaultPlanningLibrary018()
		}
		for i := range p.Library {
			if err := p.Library[i].Validate(); err != nil {
				return p, fmt.Errorf("backend: library gate %d: %w", i, err)
			}
		}
	default:
		if len(p.Library) > 0 {
			return p, fmt.Errorf("backend: engine %q does not take a buffer library (use %q)", p.Backend, NameRabidLib)
		}
	}
	return p, nil
}

// Plan normalizes p, resolves the engine, and runs it.
func Plan(ctx context.Context, c *netlist.Circuit, p core.Params) (*core.Result, error) {
	p, err := Normalize(p)
	if err != nil {
		return nil, err
	}
	e, ok := Lookup(p.Backend)
	if !ok {
		return nil, fmt.Errorf("backend: unknown engine %q", p.Backend)
	}
	return e.Plan(ctx, c, p)
}
