// Package anneal implements a classic slicing-floorplan simulated
// annealer (Wong–Liu style normalized Polish expressions). The paper's
// experimental floorplans were produced by "Monte Carlo simulated
// annealing" inside the BBP code; this package provides the equivalent
// substrate so benchmark floorplans can be annealed instead of
// guillotine-packed, and so the interconnect-centric loop — anneal a
// floorplan, run RABID, evaluate, repeat — can be exercised end to end.
//
// Representation: a normalized Polish expression over block operands and
// the slicing operators V (left|right) and H (bottom|top). Each block
// offers a small discrete set of shapes (aspect ratios); combining child
// shape lists keeps the Pareto-minimal (w, h) pairs, so the root list
// yields the best attainable bounding boxes. Annealing applies the three
// classic moves (operand swap, operator-chain complement, operand/operator
// swap) under an exponential cooling schedule; all randomness is seeded.
package anneal

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Block is one macro to place.
type Block struct {
	// Area in square micrometers.
	Area float64
	// Aspects lists the allowed height/width ratios. Empty defaults to
	// {0.5, 1, 2}.
	Aspects []float64
}

// Net lists the blocks a net connects (indices into the block slice);
// used for the wirelength term of the cost.
type Net []int

// Options tunes the annealer.
type Options struct {
	Seed int64
	// Moves is the total number of proposed moves (default 20000).
	Moves int
	// InitialTemp and Cooling control the schedule (defaults 1.0, 0.995
	// applied every 50 moves). Temperature is relative to the initial
	// cost, so the defaults are scale-free.
	InitialTemp float64
	Cooling     float64
	// WirelengthWeight trades HPWL against area in the cost (default 0.5).
	WirelengthWeight float64
}

// Result is a placed floorplan.
type Result struct {
	Rects []geom.Rect
	W, H  float64
	// Cost is the final annealing cost (normalized area + weighted HPWL).
	Cost float64
}

// shape is one (w, h) option of a subtree, with backpointers for recovery.
type shape struct {
	w, h float64
	// l, r index the chosen child shapes (operand shapes have l = r = -1).
	l, r int
}

const (
	opV = -1 // vertical cut: children side by side
	opH = -2 // horizontal cut: children stacked
)

// Floorplan places the blocks. nets may be nil (pure area packing).
func Floorplan(blocks []Block, nets []Net, opt Options) (*Result, error) {
	n := len(blocks)
	if n == 0 {
		return nil, fmt.Errorf("anneal: no blocks")
	}
	for i, b := range blocks {
		if b.Area <= 0 {
			return nil, fmt.Errorf("anneal: block %d area %g must be positive", i, b.Area)
		}
	}
	for _, net := range nets {
		for _, b := range net {
			if b < 0 || b >= n {
				return nil, fmt.Errorf("anneal: net references block %d of %d", b, n)
			}
		}
	}
	if opt.Moves == 0 {
		opt.Moves = 20000
	}
	if opt.InitialTemp == 0 {
		opt.InitialTemp = 1.0
	}
	if opt.Cooling == 0 {
		opt.Cooling = 0.995
	}
	if opt.WirelengthWeight == 0 {
		opt.WirelengthWeight = 0.5
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	if n == 1 {
		w := math.Sqrt(blocks[0].Area)
		return &Result{
			Rects: []geom.Rect{{Hi: geom.FPt{X: w, Y: w}}},
			W:     w, H: w,
		}, nil
	}

	f := &plan{blocks: blocks, nets: nets, wlWeight: opt.WirelengthWeight}
	// Initial expression: 0 1 V 2 V 3 V ... (a row), always normalized.
	f.expr = make([]int, 0, 2*n-1)
	f.expr = append(f.expr, 0, 1, opV)
	for b := 2; b < n; b++ {
		f.expr = append(f.expr, b, opV)
	}
	best := append([]int(nil), f.expr...)
	cur, norm := f.cost(f.expr)
	f.norm = norm
	cur /= norm
	bestCost := cur
	temp := opt.InitialTemp
	for m := 0; m < opt.Moves; m++ {
		cand, ok := f.perturb(rng)
		if !ok {
			continue
		}
		c, _ := f.cost(cand)
		c /= norm
		if c <= cur || rng.Float64() < math.Exp(-(c-cur)/temp) {
			f.expr = cand
			cur = c
			if c < bestCost {
				bestCost = c
				best = append(best[:0], cand...)
			}
		}
		if m%50 == 49 {
			temp *= opt.Cooling
		}
	}
	rects, W, H := f.realize(best)
	return &Result{Rects: rects, W: W, H: H, Cost: bestCost}, nil
}

// plan carries the annealing state.
type plan struct {
	blocks   []Block
	nets     []Net
	expr     []int
	norm     float64
	wlWeight float64
}

// blockShapes returns the discrete shape list of one block.
func (f *plan) blockShapes(b int) []shape {
	aspects := f.blocks[b].Aspects
	if len(aspects) == 0 {
		aspects = []float64{0.5, 1, 2}
	}
	out := make([]shape, 0, len(aspects))
	for _, a := range aspects {
		h := math.Sqrt(f.blocks[b].Area * a)
		w := f.blocks[b].Area / h
		out = append(out, shape{w: w, h: h, l: -1, r: -1})
	}
	return pruneShapes(out)
}

// pruneShapes keeps the Pareto frontier (no shape both wider and taller).
func pruneShapes(in []shape) []shape {
	sort.Slice(in, func(a, b int) bool {
		//rabid:allow floateq sort tie-break: exact equality falls through to the secondary key; an epsilon would break strict weak ordering
		if in[a].w != in[b].w {
			return in[a].w < in[b].w
		}
		return in[a].h < in[b].h
	})
	var out []shape
	minH := math.Inf(1)
	for _, s := range in {
		if s.h < minH {
			out = append(out, s)
			minH = s.h
		}
	}
	return out
}

// combine merges child shape lists under an operator.
func combine(op int, ls, rs []shape) []shape {
	var out []shape
	for li, l := range ls {
		for ri, r := range rs {
			var s shape
			if op == opV {
				s = shape{w: l.w + r.w, h: math.Max(l.h, r.h), l: li, r: ri}
			} else {
				s = shape{w: math.Max(l.w, r.w), h: l.h + r.h, l: li, r: ri}
			}
			out = append(out, s)
		}
	}
	return pruneShapes(out)
}

// evaluate builds the shape lists of every subtree of the expression and
// returns the stack of (shapes, subtree description) for realization.
type subtree struct {
	shapes []shape
	// op and children describe the node (op >= 0 means leaf block index,
	// with l/r unused).
	op   int
	l, r int // indices into the node arena
}

func (f *plan) evaluate(expr []int) ([]subtree, int, error) {
	var arena []subtree
	var stack []int
	for _, tok := range expr {
		if tok >= 0 {
			arena = append(arena, subtree{shapes: f.blockShapes(tok), op: tok, l: -1, r: -1})
			stack = append(stack, len(arena)-1)
			continue
		}
		if len(stack) < 2 {
			return nil, 0, fmt.Errorf("anneal: malformed expression")
		}
		r := stack[len(stack)-1]
		l := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		arena = append(arena, subtree{
			shapes: combine(tok, arena[l].shapes, arena[r].shapes),
			op:     tok, l: l, r: r,
		})
		stack = append(stack, len(arena)-1)
	}
	if len(stack) != 1 {
		return nil, 0, fmt.Errorf("anneal: malformed expression")
	}
	return arena, stack[0], nil
}

// cost returns area + weighted HPWL for the best root shape, plus the
// normalization constant (total block area) on first use.
func (f *plan) cost(expr []int) (float64, float64) {
	arena, root, err := f.evaluate(expr)
	if err != nil {
		return math.Inf(1), 1
	}
	bi, bc := -1, math.Inf(1)
	for i, s := range arena[root].shapes {
		if a := s.w * s.h; a < bc {
			bc, bi = a, i
		}
	}
	area := bc
	norm := 0.0
	for _, b := range f.blocks {
		norm += b.Area
	}
	wl := 0.0
	if len(f.nets) > 0 && f.wlWeight > 0 {
		centers := make([]geom.FPt, len(f.blocks))
		f.place(arena, root, bi, 0, 0, centers)
		for _, net := range f.nets {
			if len(net) < 2 {
				continue
			}
			minX, maxX := math.Inf(1), math.Inf(-1)
			minY, maxY := math.Inf(1), math.Inf(-1)
			for _, b := range net {
				minX = math.Min(minX, centers[b].X)
				maxX = math.Max(maxX, centers[b].X)
				minY = math.Min(minY, centers[b].Y)
				maxY = math.Max(maxY, centers[b].Y)
			}
			wl += (maxX - minX) + (maxY - minY)
		}
		// Normalize HPWL by a length scale so area and wirelength are
		// commensurable: divide by sqrt(total area) * #nets.
		wl = wl / (math.Sqrt(norm) * float64(len(f.nets)))
		return area + f.wlWeight*wl*norm, norm
	}
	_ = bi
	return area, norm
}

// place assigns block centers for a chosen shape (recursively), writing
// into centers. Used for both cost HPWL and final realization.
func (f *plan) place(arena []subtree, node, si int, x, y float64, centers []geom.FPt) geom.Rect {
	st := arena[node]
	s := st.shapes[si]
	if st.l == -1 {
		r := geom.Rect{Lo: geom.FPt{X: x, Y: y}, Hi: geom.FPt{X: x + s.w, Y: y + s.h}}
		if centers != nil {
			centers[st.op] = r.Center()
		}
		return r
	}
	if st.op == opV {
		f.place(arena, st.l, s.l, x, y, centers)
		lw := arena[st.l].shapes[s.l].w
		f.place(arena, st.r, s.r, x+lw, y, centers)
	} else {
		f.place(arena, st.l, s.l, x, y, centers)
		lh := arena[st.l].shapes[s.l].h
		f.place(arena, st.r, s.r, x, y+lh, centers)
	}
	return geom.Rect{Lo: geom.FPt{X: x, Y: y}, Hi: geom.FPt{X: x + s.w, Y: y + s.h}}
}

// realize converts the best expression into placed rectangles.
func (f *plan) realize(expr []int) ([]geom.Rect, float64, float64) {
	arena, root, err := f.evaluate(expr)
	if err != nil {
		return nil, 0, 0
	}
	bi, bc := 0, math.Inf(1)
	for i, s := range arena[root].shapes {
		if a := s.w * s.h; a < bc {
			bc, bi = a, i
		}
	}
	rects := make([]geom.Rect, len(f.blocks))
	var fill func(node, si int, x, y float64)
	fill = func(node, si int, x, y float64) {
		st := arena[node]
		s := st.shapes[si]
		if st.l == -1 {
			rects[st.op] = geom.Rect{Lo: geom.FPt{X: x, Y: y}, Hi: geom.FPt{X: x + s.w, Y: y + s.h}}
			return
		}
		fill(st.l, s.l, x, y)
		if st.op == opV {
			fill(st.r, s.r, x+arena[st.l].shapes[s.l].w, y)
		} else {
			fill(st.r, s.r, x, y+arena[st.l].shapes[s.l].h)
		}
	}
	fill(root, bi, 0, 0)
	rs := arena[root].shapes[bi]
	return rects, rs.w, rs.h
}

// perturb proposes one of the three classic moves on a copy of the
// expression, returning ok=false when the move would break normalization
// or the balloting property.
func (f *plan) perturb(rng *rand.Rand) ([]int, bool) {
	e := append([]int(nil), f.expr...)
	switch rng.Intn(3) {
	case 0:
		// M1: swap two adjacent operands.
		var ops []int
		for i, t := range e {
			if t >= 0 {
				ops = append(ops, i)
			}
		}
		if len(ops) < 2 {
			return nil, false
		}
		k := rng.Intn(len(ops) - 1)
		e[ops[k]], e[ops[k+1]] = e[ops[k+1]], e[ops[k]]
		return e, true
	case 1:
		// M2: complement a maximal operator chain.
		var chains []int
		for i, t := range e {
			if t < 0 && (i == 0 || e[i-1] >= 0) {
				chains = append(chains, i)
			}
		}
		if len(chains) == 0 {
			return nil, false
		}
		i := chains[rng.Intn(len(chains))]
		for ; i < len(e) && e[i] < 0; i++ {
			if e[i] == opV {
				e[i] = opH
			} else {
				e[i] = opV
			}
		}
		return e, true
	default:
		// M3: swap an adjacent operand/operator pair, keeping the
		// expression normalized (no two equal adjacent operators) and
		// ballot-valid (#operators < #operands at every prefix).
		var cand []int
		for i := 0; i+1 < len(e); i++ {
			if (e[i] >= 0) != (e[i+1] >= 0) {
				cand = append(cand, i)
			}
		}
		rng.Shuffle(len(cand), func(a, b int) { cand[a], cand[b] = cand[b], cand[a] })
		for _, i := range cand {
			e[i], e[i+1] = e[i+1], e[i]
			if validExpr(e) {
				return e, true
			}
			e[i], e[i+1] = e[i+1], e[i]
		}
		return nil, false
	}
}

// validExpr checks the balloting property and normalization.
func validExpr(e []int) bool {
	operands, operators := 0, 0
	for i, t := range e {
		if t >= 0 {
			operands++
		} else {
			operators++
			if operators >= operands {
				return false
			}
			if i > 0 && e[i-1] == t {
				return false // not normalized: equal adjacent operators
			}
		}
	}
	return operators == operands-1
}
