package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func blocksN(r *rand.Rand, n int) []Block {
	out := make([]Block, n)
	for i := range out {
		out[i] = Block{Area: 1e4 + r.Float64()*9e4}
	}
	return out
}

func TestValidExpr(t *testing.T) {
	ok := [][]int{
		{0, 1, opV},
		{0, 1, opV, 2, opH},
		{0, 1, 2, opV, opH},
	}
	bad := [][]int{
		{0, opV, 1},         // ballot violation
		{0, 1, opV, opV},    // too many operators
		{0, 1, 2, opV, opV}, // adjacent equal operators
		{0, 1},              // missing operator
	}
	for _, e := range ok {
		if !validExpr(e) {
			t.Errorf("valid expression rejected: %v", e)
		}
	}
	for _, e := range bad {
		if validExpr(e) {
			t.Errorf("invalid expression accepted: %v", e)
		}
	}
}

func TestFloorplanBasics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	blocks := blocksN(r, 8)
	res, err := Floorplan(blocks, nil, Options{Seed: 1, Moves: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rects) != 8 {
		t.Fatalf("placed %d rects", len(res.Rects))
	}
	total := 0.0
	for i, rc := range res.Rects {
		if !rc.Valid() || rc.Area() <= 0 {
			t.Fatalf("rect %d invalid", i)
		}
		if math.Abs(rc.Area()-blocks[i].Area) > 1e-6*blocks[i].Area {
			t.Errorf("rect %d area %.1f, want %.1f", i, rc.Area(), blocks[i].Area)
		}
		if rc.Lo.X < -1e-9 || rc.Lo.Y < -1e-9 || rc.Hi.X > res.W+1e-9 || rc.Hi.Y > res.H+1e-9 {
			t.Errorf("rect %d outside bounding box", i)
		}
		total += rc.Area()
	}
	// No overlaps.
	for i := range res.Rects {
		for j := i + 1; j < len(res.Rects); j++ {
			if res.Rects[i].Intersects(res.Rects[j]) {
				t.Errorf("rects %d and %d overlap", i, j)
			}
		}
	}
	// Slicing floorplans waste some area but not absurdly much.
	if res.W*res.H > 1.6*total {
		t.Errorf("bounding box %.0f vs block area %.0f: too wasteful", res.W*res.H, total)
	}
}

func TestFloorplanDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	blocks := blocksN(r, 6)
	a, err := Floorplan(blocks, nil, Options{Seed: 42, Moves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Floorplan(blocks, nil, Options{Seed: 42, Moves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("same seed produced different floorplans")
		}
	}
}

func TestAnnealingImprovesOverInitialRow(t *testing.T) {
	// The initial expression is a single row; annealing should pack far
	// better (closer to square, less dead area).
	r := rand.New(rand.NewSource(7))
	blocks := blocksN(r, 12)
	rowRes, err := Floorplan(blocks, nil, Options{Seed: 1, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Floorplan(blocks, nil, Options{Seed: 1, Moves: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if annealed.Cost >= rowRes.Cost {
		t.Errorf("annealing did not improve: %.4f vs %.4f", annealed.Cost, rowRes.Cost)
	}
	// A row of 12 blocks has extreme aspect; annealed should be much more
	// square.
	rowAspect := rowRes.W / rowRes.H
	annAspect := annealed.W / annealed.H
	if annAspect < 1 {
		annAspect = 1 / annAspect
	}
	if rowAspect < 1 {
		rowAspect = 1 / rowAspect
	}
	if annAspect > rowAspect {
		t.Errorf("annealed aspect %.1f worse than row %.1f", annAspect, rowAspect)
	}
}

func TestWirelengthTermPullsConnectedBlocksTogether(t *testing.T) {
	// Ten equal blocks; one net connects blocks 0 and 9 heavily. With the
	// wirelength term their centers should end up closer than without.
	blocks := make([]Block, 10)
	for i := range blocks {
		blocks[i] = Block{Area: 1e4}
	}
	nets := []Net{}
	for k := 0; k < 20; k++ {
		nets = append(nets, Net{0, 9})
	}
	with, err := Floorplan(blocks, nets, Options{Seed: 3, Moves: 30000, WirelengthWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Floorplan(blocks, nil, Options{Seed: 3, Moves: 30000})
	if err != nil {
		t.Fatal(err)
	}
	dw := with.Rects[0].Center().Manhattan(with.Rects[9].Center())
	dn := without.Rects[0].Center().Manhattan(without.Rects[9].Center())
	if dw > dn {
		t.Errorf("wirelength term did not help: %.0f with vs %.0f without", dw, dn)
	}
}

func TestFloorplanValidation(t *testing.T) {
	if _, err := Floorplan(nil, nil, Options{}); err == nil {
		t.Error("no blocks accepted")
	}
	if _, err := Floorplan([]Block{{Area: -1}}, nil, Options{}); err == nil {
		t.Error("negative area accepted")
	}
	if _, err := Floorplan([]Block{{Area: 1}}, []Net{{5}}, Options{}); err == nil {
		t.Error("net referencing missing block accepted")
	}
}

func TestSingleBlock(t *testing.T) {
	res, err := Floorplan([]Block{{Area: 400}}, nil, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rects[0].Area()-400) > 1e-9 {
		t.Errorf("area = %v", res.Rects[0].Area())
	}
}

func TestPerturbPreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		blocks := blocksN(r, 3+r.Intn(8))
		p := &plan{blocks: blocks}
		n := len(blocks)
		p.expr = append(p.expr, 0, 1, opV)
		for b := 2; b < n; b++ {
			p.expr = append(p.expr, b, opV)
		}
		for i := 0; i < 50; i++ {
			cand, ok := p.perturb(r)
			if !ok {
				continue
			}
			if !validExpr(cand) {
				return false
			}
			// All operands still present exactly once.
			seen := map[int]int{}
			for _, t := range cand {
				if t >= 0 {
					seen[t]++
				}
			}
			if len(seen) != n {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
			p.expr = cand
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
