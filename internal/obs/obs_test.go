package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/par"
)

// fixedEvents is the synthetic stream behind the golden tests: one of
// every kind, with deterministic durations.
func fixedEvents() []Event {
	return []Event{
		{Kind: KindSpanBegin, Scope: "run", Net: -1},
		{Kind: KindSpanBegin, Scope: "stage", Stage: 2, Net: -1},
		{Kind: KindSpanBegin, Scope: "ripup.pass", Stage: 2, Pass: 1, Net: -1},
		{Kind: KindCounter, Scope: "route.pops", Stage: 2, Pass: 1, Net: 7, Value: 123},
		{Kind: KindCounter, Scope: "route.pops", Stage: 2, Pass: 1, Net: 8, Value: 45},
		{Kind: KindGauge, Scope: "ripup.overflow", Stage: 2, Pass: 1, Net: -1, Value: 0.5},
		{Kind: KindSpanEnd, Scope: "ripup.pass", Stage: 2, Pass: 1, Net: -1, Dur: 1500 * time.Microsecond},
		{Kind: KindHeat, Scope: "heat.wire", Stage: 2, Net: -1, Vals: []float64{0, 0.25, 1.5}},
		{Kind: KindSpanEnd, Scope: "stage", Stage: 2, Net: -1, Dur: 2 * time.Millisecond},
		{Kind: KindLog, Scope: "table2: apte", Net: -1},
		{Kind: KindSpanEnd, Scope: "run", Net: -1, Dur: 3 * time.Millisecond},
	}
}

func TestJSONLinesGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLines(&buf)
	for _, e := range fixedEvents() {
		s.Observe(e)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	want := `{"k":"span_begin","scope":"run"}
{"k":"span_begin","scope":"stage","stage":2}
{"k":"span_begin","scope":"ripup.pass","stage":2,"pass":1}
{"k":"counter","scope":"route.pops","stage":2,"pass":1,"net":7,"v":123}
{"k":"counter","scope":"route.pops","stage":2,"pass":1,"net":8,"v":45}
{"k":"gauge","scope":"ripup.overflow","stage":2,"pass":1,"v":0.5}
{"k":"span_end","scope":"ripup.pass","stage":2,"pass":1}
{"k":"heat","scope":"heat.wire","stage":2,"vals":[0,0.25,1.5]}
{"k":"span_end","scope":"stage","stage":2}
{"k":"log","scope":"table2: apte"}
{"k":"span_end","scope":"run"}
`
	if got := buf.String(); got != want {
		t.Errorf("JSON-lines stream mismatch:\n got: %q\nwant: %q", got, want)
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
		}
	}
}

func TestJSONLinesDurations(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLines(&buf)
	s.Durations = true
	s.Observe(Event{Kind: KindSpanEnd, Scope: "stage", Stage: 1, Net: -1, Dur: 1500 * time.Microsecond})
	want := `{"k":"span_end","scope":"stage","stage":1,"dur_ns":1500000}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestJSONLinesNonFinite(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLines(&buf)
	s.Observe(Event{Kind: KindGauge, Scope: "g", Net: -1, Value: math.Inf(1)})
	want := `{"k":"gauge","scope":"g","v":null}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	for _, e := range fixedEvents() {
		m.Observe(e)
	}
	if got := m.Counter("route.pops.2"); got != 168 {
		t.Errorf("route.pops.2 = %g, want 168", got)
	}
	if v, ok := m.Gauge("ripup.overflow.2"); !ok || v != 0.5 {
		t.Errorf("ripup.overflow.2 = %g,%v want 0.5,true", v, ok)
	}
	if s := m.Span("stage.2"); s.Count != 1 || s.Total != 2*time.Millisecond {
		t.Errorf("stage.2 span = %+v", s)
	}
	if s := m.Span("ripup.pass.2"); s.Count != 1 || s.Total != 1500*time.Microsecond {
		t.Errorf("ripup.pass.2 span = %+v", s)
	}
	if s := m.Span("run"); s.Count != 1 || s.Total != 3*time.Millisecond {
		t.Errorf("run span = %+v", s)
	}
}

func TestMetricsJSONGolden(t *testing.T) {
	m := NewMetrics()
	for _, e := range fixedEvents() {
		m.Observe(e)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"counters":{"route.pops.2":168},` +
		`"gauges":{"ripup.overflow.2":0.5},` +
		`"histograms":{"ripup.overflow.2":{"count":1,"sum":0.5,"min":0.5,"max":0.5,"p50":0.5,"p95":0.5,"p99":0.5,"buckets":[1]},` +
		`"route.pops.2":{"count":2,"sum":168,"min":45,"max":123,"p50":64,"p95":121.6,"p99":123,"buckets":[0,0,0,0,0,0,1,1]}},` +
		`"spans":{"ripup.pass.2":{"count":1,"total_ns":1500000},` +
		`"run":{"count":1,"total_ns":3000000},` +
		`"stage.2":{"count":1,"total_ns":2000000}}}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("metrics JSON mismatch:\n got: %s\nwant: %s", got, want)
	}
	// And it must round-trip through encoding/json (the CI checker's view).
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v", err)
	}
}

func TestSummaryGolden(t *testing.T) {
	m := NewMetrics()
	for _, e := range fixedEvents() {
		m.Observe(e)
	}
	var buf bytes.Buffer
	if err := m.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	want := `telemetry summary
  spans (count, total wall clock):
    ripup.pass.2                      1x  1.5ms
    run                               1x  3ms
    stage.2                           1x  2ms
  counters:
    route.pops.2                 168
  gauges (last value):
    ripup.overflow.2             0.5
  histograms (count, min / p50 p95 p99 / max):
    ripup.overflow.2                  1x  0.5 / 0.5 0.5 0.5 / 0.5
    route.pops.2                      2x  45 / 64 121.6 123 / 123
`
	if got := buf.String(); got != want {
		t.Errorf("summary mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestNilObserverZeroAlloc is the acceptance check for the nil-observer
// fast path: building an Event and calling Emit / IndexBuffers methods
// with no observer attached must not allocate.
func TestNilObserverZeroAlloc(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		Emit(nil, Event{Kind: KindCounter, Scope: "route.pops", Stage: 2, Net: 3, Value: 17})
	}); n != 0 {
		t.Errorf("Emit(nil, ...) allocates %v per run, want 0", n)
	}
	var b *IndexBuffers // = NewIndexBuffers(nil, n)
	if nb := NewIndexBuffers(nil, 8); nb != nil {
		t.Fatal("NewIndexBuffers(nil, ...) must return nil")
	}
	if n := testing.AllocsPerRun(100, func() {
		if b.Active() {
			t.Fatal("nil buffers active")
		}
		b.Emit(3, Event{Kind: KindSpanEnd, Scope: "net.steiner", Stage: 1, Net: 3})
		b.Flush()
	}); n != 0 {
		t.Errorf("nil IndexBuffers ops allocate %v per run, want 0", n)
	}
	if o := Multi(nil, nil); o != nil {
		t.Error("Multi(nil, nil) must collapse to nil")
	}
}

// TestNilObserverClockZeroAlloc extends the nil-observer contract to the
// gated clock: with no observer attached, Now/Since (and the IndexBuffers
// equivalents) must neither allocate nor read the wall clock — they
// return zero values, which is what keeps untapped runs clock-free.
func TestNilObserverClockZeroAlloc(t *testing.T) {
	var b *IndexBuffers
	if n := testing.AllocsPerRun(100, func() {
		if !Now(nil).IsZero() {
			t.Fatal("Now(nil) read the clock")
		}
		if Since(nil, time.Time{}) != 0 {
			t.Fatal("Since(nil, ...) read the clock")
		}
		if !b.Now().IsZero() {
			t.Fatal("nil IndexBuffers Now read the clock")
		}
		if b.Since(time.Time{}) != 0 {
			t.Fatal("nil IndexBuffers Since read the clock")
		}
	}); n != 0 {
		t.Errorf("nil-observer clock ops allocate %v per run, want 0", n)
	}
	// With an observer attached the gate opens.
	rec := observerFunc(func(Event) {})
	if Now(rec).IsZero() {
		t.Error("Now with an observer must read the clock")
	}
	if tapped := NewIndexBuffers(rec, 1); tapped.Now().IsZero() {
		t.Error("tapped IndexBuffers Now must read the clock")
	}
}

// TestIndexBuffersDeterministicOrder: events emitted concurrently out of
// index order are flushed in index order.
func TestIndexBuffersDeterministicOrder(t *testing.T) {
	const n = 32
	var got []int
	rec := observerFunc(func(e Event) { got = append(got, e.Net) })
	b := NewIndexBuffers(rec, n)
	if err := par.ForEach(8, n, func(i int) error {
		b.Emit(i, Event{Kind: KindSpanEnd, Scope: "op", Net: i})
		b.Emit(i, Event{Kind: KindCounter, Scope: "c", Net: i, Value: 1})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	if len(got) != 2*n {
		t.Fatalf("flushed %d events, want %d", len(got), 2*n)
	}
	for i := 0; i < n; i++ {
		if got[2*i] != i || got[2*i+1] != i {
			t.Fatalf("events out of index order at item %d: %v", i, got[2*i:2*i+2])
		}
	}
	// Flush resets: a second flush emits nothing.
	got = got[:0]
	b.Flush()
	if len(got) != 0 {
		t.Errorf("second flush re-emitted %d events", len(got))
	}
}

type observerFunc func(Event)

func (f observerFunc) Observe(e Event) { f(e) }

func TestMultiFanOut(t *testing.T) {
	var a, b int
	o := Multi(observerFunc(func(Event) { a++ }), nil, observerFunc(func(Event) { b++ }))
	o.Observe(Event{Kind: KindCounter, Scope: "x", Net: -1})
	if a != 1 || b != 1 {
		t.Errorf("fan-out reached (%d,%d) observers, want (1,1)", a, b)
	}
	single := observerFunc(func(Event) { a++ })
	if got := Multi(nil, single); got == nil {
		t.Error("Multi with one live observer returned nil")
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	p := Progress(&buf)
	p.Observe(Event{Kind: KindLog, Scope: "table2: apte", Net: -1})
	p.Observe(Event{Kind: KindCounter, Scope: "ignored", Net: -1, Value: 1})
	p.Observe(Event{Kind: KindLog, Scope: "table2: xerox", Net: -1})
	if got, want := buf.String(), "table2: apte\ntable2: xerox\n"; got != want {
		t.Errorf("progress output %q, want %q", got, want)
	}
	if Progress(nil) != nil {
		t.Error("Progress(nil) must return nil")
	}
}

// TestHistogramQuantiles: quantile estimates are clamped to the observed
// range, monotone in q, and exact when a bucket's contents are pinned by
// Min/Max — the contract /v1/metricz's p50/p95/p99 export and the
// metricscheck -quantiles gate rely on.
func TestHistogramQuantiles(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %g, want 0", got)
	}

	var h Histogram
	for v := 1.0; v <= 100; v++ {
		h.observe(v)
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	prev := math.Inf(-1)
	for _, q := range qs {
		got := h.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Quantile(%g) = %g, want finite", q, got)
		}
		if got < h.Min || got > h.Max {
			t.Errorf("Quantile(%g) = %g outside observed range [%g, %g]", q, got, h.Min, h.Max)
		}
		if got < prev {
			t.Errorf("Quantile(%g) = %g < Quantile at lower q (%g): not monotone", q, got, prev)
		}
		prev = got
	}
	// The uniform 1..100 stream has its true median at ~50; the log-bucket
	// estimate must land inside the median's own power-of-two bucket.
	if p50 := h.Quantile(0.5); p50 < 32 || p50 > 64 {
		t.Errorf("p50 of uniform 1..100 = %g, want within [32, 64]", p50)
	}

	// A single observation answers every quantile with itself.
	var one Histogram
	one.observe(7)
	for _, q := range qs {
		if got := one.Quantile(q); got != 7 {
			t.Errorf("single-value histogram Quantile(%g) = %g, want 7", q, got)
		}
	}

	// Negative observations share bucket 0; the Min clamp keeps estimates
	// inside the observed range rather than bucket 0's nominal [0, 1).
	var neg Histogram
	neg.observe(-3)
	neg.observe(-1)
	if got := neg.Quantile(0.5); got < -3 || got > -1 {
		t.Errorf("negative-value histogram p50 = %g, want within [-3, -1]", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {-3, 0}, {1, 1}, {1.5, 1}, {2, 2}, {3, 2},
		{4, 3}, {1023, 10}, {1024, 11}, {math.Inf(1), histBuckets - 1},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBufferFlushAndDiscard(t *testing.T) {
	var b Buffer
	m := NewMetrics()
	b.Observe(Event{Kind: KindCounter, Scope: "spec.a", Stage: 2, Net: 0, Value: 3})
	b.Observe(Event{Kind: KindCounter, Scope: "spec.b", Stage: 2, Net: 0, Value: 4})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	// Discarded events never reach a sink (a conflicted speculation).
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Observe(Event{Kind: KindCounter, Scope: "spec.a", Stage: 2, Net: 1, Value: 5})
	b.FlushTo(m)
	if b.Len() != 0 {
		t.Errorf("Len after FlushTo = %d", b.Len())
	}
	if v := m.Counter("spec.a.2"); v != 5 {
		t.Errorf("flushed counter = %v, want 5 (discarded events must not leak)", v)
	}
	if v := m.Counter("spec.b.2"); v != 0 {
		t.Errorf("discarded counter reached the sink: %v", v)
	}
	// Flushing to nil drops events, like Emit's fast path.
	b.Observe(Event{Kind: KindCounter, Scope: "spec.c", Stage: 2, Net: 2, Value: 1})
	b.FlushTo(nil)
	if b.Len() != 0 {
		t.Errorf("Len after FlushTo(nil) = %d", b.Len())
	}
}
