// Package obs is the structured telemetry layer of the RABID pipeline:
// hierarchical trace spans (run → stage → rip-up pass → per-net
// operation), metric counters and gauges, and periodic congestion-heat
// snapshots, all delivered as a single stream of Event values to an
// Observer hook (core.Params.Observer).
//
// Design constraints, in order:
//
//  1. Zero overhead when no observer is attached. Event is a plain value
//     type built on the caller's stack; Emit compiles to a nil compare
//     and a skip, so instrumented hot paths allocate nothing and callers
//     gate even their clock reads behind the same nil check
//     (TestNilObserverZeroAlloc enforces this with AllocsPerRun).
//  2. Deterministic event streams. The pipeline's parallel per-net
//     sections route their events through IndexBuffers, which collects
//     per work-item and flushes in index order after the fan-in barrier,
//     so the stream is identical for every Workers value. The only
//     nondeterministic Event field is Dur (wall clock); the JSON-lines
//     sink omits it unless explicitly asked, keeping exported traces
//     byte-identical across worker counts.
//  3. Standard library only, like the rest of the repository.
//
// Sinks provided here: JSONLines (machine-readable event export),
// Metrics (aggregating counters/gauges/histograms/span registry with an
// expvar-style JSON dump and a human-readable summary), Progress (thin
// io.Writer adapter for coarse progress lines), and Multi (fan-out).
package obs

import (
	"io"
	"sync"
	"time"
)

// Kind discriminates the event taxonomy.
type Kind uint8

const (
	// KindSpanBegin opens a long-lived span (run, stage, rip-up pass).
	KindSpanBegin Kind = iota + 1
	// KindSpanEnd closes a span. Short per-net operations emit only the
	// end event (the begin is implied); Dur carries the wall-clock
	// duration either way.
	KindSpanEnd
	// KindCounter is a monotonic increment of Value for Scope.
	KindCounter
	// KindGauge records the current Value for Scope (last write wins).
	KindGauge
	// KindHeat is a per-tile snapshot (Vals) of a spatial field, e.g.
	// wire congestion after a stage or a rip-up pass.
	KindHeat
	// KindLog is a freeform progress message in Scope, rendered verbatim
	// by the Progress sink (the io.Writer adapter of the experiment
	// harness).
	KindLog
)

// String names the kind for serialization.
func (k Kind) String() string {
	switch k {
	case KindSpanBegin:
		return "span_begin"
	case KindSpanEnd:
		return "span_end"
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHeat:
		return "heat"
	case KindLog:
		return "log"
	}
	return "unknown"
}

// Event is one telemetry record. It is a value type: no event construction
// allocates, so the nil-observer fast path is free.
type Event struct {
	Kind Kind
	// Scope names the span, metric, or snapshot (e.g. "stage",
	// "route.pops", "heat.wire"). Scopes are dot-separated, coarse to
	// fine; see DESIGN.md "Observability" for the full taxonomy.
	Scope string
	// Stage is the pipeline stage (1-4) the event belongs to, 0 outside
	// any stage.
	Stage int
	// Pass is the rip-up (or MCF phase) pass number, 0 when not in a pass.
	Pass int
	// Net is the net index or ID the event concerns, -1 when net-less.
	Net int
	// Value carries the counter delta or gauge reading.
	Value float64
	// Dur is the wall-clock duration of a KindSpanEnd event. It is the
	// only nondeterministic field; deterministic sinks omit it.
	Dur time.Duration
	// Vals is the per-tile field of a KindHeat event (row-major, like
	// tile.Graph indices). Emitters reuse the backing array across
	// snapshots (the router's heat buffer lives in its workspace), so
	// Vals is only valid for the duration of the Observe call: an
	// observer that wants to keep a snapshot must copy it.
	Vals []float64
}

// Observer receives the event stream. Implementations used with the
// pipeline's parallel fan-outs only ever see events from the sequential
// sections or from IndexBuffers.Flush, both single-goroutine; sinks
// shared across concurrent *runs* (the experiment suite fan-out) must be
// safe for concurrent use, as all sinks in this package are.
type Observer interface {
	Observe(Event)
}

// Emit forwards e to o when o is non-nil. This is the instrumentation
// fast path: with no observer configured the call reduces to a nil check,
// and the Event literal never escapes the caller's stack.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Observe(e)
	}
}

// Now is the gated wall clock: it reads time.Now only when an observer is
// attached and returns the zero Time otherwise. Per-net and per-pass
// timing in the pipeline goes through this gate (or the IndexBuffers
// equivalent), which is what rabidlint's wallclock check enforces; the
// only raw, annotated exceptions are the coarse run/stage/BBP CPU timers
// whose readings the tables print even when untapped. Results never
// depend on either kind of reading.
func Now(o Observer) time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since is the gated companion of Now: the elapsed wall time since t when
// an observer is attached, 0 otherwise.
func Since(o Observer, t time.Time) time.Duration {
	if o == nil {
		return 0
	}
	return time.Since(t)
}

// multi fans one stream out to several sinks, in order.
type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi combines observers into one; nils are dropped. It returns nil
// when every argument is nil (keeping the zero-overhead fast path) and
// the observer itself when only one remains.
func Multi(os ...Observer) Observer {
	var nz []Observer
	for _, o := range os {
		if o != nil {
			nz = append(nz, o)
		}
	}
	switch len(nz) {
	case 0:
		return nil
	case 1:
		return nz[0]
	}
	return multi(nz)
}

// Buffer collects events for deferred in-order delivery. The parallel
// rip-up engine routes each speculative reroute's counters into a per-net
// Buffer, then either flushes them at commit time in net order or discards
// them when the speculation loses a conflict, keeping the delivered stream
// byte-identical to the sequential kernel's. A Buffer serves one work item
// at a time (no internal locking); KindHeat events must not be buffered —
// their Vals alias emitter-owned storage that goes stale before the flush.
type Buffer struct{ evs []Event }

// Observe appends e to the buffer.
func (b *Buffer) Observe(e Event) { b.evs = append(b.evs, e) }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.evs) }

// Reset discards the buffered events, keeping capacity for reuse.
func (b *Buffer) Reset() { b.evs = b.evs[:0] }

// FlushTo forwards the buffered events to o in arrival order and resets
// the buffer. A nil o drops the events (matching Emit's fast path).
func (b *Buffer) FlushTo(o Observer) {
	for _, e := range b.evs {
		Emit(o, e)
	}
	b.evs = b.evs[:0]
}

// IndexBuffers makes parallel per-item instrumentation deterministic: each
// worker emits into its own item's buffer (no locks, no cross-item
// ordering), and Flush forwards everything to the observer in item-index
// order after the fan-in barrier. A nil *IndexBuffers (no observer) is a
// valid no-op receiver, so call sites need no second nil check.
type IndexBuffers struct {
	o   Observer
	evs [][]Event
}

// NewIndexBuffers returns buffers for n work items feeding o, or nil when
// o is nil.
func NewIndexBuffers(o Observer, n int) *IndexBuffers {
	if o == nil {
		return nil
	}
	return &IndexBuffers{o: o, evs: make([][]Event, n)}
}

// Active reports whether events are being collected; workers use it to
// skip clock reads on the nil fast path.
func (b *IndexBuffers) Active() bool { return b != nil }

// Now is the per-item clock gate: time.Now when events are being
// collected, the zero Time on the nil fast path.
func (b *IndexBuffers) Now() time.Time {
	if b == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since returns the elapsed wall time since t when events are being
// collected, 0 on the nil fast path.
func (b *IndexBuffers) Since(t time.Time) time.Duration {
	if b == nil {
		return 0
	}
	return time.Since(t)
}

// Emit appends e to item i's buffer. Safe to call concurrently for
// distinct i; no-op on a nil receiver.
func (b *IndexBuffers) Emit(i int, e Event) {
	if b == nil {
		return
	}
	b.evs[i] = append(b.evs[i], e)
}

// Flush forwards all buffered events in item-index order and resets the
// buffers. No-op on a nil receiver.
func (b *IndexBuffers) Flush() {
	if b == nil {
		return
	}
	for i, evs := range b.evs {
		for _, e := range evs {
			b.o.Observe(e)
		}
		b.evs[i] = nil
	}
}

// progress renders KindLog events as plain lines — the thin adapter that
// keeps the experiment harness's io.Writer progress signature.
type progress struct {
	mu sync.Mutex
	w  io.Writer
}

// Progress returns an observer printing each KindLog event's Scope as one
// line to w (other kinds are ignored), or nil when w is nil. It is safe
// for concurrent use even when w is not.
func Progress(w io.Writer) Observer {
	if w == nil {
		return nil
	}
	return &progress{w: w}
}

func (p *progress) Observe(e Event) {
	if e.Kind != KindLog {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	io.WriteString(p.w, e.Scope)
	io.WriteString(p.w, "\n")
}
