package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// JSONLines serializes every event as one JSON object per line, suitable
// for jq/pandas-style post-processing. Encoding is hand-rolled so the
// field order is fixed and the stream is deterministic: span durations —
// the only wall-clock field — are omitted unless Durations is set, which
// is what keeps traces byte-identical across Params.Workers values.
//
// Write errors are sticky: the first one stops further output and is
// reported by Err, so a full pipeline run never aborts on a broken sink.
type JSONLines struct {
	mu sync.Mutex
	w  io.Writer
	// Durations includes "dur_ns" on span-end events. Off by default:
	// wall-clock times differ run to run and across worker counts, so a
	// deterministic trace must not carry them.
	Durations bool
	buf       []byte
	err       error
}

// NewJSONLines returns a deterministic JSON-lines sink writing to w.
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{w: w}
}

// Err returns the first write error, if any.
func (s *JSONLines) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Observe implements Observer.
func (s *JSONLines) Observe(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"k":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","scope":`...)
	b = strconv.AppendQuote(b, e.Scope)
	if e.Stage > 0 {
		b = append(b, `,"stage":`...)
		b = strconv.AppendInt(b, int64(e.Stage), 10)
	}
	if e.Pass > 0 {
		b = append(b, `,"pass":`...)
		b = strconv.AppendInt(b, int64(e.Pass), 10)
	}
	if e.Net >= 0 {
		b = append(b, `,"net":`...)
		b = strconv.AppendInt(b, int64(e.Net), 10)
	}
	switch e.Kind {
	case KindCounter, KindGauge:
		b = append(b, `,"v":`...)
		b = appendFloat(b, e.Value)
	case KindSpanEnd:
		if s.Durations {
			b = append(b, `,"dur_ns":`...)
			b = strconv.AppendInt(b, int64(e.Dur), 10)
		}
	case KindHeat:
		b = append(b, `,"vals":[`...)
		for i, v := range e.Vals {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendFloat(b, v)
		}
		b = append(b, ']')
	}
	b = append(b, '}', '\n')
	s.buf = b
	_, s.err = s.w.Write(b)
}

// appendFloat formats v as JSON. JSON has no Inf/NaN literals; they are
// mapped to null so a stream stays parseable even if a non-finite value
// ever leaks into an event (the metricscheck CI gate then flags it).
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
