package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles starts the stdlib profilers selected by non-empty paths —
// a CPU profile (runtime/pprof) and an execution trace (runtime/trace) —
// and returns a stop function that finishes both and, when memPath is
// non-empty, writes a heap profile. Both cmd/rabid and cmd/tables expose
// these as -cpuprofile, -trace, and -memprofile.
func StartProfiles(cpuPath, tracePath, memPath string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cpuPath != "" {
		if cpuF, err = os.Create(cpuPath); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		if traceF, err = os.Create(tracePath); err != nil {
			cleanup()
			return nil, err
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // get up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		return nil
	}, nil
}
