package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"
)

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds values < 1, bucket i holds values in [2^(i-1), 2^i), and the last
// bucket absorbs everything larger.
const histBuckets = 32

// Histogram is a fixed exponential (power-of-two) histogram of observed
// counter/gauge values, plus exact count/sum/min/max.
type Histogram struct {
	Count    int
	Sum      float64
	Min, Max float64
	Buckets  [histBuckets]int
}

func (h *Histogram) observe(v float64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Quantile estimates the q-th quantile (q in [0,1]) of the observed values
// from the power-of-two buckets: it walks the cumulative counts to the
// bucket holding the q-th observation and interpolates linearly inside the
// bucket's [2^(i-1), 2^i) range, clamping to the exact observed [Min, Max].
// The clamp makes estimates finite whenever every observation was finite,
// and the monotone walk makes Quantile itself monotone in q — the two
// properties cmd/metricscheck's -quantiles gate asserts. A histogram with
// no observations reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum >= rank {
			lo, hi := bucketBounds(i)
			v := lo + (rank-prev)/float64(n)*(hi-lo)
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
	}
	return h.Max
}

// bucketBounds returns the value range [lo, hi) of bucket i, mirroring
// bucketOf: bucket 0 absorbs everything below 1 (including negatives, which
// the Min clamp in Quantile handles), bucket i >= 1 covers [2^(i-1), 2^i).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// bucketOf maps v to its power-of-two bucket; non-finite and negative
// values land in the extreme buckets rather than corrupting the array.
func bucketOf(v float64) int {
	if math.IsNaN(v) || v < 1 {
		return 0
	}
	if v >= math.MaxUint64/2 {
		return histBuckets - 1
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// SpanStats aggregates the completed spans of one scope key.
type SpanStats struct {
	Count int
	Total time.Duration
}

// Metrics is the aggregating registry sink: counters sum, gauges keep the
// last value, every counter/gauge observation also feeds a histogram of
// its scope, and span-end events accumulate count and total duration per
// stage-qualified scope ("stage.2", "net.assign.3", ...). Safe for
// concurrent use, so one registry can absorb the experiment suite's
// concurrent benchmark fan-out.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*Histogram
	spans    map[string]*SpanStats
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*SpanStats{},
	}
}

// key qualifies a scope with its stage ("route.pops.2"); stage-less
// events keep the bare scope.
func key(scope string, stage int) string {
	if stage <= 0 {
		return scope
	}
	return scope + "." + strconv.Itoa(stage)
}

// Observe implements Observer.
func (m *Metrics) Observe(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Kind {
	case KindCounter:
		k := key(e.Scope, e.Stage)
		m.counters[k] += e.Value
		m.hist(k).observe(e.Value)
	case KindGauge:
		k := key(e.Scope, e.Stage)
		m.gauges[k] = e.Value
		m.hist(k).observe(e.Value)
	case KindSpanEnd:
		k := key(e.Scope, e.Stage)
		s := m.spans[k]
		if s == nil {
			s = &SpanStats{}
			m.spans[k] = s
		}
		s.Count++
		s.Total += e.Dur
	}
	// Span begins, heat snapshots, and log lines carry no aggregate.
}

func (m *Metrics) hist(k string) *Histogram {
	h := m.hists[k]
	if h == nil {
		h = &Histogram{}
		m.hists[k] = h
	}
	return h
}

// Counter returns the accumulated value of a counter key.
func (m *Metrics) Counter(k string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[k]
}

// Gauge returns the last value of a gauge key and whether it was set.
func (m *Metrics) Gauge(k string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.gauges[k]
	return v, ok
}

// Span returns the aggregated stats of a span key (zero value if unseen).
func (m *Metrics) Span(k string) SpanStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.spans[k]; s != nil {
		return *s
	}
	return SpanStats{}
}

// WriteJSON dumps the registry as one expvar-style JSON document with
// sorted keys (deterministic given the same aggregated values). This is
// the format cmd/metricscheck validates in CI.
func (m *Metrics) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	b = append(b, `{"counters":{`...)
	b = appendFloatMap(b, m.counters)
	b = append(b, `},"gauges":{`...)
	b = appendFloatMap(b, m.gauges)
	b = append(b, `},"histograms":{`...)
	for i, k := range sortedKeys(m.hists) {
		if i > 0 {
			b = append(b, ',')
		}
		h := m.hists[k]
		b = strconv.AppendQuote(b, k)
		b = append(b, `:{"count":`...)
		b = strconv.AppendInt(b, int64(h.Count), 10)
		b = append(b, `,"sum":`...)
		b = appendFloat(b, h.Sum)
		b = append(b, `,"min":`...)
		b = appendFloat(b, h.Min)
		b = append(b, `,"max":`...)
		b = appendFloat(b, h.Max)
		b = append(b, `,"p50":`...)
		b = appendFloat(b, h.Quantile(0.50))
		b = append(b, `,"p95":`...)
		b = appendFloat(b, h.Quantile(0.95))
		b = append(b, `,"p99":`...)
		b = appendFloat(b, h.Quantile(0.99))
		b = append(b, `,"buckets":[`...)
		// Trailing empty buckets are truncated to keep dumps compact.
		top := len(h.Buckets)
		for top > 0 && h.Buckets[top-1] == 0 {
			top--
		}
		for j := 0; j < top; j++ {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(h.Buckets[j]), 10)
		}
		b = append(b, `]}`...)
	}
	b = append(b, `},"spans":{`...)
	for i, k := range sortedKeys(m.spans) {
		if i > 0 {
			b = append(b, ',')
		}
		s := m.spans[k]
		b = strconv.AppendQuote(b, k)
		b = append(b, `:{"count":`...)
		b = strconv.AppendInt(b, int64(s.Count), 10)
		b = append(b, `,"total_ns":`...)
		b = strconv.AppendInt(b, int64(s.Total), 10)
		b = append(b, '}')
	}
	b = append(b, `}}`...)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}

// WriteSummary renders the registry as a human-readable run summary:
// spans first (where the wall clock went), then counters and gauges.
func (m *Metrics) WriteSummary(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := fmt.Fprintf(w, "telemetry summary\n"); err != nil {
		return err
	}
	if len(m.spans) > 0 {
		fmt.Fprintf(w, "  spans (count, total wall clock):\n")
		for _, k := range sortedKeys(m.spans) {
			s := m.spans[k]
			fmt.Fprintf(w, "    %-28s %6dx  %s\n", k, s.Count, s.Total)
		}
	}
	if len(m.counters) > 0 {
		fmt.Fprintf(w, "  counters:\n")
		for _, k := range sortedKeys(m.counters) {
			fmt.Fprintf(w, "    %-28s %g\n", k, m.counters[k])
		}
	}
	if len(m.gauges) > 0 {
		fmt.Fprintf(w, "  gauges (last value):\n")
		for _, k := range sortedKeys(m.gauges) {
			fmt.Fprintf(w, "    %-28s %g\n", k, m.gauges[k])
		}
	}
	if len(m.hists) > 0 {
		fmt.Fprintf(w, "  histograms (count, min / p50 p95 p99 / max):\n")
		for _, k := range sortedKeys(m.hists) {
			h := m.hists[k]
			fmt.Fprintf(w, "    %-28s %6dx  %g / %g %g %g / %g\n",
				k, h.Count, h.Min, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
		}
	}
	return nil
}

func appendFloatMap(b []byte, m map[string]float64) []byte {
	for i, k := range sortedKeys(m) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = appendFloat(b, m[k])
	}
	return b
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
