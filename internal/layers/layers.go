// Package layers models metal-layer assignment for global nets. The
// paper's footnote to the problem formulation observes that "if some nets
// can be routed on higher metal layers while others cannot, different nets
// can have different L_i values depending on their layer; also, a larger
// value of L_i can be used in conjunction with wider wire width
// assignment." Thick top-level metal has a fraction of the sheet
// resistance, so a gate can drive much more of it before the slew rule
// trips.
//
// The package provides a layer stack, per-layer technology scaling, a
// promotion pass that assigns the longest (most slew-critical) nets to
// thick metal within a capacity budget and rederives their L_i from the
// slew target, and a per-net delay evaluation that respects each net's
// layer.
package layers

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/slew"
	"repro/internal/tech"
)

// Layer scales the base technology's wire parasitics.
type Layer struct {
	Name string
	// ResScale multiplies wire resistance per unit length (thick/wide
	// metal: well below 1).
	ResScale float64
	// CapScale multiplies wire capacitance per unit length (wider wires
	// have somewhat more capacitance).
	CapScale float64
}

// DefaultStack018 returns a two-entry stack: the default thin signal
// layers and a thick top-metal pair with 4x lower resistance and 15%
// higher capacitance per unit length.
func DefaultStack018() []Layer {
	return []Layer{
		{Name: "thin(M3/M4)", ResScale: 1, CapScale: 1},
		{Name: "thick(M5/M6)", ResScale: 0.25, CapScale: 1.15},
	}
}

// Tech returns the base technology with the layer's wire scaling applied.
func (l Layer) Tech(base tech.Tech) tech.Tech {
	t := base
	t.WireResPerUm *= l.ResScale
	t.WireCapPerUm *= l.CapScale
	return t
}

// Assignment maps each net to a stack index and its rederived L.
type Assignment struct {
	Stack []Layer
	// LayerOf[i] indexes Stack for net i.
	LayerOf []int
	// LOf[i] is the slew-derived tile length constraint for net i on its
	// layer.
	LOf []int
}

// Promote assigns the longest nets (by pin bounding-box half-perimeter,
// the pre-route estimate available at this stage) to the highest layer,
// within budgetFraction of all nets, and derives every net's L from the
// slew target on its layer. The stack must be ordered thin to thick.
func Promote(c *netlist.Circuit, base tech.Tech, stack []Layer, budgetFraction, slewTarget float64) (*Assignment, error) {
	if len(stack) == 0 {
		return nil, fmt.Errorf("layers: empty stack")
	}
	if budgetFraction < 0 || budgetFraction > 1 {
		return nil, fmt.Errorf("layers: budget fraction %g outside [0,1]", budgetFraction)
	}
	if slewTarget <= 0 {
		return nil, fmt.Errorf("layers: slew target %g must be positive", slewTarget)
	}
	// Per-layer L from the slew rule.
	lOfLayer := make([]int, len(stack))
	for i, l := range stack {
		e, err := slew.NewEvaluator(l.Tech(base), c.TileUm)
		if err != nil {
			return nil, err
		}
		lOfLayer[i] = e.DeriveL(slewTarget)
		if i > 0 && lOfLayer[i] < lOfLayer[i-1] {
			return nil, fmt.Errorf("layers: stack not ordered thin to thick (L %d < %d)",
				lOfLayer[i], lOfLayer[i-1])
		}
	}
	// Rank nets by bounding-box half-perimeter in tiles.
	type ranked struct{ idx, hpwl int }
	order := make([]ranked, len(c.Nets))
	for i, n := range c.Nets {
		minX, maxX := n.Source.Tile.X, n.Source.Tile.X
		minY, maxY := n.Source.Tile.Y, n.Source.Tile.Y
		for _, s := range n.Sinks {
			if s.Tile.X < minX {
				minX = s.Tile.X
			}
			if s.Tile.X > maxX {
				maxX = s.Tile.X
			}
			if s.Tile.Y < minY {
				minY = s.Tile.Y
			}
			if s.Tile.Y > maxY {
				maxY = s.Tile.Y
			}
		}
		order[i] = ranked{i, (maxX - minX) + (maxY - minY)}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].hpwl > order[b].hpwl })
	asg := &Assignment{
		Stack:   stack,
		LayerOf: make([]int, len(c.Nets)),
		LOf:     make([]int, len(c.Nets)),
	}
	top := len(stack) - 1
	budget := int(budgetFraction * float64(len(c.Nets)))
	for rank, r := range order {
		layer := 0
		if rank < budget {
			layer = top
		}
		asg.LayerOf[r.idx] = layer
		asg.LOf[r.idx] = lOfLayer[layer]
	}
	return asg, nil
}

// Apply returns a copy of the circuit with each net's L replaced by its
// layer-derived constraint, ready for core.Run.
func (a *Assignment) Apply(c *netlist.Circuit) *netlist.Circuit {
	cc := *c
	cc.Nets = make([]*netlist.Net, len(c.Nets))
	for i, n := range c.Nets {
		nn := *n
		nn.L = a.LOf[i]
		cc.Nets[i] = &nn
	}
	return &cc
}

// Evaluate computes max/avg sink delay over a completed run with each
// net's wire parasitics taken from its assigned layer.
func (a *Assignment) Evaluate(res *core.Result, base tech.Tech) (maxPs, avgPs float64, err error) {
	evals := make([]delay.Evaluator, len(a.Stack))
	for i, l := range a.Stack {
		evals[i], err = delay.NewEvaluator(l.Tech(base), res.Circuit.TileUm)
		if err != nil {
			return 0, 0, err
		}
	}
	var st delay.Stats
	for i, rt := range res.Routes {
		ds, err := evals[a.LayerOf[i]].SinkDelays(rt, res.Assignments[i].Buffers)
		if err != nil {
			return 0, 0, err
		}
		st.Add(ds)
	}
	return st.MaxPs(), st.AvgPs(), nil
}
