package layers

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func circuit(seed int64, nets, grid int) *netlist.Circuit {
	r := rand.New(rand.NewSource(seed))
	tileUm := 600.0
	c := &netlist.Circuit{
		Name: "ly", GridW: grid, GridH: grid, TileUm: tileUm,
		BufferSites: make([]int, grid*grid),
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 3
	}
	pin := func() netlist.Pin {
		p := geom.FPt{X: r.Float64() * c.ChipW(), Y: r.Float64() * c.ChipH()}
		if p.X >= c.ChipW() {
			p.X = c.ChipW() - 1
		}
		if p.Y >= c.ChipH() {
			p.Y = c.ChipH() - 1
		}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i := 0; i < nets; i++ {
		n := &netlist.Net{ID: i, Name: "n", Source: pin(), L: 4}
		for s := 0; s <= r.Intn(2); s++ {
			n.Sinks = append(n.Sinks, pin())
		}
		c.Nets = append(c.Nets, n)
	}
	return c
}

func TestLayerTechScaling(t *testing.T) {
	base := tech.Default018()
	thick := DefaultStack018()[1]
	tt := thick.Tech(base)
	if tt.WireResPerUm >= base.WireResPerUm {
		t.Error("thick metal should have lower resistance")
	}
	if tt.WireCapPerUm <= base.WireCapPerUm {
		t.Error("thick metal should have slightly higher capacitance")
	}
	if tt.DriverRes != base.DriverRes {
		t.Error("layer must not change gates")
	}
}

func TestPromoteBudgetAndOrdering(t *testing.T) {
	c := circuit(1, 40, 16)
	base := tech.Default018()
	asg, err := Promote(c, base, DefaultStack018(), 0.25, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	promoted := 0
	for _, l := range asg.LayerOf {
		if l == 1 {
			promoted++
		}
	}
	if promoted != 10 {
		t.Errorf("promoted %d nets, want 10 (25%% of 40)", promoted)
	}
	// Thick-metal L must exceed thin-metal L (the footnote's point).
	var thinL, thickL int
	for i := range c.Nets {
		if asg.LayerOf[i] == 0 {
			thinL = asg.LOf[i]
		} else {
			thickL = asg.LOf[i]
		}
	}
	if thickL <= thinL {
		t.Errorf("thick L %d <= thin L %d", thickL, thinL)
	}
	// The promoted nets are the longest ones: every promoted net's HPWL
	// must be >= every unpromoted net's HPWL.
	hpwl := func(n *netlist.Net) int {
		minX, maxX := n.Source.Tile.X, n.Source.Tile.X
		minY, maxY := n.Source.Tile.Y, n.Source.Tile.Y
		for _, s := range n.Sinks {
			minX, maxX = min(minX, s.Tile.X), max(maxX, s.Tile.X)
			minY, maxY = min(minY, s.Tile.Y), max(maxY, s.Tile.Y)
		}
		return maxX - minX + maxY - minY
	}
	minPromoted, maxPlain := 1<<30, -1
	for i, n := range c.Nets {
		h := hpwl(n)
		if asg.LayerOf[i] == 1 && h < minPromoted {
			minPromoted = h
		}
		if asg.LayerOf[i] == 0 && h > maxPlain {
			maxPlain = h
		}
	}
	if minPromoted < maxPlain {
		t.Errorf("promotion not by length: promoted min %d < plain max %d", minPromoted, maxPlain)
	}
}

func TestPromoteValidation(t *testing.T) {
	c := circuit(2, 5, 10)
	base := tech.Default018()
	if _, err := Promote(c, base, nil, 0.5, 400e-12); err == nil {
		t.Error("empty stack accepted")
	}
	if _, err := Promote(c, base, DefaultStack018(), 1.5, 400e-12); err == nil {
		t.Error("budget > 1 accepted")
	}
	if _, err := Promote(c, base, DefaultStack018(), 0.5, 0); err == nil {
		t.Error("zero slew target accepted")
	}
	// Reversed stack (thick first) violates the ordering check.
	rev := []Layer{DefaultStack018()[1], DefaultStack018()[0]}
	if _, err := Promote(c, base, rev, 0.5, 400e-12); err == nil {
		t.Error("reversed stack accepted")
	}
}

func TestApplySetsPerNetL(t *testing.T) {
	c := circuit(3, 20, 14)
	base := tech.Default018()
	asg, err := Promote(c, base, DefaultStack018(), 0.3, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	cc := asg.Apply(c)
	for i, n := range cc.Nets {
		if n.L != asg.LOf[i] {
			t.Fatalf("net %d L=%d, want %d", i, n.L, asg.LOf[i])
		}
	}
	// Original untouched.
	for _, n := range c.Nets {
		if n.L != 4 {
			t.Fatal("Apply mutated the original circuit")
		}
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayeredRunUsesFewerBuffersOnPromotedNets(t *testing.T) {
	c := circuit(4, 30, 16)
	base := tech.Default018()
	// Everything on thin metal vs promoting the longest third.
	thinOnly, err := Promote(c, base, DefaultStack018()[:1], 0, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	layered, err := Promote(c, base, DefaultStack018(), 0.33, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	resThin, err := core.Run(thinOnly.Apply(c), p)
	if err != nil {
		t.Fatal(err)
	}
	resLayered, err := core.Run(layered.Apply(c), p)
	if err != nil {
		t.Fatal(err)
	}
	if resLayered.TotalBuffers() >= resThin.TotalBuffers() {
		t.Errorf("layer promotion did not save buffers: %d vs %d",
			resLayered.TotalBuffers(), resThin.TotalBuffers())
	}
	// Layer-aware delay evaluation works and is finite.
	maxPs, avgPs, err := layered.Evaluate(resLayered, base)
	if err != nil {
		t.Fatal(err)
	}
	if !(maxPs > 0 && avgPs > 0 && maxPs >= avgPs) {
		t.Errorf("evaluate: max %v avg %v", maxPs, avgPs)
	}
}
