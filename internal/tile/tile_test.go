package tile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func mustNew(t *testing.T, w, h int, sites []int, cap int) *Graph {
	t.Helper()
	g, err := New(w, h, sites, cap)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, nil, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(3, 3, nil, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(3, 3, make([]int, 5), 1); err == nil {
		t.Error("wrong site slice accepted")
	}
	if _, err := New(3, 3, nil, 1); err != nil {
		t.Errorf("nil sites rejected: %v", err)
	}
}

func TestEdgeCountFormula(t *testing.T) {
	cases := []struct{ w, h, want int }{
		{1, 1, 0},
		{2, 1, 1},
		{1, 2, 1},
		{2, 2, 4},
		{3, 2, 7},
		{30, 33, 29*33 + 30*32},
	}
	for _, c := range cases {
		g := mustNew(t, c.w, c.h, nil, 1)
		if g.NumEdges() != c.want {
			t.Errorf("%dx%d: NumEdges = %d, want %d", c.w, c.h, g.NumEdges(), c.want)
		}
	}
}

func TestTileIndexRoundTrip(t *testing.T) {
	g := mustNew(t, 7, 5, nil, 1)
	for i := 0; i < g.NumTiles(); i++ {
		if got := g.TileIndex(g.TileAt(i)); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, g.TileAt(i), got)
		}
	}
}

func TestEdgeBetweenUniqueAndSymmetric(t *testing.T) {
	g := mustNew(t, 4, 3, nil, 1)
	seen := map[int]bool{}
	var nbuf []geom.Pt
	for i := 0; i < g.NumTiles(); i++ {
		p := g.TileAt(i)
		nbuf = g.Neighbors(p, nbuf[:0])
		for _, q := range nbuf {
			e, ok := g.EdgeBetween(p, q)
			if !ok {
				t.Fatalf("neighbor %v-%v has no edge", p, q)
			}
			e2, ok := g.EdgeBetween(q, p)
			if !ok || e2 != e {
				t.Fatalf("edge %v-%v not symmetric (%d vs %d)", p, q, e, e2)
			}
			if e < 0 || e >= g.NumEdges() {
				t.Fatalf("edge index %d out of range", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != g.NumEdges() {
		t.Errorf("visited %d distinct edges, want %d", len(seen), g.NumEdges())
	}
}

func TestEdgeBetweenRejectsNonNeighbors(t *testing.T) {
	g := mustNew(t, 4, 3, nil, 1)
	bad := [][2]geom.Pt{
		{{X: 0, Y: 0}, {X: 2, Y: 0}},
		{{X: 0, Y: 0}, {X: 1, Y: 1}},
		{{X: 0, Y: 0}, {X: 0, Y: 0}},
		{{X: 0, Y: 0}, {X: -1, Y: 0}},
		{{X: 3, Y: 2}, {X: 4, Y: 2}},
	}
	for _, pq := range bad {
		if _, ok := g.EdgeBetween(pq[0], pq[1]); ok {
			t.Errorf("EdgeBetween(%v,%v) accepted", pq[0], pq[1])
		}
	}
}

func TestNeighborsCorners(t *testing.T) {
	g := mustNew(t, 4, 3, nil, 1)
	if n := g.Neighbors(geom.Pt{X: 0, Y: 0}, nil); len(n) != 2 {
		t.Errorf("corner has %d neighbors", len(n))
	}
	if n := g.Neighbors(geom.Pt{X: 1, Y: 0}, nil); len(n) != 3 {
		t.Errorf("edge tile has %d neighbors", len(n))
	}
	if n := g.Neighbors(geom.Pt{X: 1, Y: 1}, nil); len(n) != 4 {
		t.Errorf("interior tile has %d neighbors", len(n))
	}
}

func TestWireCostEq1(t *testing.T) {
	g := mustNew(t, 2, 1, nil, 4)
	e, _ := g.EdgeBetween(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 1, Y: 0})
	// w=0: (0+1)/(4-0) = 0.25
	if got := g.WireCost(e); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("cost at w=0: %v", got)
	}
	g.AddWire(e)
	g.AddWire(e)
	g.AddWire(e)
	// w=3: (3+1)/(4-3) = 4
	if got := g.WireCost(e); math.Abs(got-4) > 1e-12 {
		t.Errorf("cost at w=3: %v", got)
	}
	g.AddWire(e)
	if !math.IsInf(g.WireCost(e), 1) {
		t.Error("cost at capacity must be +Inf")
	}
}

func TestWireCostMonotone(t *testing.T) {
	g := mustNew(t, 2, 1, nil, 10)
	e := 0
	prev := g.WireCost(e)
	for i := 0; i < 9; i++ {
		g.AddWire(e)
		cur := g.WireCost(e)
		if cur <= prev {
			t.Fatalf("WireCost not strictly increasing at w=%d", i+1)
		}
		prev = cur
	}
}

func TestSiteCostEq2(t *testing.T) {
	g := mustNew(t, 1, 1, []int{12}, 1)
	g.AddBuffer(0)
	g.AddBuffer(0)
	g.AddDemand(0, 2.0)
	// Fig. 5 third tile: B=12, b=2, p=2 -> (2+2+1)/(12-2) = 0.5
	if got := g.SiteCost(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SiteCost = %v, want 0.5", got)
	}
}

func TestSiteCostFig5Row(t *testing.T) {
	// The full Fig. 5 row: B, b, p -> q.
	B := []int{8, 5, 12, 3, 5, 0}
	b := []int{3, 4, 2, 3, 0, 0}
	p := []float64{2.5, 3.6, 2, 0.8, 4, 5}
	want := []float64{1.3, 8.6, 0.5, math.Inf(1), 1.0, math.Inf(1)}
	g := mustNew(t, 6, 1, B, 1)
	for v := range B {
		for i := 0; i < b[v]; i++ {
			g.AddBuffer(v)
		}
		g.AddDemand(v, p[v])
	}
	for v := range want {
		got := g.SiteCost(v)
		if math.IsInf(want[v], 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("tile %d: q = %v, want +Inf", v, got)
			}
			continue
		}
		if math.Abs(got-want[v]) > 1e-9 {
			t.Errorf("tile %d: q = %v, want %v", v, got, want[v])
		}
	}
}

func TestSiteCostFullTileInfinite(t *testing.T) {
	g := mustNew(t, 1, 1, []int{1}, 1)
	g.AddBuffer(0)
	if !math.IsInf(g.SiteCost(0), 1) {
		t.Error("full tile should cost +Inf")
	}
	if !math.IsInf(mustNew(t, 1, 1, []int{0}, 1).SiteCost(0), 1) {
		t.Error("zero-site tile should cost +Inf")
	}
}

func TestAddRemovePanics(t *testing.T) {
	g := mustNew(t, 2, 1, []int{1, 0}, 1)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	expectPanic("RemoveWire empty", func() { g.RemoveWire(0) })
	expectPanic("RemoveBuffer empty", func() { g.RemoveBuffer(0) })
	g.AddBuffer(0)
	expectPanic("AddBuffer full", func() { g.AddBuffer(0) })
	expectPanic("AddBuffer zero-site", func() { g.AddBuffer(1) })
	expectPanic("SetCapacity negative", func() { g.SetCapacity(0, -1) })
	g.SetCapacity(0, 0) // zero is legal: a blocked edge
}

func TestWireUsageConservation(t *testing.T) {
	// Adding then removing arbitrary sequences of wires returns to zero.
	f := func(ops []uint8) bool {
		g, _ := New(3, 3, nil, 100)
		var stack []int
		for _, op := range ops {
			e := int(op) % g.NumEdges()
			g.AddWire(e)
			stack = append(stack, e)
		}
		for _, e := range stack {
			g.RemoveWire(e)
		}
		st := g.WireCongestion()
		return st.Max == 0 && st.Avg == 0 && st.Overflow == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireCongestionStats(t *testing.T) {
	g := mustNew(t, 2, 2, nil, 2)
	// 4 edges, capacity 2 each. Load one edge with 5, another with 1.
	for i := 0; i < 5; i++ {
		g.AddWire(0)
	}
	g.AddWire(1)
	st := g.WireCongestion()
	if math.Abs(st.Max-2.5) > 1e-12 {
		t.Errorf("Max = %v, want 2.5", st.Max)
	}
	if st.Overflow != 3 {
		t.Errorf("Overflow = %d, want 3", st.Overflow)
	}
	wantAvg := (2.5 + 0.5 + 0 + 0) / 4
	if math.Abs(st.Avg-wantAvg) > 1e-12 {
		t.Errorf("Avg = %v, want %v", st.Avg, wantAvg)
	}
}

func TestBufferDensityStats(t *testing.T) {
	g := mustNew(t, 2, 2, []int{4, 2, 0, 0}, 1)
	g.AddBuffer(0)
	g.AddBuffer(0)
	g.AddBuffer(1)
	st := g.BufferDensity()
	if st.Buffers != 3 {
		t.Errorf("Buffers = %d", st.Buffers)
	}
	if math.Abs(st.Max-0.5) > 1e-12 {
		t.Errorf("Max = %v, want 0.5", st.Max)
	}
	// Average over tiles with sites only: (0.5 + 0.5)/2.
	if math.Abs(st.Avg-0.5) > 1e-12 {
		t.Errorf("Avg = %v, want 0.5", st.Avg)
	}
}

func TestDemandClampsAtZero(t *testing.T) {
	g := mustNew(t, 1, 1, []int{1}, 1)
	g.AddDemand(0, 0.5)
	g.AddDemand(0, -0.5000001)
	if g.Demand(0) != 0 {
		t.Errorf("Demand = %v, want clamp to 0", g.Demand(0))
	}
}

func TestResetAndClone(t *testing.T) {
	g := mustNew(t, 2, 2, []int{1, 1, 1, 1}, 3)
	g.AddWire(0)
	g.AddBuffer(0)
	g.AddDemand(1, 2)
	c := g.Clone()
	g.ResetWires()
	g.ResetBuffers()
	if g.Usage(0) != 0 || g.UsedSites(0) != 0 {
		t.Error("reset failed")
	}
	if c.Usage(0) != 1 || c.UsedSites(0) != 1 || c.Demand(1) != 2 {
		t.Error("clone does not preserve state")
	}
	c.AddWire(0)
	if g.Usage(0) != 0 {
		t.Error("clone shares storage with original")
	}
}

func TestCalibrateCapacity(t *testing.T) {
	// 10 edges, total usage 30, target avg 0.3 -> capacity 10.
	use := make([]int, 10)
	for i := range use {
		use[i] = 3
	}
	if got := CalibrateCapacity(use, 10, 0.3); got != 10 {
		t.Errorf("CalibrateCapacity = %d, want 10", got)
	}
	if got := CalibrateCapacity(nil, 10, 0.3); got != 1 {
		t.Errorf("empty usage should give 1, got %d", got)
	}
	if got := CalibrateCapacity(use, 0, 0.3); got != 1 {
		t.Errorf("degenerate edges should give 1, got %d", got)
	}
}

func TestUsageSnapshotIndependent(t *testing.T) {
	g := mustNew(t, 2, 1, nil, 1)
	g.AddWire(0)
	s := g.UsageSnapshot()
	g.AddWire(0)
	if s[0] != 1 {
		t.Error("snapshot not a copy")
	}
}

func TestUsageEpochStamps(t *testing.T) {
	g := mustNew(t, 3, 3, nil, 2)
	snap := g.UsageEpoch()
	for e := 0; e < g.NumEdges(); e++ {
		if g.UsageChangedSince(e, snap) {
			t.Fatalf("edge %d changed before any mutation", e)
		}
	}
	g.AddWire(3)
	if !g.UsageChangedSince(3, snap) {
		t.Error("AddWire must stamp the edge")
	}
	if g.UsageChangedSince(2, snap) {
		t.Error("untouched edge reported changed")
	}
	if g.UsageEpoch() == snap {
		t.Error("epoch must advance on mutation")
	}
	snap2 := g.UsageEpoch()
	g.RemoveWire(3)
	if !g.UsageChangedSince(3, snap2) {
		t.Error("RemoveWire must stamp the edge")
	}
	// ABA: usage is back to its snap-time value even though the stamp moved
	// — value comparison is the precise check, stamps only a fast filter.
	if g.Usage(3) != 0 {
		t.Error("usage not restored")
	}
	snap3 := g.UsageEpoch()
	g.ResetWires()
	for e := 0; e < g.NumEdges(); e++ {
		if !g.UsageChangedSince(e, snap3) {
			t.Fatalf("ResetWires must stamp edge %d", e)
		}
	}
	cl := g.Clone()
	if cl.UsageEpoch() != g.UsageEpoch() {
		t.Error("Clone must carry the usage epoch")
	}
	cl.AddWire(0)
	if g.UsageChangedSince(0, g.UsageEpoch()) {
		t.Error("clone mutation leaked into original's stamps")
	}
}

func TestWireCostAt(t *testing.T) {
	g := mustNew(t, 2, 2, nil, 2)
	g.AddWire(0)
	g.AddWire(0)
	if got, want := g.WireCost(0), g.WireCostAt(0, g.Usage(0)); got != want {
		t.Errorf("WireCost %v != WireCostAt(current) %v", got, want)
	}
	// Pricing at a hypothetical lower usage must not disturb the graph.
	if c := g.WireCostAt(0, 0); math.IsInf(c, 1) {
		t.Errorf("WireCostAt(0 usage) = %v, want finite", c)
	}
	if g.Usage(0) != 2 {
		t.Error("WireCostAt mutated usage")
	}
}

func TestEdgeUtilBlockedEdge(t *testing.T) {
	g := mustNew(t, 2, 2, nil, 2)
	g.AddWire(0)
	if got := g.EdgeUtil(0); got != 0.5 {
		t.Errorf("EdgeUtil = %v, want 0.5", got)
	}
	g.SetCapacity(0, 0) // blocked edge
	// Utilization degrades to the raw wire count — finite, never Inf/NaN.
	if got := g.EdgeUtil(0); got != 1 {
		t.Errorf("EdgeUtil on blocked edge = %v, want 1", got)
	}
	st := g.WireCongestion()
	if st.Max != st.Max || math.IsInf(st.Max, 0) {
		t.Errorf("WireCongestion.Max = %v with a blocked edge, want finite", st.Max)
	}
}
