// Package tile implements the tile graph G(V,E) of the paper's problem
// formulation: tiles carry buffer sites B(v) and current buffer usage b(v);
// edges between neighboring tiles carry wire capacity W(e) and current usage
// w(e). The package provides the congestion-based wire cost of Eq. (1), the
// buffer-site cost of Eq. (2) including the probabilistic demand term p(v),
// and the congestion statistics reported in the experiments.
package tile

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Graph is a W x H tile graph. Tiles are indexed row-major (y*W + x).
// Horizontal edges connect (x,y)-(x+1,y); vertical edges connect
// (x,y)-(x,y+1). The zero value is unusable; construct with New.
type Graph struct {
	W, H int

	cap []int // per-edge wire capacity W(e)
	use []int // per-edge wire usage w(e)

	// capMax is a monotone upper bound on every edge capacity: it is set at
	// build, raised by SetCapacity, and never lowered (a stale-high bound
	// stays a bound). The search kernels derive Eq. (1) cost bounds from it:
	// the cheapest possible finite wire cost is 1/capMax (one wire on an
	// empty max-capacity edge) and the costliest is capMax (the last legal
	// wire, (w+1)/(cap-w) at w = cap-1). See CapMax.
	capMax int

	// Usage-epoch stamps for optimistic concurrency (the parallel rip-up
	// commit protocol, see route.Parallel): useEpoch counts wire-usage
	// mutations, useStamp[e] records the epoch of edge e's last change.
	// A reader that snapshots UsageEpoch before a read-only phase can later
	// ask UsageChangedSince(e, snap) to learn whether any writer touched e
	// in between — O(1), no per-edge diffing.
	useEpoch uint64
	useStamp []uint64

	sites []int     // per-tile buffer sites B(v)
	used  []int     // per-tile used buffer sites b(v)
	prob  []float64 // per-tile demand p(v) from unprocessed nets

	// Flat adjacency tables, precomputed once in New and shared (read-only)
	// by Clone: row v of the stride-4 arrays holds tile v's grid neighbors
	// and the joining edge indices, in the same +x, -x, +y, -y order as
	// Neighbors, -1 padded past adjDeg[v] entries. The router's wavefront
	// iterates these int32 rows instead of round-tripping geom.Pt values
	// through InGrid/EdgeBetween per relaxation.
	adjNbr  []int32
	adjEdge []int32
	adjDeg  []uint8
}

// New creates a graph with the given dimensions, per-tile buffer sites
// (row-major, may be nil for all-zero), and a uniform edge capacity.
func New(w, h int, sites []int, capacity int) (*Graph, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("tile: grid %dx%d must be positive", w, h)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("tile: capacity %d must be >= 1", capacity)
	}
	// Tile and edge indices travel through int32 adjacency tables and
	// router predecessor labels; a grid this large could not be allocated
	// anyway, so reject it before any index can wrap.
	if int64(w)*int64(h) > math.MaxInt32 {
		return nil, fmt.Errorf("tile: grid %dx%d exceeds %d tiles", w, h, int64(math.MaxInt32))
	}
	n := w * h
	if sites == nil {
		sites = make([]int, n)
	}
	if len(sites) != n {
		return nil, fmt.Errorf("tile: %d site entries for %d tiles", len(sites), n)
	}
	g := &Graph{
		W:        w,
		H:        h,
		cap:      make([]int, numEdges(w, h)),
		use:      make([]int, numEdges(w, h)),
		useStamp: make([]uint64, numEdges(w, h)),
		sites:    append([]int(nil), sites...),
		used:     make([]int, n),
		prob:     make([]float64, n),
	}
	for i := range g.cap {
		g.cap[i] = capacity
	}
	g.capMax = capacity
	g.buildAdjacency()
	return g, nil
}

// buildAdjacency fills the flat neighbor/edge tables. Neighbor order per
// tile matches Neighbors exactly (+x, -x, +y, -y, out-of-grid skipped) so
// index-based wavefront relaxation visits edges in the identical order.
func (g *Graph) buildAdjacency() {
	n := g.W * g.H
	g.adjNbr = make([]int32, 4*n)
	g.adjEdge = make([]int32, 4*n)
	g.adjDeg = make([]uint8, n)
	for i := range g.adjNbr {
		g.adjNbr[i] = -1
		g.adjEdge[i] = -1
	}
	var nbuf []geom.Pt
	for v := 0; v < n; v++ {
		pv := g.TileAt(v)
		nbuf = g.Neighbors(pv, nbuf[:0])
		for k, pw := range nbuf {
			e, ok := g.EdgeBetween(pv, pw)
			if !ok {
				panic(fmt.Sprintf("tile: neighbor %v of %v has no edge", pw, pv))
			}
			//rabid:allow narrowcast tile and edge indices are < NumTiles <= MaxInt32, enforced in New
			g.adjNbr[4*v+k] = int32(g.TileIndex(pw))
			//rabid:allow narrowcast tile and edge indices are < NumTiles <= MaxInt32, enforced in New
			g.adjEdge[4*v+k] = int32(e)
		}
		//rabid:allow narrowcast at most 4 grid neighbors
		g.adjDeg[v] = uint8(len(nbuf))
	}
}

// Adjacency returns tile v's grid neighbors and the joining edge indices as
// parallel int32 slices in Neighbors order. The slices alias the graph's
// precomputed tables and must not be modified.
func (g *Graph) Adjacency(v int) (nbrs, edges []int32) {
	lo := 4 * v
	hi := lo + int(g.adjDeg[v])
	return g.adjNbr[lo:hi:hi], g.adjEdge[lo:hi:hi]
}

func numEdges(w, h int) int { return (w-1)*h + w*(h-1) }

// NumEdges returns the edge count of the graph.
func (g *Graph) NumEdges() int { return numEdges(g.W, g.H) }

// NumTiles returns the tile count.
func (g *Graph) NumTiles() int { return g.W * g.H }

// TileIndex converts a tile coordinate to its row-major index.
func (g *Graph) TileIndex(p geom.Pt) int { return p.Y*g.W + p.X }

// TileAt converts a row-major index back to a tile coordinate.
func (g *Graph) TileAt(i int) geom.Pt { return geom.Pt{X: i % g.W, Y: i / g.W} }

// InGrid reports whether the coordinate lies inside the grid.
func (g *Graph) InGrid(p geom.Pt) bool {
	return p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H
}

// EdgeBetween returns the edge index joining two tiles and whether they are
// grid neighbors.
func (g *Graph) EdgeBetween(a, b geom.Pt) (int, bool) {
	if !g.InGrid(a) || !g.InGrid(b) {
		return 0, false
	}
	dx, dy := b.X-a.X, b.Y-a.Y
	switch {
	case dy == 0 && (dx == 1 || dx == -1):
		x := geom.Min(a.X, b.X)
		return a.Y*(g.W-1) + x, true
	case dx == 0 && (dy == 1 || dy == -1):
		y := geom.Min(a.Y, b.Y)
		return (g.W-1)*g.H + y*g.W + a.X, true
	default:
		return 0, false
	}
}

// Neighbors appends the grid neighbors of p to dst and returns it. Using an
// appended slice keeps wavefront expansion allocation-free.
func (g *Graph) Neighbors(p geom.Pt, dst []geom.Pt) []geom.Pt {
	for _, d := range [4]geom.Pt{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
		q := p.Add(d)
		if g.InGrid(q) {
			dst = append(dst, q)
		}
	}
	return dst
}

// --- wire usage -------------------------------------------------------

// Capacity returns W(e) for an edge index.
func (g *Graph) Capacity(e int) int { return g.cap[e] }

// Usage returns w(e) for an edge index.
func (g *Graph) Usage(e int) int { return g.use[e] }

// SetCapacity overrides the capacity of one edge (non-uniform capacities,
// e.g. reduced capacity over macros). Capacity 0 marks a blocked edge — no
// wires may legally cross (WireCost is +Inf and any usage is pure
// overflow); routers still traverse such edges at the OverflowPenalty
// clamp, exactly like an over-capacity edge.
func (g *Graph) SetCapacity(e, c int) {
	if c < 0 {
		panic(fmt.Sprintf("tile: capacity %d must be >= 0", c))
	}
	g.cap[e] = c
	if c > g.capMax {
		g.capMax = c
	}
}

// CapMax returns an upper bound on every edge capacity (exact unless some
// capacity was lowered after build, in which case it is conservatively
// high). The bound frames the finite Eq. (1) cost range — [1/CapMax, CapMax]
// — which the Dial kernel uses to size its buckets and the A* kernel uses
// for its admissible per-edge lower bound; a too-high bound only loosens
// both, never breaks them. At least 1 by construction (New rejects
// capacity < 1 and SetCapacity only raises the bound).
func (g *Graph) CapMax() int { return g.capMax }

// SetUniformCapacity sets every edge capacity to c.
func (g *Graph) SetUniformCapacity(c int) {
	for i := range g.cap {
		g.SetCapacity(i, c)
	}
}

// AddWire records one wire crossing edge e.
func (g *Graph) AddWire(e int) {
	g.use[e]++
	g.useEpoch++
	g.useStamp[e] = g.useEpoch
}

// RemoveWire removes one wire crossing edge e. It panics when the edge has
// no recorded usage, which would indicate corrupted rip-up bookkeeping.
func (g *Graph) RemoveWire(e int) {
	if g.use[e] == 0 {
		panic(fmt.Sprintf("tile: RemoveWire on empty edge %d", e))
	}
	g.use[e]--
	g.useEpoch++
	g.useStamp[e] = g.useEpoch
}

// UsageEpoch returns the graph's wire-usage mutation counter: it advances
// on every AddWire/RemoveWire (and ResetWires), so an unchanged epoch
// proves no wire usage anywhere was touched. Snapshot it before a
// read-only phase and pass it to UsageChangedSince afterwards.
func (g *Graph) UsageEpoch() uint64 { return g.useEpoch }

// UsageChangedSince reports whether edge e's wire usage was mutated after
// the given UsageEpoch snapshot. It is conservative under remove-then-re-add
// (the stamp advances even when the usage value round-trips); pair it with
// a value comparison when exactness matters.
func (g *Graph) UsageChangedSince(e int, epoch uint64) bool {
	return g.useStamp[e] > epoch
}

// WireCost is the congestion cost of Eq. (1) for one additional wire across
// edge e: (w+1)/(W-w) while w/W < 1, +Inf at or beyond capacity.
func (g *Graph) WireCost(e int) float64 {
	return g.WireCostAt(e, g.use[e])
}

// WireCostAt is WireCost evaluated as if edge e carried w wires instead of
// its current usage. The speculative router prices edges under "own wires
// removed" without mutating the shared graph.
func (g *Graph) WireCostAt(e, w int) float64 {
	cp := g.cap[e]
	if w >= cp {
		return math.Inf(1)
	}
	return float64(w+1) / float64(cp-w)
}

// EdgeUtil returns the utilization w(e)/W(e) of edge e, guarded for
// blocked (zero-capacity) edges: an unused blocked edge reads 0, and each
// wire illegally crossing one counts as a full capacity of overflow —
// finite either way, so heat snapshots and congestion gauges can never
// carry the +Inf/NaN a raw division would produce (the analogue of the
// zero-sites guard in SiteCost).
func (g *Graph) EdgeUtil(e int) float64 {
	w, cp := g.use[e], g.cap[e]
	if cp <= 0 {
		return float64(w)
	}
	return float64(w) / float64(cp)
}

// --- buffer sites -----------------------------------------------------

// Sites returns B(v) for a tile index.
func (g *Graph) Sites(v int) int { return g.sites[v] }

// UsedSites returns b(v) for a tile index.
func (g *Graph) UsedSites(v int) int { return g.used[v] }

// AddBuffer assigns one buffer site in tile v. It panics when the tile is
// already at capacity; the planning algorithms never choose full tiles
// because SiteCost is infinite there.
func (g *Graph) AddBuffer(v int) {
	if g.used[v] >= g.sites[v] {
		panic(fmt.Sprintf("tile: AddBuffer overflows tile %d (%d/%d)", v, g.used[v], g.sites[v]))
	}
	g.used[v]++
}

// RemoveBuffer releases one buffer site in tile v.
func (g *Graph) RemoveBuffer(v int) {
	if g.used[v] == 0 {
		panic(fmt.Sprintf("tile: RemoveBuffer on empty tile %d", v))
	}
	g.used[v]--
}

// Demand returns p(v), the summed 1/L_i probabilities of unprocessed nets
// passing through tile v.
func (g *Graph) Demand(v int) float64 { return g.prob[v] }

// AddDemand adjusts p(v) by delta (negative when a net is processed).
// Accumulated floating error is clamped at zero.
func (g *Graph) AddDemand(v int, delta float64) {
	g.prob[v] += delta
	if g.prob[v] < 0 {
		g.prob[v] = 0
	}
}

// SiteCost is the buffer-site cost of Eq. (2) for tile v:
// (b + p + 1)/(B - b) while b/B < 1, +Inf when the tile is full or has no
// sites at all.
func (g *Graph) SiteCost(v int) float64 {
	b, s := g.used[v], g.sites[v]
	if s == 0 || b >= s {
		return math.Inf(1)
	}
	return (float64(b) + g.prob[v] + 1) / float64(s-b)
}

// --- statistics -------------------------------------------------------

// WireStats summarizes edge congestion: the maximum and average of
// w(e)/W(e) over all edges and the total overflow sum of max(0, w-W).
type WireStats struct {
	Max, Avg float64
	Overflow int
}

// WireCongestion computes the wire congestion statistics.
func (g *Graph) WireCongestion() WireStats {
	var st WireStats
	if len(g.use) == 0 {
		return st
	}
	sum := 0.0
	for e := range g.use {
		c := g.EdgeUtil(e)
		sum += c
		if c > st.Max {
			st.Max = c
		}
		if over := g.use[e] - g.cap[e]; over > 0 {
			st.Overflow += over
		}
	}
	st.Avg = sum / float64(len(g.use))
	return st
}

// BufferStats summarizes buffer-site usage: maximum and average of
// b(v)/B(v) over tiles with sites, and the total buffer count.
type BufferStats struct {
	Max, Avg float64
	Buffers  int
}

// BufferDensity computes the buffer-site usage statistics.
func (g *Graph) BufferDensity() BufferStats {
	var st BufferStats
	tiles := 0
	sum := 0.0
	for v := range g.sites {
		st.Buffers += g.used[v]
		if g.sites[v] == 0 {
			continue
		}
		tiles++
		d := float64(g.used[v]) / float64(g.sites[v])
		sum += d
		if d > st.Max {
			st.Max = d
		}
	}
	if tiles > 0 {
		st.Avg = sum / float64(tiles)
	}
	return st
}

// ResetWires clears all wire usage (used when a stage rebuilds routing from
// scratch). The usage epoch advances once and stamps every edge, so
// optimistic readers observe the reset like any other mutation.
func (g *Graph) ResetWires() {
	g.useEpoch++
	for i := range g.use {
		g.use[i] = 0
		g.useStamp[i] = g.useEpoch
	}
}

// ResetBuffers clears all buffer usage.
func (g *Graph) ResetBuffers() {
	for i := range g.used {
		g.used[i] = 0
	}
}

// Clone returns a deep copy of the graph. The adjacency tables depend only
// on the immutable dimensions and are shared, not copied.
func (g *Graph) Clone() *Graph {
	return &Graph{
		W:        g.W,
		H:        g.H,
		cap:      append([]int(nil), g.cap...),
		capMax:   g.capMax,
		use:      append([]int(nil), g.use...),
		useEpoch: g.useEpoch,
		useStamp: append([]uint64(nil), g.useStamp...),
		sites:    append([]int(nil), g.sites...),
		used:     append([]int(nil), g.used...),
		prob:     append([]float64(nil), g.prob...),
		adjNbr:   g.adjNbr,
		adjEdge:  g.adjEdge,
		adjDeg:   g.adjDeg,
	}
}

// CalibrateCapacity returns a uniform edge capacity such that the average
// congestion of the given per-edge usage equals roughly targetAvg. The paper
// never tabulates W(e); this calibration reproduces its observed Stage-1
// average congestion band (see DESIGN.md). The result is always >= 1.
func CalibrateCapacity(use []int, numEdges int, targetAvg float64) int {
	if numEdges <= 0 || targetAvg <= 0 {
		return 1
	}
	total := 0
	for _, u := range use {
		total += u
	}
	c := int(math.Ceil(float64(total) / (float64(numEdges) * targetAvg)))
	if c < 1 {
		c = 1
	}
	return c
}

// UsageSnapshot returns a copy of the per-edge usage, for calibration.
func (g *Graph) UsageSnapshot() []int { return append([]int(nil), g.use...) }
