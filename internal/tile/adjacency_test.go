package tile

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// TestAdjacencyMatchesNeighbors cross-checks the flat adjacency tables
// against the geometric API they were compiled from: for every tile, the
// (neighbor, edge) pairs from Adjacency must list exactly Neighbors(p) in
// the same order, with each edge index agreeing with EdgeBetween. The router
// kernel iterates only the tables, so this is the bridge proof that keeps
// its relaxation order identical to the map-based kernel it replaced.
func TestAdjacencyMatchesNeighbors(t *testing.T) {
	for _, dim := range []struct{ w, h int }{{1, 1}, {1, 7}, {7, 1}, {4, 4}, {5, 3}, {16, 9}} {
		g := mustNew(t, dim.w, dim.h, nil, 1)
		var buf []geom.Pt
		for v := 0; v < g.NumTiles(); v++ {
			p := g.TileAt(v)
			buf = g.Neighbors(p, buf[:0])
			nbrs, edges := g.Adjacency(v)
			if len(nbrs) != len(buf) || len(edges) != len(buf) {
				t.Fatalf("%dx%d tile %v: adjacency degree %d/%d, Neighbors %d",
					dim.w, dim.h, p, len(nbrs), len(edges), len(buf))
			}
			for i, q := range buf {
				if got := g.TileAt(int(nbrs[i])); got != q {
					t.Errorf("%dx%d tile %v nbr %d: adjacency %v, Neighbors %v",
						dim.w, dim.h, p, i, got, q)
				}
				e, ok := g.EdgeBetween(p, q)
				if !ok {
					t.Fatalf("%dx%d: EdgeBetween(%v,%v) not found", dim.w, dim.h, p, q)
				}
				if int(edges[i]) != e {
					t.Errorf("%dx%d tile %v nbr %v: adjacency edge %d, EdgeBetween %d",
						dim.w, dim.h, p, q, edges[i], e)
				}
			}
		}
	}
}

// TestAdjacencySlicesAreReadOnlyViews: Adjacency returns full-capacity
// slices of the shared tables; appending must not clobber a neighbor's row.
func TestAdjacencySlicesAreReadOnlyViews(t *testing.T) {
	g := mustNew(t, 3, 3, nil, 1)
	nbrs, _ := g.Adjacency(0) // corner: degree 2, rows are 4 wide
	_ = append(nbrs, 99)      // must reallocate, not write into tile 1's row
	n1, _ := g.Adjacency(1)
	for i, v := range n1 {
		if v == 99 {
			t.Fatalf("append through Adjacency slice corrupted tile 1 row at %d", i)
		}
	}
}

// TestCloneSharesAdjacency: the tables depend only on grid dimensions, so
// Clone must alias them rather than rebuild (and must still agree).
func TestCloneSharesAdjacency(t *testing.T) {
	g := mustNew(t, 6, 4, nil, 2)
	c := g.Clone()
	for v := 0; v < g.NumTiles(); v++ {
		gn, ge := g.Adjacency(v)
		cn, ce := c.Adjacency(v)
		if len(gn) != len(cn) {
			t.Fatalf("tile %d: clone degree %d != %d", v, len(cn), len(gn))
		}
		for i := range gn {
			if gn[i] != cn[i] || ge[i] != ce[i] {
				t.Fatalf("tile %d entry %d: clone adjacency diverges", v, i)
			}
		}
	}
}

// TestNewRejectsOverflowGrid: the int32 adjacency tables require the tile
// count to fit in int32; New must refuse anything larger up front.
func TestNewRejectsOverflowGrid(t *testing.T) {
	if _, err := New(math.MaxInt32, 2, nil, 1); err == nil {
		t.Fatal("New accepted a grid with more than MaxInt32 tiles")
	}
}
