package slew

import (
	"math"
	"testing"

	"repro/internal/bufferdp"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/tech"
)

func pathTree(n int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x < n; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: n - 1}})
	if err != nil {
		panic(err)
	}
	return t
}

func eval(t *testing.T) Evaluator {
	t.Helper()
	e, err := NewEvaluator(tech.Default018(), 600)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func trunkAt(vs ...int) []delay.Placed {
	var out []delay.Placed
	for _, v := range vs {
		out = append(out, delay.Placed{
			Buf:  bufferdp.Buffer{Node: v, Branch: -1},
			Gate: tech.Default018().Buffer,
		})
	}
	return out
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(tech.Tech{}, 600); err == nil {
		t.Error("invalid tech accepted")
	}
	if _, err := NewEvaluator(tech.Default018(), 0); err == nil {
		t.Error("zero tile accepted")
	}
}

func TestLineSlewMonotone(t *testing.T) {
	e := eval(t)
	prev := 0.0
	for k := 1; k <= 20; k++ {
		s := e.LineSlew(k)
		if s <= prev {
			t.Fatalf("LineSlew not increasing at k=%d", k)
		}
		prev = s
	}
}

func TestMaxSlewMatchesLineSlewOnUnbufferedLine(t *testing.T) {
	e := eval(t)
	// A k-edge unbuffered line driven by the driver (Rd == buffer OutRes in
	// this technology) terminated by one sink is exactly LineSlew(k).
	for _, k := range []int{1, 3, 8} {
		rt := pathTree(k + 1)
		got, err := e.MaxSlew(rt, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := e.LineSlew(k)
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("k=%d: MaxSlew %.4g != LineSlew %.4g", k, got, want)
		}
	}
}

func TestBuffersReduceSlew(t *testing.T) {
	e := eval(t)
	rt := pathTree(21)
	unbuf, err := e.MaxSlew(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := e.MaxSlew(rt, trunkAt(5, 10, 15))
	if err != nil {
		t.Fatal(err)
	}
	if buf >= unbuf {
		t.Errorf("buffering did not reduce slew: %.4g -> %.4g", unbuf, buf)
	}
}

func TestDeriveLRoundTrips(t *testing.T) {
	e := eval(t)
	for _, target := range []float64{100e-12, 250e-12, 500e-12} {
		l := e.DeriveL(target)
		if l < 1 {
			t.Fatalf("DeriveL returned %d", l)
		}
		if e.LineSlew(l) > target && l > 1 {
			t.Errorf("target %.3g: L=%d already violates", target, l)
		}
		if e.LineSlew(l+1) <= target {
			t.Errorf("target %.3g: L=%d not maximal", target, l)
		}
	}
	// Tighter targets give shorter constraints.
	if e.DeriveL(100e-12) > e.DeriveL(500e-12) {
		t.Error("DeriveL not monotone in target")
	}
}

func TestDeriveLMagnitudeMatchesPaperRule(t *testing.T) {
	// The paper's experiments use L in {5, 6} with ~0.6-0.9 mm tiles, i.e.
	// ~3-5 mm between repeaters in 0.18 um. A few-hundred-ps slew target
	// should land in that range.
	e := eval(t)
	l := e.DeriveL(400e-12)
	if l < 3 || l > 12 {
		t.Errorf("DeriveL(400ps) = %d tiles of 600um; expected a handful", l)
	}
}

func TestFeasiblePlanMeetsSlewTarget(t *testing.T) {
	// Run RABID on a small circuit whose L is derived from a slew target;
	// every net with a feasible (violation-free) assignment must meet the
	// target, since a line is the worst stage shape per unit length...
	// modulo multi-fanout stages, which carry extra load; allow a small
	// margin for those.
	const grid, tileUm = 12, 600.0
	e, err := NewEvaluator(tech.Default018(), tileUm)
	if err != nil {
		t.Fatal(err)
	}
	target := 400e-12
	L := e.DeriveL(target)
	c := &netlist.Circuit{
		Name: "slew", GridW: grid, GridH: grid, TileUm: tileUm,
		BufferSites: make([]int, grid*grid),
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 3
	}
	pin := func(x, y int) netlist.Pin {
		p := geom.FPt{X: (float64(x) + 0.5) * tileUm, Y: (float64(y) + 0.5) * tileUm}
		return netlist.Pin{Tile: geom.Pt{X: x, Y: y}, Pos: p}
	}
	c.Nets = []*netlist.Net{
		{ID: 0, Name: "a", L: L, Source: pin(0, 0), Sinks: []netlist.Pin{pin(11, 11)}},
		{ID: 1, Name: "b", L: L, Source: pin(11, 0), Sinks: []netlist.Pin{pin(0, 11)}},
		{ID: 2, Name: "c", L: L, Source: pin(0, 5), Sinks: []netlist.Pin{pin(11, 5)}},
	}
	res, err := core.Run(c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Nets {
		if !res.Assignments[i].Feasible() {
			continue
		}
		var placed []delay.Placed
		for _, b := range res.Assignments[i].Buffers {
			placed = append(placed, delay.Placed{Buf: b, Gate: tech.Default018().Buffer})
		}
		s, err := e.MaxSlew(res.Routes[i], placed)
		if err != nil {
			t.Fatal(err)
		}
		if s > target*1.3 {
			t.Errorf("net %d: slew %.3g exceeds target %.3g despite feasibility", i, s, target)
		}
	}
}

func TestMaxSlewValidation(t *testing.T) {
	e := eval(t)
	rt := pathTree(3)
	bad := []delay.Placed{{Buf: bufferdp.Buffer{Node: 99, Branch: -1}}}
	if _, err := e.MaxSlew(rt, bad); err == nil {
		t.Error("bad buffer node accepted")
	}
	bad = []delay.Placed{{Buf: bufferdp.Buffer{Node: 0, Branch: 2}}}
	if _, err := e.MaxSlew(rt, bad); err == nil {
		t.Error("bad branch accepted")
	}
}

func TestBranchBufferSlewRecorded(t *testing.T) {
	// Y-tree with a branch buffer: the buffer's input slew is the trunk
	// stage's slew at the branch node.
	parent := map[geom.Pt]geom.Pt{
		{X: 1, Y: 0}: {X: 0, Y: 0},
		{X: 2, Y: 0}: {X: 1, Y: 0},
		{X: 1, Y: 1}: {X: 1, Y: 0},
	}
	rt, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: 2, Y: 0}, {X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	branchNode := -1
	childNode := -1
	for v, tl := range rt.Tile {
		if tl == (geom.Pt{X: 1, Y: 0}) {
			branchNode = v
		}
		if tl == (geom.Pt{X: 1, Y: 1}) {
			childNode = v
		}
	}
	e := eval(t)
	placed := []delay.Placed{{
		Buf:  bufferdp.Buffer{Node: branchNode, Branch: childNode},
		Gate: tech.Default018().Buffer,
	}}
	s, err := e.MaxSlew(rt, placed)
	if err != nil {
		t.Fatal(err)
	}
	if !(s > 0) {
		t.Errorf("slew = %v", s)
	}
}
