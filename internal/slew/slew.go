// Package slew models signal slew (transition time) on buffered routed
// trees. The paper's length rule exists because of slew: "a maximum
// distance between buffers was derived based on the desired input slew
// rate, and this rule was used to guide global buffer insertion"
// (Section II, footnote on the IBM microprocessor). This package closes
// that loop: it evaluates the slew a buffering actually produces, and
// derives the tile length constraint L from a slew target so that the
// planning rule is grounded in the technology instead of hand-picked.
//
// Model: within one gate stage (driver or buffer to the next buffer inputs
// and sinks), the slew at a point is ln(9) times the stage-local Elmore
// delay to that point — the 10-90% transition of a single-pole step
// response. Buffers regenerate slew, so stages are independent; the
// reported figure is the worst slew seen at any buffer input or sink.
package slew

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/rtree"
	"repro/internal/tech"
)

// Ln9 converts a time constant to a 10-90% transition time.
var Ln9 = math.Log(9)

// Evaluator computes slews for routed trees on a tiling.
type Evaluator struct {
	Tech   tech.Tech
	TileUm float64
}

// NewEvaluator validates the inputs.
func NewEvaluator(t tech.Tech, tileUm float64) (Evaluator, error) {
	if err := t.Validate(); err != nil {
		return Evaluator{}, err
	}
	if tileUm <= 0 {
		return Evaluator{}, fmt.Errorf("slew: tile size %g must be positive", tileUm)
	}
	return Evaluator{Tech: t, TileUm: tileUm}, nil
}

// MaxSlew returns the worst 10-90% slew (seconds) at any buffer input or
// sink of the buffered tree.
func (e Evaluator) MaxSlew(rt *rtree.Tree, bufs []delay.Placed) (float64, error) {
	// Reuse the Elmore machinery by evaluating each stage separately: the
	// stage-local Elmore at a receiving pin is exactly the delay the
	// evaluator computes when the stage's gate is the driver. Rather than
	// re-deriving the recursion, we compute arrival times twice: once with
	// the real buffering and once with "free" buffers whose intrinsic
	// delay and output resistance are zero — the difference at any pin of
	// a given stage isolates... that is fragile; instead run a dedicated
	// stage-local recursion below.
	n := rt.NumNodes()
	trunk := make([]*tech.Gate, n)
	branch := map[[2]int]*tech.Gate{}
	for _, p := range bufs {
		g := p.Gate
		if p.Buf.Node < 0 || p.Buf.Node >= n {
			return 0, fmt.Errorf("slew: buffer node %d out of range", p.Buf.Node)
		}
		if p.Buf.Branch == -1 {
			trunk[p.Buf.Node] = &g
			continue
		}
		if p.Buf.Branch < 0 || p.Buf.Branch >= n || rt.Parent[p.Buf.Branch] != p.Buf.Node {
			return 0, fmt.Errorf("slew: buffer branch %d is not a child of %d", p.Buf.Branch, p.Buf.Node)
		}
		branch[[2]int{p.Buf.Node, p.Buf.Branch}] = &g
	}
	t := e.Tech
	wireR := t.WireRes(e.TileUm)
	wireC := t.WireCap(e.TileUm)

	junction := make([]float64, n)
	nodeLoad := func(v int) float64 {
		if g := trunk[v]; g != nil {
			return g.InCap
		}
		return junction[v]
	}
	for _, v := range rt.PostOrder() {
		c := float64(rt.SinksAt(v)) * t.SinkCap
		for _, w := range rt.Children(v) {
			if g := branch[[2]int{v, w}]; g != nil {
				c += g.InCap
			} else {
				c += wireC + nodeLoad(w)
			}
		}
		junction[v] = c
	}

	worst := 0.0
	record := func(tau float64) {
		if s := Ln9 * tau; s > worst {
			worst = s
		}
	}
	// descend walks one stage; tau is the stage-local Elmore time at the
	// current junction. enter handles crossing into node w, which may start
	// a new stage at a trunk buffer.
	var descend func(v int, tau float64)
	enter := func(w int, tw float64) {
		if g := trunk[w]; g != nil {
			record(tw) // slew at the trunk buffer's input
			descend(w, g.OutRes*junction[w])
			return
		}
		descend(w, tw)
	}
	descend = func(v int, tau float64) {
		if rt.SinksAt(v) > 0 {
			record(tau)
		}
		for _, w := range rt.Children(v) {
			if g := branch[[2]int{v, w}]; g != nil {
				record(tau) // the branch buffer's input sits here
				t0 := g.OutRes * (wireC + nodeLoad(w))
				enter(w, t0+wireR*(wireC/2+nodeLoad(w)))
				continue
			}
			enter(w, tau+wireR*(wireC/2+nodeLoad(w)))
		}
	}
	if g := trunk[0]; g != nil {
		record(t.DriverRes * g.InCap)
		descend(0, g.OutRes*junction[0])
	} else {
		descend(0, t.DriverRes*junction[0])
	}
	return worst, nil
}

// LineSlew returns the slew at the end of a single stage driving a straight
// line of k tiles terminated by one sink load — the worst-case shape for a
// given total stage wirelength.
func (e Evaluator) LineSlew(k int) float64 {
	t := e.Tech
	wireR := t.WireRes(e.TileUm)
	wireC := t.WireCap(e.TileUm)
	ctot := float64(k)*wireC + t.SinkCap
	tau := t.Buffer.OutRes * ctot
	cdown := ctot
	for i := 0; i < k; i++ {
		cdown -= wireC
		tau += wireR * (wireC/2 + cdown)
	}
	return Ln9 * tau
}

// DeriveL returns the largest tile length constraint L whose worst-case
// stage (a straight L-tile line) still meets the slew target, the paper's
// rule-of-thumb derivation. It returns at least 1.
func (e Evaluator) DeriveL(target float64) int {
	l := 1
	for e.LineSlew(l+1) <= target && l < 1<<20 {
		l++
	}
	return l
}
