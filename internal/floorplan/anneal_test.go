package floorplan

import "testing"

func TestAnnealedGeneration(t *testing.T) {
	spec, err := BySuiteName("ami33")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Generate(spec, Options{Annealed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != spec.Cells {
		t.Fatalf("%d blocks", len(c.Blocks))
	}
	// Annealed blocks are disjoint and inside the chip.
	for i, b := range c.Blocks {
		if !b.Valid() || b.Area() <= 0 {
			t.Fatalf("block %d invalid", i)
		}
		if b.Lo.X < -1e-6 || b.Lo.Y < -1e-6 || b.Hi.X > c.ChipW()+1e-6 || b.Hi.Y > c.ChipH()+1e-6 {
			t.Fatalf("block %d outside chip: %+v", i, b)
		}
		for j := i + 1; j < len(c.Blocks); j++ {
			if b.Intersects(c.Blocks[j]) {
				t.Fatalf("blocks %d,%d overlap", i, j)
			}
		}
	}
	if len(c.Nets) != spec.Nets || c.TotalSinks() != spec.Sinks {
		t.Error("annealed generation changed net statistics")
	}
	// Deterministic.
	c2, err := Generate(spec, Options{Annealed: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Blocks {
		if c.Blocks[i] != c2.Blocks[i] {
			t.Fatal("annealed generation not deterministic")
		}
	}
}
