// Package floorplan generates the synthetic benchmark circuits used by the
// experiments. The paper evaluates on six CBL/MCNC floorplans (apte, xerox,
// hp, ami33, ami49, playout) and four random circuits (ac3, xc5, hc7, a9c3)
// obtained from the authors of the BBP work; those inputs are not
// distributable, so this package clones their published Table I statistics
// exactly — block, net, pad and sink counts, grid, tile area, length
// constraint, and buffer-site budget — over a deterministic, seeded
// construction (see DESIGN.md, substitutions).
//
// Construction: the chip is guillotine-partitioned into the given number of
// macro blocks separated by routing channels; pads sit on the chip
// boundary; nets connect randomly chosen block/pad terminals with pin
// positions on block perimeters; buffer sites are scattered uniformly over
// all tiles outside a random blocked square region (the paper's "nine by
// nine cache-like object" at the base 30-tile grid, scaled with the grid).
package floorplan

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// BufferSiteAreaUm2 is the silicon area of one buffer site. The value is
// reverse-engineered from Table I's "% chip area" column, which is
// consistent with ~400 um^2 per site across all ten circuits.
const BufferSiteAreaUm2 = 400.0

// Spec describes one benchmark circuit with the paper's Table I statistics.
type Spec struct {
	Name   string
	Cells  int // macro blocks
	Nets   int
	Pads   int
	Sinks  int
	GridW  int     // tiles in x at the base tiling
	GridH  int     // tiles in y at the base tiling
	TileMm float64 // base tile area in mm^2
	L      int     // tile length constraint L_i
	Sites  int     // total buffer sites
	Seed   int64
}

// TileUm returns the base tile side length in micrometers.
func (s Spec) TileUm() float64 { return math.Sqrt(s.TileMm) * 1000 }

// ChipWUm and ChipHUm return the fixed chip dimensions in micrometers.
func (s Spec) ChipWUm() float64 { return float64(s.GridW) * s.TileUm() }

// ChipHUm returns the chip height in micrometers.
func (s Spec) ChipHUm() float64 { return float64(s.GridH) * s.TileUm() }

// SitePercentOfChip returns the percentage of chip area occupied by the
// buffer sites (the last column of Table I).
func (s Spec) SitePercentOfChip() float64 {
	return float64(s.Sites) * BufferSiteAreaUm2 / (s.ChipWUm() * s.ChipHUm()) * 100
}

// Suite returns the ten benchmark circuits of Table I. The first six mirror
// the CBL/MCNC floorplans, the last four the random circuits of [8].
func Suite() []Spec {
	return []Spec{
		{Name: "apte", Cells: 9, Nets: 77, Pads: 73, Sinks: 141, GridW: 30, GridH: 33, TileMm: 0.36, L: 6, Sites: 1200, Seed: 101},
		{Name: "xerox", Cells: 10, Nets: 171, Pads: 2, Sinks: 390, GridW: 30, GridH: 30, TileMm: 0.35, L: 5, Sites: 3000, Seed: 102},
		{Name: "hp", Cells: 11, Nets: 68, Pads: 45, Sinks: 187, GridW: 30, GridH: 30, TileMm: 0.42, L: 6, Sites: 2350, Seed: 103},
		{Name: "ami33", Cells: 33, Nets: 112, Pads: 43, Sinks: 324, GridW: 33, GridH: 30, TileMm: 0.46, L: 5, Sites: 2750, Seed: 104},
		{Name: "ami49", Cells: 49, Nets: 368, Pads: 22, Sinks: 493, GridW: 30, GridH: 30, TileMm: 0.67, L: 5, Sites: 11450, Seed: 105},
		{Name: "playout", Cells: 62, Nets: 1294, Pads: 192, Sinks: 1663, GridW: 33, GridH: 30, TileMm: 0.75, L: 6, Sites: 27550, Seed: 106},
		{Name: "ac3", Cells: 27, Nets: 200, Pads: 75, Sinks: 409, GridW: 30, GridH: 30, TileMm: 0.49, L: 6, Sites: 3550, Seed: 107},
		{Name: "xc5", Cells: 50, Nets: 975, Pads: 2, Sinks: 2149, GridW: 30, GridH: 30, TileMm: 0.54, L: 6, Sites: 13550, Seed: 108},
		{Name: "hc7", Cells: 77, Nets: 430, Pads: 51, Sinks: 1318, GridW: 30, GridH: 30, TileMm: 1.04, L: 5, Sites: 7780, Seed: 109},
		{Name: "a9c3", Cells: 147, Nets: 1148, Pads: 22, Sinks: 1526, GridW: 30, GridH: 30, TileMm: 1.08, L: 5, Sites: 12780, Seed: 110},
	}
}

// BySuiteName returns the suite spec with the given name.
func BySuiteName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("floorplan: unknown benchmark %q", name)
}

// Options override parts of a Spec for the variation experiments.
type Options struct {
	// GridW/GridH override the tiling (Table IV). The chip area is fixed by
	// the spec; the tile size rescales. Zero keeps the base grid.
	GridW, GridH int
	// Sites overrides the buffer-site budget (Table III). Zero keeps the
	// spec's budget.
	Sites int
	// Seed overrides the spec seed. Zero keeps it.
	Seed int64
	// NoBlockedRegion disables the cache-like zero-site region.
	NoBlockedRegion bool
	// Annealed places the macro blocks with the slicing simulated annealer
	// (wirelength-aware, like the Monte Carlo annealing that produced the
	// paper's floorplans) instead of guillotine packing.
	Annealed bool
}

// Generate builds the circuit for a spec. The construction is fully
// deterministic for a given (spec, options) pair.
func Generate(spec Spec, opt Options) (*netlist.Circuit, error) {
	if spec.Cells < 1 || spec.Nets < 1 || spec.Sinks < spec.Nets {
		return nil, fmt.Errorf("floorplan: %s: degenerate spec", spec.Name)
	}
	gridW, gridH := spec.GridW, spec.GridH
	if opt.GridW > 0 {
		gridW = opt.GridW
	}
	if opt.GridH > 0 {
		gridH = opt.GridH
	}
	if gridW < 2 || gridH < 2 {
		return nil, fmt.Errorf("floorplan: %s: grid %dx%d too small", spec.Name, gridW, gridH)
	}
	sites := spec.Sites
	if opt.Sites > 0 {
		sites = opt.Sites
	}
	seed := spec.Seed
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	// The chip is fixed; an overridden grid rescales the tiles. The paper's
	// Table IV grids keep the chip aspect ratio, so tiles stay square.
	tileUm := spec.ChipWUm() / float64(gridW)
	if hUm := spec.ChipHUm() / float64(gridH); math.Abs(hUm-tileUm) > 0.01*tileUm {
		return nil, fmt.Errorf("floorplan: %s: grid %dx%d does not preserve the chip aspect ratio",
			spec.Name, gridW, gridH)
	}
	// The length constraint is physical (a slew rule of thumb in
	// millimeters); when the tiling is refined or coarsened, L_i scales so
	// that L_i * tile stays constant — Section IV-B: "a finer tiling means
	// one can design a length constraint that is more appropriate".
	spec.L = geom.Max(1, int(math.Round(float64(spec.L)*float64(gridW)/float64(spec.GridW))))
	rng := rand.New(rand.NewSource(seed))
	c := &netlist.Circuit{
		Name:    spec.Name,
		GridW:   gridW,
		GridH:   gridH,
		TileUm:  tileUm,
		NumPads: spec.Pads,
	}
	chip := geom.Rect{Hi: geom.FPt{X: spec.ChipWUm(), Y: spec.ChipHUm()}}
	// Abstract net connectivity first (terminal t < Cells is a block, t >=
	// Cells is pad t-Cells), so the annealed placement can see it.
	terms := assignTerminals(rng, spec)
	if opt.Annealed {
		blocks, err := annealBlocks(rng, chip, spec, terms)
		if err != nil {
			return nil, err
		}
		c.Blocks = blocks
	} else {
		c.Blocks = packBlocks(rng, chip, spec.Cells)
	}
	pads := placePads(rng, chip, spec.Pads)
	realizeNets(rng, c, spec, terms, pads)
	scatterSites(rng, c, sites, !opt.NoBlockedRegion)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: %s: generated circuit invalid: %w", spec.Name, err)
	}
	return c, nil
}

// packBlocks guillotine-partitions the chip into n block rectangles and
// shrinks each to leave routing channels.
func packBlocks(rng *rand.Rand, chip geom.Rect, n int) []geom.Rect {
	rects := []geom.Rect{chip}
	for len(rects) < n {
		// Split the largest rect.
		bi := 0
		for i, r := range rects {
			if r.Area() > rects[bi].Area() {
				bi = i
			}
		}
		r := rects[bi]
		ratio := 0.35 + 0.3*rng.Float64()
		var a, b geom.Rect
		if r.W() >= r.H() {
			cut := r.Lo.X + r.W()*ratio
			a = geom.Rect{Lo: r.Lo, Hi: geom.FPt{X: cut, Y: r.Hi.Y}}
			b = geom.Rect{Lo: geom.FPt{X: cut, Y: r.Lo.Y}, Hi: r.Hi}
		} else {
			cut := r.Lo.Y + r.H()*ratio
			a = geom.Rect{Lo: r.Lo, Hi: geom.FPt{X: r.Hi.X, Y: cut}}
			b = geom.Rect{Lo: geom.FPt{X: r.Lo.X, Y: cut}, Hi: r.Hi}
		}
		rects[bi] = a
		rects = append(rects, b)
	}
	// Shrink for channels: 3% of the smaller dimension on each side.
	out := make([]geom.Rect, len(rects))
	for i, r := range rects {
		m := 0.03 * math.Min(r.W(), r.H())
		out[i] = geom.Rect{
			Lo: geom.FPt{X: r.Lo.X + m, Y: r.Lo.Y + m},
			Hi: geom.FPt{X: r.Hi.X - m, Y: r.Hi.Y - m},
		}
	}
	return out
}

// placePads distributes pad locations around the chip boundary.
func placePads(rng *rand.Rand, chip geom.Rect, n int) []geom.FPt {
	pads := make([]geom.FPt, n)
	per := 2 * (chip.W() + chip.H())
	for i := range pads {
		// Even spacing with jitter, walking the perimeter.
		d := (float64(i) + 0.3 + 0.4*rng.Float64()) / float64(n) * per
		pads[i] = perimeterPoint(chip, d)
	}
	return pads
}

// perimeterPoint maps a distance along the boundary (from the lower-left
// corner, counterclockwise) to a point.
func perimeterPoint(chip geom.Rect, d float64) geom.FPt {
	w, h := chip.W(), chip.H()
	d = math.Mod(d, 2*(w+h))
	switch {
	case d < w:
		return geom.FPt{X: chip.Lo.X + d, Y: chip.Lo.Y}
	case d < w+h:
		return geom.FPt{X: chip.Hi.X, Y: chip.Lo.Y + (d - w)}
	case d < 2*w+h:
		return geom.FPt{X: chip.Hi.X - (d - w - h), Y: chip.Hi.Y}
	default:
		return geom.FPt{X: chip.Lo.X, Y: chip.Lo.Y + (2*w + h + h - d)}
	}
}

// blockPin returns a random point on the block's perimeter.
func blockPin(rng *rand.Rand, b geom.Rect) geom.FPt {
	per := 2 * (b.W() + b.H())
	return perimeterPoint(b, rng.Float64()*per)
}

// assignTerminals chooses, per net, the terminal list: index 0 is the
// source; terminals below spec.Cells are blocks, the rest pads. Sink
// counts are distributed so the totals match the spec exactly.
func assignTerminals(rng *rand.Rand, spec Spec) [][]int {
	counts := make([]int, spec.Nets)
	for i := range counts {
		counts[i] = 1
	}
	for extra := spec.Sinks - spec.Nets; extra > 0; extra-- {
		counts[rng.Intn(spec.Nets)]++
	}
	terms := make([][]int, spec.Nets)
	for i := range terms {
		list := make([]int, counts[i]+1)
		for k := range list {
			list[k] = rng.Intn(spec.Cells + spec.Pads)
		}
		terms[i] = list
	}
	return terms
}

// annealBlocks places the macro blocks with the slicing annealer using the
// nets' block-level connectivity, then fits the result into the chip and
// shrinks each block to leave channels.
func annealBlocks(rng *rand.Rand, chip geom.Rect, spec Spec, terms [][]int) ([]geom.Rect, error) {
	// Random block areas summing to ~72% of the chip (the paper's point
	// that designs are placed below 100% density).
	weights := make([]float64, spec.Cells)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		sum += weights[i]
	}
	blocks := make([]anneal.Block, spec.Cells)
	budget := 0.72 * chip.Area()
	for i, w := range weights {
		blocks[i] = anneal.Block{Area: budget * w / sum}
	}
	var nets []anneal.Net
	for _, list := range terms {
		var net anneal.Net
		seen := map[int]bool{}
		for _, t := range list {
			if t < spec.Cells && !seen[t] {
				seen[t] = true
				net = append(net, t)
			}
		}
		if len(net) >= 2 {
			nets = append(nets, net)
		}
	}
	res, err := anneal.Floorplan(blocks, nets, anneal.Options{
		Seed:  rng.Int63(),
		Moves: 8000 + 400*spec.Cells,
	})
	if err != nil {
		return nil, err
	}
	// Fit the annealed bounding box into the chip and leave channels.
	sx := chip.W() / res.W
	sy := chip.H() / res.H
	out := make([]geom.Rect, len(res.Rects))
	for i, r := range res.Rects {
		fitted := geom.Rect{
			Lo: geom.FPt{X: r.Lo.X * sx, Y: r.Lo.Y * sy},
			Hi: geom.FPt{X: r.Hi.X * sx, Y: r.Hi.Y * sy},
		}
		m := 0.03 * math.Min(fitted.W(), fitted.H())
		out[i] = geom.Rect{
			Lo: geom.FPt{X: fitted.Lo.X + m, Y: fitted.Lo.Y + m},
			Hi: geom.FPt{X: fitted.Hi.X - m, Y: fitted.Hi.Y - m},
		}
	}
	return out, nil
}

// realizeNets turns the abstract terminal lists into pins on block
// perimeters and pads.
func realizeNets(rng *rand.Rand, c *netlist.Circuit, spec Spec, terms [][]int, pads []geom.FPt) {
	terminal := func(t int) geom.FPt {
		if t < len(c.Blocks) {
			return blockPin(rng, c.Blocks[t])
		}
		return pads[t-len(c.Blocks)]
	}
	mkPin := func(p geom.FPt) netlist.Pin {
		// Keep positions strictly inside the chip so tiles are exact.
		p.X = math.Min(math.Max(p.X, 0), c.ChipW()-1e-6)
		p.Y = math.Min(math.Max(p.Y, 0), c.ChipH()-1e-6)
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i, list := range terms {
		n := &netlist.Net{
			ID:     i,
			Name:   fmt.Sprintf("%s_n%d", spec.Name, i),
			Source: mkPin(terminal(list[0])),
			L:      spec.L,
		}
		for _, t := range list[1:] {
			n.Sinks = append(n.Sinks, mkPin(terminal(t)))
		}
		c.Nets = append(c.Nets, n)
	}
}

// scatterSites distributes the buffer-site budget uniformly over the tiles
// outside the blocked region. The blocked square scales with the grid: 9x9
// at the paper's base 30-tile short side.
func scatterSites(rng *rand.Rand, c *netlist.Circuit, total int, blocked bool) {
	c.BufferSites = make([]int, c.NumTiles())
	eligible := make([]bool, c.NumTiles())
	for i := range eligible {
		eligible[i] = true
	}
	if blocked {
		short := geom.Min(c.GridW, c.GridH)
		side := int(math.Round(0.3 * float64(short)))
		if side < 1 {
			side = 1
		}
		bx := rng.Intn(c.GridW - side + 1)
		by := rng.Intn(c.GridH - side + 1)
		for y := by; y < by+side; y++ {
			for x := bx; x < bx+side; x++ {
				eligible[y*c.GridW+x] = false
			}
		}
	}
	var pool []int
	for i, ok := range eligible {
		if ok {
			pool = append(pool, i)
		}
	}
	for k := 0; k < total; k++ {
		c.BufferSites[pool[rng.Intn(len(pool))]]++
	}
}
