package floorplan

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSuiteMatchesTableI(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d circuits, want 10", len(suite))
	}
	names := []string{"apte", "xerox", "hp", "ami33", "ami49", "playout", "ac3", "xc5", "hc7", "a9c3"}
	for i, want := range names {
		if suite[i].Name != want {
			t.Errorf("suite[%d] = %s, want %s", i, suite[i].Name, want)
		}
	}
	// Spot checks against Table I.
	apte := suite[0]
	if apte.Cells != 9 || apte.Nets != 77 || apte.Pads != 73 || apte.Sinks != 141 {
		t.Errorf("apte stats wrong: %+v", apte)
	}
	if apte.GridW != 30 || apte.GridH != 33 || apte.L != 6 || apte.Sites != 1200 {
		t.Errorf("apte params wrong: %+v", apte)
	}
	if math.Abs(apte.TileUm()-600) > 1e-9 {
		t.Errorf("apte tile side = %v um, want 600", apte.TileUm())
	}
	// The %chip column of Table I: apte 0.13, xerox 0.38, playout 1.47.
	checks := map[string]float64{"apte": 0.13, "xerox": 0.38, "playout": 1.47, "xc5": 1.11}
	for _, s := range suite {
		if want, ok := checks[s.Name]; ok {
			if got := s.SitePercentOfChip(); math.Abs(got-want) > 0.02 {
				t.Errorf("%s site area %% = %.3f, want ~%.2f", s.Name, got, want)
			}
		}
	}
}

func TestBySuiteName(t *testing.T) {
	s, err := BySuiteName("ami49")
	if err != nil || s.Cells != 49 {
		t.Errorf("BySuiteName(ami49) = %+v, %v", s, err)
	}
	if _, err := BySuiteName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	for _, spec := range Suite()[:4] {
		c, err := Generate(spec, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(c.Nets) != spec.Nets {
			t.Errorf("%s: %d nets, want %d", spec.Name, len(c.Nets), spec.Nets)
		}
		if got := c.TotalSinks(); got != spec.Sinks {
			t.Errorf("%s: %d sinks, want %d", spec.Name, got, spec.Sinks)
		}
		if got := c.TotalBufferSites(); got != spec.Sites {
			t.Errorf("%s: %d sites, want %d", spec.Name, got, spec.Sites)
		}
		if len(c.Blocks) != spec.Cells {
			t.Errorf("%s: %d blocks, want %d", spec.Name, len(c.Blocks), spec.Cells)
		}
		if c.GridW != spec.GridW || c.GridH != spec.GridH {
			t.Errorf("%s: grid %dx%d", spec.Name, c.GridW, c.GridH)
		}
		for _, n := range c.Nets {
			if n.L != spec.L {
				t.Errorf("%s: net %d has L=%d", spec.Name, n.ID, n.L)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Suite()[0]
	a, err := Generate(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nets) != len(b.Nets) {
		t.Fatal("net counts differ")
	}
	for i := range a.Nets {
		if a.Nets[i].Source.Tile != b.Nets[i].Source.Tile {
			t.Fatalf("net %d source differs", i)
		}
	}
	for i := range a.BufferSites {
		if a.BufferSites[i] != b.BufferSites[i] {
			t.Fatal("buffer sites differ")
		}
	}
	// A different seed changes the instance.
	c2, err := Generate(spec, Options{Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.BufferSites {
		if a.BufferSites[i] != c2.BufferSites[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced identical site distribution")
	}
}

func TestBlockedRegionAtBaseGrid(t *testing.T) {
	spec := Suite()[1] // xerox, 30x30
	c, err := Generate(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, b := range c.BufferSites {
		if b == 0 {
			zero++
		}
	}
	// At least the 81 blocked tiles are empty (random scatter can leave a
	// few more empty).
	if zero < 81 {
		t.Errorf("only %d zero-site tiles, want >= 81", zero)
	}
	// Verify a contiguous 9x9 all-zero square exists.
	found := false
	for by := 0; by+9 <= c.GridH && !found; by++ {
		for bx := 0; bx+9 <= c.GridW && !found; bx++ {
			ok := true
			for y := by; y < by+9 && ok; y++ {
				for x := bx; x < bx+9; x++ {
					if c.BufferSites[y*c.GridW+x] != 0 {
						ok = false
						break
					}
				}
			}
			found = ok
		}
	}
	if !found {
		t.Error("no 9x9 blocked region found")
	}
	// Without the blocked region, far fewer zero tiles.
	c2, err := Generate(spec, Options{NoBlockedRegion: true})
	if err != nil {
		t.Fatal(err)
	}
	zero2 := 0
	for _, b := range c2.BufferSites {
		if b == 0 {
			zero2++
		}
	}
	if zero2 >= zero {
		t.Errorf("NoBlockedRegion did not reduce empty tiles (%d vs %d)", zero2, zero)
	}
}

func TestGridOverrideKeepsChip(t *testing.T) {
	spec := Suite()[0] // apte 30x33
	for _, g := range [][2]int{{10, 11}, {20, 22}, {40, 44}, {50, 55}} {
		c, err := Generate(spec, Options{GridW: g[0], GridH: g[1]})
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		if math.Abs(c.ChipW()-spec.ChipWUm()) > 1 || math.Abs(c.ChipH()-spec.ChipHUm()) > 1 {
			t.Errorf("grid %v: chip %vx%v changed", g, c.ChipW(), c.ChipH())
		}
		if got := c.TotalBufferSites(); got != spec.Sites {
			t.Errorf("grid %v: sites %d", g, got)
		}
	}
	// Non-proportional grid must be rejected.
	if _, err := Generate(spec, Options{GridW: 10, GridH: 30}); err == nil {
		t.Error("aspect-breaking grid accepted")
	}
}

func TestSiteOverride(t *testing.T) {
	spec := Suite()[0]
	c, err := Generate(spec, Options{Sites: 280})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBufferSites() != 280 {
		t.Errorf("sites = %d, want 280", c.TotalBufferSites())
	}
}

func TestBlocksInsideChipAndDisjoint(t *testing.T) {
	spec := Suite()[4] // ami49
	c, err := Generate(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chip := geom.Rect{Hi: geom.FPt{X: c.ChipW(), Y: c.ChipH()}}
	for i, b := range c.Blocks {
		if !b.Valid() || b.Area() <= 0 {
			t.Errorf("block %d invalid: %+v", i, b)
		}
		if b.Lo.X < chip.Lo.X-1e-9 || b.Hi.X > chip.Hi.X+1e-9 ||
			b.Lo.Y < chip.Lo.Y-1e-9 || b.Hi.Y > chip.Hi.Y+1e-9 {
			t.Errorf("block %d outside chip", i)
		}
		for j := i + 1; j < len(c.Blocks); j++ {
			if b.Intersects(c.Blocks[j]) {
				t.Errorf("blocks %d and %d overlap", i, j)
			}
		}
	}
}

func TestPerimeterPointRoundTrip(t *testing.T) {
	chip := geom.Rect{Hi: geom.FPt{X: 100, Y: 50}}
	per := 2 * (chip.W() + chip.H())
	for i := 0; i < 100; i++ {
		p := perimeterPoint(chip, per*float64(i)/100)
		onEdge := p.X == chip.Lo.X || p.X == chip.Hi.X || p.Y == chip.Lo.Y || p.Y == chip.Hi.Y
		if !onEdge {
			t.Fatalf("point %v not on boundary", p)
		}
	}
}

func TestGenerateRejectsDegenerate(t *testing.T) {
	bad := Spec{Name: "bad", Cells: 0, Nets: 1, Sinks: 1, GridW: 10, GridH: 10, TileMm: 0.5, L: 3, Sites: 10}
	if _, err := Generate(bad, Options{}); err == nil {
		t.Error("degenerate spec accepted")
	}
	bad2 := Spec{Name: "bad2", Cells: 2, Nets: 10, Sinks: 5, GridW: 10, GridH: 10, TileMm: 0.5, L: 3, Sites: 10}
	if _, err := Generate(bad2, Options{}); err == nil {
		t.Error("sinks < nets accepted")
	}
}
