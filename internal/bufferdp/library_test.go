package bufferdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// singleLib is the degenerate library that must reproduce the single-type
// DP exactly: one non-inverting buffer with the driver's constraint.
func singleLib(L int) []LibGate {
	return []LibGate{{L: L, CostScale: 1}}
}

// randomLib draws 1-3 library gates with small length constraints, mixed
// cost scales, and a coin-flip inverting flag.
func randomLib(r *rand.Rand) []LibGate {
	lib := make([]LibGate, 1+r.Intn(3))
	for i := range lib {
		lib[i] = LibGate{
			L:         1 + r.Intn(4),
			CostScale: 0.5 + r.Float64()*1.5,
			Invert:    r.Intn(2) == 0,
		}
	}
	return lib
}

// TestAssignLibSingleTypeEquivalence pins the reduction property: with a
// one-buffer library matching the driver constraint, AssignLib runs the
// same transitions in the same order as AssignCounted, so costs,
// violations, and the recovered buffer list must all agree.
func TestAssignLibSingleTypeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := randomTree(r, 2+r.Intn(7))
		L := 1 + r.Intn(5)
		qs := make([]float64, rt.NumNodes())
		for i := range qs {
			switch r.Intn(4) {
			case 0:
				qs[i] = -1 // +Inf
			default:
				qs[i] = 0.1 + r.Float64()*5
			}
		}
		q := qFromSlice(qs)
		want, err := Assign(rt, L, q)
		if err != nil {
			return false
		}
		got, err := AssignLib(rt, L, singleLib(L), q, nil)
		if err != nil {
			return false
		}
		if math.Abs(got.Cost-want.Cost) > 1e-12 || got.Violations != want.Violations {
			return false
		}
		if len(got.Buffers) != len(want.Buffers) || len(got.Gates) != len(got.Buffers) {
			return false
		}
		for i := range got.Buffers {
			if got.Buffers[i] != want.Buffers[i] || got.Gates[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLibDPMatchesBruteForce is the multi-type optimality property: on
// small random trees and random libraries (inverters included), the DP
// must agree with the exhaustive checker on feasibility and, when
// feasible, on the minimum cost — inverter polarity legality included.
func TestLibDPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := randomTree(r, 2+r.Intn(4)) // <= 5 nodes: enumeration stays cheap
		L := 1 + r.Intn(4)
		lib := randomLib(r)
		qs := make([]float64, rt.NumNodes())
		for i := range qs {
			switch r.Intn(4) {
			case 0:
				qs[i] = -1 // +Inf
			default:
				qs[i] = 0.1 + r.Float64()*5
			}
		}
		q := qFromSlice(qs)
		a, err := AssignLib(rt, L, lib, q, nil)
		if err != nil {
			return false
		}
		want, feasible := bruteForceLib(rt, L, lib, q)
		if !feasible {
			return !a.Feasible()
		}
		if !a.Feasible() {
			return false
		}
		// Cross-check the reported cost against the gates actually chosen.
		sum := 0.0
		for i, b := range a.Buffers {
			sum += q(b.Node) * lib[a.Gates[i]].CostScale
		}
		if math.Abs(sum-a.Cost) > 1e-9 {
			return false
		}
		return math.Abs(a.Cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLibDPPathsMatchBruteForce runs deeper paths than the quick test, the
// shape where length-constraint interactions between gate types bite.
func TestLibDPPathsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(4)
		rt := pathTree(n)
		L := 1 + r.Intn(4)
		lib := randomLib(r)
		qs := make([]float64, n)
		for i := range qs {
			if r.Intn(5) == 0 {
				qs[i] = -1
			} else {
				qs[i] = 0.1 + r.Float64()*3
			}
		}
		q := qFromSlice(qs)
		a, err := AssignLib(rt, L, lib, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForceLib(rt, L, lib, q)
		if feasible != a.Feasible() {
			t.Fatalf("trial %d: feasibility mismatch (brute %v, dp %v) n=%d L=%d lib=%+v q=%v",
				trial, feasible, a.Feasible(), n, L, lib, qs)
		}
		if feasible && math.Abs(a.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: cost %v != brute %v (n=%d L=%d lib=%+v q=%v)",
				trial, a.Cost, want, n, L, lib, qs)
		}
	}
}

// TestInverterPolarityLegality exercises the parity rule directly: with an
// inverter-only library, gates must come in pairs on the driver-to-sink
// chain even when a single gate would satisfy the length rule.
func TestInverterPolarityLegality(t *testing.T) {
	rt := pathTree(7) // 6 edges: driver covers 3, a gate must cover the rest
	q := func(v int) float64 { return 1.0 }
	inv := LibGate{L: 3, CostScale: 1, Invert: true}

	a, err := AssignLib(rt, 3, []LibGate{inv}, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() {
		t.Fatalf("inverter pair must be feasible: %+v", a)
	}
	if len(a.Buffers)%2 != 0 || len(a.Buffers) == 0 {
		t.Errorf("inverter-only library placed %d gates; pairs required: %+v", len(a.Buffers), a.Buffers)
	}
	if math.Abs(a.Cost-2.0) > 1e-12 {
		t.Errorf("cost = %v, want 2.0 (two unit-cost inverters)", a.Cost)
	}

	// A lone buffer beats the pair when cheaper than two inverters...
	buf := LibGate{L: 3, CostScale: 1.9}
	a, err = AssignLib(rt, 3, []LibGate{inv, buf}, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Buffers) != 1 || a.Gates[0] != 1 || math.Abs(a.Cost-1.9) > 1e-12 {
		t.Errorf("want single 1.9-cost buffer, got %+v", a)
	}
	// ...and loses when it costs more than the pair.
	buf.CostScale = 2.1
	a, err = AssignLib(rt, 3, []LibGate{inv, buf}, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Buffers) != 2 || math.Abs(a.Cost-2.0) > 1e-12 {
		t.Errorf("want inverter pair at cost 2.0, got %+v", a)
	}
}

// TestLibLongerDriveGate checks that a gate out-driving the base buffer is
// actually used: a path too long for the 1x buffer chain becomes feasible
// when the library adds a stronger gate with a larger length constraint.
func TestLibLongerDriveGate(t *testing.T) {
	// 8 edges; driver L=2; sites only at node 2. A 1x gate (L=2) at node 2
	// leaves 6 unbuffered edges -> infeasible. A strong gate with L=6
	// covers them.
	rt := pathTree(9)
	q := func(v int) float64 {
		if v == 2 {
			return 1.0
		}
		return math.Inf(1)
	}
	weak := LibGate{L: 2, CostScale: 1}
	a, err := AssignLib(rt, 2, []LibGate{weak}, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible() {
		t.Fatalf("weak-only library cannot cover 6 trailing edges: %+v", a)
	}
	strong := LibGate{L: 6, CostScale: 2.5}
	a, err = AssignLib(rt, 2, []LibGate{weak, strong}, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() || len(a.Buffers) != 1 || a.Gates[0] != 1 {
		t.Fatalf("want the strong gate at node 2, got %+v", a)
	}
	if math.Abs(a.Cost-2.5) > 1e-12 {
		t.Errorf("cost = %v, want 2.5", a.Cost)
	}
}

// TestAssignLibBadArgs covers the validation surface.
func TestAssignLibBadArgs(t *testing.T) {
	rt := pathTree(3)
	q := func(v int) float64 { return 1 }
	cases := []struct {
		name string
		L    int
		lib  []LibGate
	}{
		{"driver L < 1", 0, singleLib(1)},
		{"empty library", 2, nil},
		{"gate L < 1", 2, []LibGate{{L: 0, CostScale: 1}}},
		{"gate L overflow", 2, []LibGate{{L: math.MaxInt16 + 1, CostScale: 1}}},
		{"negative cost scale", 2, []LibGate{{L: 2, CostScale: -1}}},
		{"NaN cost scale", 2, []LibGate{{L: 2, CostScale: math.NaN()}}},
	}
	for _, tc := range cases {
		if _, err := AssignLib(rt, tc.L, tc.lib, q, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestAssignLibStatsPopulated mirrors the single-type stats contract.
func TestAssignLibStatsPopulated(t *testing.T) {
	rt := pathTree(8)
	var st DPStats
	if _, err := AssignLib(rt, 3, singleLib(3), func(v int) float64 { return 1 }, &st); err != nil {
		t.Fatal(err)
	}
	if st.Candidates == 0 {
		t.Error("no candidates counted")
	}
	var single DPStats
	if _, err := AssignCounted(rt, 3, func(v int) float64 { return 1 }, &single); err != nil {
		t.Fatal(err)
	}
	if st.Candidates < single.Candidates {
		t.Errorf("library DP counted %d candidates, fewer than single-type %d", st.Candidates, single.Candidates)
	}
}
