package bufferdp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// pathTree builds a straight route of n tiles: source node 0, sink node n-1.
func pathTree(n int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x < n; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: n - 1}})
	if err != nil {
		panic(err)
	}
	return t
}

// qFromSlice maps node index -> cost with +Inf for negative entries.
func qFromSlice(qs []float64) func(int) float64 {
	return func(v int) float64 {
		if qs[v] < 0 {
			return math.Inf(1)
		}
		return qs[v]
	}
}

// TestPaperFig5Example reproduces the worked example of Figs. 5 and 7:
// tiles source, q = 1.3, 8.6, 0.5, inf, 1.0, inf, sink; L = 3. The optimal
// solution costs 1.5 with buffers in the third and fifth cost tiles.
func TestPaperFig5Example(t *testing.T) {
	rt := pathTree(8) // source + 6 cost tiles + sink
	qs := []float64{1000, 1.3, 8.6, 0.5, -1, 1.0, -1, 1000}
	a, err := Assign(rt, 3, qFromSlice(qs))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-1.5) > 1e-12 {
		t.Errorf("cost = %v, want 1.5", a.Cost)
	}
	if !a.Feasible() {
		t.Error("example must be feasible")
	}
	got := a.BufferNodes()
	sort.Ints(got)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("buffers at nodes %v, want [3 5]", got)
	}
}

// TestFig3StarInterpretation checks the total-length rule: a driver with
// several 3-tile branches drives their SUM, so with L = 3 buffers are
// required even though each path distance is only 3.
func TestFig3StarInterpretation(t *testing.T) {
	// Star: source center, three straight 3-tile branches (total load 9).
	parent := map[geom.Pt]geom.Pt{}
	addBranch := func(d geom.Pt) geom.Pt {
		cur := geom.Pt{}
		for i := 0; i < 3; i++ {
			nxt := cur.Add(d)
			parent[nxt] = cur
			cur = nxt
		}
		return cur
	}
	s1 := addBranch(geom.Pt{X: 1})
	s2 := addBranch(geom.Pt{X: -1})
	s3 := addBranch(geom.Pt{Y: 1})
	rt, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{s1, s2, s3})
	if err != nil {
		t.Fatal(err)
	}
	cheap := func(v int) float64 { return 0.25 }
	a, err := Assign(rt, 3, cheap)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() {
		t.Fatal("star with cheap sites must be feasible")
	}
	if len(a.Buffers) < 2 {
		t.Errorf("total-length rule requires >= 2 buffers for 9 units at L=3, got %d", len(a.Buffers))
	}
	// Under a PATH-distance rule zero buffers would suffice; confirm the
	// unbuffered solution is NOT what we returned.
	if len(a.Buffers) == 0 {
		t.Error("path-distance semantics detected")
	}
}

// TestFig8TwoChildCases drives a branch node through the four buffering
// configurations of Fig. 8 by adjusting branch lengths and site costs.
func TestFig8TwoChildCases(t *testing.T) {
	// Build a Y: trunk of 1 edge to node b, then two branches of length 2.
	mk := func() *rtree.Tree {
		parent := map[geom.Pt]geom.Pt{
			{X: 1, Y: 0}: {X: 0, Y: 0},
			{X: 2, Y: 0}: {X: 1, Y: 0}, {X: 3, Y: 0}: {X: 2, Y: 0},
			{X: 1, Y: 1}: {X: 1, Y: 0}, {X: 1, Y: 2}: {X: 1, Y: 1},
		}
		rt, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: 3, Y: 0}, {X: 1, Y: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	rt := mk()
	branchNode := -1
	for v := range rt.Tile {
		if rt.Tile[v] == (geom.Pt{X: 1, Y: 0}) {
			branchNode = v
		}
	}
	if branchNode < 0 {
		t.Fatal("branch node not found")
	}
	// Total load below the branch node is 4 (two 2-edge branches); with the
	// trunk edge the driver would see 5. L=5: driver alone suffices -> no
	// buffers. L=4: one trunk buffer at the branch node drives all 4
	// (Fig. 8(a)). L=2: each branch needs decoupling (Fig. 8(d)).
	q := func(v int) float64 { return 1.0 }
	a, err := Assign(rt, 5, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Buffers) != 0 || !a.Feasible() {
		t.Errorf("L=5: want no buffers, got %v", a.Buffers)
	}
	a, err = Assign(rt, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Buffers) != 1 || a.Buffers[0].Node != branchNode || a.Buffers[0].Branch != -1 || !a.Feasible() {
		t.Errorf("L=4: want single trunk buffer at %d, got %v", branchNode, a.Buffers)
	}
	a, err = Assign(rt, 2, q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() {
		t.Fatal("L=2 must be feasible with cheap sites everywhere")
	}
	atBranch := 0
	for _, b := range a.Buffers {
		if b.Node == branchNode {
			atBranch++
		}
	}
	if atBranch < 2 {
		t.Errorf("L=2: expected both branches decoupled at node %d (Fig. 8(d)), buffers %v", branchNode, a.Buffers)
	}
}

func TestUnbufferableNetReportsViolations(t *testing.T) {
	// 6-edge path, L=2, and no tile has any sites.
	rt := pathTree(7)
	noSites := func(v int) float64 { return math.Inf(1) }
	a, err := Assign(rt, 2, noSites)
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible() {
		t.Fatal("unbufferable net reported feasible")
	}
	if len(a.Buffers) != 0 {
		t.Errorf("buffers placed on infinite-cost tiles: %v", a.Buffers)
	}
	// 6 edges driven, 2 allowed: 4 tiles of excess.
	if a.Violations != 4 {
		t.Errorf("violations = %d, want 4", a.Violations)
	}
}

func TestPartiallyBlockedUsesAvailableSites(t *testing.T) {
	// Path of 9 tiles; only node 4 has a site. L=4: driver covers 4 edges
	// (to node 4), buffer covers the last 4.
	rt := pathTree(9)
	q := func(v int) float64 {
		if v == 4 {
			return 2.0
		}
		return math.Inf(1)
	}
	a, err := Assign(rt, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() || len(a.Buffers) != 1 || a.Buffers[0].Node != 4 {
		t.Errorf("want single buffer at node 4, got %+v", a)
	}
	if math.Abs(a.Cost-2.0) > 1e-12 {
		t.Errorf("cost = %v", a.Cost)
	}
}

func TestSingleTileNet(t *testing.T) {
	rt, err := rtree.FromParentMap(geom.Pt{X: 2, Y: 2}, nil, []geom.Pt{{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(rt, 3, func(int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != 0 || len(a.Buffers) != 0 || !a.Feasible() {
		t.Errorf("single-tile net: %+v", a)
	}
}

func TestBadArgs(t *testing.T) {
	rt := pathTree(3)
	if _, err := Assign(rt, 0, func(int) float64 { return 1 }); err == nil {
		t.Error("L=0 accepted")
	}
}

// --- brute-force reference ------------------------------------------------

// bruteForce is the single-type reference checker: the library enumeration
// of bruteForceLib restricted to one non-inverting buffer with the driver's
// length constraint and unit cost scale.
func bruteForce(rt *rtree.Tree, L int, q func(int) float64) (float64, bool) {
	return bruteForceLib(rt, L, []LibGate{{L: L, CostScale: 1}}, q)
}

// bruteForceLib enumerates every placement of trunk gates (at a node,
// driving its joined subtree) and branch gates (at a node, decoupling one
// child edge), each drawn from the buffer library, checking the per-gate
// total-length rule, the driver's constraint L, and signal polarity: every
// sink pin must see the true signal, where a sink taps the signal arriving
// at its node (gates placed in the sink's own tile do not affect its pin)
// and a trunk gate feeds the node's entire joined load, including the
// inputs of decoupling gates placed at the same node. Returns the minimum
// cost and feasibility.
func bruteForceLib(rt *rtree.Tree, L int, lib []LibGate, q func(int) float64) (float64, bool) {
	n := rt.NumNodes()
	type edge struct{ v, w int }
	var edges []edge
	par := make([]int, n)
	for i := range par {
		par[i] = -1
	}
	for v := 0; v < n; v++ {
		for _, w := range rt.Children(v) {
			edges = append(edges, edge{v, w})
			par[w] = v
		}
	}
	edgeIdx := make(map[[2]int]int, len(edges))
	for i, e := range edges {
		edgeIdx[[2]int{e.v, e.w}] = i
	}
	var sinkNodes []int
	for v := 0; v < n; v++ {
		if rt.SinksAt(v) > 0 {
			sinkNodes = append(sinkNodes, v)
		}
	}

	best := math.Inf(1)
	feasible := false
	trunk := make([]int, n)           // library gate index, -1 = none
	branch := make([]int, len(edges)) // library gate index, -1 = none
	for i := range trunk {
		trunk[i] = -1
	}
	for i := range branch {
		branch[i] = -1
	}

	var f func(v int) int
	g := func(w int) int {
		if trunk[w] >= 0 {
			return 0
		}
		return f(w)
	}
	f = func(v int) int {
		total := 0
		for _, w := range rt.Children(v) {
			if branch[edgeIdx[[2]int{v, w}]] >= 0 {
				continue
			}
			total += 1 + g(w)
		}
		return total
	}
	check := func() {
		cost := 0.0
		for v := 0; v < n; v++ {
			if gi := trunk[v]; gi >= 0 {
				c := q(v)
				if math.IsInf(c, 1) {
					return
				}
				cost += c * lib[gi].CostScale
				if f(v) > lib[gi].L {
					return
				}
			}
		}
		for i, e := range edges {
			if gi := branch[i]; gi >= 0 {
				c := q(e.v)
				if math.IsInf(c, 1) {
					return
				}
				cost += c * lib[gi].CostScale
				if 1+g(e.w) > lib[gi].L {
					return
				}
			}
		}
		drv := f(0)
		if trunk[0] >= 0 {
			drv = 0
		}
		if drv > L {
			return
		}
		for _, s := range sinkNodes {
			p := 0
			for w := s; par[w] >= 0; w = par[w] {
				v := par[w]
				if gi := branch[edgeIdx[[2]int{v, w}]]; gi >= 0 && lib[gi].Invert {
					p ^= 1
				}
				if gi := trunk[v]; gi >= 0 && lib[gi].Invert {
					p ^= 1
				}
			}
			if p != 0 {
				return
			}
		}
		feasible = true
		if cost < best {
			best = cost
		}
	}
	var enum func(i int)
	enum = func(i int) {
		if i == n+len(edges) {
			check()
			return
		}
		set := func(gi int) {
			if i < n {
				trunk[i] = gi
			} else {
				branch[i-n] = gi
			}
			enum(i + 1)
		}
		set(-1)
		for gi := range lib {
			set(gi)
		}
		if i < n {
			trunk[i] = -1
		} else {
			branch[i-n] = -1
		}
	}
	enum(0)
	return best, feasible
}

// randomTree builds a small random routed tree with sinks at all leaves.
func randomTree(r *rand.Rand, maxNodes int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	tiles := []geom.Pt{{}}
	for len(tiles) < maxNodes {
		base := tiles[r.Intn(len(tiles))]
		d := [4]geom.Pt{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}[r.Intn(4)]
		nxt := base.Add(d)
		if nxt == (geom.Pt{}) {
			continue
		}
		if _, ok := parent[nxt]; ok {
			continue
		}
		parent[nxt] = base
		tiles = append(tiles, nxt)
	}
	// Sinks: all leaves.
	hasChild := map[geom.Pt]bool{}
	for _, p := range parent {
		hasChild[p] = true
	}
	var sinks []geom.Pt
	for c := range parent {
		if !hasChild[c] {
			sinks = append(sinks, c)
		}
	}
	if len(sinks) == 0 {
		sinks = []geom.Pt{{}}
	}
	rt, err := rtree.FromParentMap(geom.Pt{}, parent, sinks)
	if err != nil {
		panic(err)
	}
	return rt
}

func TestDPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := randomTree(r, 2+r.Intn(6))
		L := 1 + r.Intn(4)
		qs := make([]float64, rt.NumNodes())
		for i := range qs {
			switch r.Intn(4) {
			case 0:
				qs[i] = -1 // +Inf
			default:
				qs[i] = 0.1 + r.Float64()*5
			}
		}
		q := qFromSlice(qs)
		a, err := Assign(rt, L, q)
		if err != nil {
			return false
		}
		want, feasible := bruteForce(rt, L, q)
		if !feasible {
			return !a.Feasible()
		}
		if !a.Feasible() {
			return false
		}
		// Cross-check the reported cost against the buffers actually chosen.
		sum := 0.0
		for _, b := range a.Buffers {
			sum += q(b.Node)
		}
		if math.Abs(sum-a.Cost) > 1e-9 {
			return false
		}
		return math.Abs(a.Cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDPPathMatchesBruteForceLongerPaths(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(8)
		rt := pathTree(n)
		L := 1 + r.Intn(5)
		qs := make([]float64, n)
		for i := range qs {
			if r.Intn(5) == 0 {
				qs[i] = -1
			} else {
				qs[i] = 0.1 + r.Float64()*3
			}
		}
		q := qFromSlice(qs)
		a, err := Assign(rt, L, q)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForce(rt, L, q)
		if feasible != a.Feasible() {
			t.Fatalf("trial %d: feasibility mismatch (brute %v, dp %v) n=%d L=%d q=%v",
				trial, feasible, a.Feasible(), n, L, qs)
		}
		if feasible && math.Abs(a.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: cost %v != brute %v (n=%d L=%d q=%v)", trial, a.Cost, want, n, L, qs)
		}
	}
}

func TestLinearComplexityShape(t *testing.T) {
	// Not a benchmark, just a guard: a 2000-tile path with L=8 must solve
	// near-instantly and place roughly n/L buffers.
	rt := pathTree(2000)
	a, err := Assign(rt, 8, func(v int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() {
		t.Fatal("long path must be feasible")
	}
	if len(a.Buffers) < 1999/8 || len(a.Buffers) > 1999/8*2 {
		t.Errorf("buffer count %d implausible for n=2000 L=8", len(a.Buffers))
	}
}

func TestBuffersNeverOnInfiniteTiles(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := randomTree(r, 2+r.Intn(10))
		L := 1 + r.Intn(3)
		qs := make([]float64, rt.NumNodes())
		for i := range qs {
			if r.Intn(2) == 0 {
				qs[i] = -1
			} else {
				qs[i] = 1
			}
		}
		q := qFromSlice(qs)
		a, err := Assign(rt, L, q)
		if err != nil {
			return false
		}
		for _, b := range a.Buffers {
			if math.IsInf(q(b.Node), 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
