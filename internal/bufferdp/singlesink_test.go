package bufferdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFig7FullTable checks every entry of the paper's Fig. 7 cost-array
// table: q = (1.3, 8.6, 0.5, inf, 1.0, inf), L = 3. Rows of the figure are
// C_v[0], C_v[1], C_v[2]; columns run from the tile next to the source to
// the sink.
func TestFig7FullTable(t *testing.T) {
	inf := math.Inf(1)
	q := []float64{1.3, 8.6, 0.5, inf, 1.0, inf}
	table, err := SingleSinkArrays(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 7, transposed to [tile][j]: columns left to right.
	want := [][]float64{
		{2.8, 9.6, 1.5},
		{9.6, 1.5, inf},
		{1.5, inf, 1.0},
		{inf, 1.0, inf},
		{1.0, inf, 0},
		{inf, 0, 0},
		{0, 0, 0},
	}
	if len(table) != len(want) {
		t.Fatalf("table has %d columns, want %d", len(table), len(want))
	}
	for i := range want {
		for j := range want[i] {
			got := table[i][j]
			if math.IsInf(want[i][j], 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("C[%d][%d] = %v, want +Inf", i, j, got)
				}
				continue
			}
			if math.Abs(got-want[i][j]) > 1e-12 {
				t.Errorf("C[%d][%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
	cost, err := SingleSinkCost(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-1.5) > 1e-12 {
		t.Errorf("optimal cost = %v, want 1.5", cost)
	}
}

func TestSingleSinkValidation(t *testing.T) {
	if _, err := SingleSinkArrays(nil, 0); err == nil {
		t.Error("L=0 accepted")
	}
	// Degenerate: source adjacent to sink, no intermediate tiles.
	table, err := SingleSinkArrays(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1 || table[0][0] != 0 {
		t.Errorf("degenerate table = %v", table)
	}
}

// TestSingleSinkAgreesWithGeneralDP cross-checks the literal Fig. 6
// transcription against the general multi-sink Assign on random paths.
func TestSingleSinkAgreesWithGeneralDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Path of n tiles: source, n-2 interior tiles, sink.
		n := 3 + r.Intn(12)
		L := 1 + r.Intn(5)
		q := make([]float64, n-2)
		for i := range q {
			if r.Intn(4) == 0 {
				q[i] = math.Inf(1)
			} else {
				q[i] = 0.1 + 4*r.Float64()
			}
		}
		lit, err := SingleSinkCost(q, L)
		if err != nil {
			return false
		}
		// General DP on the same path. Its q function indexes route nodes:
		// node 0 = source (no cost needed... the general DP may buffer at
		// the source tile, which Fig. 6 cannot; make the source tile
		// infinite to align the solution spaces), nodes 1..n-2 = interior,
		// node n-1 = sink (again infinite: Fig. 6 never buffers there,
		// though buffering a sink tile is useless anyway).
		rt := pathTree(n)
		gen, err := Assign(rt, L, func(v int) float64 {
			if v == 0 || v == n-1 {
				return math.Inf(1)
			}
			return q[v-1]
		})
		if err != nil {
			return false
		}
		if math.IsInf(lit, 1) {
			// Fig. 6 has no violation mechanism: infeasible paths stay
			// infinite. The general DP reports violations instead.
			return !gen.Feasible()
		}
		return gen.Feasible() && math.Abs(gen.Cost-lit) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
