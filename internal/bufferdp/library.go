// Multi-type buffer insertion: the length-based DP of bufferdp.go
// generalized to a buffer library following Li & Shi, "An O(bn^2) Time
// Algorithm for Optimal Buffer Insertion with b Buffer Types". Each library
// gate carries its own length constraint (how many tile units of unbuffered
// interconnect it may drive), a site-cost multiplier, and an inverting flag.
// Cost arrays gain a polarity dimension: C_v[p][j] is the cheapest buffering
// of the subtree below v given that the signal arriving at v has parity p
// (0 = true, 1 = inverted) and the unbuffered wirelength hanging at v totals
// j. Sinks require parity 0, inverters flip parity, and joins only combine
// candidates that agree on the incoming parity — so inverters are forced
// into pairs on every driver-to-sink chain.
//
// Conventions (shared with the brute-force reference checker in the tests):
// a trunk gate at v drives the node's entire joined load, including the
// inputs of any decoupling gates placed at the same node (they sit behind
// it, Fig. 8); a sink pin at v taps the signal *arriving* at v, before any
// gate placed in v's tile.
package bufferdp

import (
	"fmt"
	"math"

	"repro/internal/rtree"
)

// LibGate is the DP's view of one buffer-library entry. It is deliberately
// decoupled from the electrical model (internal/tech): the DP only needs
// the planning attributes.
type LibGate struct {
	// L is the gate's length constraint: the maximum tile units of
	// unbuffered interconnect its output may drive. Must be >= 1.
	L int
	// CostScale multiplies the Eq. (2) site cost q(v) when this gate is
	// placed (relative footprint of the gate in a buffer site).
	CostScale float64
	// Invert marks an inverter: the gate's output has the opposite parity
	// of its input.
	Invert bool
}

// lkptr records how a per-child, per-parity candidate K_i[p][j] was formed.
type lkptr struct {
	fromJ    int16 // index into the child's C array
	fromPar  int8  // parity plane of the child's C array
	gate     int16 // >= 0: library gate decoupling this branch; -1: advance
	violated bool
	valid    bool
}

// ljptr records the split of a join cell; both sides share the parity.
type ljptr struct {
	left, right int16
	violated    bool
	valid       bool
}

// lextra records a trunk gate choice for C_v[p][0].
type lextra struct {
	fromJ   int16
	fromPar int8
	gate    int16
	valid   bool
}

// lnode holds the DP state for one tree node during recovery.
type lnode struct {
	c     [2][]float64
	kp    [][2][]lkptr
	jp    [][2][]ljptr
	extra [2]lextra
}

// AssignLib computes the minimum-cost buffer assignment for the routed tree
// rt over a buffer library. L is the driver's length constraint (the root
// gate is fixed, not chosen from the library); q(v) is the Eq. (2) site
// cost of the tile at route-tree node v (+Inf for tiles without free
// sites), scaled per gate by LibGate.CostScale. When st is non-nil it is
// overwritten with the DP statistics of this call.
//
// With lib = [{L: L, CostScale: 1, Invert: false}] the DP reduces exactly
// to AssignCounted: same transitions, same costs, same violation
// accounting (pinned by TestAssignLibSingleTypeEquivalence).
func AssignLib(rt *rtree.Tree, L int, lib []LibGate, q func(v int) float64, st *DPStats) (Assignment, error) {
	if L < 1 {
		return Assignment{}, fmt.Errorf("bufferdp: length constraint %d < 1", L)
	}
	if L > math.MaxInt16 {
		return Assignment{}, fmt.Errorf("bufferdp: length constraint %d too large", L)
	}
	if len(lib) == 0 {
		return Assignment{}, fmt.Errorf("bufferdp: empty buffer library")
	}
	if len(lib) > math.MaxInt16 {
		return Assignment{}, fmt.Errorf("bufferdp: library of %d gates too large", len(lib))
	}
	// The top array index M is the longest length any gate (or the driver)
	// may drive; the violation bucket sits there. A driver limit below M is
	// settled at the root scan with ViolationPenalty per excess tile.
	m := L
	for i, g := range lib {
		if g.L < 1 {
			return Assignment{}, fmt.Errorf("bufferdp: library gate %d: length constraint %d < 1", i, g.L)
		}
		if g.L > math.MaxInt16 {
			return Assignment{}, fmt.Errorf("bufferdp: library gate %d: length constraint %d too large", i, g.L)
		}
		if g.CostScale < 0 || math.IsInf(g.CostScale, 1) || math.IsNaN(g.CostScale) {
			return Assignment{}, fmt.Errorf("bufferdp: library gate %d: cost scale %g not in [0, inf)", i, g.CostScale)
		}
		if g.L > m {
			m = g.L
		}
	}
	n := rt.NumNodes()
	if n == 0 {
		return Assignment{}, fmt.Errorf("bufferdp: empty tree")
	}
	nodes := make([]lnode, n)
	inf := math.Inf(1)
	candidates, pruned, joins := 0, 0, 0

	for _, v := range rt.PostOrder() {
		kids := rt.Children(v)
		nd := &nodes[v]
		if len(kids) == 0 {
			// Leaf: no wire hangs below it and the pin terminates any
			// length count, so every index is free — but only on the parity
			// plane a sink accepts (true signal). A non-sink leaf (a
			// single-node net's root) is parity-indifferent.
			nd.c[0] = make([]float64, m+1)
			nd.c[1] = make([]float64, m+1)
			if rt.SinksAt(v) > 0 {
				for j := range nd.c[1] {
					nd.c[1][j] = inf
				}
			}
			continue
		}
		// Build K_i for each child: advance one tile, or place a library
		// gate here to decouple and drive the branch.
		k := make([][2][]float64, len(kids))
		nd.kp = make([][2][]lkptr, len(kids))
		qa := q(v)
		for i, w := range kids {
			cw := &nodes[w].c
			for p := 0; p < 2; p++ {
				kj := make([]float64, m+1)
				kp := make([]lkptr, m+1)
				for j := range kj {
					kj[j] = inf
				}
				// AdvanceTile: one more tile of wire on the way to v; the
				// wire does not touch parity.
				for j := 1; j <= m; j++ {
					if cw[p][j-1] < kj[j] {
						kj[j] = cw[p][j-1]
						//rabid:allow narrowcast j <= m and m <= MaxInt16 is validated at AssignLib entry; p is a parity in {0,1}
						kp[j] = lkptr{fromJ: int16(j - 1), fromPar: int8(p), gate: -1, valid: true}
						candidates++
					}
				}
				// Violation bucket: stay at the top index, paying the
				// penalty per parked tile.
				if cw[p][m] < inf {
					if c := cw[p][m] + ViolationPenalty; c < kj[m] {
						kj[m] = c
						kp[m] = lkptr{fromJ: int16(m), fromPar: int8(p), gate: -1, violated: true, valid: true}
						candidates++
					} else {
						pruned++
					}
				}
				// BufferTile over the library: gate g at v decouples this
				// branch (1 tile of edge + the child's unbuffered load <=
				// g.L). The gate's input has parity p, so the child plane
				// is p flipped by the gate's inversion.
				if !math.IsInf(qa, 1) {
					for gi, g := range lib {
						pc := p
						if g.Invert {
							pc = 1 - p
						}
						bestJ, bestC := -1, inf
						for j := 0; j <= g.L-1 && j <= m; j++ {
							if cw[pc][j] < bestC {
								bestC, bestJ = cw[pc][j], j
							}
						}
						if bestJ < 0 {
							continue
						}
						if c := qa*g.CostScale + bestC; c < kj[0] {
							kj[0] = c
							//rabid:allow narrowcast bestJ <= m and gi < len(lib), both validated <= MaxInt16 at AssignLib entry; pc is a parity in {0,1}
							kp[0] = lkptr{fromJ: int16(bestJ), fromPar: int8(pc), gate: int16(gi), valid: true}
							candidates++
						} else {
							pruned++
						}
					}
				}
				k[i][p] = kj
				nd.kp[i][p] = kp
			}
		}
		// JoinChildren: min-plus convolution per parity plane, folding
		// children in order. Both sides of a join see the same incoming
		// signal, so only equal parities combine.
		acc := k[0]
		nd.jp = make([][2][]ljptr, len(kids))
		for i := 1; i < len(kids); i++ {
			var nxt [2][]float64
			var np [2][]ljptr
			for p := 0; p < 2; p++ {
				nxt[p] = make([]float64, m+1)
				np[p] = make([]ljptr, m+1)
				for j := range nxt[p] {
					nxt[p][j] = inf
				}
				for j1 := 0; j1 <= m; j1++ {
					if math.IsInf(acc[p][j1], 1) {
						continue
					}
					for j2 := 0; j2 <= m; j2++ {
						if math.IsInf(k[i][p][j2], 1) {
							continue
						}
						sum := acc[p][j1] + k[i][p][j2]
						tgt := j1 + j2
						viol := false
						if tgt > m {
							sum += float64(tgt-m) * ViolationPenalty
							tgt = m
							viol = true
						}
						joins++
						if sum < nxt[p][tgt] {
							nxt[p][tgt] = sum
							np[p][tgt] = ljptr{left: int16(j1), right: int16(j2), violated: viol, valid: true}
							candidates++
						} else {
							pruned++
						}
					}
				}
			}
			acc = nxt
			nd.jp[i] = np
		}
		// C_v starts as the joined array.
		nd.c[0] = append([]float64(nil), acc[0]...)
		nd.c[1] = append([]float64(nil), acc[1]...)
		// BufferMultiChildren, generalized: a trunk gate from the library
		// may drive the joined load (Fig. 8(a)/(b)). Its output feeds the
		// join (parity plane pd); its input — the signal arriving at v —
		// has parity pd flipped by the gate's inversion. Unlike the
		// single-type DP this applies at degree-one nodes too: stacking a
		// trunk inverter in front of a branch inverter forms a series pair
		// in one tile, the cheapest way to restore polarity in place. (For
		// a non-inverting library the degree-one trunk candidate ties the
		// branch-gate candidate and is pruned, so the single-type reduction
		// is unaffected.)
		if !math.IsInf(qa, 1) {
			// Trunk scan bound: up to the gate's constraint, capped at the
			// top index. At degree-one nodes the bucket index m is excluded
			// (only branch-node trunk gates rescue violation buckets, the
			// single-type DP's convention); every non-bucket degree-one
			// candidate ties a branch-gate candidate, so this changes
			// nothing on feasible nets.
			for gi, g := range lib {
				hi := g.L
				if hi > m {
					hi = m
				}
				if len(kids) == 1 && hi == m {
					hi = m - 1
				}
				for pd := 0; pd < 2; pd++ {
					bestJ, bestC := -1, inf
					for j := 0; j <= hi; j++ {
						if acc[pd][j] < bestC {
							bestC, bestJ = acc[pd][j], j
						}
					}
					if bestJ < 0 {
						continue
					}
					pin := pd
					if g.Invert {
						pin = 1 - pd
					}
					if c := qa*g.CostScale + bestC; c < nd.c[pin][0] {
						nd.c[pin][0] = c
						//rabid:allow narrowcast bestJ <= m and gi < len(lib), both validated <= MaxInt16 at AssignLib entry; pd is a parity in {0,1}
						nd.extra[pin] = lextra{fromJ: int16(bestJ), fromPar: int8(pd), gate: int16(gi), valid: true}
						candidates++
					} else {
						pruned++
					}
				}
			}
		}
		// A sink pin in v's tile taps the arriving signal, so only
		// parity-0 candidates are legal at v.
		if rt.SinksAt(v) > 0 {
			for j := range nd.c[1] {
				nd.c[1][j] = inf
			}
			nd.extra[1] = lextra{}
		}
	}
	if st != nil {
		*st = DPStats{Candidates: candidates, Pruned: pruned, Joins: joins}
	}

	// The driver outputs the true signal and may drive up to L tiles;
	// indices beyond L (reachable when some library gate out-drives the
	// driver) pay the violation penalty per excess tile.
	root := &nodes[0]
	bestJ, bestC, bestViol := -1, inf, 0
	for j, c := range root.c[0] {
		over := 0
		if j > L {
			over = j - L
			c += float64(over) * ViolationPenalty
		}
		if c < bestC {
			bestC, bestJ, bestViol = c, j, over
		}
	}
	if bestJ < 0 {
		return Assignment{}, fmt.Errorf("bufferdp: no solution (unexpected: violation buckets should always apply)")
	}
	a := Assignment{Cost: bestC, Violations: bestViol, Gates: []int{}}
	recoverLib(rt, nodes, 0, 0, bestJ, &a)
	return a, nil
}

// recoverLib replays the DP decisions top-down. v is the node, par the
// parity plane and j the index of C_v being realized.
func recoverLib(rt *rtree.Tree, nodes []lnode, v, par, j int, a *Assignment) {
	kids := rt.Children(v)
	if len(kids) == 0 {
		return
	}
	nd := &nodes[v]
	if j == 0 && nd.extra[par].valid {
		// Trunk gate at v (only recorded when it beat the plain join).
		e := nd.extra[par]
		a.Buffers = append(a.Buffers, Buffer{Node: v, Branch: -1})
		a.Gates = append(a.Gates, int(e.gate))
		par, j = int(e.fromPar), int(e.fromJ)
	}
	// Unfold the joins from the last child back to the first.
	idx := make([]int, len(kids))
	for i := len(kids) - 1; i >= 1; i-- {
		p := nd.jp[i][par][j]
		if !p.valid {
			panic(fmt.Sprintf("bufferdp: invalid join pointer at node %d parity %d index %d", v, par, j))
		}
		if p.violated {
			a.Violations += int(p.left) + int(p.right) - j
		}
		idx[i] = int(p.right)
		j = int(p.left)
	}
	idx[0] = j
	for i, w := range kids {
		p := nd.kp[i][par][idx[i]]
		if !p.valid {
			panic(fmt.Sprintf("bufferdp: invalid K pointer at node %d child %d parity %d index %d", v, i, par, idx[i]))
		}
		if p.gate >= 0 {
			role := w
			if len(kids) == 1 {
				// A gate on a degree-one node drives the whole (single)
				// downstream branch; report it as a trunk buffer.
				role = -1
			}
			a.Buffers = append(a.Buffers, Buffer{Node: v, Branch: role})
			a.Gates = append(a.Gates, int(p.gate))
		}
		if p.violated {
			a.Violations++
		}
		recoverLib(rt, nodes, w, int(p.fromPar), int(p.fromJ), a)
	}
}
