// Package bufferdp implements Stage 3 of RABID: optimal length-based buffer
// insertion on a routed tree by dynamic programming (the paper's Figs. 6
// and 9). The algorithm is van Ginneken-style but, because candidates are
// indexed by the bounded unbuffered downstream wirelength j in [0, L-1]
// rather than by arbitrary (capacitance, slack) pairs, it runs in O(nL) for
// single-sink nets and O(mL^2 + nL) for nets with m sinks.
//
// Semantics (Fig. 3): the constraint is the *total* wirelength of
// interconnect driven by any gate — the driver or an inserted buffer — at
// most L tile units; a cost array entry C_v[j] is the cheapest buffering of
// the subtree below v whose unbuffered wirelength hanging at v totals j.
// Joins at branch nodes are therefore min-plus convolutions, and a node may
// receive several buffers: one decoupling each child branch and one driving
// the joined load (Fig. 8).
//
// Infeasible nets (a stretch through zero-site tiles longer than L) are
// handled with a violation bucket: the topmost index may absorb extra tiles
// at a large penalty per tile, never placing a buffer where no site exists.
// Such nets are reported with Violations > 0 — the "#fails" column of the
// experiments.
package bufferdp

import (
	"fmt"
	"math"

	"repro/internal/rtree"
)

// ViolationPenalty is the artificial cost per tile of wire driven beyond
// the length constraint. It dwarfs any realistic sum of Eq. (2) site costs,
// so the DP only violates the constraint when no feasible solution exists.
const ViolationPenalty = 1e7

// Buffer is one inserted buffer: it sits in the tile of route-tree node
// Node. Branch >= 0 means it decouples the edge from Node to child node
// Branch (Fig. 8(c)/(d)); Branch == -1 means it drives the node's joined
// downstream load (a trunk buffer, Fig. 8(a)/(b), or any buffer on a
// degree-one node).
type Buffer struct {
	Node   int
	Branch int
}

// Assignment is the result of buffer insertion on one net.
type Assignment struct {
	// Cost is the summed site cost q(v) of the chosen buffers, plus
	// ViolationPenalty per violating tile.
	Cost float64
	// Buffers lists every inserted buffer; a node appears once per buffer
	// placed in its tile.
	Buffers []Buffer
	// Violations is the number of tile units driven beyond the constraint
	// across all gates; zero means the length rule is fully satisfied.
	Violations int
	// Gates, when non-nil, parallels Buffers with the library gate index
	// chosen for each buffer (see AssignLib). The single-type DP leaves it
	// nil, which downstream consumers read as "the planning buffer".
	Gates []int
}

// BufferNodes returns the node index of each buffer (with multiplicity).
func (a Assignment) BufferNodes() []int {
	out := make([]int, len(a.Buffers))
	for i, b := range a.Buffers {
		out[i] = b.Node
	}
	return out
}

// Feasible reports whether the length constraint was met everywhere.
func (a Assignment) Feasible() bool { return a.Violations == 0 }

// kptr records how a per-child candidate K_i[j] was formed.
type kptr struct {
	fromJ    int16 // index into the child's C array
	buffered bool  // branch buffer placed at the current node
	violated bool  // advanced past the bucket limit (costs ViolationPenalty)
	valid    bool
}

// jptr records the split of a join cell between the accumulated array and
// the next child's K array.
type jptr struct {
	left, right int16
	violated    bool
	valid       bool
}

// node holds the DP state for one tree node during recovery.
type node struct {
	c     []float64 // final cost array C_v
	k     [][]float64
	kp    [][]kptr
	jp    [][]jptr // jp[i] is the split used when folding child i (i >= 1)
	acc   [][]float64
	extra []int16 // per index: -1, or the source index when C_v[j] used a trunk buffer
}

// DPStats counts the dynamic-programming work of one Assign call, for the
// "Stage-3 DP candidates generated vs. pruned" telemetry: a candidate is
// one (value, target-index) combination the DP evaluated; it is generated
// when it improves the cell it lands in and pruned when an earlier
// candidate already held a cheaper value. Joins counts the min-plus
// convolution combinations evaluated at branch nodes.
type DPStats struct {
	Candidates int
	Pruned     int
	Joins      int
}

// Assign computes the minimum-cost buffer assignment for the routed tree rt
// under length constraint L, where q(v) is the Eq. (2) site cost of the
// tile at route-tree node v (may be +Inf for tiles without free sites).
func Assign(rt *rtree.Tree, L int, q func(v int) float64) (Assignment, error) {
	return AssignCounted(rt, L, q, nil)
}

// AssignCounted is Assign with optional work counters: when st is non-nil
// it is overwritten with the DP statistics of this call. The counting is
// a handful of integer increments in loops the DP runs anyway, so passing
// nil and non-nil cost the same.
func AssignCounted(rt *rtree.Tree, L int, q func(v int) float64, st *DPStats) (Assignment, error) {
	if L < 1 {
		return Assignment{}, fmt.Errorf("bufferdp: length constraint %d < 1", L)
	}
	if L > math.MaxInt16 {
		return Assignment{}, fmt.Errorf("bufferdp: length constraint %d too large", L)
	}
	n := rt.NumNodes()
	if n == 0 {
		return Assignment{}, fmt.Errorf("bufferdp: empty tree")
	}
	nodes := make([]node, n)
	inf := math.Inf(1)
	candidates, pruned, joins := 0, 0, 0

	// Arrays run from 0 to L inclusive. Index L — a full constraint's worth
	// of unbuffered wire — is special: it cannot advance another tile
	// without violating, but it may be consumed by a trunk buffer at the
	// same node (which drives exactly j units, Fig. 8(a)) or by the driver
	// at the root (matching the single-sink algorithm's return of
	// min{C_v[j] : par(v)=s}, which lets the driver reach L).
	m := L

	for _, v := range rt.PostOrder() {
		kids := rt.Children(v)
		nd := &nodes[v]
		if len(kids) == 0 {
			// Leaf: a sink (or a single-tile net's root). No wire hangs
			// below it, and the sink pin terminates any length count, so
			// every index is free (Step 1 of Fig. 6).
			nd.c = make([]float64, m+1)
			continue
		}
		// Build K_i for each child: advance one tile, or buffer here.
		nd.k = make([][]float64, len(kids))
		nd.kp = make([][]kptr, len(kids))
		for i, w := range kids {
			cw := nodes[w].c
			k := make([]float64, m+1)
			kp := make([]kptr, m+1)
			for j := range k {
				k[j] = inf
			}
			// AdvanceTile: one more tile of wire on the way to v.
			for j := 1; j <= m; j++ {
				if j-1 < len(cw) && cw[j-1] < k[j] {
					k[j] = cw[j-1]
					kp[j] = kptr{fromJ: int16(j - 1), valid: true}
					candidates++
				}
			}
			// Violation bucket: stay at the top index, paying the penalty.
			if top := len(cw) - 1; top >= 0 && cw[top] < inf {
				if c := cw[top] + ViolationPenalty; c < k[m] {
					k[m] = c
					kp[m] = kptr{fromJ: int16(top), violated: true, valid: true}
					candidates++
				} else {
					pruned++
				}
			}
			// BufferTile: a buffer at v decouples and drives this branch
			// (1 tile of edge + the child's unbuffered load <= L).
			if qa := q(v); !math.IsInf(qa, 1) {
				bestJ, bestC := -1, inf
				for j := 0; j < len(cw) && j <= L-1; j++ {
					if cw[j] < bestC {
						bestC, bestJ = cw[j], j
					}
				}
				if bestJ >= 0 {
					if qa+bestC < k[0] {
						k[0] = qa + bestC
						kp[0] = kptr{fromJ: int16(bestJ), buffered: true, valid: true}
						candidates++
					} else {
						pruned++
					}
				}
			}
			nd.k[i] = k
			nd.kp[i] = kp
		}
		// JoinChildren: min-plus convolution, folding children in order.
		acc := nd.k[0]
		nd.acc = make([][]float64, len(kids))
		nd.jp = make([][]jptr, len(kids))
		nd.acc[0] = acc
		for i := 1; i < len(kids); i++ {
			nxt := make([]float64, m+1)
			np := make([]jptr, m+1)
			for j := range nxt {
				nxt[j] = inf
			}
			for j1 := 0; j1 <= m; j1++ {
				if math.IsInf(acc[j1], 1) {
					continue
				}
				for j2 := 0; j2 <= m; j2++ {
					if math.IsInf(nd.k[i][j2], 1) {
						continue
					}
					sum := acc[j1] + nd.k[i][j2]
					tgt := j1 + j2
					viol := false
					if tgt > m {
						// Joint load exceeds the bucket; park at the top
						// with a penalty per excess tile.
						sum += float64(tgt-m) * ViolationPenalty
						tgt = m
						viol = true
					}
					joins++
					if sum < nxt[tgt] {
						nxt[tgt] = sum
						np[tgt] = jptr{left: int16(j1), right: int16(j2), violated: viol, valid: true}
						candidates++
					} else {
						pruned++
					}
				}
			}
			acc = nxt
			nd.acc[i] = acc
			nd.jp[i] = np
		}
		// C_v starts as the joined array.
		nd.c = append([]float64(nil), acc...)
		nd.extra = make([]int16, m+1)
		for j := range nd.extra {
			nd.extra[j] = -1
		}
		// BufferMultiChildren: for branch nodes, a trunk buffer at v may
		// drive the joined load (Fig. 8(a)/(b)).
		if len(kids) >= 2 {
			if qa := q(v); !math.IsInf(qa, 1) {
				bestJ, bestC := -1, inf
				for j := 0; j <= m; j++ {
					if acc[j] < bestC {
						bestC, bestJ = acc[j], j
					}
				}
				if bestJ >= 0 {
					if qa+bestC < nd.c[0] {
						nd.c[0] = qa + bestC
						nd.extra[0] = int16(bestJ)
						candidates++
					} else {
						pruned++
					}
				}
			}
		}
	}
	if st != nil {
		*st = DPStats{Candidates: candidates, Pruned: pruned, Joins: joins}
	}

	// The answer is the cheapest root entry; index L lets the driver itself
	// drive a full constraint's worth of wire.
	root := &nodes[0]
	bestJ, bestC := -1, inf
	for j, c := range root.c {
		if c < bestC {
			bestC, bestJ = c, j
		}
	}
	if bestJ < 0 {
		return Assignment{}, fmt.Errorf("bufferdp: no solution (unexpected: violation buckets should always apply)")
	}
	a := Assignment{Cost: bestC}
	recover_(rt, nodes, 0, bestJ, &a)
	return a, nil
}

// recover_ replays the DP decisions top-down, collecting buffers and
// violation counts. v is the node, j the chosen index of C_v.
func recover_(rt *rtree.Tree, nodes []node, v, j int, a *Assignment) {
	kids := rt.Children(v)
	if len(kids) == 0 {
		return
	}
	nd := &nodes[v]
	if nd.extra != nil && j == 0 && nd.extra[0] >= 0 {
		// Trunk buffer at v (only set when it beat the plain join).
		a.Buffers = append(a.Buffers, Buffer{Node: v, Branch: -1})
		j = int(nd.extra[0])
	}
	// Unfold the joins from the last child back to the first.
	idx := make([]int, len(kids))
	for i := len(kids) - 1; i >= 1; i-- {
		p := nd.jp[i][j]
		if !p.valid {
			panic(fmt.Sprintf("bufferdp: invalid join pointer at node %d index %d", v, j))
		}
		if p.violated {
			a.Violations += int(p.left) + int(p.right) - j
		}
		idx[i] = int(p.right)
		j = int(p.left)
	}
	idx[0] = j
	for i, w := range kids {
		p := nd.kp[i][idx[i]]
		if !p.valid {
			panic(fmt.Sprintf("bufferdp: invalid K pointer at node %d child %d index %d", v, i, idx[i]))
		}
		if p.buffered {
			role := w
			if len(kids) == 1 {
				// A buffer on a degree-one node drives the whole (single)
				// downstream branch; report it as a trunk buffer.
				role = -1
			}
			a.Buffers = append(a.Buffers, Buffer{Node: v, Branch: role})
		}
		if p.violated {
			a.Violations++
		}
		recover_(rt, nodes, w, int(p.fromJ), a)
	}
}
