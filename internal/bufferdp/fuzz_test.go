package bufferdp

import (
	"math"
	"testing"
)

// FuzzSingleSinkAgreement cross-checks the literal Fig. 6 transcription
// against the general DP on fuzzer-chosen paths. Each input byte is one
// tile's site cost (255 = no sites); the first byte picks L.
func FuzzSingleSinkAgreement(f *testing.F) {
	f.Add([]byte{3, 13, 86, 5, 255, 10, 255})
	f.Add([]byte{1, 255, 255})
	f.Add([]byte{5, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 40 {
			return
		}
		L := int(data[0])%6 + 1
		qbytes := data[1:]
		q := make([]float64, len(qbytes))
		for i, b := range qbytes {
			if b == 255 {
				q[i] = math.Inf(1)
			} else {
				q[i] = float64(b)/10 + 0.05
			}
		}
		lit, err := SingleSinkCost(q, L)
		if err != nil {
			t.Fatal(err)
		}
		n := len(q) + 2
		rt := pathTree(n)
		gen, err := Assign(rt, L, func(v int) float64 {
			if v == 0 || v == n-1 {
				return math.Inf(1)
			}
			return q[v-1]
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(lit, 1) {
			if gen.Feasible() {
				t.Fatalf("literal infeasible but general DP feasible (L=%d q=%v)", L, q)
			}
			return
		}
		if !gen.Feasible() || math.Abs(gen.Cost-lit) > 1e-9 {
			t.Fatalf("cost mismatch: literal %v, general %v (feasible=%v) L=%d q=%v",
				lit, gen.Cost, gen.Feasible(), L, q)
		}
	})
}
