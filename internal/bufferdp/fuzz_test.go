package bufferdp

import (
	"math"
	"testing"
)

// FuzzSingleSinkAgreement cross-checks the literal Fig. 6 transcription
// against the general DP on fuzzer-chosen paths. Each input byte is one
// tile's site cost (255 = no sites); the first byte picks L.
func FuzzSingleSinkAgreement(f *testing.F) {
	f.Add([]byte{3, 13, 86, 5, 255, 10, 255})
	f.Add([]byte{1, 255, 255})
	f.Add([]byte{5, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 40 {
			return
		}
		L := int(data[0])%6 + 1
		qbytes := data[1:]
		q := make([]float64, len(qbytes))
		for i, b := range qbytes {
			if b == 255 {
				q[i] = math.Inf(1)
			} else {
				q[i] = float64(b)/10 + 0.05
			}
		}
		lit, err := SingleSinkCost(q, L)
		if err != nil {
			t.Fatal(err)
		}
		n := len(q) + 2
		rt := pathTree(n)
		gen, err := Assign(rt, L, func(v int) float64 {
			if v == 0 || v == n-1 {
				return math.Inf(1)
			}
			return q[v-1]
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(lit, 1) {
			if gen.Feasible() {
				t.Fatalf("literal infeasible but general DP feasible (L=%d q=%v)", L, q)
			}
			return
		}
		if !gen.Feasible() || math.Abs(gen.Cost-lit) > 1e-9 {
			t.Fatalf("cost mismatch: literal %v, general %v (feasible=%v) L=%d q=%v",
				lit, gen.Cost, gen.Feasible(), L, q)
		}
	})
}

// FuzzLibraryAgreement pins the multi-type DP against the exhaustive
// library checker on fuzzer-chosen paths. The first byte picks the driver
// constraint, the second encodes the library (which of the three template
// gates — a weak buffer, a strong buffer, an inverter — are present), and
// the rest are per-tile site costs (255 = no sites). Inverter polarity
// legality is covered: libraries containing only the inverter force the DP
// to pair gates or report violations, and the checker verifies both.
func FuzzLibraryAgreement(f *testing.F) {
	f.Add([]byte{3, 1, 13, 86, 5, 255, 10})
	f.Add([]byte{2, 4, 10, 10, 10, 10})   // inverter-only library
	f.Add([]byte{3, 5, 255, 7, 3, 9, 11}) // weak buffer + inverter
	f.Add([]byte{1, 7, 1, 2, 3, 4})       // full library
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 10 {
			return
		}
		L := int(data[0])%4 + 1
		templates := []LibGate{
			{L: L, CostScale: 1},
			{L: L + 2, CostScale: 2.25},
			{L: L + 1, CostScale: 0.6, Invert: true},
		}
		var lib []LibGate
		for bit, g := range templates {
			if data[1]&(1<<bit) != 0 {
				lib = append(lib, g)
			}
		}
		if len(lib) == 0 {
			return
		}
		// The checker enumerates (len(lib)+1)^(2n-1) placements; truncate
		// the path so that stays around 10^5-10^6.
		maxQ := [4]int{0, 8, 5, 3}[len(lib)]
		qbytes := data[2:]
		if len(qbytes) > maxQ {
			qbytes = qbytes[:maxQ]
		}
		q := make([]float64, len(qbytes))
		for i, b := range qbytes {
			if b == 255 {
				q[i] = math.Inf(1)
			} else {
				q[i] = float64(b)/10 + 0.05
			}
		}
		n := len(q) + 2
		rt := pathTree(n)
		qf := func(v int) float64 {
			if v == 0 || v == n-1 {
				return math.Inf(1)
			}
			return q[v-1]
		}
		a, err := AssignLib(rt, L, lib, qf, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForceLib(rt, L, lib, qf)
		if feasible != a.Feasible() {
			t.Fatalf("feasibility mismatch: brute %v, dp %v (L=%d lib=%+v q=%v)",
				feasible, a.Feasible(), L, lib, q)
		}
		if !feasible {
			return
		}
		sum := 0.0
		for i, b := range a.Buffers {
			sum += qf(b.Node) * lib[a.Gates[i]].CostScale
		}
		if math.Abs(sum-a.Cost) > 1e-9 {
			t.Fatalf("recovered gates cost %v, DP reported %v (L=%d lib=%+v q=%v)",
				sum, a.Cost, L, lib, q)
		}
		if math.Abs(a.Cost-want) > 1e-9 {
			t.Fatalf("cost mismatch: brute %v, dp %v (L=%d lib=%+v q=%v)",
				want, a.Cost, L, lib, q)
		}
	})
}
