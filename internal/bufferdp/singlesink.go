package bufferdp

import (
	"fmt"
	"math"
)

// SingleSinkArrays executes the paper's single-sink buffer insertion
// algorithm (Fig. 6) literally and returns the full cost-array table, one
// row per tile from the tile nearest the source to the sink, exactly as
// printed in Fig. 7. q lists the site costs of the tiles strictly between
// the source and the sink, ordered source side first; the returned table
// has len(q)+1 columns (q tiles plus the sink) and L rows (C_v[0..L-1]).
//
// This is an independent, direct transcription of the pseudocode — the
// general multi-sink Assign must agree with it on paths, which the tests
// verify — kept for exactness against the worked example and as teaching
// code.
func SingleSinkArrays(q []float64, L int) ([][]float64, error) {
	if L < 1 {
		return nil, fmt.Errorf("bufferdp: length constraint %d < 1", L)
	}
	cols := len(q) + 1
	table := make([][]float64, cols)
	// Step 1: C_t[j] = 0 for the sink (last column).
	table[cols-1] = make([]float64, L)
	// Step 2: walk toward the source.
	for i := cols - 2; i >= 0; i-- {
		prev := table[i+1]
		cur := make([]float64, L)
		for j := 1; j < L; j++ {
			cur[j] = prev[j-1]
		}
		best := math.Inf(1)
		for j := 0; j < L; j++ {
			if prev[j] < best {
				best = prev[j]
			}
		}
		cur[0] = q[i] + best
		table[i] = cur
	}
	return table, nil
}

// SingleSinkCost returns the optimal buffering cost for the path: Step 3
// of Fig. 6, min over the column adjacent to the source.
func SingleSinkCost(q []float64, L int) (float64, error) {
	table, err := SingleSinkArrays(q, L)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for _, c := range table[0] {
		if c < best {
			best = c
		}
	}
	return best, nil
}
