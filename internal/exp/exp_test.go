package exp

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/obs"
)

func TestParamsFor(t *testing.T) {
	p := ParamsFor("xerox")
	if p.TargetStage1Avg != 0.16 {
		t.Errorf("xerox target = %v", p.TargetStage1Avg)
	}
	p = ParamsFor("unknown")
	if p.TargetStage1Avg != 0.25 {
		t.Errorf("unknown circuit should use default target, got %v", p.TargetStage1Avg)
	}
}

func TestTargetsCoverSuite(t *testing.T) {
	for _, s := range floorplan.Suite() {
		if _, ok := stage1AvgTargets[s.Name]; !ok {
			t.Errorf("no calibration target for %s", s.Name)
		}
	}
	if len(CBLNames)+len(RandomNames) != len(floorplan.Suite()) {
		t.Error("name lists do not cover the suite")
	}
	for name := range table3Sites {
		if _, err := floorplan.BySuiteName(name); err != nil {
			t.Errorf("table3 references unknown circuit %s", name)
		}
	}
	for name, grids := range table4Grids {
		spec, err := floorplan.BySuiteName(name)
		if err != nil {
			t.Fatalf("table4 references unknown circuit %s", name)
		}
		for _, g := range grids {
			// Every sweep grid preserves the chip aspect ratio.
			if g[0]*spec.GridH != g[1]*spec.GridW {
				t.Errorf("%s grid %v breaks aspect ratio", name, g)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	tb, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, name := range append(append([]string{}, CBLNames...), RandomNames...) {
		if !strings.Contains(out, name) {
			t.Errorf("table 1 missing %s", name)
		}
	}
	if !strings.Contains(out, "30x33") {
		t.Error("table 1 missing grid column")
	}
}

// TestTable1LogsProgress is the regression test for the facade bug where
// Table(1, log) silently ignored its log argument: Table1 must report
// per-circuit progress like every other table.
func TestTable1LogsProgress(t *testing.T) {
	var buf strings.Builder
	if _, err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range CBLNames {
		if !strings.Contains(buf.String(), "table1: "+name) {
			t.Errorf("progress log missing %q:\n%s", "table1: "+name, buf.String())
		}
	}
}

// TestObserverTapsBenchmarkRuns: the package Observer must see the suite
// runs' pipeline telemetry and the tables' progress lines.
func TestObserverTapsBenchmarkRuns(t *testing.T) {
	m := obs.NewMetrics()
	Observer = m
	defer func() { Observer = nil }()
	if _, err := RunBenchmark("apte", floorplan.Options{GridW: 10, GridH: 11}); err != nil {
		t.Fatal(err)
	}
	if s := m.Span("run"); s.Count != 1 {
		t.Errorf("run span count = %d, want 1", s.Count)
	}
	if s := m.Span("stage.4"); s.Count != 1 || s.Total <= 0 {
		t.Errorf("stage.4 span = %+v, want one completed span", s)
	}
}

func TestRunBenchmarkSmallGrid(t *testing.T) {
	// A full small-grid run through the harness (fast).
	res, err := RunBenchmark("apte", floorplan.Options{GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	if res.Stages[3].Buffers == 0 {
		t.Error("no buffers on coarse apte")
	}
}

func TestRunTable5PairSmallCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 pair in -short mode")
	}
	pair, err := RunTable5Pair("hp")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline contrast: RABID satisfies wire congestion while
	// BBP/FR concentrates buffers (much higher MTAP).
	if pair.Rabid.Overflows != 0 {
		t.Errorf("RABID left %d overflows", pair.Rabid.Overflows)
	}
	if pair.Bbp.MTAP <= pair.RabidMT {
		t.Errorf("BBP MTAP %.2f%% should exceed RABID %.2f%%", pair.Bbp.MTAP, pair.RabidMT)
	}
	if pair.Bbp.Buffers >= pair.Rabid.Buffers {
		t.Errorf("RABID should insert more buffers (%d) than BBP (%d)",
			pair.Rabid.Buffers, pair.Bbp.Buffers)
	}
}
