package exp

import (
	"testing"

	"repro/internal/floorplan"
)

// TestWholeSuiteConstraints runs every Table I benchmark at a coarse 10-ish
// tiling (fast) and asserts the problem formulation's constraints on the
// final state of each: wire capacity satisfied, buffer sites never
// oversubscribed, all routes valid, and the accounting between graph and
// routes exact.
func TestWholeSuiteConstraints(t *testing.T) {
	// Coarse grids proportional to each circuit's base aspect ratio.
	coarse := map[string][2]int{
		"apte": {10, 11}, "xerox": {10, 10}, "hp": {10, 10},
		"ami33": {11, 10}, "ami49": {10, 10}, "playout": {11, 10},
		"ac3": {10, 10}, "xc5": {10, 10}, "hc7": {10, 10}, "a9c3": {10, 10},
	}
	for _, spec := range floorplan.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := coarse[spec.Name]
			res, err := RunBenchmark(spec.Name, floorplan.Options{GridW: g[0], GridH: g[1]})
			if err != nil {
				t.Fatal(err)
			}
			final := res.Stages[len(res.Stages)-1]
			if final.Overflows != 0 {
				t.Errorf("%d overflows remain", final.Overflows)
			}
			if final.WireMax > 1+1e-9 {
				t.Errorf("wire congestion %v > 1", final.WireMax)
			}
			gr := res.Graph
			for v := 0; v < gr.NumTiles(); v++ {
				if gr.UsedSites(v) > gr.Sites(v) {
					t.Fatalf("tile %d oversubscribed (%d/%d)", v, gr.UsedSites(v), gr.Sites(v))
				}
			}
			wires, want := 0, 0
			for e := 0; e < gr.NumEdges(); e++ {
				wires += gr.Usage(e)
			}
			used := 0
			for v := 0; v < gr.NumTiles(); v++ {
				used += gr.UsedSites(v)
			}
			for i, rt := range res.Routes {
				want += rt.NumEdges()
				if err := rt.Validate(gr.InGrid); err != nil {
					t.Fatalf("net %d: %v", i, err)
				}
			}
			if wires != want {
				t.Errorf("wire accounting: %d registered vs %d route edges", wires, want)
			}
			if used != res.TotalBuffers() {
				t.Errorf("buffer accounting: %d in graph vs %d assigned", used, res.TotalBuffers())
			}
			if final.Buffers == 0 {
				t.Error("no buffers inserted")
			}
		})
	}
}
