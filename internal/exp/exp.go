// Package exp regenerates the paper's experimental tables (I-V) on the
// synthetic benchmark suite. Each TableN function runs the required RABID /
// BBP experiments and renders rows in the paper's column layout; cmd/tables
// prints them and bench_test.go exposes one benchmark per table.
package exp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/bbp"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/textable"
)

// Workers bounds the concurrent benchmark runs of the TableN functions
// (the per-benchmark fan-out); 0 means GOMAXPROCS. Results are collected
// into per-job slots and rows are always rendered in suite order after the
// fan-out completes, so the tables are identical for every value — only
// the progress-log order varies.
var Workers int

// Observer, when set before a TableN call, taps every RABID run of the
// suite (core.Params.Observer) and additionally receives the tables'
// progress lines as KindLog events. Because the benchmark fan-out runs
// jobs concurrently, events from different runs interleave — the sink must
// be safe for concurrent use (all internal/obs sinks are) and should
// aggregate rather than assume one run's stream (obs.Metrics does; a raw
// obs.JSONLines trace of a whole table mixes runs).
var Observer obs.Observer

// CBLNames are the six CBL/MCNC circuits reported stage by stage in
// Table II; RandomNames are the four random circuits reported cumulatively.
var (
	CBLNames    = []string{"apte", "xerox", "hp", "ami33", "ami49", "playout"}
	RandomNames = []string{"ac3", "xc5", "hc7", "a9c3"}
)

// stage1AvgTargets calibrates each circuit's edge capacity so the Stage-1
// average wire congestion matches the paper's Table II value (the paper
// never tabulates W(e); see DESIGN.md).
var stage1AvgTargets = map[string]float64{
	"apte": 0.15, "xerox": 0.16, "hp": 0.31, "ami33": 0.31,
	"ami49": 0.37, "playout": 0.22,
	"ac3": 0.31, "xc5": 0.44, "hc7": 0.52, "a9c3": 0.56,
}

// ParamsFor returns the RABID parameters used for a named benchmark.
func ParamsFor(name string) core.Params {
	p := core.DefaultParams()
	if t, ok := stage1AvgTargets[name]; ok {
		p.TargetStage1Avg = t
	}
	return p
}

// Generate builds the named benchmark circuit with optional overrides.
func Generate(name string, opt floorplan.Options) (*netlist.Circuit, error) {
	spec, err := floorplan.BySuiteName(name)
	if err != nil {
		return nil, err
	}
	return floorplan.Generate(spec, opt)
}

// RunBenchmark generates and runs one suite circuit through RABID, tapped
// by the package Observer when one is set.
func RunBenchmark(name string, opt floorplan.Options) (*core.Result, error) {
	c, err := Generate(name, opt)
	if err != nil {
		return nil, err
	}
	p := ParamsFor(name)
	p.Observer = Observer
	return core.Run(c, p)
}

// progress fans the tables' progress lines out to the package Observer and
// the TableN functions' legacy io.Writer argument. The io.Writer signature
// is kept as a thin adapter: the writer becomes an obs.Progress sink, so
// both paths see the same KindLog events (and a nil log with no Observer
// collapses to a nil observer — no events are built at all).
func progress(log io.Writer) obs.Observer {
	return obs.Multi(Observer, obs.Progress(log))
}

// logf emits one formatted progress line as a KindLog event.
func logf(o obs.Observer, format string, args ...interface{}) {
	if o == nil {
		return
	}
	o.Observe(obs.Event{Kind: obs.KindLog, Scope: fmt.Sprintf(format, args...), Net: -1})
}

// Table1 renders the benchmark statistics and parameters (paper Table I),
// logging per-circuit progress to log (may be nil). It reports the
// generated circuits' actual statistics, which match the specs by
// construction.
func Table1(log io.Writer) (*textable.Table, error) {
	specs := floorplan.Suite()
	circuits := make([]*netlist.Circuit, len(specs))
	o := progress(log)
	if err := par.ForEach(Workers, len(specs), func(i int) error {
		c, err := floorplan.Generate(specs[i], floorplan.Options{})
		if err != nil {
			return fmt.Errorf("table1: %s: %w", specs[i].Name, err)
		}
		logf(o, "table1: %s", specs[i].Name)
		circuits[i] = c
		return nil
	}); err != nil {
		return nil, err
	}
	t := textable.New("circuit", "cells", "nets", "pads", "sinks",
		"grid", "tile(mm2)", "L", "buffer sites", "%chip area")
	for i, spec := range specs {
		c := circuits[i]
		t.AddF(spec.Name, len(c.Blocks), len(c.Nets), c.NumPads, c.TotalSinks(),
			fmt.Sprintf("%dx%d", c.GridW, c.GridH), spec.TileMm, spec.L,
			c.TotalBufferSites(), spec.SitePercentOfChip())
	}
	return t, nil
}

// addStageCells appends one Table II-style row.
func addStageCells(t *textable.Table, circuit, label string, s core.StageStats) {
	t.AddF(circuit, label, s.WireMax, s.WireAvg, s.Overflows,
		s.BufMax, s.BufAvg, s.Buffers, s.Fails,
		int(s.WirelenMm+0.5), int(s.MaxDelayPs+0.5), int(s.AvgDelayPs+0.5),
		fmt.Sprintf("%.1f", s.CPU.Seconds()))
}

func stageHeader() *textable.Table {
	return textable.New("circuit", "stage", "wc max", "wc avg", "overflow",
		"bd max", "bd avg", "#bufs", "#fails", "wl(mm)", "dmax(ps)", "davg(ps)", "cpu(s)")
}

// Table2 runs the full suite: the six CBL circuits stage by stage plus the
// four random circuits' final results (paper Table II).
func Table2(log io.Writer) (*textable.Table, error) {
	names := append(append([]string{}, CBLNames...), RandomNames...)
	results := make([]*core.Result, len(names))
	o := progress(log)
	if err := par.ForEach(Workers, len(names), func(i int) error {
		res, err := RunBenchmark(names[i], floorplan.Options{})
		if err != nil {
			return fmt.Errorf("table2: %s: %w", names[i], err)
		}
		logf(o, "table2: %s", names[i])
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	t := stageHeader()
	for i, name := range names {
		res := results[i]
		if i < len(CBLNames) {
			for _, s := range res.Stages {
				addStageCells(t, name, fmt.Sprintf("%d", s.Stage), s)
			}
			continue
		}
		final := res.Stages[len(res.Stages)-1]
		// The paper reports cumulative CPU over all four stages.
		for _, s := range res.Stages[:len(res.Stages)-1] {
			final.CPU += s.CPU
		}
		addStageCells(t, name, "1-4", final)
	}
	return t, nil
}

// table3Sites are the small/medium/large buffer-site budgets of Table III.
var table3Sites = map[string][3]int{
	"apte":    {280, 700, 3200},
	"xerox":   {600, 1300, 3000},
	"hp":      {300, 600, 2350},
	"ami33":   {500, 850, 2750},
	"ami49":   {850, 1650, 11450},
	"playout": {3250, 6250, 27550},
}

// Table3 varies the number of available buffer sites on the CBL circuits
// (paper Table III). Rows report final (post-Stage-4) results.
func Table3(log io.Writer) (*textable.Table, error) {
	type job struct {
		name  string
		sites int
	}
	var jobs []job
	for _, name := range CBLNames {
		for _, sites := range table3Sites[name] {
			jobs = append(jobs, job{name, sites})
		}
	}
	results := make([]*core.Result, len(jobs))
	o := progress(log)
	if err := par.ForEach(Workers, len(jobs), func(i int) error {
		res, err := RunBenchmark(jobs[i].name, floorplan.Options{Sites: jobs[i].sites})
		if err != nil {
			return fmt.Errorf("table3: %s sites=%d: %w", jobs[i].name, jobs[i].sites, err)
		}
		logf(o, "table3: %s sites=%d", jobs[i].name, jobs[i].sites)
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	t := textable.New("circuit", "sites", "wc max", "wc avg", "overflow",
		"bc max", "bc avg", "#bufs", "#fails", "wl(mm)", "dmax(ps)", "davg(ps)", "cpu(s)")
	for i, j := range jobs {
		res := results[i]
		final := res.Stages[len(res.Stages)-1]
		var cpu float64
		for _, s := range res.Stages {
			cpu += s.CPU.Seconds()
		}
		t.AddF(j.name, j.sites, final.WireMax, final.WireAvg, final.Overflows,
			final.BufMax, final.BufAvg, final.Buffers, final.Fails,
			int(final.WirelenMm+0.5), int(final.MaxDelayPs+0.5), int(final.AvgDelayPs+0.5),
			fmt.Sprintf("%.1f", cpu))
	}
	return t, nil
}

// table4Grids are the grid sweeps of Table IV.
var table4Grids = map[string][][2]int{
	"apte":    {{10, 11}, {20, 22}, {30, 33}, {40, 44}, {50, 55}},
	"ami49":   {{10, 10}, {20, 20}, {30, 30}, {40, 40}, {50, 50}},
	"playout": {{11, 10}, {22, 20}, {33, 30}, {44, 40}, {55, 50}},
}

// Table4Names lists the circuits swept in Table IV, in paper order.
var Table4Names = []string{"apte", "ami49", "playout"}

// Table4 varies the grid size at a constant buffer-site budget (paper
// Table IV).
func Table4(log io.Writer) (*textable.Table, error) {
	type job struct {
		name string
		grid [2]int
	}
	var jobs []job
	for _, name := range Table4Names {
		for _, g := range table4Grids[name] {
			jobs = append(jobs, job{name, g})
		}
	}
	results := make([]*core.Result, len(jobs))
	o := progress(log)
	if err := par.ForEach(Workers, len(jobs), func(i int) error {
		g := jobs[i].grid
		res, err := RunBenchmark(jobs[i].name, floorplan.Options{GridW: g[0], GridH: g[1]})
		if err != nil {
			return fmt.Errorf("table4: %s grid=%dx%d: %w", jobs[i].name, g[0], g[1], err)
		}
		logf(o, "table4: %s grid=%dx%d", jobs[i].name, g[0], g[1])
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	t := textable.New("circuit", "grid", "wc max", "wc avg", "overflow",
		"bc max", "bc avg", "#bufs", "#fails", "wl(mm)", "dmax(ps)", "davg(ps)", "cpu(s)")
	for i, j := range jobs {
		res := results[i]
		final := res.Stages[len(res.Stages)-1]
		var cpu float64
		for _, s := range res.Stages {
			cpu += s.CPU.Seconds()
		}
		t.AddF(j.name, fmt.Sprintf("%dx%d", j.grid[0], j.grid[1]),
			final.WireMax, final.WireAvg, final.Overflows,
			final.BufMax, final.BufAvg, final.Buffers, final.Fails,
			int(final.WirelenMm+0.5), int(final.MaxDelayPs+0.5), int(final.AvgDelayPs+0.5),
			fmt.Sprintf("%.1f", cpu))
	}
	return t, nil
}

// Table5Pair holds one circuit's RABID-vs-BBP/FR comparison.
type Table5Pair struct {
	Circuit string
	Rabid   core.StageStats
	RabidMT float64
	Bbp     *bbp.Result
}

// RunTable5Pair runs both tools on the two-pin decomposition of one
// circuit, sharing the RABID run's calibrated capacity.
func RunTable5Pair(name string) (*Table5Pair, error) {
	c, err := Generate(name, floorplan.Options{})
	if err != nil {
		return nil, err
	}
	two := c.DecomposeTwoPin()
	p := ParamsFor(name)
	p.Observer = Observer
	res, err := core.Run(two, p)
	if err != nil {
		return nil, err
	}
	counts := make([]int, res.Graph.NumTiles())
	for v := range counts {
		counts[v] = res.Graph.UsedSites(v)
	}
	pair := &Table5Pair{
		Circuit: name,
		Rabid:   res.Stages[len(res.Stages)-1],
		RabidMT: bbp.MTAPFromCounts(counts, two.TileUm),
	}
	for _, s := range res.Stages[:len(res.Stages)-1] {
		pair.Rabid.CPU += s.CPU
	}
	pair.Bbp, err = bbp.Run(two, res.Capacity, ParamsFor(name).Tech, Observer)
	if err != nil {
		return nil, err
	}
	return pair, nil
}

// Table5 compares RABID with the BBP/FR baseline on all ten circuits
// (paper Table V).
func Table5(log io.Writer) (*textable.Table, error) {
	specs := floorplan.Suite()
	pairs := make([]*Table5Pair, len(specs))
	o := progress(log)
	if err := par.ForEach(Workers, len(specs), func(i int) error {
		pair, err := RunTable5Pair(specs[i].Name)
		if err != nil {
			return fmt.Errorf("table5: %s: %w", specs[i].Name, err)
		}
		logf(o, "table5: %s", specs[i].Name)
		pairs[i] = pair
		return nil
	}); err != nil {
		return nil, err
	}
	t := textable.New("circuit", "algorithm", "wc max", "wc avg", "overflow",
		"#bufs", "MTAP(%)", "wl(mm)", "dmax(ps)", "davg(ps)", "cpu(s)")
	for i, spec := range specs {
		pair := pairs[i]
		b := pair.Bbp
		t.AddF(spec.Name, "BBP/FR", b.WireMax, b.WireAvg, b.Overflows,
			b.Buffers, b.MTAP, int(b.WirelenMm+0.5),
			int(b.MaxDelayPs+0.5), int(b.AvgDelayPs+0.5),
			fmt.Sprintf("%.1f", b.CPU.Seconds()))
		r := pair.Rabid
		t.AddF(spec.Name, "RABID", r.WireMax, r.WireAvg, r.Overflows,
			r.Buffers, pair.RabidMT, int(r.WirelenMm+0.5),
			int(r.MaxDelayPs+0.5), int(r.AvgDelayPs+0.5),
			fmt.Sprintf("%.1f", r.CPU.Seconds()))
	}
	return t, nil
}

// table6Grid coarsens a circuit's base tiling to a third per axis (every
// suite grid is a multiple of 3 per side, so the chip aspect ratio is
// preserved exactly — the Table IV coarsest grids): the backend comparison
// runs all ten circuits through three engines, and the coarse tiling keeps
// the 30-run sweep CI-sized.
func table6Grid(spec floorplan.Spec) (int, int) {
	return spec.GridW / 3, spec.GridH / 3
}

// RunTable6Run executes one (circuit, engine) cell of the backend
// comparison at the coarse Table VI tiling.
func RunTable6Run(name, engine string) (*core.Result, error) {
	spec, err := floorplan.BySuiteName(name)
	if err != nil {
		return nil, err
	}
	w, h := table6Grid(spec)
	c, err := Generate(name, floorplan.Options{GridW: w, GridH: h})
	if err != nil {
		return nil, err
	}
	p := ParamsFor(name)
	p.Observer = Observer
	p.Backend = engine
	return backend.Plan(context.Background(), c, p) //rabid:allow ctxflow table harness root: no caller context exists
}

// Table6 compares the three planning backends — rabid, rabid+lib, mcf —
// on all ten circuits at a coarse tiling (not a paper table; the engines
// beyond "rabid" are this reproduction's extensions). Columns follow the
// final stage of each engine's pipeline.
func Table6(log io.Writer) (*textable.Table, error) {
	engines := backend.Names()
	specs := floorplan.Suite()
	type job struct {
		circuit string
		engine  string
	}
	var jobs []job
	for _, spec := range specs {
		for _, e := range engines {
			jobs = append(jobs, job{spec.Name, e})
		}
	}
	results := make([]*core.Result, len(jobs))
	o := progress(log)
	if err := par.ForEach(Workers, len(jobs), func(i int) error {
		res, err := RunTable6Run(jobs[i].circuit, jobs[i].engine)
		if err != nil {
			return fmt.Errorf("table6: %s/%s: %w", jobs[i].circuit, jobs[i].engine, err)
		}
		logf(o, "table6: %s %s", jobs[i].circuit, jobs[i].engine)
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	t := textable.New("circuit", "backend", "wl(mm)", "#bufs", "overflow",
		"#fails", "dmax(ps)", "cpu(s)")
	for i, j := range jobs {
		res := results[i]
		final := res.Stages[len(res.Stages)-1]
		var cpu float64
		for _, s := range res.Stages {
			cpu += s.CPU.Seconds()
		}
		t.AddF(j.circuit, j.engine, int(final.WirelenMm+0.5), final.Buffers,
			final.Overflows, final.Fails, int(final.MaxDelayPs+0.5),
			fmt.Sprintf("%.1f", cpu))
	}
	return t, nil
}
