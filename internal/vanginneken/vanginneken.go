// Package vanginneken implements classic timing-driven buffer insertion
// (van Ginneken, ISCAS 1990 — the paper's reference [18]) on routed trees,
// generalized to a library of buffer sizes (Lillis-style). Section II of
// the paper positions this as the follow-up pass: "later in the design
// flow, when more accurate timing information is available, one can rip up
// the buffering solution for a given net and recompute a potentially
// better solution via a timing-driven buffering algorithm." RABID plans
// resources with the length rule; this package re-buffers critical nets
// for delay using whatever buffer sites remain.
//
// The algorithm propagates Pareto sets of (load capacitance, required
// arrival time) options bottom-up: wires degrade RAT by their Elmore
// delay, buffers trade load for intrinsic + drive delay, branch merges
// cross options and keep the non-dominated frontier. Buffer candidates sit
// at tile nodes (trunk position), matching the tile-graph granularity of
// the planning flow; decoupling a branch is expressed by a buffer at the
// branch's first tile.
package vanginneken

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bufferdp"
	"repro/internal/delay"
	"repro/internal/rtree"
	"repro/internal/tech"
)

// Config parameterizes one insertion run.
type Config struct {
	Tech   tech.Tech
	TileUm float64
	// Library lists the candidate buffers. Empty defaults to the single
	// planning buffer of Tech.
	Library []tech.Gate
	// Allowed reports whether a buffer may be placed at route-tree node v
	// (e.g. tiles with free buffer sites). nil allows every node.
	Allowed func(v int) bool
	// SinkRAT gives the required arrival time (seconds) per sink, indexed
	// like rt.SinkNode. nil means zero for all sinks, in which case the
	// negated root RAT is exactly the worst source-to-sink Elmore delay.
	SinkRAT []float64
	// Stats, when non-nil, is overwritten with the candidate-generation
	// counters of this Insert call (telemetry; no behavioural effect).
	Stats *InsertStats
}

// InsertStats counts the Pareto-set work of one Insert call: Candidates
// is the number of (cap, RAT) options generated before pruning, Pruned
// the number dropped as dominated by the frontier.
type InsertStats struct {
	Candidates int
	Pruned     int
}

// Solution is the optimal buffering found.
type Solution struct {
	// Buffers carries the inserted buffers with their chosen gates.
	Buffers []delay.Placed
	// RootRAT is the required arrival time at the driver input: the slack
	// available before the driver must switch. With zero sink RATs,
	// -RootRAT equals the maximum source-to-sink Elmore delay.
	RootRAT float64
}

// opt is one (cap, rat) candidate with recovery provenance.
type opt struct {
	cap, rat float64
	// gate >= 0: a buffer of Library[gate] placed at this node, wrapping
	// junction option from.
	gate int
	// from indexes the junction option (for entry options) or carries the
	// merge backpointers (for junction options).
	from int
}

// jopt is a junction option with per-merge-level backpointers.
type jopt struct {
	cap, rat float64
	// choice[i] is the index of the option chosen from child i's entry
	// list.
	choice []int
}

// nodeState keeps what recovery needs.
type nodeState struct {
	entry    []opt  // options at the node's entry (after optional buffer)
	junction []jopt // merged options at the junction (before buffer)
}

// Insert computes the delay-optimal buffering of rt under cfg.
func Insert(rt *rtree.Tree, cfg Config) (Solution, error) {
	if err := cfg.Tech.Validate(); err != nil {
		return Solution{}, err
	}
	if cfg.TileUm <= 0 {
		return Solution{}, fmt.Errorf("vanginneken: tile size %g must be positive", cfg.TileUm)
	}
	lib := cfg.Library
	if len(lib) == 0 {
		lib = []tech.Gate{cfg.Tech.Buffer}
	}
	allowed := cfg.Allowed
	if allowed == nil {
		allowed = func(int) bool { return true }
	}
	if cfg.SinkRAT != nil && len(cfg.SinkRAT) != len(rt.SinkNode) {
		return Solution{}, fmt.Errorf("vanginneken: %d sink RATs for %d sinks",
			len(cfg.SinkRAT), len(rt.SinkNode))
	}
	wireR := cfg.Tech.WireRes(cfg.TileUm)
	wireC := cfg.Tech.WireCap(cfg.TileUm)

	// Per-node sink load and tightest sink RAT.
	n := rt.NumNodes()
	sinkCap := make([]float64, n)
	sinkRAT := make([]float64, n)
	for i := range sinkRAT {
		sinkRAT[i] = math.Inf(1)
	}
	for k, s := range rt.SinkNode {
		sinkCap[s] += cfg.Tech.SinkCap
		r := 0.0
		if cfg.SinkRAT != nil {
			r = cfg.SinkRAT[k]
		}
		if r < sinkRAT[s] {
			sinkRAT[s] = r
		}
	}

	states := make([]nodeState, n)
	candidates, prunedCount := 0, 0
	for _, v := range rt.PostOrder() {
		kids := rt.Children(v)
		// Junction options: start from the local sink load.
		base := jopt{cap: sinkCap[v], rat: sinkRAT[v]}
		acc := []jopt{base}
		for _, w := range kids {
			// Entry options of w seen through the one-tile edge.
			wopts := states[w].entry
			var merged []jopt
			for _, a := range acc {
				for wi, o := range wopts {
					c := o.cap + wireC
					r := o.rat - wireR*(wireC/2+o.cap)
					choice := append(append([]int(nil), a.choice...), wi)
					merged = append(merged, jopt{
						cap:    a.cap + c,
						rat:    math.Min(a.rat, r),
						choice: choice,
					})
				}
			}
			candidates += len(merged)
			acc = pruneJ(merged)
			prunedCount += len(merged) - len(acc)
		}
		states[v].junction = acc
		// Entry options: pass-through plus buffered variants.
		var entry []opt
		for ji, j := range acc {
			entry = append(entry, opt{cap: j.cap, rat: j.rat, gate: -1, from: ji})
		}
		if allowed(v) {
			for gi, g := range lib {
				bestJ, bestR := -1, math.Inf(-1)
				for ji, j := range acc {
					r := j.rat - g.Intrinsic - g.OutRes*j.cap
					if r > bestR {
						bestR, bestJ = r, ji
					}
				}
				if bestJ >= 0 {
					entry = append(entry, opt{cap: g.InCap, rat: bestR, gate: gi, from: bestJ})
				}
			}
		}
		candidates += len(entry)
		states[v].entry = pruneO(entry)
		prunedCount += len(entry) - len(states[v].entry)
	}
	if cfg.Stats != nil {
		*cfg.Stats = InsertStats{Candidates: candidates, Pruned: prunedCount}
	}

	// Driver: q = rat - Rd * cap over the root's entry options.
	bestQ, bestI := math.Inf(-1), -1
	for i, o := range states[0].entry {
		if q := o.rat - cfg.Tech.DriverRes*o.cap; q > bestQ {
			bestQ, bestI = q, i
		}
	}
	if bestI < 0 {
		return Solution{}, fmt.Errorf("vanginneken: no options at root")
	}
	sol := Solution{RootRAT: bestQ}
	recoverEntry(rt, states, lib, 0, bestI, &sol)
	return sol, nil
}

// recoverEntry replays an entry-option choice at node v.
func recoverEntry(rt *rtree.Tree, states []nodeState, lib []tech.Gate, v, ei int, sol *Solution) {
	o := states[v].entry[ei]
	if o.gate >= 0 {
		sol.Buffers = append(sol.Buffers, delay.Placed{
			Buf:  bufferdp.Buffer{Node: v, Branch: -1},
			Gate: lib[o.gate],
		})
	}
	j := states[v].junction[o.from]
	for ci, w := range rt.Children(v) {
		recoverEntry(rt, states, lib, w, j.choice[ci], sol)
	}
}

// pruneJ keeps the Pareto frontier of junction options (min cap for any
// achieved rat).
func pruneJ(in []jopt) []jopt {
	sort.Slice(in, func(a, b int) bool {
		//rabid:allow floateq sort tie-break: exact equality falls through to the secondary key; an epsilon would break strict weak ordering
		if in[a].cap != in[b].cap {
			return in[a].cap < in[b].cap
		}
		return in[a].rat > in[b].rat
	})
	var out []jopt
	best := math.Inf(-1)
	for _, o := range in {
		if o.rat > best {
			out = append(out, o)
			best = o.rat
		}
	}
	return out
}

// pruneO is pruneJ for entry options.
func pruneO(in []opt) []opt {
	sort.Slice(in, func(a, b int) bool {
		//rabid:allow floateq sort tie-break: exact equality falls through to the secondary key; an epsilon would break strict weak ordering
		if in[a].cap != in[b].cap {
			return in[a].cap < in[b].cap
		}
		return in[a].rat > in[b].rat
	})
	var out []opt
	best := math.Inf(-1)
	for _, o := range in {
		if o.rat > best {
			out = append(out, o)
			best = o.rat
		}
	}
	return out
}
