package vanginneken

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/obs"
	"repro/internal/tech"
)

// RetimeReport records the effect of re-buffering one net.
type RetimeReport struct {
	NetIndex    int
	BeforeMaxPs float64
	AfterMaxPs  float64
	OldBuffers  int
	NewBuffers  []delay.Placed
}

// RetimeCriticalNets re-buffers the k worst-delay nets of a completed
// RABID run with delay-optimal insertion over the buffer sites that remain
// free (plus the sites the net itself was using, which are released
// first). The run's tile graph buffer accounting is updated in place; the
// affected nets' length-rule assignments are superseded by the returned
// reports.
func RetimeCriticalNets(res *core.Result, k int, lib []tech.Gate) ([]RetimeReport, error) {
	if k < 1 {
		return nil, fmt.Errorf("vanginneken: k %d < 1", k)
	}
	eval, err := delay.NewEvaluator(res.Params.Tech, res.Circuit.TileUm)
	if err != nil {
		return nil, err
	}
	// Rank nets by their current max sink delay.
	type ranked struct {
		idx int
		max float64
	}
	var order []ranked
	for i, rt := range res.Routes {
		ds, err := eval.SinkDelays(rt, res.Assignments[i].Buffers)
		if err != nil {
			return nil, err
		}
		m := 0.0
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		order = append(order, ranked{i, m})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].max > order[b].max })
	if k > len(order) {
		k = len(order)
	}
	g := res.Graph
	o := res.Params.Observer
	var reports []RetimeReport
	for _, r := range order[:k] {
		i := r.idx
		rt := res.Routes[i]
		// Release the net's planned buffers; their sites become available
		// to the timing-driven pass.
		for _, b := range res.Assignments[i].Buffers {
			g.RemoveBuffer(g.TileIndex(rt.Tile[b.Node]))
		}
		cfg := Config{
			Tech:    res.Params.Tech,
			TileUm:  res.Circuit.TileUm,
			Library: lib,
			Allowed: func(v int) bool {
				ti := g.TileIndex(rt.Tile[v])
				return g.UsedSites(ti) < g.Sites(ti)
			},
		}
		var ist InsertStats
		t0 := obs.Now(o)
		if o != nil {
			cfg.Stats = &ist
		}
		sol, err := Insert(rt, cfg)
		if err != nil {
			return nil, fmt.Errorf("vanginneken: net %d: %w", i, err)
		}
		if o != nil {
			id := res.Circuit.Nets[i].ID
			obs.Emit(o, obs.Event{Kind: obs.KindCounter, Scope: "retime.candidates", Net: id, Value: float64(ist.Candidates)})
			obs.Emit(o, obs.Event{Kind: obs.KindCounter, Scope: "retime.pruned", Net: id, Value: float64(ist.Pruned)})
			obs.Emit(o, obs.Event{Kind: obs.KindSpanEnd, Scope: "net.retime", Net: id, Dur: obs.Since(o, t0)})
		}
		for _, p := range sol.Buffers {
			g.AddBuffer(g.TileIndex(rt.Tile[p.Buf.Node]))
		}
		reports = append(reports, RetimeReport{
			NetIndex:    i,
			BeforeMaxPs: r.max * 1e12,
			AfterMaxPs:  -sol.RootRAT * 1e12,
			OldBuffers:  len(res.Assignments[i].Buffers),
			NewBuffers:  sol.Buffers,
		})
	}
	return reports, nil
}
