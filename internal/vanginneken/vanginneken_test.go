package vanginneken

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bufferdp"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/tech"
)

func pathTree(n int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x < n; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	t, err := rtree.FromParentMap(geom.Pt{}, parent, []geom.Pt{{X: n - 1}})
	if err != nil {
		panic(err)
	}
	return t
}

func randomTree(r *rand.Rand, maxNodes int) *rtree.Tree {
	parent := map[geom.Pt]geom.Pt{}
	tiles := []geom.Pt{{}}
	for len(tiles) < maxNodes {
		base := tiles[r.Intn(len(tiles))]
		d := [4]geom.Pt{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}[r.Intn(4)]
		nxt := base.Add(d)
		if nxt == (geom.Pt{}) {
			continue
		}
		if _, ok := parent[nxt]; ok {
			continue
		}
		parent[nxt] = base
		tiles = append(tiles, nxt)
	}
	hasChild := map[geom.Pt]bool{}
	for _, p := range parent {
		hasChild[p] = true
	}
	var sinks []geom.Pt
	for c := range parent {
		if !hasChild[c] {
			sinks = append(sinks, c)
		}
	}
	if len(sinks) == 0 {
		sinks = []geom.Pt{{}}
	}
	rt, err := rtree.FromParentMap(geom.Pt{}, parent, sinks)
	if err != nil {
		panic(err)
	}
	return rt
}

func cfg018(tile float64) Config {
	return Config{Tech: tech.Default018(), TileUm: tile, Library: tech.DefaultLibrary018()}
}

func TestPredictionMatchesElmore(t *testing.T) {
	// The DP's -RootRAT must equal the measured Elmore max delay of the
	// recovered buffering (zero sink RATs).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := randomTree(r, 2+r.Intn(25))
		cfg := cfg018(600)
		if r.Intn(2) == 0 {
			cfg.Allowed = func(v int) bool { return v%2 == 0 }
		}
		sol, err := Insert(rt, cfg)
		if err != nil {
			return false
		}
		eval, err := delay.NewEvaluator(cfg.Tech, cfg.TileUm)
		if err != nil {
			return false
		}
		ds, err := eval.SinkDelaysSized(rt, sol.Buffers)
		if err != nil {
			return false
		}
		m := 0.0
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		pred := -sol.RootRAT
		return math.Abs(pred-m) <= 1e-9*math.Max(1e-12, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestNoBuffersWhenDisallowed(t *testing.T) {
	rt := pathTree(20)
	cfg := cfg018(600)
	cfg.Allowed = func(int) bool { return false }
	sol, err := Insert(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Buffers) != 0 {
		t.Fatalf("buffers placed despite Allowed=false: %v", sol.Buffers)
	}
	eval, _ := delay.NewEvaluator(cfg.Tech, cfg.TileUm)
	ds, err := eval.SinkDelays(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(-sol.RootRAT-ds[0]) > 1e-20 {
		t.Errorf("unbuffered prediction %.3g != Elmore %.3g", -sol.RootRAT, ds[0])
	}
}

func TestBufferingImprovesLongLine(t *testing.T) {
	rt := pathTree(30) // 17.4mm at 600um tiles
	cfg := cfg018(600)
	sol, err := Insert(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Buffers) == 0 {
		t.Fatal("no buffers on an 18mm line")
	}
	cfgOff := cfg
	cfgOff.Allowed = func(int) bool { return false }
	unbuf, err := Insert(rt, cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	if sol.RootRAT <= unbuf.RootRAT {
		t.Errorf("buffering did not improve RAT: %v vs %v", sol.RootRAT, unbuf.RootRAT)
	}
}

func TestBiggerLibraryNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := randomTree(r, 2+r.Intn(20))
		small := cfg018(600)
		small.Library = tech.DefaultLibrary018()[:1]
		big := cfg018(600)
		s1, err1 := Insert(rt, small)
		s2, err2 := Insert(rt, big)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2.RootRAT >= s1.RootRAT-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSinkRATsShiftSlack(t *testing.T) {
	rt := pathTree(10)
	cfg := cfg018(600)
	base, err := Insert(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SinkRAT = []float64{5e-10}
	shifted, err := Insert(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((shifted.RootRAT-base.RootRAT)-5e-10) > 1e-15 {
		t.Errorf("RAT shift = %v, want 5e-10", shifted.RootRAT-base.RootRAT)
	}
	cfg.SinkRAT = []float64{1, 2}
	if _, err := Insert(rt, cfg); err == nil {
		t.Error("mismatched SinkRAT length accepted")
	}
}

func TestOptimalityOnPathVsBruteForce(t *testing.T) {
	// Exhaustive check on short paths with the 1x library: try every
	// buffer-position subset and compare measured Elmore max delay.
	tt := tech.Default018()
	eval, err := delay.NewEvaluator(tt, 900)
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 9; n++ {
		rt := pathTree(n)
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			var bufs []delay.Placed
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					bufs = append(bufs, delay.Placed{
						Buf:  bufferBufAt(v),
						Gate: tt.Buffer,
					})
				}
			}
			ds, err := eval.SinkDelaysSized(rt, bufs)
			if err != nil {
				t.Fatal(err)
			}
			if ds[0] < best {
				best = ds[0]
			}
		}
		sol, err := Insert(rt, Config{Tech: tt, TileUm: 900})
		if err != nil {
			t.Fatal(err)
		}
		got := -sol.RootRAT
		if math.Abs(got-best) > 1e-9*best {
			t.Errorf("n=%d: DP %.4g vs brute %.4g", n, got, best)
		}
	}
}

func TestValidation(t *testing.T) {
	rt := pathTree(3)
	if _, err := Insert(rt, Config{Tech: tech.Tech{}, TileUm: 600}); err == nil {
		t.Error("invalid tech accepted")
	}
	if _, err := Insert(rt, Config{Tech: tech.Default018(), TileUm: 0}); err == nil {
		t.Error("zero tile accepted")
	}
}

// --- retime ------------------------------------------------------------

func smallCircuit(seed int64, nets, grid int) *netlist.Circuit {
	r := rand.New(rand.NewSource(seed))
	tileUm := 600.0
	c := &netlist.Circuit{
		Name: "vg", GridW: grid, GridH: grid, TileUm: tileUm,
		BufferSites: make([]int, grid*grid),
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 3
	}
	pin := func() netlist.Pin {
		p := geom.FPt{X: r.Float64() * float64(grid) * tileUm, Y: r.Float64() * float64(grid) * tileUm}
		if p.X >= c.ChipW() {
			p.X = c.ChipW() - 1
		}
		if p.Y >= c.ChipH() {
			p.Y = c.ChipH() - 1
		}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i := 0; i < nets; i++ {
		n := &netlist.Net{ID: i, Name: "n", Source: pin(), L: 4}
		for s := 0; s <= r.Intn(2); s++ {
			n.Sinks = append(n.Sinks, pin())
		}
		c.Nets = append(c.Nets, n)
	}
	return c
}

func TestRetimeCriticalNets(t *testing.T) {
	c := smallCircuit(11, 25, 14)
	res, err := core.Run(c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := RetimeCriticalNets(res, 5, tech.DefaultLibrary018())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		// Timing-driven insertion with a richer library must not be worse
		// than the length-based plan on the same route.
		if r.AfterMaxPs > r.BeforeMaxPs+1e-6 {
			t.Errorf("net %d regressed: %.1f -> %.1f ps", r.NetIndex, r.BeforeMaxPs, r.AfterMaxPs)
		}
	}
	// Buffer-site accounting stays consistent: b(v) <= B(v) everywhere.
	g := res.Graph
	for v := 0; v < g.NumTiles(); v++ {
		if g.UsedSites(v) > g.Sites(v) {
			t.Fatalf("tile %d oversubscribed after retime", v)
		}
	}
	if _, err := RetimeCriticalNets(res, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

// bufferBufAt builds a trunk buffer placement at node v.
func bufferBufAt(v int) bufferdp.Buffer {
	return bufferdp.Buffer{Node: v, Branch: -1}
}
