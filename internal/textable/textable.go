// Package textable renders aligned plain-text tables for the experiment
// harness, mirroring the row/column layout of the paper's tables.
package textable

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells under a fixed header.
type Table struct {
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends a row. Missing cells render empty; extra cells are an error
// surfaced at render time to keep call sites terse.
func (t *Table) Add(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddF appends a row of formatted values: strings pass through, float64
// renders with two decimals, integers plainly.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// String renders the table with a header underline and right-aligned
// numeric-looking columns.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	update := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	update(t.headers)
	for _, r := range t.rows {
		update(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for i, w := range width {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
