package textable

import (
	"strings"
	"testing"
)

func TestRendering(t *testing.T) {
	tb := New("name", "count", "ratio")
	tb.AddF("alpha", 12, 0.5)
	tb.AddF("b", 3, 1.25)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("underline missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "0.50") {
		t.Errorf("row formatting wrong: %q", lines[2])
	}
	// Columns right-align: the last digits of the 'count' values line up.
	i1 := strings.Index(lines[2], "12")
	i2 := strings.Index(lines[3], "3")
	if i1 < 0 || i2 < 0 || i1+1 != i2 {
		t.Errorf("numeric alignment off:\n%s", out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows have different widths:\n%s", out)
	}
}

func TestShortRowsPad(t *testing.T) {
	tb := New("a", "b", "c")
	tb.Add("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestAddFTypes(t *testing.T) {
	tb := New("v")
	tb.AddF(uint8(7))
	if !strings.Contains(tb.String(), "7") {
		t.Error("fallback formatting failed")
	}
}
