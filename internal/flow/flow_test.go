package flow

import (
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
)

func spec10(t *testing.T) floorplan.Spec {
	t.Helper()
	s, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvaluateCandidatesRanks(t *testing.T) {
	spec := spec10(t)
	cands, err := EvaluateCandidates(spec, Options{
		Seeds:  []int64{11, 22, 33},
		GenOpt: floorplan.Options{GridW: 10, GridH: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Score > cands[i].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
	for _, c := range cands {
		if c.Circuit == nil || c.Result == nil {
			t.Fatal("candidate missing artifacts")
		}
		if c.Final().Stage != 4 {
			t.Fatal("final stage missing")
		}
	}
	// Scores differ across placements (the whole point of the loop).
	if cands[0].Score == cands[len(cands)-1].Score {
		t.Error("all candidates scored identically; evaluation has no discrimination")
	}
}

func TestEvaluateValidation(t *testing.T) {
	spec := spec10(t)
	if _, err := EvaluateCandidates(spec, Options{}); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestScoreOrdering(t *testing.T) {
	base := core.StageStats{MaxDelayPs: 2000}
	fails := core.StageStats{MaxDelayPs: 1000, Fails: 3}
	overflow := core.StageStats{MaxDelayPs: 1000, Overflows: 1}
	if Score(fails, 0, 0) <= Score(base, 0, 0) {
		t.Error("failures must outweigh a 1ns delay edge")
	}
	if Score(overflow, 0, 0) <= Score(base, 0, 0) {
		t.Error("overflow must outweigh a 1ns delay edge")
	}
	if Score(base, 0, 0) != 2000 {
		t.Errorf("clean score = %v", Score(base, 0, 0))
	}
}
