// Package flow implements the paper's intended use of RABID: early,
// accurate floorplan evaluation. Section II argues that raw post-placement
// timing cannot rank floorplans ("the slacks for both are so absurdly far
// from their targets"); instead, "buffer and wire planning must be
// efficiently performed first, then the design can be timed to provide a
// meaningful worst slack... We envision performing buffer and wire
// planning each time the designer wants to evaluate a floorplan."
//
// EvaluateCandidates runs that loop: several floorplan candidates of the
// same netlist (different annealing/placement seeds), each planned by
// RABID and scored on the planned metrics — congestion feasibility first,
// then length-rule failures, then delay.
package flow

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/netlist"
)

// Candidate is one evaluated floorplan.
type Candidate struct {
	// Seed distinguishes the floorplan variant.
	Seed int64
	// Circuit is the generated instance (nil until evaluated).
	Circuit *netlist.Circuit
	// Result is the completed RABID run.
	Result *core.Result
	// Score is the composite ranking value (lower is better).
	Score float64
}

// Final returns the last stage's statistics.
func (c *Candidate) Final() core.StageStats {
	return c.Result.Stages[len(c.Result.Stages)-1]
}

// Options configures the evaluation loop.
type Options struct {
	// Seeds lists the floorplan variants to compare (at least one).
	Seeds []int64
	// Annealed selects simulated-annealing block placement for the
	// candidates (slower, closer to the paper's setup).
	Annealed bool
	// GenOpt carries additional generation overrides (grid, sites); its
	// Seed and Annealed fields are controlled per candidate.
	GenOpt floorplan.Options
	// Params for the RABID runs; zero MaxRipupPasses selects defaults.
	Params core.Params
	// FailWeightPs and OverflowWeightPs convert a length-rule failure and
	// a unit of wire overflow into picoseconds of score penalty (defaults
	// 1000 and 5000): infeasibility must dominate raw delay.
	FailWeightPs, OverflowWeightPs float64
}

// Score computes the composite ranking value for final-stage stats.
func Score(s core.StageStats, failWeightPs, overflowWeightPs float64) float64 {
	if failWeightPs == 0 {
		failWeightPs = 1000
	}
	if overflowWeightPs == 0 {
		overflowWeightPs = 5000
	}
	return s.MaxDelayPs + failWeightPs*float64(s.Fails) + overflowWeightPs*float64(s.Overflows)
}

// EvaluateCandidates generates, plans, and ranks the candidates, returning
// them best first.
func EvaluateCandidates(spec floorplan.Spec, opt Options) ([]*Candidate, error) {
	if len(opt.Seeds) == 0 {
		return nil, fmt.Errorf("flow: no candidate seeds")
	}
	if opt.Params.MaxRipupPasses == 0 {
		opt.Params = core.DefaultParams()
	}
	var out []*Candidate
	for _, seed := range opt.Seeds {
		gen := opt.GenOpt
		gen.Seed = seed
		gen.Annealed = opt.Annealed
		c, err := floorplan.Generate(spec, gen)
		if err != nil {
			return nil, fmt.Errorf("flow: seed %d: %w", seed, err)
		}
		res, err := core.Run(c, opt.Params)
		if err != nil {
			return nil, fmt.Errorf("flow: seed %d: %w", seed, err)
		}
		cand := &Candidate{Seed: seed, Circuit: c, Result: res}
		cand.Score = Score(cand.Final(), opt.FailWeightPs, opt.OverflowWeightPs)
		out = append(out, cand)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score < out[b].Score })
	return out, nil
}
