// Package par provides the deterministic bounded worker pool behind the
// order-independent per-net stages of the RABID pipeline (Stage-1 Steiner
// construction, per-net delay refresh, snapshot accounting) and the
// per-benchmark fan-out of the experiment suite.
//
// The contract that keeps parallel runs bit-identical to sequential ones:
// work item i writes only to its own slot of any shared slice, every
// shared structure that is mutated (the tile graph, the stage orderings)
// stays in sequential sections, and any floating-point reduction over the
// per-item results is performed by the caller in index order after ForEach
// returns. See DESIGN.md, "Parallel execution model".
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values below 1 mean
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and waits for all of them to finish. Every index runs
// regardless of other indices failing: per-index errors are collected and
// returned joined in index order (errors.Join), so partial failures
// surface instead of being dropped. A panic inside fn is captured and
// reported as that index's error, so one bad item cannot tear down the
// whole pool. With a single worker (or a single item) fn runs inline on
// the calling goroutine in index order.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn) //rabid:allow ctxflow ForEach is the documented uncancellable variant of ForEachCtx for fan-outs that must run to completion; ctx-holding callers use ForEachCtx
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done no
// new index is handed out, on any worker. Indices already dispatched run to
// completion (fn is never interrupted mid-item), so shared state is left at
// an item boundary. The returned error joins ctx.Err() — when the context
// was cancelled — after the per-index errors, so callers observe both the
// partial failures and the cancellation (errors.Is sees through the join).
// Which indices ran before the cancellation landed is timing-dependent;
// with an undone context the behaviour and results are exactly ForEach's.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			errs[i] = capture(i, fn)
		}
		return errors.Join(append(errs, ctx.Err())...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = capture(i, fn)
			}
		}()
	}
	wg.Wait()
	return errors.Join(append(errs, ctx.Err())...)
}

// ForEachWorker is ForEach for workloads needing per-worker scratch state:
// fn receives a worker slot w in [0, min(Workers(workers), n)) alongside
// the item index, and no two concurrent invocations share a slot, so fn
// may address exclusive per-slot scratch (the parallel router's per-worker
// workspaces). Which items land on which slot is timing-dependent, exactly
// as with ForEach; determinism of results must come from fn writing only
// to per-index state and from slot scratch never influencing outputs. With
// a single worker (or single item) fn runs inline on slot 0 in index
// order.
func ForEachWorker(workers, n int, fn func(w, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w == 1 {
		f0 := func(i int) error { return fn(0, i) }
		for i := 0; i < n; i++ {
			errs[i] = capture(i, f0)
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = capture(i, func(i int) error { return fn(slot, i) })
			}
		}(g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// capture invokes fn(i), converting a panic into an error.
func capture(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: item %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
