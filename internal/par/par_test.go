package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 5, 64} {
		n := 37
		counts := make([]atomic.Int32, n)
		if err := ForEach(w, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called with zero items")
	}
}

// TestForEachCollectsAllErrors proves partial failures are never dropped:
// every failing index appears in the joined error, in index order.
func TestForEachCollectsAllErrors(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(w, 10, func(i int) error {
			if i%3 == 0 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		msg := err.Error()
		for _, want := range []string{"item 0 failed", "item 3 failed", "item 6 failed", "item 9 failed"} {
			if !strings.Contains(msg, want) {
				t.Errorf("workers=%d: joined error missing %q:\n%s", w, want, msg)
			}
		}
		if i0, i9 := strings.Index(msg, "item 0"), strings.Index(msg, "item 9"); i0 > i9 {
			t.Errorf("workers=%d: errors not in index order:\n%s", w, msg)
		}
	}
}

// TestForEachSurvivesFailures: indices after a failing one still run.
func TestForEachSurvivesFailures(t *testing.T) {
	n := 20
	ran := make([]atomic.Bool, n)
	err := ForEach(2, n, func(i int) error {
		ran[i].Store(true)
		if i == 0 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Errorf("index %d skipped after earlier failure", i)
		}
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, w := range []int{1, 3} {
		err := ForEach(w, 5, func(i int) error {
			if i == 2 {
				panic("exploded")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "item 2 panicked: exploded") {
			t.Errorf("workers=%d: panic not captured: %v", w, err)
		}
	}
}

// TestForEachBoundsConcurrency checks the pool never exceeds the
// requested worker count.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	gate := make(chan struct{})
	go func() {
		// Release everyone once the test has had a chance to pile up.
		for i := 0; i < 100; i++ {
			gate <- struct{}{}
		}
	}()
	if err := ForEach(workers, 100, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		<-gate
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent items, worker bound is %d", m, workers)
	}
}

// TestForEachDeterministicResults: per-slot writes give identical results
// for any worker count — the property the pipeline's determinism rests on.
func TestForEachDeterministicResults(t *testing.T) {
	n := 101
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i*i%17) / 3.0
	}
	for _, w := range []int{1, 2, 8, 0} {
		out := make([]float64, n)
		if err := ForEach(w, n, func(i int) error {
			out[i] = float64(i*i%17) / 3.0
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", w, i, out[i], ref[i])
			}
		}
	}
}

// TestForEachCtxUndoneMatchesForEach: with a live context the ctx path is
// behaviourally identical to ForEach — every index runs exactly once, no
// error — for every worker count the determinism suite exercises.
func TestForEachCtxUndoneMatchesForEach(t *testing.T) {
	for _, w := range []int{1, 2, 8, 0} {
		n := 37
		counts := make([]atomic.Int32, n)
		if err := ForEachCtx(context.Background(), w, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

// TestForEachCtxCancelStopsDispatch: after cancel no new index is handed
// out, on any worker count, and ctx.Err() is in the joined error.
func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		release := make(chan struct{})
		var once sync.Once
		err := ForEachCtx(ctx, w, 1000, func(i int) error {
			started.Add(1)
			once.Do(func() {
				cancel()
				close(release)
			})
			<-release
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", w, err)
		}
		// Each worker can have at most one item in flight when the cancel
		// lands, so the started count is bounded by the pool size — far
		// from the 1000 requested items.
		if s := started.Load(); s > int32(Workers(w)) {
			t.Errorf("workers=%d: %d items started after cancel, want <= %d", w, s, Workers(w))
		}
	}
}

// TestForEachCtxCancelKeepsItemErrors: per-index failures recorded before
// the cancellation survive in the joined error, alongside ctx.Err().
func TestForEachCtxCancelKeepsItemErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachCtx(ctx, 1, 10, func(i int) error {
		if i == 2 {
			cancel()
			return fmt.Errorf("item 2 failed")
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "item 2 failed") {
		t.Errorf("joined error lost the per-item failure: %v", err)
	}
}

// TestForEachCtxPreCancelled: an already-done context runs nothing.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		called := atomic.Int32{}
		err := ForEachCtx(ctx, w, 50, func(i int) error { called.Add(1); return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: %v", w, err)
		}
		// The single-worker path checks before every index; the parallel
		// path checks before each dispatch, so at most one item per worker
		// can slip in between spawn and the first check.
		if c := called.Load(); c > int32(w) {
			t.Errorf("workers=%d: %d items ran on a pre-cancelled context", w, c)
		}
	}
}
