package geom

import (
	"testing"
	"testing/quick"
)

func TestPtManhattan(t *testing.T) {
	cases := []struct {
		a, b Pt
		want int
	}{
		{Pt{0, 0}, Pt{0, 0}, 0},
		{Pt{0, 0}, Pt{3, 4}, 7},
		{Pt{-2, 5}, Pt{1, 1}, 7},
		{Pt{10, 10}, Pt{10, 11}, 1},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Manhattan(c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestPtAdd(t *testing.T) {
	if got := (Pt{1, 2}).Add(Pt{3, -5}); got != (Pt{4, -3}) {
		t.Errorf("Add = %v, want (4,-3)", got)
	}
}

func TestPtString(t *testing.T) {
	if got := (Pt{3, -1}).String(); got != "(3,-1)" {
		t.Errorf("String = %q", got)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt{int(ax), int(ay)}
		b := Pt{int(bx), int(by)}
		c := Pt{int(cx), int(cy)}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanNonNegativeAndIdentity(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := Pt{int(ax), int(ay)}
		b := Pt{int(bx), int(by)}
		d := a.Manhattan(b)
		if d < 0 {
			return false
		}
		return (d == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{FPt{0, 0}, FPt{4, 2}}
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Errorf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	if c := r.Center(); c != (FPt{2, 1}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Valid() {
		t.Error("rect should be valid")
	}
	if (Rect{FPt{1, 1}, FPt{0, 0}}).Valid() {
		t.Error("inverted rect should be invalid")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{FPt{0, 0}, FPt{4, 2}}
	if !r.Contains(FPt{0, 0}) {
		t.Error("low corner should be contained")
	}
	if r.Contains(FPt{4, 2}) {
		t.Error("high corner should be excluded")
	}
	if !r.Contains(FPt{3.9, 1.9}) {
		t.Error("interior point should be contained")
	}
	if r.Contains(FPt{-0.1, 1}) {
		t.Error("outside point should not be contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{FPt{0, 0}, FPt{2, 2}}
	b := Rect{FPt{1, 1}, FPt{3, 3}}
	c := Rect{FPt{2, 0}, FPt{4, 2}} // abutting a, zero-area overlap
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) || c.Intersects(a) {
		t.Error("abutting rects should not intersect")
	}
}

func TestFPtManhattan(t *testing.T) {
	d := (FPt{0, 0}).Manhattan(FPt{1.5, -2.5})
	if d != 4.0 {
		t.Errorf("FPt Manhattan = %v, want 4", d)
	}
}

func TestScalarHelpers(t *testing.T) {
	if Abs(-3) != 3 || Abs(3) != 3 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
	if AbsF(-1.5) != 1.5 || AbsF(2.0) != 2.0 {
		t.Error("AbsF broken")
	}
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
}
