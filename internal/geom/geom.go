// Package geom provides the small geometric vocabulary shared by the tile
// graph, floorplan, and routing packages: integer grid points, floating-point
// chip-coordinate points, rectangles, and Manhattan metrics.
//
// Grid coordinates (Pt) index tiles; chip coordinates (FPt) are in
// micrometers unless a caller documents otherwise.
package geom

import "fmt"

// Pt is an integer grid point (tile coordinate).
type Pt struct {
	X, Y int
}

// String implements fmt.Stringer.
func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between two grid points in tile units.
func (p Pt) Manhattan(q Pt) int {
	return Abs(p.X-q.X) + Abs(p.Y-q.Y)
}

// FPt is a point in chip coordinates (micrometers).
type FPt struct {
	X, Y float64
}

// Manhattan returns the L1 distance between two chip-coordinate points.
func (p FPt) Manhattan(q FPt) float64 {
	return AbsF(p.X-q.X) + AbsF(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle in chip coordinates. Lo is the lower-left
// corner and Hi the upper-right corner; Lo.X <= Hi.X and Lo.Y <= Hi.Y for a
// well-formed rectangle.
type Rect struct {
	Lo, Hi FPt
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.Hi.X - r.Lo.X }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle center point.
func (r Rect) Center() FPt { return FPt{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2} }

// Contains reports whether p lies inside r (inclusive of the low edge,
// exclusive of the high edge, so adjacent rectangles do not share points).
func (r Rect) Contains(p FPt) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// Intersects reports whether two rectangles overlap with positive area.
func (r Rect) Intersects(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X && r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// Valid reports whether the rectangle is well formed (non-negative extent).
func (r Rect) Valid() bool { return r.Hi.X >= r.Lo.X && r.Hi.Y >= r.Lo.Y }

// Abs returns the absolute value of an int.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// AbsF returns the absolute value of a float64 without importing math.
func AbsF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Min returns the smaller of two ints.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two ints.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
