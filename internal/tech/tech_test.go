package tech

import (
	"math"
	"testing"
)

func TestDefault018Validates(t *testing.T) {
	if err := Default018().Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutate := []func(*Tech){
		func(x *Tech) { x.WireResPerUm = 0 },
		func(x *Tech) { x.WireCapPerUm = -1 },
		func(x *Tech) { x.DriverRes = 0 },
		func(x *Tech) { x.Buffer.OutRes = 0 },
		func(x *Tech) { x.Buffer.InCap = 0 },
		func(x *Tech) { x.Buffer.Intrinsic = 0 },
		func(x *Tech) { x.SinkCap = 0 },
	}
	for i, m := range mutate {
		tt := Default018()
		m(&tt)
		if err := tt.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestWireParasitics(t *testing.T) {
	tt := Default018()
	if got := tt.WireRes(1000); math.Abs(got-75) > 1e-9 {
		t.Errorf("WireRes(1mm) = %v, want 75 ohm", got)
	}
	wantC := 0.118e-15 * 1000
	if got := tt.WireCap(1000); math.Abs(got-wantC) > 1e-24 {
		t.Errorf("WireCap(1mm) = %v, want %v", got, wantC)
	}
}

func TestOptimalBufferDistPlausible(t *testing.T) {
	// For 0.18um global wiring the optimal repeater spacing is on the order
	// of a millimeter; the paper's rule-of-thumb spacings (tile units of
	// ~0.6-1.0 mm times L_i in 5..6) bracket a few millimeters.
	d := Default018().OptimalBufferDistUm()
	if d < 500 || d > 5000 {
		t.Errorf("optimal buffer distance %v um implausible for 0.18um", d)
	}
}

func TestOptimalBufferDistFormula(t *testing.T) {
	tt := Default018()
	want := math.Sqrt(2 * tt.Buffer.OutRes * tt.Buffer.InCap / (tt.WireResPerUm * tt.WireCapPerUm))
	if got := tt.OptimalBufferDistUm(); math.Abs(got-want) > 1e-9 {
		t.Errorf("OptimalBufferDistUm = %v, want %v", got, want)
	}
}
