// Package tech models the process technology used by the experiments: wire
// parasitics per unit length and the electrical view of drivers, buffers,
// and sinks.
//
// The paper embeds all benchmarks in the same 0.18 µm technology as Cong,
// Kong, and Pan's buffer-block planning work (ICCAD-99); the parameter set
// below is the published one from that line of work. All values use the
// units stated in the field comments; delays computed from them come out in
// seconds and are usually reported in picoseconds.
package tech

import (
	"fmt"
	"math"
)

// Tech bundles the per-unit wire parasitics and the gate library used for
// Elmore delay evaluation. The zero value is not useful; start from
// Default018 (or build your own for a different node).
type Tech struct {
	// WireResPerUm is wire resistance in ohms per micrometer.
	WireResPerUm float64
	// WireCapPerUm is wire capacitance in farads per micrometer.
	WireCapPerUm float64
	// DriverRes is the output resistance of a net's source driver, in ohms.
	DriverRes float64
	// Buffer is the (single-size) buffer inserted on signal nets.
	Buffer Gate
	// SinkCap is the input capacitance presented by each sink, in farads.
	SinkCap float64
}

// Gate is the electrical model of a buffer (or inverter) from the library:
// a switch-level RC model with an intrinsic delay.
type Gate struct {
	// OutRes is the gate output resistance in ohms.
	OutRes float64
	// InCap is the gate input capacitance in farads.
	InCap float64
	// Intrinsic is the gate's intrinsic delay in seconds.
	Intrinsic float64
}

// Default018 returns the 0.18 µm parameter set used throughout the
// experiments: wire 0.075 Ω/µm and 0.118 fF/µm; 180 Ω driver and buffer
// output resistance; 23.4 fF buffer input capacitance; 36.4 ps intrinsic
// buffer delay. Sinks present one buffer input capacitance of load.
func Default018() Tech {
	return Tech{
		WireResPerUm: 0.075,
		WireCapPerUm: 0.118e-15,
		DriverRes:    180,
		Buffer: Gate{
			OutRes:    180,
			InCap:     23.4e-15,
			Intrinsic: 36.4e-12,
		},
		SinkCap: 23.4e-15,
	}
}

// DefaultLibrary018 returns a small buffer library for the 0.18 µm node:
// the 1x planning buffer of Default018 plus 2x and 4x power-ups (output
// resistance scales down with size, input capacitance and intrinsic delay
// scale up mildly). The paper's buffer sites may hold "a buffer or inverter
// with a range of power levels"; this library models that range for the
// timing-driven re-buffering pass.
func DefaultLibrary018() []Gate {
	b := Default018().Buffer
	return []Gate{
		b,
		{OutRes: b.OutRes / 2, InCap: b.InCap * 1.8, Intrinsic: b.Intrinsic * 1.05},
		{OutRes: b.OutRes / 4, InCap: b.InCap * 3.2, Intrinsic: b.Intrinsic * 1.15},
	}
}

// LibGate is one entry of a planning buffer library: the electrical gate
// model plus the planning-level attributes the multi-type buffer-insertion
// DP consumes (Li & Shi's b-buffer-type formulation, specialized to the
// paper's length-based cost). All fields serialize, so a library is part
// of a plan request's content address.
type LibGate struct {
	// Name identifies the gate in tables, flags, and request bodies.
	Name string `json:"name"`
	// OutRes is the gate output resistance in ohms.
	OutRes float64 `json:"out_res"`
	// InCap is the gate input capacitance in farads.
	InCap float64 `json:"in_cap"`
	// Intrinsic is the gate's intrinsic delay in seconds.
	Intrinsic float64 `json:"intrinsic"`
	// Inverting marks an inverter: it flips signal polarity, and the DP
	// must pair inverters on every driver-to-sink chain so each sink sees
	// the true signal.
	Inverting bool `json:"inverting"`
	// AreaCost scales the Eq. (2) site cost q(v) when this gate occupies a
	// buffer site (1 = the 1x planning buffer's footprint).
	AreaCost float64 `json:"area_cost"`
}

// Electrical returns the gate's RC view for Elmore delay evaluation.
func (g LibGate) Electrical() Gate {
	return Gate{OutRes: g.OutRes, InCap: g.InCap, Intrinsic: g.Intrinsic}
}

// DriveScale returns the length-constraint scale of g relative to the base
// planning buffer: sqrt(Rbase/Rg). The slew-derived length rule is
// dominated by the driving gate's output resistance charging the wire
// capacitance; the square root accounts for the distributed-wire RC term
// that grows quadratically with length (see internal/slew). A gate with
// half the output resistance may therefore drive ~1.41x the 1x buffer's
// tile length before violating the same slew target.
func (g LibGate) DriveScale(base Gate) float64 {
	return math.Sqrt(base.OutRes / g.OutRes)
}

// Validate reports an error when the gate's electricals or planning
// attributes are non-positive.
func (g LibGate) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"OutRes", g.OutRes},
		{"InCap", g.InCap},
		{"Intrinsic", g.Intrinsic},
		{"AreaCost", g.AreaCost},
	}
	for _, c := range checks {
		if !(c.v > 0) || math.IsInf(c.v, 1) {
			return fmt.Errorf("tech: library gate %q: %s must be positive and finite, got %g", g.Name, c.name, c.v)
		}
	}
	return nil
}

// DefaultPlanningLibrary018 returns the planning buffer library for the
// 0.18 µm node: the 1x/2x/4x buffers of DefaultLibrary018 plus 1x/2x
// inverters. The paper's buffer sites hold "a buffer or inverter with a
// range of power levels"; inverters are roughly half a buffer (a buffer is
// two cascaded inverters), so they cost about half the site area and have
// under half the intrinsic delay, but flip polarity — the multi-type DP
// may only use them in pairs on any driver-to-sink chain.
func DefaultPlanningLibrary018() []LibGate {
	b := Default018().Buffer
	return []LibGate{
		{Name: "buf1x", OutRes: b.OutRes, InCap: b.InCap, Intrinsic: b.Intrinsic, AreaCost: 1},
		{Name: "buf2x", OutRes: b.OutRes / 2, InCap: b.InCap * 1.8, Intrinsic: b.Intrinsic * 1.05, AreaCost: 1.6},
		{Name: "buf4x", OutRes: b.OutRes / 4, InCap: b.InCap * 3.2, Intrinsic: b.Intrinsic * 1.15, AreaCost: 2.5},
		{Name: "inv1x", OutRes: b.OutRes, InCap: b.InCap * 0.55, Intrinsic: b.Intrinsic * 0.45, Inverting: true, AreaCost: 0.55},
		{Name: "inv2x", OutRes: b.OutRes / 2, InCap: b.InCap, Intrinsic: b.Intrinsic * 0.5, Inverting: true, AreaCost: 0.9},
	}
}

// WireRes returns the resistance of a wire of the given length (µm).
func (t Tech) WireRes(lenUm float64) float64 { return t.WireResPerUm * lenUm }

// WireCap returns the capacitance of a wire of the given length (µm).
func (t Tech) WireCap(lenUm float64) float64 { return t.WireCapPerUm * lenUm }

// Validate reports an error when any parameter is non-positive; such a
// technology would make every Elmore delay meaningless.
func (t Tech) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"WireResPerUm", t.WireResPerUm},
		{"WireCapPerUm", t.WireCapPerUm},
		{"DriverRes", t.DriverRes},
		{"Buffer.OutRes", t.Buffer.OutRes},
		{"Buffer.InCap", t.Buffer.InCap},
		{"Buffer.Intrinsic", t.Buffer.Intrinsic},
		{"SinkCap", t.SinkCap},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("tech: %s must be positive, got %g", c.name, c.v)
		}
	}
	return nil
}

// OptimalBufferDistUm returns the classical closed-form optimal distance
// between repeaters for this technology, sqrt(2*Rb*Cb/(r*c)) with Rb, Cb the
// buffer output resistance and input capacitance and r, c the unit wire
// parasitics. It is used only as a sanity anchor when choosing tile-based
// length constraints L_i; the planning algorithms themselves work purely in
// tile units.
func (t Tech) OptimalBufferDistUm() float64 {
	x := 2 * t.Buffer.OutRes * t.Buffer.InCap / (t.WireResPerUm * t.WireCapPerUm)
	return math.Sqrt(x)
}
