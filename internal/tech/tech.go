// Package tech models the process technology used by the experiments: wire
// parasitics per unit length and the electrical view of drivers, buffers,
// and sinks.
//
// The paper embeds all benchmarks in the same 0.18 µm technology as Cong,
// Kong, and Pan's buffer-block planning work (ICCAD-99); the parameter set
// below is the published one from that line of work. All values use the
// units stated in the field comments; delays computed from them come out in
// seconds and are usually reported in picoseconds.
package tech

import (
	"fmt"
	"math"
)

// Tech bundles the per-unit wire parasitics and the gate library used for
// Elmore delay evaluation. The zero value is not useful; start from
// Default018 (or build your own for a different node).
type Tech struct {
	// WireResPerUm is wire resistance in ohms per micrometer.
	WireResPerUm float64
	// WireCapPerUm is wire capacitance in farads per micrometer.
	WireCapPerUm float64
	// DriverRes is the output resistance of a net's source driver, in ohms.
	DriverRes float64
	// Buffer is the (single-size) buffer inserted on signal nets.
	Buffer Gate
	// SinkCap is the input capacitance presented by each sink, in farads.
	SinkCap float64
}

// Gate is the electrical model of a buffer (or inverter) from the library:
// a switch-level RC model with an intrinsic delay.
type Gate struct {
	// OutRes is the gate output resistance in ohms.
	OutRes float64
	// InCap is the gate input capacitance in farads.
	InCap float64
	// Intrinsic is the gate's intrinsic delay in seconds.
	Intrinsic float64
}

// Default018 returns the 0.18 µm parameter set used throughout the
// experiments: wire 0.075 Ω/µm and 0.118 fF/µm; 180 Ω driver and buffer
// output resistance; 23.4 fF buffer input capacitance; 36.4 ps intrinsic
// buffer delay. Sinks present one buffer input capacitance of load.
func Default018() Tech {
	return Tech{
		WireResPerUm: 0.075,
		WireCapPerUm: 0.118e-15,
		DriverRes:    180,
		Buffer: Gate{
			OutRes:    180,
			InCap:     23.4e-15,
			Intrinsic: 36.4e-12,
		},
		SinkCap: 23.4e-15,
	}
}

// DefaultLibrary018 returns a small buffer library for the 0.18 µm node:
// the 1x planning buffer of Default018 plus 2x and 4x power-ups (output
// resistance scales down with size, input capacitance and intrinsic delay
// scale up mildly). The paper's buffer sites may hold "a buffer or inverter
// with a range of power levels"; this library models that range for the
// timing-driven re-buffering pass.
func DefaultLibrary018() []Gate {
	b := Default018().Buffer
	return []Gate{
		b,
		{OutRes: b.OutRes / 2, InCap: b.InCap * 1.8, Intrinsic: b.Intrinsic * 1.05},
		{OutRes: b.OutRes / 4, InCap: b.InCap * 3.2, Intrinsic: b.Intrinsic * 1.15},
	}
}

// WireRes returns the resistance of a wire of the given length (µm).
func (t Tech) WireRes(lenUm float64) float64 { return t.WireResPerUm * lenUm }

// WireCap returns the capacitance of a wire of the given length (µm).
func (t Tech) WireCap(lenUm float64) float64 { return t.WireCapPerUm * lenUm }

// Validate reports an error when any parameter is non-positive; such a
// technology would make every Elmore delay meaningless.
func (t Tech) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"WireResPerUm", t.WireResPerUm},
		{"WireCapPerUm", t.WireCapPerUm},
		{"DriverRes", t.DriverRes},
		{"Buffer.OutRes", t.Buffer.OutRes},
		{"Buffer.InCap", t.Buffer.InCap},
		{"Buffer.Intrinsic", t.Buffer.Intrinsic},
		{"SinkCap", t.SinkCap},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("tech: %s must be positive, got %g", c.name, c.v)
		}
	}
	return nil
}

// OptimalBufferDistUm returns the classical closed-form optimal distance
// between repeaters for this technology, sqrt(2*Rb*Cb/(r*c)) with Rb, Cb the
// buffer output resistance and input capacitance and r, c the unit wire
// parasitics. It is used only as a sanity anchor when choosing tile-based
// length constraints L_i; the planning algorithms themselves work purely in
// tile units.
func (t Tech) OptimalBufferDistUm() float64 {
	x := 2 * t.Buffer.OutRes * t.Buffer.InCap / (t.WireResPerUm * t.WireCapPerUm)
	return math.Sqrt(x)
}
