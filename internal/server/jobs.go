// Async job API: the submit → 202 + id → poll / stream / cancel surface
// over the same planning pipeline POST /v1/plan runs synchronously.
//
//	POST   /v1/jobs             accepts a /v1/plan body, returns 202 + id
//	GET    /v1/jobs/{id}        lifecycle status; embeds the result when done
//	GET    /v1/jobs/{id}/events Server-Sent Events: the run's obs event
//	                            stream as JSON-lines payloads, byte-identical
//	                            to the -events sink for the same run; a
//	                            subscriber joining mid-run receives the full
//	                            prefix then the live tail, no gaps, no
//	                            duplicates
//	DELETE /v1/jobs/{id}        cooperative cancellation
//
// Lifecycle: queued → running → done | failed | cancelled. A job whose key
// is already resident (or whose run another request is computing) goes
// queued → done without ever running the pipeline itself — the cache and
// singleflight layers apply to jobs exactly as they do to /v1/plan.
//
// The job table is bounded (Config.MaxJobs) and finished jobs are evicted
// after Config.JobTTL, oldest-finished-first when the table is full;
// active jobs are never evicted, and a table full of active jobs rejects
// new submissions with 429.

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Job lifecycle states.
const (
	jobQueued    = "queued"
	jobRunning   = "running"
	jobDone      = "done"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

// job is one async planning run.
type job struct {
	id      string
	reqID   string
	key     string
	created time.Time

	cancel context.CancelFunc
	log    *eventLog     // the run's JSON-lines event stream
	doneCh chan struct{} // closed at the terminal transition

	mu       sync.Mutex
	state    string
	finished time.Time // terminal transition, drives TTL eviction
	result   []byte    // deterministic response body when state == done
	hit      bool
	err      error
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish records the terminal outcome and wakes every waiter/subscriber.
func (j *job) finish(state string, result []byte, hit bool, err error, now time.Time) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.hit = hit
	j.err = err
	j.finished = now
	j.mu.Unlock()
	close(j.doneCh)
}

// snapshot returns the fields the status endpoints render, consistently.
func (j *job) snapshot() (state string, result []byte, hit bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.hit, j.err
}

func (j *job) terminal() bool {
	select {
	case <-j.doneCh:
		return true
	default:
		return false
	}
}

// eventLog is the append-only byte log of one job's JSON-lines event
// stream, with broadcast wakeups for streaming subscribers. The JSONLines
// sink writes one complete line per Observe call, so the buffer always
// ends on a line boundary; subscribers read by byte offset, which is what
// makes a mid-run join gap-free and duplicate-free by construction.
type eventLog struct {
	mu   sync.Mutex
	buf  []byte
	wake chan struct{}
}

func newEventLog() *eventLog { return &eventLog{wake: make(chan struct{})} }

// Write implements io.Writer for the JSONLines sink; each call appends one
// complete event line and wakes blocked subscribers.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	l.buf = append(l.buf, p...)
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
	return len(p), nil
}

// read returns the bytes from offset off, or — when nothing new is
// available — a wake channel that closes on the next append. The returned
// slice is capacity-capped, so later appends can never alias into it.
func (l *eventLog) read(off int) ([]byte, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off < len(l.buf) {
		return l.buf[off:len(l.buf):len(l.buf)], nil
	}
	return nil, l.wake
}

// bytes snapshots the full stream (for journaling, after the run is done).
func (l *eventLog) bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf[:len(l.buf):len(l.buf)]
}

// jobTable is the bounded id → job registry with TTL eviction of finished
// jobs.
type jobTable struct {
	mu   sync.Mutex
	max  int
	ttl  time.Duration
	jobs map[string]*job
}

func newJobTable(max int, ttl time.Duration) *jobTable {
	return &jobTable{max: max, ttl: ttl, jobs: map[string]*job{}}
}

// purge drops finished jobs older than the TTL; callers hold mu.
func (t *jobTable) purge(now time.Time) {
	for id, j := range t.jobs {
		if j.terminal() {
			j.mu.Lock()
			expired := now.Sub(j.finished) > t.ttl
			j.mu.Unlock()
			if expired {
				delete(t.jobs, id)
			}
		}
	}
}

// add registers a new job, evicting the oldest finished job if the table
// is full. It reports false when every resident job is still active — the
// submission must then be rejected, not queued unboundedly.
func (t *jobTable) add(j *job, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.purge(now)
	if len(t.jobs) >= t.max {
		var oldest *job
		for _, cand := range t.jobs {
			if !cand.terminal() {
				continue
			}
			if oldest == nil || cand.finished.Before(oldest.finished) {
				oldest = cand
			}
		}
		if oldest == nil {
			return false
		}
		delete(t.jobs, oldest.id)
	}
	t.jobs[j.id] = j
	return true
}

// get looks a job up, purging expired records first so a dead id is a
// clean 404 rather than a stale answer.
func (t *jobTable) get(id string, now time.Time) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.purge(now)
	j, ok := t.jobs[id]
	return j, ok
}

// counts reports queued/running/finished occupancy for /v1/healthz.
func (t *jobTable) counts() (queued, running, finished int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, j := range t.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		default:
			finished++
		}
		j.mu.Unlock()
	}
	return queued, running, finished
}

// newJobID returns a 128-bit random hex id. Job ids are transient service
// handles — deliberately not content-derived, so two submissions of the
// same problem are distinct jobs sharing one cached computation.
func newJobID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// jobSubmitResponse is the 202 body of POST /v1/jobs.
type jobSubmitResponse struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// jobStatusResponse is the GET /v1/jobs/{id} body. Result is embedded only
// in the done state and is byte-identical to the /v1/plan response for the
// same request.
type jobStatusResponse struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	State  string          `json:"state"`
	Cache  string          `json:"cache,omitempty"`
	Events int             `json:"events"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer s.span("server.job.submit", t0)
	var req planRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Re-serialize the decoded request as the canonical journaled body:
	// decodeBody has already consumed the wire bytes, and this form is
	// what ExecutePlan replays.
	reqBody, err := json.Marshal(&req)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	c, p, key, err := parsePlan(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	id, err := newJobID()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	// The job outlives this request: its deadline derives from the body's
	// timeout_ms (or the server default), never from r.Context().
	d := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		d = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	j := &job{
		id:      id,
		reqID:   requestID(r),
		key:     key,
		created: time.Now(),
		cancel:  cancel,
		log:     newEventLog(),
		doneCh:  make(chan struct{}),
		state:   jobQueued,
	}
	if !s.jobs.add(j, time.Now()) {
		cancel()
		s.count("server.job.rejected")
		s.fail(w, http.StatusTooManyRequests,
			fmt.Errorf("server: job table full (%d active jobs)", s.cfg.MaxJobs))
		return
	}
	s.count("server.job.submitted")
	go s.runJob(ctx, j, c, p, reqBody)
	w.Header().Set("Location", "/v1/jobs/"+id)
	s.writeJSON(w, http.StatusAccepted, jobSubmitResponse{
		ID:        id,
		Key:       key,
		State:     jobQueued,
		StatusURL: "/v1/jobs/" + id,
		EventsURL: "/v1/jobs/" + id + "/events",
	})
}

// runJob executes one async job on its own goroutine: the identical
// cache/singleflight/admission path as /v1/plan, with the run's observer
// teed into the job's event log so subscribers see the live stream. On
// success the job is journaled.
func (s *Server) runJob(ctx context.Context, j *job, c *netlist.Circuit, p core.Params, reqBody []byte) {
	defer j.cancel()
	sink := obs.NewJSONLines(j.log)
	body, hit, err := s.cache.Do(ctx, j.key, func() ([]byte, error) {
		if err := s.admit(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		j.setState(jobRunning)
		run := p
		run.Workers = s.cfg.Workers
		run.Observer = obs.Multi(s.metrics, sink)
		run.WorkspacePool = s.pool
		return planBytes(ctx, c, run, j.key)
	})
	now := time.Now()
	switch {
	case err == nil:
		// Journal before the terminal transition: once the status endpoint
		// reports done, the journal entry is already durable.
		s.journalJob(j, reqBody, body, hit)
		j.finish(jobDone, body, hit, nil, now)
	case ctx.Err() != nil && errors.Is(err, context.Canceled):
		j.finish(jobCancelled, nil, false, err, now)
	default:
		j.finish(jobFailed, nil, false, err, now)
	}
}

// journalJob appends a completed job to the run journal, if one is
// configured. The event stream is recorded only when this job's run
// actually executed the pipeline (a hit or coalesced job streamed no
// events of its own). Journal failures never fail the job — they are
// surfaced as the server.journal_error counter.
func (s *Server) journalJob(j *job, reqBody, result []byte, hit bool) {
	if s.cfg.Journal == nil {
		return
	}
	e := journal.Entry{
		ID:           j.id,
		RequestID:    j.reqID,
		Kind:         "plan",
		Key:          j.key,
		UnixMs:       time.Now().UnixMilli(),
		CacheHit:     hit,
		Request:      reqBody,
		ResultSHA256: journal.Digest(result),
	}
	if stream := j.log.bytes(); !hit && len(stream) > 0 {
		e.Events = journal.SplitLines(stream)
		e.EventsSHA256 = journal.Digest(stream)
	}
	if err := s.cfg.Journal.Append(e); err != nil {
		s.count("server.journal_error")
	}
}

// lookupJob resolves {id} or writes a 404.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id, time.Now())
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("server: no job %q (unknown, expired, or evicted)", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, jobStatus(j))
}

// jobStatus renders a job's current lifecycle snapshot.
func jobStatus(j *job) jobStatusResponse {
	state, result, hit, err := j.snapshot()
	resp := jobStatusResponse{
		ID:     j.id,
		Key:    j.key,
		State:  state,
		Events: len(j.log.bytes()),
	}
	if state == jobDone {
		if hit {
			resp.Cache = "hit"
		} else {
			resp.Cache = "miss"
		}
		resp.Result = result
	}
	if err != nil {
		resp.Error = err.Error()
	}
	return resp
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	// Cancelling a terminal job is a no-op; otherwise the run aborts at
	// its next core checkpoint and the job settles as cancelled. The
	// response reports the state at cancellation time — clients poll the
	// status URL to observe the terminal transition.
	j.cancel()
	s.count("server.job.cancelled")
	s.writeJSON(w, http.StatusOK, jobStatus(j))
}

// handleJobEvents streams a job's event log as Server-Sent Events. Each
// telemetry event is one unnamed SSE message whose data payload is exactly
// one JSON line of the deterministic event stream — concatenating the
// payloads reproduces the -events sink bytes for the run. Lifecycle
// transitions are sent as named "status" events, and a final named "done"
// event carries the terminal status so clients know to disconnect.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	writeStatus := func(name, state string) bool {
		_, err := fmt.Fprintf(w, "event: %s\ndata: {\"state\":%q}\n\n", name, state)
		return err == nil
	}
	lastState, _, _, _ := j.snapshot()
	if !writeStatus("status", lastState) {
		return
	}
	fl.Flush()

	off := 0
	for {
		chunk, wake := j.log.read(off)
		if len(chunk) > 0 {
			// The buffer always ends on a line boundary; frame each line
			// as one SSE data payload.
			for len(chunk) > 0 {
				nl := 0
				for nl < len(chunk) && chunk[nl] != '\n' {
					nl++
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", chunk[:nl]); err != nil {
					return
				}
				if nl < len(chunk) {
					nl++
				}
				off += nl
				chunk = chunk[nl:]
			}
			fl.Flush()
			continue
		}
		if state, _, _, _ := j.snapshot(); state != lastState {
			lastState = state
			if !writeStatus("status", state) {
				return
			}
			fl.Flush()
		}
		if j.terminal() {
			// Drain any events that landed between the last read and the
			// terminal transition before closing out.
			if tail, _ := j.log.read(off); len(tail) > 0 {
				continue
			}
			state, _, _, jerr := j.snapshot()
			if jerr != nil {
				fmt.Fprintf(w, "event: done\ndata: {\"state\":%q,\"error\":%q}\n\n", state, jerr.Error())
			} else {
				writeStatus("done", state)
			}
			fl.Flush()
			return
		}
		select {
		case <-wake:
		case <-j.doneCh:
		case <-r.Context().Done():
			return
		}
	}
}
