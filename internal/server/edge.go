// Service-edge telemetry: every request entering the daemon gets a request
// id (X-Request-ID honored in, generated if absent, echoed out), a
// structured JSON access-log line, and per-route latency/size observations
// feeding the obs.Metrics histograms — which is what gives /v1/metricz its
// per-route p50/p95/p99.

package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// requestIDHeader is honored inbound (load balancers and callers propagate
// their own ids) and always set outbound.
const requestIDHeader = "X-Request-ID"

// requestID returns the request's id: the inbound header when present, a
// fresh 64-bit random hex otherwise. The edge middleware has already
// normalized r by the time handlers run, so handlers (and the journal)
// read the header directly.
func requestID(r *http.Request) string { return r.Header.Get(requestIDHeader) }

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A broken entropy source must not fail requests; degrade to an
		// unidentified marker the access log makes visible.
		return "unidentified"
	}
	return hex.EncodeToString(b[:])
}

// edgeWriter captures the status and body size flowing through the
// middleware, passing Flush through so SSE streaming keeps working.
type edgeWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *edgeWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *edgeWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *edgeWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// routeLabel maps a request to its route template (never the raw path —
// per-route metrics must not explode into per-id keys).
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/jobs/"):
		if strings.HasSuffix(p, "/events") {
			return r.Method + " /v1/jobs/{id}/events"
		}
		return r.Method + " /v1/jobs/{id}"
	case p == "/v1/plan", p == "/v1/bbp", p == "/v1/jobs", p == "/v1/healthz", p == "/v1/metricz":
		return r.Method + " " + p
	}
	return "other"
}

// accessLine is one structured access-log record. Field order is fixed by
// the struct, so lines are uniform and machine-parseable.
type accessLine struct {
	Time      string  `json:"time"`
	ID        string  `json:"id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Route     string  `json:"route"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMs     float64 `json:"dur_ms"`
	Cache     string  `json:"cache,omitempty"`
	UserAgent string  `json:"user_agent,omitempty"`
}

// edge wraps the route mux with the service-edge telemetry described in
// the file comment. For a streaming route the measured latency spans the
// whole stream, not just the first byte — that is the quantity a
// subscriber experiences.
func (s *Server) edge(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := r.Header.Get(requestIDHeader)
		if rid == "" {
			rid = newRequestID()
			r.Header.Set(requestIDHeader, rid)
		}
		w.Header().Set(requestIDHeader, rid)
		ew := &edgeWriter{ResponseWriter: w}
		next.ServeHTTP(ew, r)
		if ew.status == 0 {
			ew.status = http.StatusOK
		}

		route := routeLabel(r)
		durMs := float64(time.Since(t0)) / float64(time.Millisecond)
		obs.Emit(s.metrics, obs.Event{Kind: obs.KindCounter, Scope: "http.requests." + route, Net: -1, Value: 1})
		obs.Emit(s.metrics, obs.Event{Kind: obs.KindGauge, Scope: "http.latency_ms." + route, Net: -1, Value: durMs})
		obs.Emit(s.metrics, obs.Event{Kind: obs.KindGauge, Scope: "http.resp_bytes." + route, Net: -1, Value: float64(ew.bytes)})

		if s.cfg.AccessLog == nil {
			return
		}
		line, err := json.Marshal(accessLine{
			Time:      t0.UTC().Format(time.RFC3339Nano),
			ID:        rid,
			Method:    r.Method,
			Path:      r.URL.Path,
			Route:     route,
			Status:    ew.status,
			Bytes:     ew.bytes,
			DurMs:     durMs,
			Cache:     ew.Header().Get("X-Cache"),
			UserAgent: r.UserAgent(),
		})
		if err != nil {
			s.count("server.accesslog_error")
			return
		}
		line = append(line, '\n')
		s.logMu.Lock()
		_, werr := s.cfg.AccessLog.Write(line)
		s.logMu.Unlock()
		if werr != nil {
			s.count("server.accesslog_error")
		}
	})
}
