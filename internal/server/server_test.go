package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// testCircuit generates a small apte-derived instance; identical seeds
// produce identical circuits, so two requests built from the same seed are
// the same content-addressed problem.
func testCircuit(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Generate(spec, floorplan.Options{Seed: seed, GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// planBody builds a /v1/plan request body for a circuit.
func planBody(t *testing.T, c *netlist.Circuit, extra string) []byte {
	t.Helper()
	cj, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf(`{"circuit":%s%s}`, cj, extra))
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestPlanEndToEnd: a full plan over HTTP succeeds, a repeat of the same
// request is a cache hit, and the two bodies are byte-identical — the
// central soundness claim of the content-addressed cache.
func TestPlanEndToEnd(t *testing.T) {
	m := obs.NewMetrics()
	ts := httptest.NewServer(New(Config{Metrics: m}).Handler())
	defer ts.Close()
	body := planBody(t, testCircuit(t, 1), "")

	resp1, b1 := postJSON(t, ts.URL+"/v1/plan", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: status %d, body %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first POST X-Cache = %q, want miss", got)
	}
	var pr struct {
		Key    string `json:"key"`
		Report struct {
			Circuit string `json:"circuit"`
			Stages  []struct {
				Stage      int     `json:"stage"`
				Buffers    int     `json:"buffers"`
				CPUSeconds float64 `json:"cpu_seconds"`
			} `json:"stages"`
		} `json:"report"`
	}
	if err := json.Unmarshal(b1, &pr); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if len(pr.Report.Stages) != 4 {
		t.Fatalf("report has %d stages, want 4", len(pr.Report.Stages))
	}
	for _, s := range pr.Report.Stages {
		if s.CPUSeconds != 0 {
			t.Errorf("stage %d leaked wall-clock CPU %v into the deterministic body", s.Stage, s.CPUSeconds)
		}
	}
	if want := `"` + pr.Key + `"`; resp1.Header.Get("ETag") != want {
		t.Errorf("ETag %q does not quote the content key %q", resp1.Header.Get("ETag"), pr.Key)
	}

	resp2, b2 := postJSON(t, ts.URL+"/v1/plan", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cached response differs from fresh response")
	}
	if hits := m.Counter("cache.hit"); hits != 1 {
		t.Errorf("cache.hit counter = %v, want 1", hits)
	}
}

// TestWarmPoolByteIdentity: the server's route.Workspace pool must be
// invisible in response bytes. A server whose pooled workspaces have been
// dirtied by earlier plans (different circuits, different grids) must
// produce, for a new circuit, exactly the bytes a fresh server produces
// for that circuit as its first-ever request. This pins the workspace
// recycling path (epoch stamping, tree free list, grown scratch arrays)
// to the cache's soundness claim.
func TestWarmPoolByteIdentity(t *testing.T) {
	target := planBody(t, testCircuit(t, 9), "")

	warm := httptest.NewServer(New(Config{}).Handler())
	defer warm.Close()
	// Dirty the pool with two unrelated plans first.
	for _, seed := range []int64{7, 8} {
		resp, b := postJSON(t, warm.URL+"/v1/plan", planBody(t, testCircuit(t, seed), ""))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up seed %d: status %d, body %s", seed, resp.StatusCode, b)
		}
	}
	respW, bodyWarm := postJSON(t, warm.URL+"/v1/plan", target)
	if respW.StatusCode != http.StatusOK {
		t.Fatalf("warm server: status %d, body %s", respW.StatusCode, bodyWarm)
	}
	if respW.Header.Get("X-Cache") != "miss" {
		t.Fatalf("warm server target request was not a fresh compute")
	}

	fresh := httptest.NewServer(New(Config{}).Handler())
	defer fresh.Close()
	respF, bodyFresh := postJSON(t, fresh.URL+"/v1/plan", target)
	if respF.StatusCode != http.StatusOK {
		t.Fatalf("fresh server: status %d, body %s", respF.StatusCode, bodyFresh)
	}
	if !bytes.Equal(bodyWarm, bodyFresh) {
		t.Error("dirty-pool compute differs from fresh-server compute: workspace state leaked into results")
	}
}

// TestCrossServerByteIdentity: two independent servers given the same
// request produce byte-identical bodies — the response really is a pure
// function of the request, not of server state.
func TestCrossServerByteIdentity(t *testing.T) {
	body := planBody(t, testCircuit(t, 3), "")
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(New(Config{}).Handler())
		resp, b := postJSON(t, ts.URL+"/v1/plan", body)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d: status %d, body %s", i, resp.StatusCode, b)
		}
		bodies = append(bodies, b)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("two fresh servers produced different bodies for the same request")
	}
}

// TestPlanDeadline: a 1ms deadline expires long before the run completes;
// the request comes back promptly as 504, and the failure is not cached —
// a follow-up with a sane deadline succeeds. The circuit is deliberately
// larger than testCircuit's: the deadline is only *observed* at a core
// cancellation checkpoint after the runtime delivers the timer, so a
// compute much longer than the scheduler's preemption granularity is
// needed to make the 504 deterministic rather than a race against a
// small plan finishing first.
func TestPlanDeadline(t *testing.T) {
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Generate(spec, floorplan.Options{Seed: 1, GridW: 20, GridH: 22})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body := planBody(t, c, `,"timeout_ms":1`)
	start := time.Now()
	resp, b := postJSON(t, ts.URL+"/v1/plan", body)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("expired request took %v to return", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s, want 504", resp.StatusCode, b)
	}
	// Same circuit, sane deadline: if the 504 had been cached, this would
	// serve the failure instead of computing.
	resp2, b2 := postJSON(t, ts.URL+"/v1/plan", planBody(t, c, ""))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after timeout: status %d, body %s", resp2.StatusCode, b2)
	}
}

// TestSaturation429: with every run slot held and no queue, a plan request
// fails fast with 429 and a Retry-After header; once a slot frees, the
// identical request succeeds.
func TestSaturation429(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single run slot directly — deterministic, unlike racing
	// a real in-flight run.
	s.sem <- struct{}{}
	s.queued.Add(1)

	body := planBody(t, testCircuit(t, 1), "")
	resp, b := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, body %s, want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if n := s.metrics.Counter("server.rejected"); n != 1 {
		t.Errorf("server.rejected counter = %v, want 1", n)
	}

	// Health keeps answering while the planner is saturated.
	hresp, hb := getJSON(t, ts.URL+"/v1/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: status %d", hresp.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		Inflight int    `json:"inflight"`
	}
	if err := json.Unmarshal(hb, &h); err != nil || h.Status != "ok" || h.Inflight != 1 {
		t.Errorf("healthz = %s (err %v), want status ok with inflight 1", hb, err)
	}

	s.release()
	resp2, b2 := postJSON(t, ts.URL+"/v1/plan", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("POST after slot freed: status %d, body %s", resp2.StatusCode, b2)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSingleflightDedup: N concurrent identical plan requests trigger
// exactly one core run — the others coalesce onto it or hit the cache.
// The "run" span count in the attached metrics counts real pipeline runs.
func TestSingleflightDedup(t *testing.T) {
	m := obs.NewMetrics()
	ts := httptest.NewServer(New(Config{Metrics: m}).Handler())
	defer ts.Close()
	body := planBody(t, testCircuit(t, 2), "")

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if runs := m.Span("run").Count; runs != 1 {
		t.Errorf("%d concurrent identical requests ran the pipeline %d times, want 1", n, runs)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
}

// TestBadRequests: malformed bodies, unknown fields, invalid circuits, and
// oversized payloads map to precise 4xx statuses, never 500.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 4096}).Handler())
	defer ts.Close()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"syntax error", `{garbage`, http.StatusBadRequest},
		{"unknown field", `{"circut":{}}`, http.StatusBadRequest},
		{"trailing data", `{"circuit":{"name":"x"}}{"again":1}`, http.StatusBadRequest},
		{"invalid circuit", `{"circuit":{"name":"x","grid_w":0}}`, http.StatusBadRequest},
		{"nan coordinate", `{"circuit":{"name":"x","grid_w":1,"grid_h":1,"tile_um":null}}`, http.StatusBadRequest},
		{"oversized body", `{"circuit":{"name":"` + strings.Repeat("x", 8192) + `"}}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/plan", []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, body %s, want %d", tc.name, resp.StatusCode, b, tc.want)
			continue
		}
		var er struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %s is not {\"error\": ...}", tc.name, b)
		}
	}
}

// TestPlanParamsAffectResultAndKey: a params override reaches the core run
// (skip_stage4 drops the report to three stages) and changes the content
// key, so variant requests never alias in the cache.
func TestPlanParamsAffectResultAndKey(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	c := testCircuit(t, 1)

	resp1, b1 := postJSON(t, ts.URL+"/v1/plan", planBody(t, c, ""))
	resp2, b2 := postJSON(t, ts.URL+"/v1/plan", planBody(t, c, `,"params":{"skip_stage4":true}`))
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	var r1, r2 struct {
		Key    string `json:"key"`
		Report struct {
			Stages []json.RawMessage `json:"stages"`
		} `json:"report"`
	}
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Key == r2.Key {
		t.Error("different params produced the same content key")
	}
	if len(r1.Report.Stages) != 4 || len(r2.Report.Stages) != 3 {
		t.Errorf("stage counts %d, %d; want 4 and 3 (skip_stage4)", len(r1.Report.Stages), len(r2.Report.Stages))
	}
	if resp2.Header.Get("X-Cache") != "miss" {
		t.Error("params variant was served from the base request's cache entry")
	}
}

// TestPlanBackends: each planning engine is selectable through the
// "backend" params field; per backend, a repeat request is a cache hit
// byte-identical to the fresh run, and the three engines mint three
// distinct content keys (so they can never alias in the cache). The
// explicit "rabid" spelling shares the default's key and cache entry.
func TestPlanBackends(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	c := testCircuit(t, 1)

	keys := map[string]string{}
	for _, name := range []string{"rabid", "rabid+lib", "mcf"} {
		body := planBody(t, c, fmt.Sprintf(`,"params":{"backend":%q}`, name))
		resp1, b1 := postJSON(t, ts.URL+"/v1/plan", body)
		if resp1.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", name, resp1.StatusCode, b1)
		}
		if got := resp1.Header.Get("X-Cache"); got != "miss" {
			t.Errorf("%s: first POST X-Cache = %q, want miss", name, got)
		}
		resp2, b2 := postJSON(t, ts.URL+"/v1/plan", body)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("%s: repeat status %d", name, resp2.StatusCode)
		}
		if got := resp2.Header.Get("X-Cache"); got != "hit" {
			t.Errorf("%s: repeat X-Cache = %q, want hit", name, got)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: cached response differs from fresh response", name)
		}
		var pr struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(b1, &pr); err != nil {
			t.Fatal(err)
		}
		keys[name] = pr.Key
		if want := `"` + pr.Key + `"`; resp1.Header.Get("ETag") != want {
			t.Errorf("%s: ETag %q does not quote key %q", name, resp1.Header.Get("ETag"), pr.Key)
		}
	}
	if keys["rabid"] == keys["rabid+lib"] || keys["rabid"] == keys["mcf"] || keys["rabid+lib"] == keys["mcf"] {
		t.Errorf("backend keys alias: %v", keys)
	}

	// Omitting the backend is the "rabid" engine under the same key: the
	// explicit spelling must be served from its cache entry.
	resp, b := postJSON(t, ts.URL+"/v1/plan", planBody(t, c, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-backend POST: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("default backend X-Cache = %q, want hit on the explicit rabid entry", got)
	}
	var pr struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(b, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Key != keys["rabid"] {
		t.Errorf("default backend key %s != explicit rabid key %s", pr.Key, keys["rabid"])
	}
}

// TestPlanBackendBadRequests: an unknown engine and a library on a
// single-type engine are client errors, not runs.
func TestPlanBackendBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	c := testCircuit(t, 1)
	cases := []struct{ name, extra string }{
		{"unknown engine", `,"params":{"backend":"fastest"}`},
		{"library on mcf", `,"params":{"backend":"mcf","library":[{"name":"buf1x","out_res":180,"in_cap":23.4,"intrinsic":36.4,"area_cost":1}]}`},
		{"bad library gate", `,"params":{"backend":"rabid+lib","library":[{"name":"dud","out_res":-1,"in_cap":1,"intrinsic":1,"area_cost":1}]}`},
		{"unknown kernel", `,"params":{"search_kernel":"fibheap"}`},
		{"unknown steiner mode", `,"params":{"steiner_mode":"rsmt"}`},
		{"negative mcf phases", `,"params":{"mcf_phases":-1}`},
		{"mcf epsilon out of range", `,"params":{"mcf_epsilon":1.5}`},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/plan", planBody(t, c, tc.extra))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
	}
}

// TestPlanSearchKernelAliasing: "dial" is byte-identical to "heap" by
// construction, so an explicit dial request is served from the heap entry
// under the same content key; "astar" may break tree tie-breaks differently
// and mints its own key. The steiner_mode and mcf knobs likewise reach the
// key.
func TestPlanSearchKernelAliasing(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	c := testCircuit(t, 1)

	post := func(extra, wantCache string) string {
		t.Helper()
		resp, b := postJSON(t, ts.URL+"/v1/plan", planBody(t, c, extra))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", extra, resp.StatusCode, b)
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache {
			t.Errorf("%s: X-Cache = %q, want %q", extra, got, wantCache)
		}
		var pr struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(b, &pr); err != nil {
			t.Fatal(err)
		}
		return pr.Key
	}

	base := post("", "miss")
	if k := post(`,"params":{"search_kernel":"heap"}`, "hit"); k != base {
		t.Errorf("explicit heap key %s != default key %s", k, base)
	}
	if k := post(`,"params":{"search_kernel":"dial"}`, "hit"); k != base {
		t.Errorf("dial key %s != heap key %s; byte-identical kernels must alias", k, base)
	}
	if k := post(`,"params":{"search_kernel":"astar"}`, "miss"); k == base {
		t.Error("astar shares the heap content key; its tie-breaks may differ")
	}
	if k := post(`,"params":{"steiner_mode":"costdist"}`, "miss"); k == base {
		t.Error("steiner_mode costdist does not reach the content key")
	}
	if k := post(`,"params":{"backend":"mcf","mcf_phases":3,"mcf_epsilon":0.5}`, "miss"); k == base {
		t.Error("mcf knobs do not reach the content key")
	}
}

// TestBBPEndpoint: the baseline endpoint plans a two-pin-decomposed
// circuit and caches it; an undecomposed circuit and a bad capacity are
// client errors.
func TestBBPEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	c := testCircuit(t, 1)
	two := c.DecomposeTwoPin()
	cj, err := json.Marshal(two)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(fmt.Sprintf(`{"circuit":%s,"capacity":2}`, cj))

	resp, b := postJSON(t, ts.URL+"/v1/bbp", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bbp POST: status %d, body %s", resp.StatusCode, b)
	}
	var br struct {
		Key     string  `json:"key"`
		Buffers int     `json:"buffers"`
		MTAP    float64 `json:"mtap"`
	}
	if err := json.Unmarshal(b, &br); err != nil {
		t.Fatal(err)
	}
	if br.Buffers <= 0 {
		t.Errorf("bbp inserted %d buffers, want > 0", br.Buffers)
	}

	resp2, b2 := postJSON(t, ts.URL+"/v1/bbp", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat bbp POST: status %d X-Cache %q, want 200 hit", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b, b2) {
		t.Error("cached bbp response differs")
	}

	mj, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	resp3, _ := postJSON(t, ts.URL+"/v1/bbp", []byte(fmt.Sprintf(`{"circuit":%s,"capacity":2}`, mj)))
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("undecomposed circuit: status %d, want 400", resp3.StatusCode)
	}
	resp4, _ := postJSON(t, ts.URL+"/v1/bbp", []byte(fmt.Sprintf(`{"circuit":%s,"capacity":0}`, cj)))
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("capacity 0: status %d, want 400", resp4.StatusCode)
	}
}

// TestMetricz: after a plan request, /v1/metricz serves a Metrics snapshot
// in the cmd/metricscheck format, with the run and per-stage spans and the
// cache counters present.
func TestMetricz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	if resp, b := postJSON(t, ts.URL+"/v1/plan", planBody(t, testCircuit(t, 1), "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan POST: status %d, body %s", resp.StatusCode, b)
	}
	resp, b := getJSON(t, ts.URL+"/v1/metricz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz: status %d", resp.StatusCode)
	}
	var dump struct {
		Counters map[string]float64 `json:"counters"`
		Spans    map[string]struct {
			Count int `json:"count"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("metricz is not valid JSON: %v", err)
	}
	for _, scope := range []string{"run", "stage.1", "stage.4", "server.plan"} {
		if dump.Spans[scope].Count < 1 {
			t.Errorf("metricz missing span %q", scope)
		}
	}
	if dump.Counters["cache.miss"] < 1 {
		t.Error("metricz missing cache.miss counter")
	}
}

// TestMethodNotAllowed: the v1 routes are method-scoped.
func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}
