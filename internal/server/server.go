// Package server is the planning service layer: a stdlib-only HTTP/JSON
// daemon exposing the RABID pipeline (POST /v1/plan), the BBP/FR baseline
// (POST /v1/bbp), a health probe (GET /v1/healthz), and a telemetry
// snapshot (GET /v1/metricz).
//
// Admission is bounded: at most MaxInflight planning runs execute
// concurrently, at most QueueDepth more wait for a slot, and beyond that
// requests fail fast with 429 and a Retry-After header instead of piling
// onto the queue. Admission happens inside the cache's singleflight
// compute, so cache hits and coalesced duplicate requests never consume a
// run slot — only real core runs do.
//
// Every response body is deterministic: reports are serialized with the
// wall-clock CPU columns zeroed, so the cached bytes of a hit are
// byte-identical to what a fresh run would produce (the property the
// content-addressed cache's soundness rests on). The content key doubles
// as the ETag; the X-Cache header reports hit or miss.
//
// This package reads the wall clock directly (request-latency spans and
// deadline plumbing) and is on the rabidlint clock-exempt list: at the
// service boundary wall time is the quantity being measured, and none of
// it reaches a response body.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/bbp"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/tech"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a sensible default applied by New.
type Config struct {
	// MaxInflight bounds concurrent core runs (default: GOMAXPROCS).
	MaxInflight int
	// QueueDepth bounds runs waiting for a slot beyond MaxInflight
	// (default 16; negative means 0 — reject as soon as all slots are
	// busy).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request body
	// does not set timeout_ms (default 60s).
	DefaultTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache (default
	// 128; see cache.New for the 0 semantics).
	CacheEntries int
	// MaxBodyBytes caps request bodies (default netlist.MaxJSONBytes).
	MaxBodyBytes int64
	// Workers is core.Params.Workers for every run (0 = GOMAXPROCS;
	// results are bit-identical for every value, so this is purely a
	// server resource knob and is excluded from cache keys).
	Workers int
	// Metrics receives the service's telemetry — request spans, cache
	// counters, and the pipeline's own events — and backs /v1/metricz.
	// nil gets a fresh registry.
	Metrics *obs.Metrics
	// MaxJobs bounds the async job table: queued + running + retained
	// finished jobs (default 64). Submissions beyond the bound fail fast
	// with 429 once no finished job can be evicted to make room.
	MaxJobs int
	// JobTTL is how long a finished job's record (terminal status, result,
	// event stream) stays queryable before eviction (default 15m).
	JobTTL time.Duration
	// Journal, when non-nil, receives one append-only entry per
	// successfully completed async job: the verbatim request, the content
	// key, the run's event stream, and the response digest — the
	// replayable run journal cmd/journal verifies. nil disables
	// journaling at zero cost.
	Journal *journal.Writer
	// AccessLog, when non-nil, receives one structured JSON line per HTTP
	// request (request id, route, status, latency, sizes). nil disables
	// the access log at zero cost. Writes are serialized by the server,
	// so any io.Writer works.
	AccessLog io.Writer
}

// errBusy is the admission-rejection sentinel, mapped to 429.
var errBusy = errors.New("server: all run slots busy and queue full")

// Server routes and executes planning requests. Create with New; serve
// via Handler.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *cache.Cache
	mux     *http.ServeMux

	sem    chan struct{} // one token per running core job
	queued atomic.Int64  // running + waiting admissions

	// pool recycles router workspaces across requests so steady-state
	// plans route without re-growing scratch arrays. Purely mechanism:
	// invisible to cache keys and response bytes.
	pool *route.Pool

	// jobs is the async job table (see jobs.go).
	jobs *jobTable
	// logMu serializes access-log lines onto cfg.AccessLog.
	logMu sync.Mutex
}

// New builds a Server, applying Config defaults.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	} else if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 128
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = netlist.MaxJSONBytes
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 64
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	s := &Server{
		cfg:     cfg,
		metrics: cfg.Metrics,
		cache:   cache.New(cfg.CacheEntries, cfg.Metrics),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInflight),
		pool:    route.NewPool(),
		jobs:    newJobTable(cfg.MaxJobs, cfg.JobTTL),
	}
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/bbp", s.handleBBP)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metricz", s.handleMetricz)
	return s
}

// Handler returns the service's HTTP handler: the v1 routes wrapped in the
// service-edge middleware (request IDs, access log, per-route telemetry —
// see edge.go).
func (s *Server) Handler() http.Handler { return s.edge(s.mux) }

// admit acquires a run slot, waiting in the bounded queue. It fails fast
// with errBusy when MaxInflight+QueueDepth admissions are already in the
// system, and with ctx.Err() when the request deadline expires while
// queued.
func (s *Server) admit(ctx context.Context) error {
	if s.queued.Add(1) > int64(s.cfg.MaxInflight+s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.count("server.rejected")
		return errBusy
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return ctx.Err()
	}
}

// release returns an admitted request's run slot.
func (s *Server) release() {
	<-s.sem
	s.queued.Add(-1)
}

// requestContext derives the request's deadline: timeout_ms from the body
// when positive, the configured default otherwise.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// planRequest is the POST /v1/plan body. Unknown fields are rejected.
type planRequest struct {
	Circuit   json.RawMessage `json:"circuit"`
	Params    *planParams     `json:"params,omitempty"`
	TimeoutMs int64           `json:"timeout_ms,omitempty"`
}

// planParams overrides core.DefaultParams field by field; absent fields
// keep the paper's defaults. Workers and the observer are server-owned
// and deliberately not settable per request.
type planParams struct {
	Alpha                *float64 `json:"alpha,omitempty"`
	RouteAlpha           *float64 `json:"route_alpha,omitempty"`
	RouteLengthWeight    *float64 `json:"route_length_weight,omitempty"`
	RouteOverflowPenalty *float64 `json:"route_overflow_penalty,omitempty"`
	MaxRipupPasses       *int     `json:"max_ripup_passes,omitempty"`
	Capacity             *int     `json:"capacity,omitempty"`
	TargetStage1Avg      *float64 `json:"target_stage1_avg,omitempty"`
	SkipStage4           *bool    `json:"skip_stage4,omitempty"`
	DisableDemandTerm    *bool    `json:"disable_demand_term,omitempty"`
	UseMCFRouter         *bool    `json:"use_mcf_router,omitempty"`
	// Backend selects the planning engine ("rabid", "rabid+lib", "mcf";
	// absent or empty = "rabid"). Library optionally overrides the buffer
	// library of "rabid+lib"; parsePlan runs backend.Normalize on the merged
	// parameters, so an empty library gets the default and a library on a
	// single-type engine is a 400.
	Backend *string        `json:"backend,omitempty"`
	Library []tech.LibGate `json:"library,omitempty"`
	// SearchKernel selects the router's wavefront implementation ("heap",
	// "dial", "astar"; absent or empty = "heap") and SteinerMode the Stage-1
	// construction ("pd", "costdist"; absent or empty = "pd"). MCFPhases and
	// MCFEpsilon tune the mcf engine (0 = its defaults). All four are
	// validated by backend.Normalize and reach the content key.
	SearchKernel *string  `json:"search_kernel,omitempty"`
	SteinerMode  *string  `json:"steiner_mode,omitempty"`
	MCFPhases    *int     `json:"mcf_phases,omitempty"`
	MCFEpsilon   *float64 `json:"mcf_epsilon,omitempty"`
}

// apply merges the overrides into p.
func (pp *planParams) apply(p *core.Params) {
	if pp == nil {
		return
	}
	if pp.Alpha != nil {
		p.Alpha = *pp.Alpha
	}
	if pp.RouteAlpha != nil {
		p.RouteOpt.Alpha = *pp.RouteAlpha
	}
	if pp.RouteLengthWeight != nil {
		p.RouteOpt.LengthWeight = *pp.RouteLengthWeight
	}
	if pp.RouteOverflowPenalty != nil {
		p.RouteOpt.OverflowPenalty = *pp.RouteOverflowPenalty
	}
	if pp.MaxRipupPasses != nil {
		p.MaxRipupPasses = *pp.MaxRipupPasses
	}
	if pp.Capacity != nil {
		p.Capacity = *pp.Capacity
	}
	if pp.TargetStage1Avg != nil {
		p.TargetStage1Avg = *pp.TargetStage1Avg
	}
	if pp.SkipStage4 != nil {
		p.SkipStage4 = *pp.SkipStage4
	}
	if pp.DisableDemandTerm != nil {
		p.DisableDemandTerm = *pp.DisableDemandTerm
	}
	if pp.UseMCFRouter != nil {
		p.UseMCFRouter = *pp.UseMCFRouter
	}
	if pp.Backend != nil {
		p.Backend = *pp.Backend
	}
	if len(pp.Library) > 0 {
		p.Library = pp.Library
	}
	if pp.SearchKernel != nil {
		p.SearchKernel = *pp.SearchKernel
	}
	if pp.SteinerMode != nil {
		p.SteinerMode = *pp.SteinerMode
	}
	if pp.MCFPhases != nil {
		p.MCFPhases = *pp.MCFPhases
	}
	if pp.MCFEpsilon != nil {
		p.MCFEpsilon = *pp.MCFEpsilon
	}
}

// planResponse is the POST /v1/plan body: the content key and the run's
// report with the wall-clock CPU columns zeroed, so the bytes are a pure
// function of the request.
type planResponse struct {
	Key    string       `json:"key"`
	Report *core.Report `json:"report"`
}

// parsePlan turns a decoded plan request into the run inputs: the parsed
// circuit, the effective parameters (server-owned fields unset — the
// caller attaches Workers, Observer, and WorkspacePool), and the content
// key. Errors are client errors (400).
func parsePlan(req *planRequest) (*netlist.Circuit, core.Params, string, error) {
	c, err := netlist.ReadJSONLimit(bytes.NewReader(req.Circuit), 0)
	if err != nil {
		return nil, core.Params{}, "", err
	}
	p := core.DefaultParams()
	req.Params.apply(&p)
	// Normalize before deriving the key: "" and "rabid" must share one
	// content address, and "rabid+lib" must have its default library
	// spelled out in the key material.
	p, err = backend.Normalize(p)
	if err != nil {
		return nil, core.Params{}, "", err
	}
	key, err := cache.PlanKey(c, p)
	if err != nil {
		return nil, core.Params{}, "", err
	}
	return c, p, key, nil
}

// planBytes runs the selected planning engine and serializes the
// deterministic response body: the report with wall-clock CPU columns
// zeroed, keyed by the content address. Every service path that computes a
// plan — sync, async job, or journal replay — funnels through here, so
// their bytes can never diverge.
func planBytes(ctx context.Context, c *netlist.Circuit, p core.Params, key string) ([]byte, error) {
	res, err := backend.Plan(ctx, c, p)
	if err != nil {
		return nil, err
	}
	rep, err := res.Report()
	if err != nil {
		return nil, err
	}
	for i := range rep.Stages {
		rep.Stages[i].CPUSeconds = 0
	}
	return json.Marshal(planResponse{Key: key, Report: rep})
}

// ExecutePlan parses a /v1/plan- or /v1/jobs-shaped request body and runs
// it to the deterministic response bytes, with o (may be nil) attached as
// the run's observer. This is the journal-replay entry point: cmd/journal
// feeds a recorded request back through exactly the code path the service
// used, so a digest match is a real byte-identity statement. The body's
// timeout_ms is ignored — the caller's ctx governs.
func ExecutePlan(ctx context.Context, reqBody []byte, workers int, o obs.Observer) (key string, body []byte, err error) {
	var req planRequest
	dec := json.NewDecoder(bytes.NewReader(reqBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", nil, fmt.Errorf("server: decode request: %w", err)
	}
	c, p, key, err := parsePlan(&req)
	if err != nil {
		return "", nil, err
	}
	p.Workers = workers
	p.Observer = o
	body, err = planBytes(ctx, c, p, key)
	return key, body, err
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer s.span("server.plan", t0)
	var req planRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	c, p, key, err := parsePlan(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	p.Workers = s.cfg.Workers
	p.Observer = s.metrics
	p.WorkspacePool = s.pool
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	body, hit, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		if err := s.admit(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		return planBytes(ctx, c, p, key)
	})
	s.reply(w, key, body, hit, err)
}

// bbpRequest is the POST /v1/bbp body. The circuit must already be
// decomposed to two-pin nets (the form the paper's comparison uses).
type bbpRequest struct {
	Circuit   json.RawMessage `json:"circuit"`
	Capacity  int             `json:"capacity"`
	TimeoutMs int64           `json:"timeout_ms,omitempty"`
}

// bbpResponse carries the baseline's Table V statistics (CPU excluded —
// responses are deterministic).
type bbpResponse struct {
	Key        string  `json:"key"`
	Buffers    int     `json:"buffers"`
	MTAP       float64 `json:"mtap"`
	WirelenMm  float64 `json:"wirelength_mm"`
	WireMax    float64 `json:"wire_congestion_max"`
	WireAvg    float64 `json:"wire_congestion_avg"`
	Overflows  int     `json:"overflows"`
	MaxDelayPs float64 `json:"max_delay_ps"`
	AvgDelayPs float64 `json:"avg_delay_ps"`
}

func (s *Server) handleBBP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer s.span("server.bbp", t0)
	var req bbpRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	c, err := netlist.ReadJSONLimit(bytes.NewReader(req.Circuit), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// BBP's own preconditions are client input problems: report them as
	// 400 up front rather than 500 out of the run.
	if req.Capacity < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: capacity %d < 1", req.Capacity))
		return
	}
	for _, n := range c.Nets {
		if len(n.Sinks) != 1 {
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("server: net %d has %d sinks; POST a two-pin-decomposed circuit", n.ID, len(n.Sinks)))
			return
		}
	}
	key, err := cache.BBPKey(c, req.Capacity, core.DefaultParams().Tech)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	body, hit, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		if err := s.admit(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		// The baseline has no internal checkpoints; honor the deadline at
		// least at the admission boundary.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := bbp.Run(c, req.Capacity, core.DefaultParams().Tech, s.metrics)
		if err != nil {
			return nil, err
		}
		return json.Marshal(bbpResponse{
			Key:        key,
			Buffers:    res.Buffers,
			MTAP:       res.MTAP,
			WirelenMm:  res.WirelenMm,
			WireMax:    res.WireMax,
			WireAvg:    res.WireAvg,
			Overflows:  res.Overflows,
			MaxDelayPs: res.MaxDelayPs,
			AvgDelayPs: res.AvgDelayPs,
		})
	})
	s.reply(w, key, body, hit, err)
}

// healthzResponse reports liveness, admission pressure, cache occupancy,
// and async-job load — everything a load balancer needs to see saturation
// coming before requests start bouncing with 429.
type healthzResponse struct {
	Status   string `json:"status"`
	Inflight int    `json:"inflight"`
	Queued   int64  `json:"queued"`
	Capacity int    `json:"capacity"`
	Cache    struct {
		Entries  int `json:"entries"`
		Capacity int `json:"capacity"`
	} `json:"cache"`
	Jobs struct {
		Queued   int `json:"queued"`
		Running  int `json:"running"`
		Finished int `json:"finished"`
		Capacity int `json:"capacity"`
	} `json:"jobs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:   "ok",
		Inflight: len(s.sem),
		Queued:   s.queued.Load(),
		Capacity: s.cfg.MaxInflight + s.cfg.QueueDepth,
	}
	resp.Cache.Entries = s.cache.Len()
	resp.Cache.Capacity = s.cache.Cap()
	queued, running, finished := s.jobs.counts()
	resp.Jobs.Queued = queued
	resp.Jobs.Running = running
	resp.Jobs.Finished = finished
	resp.Jobs.Capacity = s.cfg.MaxJobs
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.metrics.WriteJSON(w); err != nil {
		// Headers are gone; nothing to do but note it in telemetry.
		s.count("server.metricz_write_error")
	}
}

// decodeBody reads a size-capped request body into dst, rejecting unknown
// fields and trailing data. It writes the error response itself and
// reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil && dec.More() {
		err = errors.New("server: trailing data after request JSON")
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("server: request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: decode request: %w", err))
		return false
	}
	return true
}

// reply writes a completed plan/bbp outcome: the deterministic body with
// cache metadata on a success, the mapped error otherwise.
func (s *Server) reply(w http.ResponseWriter, key string, body []byte, hit bool, err error) {
	if err != nil {
		s.fail(w, statusOf(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", strconv.Quote(key))
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		s.count("server.write_error")
	}
}

// statusOf maps a run/admission error to its HTTP status: 429 for a full
// queue, 504 for a deadline that expired (queued or mid-run), 503 for a
// request cancelled by the client, 500 otherwise.
func statusOf(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorResponse is the JSON error body of every non-200 response.
type errorResponse struct {
	Error string `json:"error"`
}

// fail writes the error response, adding Retry-After on 429 so clients
// back off instead of hammering a saturated queue.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(b); err != nil {
		s.count("server.write_error")
	}
}

// span records one request's wall-clock latency under scope.
func (s *Server) span(scope string, t0 time.Time) {
	obs.Emit(s.metrics, obs.Event{Kind: obs.KindSpanBegin, Scope: scope, Net: -1})
	obs.Emit(s.metrics, obs.Event{Kind: obs.KindSpanEnd, Scope: scope, Net: -1, Dur: time.Since(t0)})
}

func (s *Server) count(scope string) {
	obs.Emit(s.metrics, obs.Event{Kind: obs.KindCounter, Scope: scope, Net: -1, Value: 1})
}
