package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRequestIDEchoAndGenerate: an inbound X-Request-ID is echoed back
// verbatim; an absent one is generated and returned.
func TestRequestIDEchoAndGenerate(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestIDHeader, "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "caller-supplied-42" {
		t.Errorf("inbound request id not echoed: got %q", got)
	}

	resp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	gen := resp2.Header.Get(requestIDHeader)
	if len(gen) != 16 {
		t.Errorf("generated request id %q, want 16 hex chars", gen)
	}
}

// TestAccessLog: every request writes one structured JSON line with the
// route template (not the raw path), status, sizes, and the request id.
func TestAccessLog(t *testing.T) {
	logBuf := &syncBuffer{b: &bytes.Buffer{}}
	s := New(Config{AccessLog: logBuf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := planBody(t, testCircuit(t, 1), "")
	if resp, b := postJSON(t, ts.URL+"/v1/plan", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d, body %s", resp.StatusCode, b)
	}
	sub := submitJob(t, ts.URL, body)
	waitJob(t, ts.URL, sub.ID)

	lines := strings.Split(strings.TrimSpace(string(logBuf.snapshot())), "\n")
	if len(lines) < 3 { // plan, submit, >=1 status poll
		t.Fatalf("access log has %d lines, want >= 3", len(lines))
	}
	byRoute := map[string]accessLine{}
	for _, ln := range lines {
		var al accessLine
		if err := json.Unmarshal([]byte(ln), &al); err != nil {
			t.Fatalf("unparseable access-log line %q: %v", ln, err)
		}
		if al.ID == "" || al.Time == "" || al.Method == "" || al.DurMs < 0 {
			t.Errorf("access-log line missing fields: %+v", al)
		}
		byRoute[al.Route] = al
	}
	plan, ok := byRoute["POST /v1/plan"]
	if !ok {
		t.Fatalf("no access-log line for POST /v1/plan; routes seen: %v", byRoute)
	}
	if plan.Status != http.StatusOK || plan.Bytes <= 0 || plan.Cache != "miss" {
		t.Errorf("plan access line %+v: want status 200, bytes > 0, cache miss", plan)
	}
	status, ok := byRoute["GET /v1/jobs/{id}"]
	if !ok {
		t.Fatal("no access-log line for GET /v1/jobs/{id}")
	}
	if strings.Contains(status.Route, sub.ID) {
		t.Errorf("route label %q leaks the job id", status.Route)
	}
	if !strings.Contains(status.Path, sub.ID) {
		t.Errorf("path %q should keep the raw id", status.Path)
	}
}

// metriczDump mirrors the /v1/metricz histogram shape the quantile
// assertions need.
type metriczDump struct {
	Histograms map[string]struct {
		Count int      `json:"count"`
		Min   *float64 `json:"min"`
		Max   *float64 `json:"max"`
		P50   *float64 `json:"p50"`
		P95   *float64 `json:"p95"`
		P99   *float64 `json:"p99"`
	} `json:"histograms"`
}

// TestMetriczPerRouteHistograms: serving requests populates per-route
// latency and size histograms whose p50/p95/p99 are finite and monotone.
func TestMetriczPerRouteHistograms(t *testing.T) {
	m := obs.NewMetrics()
	ts := httptest.NewServer(New(Config{Metrics: m}).Handler())
	defer ts.Close()

	body := planBody(t, testCircuit(t, 1), "")
	for i := 0; i < 3; i++ {
		if resp, b := postJSON(t, ts.URL+"/v1/plan", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: status %d, body %s", i, resp.StatusCode, b)
		}
	}
	resp, b := getJSON(t, ts.URL+"/v1/metricz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz: status %d", resp.StatusCode)
	}
	var dump metriczDump
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{
		"http.latency_ms.POST /v1/plan",
		"http.resp_bytes.POST /v1/plan",
	} {
		h, ok := dump.Histograms[key]
		if !ok {
			t.Errorf("metricz has no %q histogram", key)
			continue
		}
		if h.Count < 3 {
			t.Errorf("%s count %d, want >= 3", key, h.Count)
		}
		for name, q := range map[string]*float64{"p50": h.P50, "p95": h.P95, "p99": h.P99} {
			if q == nil {
				t.Errorf("%s %s is null", key, name)
			} else if math.IsNaN(*q) || math.IsInf(*q, 0) {
				t.Errorf("%s %s = %v, want finite", key, name, *q)
			}
		}
		if h.P50 != nil && h.P95 != nil && h.P99 != nil {
			if !(*h.P50 <= *h.P95 && *h.P95 <= *h.P99) {
				t.Errorf("%s quantiles not monotone: p50=%v p95=%v p99=%v", key, *h.P50, *h.P95, *h.P99)
			}
			if h.Min != nil && h.Max != nil && (*h.P50 < *h.Min || *h.P99 > *h.Max) {
				t.Errorf("%s quantiles outside [min,max]: %v..%v vs [%v,%v]",
					key, *h.P50, *h.P99, *h.Min, *h.Max)
			}
		}
	}
	// The request counter rides alongside.
	if n := m.Counter("http.requests.POST /v1/plan"); n != 3 {
		t.Errorf("http.requests.POST /v1/plan = %v, want 3", n)
	}
}

// TestRouteLabel: raw paths map to bounded route templates.
func TestRouteLabel(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"POST", "/v1/plan", "POST /v1/plan"},
		{"POST", "/v1/jobs", "POST /v1/jobs"},
		{"GET", "/v1/jobs/abc123", "GET /v1/jobs/{id}"},
		{"DELETE", "/v1/jobs/abc123", "DELETE /v1/jobs/{id}"},
		{"GET", "/v1/jobs/abc123/events", "GET /v1/jobs/{id}/events"},
		{"GET", "/v1/healthz", "GET /v1/healthz"},
		{"GET", "/nope", "other"},
	}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		if got := routeLabel(r); got != c.want {
			t.Errorf("routeLabel(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}
