package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// submitJob POSTs a job and decodes the 202 envelope.
func submitJob(t *testing.T, url string, body []byte) jobSubmitResponse {
	t.Helper()
	resp, b := postJSON(t, url+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d, body %s, want 202", resp.StatusCode, b)
	}
	var sub jobSubmitResponse
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatalf("submit body %s: %v", b, err)
	}
	if sub.ID == "" || sub.Key == "" || sub.State != jobQueued {
		t.Fatalf("submit envelope %+v incomplete", sub)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.ID {
		t.Errorf("Location %q, want /v1/jobs/%s", loc, sub.ID)
	}
	return sub
}

// waitJob polls the status endpoint until the job reaches a terminal
// state.
func waitJob(t *testing.T, url, id string) jobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, b := getJSON(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d, body %s", id, resp.StatusCode, b)
		}
		var st jobStatusResponse
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("status body %s: %v", b, err)
		}
		switch st.State {
		case jobDone, jobFailed, jobCancelled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobStatusResponse{}
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	event string
	data  []string
}

// readSSE fetches an /events stream to termination and parses its frames.
// The handler closes the stream after the "done" frame, so a plain GET +
// ReadAll sees the whole thing.
func readSSE(t *testing.T, url string) []sseFrame {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	return parseSSE(t, resp.Body)
}

func parseSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{}
	sc := bufio.NewScanner(r)
	sc.Buffer(nil, 1<<24)
	dirty := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if dirty {
				frames = append(frames, cur)
				cur = sseFrame{}
				dirty = false
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
			dirty = true
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, strings.TrimPrefix(line, "data: "))
			dirty = true
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// eventPayload reassembles the JSON-lines stream carried by the unnamed
// (telemetry) frames.
func eventPayload(frames []sseFrame) []byte {
	var b []byte
	for _, f := range frames {
		if f.event != "" {
			continue
		}
		for _, d := range f.data {
			b = append(b, d...)
			b = append(b, '\n')
		}
	}
	return b
}

// TestJobEndToEnd: the async path produces, for the same request, exactly
// the bytes the sync path serves — and the SSE stream is byte-identical to
// the -events JSON-lines sink for the same run.
func TestJobEndToEnd(t *testing.T) {
	m := obs.NewMetrics()
	ts := httptest.NewServer(New(Config{Metrics: m}).Handler())
	defer ts.Close()
	body := planBody(t, testCircuit(t, 1), "")

	sub := submitJob(t, ts.URL, body)
	frames := readSSE(t, ts.URL+"/v1/jobs/"+sub.ID+"/events")
	st := waitJob(t, ts.URL, sub.ID)
	if st.State != jobDone || st.Cache != "miss" {
		t.Fatalf("job finished as %s/%s, want done/miss (error %q)", st.State, st.Cache, st.Error)
	}
	if st.Key != sub.Key {
		t.Errorf("status key %s != submit key %s", st.Key, sub.Key)
	}

	// The embedded result must be byte-identical to what /v1/plan serves
	// for the same request (which is now a cache hit on the job's run).
	resp, planBytesResp := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan after job: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Error("sync plan after the job's run was not a cache hit — jobs and plans do not share the cache")
	}
	if !bytes.Equal(st.Result, planBytesResp) {
		t.Error("job result differs from the sync /v1/plan response for the same request")
	}

	// Reference event stream: the same run through the core with a plain
	// JSON-lines sink — the exact bytes `rabid -events` would write.
	var req planRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	c, p, _, err := parsePlan(&req)
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	p.Observer = obs.NewJSONLines(&ref)
	if _, err := core.RunContext(context.Background(), c, p); err != nil {
		t.Fatal(err)
	}
	got := eventPayload(frames)
	if !bytes.Equal(got, ref.Bytes()) {
		t.Errorf("SSE event stream is not byte-identical to the -events sink:\n got %d bytes\nwant %d bytes",
			len(got), ref.Len())
	}
	if len(frames) == 0 || frames[len(frames)-1].event != "done" {
		t.Error("SSE stream did not terminate with a done frame")
	}
	if frames[0].event != "status" {
		t.Error("SSE stream did not open with a status frame")
	}
}

// TestJobEventsAfterCompletion: a subscriber that joins after the job has
// finished still receives the full recorded stream (the prefix) and the
// done frame — late joiners lose nothing.
func TestJobEventsAfterCompletion(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body := planBody(t, testCircuit(t, 2), "")

	sub := submitJob(t, ts.URL, body)
	waitJob(t, ts.URL, sub.ID)
	early := readSSE(t, ts.URL+"/v1/jobs/"+sub.ID+"/events")
	late := readSSE(t, ts.URL+"/v1/jobs/"+sub.ID+"/events")
	if !bytes.Equal(eventPayload(early), eventPayload(late)) {
		t.Error("post-completion subscriber saw a different stream")
	}
	if len(eventPayload(late)) == 0 {
		t.Error("post-completion subscriber saw no events")
	}
}

// TestJobEventsMidRunSubscriber drives the SSE handler against a
// hand-built job whose event log is fed in controlled steps: a subscriber
// joining mid-run must see the already-written prefix plus the live tail,
// with no gaps and no duplicates.
func TestJobEventsMidRunSubscriber(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := &job{
		id:     "test-mid-run",
		key:    "k",
		cancel: func() {},
		log:    newEventLog(),
		doneCh: make(chan struct{}),
		state:  jobRunning,
	}
	if !s.jobs.add(j, time.Now()) {
		t.Fatal("could not register test job")
	}
	var want bytes.Buffer
	emit := func(i int) {
		line := fmt.Sprintf("{\"k\":\"counter\",\"scope\":\"t\",\"v\":%d}\n", i)
		want.WriteString(line)
		if _, err := j.log.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	// Prefix written before the subscriber exists.
	for i := 0; i < 10; i++ {
		emit(i)
	}

	type result struct {
		frames []sseFrame
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/test-mid-run/events")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		done <- result{frames: parseSSE(t, resp.Body)}
	}()

	// Wait until the subscriber has consumed the prefix (the handler's
	// offset only advances by reading), then stream the live tail.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got, _ := j.log.read(0); len(got) == want.Len() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 10; i < 30; i++ {
		emit(i)
		if i%7 == 0 {
			time.Sleep(2 * time.Millisecond) // vary the arrival pattern
		}
	}
	j.finish(jobDone, []byte(`{}`), false, nil, time.Now())

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	got := eventPayload(r.frames)
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("mid-run subscriber stream mismatch (gaps or duplicates):\n got: %q\nwant: %q", got, want.Bytes())
	}
	if r.frames[len(r.frames)-1].event != "done" {
		t.Error("stream did not end with a done frame")
	}
}

// TestJobCancel: DELETE aborts a pending job and it settles as cancelled;
// its SSE stream terminates with a done frame carrying the cancelled
// state. The job is pinned in the admission queue by an occupied run slot,
// so the cancellation deterministically lands before the run starts.
func TestJobCancel(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single run slot so the job blocks in admission.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	sub := submitJob(t, ts.URL, planBody(t, testCircuit(t, 5), ""))
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	st := waitJob(t, ts.URL, sub.ID)
	if st.State != jobCancelled {
		t.Fatalf("job settled as %q (error %q), want cancelled", st.State, st.Error)
	}
	if st.Result != nil {
		t.Error("cancelled job carries a result")
	}
	frames := readSSE(t, ts.URL+"/v1/jobs/"+sub.ID+"/events")
	last := frames[len(frames)-1]
	if last.event != "done" || !strings.Contains(strings.Join(last.data, ""), jobCancelled) {
		t.Errorf("SSE done frame %+v does not report cancellation", last)
	}
}

// TestJobUnknownID: the job endpoints 404 cleanly on unknown ids.
func TestJobUnknownID(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, b := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, body %s, want 404", path, resp.StatusCode, b)
		}
	}
}

// TestJobTableBoundsAndTTL: finished jobs are evicted by TTL and by
// oldest-finished-first pressure; a table full of active jobs rejects new
// submissions with 429.
func TestJobTableBoundsAndTTL(t *testing.T) {
	tab := newJobTable(2, 50*time.Millisecond)
	t0 := time.Unix(0, 0)
	mk := func(id string) *job {
		return &job{id: id, cancel: func() {}, log: newEventLog(), doneCh: make(chan struct{}), state: jobQueued}
	}

	// Two active jobs fill the table; a third is rejected.
	a, b := mk("a"), mk("b")
	if !tab.add(a, t0) || !tab.add(b, t0) {
		t.Fatal("empty table rejected jobs")
	}
	if tab.add(mk("c"), t0) {
		t.Fatal("full-of-active table accepted a job")
	}

	// Finishing one makes room: the finished job is evicted for the next.
	a.finish(jobDone, nil, false, nil, t0.Add(time.Millisecond))
	if !tab.add(mk("d"), t0.Add(2*time.Millisecond)) {
		t.Fatal("table with a finished job rejected a new one")
	}
	if _, ok := tab.get("a", t0.Add(2*time.Millisecond)); ok {
		t.Error("evicted job still resolvable")
	}

	// TTL eviction: a finished job expires even without pressure.
	b.finish(jobFailed, nil, false, nil, t0.Add(time.Millisecond))
	if _, ok := tab.get("b", t0.Add(10*time.Millisecond)); !ok {
		t.Error("freshly finished job not resolvable inside TTL")
	}
	if _, ok := tab.get("b", t0.Add(time.Second)); ok {
		t.Error("expired job still resolvable after TTL")
	}
}

// TestJobTableFull429: the HTTP surface maps a saturated job table to 429.
func TestJobTableFull429(t *testing.T) {
	s := New(Config{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	blocker := &job{id: "blocker", cancel: func() {}, log: newEventLog(), doneCh: make(chan struct{}), state: jobRunning}
	if !s.jobs.add(blocker, time.Now()) {
		t.Fatal("could not seed blocker job")
	}
	resp, b := postJSON(t, ts.URL+"/v1/jobs", planBody(t, testCircuit(t, 1), ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with full job table: status %d, body %s, want 429", resp.StatusCode, b)
	}
	if n := s.metrics.Counter("server.job.rejected"); n != 1 {
		t.Errorf("server.job.rejected = %v, want 1", n)
	}
}

// TestConcurrentJobsSingleRun: N concurrent submissions of the same
// problem run the pipeline exactly once; every job settles done with
// byte-identical results.
func TestConcurrentJobsSingleRun(t *testing.T) {
	m := obs.NewMetrics()
	ts := httptest.NewServer(New(Config{Metrics: m}).Handler())
	defer ts.Close()
	body := planBody(t, testCircuit(t, 3), "")

	const n = 6
	subs := make([]jobSubmitResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subs[i] = submitJob(t, ts.URL, body)
		}(i)
	}
	wg.Wait()
	var first []byte
	for i := 0; i < n; i++ {
		st := waitJob(t, ts.URL, subs[i].ID)
		if st.State != jobDone {
			t.Fatalf("job %d settled as %s (error %q)", i, st.State, st.Error)
		}
		if i == 0 {
			first = st.Result
		} else if !bytes.Equal(first, st.Result) {
			t.Errorf("job %d result differs from job 0", i)
		}
	}
	if runs := m.Span("run").Count; runs != 1 {
		t.Errorf("%d concurrent identical jobs ran the pipeline %d times, want 1", n, runs)
	}
	if miss := m.Counter("cache.miss"); miss != 1 {
		t.Errorf("cache.miss = %v, want 1", miss)
	}
	if total := m.Counter("cache.miss") + m.Counter("cache.coalesced") + m.Counter("cache.hit"); total != n {
		t.Errorf("miss+coalesced+hit = %v, want %d", total, n)
	}
}

// TestJobJournalAndReplay: with a journal configured, a completed job is
// appended with its request, key, event stream, and result digest — and
// replaying the entry through ExecutePlan reproduces both digests exactly.
// A repeat submission journals as a cache hit with no event stream.
func TestJobJournalAndReplay(t *testing.T) {
	jbuf := &syncBuffer{b: &bytes.Buffer{}}
	jw := journal.NewWriter(jbuf)
	ts := httptest.NewServer(New(Config{Journal: jw}).Handler())
	defer ts.Close()
	body := planBody(t, testCircuit(t, 4), "")

	first := submitJob(t, ts.URL, body)
	st := waitJob(t, ts.URL, first.ID)
	if st.State != jobDone {
		t.Fatalf("job settled as %s (error %q)", st.State, st.Error)
	}
	second := submitJob(t, ts.URL, body)
	st2 := waitJob(t, ts.URL, second.ID)
	if st2.State != jobDone || st2.Cache != "hit" {
		t.Fatalf("repeat job settled as %s/%s, want done/hit", st2.State, st2.Cache)
	}

	entries, err := journal.Read(bytes.NewReader(jbuf.snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal has %d entries, want 2", len(entries))
	}
	e := entries[0]
	if e.ID != first.ID || e.Key != first.Key || e.Kind != "plan" || e.CacheHit {
		t.Errorf("entry 0 header %+v does not match the first job", e)
	}
	if e.RequestID == "" {
		t.Error("entry 0 carries no request id")
	}
	if len(e.Events) == 0 || e.EventsSHA256 == "" {
		t.Fatal("entry 0 (a fresh run) recorded no event stream")
	}
	if journal.Digest(st.Result) != e.ResultSHA256 {
		t.Error("recorded result digest does not match the served result")
	}
	if !entries[1].CacheHit || len(entries[1].Events) != 0 {
		t.Errorf("entry 1 should be an event-less cache hit: hit=%v events=%d",
			entries[1].CacheHit, len(entries[1].Events))
	}
	if entries[1].ResultSHA256 != e.ResultSHA256 {
		t.Error("hit entry digest differs from the original run's")
	}

	// Replay: the journaled request re-runs to the recorded digests.
	var sink bytes.Buffer
	key, replayed, err := ExecutePlan(context.Background(), e.Request, 0, obs.NewJSONLines(&sink))
	if err != nil {
		t.Fatal(err)
	}
	if key != e.Key {
		t.Errorf("replayed key %s != journaled key %s", key, e.Key)
	}
	if journal.Digest(replayed) != e.ResultSHA256 {
		t.Error("replayed result digest mismatch: the journal is not replayable")
	}
	if journal.Digest(sink.Bytes()) != e.EventsSHA256 {
		t.Error("replayed event-stream digest mismatch")
	}
	if !bytes.Equal(sink.Bytes(), e.EventStream()) {
		t.Error("replayed event stream differs byte-for-byte from the journaled one")
	}
}

// syncBuffer makes a bytes.Buffer safe for the journal writer goroutine +
// test reader.
type syncBuffer struct {
	mu sync.Mutex
	b  *bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// TestHealthzOccupancy: /v1/healthz reports cache occupancy and job-table
// load alongside admission pressure.
func TestHealthzOccupancy(t *testing.T) {
	s := New(Config{CacheEntries: 32, MaxJobs: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, b := postJSON(t, ts.URL+"/v1/plan", planBody(t, testCircuit(t, 1), "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d, body %s", resp.StatusCode, b)
	}
	running := &job{id: "r", cancel: func() {}, log: newEventLog(), doneCh: make(chan struct{}), state: jobRunning}
	if !s.jobs.add(running, time.Now()) {
		t.Fatal("could not seed running job")
	}

	resp, b := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var h healthzResponse
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache.Entries != 1 || h.Cache.Capacity != 32 {
		t.Errorf("cache occupancy %d/%d, want 1/32", h.Cache.Entries, h.Cache.Capacity)
	}
	if h.Jobs.Running != 1 || h.Jobs.Queued != 0 || h.Jobs.Capacity != 8 {
		t.Errorf("job occupancy %+v, want 1 running of 8", h.Jobs)
	}
}
