// Package cache is the content-addressed result cache of the planning
// service: a canonical deterministic hash of the full problem statement
// (circuit, parameters, technology) keys the serialized response bytes, an
// LRU bound caps memory, and an in-flight table collapses concurrent
// identical requests onto a single computation (singleflight).
//
// Caching a planning result is only sound because RABID runs are
// bit-deterministic for a given input (TestSeededDeterminism, and
// Params.Workers never changes results) — the cached bytes ARE the bytes a
// fresh run would produce, which the service tests prove byte-for-byte.
//
// Hit, miss, coalesced-request, and eviction counts are emitted through
// the standard observer tap ("cache.hit", "cache.miss", "cache.coalesced",
// "cache.evict" counters and the "cache.entries" gauge), so /v1/metricz
// exposes cache effectiveness alongside the pipeline's own telemetry.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"sync"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/tech"
)

// keyVersion is baked into every key so a change to the key material's
// layout (or to result-affecting semantics) invalidates old entries rather
// than aliasing them.
const keyVersion = 3

// planMaterial enumerates, exhaustively and in a fixed order, every field
// of a plan request that can affect the result. Fields deliberately
// absent: Params.Workers (results are bit-identical for every value),
// Params.Observer and RouteOpt.Obs (telemetry only), and RouteOpt.Stage /
// RouteOpt.Pass (transient labels the pipeline overwrites). The JSON
// encoding of this struct is deterministic — fixed field order, no maps —
// so identical requests always hash identically.
type planMaterial struct {
	Version           int              `json:"version"`
	Kind              string           `json:"kind"`
	Circuit           *netlist.Circuit `json:"circuit"`
	Alpha             float64          `json:"alpha"`
	RouteAlpha        float64          `json:"route_alpha"`
	RouteLengthWeight float64          `json:"route_length_weight"`
	RouteOverflowPen  float64          `json:"route_overflow_penalty"`
	MaxRipupPasses    int              `json:"max_ripup_passes"`
	Capacity          int              `json:"capacity"`
	TargetStage1Avg   float64          `json:"target_stage1_avg"`
	Tech              tech.Tech        `json:"tech"`
	SkipStage4        bool             `json:"skip_stage4"`
	DisableDemandTerm bool             `json:"disable_demand_term"`
	UseMCFRouter      bool             `json:"use_mcf_router"`
	// Backend and Library identify the planning engine. Callers must
	// normalize Params first (backend.Normalize): "" and "rabid" are the
	// same engine and must share one address, and "rabid+lib" must have its
	// default library spelled out so a future default change cannot alias
	// entries computed under the old one.
	Backend string         `json:"backend"`
	Library []tech.LibGate `json:"library,omitempty"`
	// SearchKernel is keyed through searchKernelKey: "heap" and "dial" are
	// byte-identical by construction (the dial queue reproduces the heap's
	// (key, node) pop order exactly), so they share one address; "astar"
	// returns identical path costs but may break tree tie-breaks differently,
	// so it mints its own.
	SearchKernel string  `json:"search_kernel"`
	SteinerMode  string  `json:"steiner_mode"`
	MCFPhases    int     `json:"mcf_phases"`
	MCFEpsilon   float64 `json:"mcf_epsilon"`
}

// searchKernelKey canonicalizes a kernel name for key material: "" and
// "dial" map to "heap" because both produce byte-identical results (the
// equivalence TestDialByteIdentical* proves); anything else keys as itself.
func searchKernelKey(kernel string) string {
	switch kernel {
	case "", "dial":
		return "heap"
	}
	return kernel
}

// steinerModeKey canonicalizes a Steiner mode for key material: "" is the
// Prim–Dijkstra default.
func steinerModeKey(mode string) string {
	if mode == "" {
		return "pd"
	}
	return mode
}

// PlanKey derives the content address of a RABID run: a hex SHA-256 over
// the canonical serialization of (circuit, params, tech). It fails when
// the parameters carry a custom RouteOpt.Weight function — a result-
// affecting input the cache cannot address by content.
func PlanKey(c *netlist.Circuit, p core.Params) (string, error) {
	if p.RouteOpt.Weight != nil {
		return "", fmt.Errorf("cache: params with a custom RouteOpt.Weight are not content-addressable")
	}
	return hash(planMaterial{
		Version:           keyVersion,
		Kind:              "plan",
		Circuit:           c,
		Alpha:             p.Alpha,
		RouteAlpha:        p.RouteOpt.Alpha,
		RouteLengthWeight: p.RouteOpt.LengthWeight,
		RouteOverflowPen:  p.RouteOpt.OverflowPenalty,
		MaxRipupPasses:    p.MaxRipupPasses,
		Capacity:          p.Capacity,
		TargetStage1Avg:   p.TargetStage1Avg,
		Tech:              p.Tech,
		SkipStage4:        p.SkipStage4,
		DisableDemandTerm: p.DisableDemandTerm,
		UseMCFRouter:      p.UseMCFRouter,
		Backend:           p.Backend,
		Library:           p.Library,
		SearchKernel:      searchKernelKey(p.SearchKernel),
		SteinerMode:       steinerModeKey(p.SteinerMode),
		MCFPhases:         p.MCFPhases,
		MCFEpsilon:        p.MCFEpsilon,
	})
}

// bbpMaterial is the key material of the BBP baseline endpoint.
type bbpMaterial struct {
	Version  int              `json:"version"`
	Kind     string           `json:"kind"`
	Circuit  *netlist.Circuit `json:"circuit"`
	Capacity int              `json:"capacity"`
	Tech     tech.Tech        `json:"tech"`
}

// BBPKey derives the content address of a BBP baseline run.
func BBPKey(c *netlist.Circuit, capacity int, t tech.Tech) (string, error) {
	return hash(bbpMaterial{Version: keyVersion, Kind: "bbp", Circuit: c, Capacity: capacity, Tech: t})
}

func hash(material any) (string, error) {
	b, err := json.Marshal(material)
	if err != nil {
		return "", fmt.Errorf("cache: serializing key material: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// entry is one resident cache line.
type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the bounded content-addressed store. Values are treated as
// immutable byte slices: Do and Get return the stored slice itself, so
// callers must not modify it (the server writes it straight to the wire).
// Safe for concurrent use.
type Cache struct {
	o obs.Observer

	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	inFlt map[string]*flight
}

// New returns a cache retaining at most maxEntries results (LRU eviction).
// maxEntries == 0 disables retention — requests still collapse through the
// singleflight table, but nothing is stored. o (may be nil) receives the
// cache.* counters.
func New(maxEntries int, o obs.Observer) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cache{
		o:     o,
		max:   maxEntries,
		ll:    list.New(),
		items: map[string]*list.Element{},
		inFlt: map[string]*flight{},
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the retention bound (0 = retention disabled). Alongside Len
// it gives /v1/healthz its cache-occupancy gauge.
func (c *Cache) Cap() int { return c.max }

// Get returns the cached bytes for key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.lookup(key)
	if ok {
		c.count("cache.hit")
	}
	return v, ok
}

// lookup is Get without counters; callers hold mu.
func (c *Cache) lookup(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the bytes for key, computing them at most once across all
// concurrent callers: a resident entry is returned immediately (hit=true);
// if an identical computation is already in flight the caller waits for it
// and shares its bytes (hit=true — the response is another request's
// result, byte-identical by determinism); otherwise compute runs on the
// calling goroutine and its result is stored (hit=false). Errors are never
// cached. A waiting caller whose ctx ends returns ctx.Err() without
// disturbing the in-flight computation (which runs under the leader's own
// context).
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if v, ok := c.lookup(key); ok {
		c.count("cache.hit")
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.inFlt[key]; ok {
		c.count("cache.coalesced")
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.val, fl.err == nil, fl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.inFlt[key] = fl
	c.count("cache.miss")
	c.mu.Unlock()

	fl.val, fl.err = runCompute(compute)

	c.mu.Lock()
	delete(c.inFlt, key)
	if fl.err == nil {
		c.store(key, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, false, fl.err
}

// runCompute shields the flight table from a panicking computation: the
// panic becomes the flight's error, so waiters unblock instead of hanging
// on a leaked entry.
func runCompute(compute func() ([]byte, error)) (val []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cache: compute panicked: %v", r)
		}
	}()
	return compute()
}

// store inserts or refreshes key (callers hold mu), evicting from the LRU
// tail once over the bound.
func (c *Cache) store(key string, val []byte) {
	if c.max == 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.count("cache.evict")
	}
	obs.Emit(c.o, obs.Event{Kind: obs.KindGauge, Scope: "cache.entries", Net: -1, Value: float64(c.ll.Len())})
}

func (c *Cache) count(scope string) {
	obs.Emit(c.o, obs.Event{Kind: obs.KindCounter, Scope: scope, Net: -1, Value: 1})
}
