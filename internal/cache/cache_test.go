package cache

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/tech"
)

func testCircuit(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Generate(spec, floorplan.Options{Seed: seed, GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPlanKeyStable: the same circuit and params always hash to the same
// key, and regenerating the identical circuit does not change it.
func TestPlanKeyStable(t *testing.T) {
	p := core.DefaultParams()
	k1, err := PlanKey(testCircuit(t, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PlanKey(testCircuit(t, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical inputs hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex sha256", k1)
	}
}

// TestPlanKeyCircuitSensitivity: a different circuit changes the key.
func TestPlanKeyCircuitSensitivity(t *testing.T) {
	p := core.DefaultParams()
	k1, _ := PlanKey(testCircuit(t, 1), p)
	k2, _ := PlanKey(testCircuit(t, 2), p)
	if k1 == k2 {
		t.Error("different circuits hashed identically")
	}
}

// TestPlanKeyParamsSensitivity enumerates one mutation per core.Params
// field and asserts each result-affecting field changes the key while the
// two deliberately excluded fields (Workers: bit-identical results;
// Observer: telemetry only) do not. The reflection sweep at the end forces
// this table to stay exhaustive: adding a field to Params fails the test
// until the field's cache treatment is decided here.
func TestPlanKeyParamsSensitivity(t *testing.T) {
	c := testCircuit(t, 1)
	base, err := PlanKey(c, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]struct {
		mutate     func(*core.Params)
		wantChange bool
	}{
		"Alpha":             {func(p *core.Params) { p.Alpha += 0.1 }, true},
		"RouteOpt":          {func(p *core.Params) { p.RouteOpt.LengthWeight += 0.01 }, true},
		"MaxRipupPasses":    {func(p *core.Params) { p.MaxRipupPasses++ }, true},
		"Capacity":          {func(p *core.Params) { p.Capacity = 7 }, true},
		"TargetStage1Avg":   {func(p *core.Params) { p.TargetStage1Avg += 0.05 }, true},
		"Tech":              {func(p *core.Params) { p.Tech.DriverRes += 1 }, true},
		"SkipStage4":        {func(p *core.Params) { p.SkipStage4 = true }, true},
		"DisableDemandTerm": {func(p *core.Params) { p.DisableDemandTerm = true }, true},
		"UseMCFRouter":      {func(p *core.Params) { p.UseMCFRouter = true }, true},
		"Backend":           {func(p *core.Params) { p.Backend = "mcf" }, true},
		"Library":           {func(p *core.Params) { p.Library = tech.DefaultPlanningLibrary018() }, true},
		// astar returns identical path costs but may break tree tie-breaks
		// differently, so it keys separately. The dial/heap aliasing half of
		// SearchKernel's treatment is asserted below the sweep.
		"SearchKernel": {func(p *core.Params) { p.SearchKernel = route.KernelAstar }, true},
		"SteinerMode":  {func(p *core.Params) { p.SteinerMode = core.SteinerCostDist }, true},
		"MCFPhases":    {func(p *core.Params) { p.MCFPhases = 20 }, true},
		"MCFEpsilon":   {func(p *core.Params) { p.MCFEpsilon = 0.2 }, true},
		"Workers":           {func(p *core.Params) { p.Workers = 3 }, false},
		"Observer":          {func(p *core.Params) { p.Observer = obs.NewMetrics() }, false},
		// Router workspace pooling is memory reuse, not configuration: the
		// route.Workspace/adjacency machinery is mechanically equivalent to
		// the unpooled path (golden fixtures prove byte identity), so a
		// pooled and an unpooled run must share one cache entry.
		"WorkspacePool": {func(p *core.Params) { p.WorkspacePool = route.NewPool() }, false},
	}
	for name, m := range mutations {
		p := core.DefaultParams()
		m.mutate(&p)
		k, err := PlanKey(c, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if changed := k != base; changed != m.wantChange {
			t.Errorf("mutating %s: key changed = %v, want %v", name, changed, m.wantChange)
		}
	}
	pt := reflect.TypeOf(core.Params{})
	for i := 0; i < pt.NumField(); i++ {
		if _, ok := mutations[pt.Field(i).Name]; !ok {
			t.Errorf("core.Params field %s has no entry in the key-sensitivity table; decide its cache treatment", pt.Field(i).Name)
		}
	}
	// The dial kernel reproduces the heap's (key, node) pop order exactly
	// (TestDialByteIdentical*), so "dial", "heap", and the empty default must
	// share one content address.
	for _, kernel := range []string{route.KernelHeap, route.KernelDial} {
		p := core.DefaultParams()
		p.SearchKernel = kernel
		if k, _ := PlanKey(c, p); k != base {
			t.Errorf("SearchKernel %q minted its own key; byte-identical kernels must alias", kernel)
		}
	}
	// RouteOpt sub-fields that must reach the key (Weight is rejected,
	// Obs/Stage/Pass are excluded as telemetry/transient).
	for name, mutate := range map[string]func(*route.Options){
		"Alpha":           func(o *route.Options) { o.Alpha += 0.1 },
		"OverflowPenalty": func(o *route.Options) { o.OverflowPenalty *= 2 },
	} {
		p := core.DefaultParams()
		mutate(&p.RouteOpt)
		if k, _ := PlanKey(c, p); k == base {
			t.Errorf("mutating RouteOpt.%s did not change the key", name)
		}
	}
}

// TestPlanKeyRejectsWeightFunc: a custom routing weight cannot be content-
// addressed and must be refused, not silently ignored.
func TestPlanKeyRejectsWeightFunc(t *testing.T) {
	p := core.DefaultParams()
	p.RouteOpt.Weight = func(int) float64 { return 1 }
	if _, err := PlanKey(testCircuit(t, 1), p); err == nil {
		t.Error("PlanKey accepted a params with a custom Weight func")
	}
}

// TestBBPKeySensitivity: endpoint kind, capacity, and tech all reach the
// BBP key, and plan/bbp keys never alias for the same circuit.
func TestBBPKeySensitivity(t *testing.T) {
	c := testCircuit(t, 1)
	p := core.DefaultParams()
	k1, err := BBPKey(c, 4, p.Tech)
	if err != nil {
		t.Fatal(err)
	}
	if k2, _ := BBPKey(c, 5, p.Tech); k2 == k1 {
		t.Error("capacity does not reach the BBP key")
	}
	tt := p.Tech
	tt.SinkCap *= 2
	if k3, _ := BBPKey(c, 4, tt); k3 == k1 {
		t.Error("tech does not reach the BBP key")
	}
	if kp, _ := PlanKey(c, p); kp == k1 {
		t.Error("plan and bbp keys alias")
	}
}

// TestLRUEvictionOrder: under the size bound the least recently used entry
// goes first, and a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	m := obs.NewMetrics()
	c := New(2, m)
	put := func(k string) {
		if _, _, err := c.Do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("k1")
	put("k2")
	if _, ok := c.Get("k1"); !ok { // k1 now most recent
		t.Fatal("k1 missing")
	}
	put("k3") // evicts k2, the least recently used
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 survived eviction; LRU order broken")
	}
	if v, ok := c.Get("k1"); !ok || string(v) != "k1" {
		t.Errorf("k1 lost or corrupted: %q, %v", v, ok)
	}
	if v, ok := c.Get("k3"); !ok || string(v) != "k3" {
		t.Errorf("k3 lost or corrupted: %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
	if got := m.Counter("cache.evict"); got != 1 {
		t.Errorf("cache.evict = %g, want 1", got)
	}
}

// TestSingleflightDedup: N concurrent Do calls for one key run compute
// exactly once, and every caller gets the identical bytes.
func TestSingleflightDedup(t *testing.T) {
	const n = 16
	c := New(8, nil)
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = c.Do(context.Background(), "key", func() ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("result"), nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times for %d concurrent identical requests", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(vals[i]) != "result" {
			t.Errorf("caller %d got %q", i, vals[i])
		}
	}
}

// TestErrorsNotCached: a failed computation leaves no entry, so the next
// request recomputes.
func TestErrorsNotCached(t *testing.T) {
	c := New(4, nil)
	calls := 0
	compute := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}
	if _, _, err := c.Do(context.Background(), "k", compute); err == nil {
		t.Fatal("first Do should fail")
	}
	v, hit, err := c.Do(context.Background(), "k", compute)
	if err != nil || string(v) != "ok" {
		t.Fatalf("second Do = %q, %v", v, err)
	}
	if hit {
		t.Error("second Do reported a hit after a failed first computation")
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
}

// TestComputePanicUnblocksWaiters: a panicking computation surfaces as an
// error to the leader, unblocks coalesced waiters, and stores nothing.
func TestComputePanicUnblocksWaiters(t *testing.T) {
	c := New(4, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var waiterVal []byte
	var waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
			close(entered)
			<-release
			panic("boom")
		})
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("leader error = %v, want compute panic", err)
		}
	}()
	<-entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Either coalesces onto the panicking flight (shares its error) or
		// — if it loses the race and arrives after cleanup — recomputes.
		waiterVal, _, waiterErr = c.Do(context.Background(), "k", func() ([]byte, error) {
			return []byte("recomputed"), nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter reach the flight table
	close(release)
	wg.Wait()
	if waiterErr != nil {
		if !strings.Contains(waiterErr.Error(), "panicked") {
			t.Errorf("waiter error = %v, want the shared compute panic", waiterErr)
		}
	} else if string(waiterVal) != "recomputed" {
		t.Errorf("waiter value = %q", waiterVal)
	}
	// The panicked result itself must never be resident; only a waiter's
	// clean recompute may be.
	if v, ok := c.Get("k"); ok && string(v) != "recomputed" {
		t.Errorf("panicked computation left entry %q", v)
	}
}

// TestWaiterHonorsOwnContext: a coalesced waiter whose context ends
// returns promptly with its own ctx error while the leader keeps running.
func TestWaiterHonorsOwnContext(t *testing.T) {
	c := New(4, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() ([]byte, error) {
		close(entered)
		<-release
		return []byte("late"), nil
	})
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() ([]byte, error) {
			t.Error("waiter's compute ran")
			return nil, nil
		})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("waiter error = %v, want context.Canceled", err)
	}
}

// TestZeroEntriesStoresNothing: maxEntries 0 keeps singleflight but
// retains no results.
func TestZeroEntriesStoresNothing(t *testing.T) {
	c := New(0, nil)
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
			calls++
			return []byte(fmt.Sprintf("run %d", calls)), nil
		})
		if err != nil || hit {
			t.Fatalf("iteration %d: hit=%v err=%v", i, hit, err)
		}
		if want := fmt.Sprintf("run %d", i+1); string(v) != want {
			t.Errorf("iteration %d: got %q, want %q", i, v, want)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len() = %d with retention disabled", c.Len())
	}
}

// TestCoalescedCounterExact: N concurrent Do calls for one key produce
// exactly one miss and N-1 coalesced observations — no double counting,
// no lost waiters. The leader's compute is gated on a channel and released
// only after the counter shows every other caller has parked in the
// in-flight table, so the split is deterministic.
func TestCoalescedCounterExact(t *testing.T) {
	const n = 8
	m := obs.NewMetrics()
	c := New(4, m)
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([][]byte, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				<-release
				return []byte("payload"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}

	// Wait until all n-1 followers are parked on the leader's flight, then
	// let the leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for m.Counter("cache.coalesced") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %v callers coalesced after 10s, want %d", m.Counter("cache.coalesced"), n-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if miss := m.Counter("cache.miss"); miss != 1 {
		t.Errorf("cache.miss = %v, want exactly 1", miss)
	}
	if co := m.Counter("cache.coalesced"); co != n-1 {
		t.Errorf("cache.coalesced = %v, want exactly %d", co, n-1)
	}
	if hit := m.Counter("cache.hit"); hit != 0 {
		t.Errorf("cache.hit = %v, want 0 (no resident entry existed)", hit)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if string(results[i]) != "payload" {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if !hits[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers reported hit=false, want exactly 1 (the leader)", leaders)
	}

	// A follow-up call is a resident hit: exactly one hit, no new miss.
	if _, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		t.Error("compute ran for a resident key")
		return nil, nil
	}); err != nil || !hit {
		t.Errorf("resident Do: hit=%v err=%v, want hit=true", hit, err)
	}
	if hit, miss := m.Counter("cache.hit"), m.Counter("cache.miss"); hit != 1 || miss != 1 {
		t.Errorf("after resident hit: hit=%v miss=%v, want 1/1", hit, miss)
	}
}
