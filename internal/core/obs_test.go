package core

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestObserverEventDeterminism proves the tentpole guarantee at the event
// level: with an observer attached, the exported JSON-lines stream (which
// omits wall-clock durations by default) is byte-identical for every
// Workers value — the parallel per-net sections buffer their events per
// index and flush in order.
func TestObserverEventDeterminism(t *testing.T) {
	c := smallCircuit(t, 31, 20, 10, 10, 2, 3)
	stream := func(workers int) []byte {
		var buf bytes.Buffer
		sink := obs.NewJSONLines(&buf)
		p := DefaultParams()
		p.Workers = workers
		p.Observer = sink
		if _, err := Run(c, p); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sink.Err(); err != nil {
			t.Fatalf("workers=%d: sink: %v", workers, err)
		}
		return buf.Bytes()
	}
	ref := stream(1)
	if len(ref) == 0 {
		t.Fatal("no events emitted")
	}
	for _, w := range []int{4, 0} {
		if got := stream(w); !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: event stream differs from workers=1\n(first 400 bytes)\nref: %.400s\ngot: %.400s", w, ref, got)
		}
	}
}

// TestObserverDoesNotChangeResults: attaching an observer must be a pure
// tap — stage statistics, routes, and buffer assignments are identical to
// an unobserved run.
func TestObserverDoesNotChangeResults(t *testing.T) {
	c := smallCircuit(t, 32, 15, 10, 10, 2, 3)
	bare, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Observer = obs.NewMetrics()
	tapped, err := Run(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Stages) != len(tapped.Stages) {
		t.Fatalf("stage count %d vs %d", len(bare.Stages), len(tapped.Stages))
	}
	for i := range bare.Stages {
		a, b := bare.Stages[i], tapped.Stages[i]
		a.CPU, b.CPU = 0, 0
		if a != b {
			t.Errorf("stage %d stats differ:\n  bare:   %+v\n  tapped: %+v", i+1, a, b)
		}
	}
	for i := range bare.Assignments {
		ab, bb := bare.Assignments[i].Buffers, tapped.Assignments[i].Buffers
		if len(ab) != len(bb) {
			t.Fatalf("net %d buffer count %d vs %d", i, len(ab), len(bb))
		}
		for k := range ab {
			if ab[k] != bb[k] {
				t.Fatalf("net %d buffer %d differs", i, k)
			}
		}
	}
}

// TestObserverMetricsCoverage checks the metrics registry sees the whole
// pipeline: one span per stage with a positive duration, the run span,
// per-net Steiner spans, and the Stage-2/3 work counters.
func TestObserverMetricsCoverage(t *testing.T) {
	c := smallCircuit(t, 33, 12, 10, 10, 2, 3)
	m := obs.NewMetrics()
	p := DefaultParams()
	// Pin the edge capacity low enough to overflow: Stage 2 now skips the
	// rip-up loop entirely on an overflow-free circuit (0 passes), and a
	// calibrated capacity leaves this small instance uncongested — with no
	// pass there are no route.pops.2 events to cover.
	p.Capacity = 1
	p.Observer = m
	if _, err := Run(c, p); err != nil {
		t.Fatal(err)
	}
	if s := m.Span("run"); s.Count != 1 || s.Total <= 0 {
		t.Errorf("run span = %+v, want count 1 with positive total", s)
	}
	for stage := 1; stage <= 4; stage++ {
		k := "stage." + string(rune('0'+stage))
		if s := m.Span(k); s.Count != 1 || s.Total <= 0 {
			t.Errorf("span %s = %+v, want count 1 with positive total", k, s)
		}
	}
	if s := m.Span("net.steiner.1"); s.Count != len(c.Nets) {
		t.Errorf("net.steiner.1 span count = %d, want %d (one per net)", s.Count, len(c.Nets))
	}
	if v := m.Counter("route.pops.2"); v <= 0 {
		t.Errorf("route.pops.2 = %g, want > 0 (Stage-2 Dijkstra expansions)", v)
	}
	if v := m.Counter("dp.candidates.3"); v <= 0 {
		t.Errorf("dp.candidates.3 = %g, want > 0 (Stage-3 DP work)", v)
	}
	if g, ok := m.Gauge("stage.wire_avg.1"); !ok || g <= 0 {
		t.Errorf("stage.wire_avg.1 = %g,%v, want a positive reading", g, ok)
	}
	if v := m.Counter("delay.nonfinite"); v != 0 {
		t.Errorf("delay.nonfinite = %g on a healthy run, want 0", v)
	}
}

// The observer-overhead benchmarks back DESIGN.md's numbers: compare
// BenchmarkRunNilObserver (the zero-cost fast path) against
// BenchmarkRunMetricsObserver (aggregating tap attached).
func benchmarkRun(b *testing.B, o obs.Observer) {
	c := smallCircuit(b, 41, 30, 12, 12, 3, 4)
	p := DefaultParams()
	p.Observer = o
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunNilObserver(b *testing.B)     { benchmarkRun(b, nil) }
func BenchmarkRunMetricsObserver(b *testing.B) { benchmarkRun(b, obs.NewMetrics()) }
