// Package core implements RABID — Resource Allocation for Buffer and
// Interconnect Distribution — the paper's four-stage heuristic:
//
//  1. initial Steiner tree construction (Prim–Dijkstra + overlap removal),
//  2. wire congestion reduction (Nair-style full rip-up-and-reroute under
//     the Eq. (1) cost),
//  3. buffer assignment (length-based dynamic programming under the Eq. (2)
//     cost with the probabilistic demand term p(v)),
//  4. final post-processing (per-two-path rip-up-and-reroute under the
//     combined cost, then buffer reinsertion).
//
// Run returns per-stage statistics matching the columns of the paper's
// Table II.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/bufferdp"
	"repro/internal/delay"
	"repro/internal/geom"
	"repro/internal/mcf"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/rtree"
	"repro/internal/steiner"
	"repro/internal/tech"
	"repro/internal/tile"
	"repro/internal/viz"
)

// Params configures a RABID run.
type Params struct {
	// Alpha is the Prim–Dijkstra radius/wirelength tradeoff (paper: 0.4).
	Alpha float64
	// RouteOpt configures the congestion-driven router of Stages 2 and 4.
	RouteOpt route.Options
	// MaxRipupPasses bounds Stage 2 (paper: 3 complete iterations).
	MaxRipupPasses int
	// Capacity is the uniform edge capacity W(e); 0 calibrates it so that
	// the Stage-1 average congestion is TargetStage1Avg (see DESIGN.md —
	// the paper never tabulates W(e)).
	Capacity int
	// TargetStage1Avg is the calibration target (default 0.25).
	TargetStage1Avg float64
	// Tech is the technology used for Elmore delay reporting.
	Tech tech.Tech
	// SkipStage4 disables post-processing (for stage ablations).
	SkipStage4 bool
	// DisableDemandTerm zeroes the probabilistic p(v) term of Eq. (2)
	// (for ablations of the Stage-3 cost).
	DisableDemandTerm bool
	// UseMCFRouter replaces the Stage-2 rip-up-and-reroute with the
	// multicommodity-flow global router — the alternative the paper names
	// ("e.g., the multicommodity flow-based approach of [1]").
	UseMCFRouter bool
	// MCFPhases and MCFEpsilon expose the multicommodity-flow router's
	// knobs (see mcf.Options): the number of routing phases and the
	// exponential length step. Zero means the engine default (12 phases,
	// epsilon 0.3). Both are result-affecting and flow into the
	// content-addressed cache key; they only matter on the mcf paths
	// (UseMCFRouter or the "mcf" backend) but are validated up front for
	// every run so a bad value fails fast rather than mid-pipeline.
	MCFPhases  int
	MCFEpsilon float64
	// SearchKernel selects the router's wavefront implementation for every
	// Stage-2/Stage-4 search in the run ("heap", "dial", "astar"; "" means
	// "heap" — see route.Kernels). "dial" is byte-identical to "heap" on
	// every input; "astar" returns identical path costs with fewer pops
	// (popped order — and hence tree tie-breaks — may differ, so it mints
	// its own cache key). A non-empty value overrides RouteOpt.Kernel.
	SearchKernel string
	// SteinerMode selects the Stage-1 construction objective ("pd",
	// "costdist"; "" means "pd"). "pd" is the paper's Prim–Dijkstra
	// tradeoff tree at Alpha. "costdist" builds Held–Perner-style
	// cost-distance trees with per-net weight 1/L, and reroutes Stage 2 at
	// alpha = 1 (pure congestion-priced shortest paths, the regime where
	// the astar kernel's heuristic provably engages): the tradeoff is
	// carried per net by the construction objective instead of the global
	// Alpha, so the reroute can optimize distance under congestion alone.
	SteinerMode string
	// Backend names the planning engine ("rabid", "rabid+lib", "mcf"; ""
	// means "rabid"). The core pipeline does not dispatch on it — that is
	// internal/backend's job — but it lives here so one Params value
	// describes a plan request end to end and the content-addressed cache
	// keys cover engine identity (see internal/cache planMaterial).
	Backend string
	// Library is the planning buffer library for the multi-type Stage-3 DP
	// (the rabid+lib backend). Empty means the single planning buffer
	// Tech.Buffer — the paper's configuration. When non-empty, every DP run
	// chooses per-buffer gates from this library (each gate's length
	// constraint is the net's L scaled by its drive strength, its site cost
	// scaled by its area; inverters must pair up via polarity tracking) and
	// delay evaluation uses the chosen gates.
	Library []tech.LibGate
	// Workers bounds the goroutines used for the parallel sections: the
	// order-independent per-net work (Stage-1 Steiner construction, the
	// delay refresh after every stage, the per-net snapshot accounting)
	// and the Stage-2 speculative rip-up engine (route.Parallel). 0 (the
	// default) means GOMAXPROCS. Results are bit-identical for every value
	// — per-net workers write only to their own net's slot, shared
	// tile-graph mutation stays sequential, and the speculative engine
	// commits in net order with conflict replay (see DESIGN.md, "Parallel
	// execution model" and "Parallel rip-up-and-reroute").
	Workers int
	// Observer receives the run's structured telemetry: trace spans,
	// counters, gauges, and congestion-heat snapshots (see internal/obs).
	// nil disables observation at zero cost — no events are built and the
	// per-net/per-pass spans read no clocks (only the coarse run and stage
	// CPU timers behind StageStats.CPU always run; the tables' cpu(s)
	// column prints untapped). The event stream is deterministic for every Workers
	// value (parallel sections buffer per net and flush in index order);
	// only span durations vary run to run.
	Observer obs.Observer
	// WorkspacePool, when non-nil, supplies the run's router scratch
	// workspace and takes it back afterwards, so a long-lived caller (the
	// planning server) reuses the warmed arrays across runs. nil allocates
	// a private workspace per run. Like Workers and Observer this is pure
	// mechanism: it never affects results and is deliberately excluded from
	// cache keys (see internal/cache planMaterial).
	WorkspacePool *route.Pool
}

// Steiner-mode names accepted by Params.SteinerMode.
const (
	SteinerPD       = "pd"
	SteinerCostDist = "costdist"
)

// SteinerModes lists the accepted Stage-1 construction objectives.
func SteinerModes() []string { return []string{SteinerPD, SteinerCostDist} }

// DefaultParams returns the paper's parameter set.
func DefaultParams() Params {
	return Params{
		Alpha:           0.4,
		RouteOpt:        route.DefaultOptions(),
		MaxRipupPasses:  3,
		TargetStage1Avg: 0.25,
		Tech:            tech.Default018(),
	}
}

// StageStats reports the Table II columns after one stage.
type StageStats struct {
	Stage      int
	WireMax    float64 // max w(e)/W(e)
	WireAvg    float64 // avg w(e)/W(e)
	Overflows  int     // sum of w(e)-W(e) over overflowing edges
	BufMax     float64 // max b(v)/B(v)
	BufAvg     float64 // avg b(v)/B(v) over tiles with sites
	Buffers    int
	Fails      int     // nets violating their length constraint
	WirelenMm  float64 // total routed wirelength
	MaxDelayPs float64
	AvgDelayPs float64
	// NonFiniteDelays counts sink delays excluded from the delay columns
	// because they were NaN or ±Inf — the +Inf sentinel refreshDelays
	// plants on a broken net must never poison the aggregates.
	NonFiniteDelays int
	CPU             time.Duration
}

// Result is a completed RABID run.
type Result struct {
	Circuit  *netlist.Circuit
	Params   Params
	Capacity int
	Graph    *tile.Graph
	Routes   []*rtree.Tree
	// Assignments holds the final buffer assignment per net (nil before
	// Stage 3 for a net that has not been processed).
	Assignments []bufferdp.Assignment
	Stages      []StageStats
}

// TotalBuffers returns the number of buffers inserted across all nets.
func (r *Result) TotalBuffers() int {
	n := 0
	for _, a := range r.Assignments {
		n += len(a.Buffers)
	}
	return n
}

// state carries the pipeline between stages.
type state struct {
	ctx    context.Context
	c      *netlist.Circuit
	p      Params
	g      *tile.Graph
	eval   delay.Evaluator
	routes []*rtree.Tree
	asg    []bufferdp.Assignment
	hasAsg []bool
	// bufTiles caches, per net, the tile index of every committed buffer so
	// Stage 4 can release them.
	bufTiles [][]int
	delays   []float64 // per-net max sink delay, for ordering
	obs      obs.Observer
	stage    int // current pipeline stage, stamped on emitted events
	// ws is the run's primary router workspace: it serves the sequential
	// routing of Stages 2 and 4 — including the Stage-2 commit/replay
	// section of the speculative engine, whose concurrent workers draw
	// their own workspaces from Params.WorkspacePool — and is reused
	// across nets and passes and, through Params.WorkspacePool, across
	// runs.
	ws *route.Workspace
}

// Run executes the full RABID pipeline on the circuit.
func Run(c *netlist.Circuit, p Params) (*Result, error) {
	return RunContext(context.Background(), c, p) //rabid:allow ctxflow Run is the documented Background wrapper over RunContext for context-free callers (tables, benches); service paths call RunContext
}

// RunContext is Run with cooperative cancellation. The pipeline checks ctx
// at every stage boundary, at every Stage-2 rip-up pass boundary, before
// each per-net DP assignment and rework of Stages 3-4, and inside the
// worker-pool dispatch of the parallel per-net sections (par.ForEachCtx) —
// so a cancelled or expired context aborts the run promptly at the next
// checkpoint, returning an error that wraps ctx.Err(). A run that completes
// is bit-identical to Run's: cancellation can only abort a run, never
// change its result, because no checkpoint alters any computation.
func RunContext(ctx context.Context, c *netlist.Circuit, p Params) (*Result, error) {
	st, err := newState(ctx, c, p)
	if err != nil {
		return nil, err
	}
	defer p.WorkspacePool.Put(st.ws)
	return st.execute([]pipeStage{
		{1, st.stage1},
		{2, st.stage2},
		{3, st.stage3},
		{4, st.stage4},
	}, p.SkipStage4)
}

// RunMCF executes the multicommodity-flow buffered-routing pipeline (the
// "mcf" planning backend): Stage 1 builds the initial Steiner routes and
// the calibrated tile graph exactly as the rabid pipeline does; Stage 2
// replaces rip-up-and-reroute with the full fractional MCF relaxation —
// site-aware edge lengths pricing buffer scarcity into the length system,
// approximate dual updates, deterministic seeded rounding, greedy repair;
// Stage 3 runs the length-based buffer DP under the Eq. (2) site cost. The
// paper's Stage-4 post-processing is rabid-specific (it splices two-paths
// against the incremental router) and is not part of this engine.
func RunMCF(c *netlist.Circuit, p Params) (*Result, error) {
	return RunMCFContext(context.Background(), c, p) //rabid:allow ctxflow RunMCF is the documented Background wrapper over RunMCFContext for context-free callers (tables, benches); service paths call RunMCFContext
}

// RunMCFContext is RunMCF with cooperative cancellation, with the same
// checkpoint contract as RunContext (stage boundaries, MCF phase and
// per-net boundaries, per-net DP assignments, worker-pool dispatch).
func RunMCFContext(ctx context.Context, c *netlist.Circuit, p Params) (*Result, error) {
	st, err := newState(ctx, c, p)
	if err != nil {
		return nil, err
	}
	defer p.WorkspacePool.Put(st.ws)
	return st.execute([]pipeStage{
		{1, st.stage1},
		{2, st.stage2MCF},
		{3, st.stage3},
	}, false)
}

// newState validates the inputs and assembles the pipeline state shared by
// every planning engine.
func newState(ctx context.Context, c *netlist.Circuit, p Params) (*state, error) {
	if ctx == nil {
		ctx = context.Background() //rabid:allow ctxflow nil-ctx guard: a nil ctx would panic at the first checkpoint, so it is normalized to the documented Background behavior
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if p.MaxRipupPasses < 1 {
		return nil, fmt.Errorf("core: MaxRipupPasses %d < 1", p.MaxRipupPasses)
	}
	switch p.SearchKernel {
	case "", route.KernelHeap, route.KernelDial, route.KernelAstar:
	default:
		return nil, fmt.Errorf("core: unknown search kernel %q (want %v)", p.SearchKernel, route.Kernels())
	}
	if p.SearchKernel != "" {
		// Params.SearchKernel is the request-level spelling; the router
		// reads Options.Kernel, so the override lands once here and every
		// Stage-2/Stage-4 Options copy below inherits it.
		p.RouteOpt.Kernel = p.SearchKernel
	}
	switch p.SteinerMode {
	case "", SteinerPD, SteinerCostDist:
	default:
		return nil, fmt.Errorf("core: unknown steiner mode %q (want %v)", p.SteinerMode, SteinerModes())
	}
	if p.MCFPhases < 0 {
		return nil, fmt.Errorf("core: MCFPhases %d < 0", p.MCFPhases)
	}
	if p.MCFEpsilon != 0 && (p.MCFEpsilon <= 0 || p.MCFEpsilon >= 1) {
		return nil, fmt.Errorf("core: MCFEpsilon %g outside (0,1)", p.MCFEpsilon)
	}
	for i, g := range p.Library {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("core: library gate %d: %w", i, err)
		}
	}
	eval, err := delay.NewEvaluator(p.Tech, c.TileUm)
	if err != nil {
		return nil, err
	}
	return &state{
		ctx:      ctx,
		c:        c,
		p:        p,
		eval:     eval,
		routes:   make([]*rtree.Tree, len(c.Nets)),
		asg:      make([]bufferdp.Assignment, len(c.Nets)),
		hasAsg:   make([]bool, len(c.Nets)),
		bufTiles: make([][]int, len(c.Nets)),
		delays:   make([]float64, len(c.Nets)),
		obs:      p.Observer,
		ws:       p.WorkspacePool.Get(), // nil pool => fresh workspace
	}, nil
}

// pipeStage is one stage of a planning pipeline: its Table II stage number
// and the state method that runs it.
type pipeStage struct {
	num int
	f   func() error
}

// execute drives a pipeline to completion: the run span, per-stage timing
// and snapshot accounting, and result assembly. skipLast drops the final
// stage (Params.SkipStage4 for the rabid pipeline's ablations).
func (st *state) execute(stages []pipeStage, skipLast bool) (*Result, error) {
	res := &Result{Circuit: st.c, Params: st.p}

	// The run and stage timers read the wall clock unconditionally: the
	// cpu(s) column of the paper's tables is part of the default, untapped
	// CLI output, and these O(1)-per-run readings never feed results. Only
	// the per-net and per-pass spans stay behind the observer gate.
	tRun := time.Now() //rabid:allow wallclock run CPU is reporting-only and part of the default table output
	if st.obs != nil {
		obs.Emit(st.obs, obs.Event{Kind: obs.KindSpanBegin, Scope: "run", Net: -1})
	}
	run := func(stage int, f func() error) error {
		if err := st.ctx.Err(); err != nil {
			return fmt.Errorf("core: cancelled before stage %d: %w", stage, err)
		}
		st.stage = stage
		obs.Emit(st.obs, obs.Event{Kind: obs.KindSpanBegin, Scope: "stage", Stage: stage, Net: -1})
		t0 := time.Now() //rabid:allow wallclock stage CPU is the tables' cpu(s) column, printed untapped
		if err := f(); err != nil {
			return fmt.Errorf("core: stage %d: %w", stage, err)
		}
		s := st.snapshot(stage) //rabid:allow ctxflow snapshot accounting must run to completion once a stage finished: cancelling mid-accounting would corrupt a completed run's stats, and the next stage-boundary checkpoint aborts promptly anyway
		s.CPU = time.Since(t0)  //rabid:allow wallclock stage CPU is the tables' cpu(s) column, printed untapped
		res.Stages = append(res.Stages, s)
		st.emitStage(s)
		return nil
	}
	for i, ps := range stages {
		if skipLast && i == len(stages)-1 {
			break
		}
		if err := run(ps.num, ps.f); err != nil {
			return nil, err
		}
	}
	if st.obs != nil {
		obs.Emit(st.obs, obs.Event{Kind: obs.KindSpanEnd, Scope: "run", Net: -1, Dur: time.Since(tRun)}) //rabid:allow wallclock run CPU is reporting-only and part of the default table output
	}
	res.Capacity = st.g.Capacity(0)
	res.Graph = st.g
	res.Routes = st.routes
	res.Assignments = st.asg
	return res, nil
}

// emitStage exports one completed stage's snapshot to the observer: the
// stage span (whose duration is the stage CPU column), the Table II
// columns as stage-qualified gauges, the non-finite-delay counter, and
// the wire/buffer congestion heat fields.
func (s *state) emitStage(ss StageStats) {
	if s.obs == nil {
		return
	}
	st := ss.Stage
	gauge := func(scope string, v float64) {
		s.obs.Observe(obs.Event{Kind: obs.KindGauge, Scope: scope, Stage: st, Net: -1, Value: v})
	}
	gauge("stage.wire_max", ss.WireMax)
	gauge("stage.wire_avg", ss.WireAvg)
	gauge("stage.overflows", float64(ss.Overflows))
	gauge("stage.buf_max", ss.BufMax)
	gauge("stage.buf_avg", ss.BufAvg)
	gauge("stage.buffers", float64(ss.Buffers))
	gauge("stage.fails", float64(ss.Fails))
	gauge("stage.wirelen_mm", ss.WirelenMm)
	gauge("stage.delay_max_ps", ss.MaxDelayPs)
	gauge("stage.delay_avg_ps", ss.AvgDelayPs)
	if ss.NonFiniteDelays > 0 {
		s.obs.Observe(obs.Event{Kind: obs.KindCounter, Scope: "delay.nonfinite", Stage: st, Net: -1, Value: float64(ss.NonFiniteDelays)})
	}
	s.obs.Observe(obs.Event{Kind: obs.KindHeat, Scope: "heat.wire", Stage: st, Net: -1, Vals: viz.WireHeat(s.g)})
	s.obs.Observe(obs.Event{Kind: obs.KindHeat, Scope: "heat.buffer", Stage: st, Net: -1, Vals: viz.BufferHeat(s.g)})
	s.obs.Observe(obs.Event{Kind: obs.KindSpanEnd, Scope: "stage", Stage: st, Net: -1, Dur: ss.CPU})
}

// stage1 builds the initial Steiner routes and the calibrated tile graph.
// Route construction is pure per-net work and fans out over the worker
// pool; the capacity calibration and usage registration that follow mutate
// the shared graph and stay sequential.
func (s *state) stage1() error {
	bufs := obs.NewIndexBuffers(s.obs, len(s.c.Nets))
	costdist := s.p.SteinerMode == SteinerCostDist
	if err := par.ForEachCtx(s.ctx, s.p.Workers, len(s.c.Nets), func(i int) error {
		t0 := bufs.Now()
		var rt *rtree.Tree
		var err error
		if costdist {
			rt, err = steiner.InitialRouteCostDistance(s.c.Nets[i])
		} else {
			rt, err = steiner.InitialRoute(s.c.Nets[i], s.p.Alpha)
		}
		if err != nil {
			return err
		}
		s.routes[i] = rt
		if bufs.Active() {
			bufs.Emit(i, obs.Event{Kind: obs.KindSpanEnd, Scope: "net.steiner", Stage: 1,
				Net: s.c.Nets[i].ID, Dur: bufs.Since(t0)})
		}
		return nil
	}); err != nil {
		return err
	}
	bufs.Flush()
	// Register usage on a provisional graph to calibrate capacity.
	prov, err := tile.New(s.c.GridW, s.c.GridH, s.c.BufferSites, 1)
	if err != nil {
		return err
	}
	for _, rt := range s.routes {
		route.AddUsage(prov, rt)
	}
	capacity := s.p.Capacity
	if capacity == 0 {
		target := s.p.TargetStage1Avg
		if target <= 0 {
			target = 0.25
		}
		capacity = tile.CalibrateCapacity(prov.UsageSnapshot(), prov.NumEdges(), target)
	}
	s.g, err = tile.New(s.c.GridW, s.c.GridH, s.c.BufferSites, capacity)
	if err != nil {
		return err
	}
	obs.Emit(s.obs, obs.Event{Kind: obs.KindGauge, Scope: "stage1.capacity", Stage: 1, Net: -1, Value: float64(capacity)})
	for _, rt := range s.routes {
		route.AddUsage(s.g, rt)
	}
	return s.refreshDelays()
}

// stage2 reduces wire congestion by whole-net rip-up and reroute, or by
// the multicommodity-flow router when configured.
func (s *state) stage2() error {
	if s.p.UseMCFRouter {
		mopt := mcf.Options{RouteOpt: s.p.RouteOpt, Obs: s.obs,
			Phases: s.p.MCFPhases, Epsilon: s.p.MCFEpsilon}
		mopt.RouteOpt.Stage = 2
		res, err := mcf.RouteCtx(s.ctx, s.g, s.c.Nets, mopt)
		if err != nil {
			return err
		}
		for i, rt := range res.Routes {
			route.RemoveUsage(s.g, s.routes[i])
			s.routes[i] = rt
			route.AddUsage(s.g, rt)
		}
		return s.refreshDelays()
	}
	order := s.orderByDelay(false) // smallest delay first
	opt := s.p.RouteOpt
	opt.Obs, opt.Stage = s.obs, 2
	if s.p.SteinerMode == SteinerCostDist {
		// Cost-distance mode carries the radius/wirelength tradeoff per net
		// in the Stage-1 objective, so the reroute optimizes congestion-
		// priced distance alone — and at alpha = 1 the astar kernel's
		// heuristic is provably engaged (see route/kernel.go).
		opt.Alpha = 1
	}
	// The speculative engine is threaded unconditionally: its protocol is
	// worker-count-independent, so results and event streams match the
	// sequential kernel bit for bit at every Workers value (the parallel
	// determinism suite pins this).
	px := route.NewParallel(s.p.Workers, s.p.WorkspacePool)
	if _, err := route.ReduceCongestionCtx(s.ctx, s.g, s.c.Nets, s.routes, order, s.p.MaxRipupPasses, opt, s.ws, px); err != nil {
		return err
	}
	return s.refreshDelays()
}

// The mcf engine's Stage-2 knobs. The rounding seed is fixed: the engine
// is deterministic by construction, and distinct engines never alias in
// the result cache because the content key covers backend identity. The
// site weight prices buffer-site scarcity into the fractional length
// system (see mcf.Options.SiteWeight); 0.5 biases routes toward site-rich
// regions without overriding wire capacity as the primary resource.
const (
	mcfEngineSiteWeight   = 0.5
	mcfEngineRoundingSeed = 1
)

// stage2MCF is the mcf engine's Stage 2: the full multicommodity-flow
// buffered routing over the Stage-1 trees — fractional relaxation under
// site-aware exponential lengths, approximate dual updates with a
// lower-bound certificate, seeded (deterministic) randomized rounding,
// and greedy repair. Unlike the rabid Stage 2 it is not incremental: the
// relaxation re-prices every edge each phase, and the selected trees
// replace the Stage-1 routes wholesale.
func (s *state) stage2MCF() error {
	mopt := mcf.Options{
		RouteOpt:   s.p.RouteOpt,
		Obs:        s.obs,
		SiteWeight: mcfEngineSiteWeight,
		Seed:       mcfEngineRoundingSeed,
		Phases:     s.p.MCFPhases,
		Epsilon:    s.p.MCFEpsilon,
	}
	mopt.RouteOpt.Stage = 2
	res, err := mcf.RouteCtx(s.ctx, s.g, s.c.Nets, mopt)
	if err != nil {
		return err
	}
	for i, rt := range res.Routes {
		route.RemoveUsage(s.g, s.routes[i])
		s.routes[i] = rt
		route.AddUsage(s.g, rt)
	}
	return s.refreshDelays()
}

// stage3 assigns buffer sites to every net with the length-based DP.
func (s *state) stage3() error {
	// Defense in depth behind Circuit.Validate: a net with L < 1 would
	// contribute 1/L = +Inf (or negative) demand to every tile it crosses,
	// poisoning the Eq. (2) site cost for all later nets.
	for i := range s.c.Nets {
		if L := s.c.Nets[i].L; L < 1 {
			return fmt.Errorf("core: net %d: length constraint %d < 1 would poison the demand term", s.c.Nets[i].ID, L)
		}
	}
	// Prime the demand term p(v): every unprocessed net contributes 1/L to
	// each tile its route crosses.
	if !s.p.DisableDemandTerm {
		for i, rt := range s.routes {
			s.addDemand(rt, 1/float64(s.c.Nets[i].L))
		}
	}
	order := s.orderByDelay(true) // highest delay first
	for _, i := range order {
		// Per-net checkpoint: the DP is the pipeline's hottest loop, so a
		// deadline must be able to land between nets, not only at stage
		// boundaries. The demand decrement happens after the check so a
		// cancelled run leaves p(v) consistent with the nets processed.
		if err := s.ctx.Err(); err != nil {
			return err
		}
		if !s.p.DisableDemandTerm {
			s.addDemand(s.routes[i], -1/float64(s.c.Nets[i].L))
		}
		if err := s.assignNet(i); err != nil {
			return err
		}
	}
	return s.refreshDelays()
}

// assignNet runs the DP for net i on its current route and commits the
// buffers to the tile graph. Because q(v) is evaluated once per net (as in
// the paper), a decoupling solution can ask for more buffers in one tile
// than it has free sites; such tiles are banned for this net and the DP is
// re-run, so that b(v) <= B(v) is never violated.
func (s *state) assignNet(i int) error {
	rt := s.routes[i]
	banned := map[int]bool{}
	var a bufferdp.Assignment
	var dp bufferdp.DPStats
	var dpp *bufferdp.DPStats
	t0 := obs.Now(s.obs)
	if s.obs != nil {
		dpp = &dp
	}
	// With a buffer library configured, the multi-type DP chooses per-buffer
	// gates; its per-net view scales the net's constraint by each gate's
	// drive strength. The ban-and-rerun protocol is gate-agnostic: every
	// gate occupies one site, so the over-subscription check is unchanged.
	var lib []bufferdp.LibGate
	if len(s.p.Library) > 0 {
		lib = dpLibrary(s.p.Library, s.p.Tech.Buffer, s.c.Nets[i].L)
	}
	for {
		q := func(v int) float64 {
			ti := s.g.TileIndex(rt.Tile[v])
			if banned[ti] {
				return math.Inf(1)
			}
			return s.g.SiteCost(ti)
		}
		var err error
		if lib != nil {
			a, err = bufferdp.AssignLib(rt, s.c.Nets[i].L, lib, q, dpp)
		} else {
			a, err = bufferdp.AssignCounted(rt, s.c.Nets[i].L, q, dpp)
		}
		if err != nil {
			return err
		}
		over := -1
		want := map[int]int{}
		for _, b := range a.Buffers {
			ti := s.g.TileIndex(rt.Tile[b.Node])
			want[ti]++
			if want[ti] > s.g.Sites(ti)-s.g.UsedSites(ti) {
				over = ti
			}
		}
		if over < 0 {
			break
		}
		banned[over] = true
	}
	if s.obs != nil {
		// dp holds the counters of the last (committed) DP run; the banned
		// map size is the buffer-site contention — tiles whose free sites
		// could not honor the solution, forcing a re-run.
		id := s.c.Nets[i].ID
		emit := func(scope string, v float64) {
			s.obs.Observe(obs.Event{Kind: obs.KindCounter, Scope: scope, Stage: s.stage, Net: id, Value: v})
		}
		emit("dp.candidates", float64(dp.Candidates))
		emit("dp.pruned", float64(dp.Pruned))
		emit("dp.joins", float64(dp.Joins))
		if len(banned) > 0 {
			emit("dp.site_contention", float64(len(banned)))
			emit("dp.reruns", float64(len(banned)))
		}
		s.obs.Observe(obs.Event{Kind: obs.KindSpanEnd, Scope: "net.assign", Stage: s.stage, Net: id, Dur: obs.Since(s.obs, t0)})
	}
	s.asg[i] = a
	s.hasAsg[i] = true
	s.bufTiles[i] = s.bufTiles[i][:0]
	for _, b := range a.Buffers {
		ti := s.g.TileIndex(rt.Tile[b.Node])
		s.g.AddBuffer(ti)
		s.bufTiles[i] = append(s.bufTiles[i], ti)
	}
	return nil
}

// releaseNet removes net i's committed buffers from the graph.
func (s *state) releaseNet(i int) {
	for _, ti := range s.bufTiles[i] {
		s.g.RemoveBuffer(ti)
	}
	s.bufTiles[i] = s.bufTiles[i][:0]
	s.asg[i] = bufferdp.Assignment{}
	s.hasAsg[i] = false
}

// stage4 post-processes each net: every two-path is ripped up and
// reconnected under the combined wire+buffer cost, then the net's buffers
// are reinserted from scratch.
func (s *state) stage4() error {
	order := s.orderByDelay(false)
	for _, i := range order {
		// Checked before releaseNet so a cancelled run never leaves a net
		// stripped of its committed buffers.
		if err := s.ctx.Err(); err != nil {
			return err
		}
		s.releaseNet(i)
		if err := s.reworkNet(i); err != nil {
			return err
		}
		if err := s.assignNet(i); err != nil {
			return err
		}
	}
	return s.refreshDelays()
}

// reworkNet reroutes net i one two-path at a time.
func (s *state) reworkNet(i int) error {
	n := s.c.Nets[i]
	ropt := s.p.RouteOpt
	ropt.Obs, ropt.Stage = s.obs, s.stage
	t0 := obs.Now(s.obs)
	nPaths := 0
	if s.obs != nil {
		defer func() {
			s.obs.Observe(obs.Event{Kind: obs.KindCounter, Scope: "rework.twopaths", Stage: s.stage, Net: n.ID, Value: float64(nPaths)})
			s.obs.Observe(obs.Event{Kind: obs.KindSpanEnd, Scope: "net.rework", Stage: s.stage, Net: n.ID, Dur: obs.Since(s.obs, t0)})
		}()
	}
	processed := map[[2]geom.Pt]bool{}
	for {
		rt := s.routes[i]
		paths := rt.TwoPaths()
		var pick []int
		for _, p := range paths {
			key := [2]geom.Pt{rt.Tile[p[0]], rt.Tile[p[len(p)-1]]}
			if !processed[key] {
				pick = p
				break
			}
		}
		if pick == nil {
			return nil
		}
		head := rt.Tile[pick[0]]
		tail := rt.Tile[pick[len(pick)-1]]
		processed[[2]geom.Pt{head, tail}] = true
		nPaths++

		// Remove the whole net's wires, rebuild the tree with the new
		// reconnection, and re-register. Blocked tiles are the tree tiles
		// that must not be crossed: everything except the ripped interior
		// and the endpoints themselves. The mask comes from the workspace
		// and is cleared entry-by-entry right after the search, keeping
		// each two-path O(tree) instead of O(grid).
		route.RemoveUsage(s.g, rt)
		blocked := s.ws.BlockedMask(s.g.NumTiles())
		for _, t := range rt.Tile {
			blocked[s.g.TileIndex(t)] = true
		}
		for _, v := range pick[1 : len(pick)-1] {
			blocked[s.g.TileIndex(rt.Tile[v])] = false
		}
		blocked[s.g.TileIndex(head)] = false
		blocked[s.g.TileIndex(tail)] = false
		newPath, err := route.BufferAwarePath(s.g, tail, head, n.L, blocked, ropt, s.ws)
		for _, t := range rt.Tile {
			blocked[s.g.TileIndex(t)] = false
		}
		if err != nil {
			// Keep the old route if no reconnection exists (should not
			// happen: the ripped path itself is always available).
			route.AddUsage(s.g, rt)
			continue
		}
		nt, err := spliceTwoPath(rt, pick, newPath)
		if err != nil {
			route.AddUsage(s.g, rt)
			return err
		}
		s.routes[i] = nt
		route.AddUsage(s.g, nt)
	}
}

// spliceTwoPath rebuilds the route tree with the interior of the two-path
// `pick` replaced by newPath (which runs head..tail inclusive).
func spliceTwoPath(rt *rtree.Tree, pick []int, newPath []geom.Pt) (*rtree.Tree, error) {
	head := rt.Tile[pick[0]]
	tail := rt.Tile[pick[len(pick)-1]]
	if newPath[0] != head || newPath[len(newPath)-1] != tail {
		return nil, fmt.Errorf("core: splice path endpoints %v..%v, want %v..%v",
			newPath[0], newPath[len(newPath)-1], head, tail)
	}
	interior := map[geom.Pt]bool{}
	for _, v := range pick[1 : len(pick)-1] {
		interior[rt.Tile[v]] = true
	}
	parent := map[geom.Pt]geom.Pt{}
	for v := 1; v < rt.NumNodes(); v++ {
		t := rt.Tile[v]
		if interior[t] || t == tail {
			continue // dropped interior; tail re-parents below
		}
		parent[t] = rt.Tile[rt.Parent[v]]
	}
	prev := head
	for _, t := range newPath[1:] {
		if t == tail {
			parent[tail] = prev
			prev = t
			continue
		}
		if _, ok := parent[t]; !ok && t != rt.Tile[0] {
			parent[t] = prev
		}
		prev = t
	}
	sinks := make([]geom.Pt, len(rt.SinkNode))
	for k, sn := range rt.SinkNode {
		sinks[k] = rt.Tile[sn]
	}
	nt, err := rtree.FromParentMap(rt.Tile[0], parent, sinks)
	if err != nil {
		return nil, err
	}
	return nt.Prune(), nil
}

// dpLibrary converts the planning library into the DP's per-net view for a
// net with base length constraint L: each gate's length constraint is L
// scaled by its drive strength relative to the single planning buffer, and
// its site cost is scaled by its area.
func dpLibrary(lib []tech.LibGate, base tech.Gate, L int) []bufferdp.LibGate {
	out := make([]bufferdp.LibGate, len(lib))
	for i, g := range lib {
		lg := int(math.Floor(float64(L)*g.DriveScale(base) + 0.5))
		if lg < 1 {
			lg = 1
		}
		if lg > math.MaxInt16 {
			lg = math.MaxInt16
		}
		out[i] = bufferdp.LibGate{L: lg, CostScale: g.AreaCost, Invert: g.Inverting}
	}
	return out
}

// sinkDelays evaluates net i's sink delays on route rt with the gates the
// DP actually chose: the single planning buffer in single-type runs, or
// the per-buffer library gates when Params.Library is active.
func (s *state) sinkDelays(rt *rtree.Tree, i int) ([]float64, error) {
	if !s.hasAsg[i] {
		return s.eval.SinkDelays(rt, nil)
	}
	a := s.asg[i]
	if a.Gates == nil {
		return s.eval.SinkDelays(rt, a.Buffers)
	}
	placed := make([]delay.Placed, len(a.Buffers))
	for k, b := range a.Buffers {
		placed[k] = delay.Placed{Buf: b, Gate: s.p.Library[a.Gates[k]].Electrical()}
	}
	return s.eval.SinkDelaysSized(rt, placed)
}

// addDemand adjusts p(v) on every tile of a route.
func (s *state) addDemand(rt *rtree.Tree, d float64) {
	for _, t := range rt.Tile {
		s.g.AddDemand(s.g.TileIndex(t), d)
	}
}

// refreshDelays recomputes the per-net maximum sink delay over the worker
// pool (each worker writes only its own net's slot).
//
// An evaluator failure means the net's route or buffer assignment is
// structurally broken, so it is propagated — never swallowed: recording 0
// would make a broken net sort as the *least* critical net in the Stage-3
// ordering. The broken net's delay is set to +Inf first, so that even a
// caller that ignores the error orders such nets deterministically as the
// most critical. All broken nets are reported, joined in net-index order.
func (s *state) refreshDelays() error {
	evs := obs.NewIndexBuffers(s.obs, len(s.routes))
	err := par.ForEachCtx(s.ctx, s.p.Workers, len(s.routes), func(i int) error {
		ds, err := s.sinkDelays(s.routes[i], i)
		if err != nil {
			s.delays[i] = math.Inf(1)
			evs.Emit(i, obs.Event{Kind: obs.KindCounter, Scope: "delay.eval_errors", Stage: s.stage, Net: s.c.Nets[i].ID, Value: 1})
			return fmt.Errorf("core: net %d: delay evaluation: %w", s.c.Nets[i].ID, err)
		}
		m := 0.0
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		s.delays[i] = m
		evs.Emit(i, obs.Event{Kind: obs.KindGauge, Scope: "net.delay_ps", Stage: s.stage, Net: s.c.Nets[i].ID, Value: m * 1e12})
		return nil
	})
	evs.Flush()
	return err
}

// orderByDelay returns net indices sorted by current delay.
func (s *state) orderByDelay(descending bool) []int {
	order := make([]int, len(s.c.Nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if descending {
			return s.delays[order[a]] > s.delays[order[b]]
		}
		return s.delays[order[a]] < s.delays[order[b]]
	})
	return order
}

// snapshot gathers the Table II statistics for the current state.
func (s *state) snapshot(stage int) StageStats {
	ws := s.g.WireCongestion()
	bs := s.g.BufferDensity()
	st := StageStats{
		Stage:     stage,
		WireMax:   ws.Max,
		WireAvg:   ws.Avg,
		Overflows: ws.Overflow,
		BufMax:    bs.Max,
		BufAvg:    bs.Avg,
		Buffers:   bs.Buffers,
	}
	// The per-net accounting (dominated by the Elmore evaluation) fans out
	// over the worker pool into per-net slots; the floating-point delay
	// reduction below runs sequentially in net-index order so the stats are
	// bit-identical for every worker count.
	type netAcct struct {
		edges int
		fail  bool
		ds    []float64
	}
	accts := make([]netAcct, len(s.routes))
	_ = par.ForEach(s.p.Workers, len(s.routes), func(i int) error {
		rt := s.routes[i]
		a := &accts[i]
		a.edges = rt.NumEdges()
		if s.hasAsg[i] {
			if !s.asg[i].Feasible() {
				a.fail = true
			}
		} else if rt.NumEdges() > s.c.Nets[i].L {
			// Before buffering, a net fails whenever its driver would have
			// to drive more than L tile units on its own.
			a.fail = true
		}
		if ds, err := s.sinkDelays(rt, i); err == nil {
			a.ds = ds
		}
		return nil
	})
	var dst delay.Stats
	wireTiles := 0
	for i := range accts {
		wireTiles += accts[i].edges
		if accts[i].fail {
			st.Fails++
		}
		dst.Add(accts[i].ds)
	}
	st.WirelenMm = float64(wireTiles) * s.c.TileUm / 1000
	st.MaxDelayPs = dst.MaxPs()
	st.AvgDelayPs = dst.AvgPs()
	st.NonFiniteDelays = dst.NonFinite
	return st
}
