package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/delay"
)

// Report is the machine-readable summary of a completed run, suitable for
// archiving next to a floorplan candidate or diffing across parameter
// sweeps.
type Report struct {
	Circuit  string        `json:"circuit"`
	Nets     int           `json:"nets"`
	Capacity int           `json:"capacity"`
	Stages   []StageReport `json:"stages"`
	PerNet   []NetReport   `json:"per_net"`
}

// StageReport mirrors StageStats with JSON-friendly field types.
type StageReport struct {
	Stage      int     `json:"stage"`
	WireMax    float64 `json:"wire_congestion_max"`
	WireAvg    float64 `json:"wire_congestion_avg"`
	Overflows  int     `json:"overflows"`
	BufMax     float64 `json:"buffer_density_max"`
	BufAvg     float64 `json:"buffer_density_avg"`
	Buffers    int     `json:"buffers"`
	Fails      int     `json:"fails"`
	WirelenMm  float64 `json:"wirelength_mm"`
	MaxDelayPs float64 `json:"max_delay_ps"`
	AvgDelayPs float64 `json:"avg_delay_ps"`
	CPUSeconds float64 `json:"cpu_seconds"`
}

// NetReport summarizes one net's final plan.
type NetReport struct {
	ID         int     `json:"id"`
	Name       string  `json:"name"`
	Sinks      int     `json:"sinks"`
	RouteTiles int     `json:"route_tiles"`
	Buffers    int     `json:"buffers"`
	Feasible   bool    `json:"feasible"`
	Violations int     `json:"violations"`
	MaxDelayPs float64 `json:"max_delay_ps"`
}

// Report builds the summary from a completed run.
func (r *Result) Report() (*Report, error) {
	rep := &Report{
		Circuit:  r.Circuit.Name,
		Nets:     len(r.Circuit.Nets),
		Capacity: r.Capacity,
	}
	for _, s := range r.Stages {
		rep.Stages = append(rep.Stages, StageReport{
			Stage:      s.Stage,
			WireMax:    s.WireMax,
			WireAvg:    s.WireAvg,
			Overflows:  s.Overflows,
			BufMax:     s.BufMax,
			BufAvg:     s.BufAvg,
			Buffers:    s.Buffers,
			Fails:      s.Fails,
			WirelenMm:  s.WirelenMm,
			MaxDelayPs: s.MaxDelayPs,
			AvgDelayPs: s.AvgDelayPs,
			CPUSeconds: s.CPU.Seconds(),
		})
	}
	eval, err := delay.NewEvaluator(r.Params.Tech, r.Circuit.TileUm)
	if err != nil {
		return nil, err
	}
	for i, n := range r.Circuit.Nets {
		a := r.Assignments[i]
		nr := NetReport{
			ID:         n.ID,
			Name:       n.Name,
			Sinks:      len(n.Sinks),
			RouteTiles: r.Routes[i].NumNodes(),
			Buffers:    len(a.Buffers),
			Feasible:   a.Feasible(),
			Violations: a.Violations,
		}
		if ds, err := eval.SinkDelays(r.Routes[i], a.Buffers); err == nil {
			for _, d := range ds {
				if ps := d * 1e12; ps > nr.MaxDelayPs {
					nr.MaxDelayPs = ps
				}
			}
		}
		rep.PerNet = append(rep.PerNet, nr)
	}
	return rep, nil
}

// WriteJSON serializes the report with indentation.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("core: encode report: %w", err)
	}
	return nil
}

// ReadReport deserializes a report.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("core: decode report: %w", err)
	}
	return &rep, nil
}
