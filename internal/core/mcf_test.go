package core

import "testing"

func TestMCFStage2Alternative(t *testing.T) {
	c := smallCircuit(t, 9, 35, 12, 12, 3, 4)
	p := DefaultParams()
	p.UseMCFRouter = true
	res, err := Run(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[1].Overflows != 0 {
		t.Errorf("MCF stage 2 left %d overflows", res.Stages[1].Overflows)
	}
	final := res.Stages[len(res.Stages)-1]
	if final.Overflows != 0 || final.Buffers == 0 {
		t.Errorf("MCF pipeline final: %+v", final)
	}
	// Wire accounting stays consistent through the MCF substitution.
	sum := 0
	for e := 0; e < res.Graph.NumEdges(); e++ {
		sum += res.Graph.Usage(e)
	}
	want := 0
	for _, rt := range res.Routes {
		want += rt.NumEdges()
	}
	if sum != want {
		t.Errorf("usage %d != route edges %d", sum, want)
	}
	for i, rt := range res.Routes {
		if err := rt.Validate(res.Graph.InGrid); err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
	}
}
