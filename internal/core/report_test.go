package core

import (
	"bytes"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	c := smallCircuit(t, 21, 15, 10, 10, 2, 3)
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Circuit != c.Name || rep.Nets != len(c.Nets) {
		t.Error("header wrong")
	}
	if len(rep.Stages) != len(res.Stages) {
		t.Fatalf("stage count %d", len(rep.Stages))
	}
	if len(rep.PerNet) != len(c.Nets) {
		t.Fatalf("per-net count %d", len(rep.PerNet))
	}
	// Per-net buffers sum to the final stage count.
	sum := 0
	feasibleFails := 0
	for _, nr := range rep.PerNet {
		sum += nr.Buffers
		if !nr.Feasible {
			feasibleFails++
		}
		if nr.Feasible != (nr.Violations == 0) {
			t.Error("feasibility and violations disagree")
		}
		if nr.RouteTiles < 1 {
			t.Error("route tiles missing")
		}
	}
	final := rep.Stages[len(rep.Stages)-1]
	if sum != final.Buffers {
		t.Errorf("per-net buffers %d != stage buffers %d", sum, final.Buffers)
	}
	if feasibleFails != final.Fails {
		t.Errorf("per-net fails %d != stage fails %d", feasibleFails, final.Fails)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Circuit != rep.Circuit || len(got.PerNet) != len(rep.PerNet) {
		t.Error("round trip lost data")
	}
	if got.Stages[0].CPUSeconds < 0 {
		t.Error("negative CPU")
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
