package core

import (
	"math/rand"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// smallCircuit builds a compact deterministic instance that runs fast.
func smallCircuit(t testing.TB, seed int64, nets, gridW, gridH, sitesPerTile, L int) *netlist.Circuit {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tileUm := 600.0
	c := &netlist.Circuit{
		Name:        "unit",
		GridW:       gridW,
		GridH:       gridH,
		TileUm:      tileUm,
		BufferSites: make([]int, gridW*gridH),
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = sitesPerTile
	}
	pin := func() netlist.Pin {
		p := geom.FPt{X: (r.Float64() * float64(gridW)) * tileUm, Y: (r.Float64() * float64(gridH)) * tileUm}
		if p.X >= c.ChipW() {
			p.X = c.ChipW() - 1
		}
		if p.Y >= c.ChipH() {
			p.Y = c.ChipH() - 1
		}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i := 0; i < nets; i++ {
		n := &netlist.Net{ID: i, Name: "n", Source: pin(), L: L}
		for s := 0; s <= r.Intn(3); s++ {
			n.Sinks = append(n.Sinks, pin())
		}
		c.Nets = append(c.Nets, n)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunFourStages(t *testing.T) {
	c := smallCircuit(t, 1, 30, 12, 12, 3, 4)
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("got %d stages", len(res.Stages))
	}
	for i, s := range res.Stages {
		if s.Stage != i+1 {
			t.Errorf("stage %d labeled %d", i+1, s.Stage)
		}
	}
	// Stages 1-2 insert no buffers; stage 3 does.
	if res.Stages[0].Buffers != 0 || res.Stages[1].Buffers != 0 {
		t.Error("buffers before stage 3")
	}
	if res.Stages[2].Buffers == 0 {
		t.Error("stage 3 inserted no buffers")
	}
	if res.TotalBuffers() != res.Stages[3].Buffers {
		t.Errorf("TotalBuffers %d != stage-4 count %d", res.TotalBuffers(), res.Stages[3].Buffers)
	}
}

func TestConstraintsAfterRun(t *testing.T) {
	c := smallCircuit(t, 2, 40, 12, 12, 3, 4)
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Problem formulation: b(v) <= B(v) everywhere.
	g := res.Graph
	for v := 0; v < g.NumTiles(); v++ {
		if g.UsedSites(v) > g.Sites(v) {
			t.Fatalf("tile %d: %d buffers for %d sites", v, g.UsedSites(v), g.Sites(v))
		}
	}
	// Wire congestion satisfied after stages 2 and 4.
	if res.Stages[1].Overflows != 0 {
		t.Errorf("stage 2 left %d overflows", res.Stages[1].Overflows)
	}
	if res.Stages[3].Overflows != 0 {
		t.Errorf("stage 4 left %d overflows", res.Stages[3].Overflows)
	}
	// With plentiful sites everywhere, every net meets its constraint.
	if res.Stages[3].Fails != 0 {
		t.Errorf("%d nets fail with abundant sites", res.Stages[3].Fails)
	}
	// Accounting: graph usage equals total route edges.
	sum := 0
	for e := 0; e < g.NumEdges(); e++ {
		sum += g.Usage(e)
	}
	want := 0
	for _, rt := range res.Routes {
		want += rt.NumEdges()
	}
	if sum != want {
		t.Errorf("wire accounting drifted: %d registered, %d route edges", sum, want)
	}
	// Buffer accounting: graph buffers equal assignment buffers.
	used := 0
	for v := 0; v < g.NumTiles(); v++ {
		used += g.UsedSites(v)
	}
	if used != res.TotalBuffers() {
		t.Errorf("buffer accounting drifted: %d in graph, %d assigned", used, res.TotalBuffers())
	}
}

func TestBufferingReducesDelay(t *testing.T) {
	// Long nets on a large grid: stage 3 must cut delay sharply vs stage 2
	// (the paper's central Table II observation).
	c := smallCircuit(t, 3, 25, 20, 20, 4, 4)
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[2].MaxDelayPs >= res.Stages[1].MaxDelayPs {
		t.Errorf("stage 3 max delay %.0fps did not improve on stage 2 %.0fps",
			res.Stages[2].MaxDelayPs, res.Stages[1].MaxDelayPs)
	}
	if res.Stages[2].AvgDelayPs >= res.Stages[1].AvgDelayPs {
		t.Errorf("stage 3 avg delay %.0fps did not improve on stage 2 %.0fps",
			res.Stages[2].AvgDelayPs, res.Stages[1].AvgDelayPs)
	}
}

func TestRouteTreesStayValid(t *testing.T) {
	c := smallCircuit(t, 4, 30, 10, 10, 2, 3)
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range res.Routes {
		if err := rt.Validate(res.Graph.InGrid); err != nil {
			t.Fatalf("net %d route invalid after run: %v", i, err)
		}
		if len(rt.SinkNode) != len(c.Nets[i].Sinks) {
			t.Fatalf("net %d lost sinks", i)
		}
		for k, s := range c.Nets[i].Sinks {
			if rt.Tile[rt.SinkNode[k]] != s.Tile {
				t.Fatalf("net %d sink %d moved", i, k)
			}
		}
		if rt.Tile[0] != c.Nets[i].Source.Tile {
			t.Fatalf("net %d root moved", i)
		}
	}
}

func TestScarceSitesProduceFails(t *testing.T) {
	// One buffer site in the whole grid and tight L: most nets must fail,
	// and b(v) <= B(v) must still hold.
	c := smallCircuit(t, 5, 15, 12, 12, 0, 2)
	c.BufferSites[60] = 1
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	final := res.Stages[len(res.Stages)-1]
	if final.Fails == 0 {
		t.Error("expected failures with a single buffer site")
	}
	if final.Buffers > 1 {
		t.Errorf("%d buffers committed for 1 site", final.Buffers)
	}
}

func TestStage4NotWorseOnFailsAndOverflow(t *testing.T) {
	c := smallCircuit(t, 6, 40, 14, 14, 2, 3)
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s3, s4 := res.Stages[2], res.Stages[3]
	if s4.Overflows > s3.Overflows {
		t.Errorf("stage 4 increased overflow %d -> %d", s3.Overflows, s4.Overflows)
	}
	if s4.Fails > s3.Fails {
		t.Errorf("stage 4 increased fails %d -> %d", s3.Fails, s4.Fails)
	}
}

func TestSkipStage4(t *testing.T) {
	c := smallCircuit(t, 7, 10, 8, 8, 2, 3)
	p := DefaultParams()
	p.SkipStage4 = true
	res, err := Run(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Errorf("SkipStage4 produced %d stages", len(res.Stages))
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	c := smallCircuit(t, 8, 5, 8, 8, 2, 3)
	c.Nets[0].L = 0
	if _, err := Run(c, DefaultParams()); err == nil {
		t.Error("invalid circuit accepted")
	}
	c = smallCircuit(t, 8, 5, 8, 8, 2, 3)
	p := DefaultParams()
	p.MaxRipupPasses = 0
	if _, err := Run(c, p); err == nil {
		t.Error("zero passes accepted")
	}
}

func TestRunOnGeneratedBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in -short mode")
	}
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Generate(spec, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	final := res.Stages[3]
	if final.Overflows != 0 {
		t.Errorf("apte: %d overflows remain", final.Overflows)
	}
	if final.Buffers == 0 {
		t.Error("apte: no buffers inserted")
	}
	if final.BufMax > 1.0 {
		t.Errorf("apte: buffer congestion %v > 1", final.BufMax)
	}
	// The paper's qualitative claim: buffering cuts delay well below the
	// congestion-routed unbuffered solution.
	if final.MaxDelayPs >= res.Stages[1].MaxDelayPs {
		t.Errorf("final max delay %.0f >= stage 2 %.0f", final.MaxDelayPs, res.Stages[1].MaxDelayPs)
	}
}
