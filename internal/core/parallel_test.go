package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/bufferdp"
	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/rtree"
)

// newTestState builds a pipeline state directly (as Run does) and executes
// Stage 1, so tests can drive individual stages and error paths.
func newTestState(t *testing.T, c *netlist.Circuit, p Params) *state {
	t.Helper()
	eval, err := delay.NewEvaluator(p.Tech, c.TileUm)
	if err != nil {
		t.Fatal(err)
	}
	s := &state{
		ctx:      context.Background(),
		c:        c,
		p:        p,
		eval:     eval,
		routes:   make([]*rtree.Tree, len(c.Nets)),
		asg:      make([]bufferdp.Assignment, len(c.Nets)),
		hasAsg:   make([]bool, len(c.Nets)),
		bufTiles: make([][]int, len(c.Nets)),
		delays:   make([]float64, len(c.Nets)),
		ws:       route.NewWorkspace(),
	}
	if err := s.stage1(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRefreshDelaysPropagatesEvaluatorError is the regression test for the
// silent-failure bug: a net whose buffer assignment no longer matches its
// route used to be recorded with delay 0 (sorting as the *least* critical
// net); the evaluator error must now surface and the net must sort
// deterministically as the most critical (+Inf).
func TestRefreshDelaysPropagatesEvaluatorError(t *testing.T) {
	c := smallCircuit(t, 21, 6, 8, 8, 2, 3)
	s := newTestState(t, c, DefaultParams())
	// Corrupt net 0: a buffer on a node the route does not have.
	s.hasAsg[0] = true
	s.asg[0] = bufferdp.Assignment{Buffers: []bufferdp.Buffer{{Node: 1 << 20, Branch: -1}}}
	err := s.refreshDelays()
	if err == nil {
		t.Fatal("evaluator failure swallowed")
	}
	if !strings.Contains(err.Error(), "net 0") {
		t.Errorf("error does not name the broken net: %v", err)
	}
	if !math.IsInf(s.delays[0], 1) {
		t.Errorf("broken net delay = %v, want +Inf (most critical)", s.delays[0])
	}
	// The healthy nets must still have been refreshed despite the failure.
	for i := 1; i < len(s.delays); i++ {
		if s.delays[i] <= 0 || math.IsInf(s.delays[i], 0) {
			t.Errorf("healthy net %d delay %v not refreshed", i, s.delays[i])
		}
	}
	// And the broken net orders last in ascending (Stage-2/4) order, first
	// in descending (Stage-3) order — deterministically.
	asc := s.orderByDelay(false)
	if asc[len(asc)-1] != 0 {
		t.Errorf("broken net not last in ascending order: %v", asc)
	}
	desc := s.orderByDelay(true)
	if desc[0] != 0 {
		t.Errorf("broken net not first in descending order: %v", desc)
	}
}

// TestRefreshDelaysReportsAllBrokenNets: partial failures are collected,
// not cut short at the first broken net.
func TestRefreshDelaysReportsAllBrokenNets(t *testing.T) {
	c := smallCircuit(t, 22, 6, 8, 8, 2, 3)
	s := newTestState(t, c, DefaultParams())
	for _, i := range []int{1, 4} {
		s.hasAsg[i] = true
		s.asg[i] = bufferdp.Assignment{Buffers: []bufferdp.Buffer{{Node: 1 << 20, Branch: -1}}}
	}
	err := s.refreshDelays()
	if err == nil {
		t.Fatal("evaluator failures swallowed")
	}
	for _, want := range []string{"net 1", "net 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestStage3RejectsNonPositiveL is the regression test for the demand-term
// poisoning bug: 1/float64(0) is +Inf, which would contaminate p(v) on
// every tile the net crosses. Circuit.Validate rejects such circuits at
// Run's entry; stage3 must also refuse if reached directly.
func TestStage3RejectsNonPositiveL(t *testing.T) {
	c := smallCircuit(t, 23, 4, 8, 8, 2, 3)
	s := newTestState(t, c, DefaultParams())
	s.c.Nets[2].L = 0
	if err := s.stage3(); err == nil {
		t.Fatal("stage 3 accepted a net with L=0")
	} else if !strings.Contains(err.Error(), "demand term") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestReworkNetRestoresOnFailedReconnection covers Stage 4's
// restore-on-failed-reconnection branch: when BufferAwarePath cannot
// produce a reconnection (here: the net's L makes the DP state space
// overflow its int32 labels, so every attempt errors), the old route and
// its registered wire usage must be restored untouched.
func TestReworkNetRestoresOnFailedReconnection(t *testing.T) {
	c := smallCircuit(t, 24, 4, 8, 8, 2, 3)
	s := newTestState(t, c, DefaultParams())
	s.c.Nets[0].L = math.MaxInt32 // 64 tiles * MaxInt32 >> int32 state labels
	before := make([]int, s.g.NumEdges())
	for e := range before {
		before[e] = s.g.Usage(e)
	}
	oldRoute := s.routes[0]
	if err := s.reworkNet(0); err != nil {
		t.Fatalf("failed reconnections must be skipped, not fatal: %v", err)
	}
	if s.routes[0] != oldRoute {
		t.Error("route replaced although every reconnection failed")
	}
	for e := range before {
		if got := s.g.Usage(e); got != before[e] {
			t.Fatalf("edge %d usage %d, want %d: wire accounting corrupted by failed rework", e, got, before[e])
		}
	}
}

// TestWorkersDeterminismCore proves the tentpole guarantee at the core
// level: every Workers value yields bit-identical stage statistics, routes,
// and buffer assignments.
func TestWorkersDeterminismCore(t *testing.T) {
	c := smallCircuit(t, 25, 30, 12, 12, 3, 4)
	run := func(workers int) *Result {
		p := DefaultParams()
		p.Workers = workers
		res, err := Run(c, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, 0} {
		got := run(w)
		if got.Capacity != ref.Capacity {
			t.Fatalf("workers=%d: capacity %d vs %d", w, got.Capacity, ref.Capacity)
		}
		for si := range ref.Stages {
			a, b := ref.Stages[si], got.Stages[si]
			a.CPU, b.CPU = 0, 0
			if a != b {
				t.Fatalf("workers=%d: stage %d stats differ:\n  seq: %+v\n  par: %+v", w, si+1, a, b)
			}
		}
		for i := range ref.Routes {
			if ra, rb := ref.Routes[i], got.Routes[i]; ra.NumNodes() != rb.NumNodes() {
				t.Fatalf("workers=%d: net %d route differs", w, i)
			}
			ab, bb := ref.Assignments[i].Buffers, got.Assignments[i].Buffers
			if len(ab) != len(bb) {
				t.Fatalf("workers=%d: net %d buffer count differs", w, i)
			}
			for k := range ab {
				if ab[k] != bb[k] {
					t.Fatalf("workers=%d: net %d buffer %d differs", w, i, k)
				}
			}
		}
	}
}
