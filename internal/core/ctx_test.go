package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// reportSansCPU marshals a run's report with the wall-clock CPU columns
// zeroed, so two runs can be compared byte-for-byte.
func reportSansCPU(t *testing.T, res *Result) []byte {
	t.Helper()
	rep, err := res.Report()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Stages {
		rep.Stages[i].CPUSeconds = 0
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunContextBackgroundMatchesRun: RunContext with an undone context is
// the same computation as Run — byte-identical reports (CPU aside). This is
// the guarantee the service cache's soundness rests on.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	c1 := smallCircuit(t, 7, 25, 10, 10, 3, 4)
	c2 := smallCircuit(t, 7, 25, 10, 10, 3, 4)
	r1, err := Run(c1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunContext(context.Background(), c2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := reportSansCPU(t, r1), reportSansCPU(t, r2)
	if string(b1) != string(b2) {
		t.Errorf("RunContext(Background) diverged from Run:\n%s\nvs\n%s", b1, b2)
	}
}

// TestRunContextPreCancelled: an already-cancelled context aborts before
// any stage runs, and the error wraps context.Canceled.
func TestRunContextPreCancelled(t *testing.T) {
	c := smallCircuit(t, 3, 10, 8, 8, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, c, DefaultParams())
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestRunContextDeadline: a deadline far shorter than the run aborts the
// pipeline promptly at a checkpoint with context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	c := smallCircuit(t, 5, 80, 16, 16, 3, 5)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunContext(ctx, c, DefaultParams())
	elapsed := time.Since(start)
	if res != nil {
		t.Error("expired run returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	// "Promptly" allows for the work between two checkpoints (a rip-up
	// pass or one net's DP) but nothing near a full run.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, checkpoints are not being honored", elapsed)
	}
}

// TestRunContextCancelMidRun: cancelling while the pipeline is in flight
// aborts it; run repeatedly at different cancellation offsets so several
// checkpoint classes get exercised.
func TestRunContextCancelMidRun(t *testing.T) {
	for _, after := range []time.Duration{100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		c := smallCircuit(t, 11, 60, 14, 14, 3, 5)
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(after, cancel)
		res, err := RunContext(ctx, c, DefaultParams())
		timer.Stop()
		cancel()
		if err == nil {
			// The run legitimately beat the cancellation.
			if res == nil {
				t.Fatalf("after=%v: no error and no result", after)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("after=%v: error %v does not wrap context.Canceled", after, err)
		}
	}
}
