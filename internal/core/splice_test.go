package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// mkTree builds a route tree from a parent map.
func mkTree(t *testing.T, src geom.Pt, parent map[geom.Pt]geom.Pt, sinks []geom.Pt) *rtree.Tree {
	t.Helper()
	rt, err := rtree.FromParentMap(src, parent, sinks)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestSpliceStraightDetour(t *testing.T) {
	// Chain (0,0)..(4,0); replace the whole two-path with a detour through
	// row 1.
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x <= 4; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	rt := mkTree(t, geom.Pt{}, parent, []geom.Pt{{X: 4}})
	paths := rt.TwoPaths()
	if len(paths) != 1 {
		t.Fatalf("two-paths: %v", paths)
	}
	newPath := []geom.Pt{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1}, {X: 4, Y: 1}, {X: 4, Y: 0},
	}
	nt, err := spliceTwoPath(rt, paths[0], newPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.Validate(nil); err != nil {
		t.Fatal(err)
	}
	// 7 tiles on the detour -> 6 edges.
	if nt.NumEdges() != 6 {
		t.Errorf("spliced tree has %d edges, want 6", nt.NumEdges())
	}
	if nt.Tile[nt.SinkNode[0]] != (geom.Pt{X: 4}) {
		t.Error("sink lost")
	}
	if nt.Tile[0] != (geom.Pt{}) {
		t.Error("root moved")
	}
}

func TestSplicePreservesSubtrees(t *testing.T) {
	// Y: trunk (0,0)->(2,0), branches to sinks (4,0) and (2,2). Replace
	// the trunk two-path; both branches must survive.
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x <= 4; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	parent[geom.Pt{X: 2, Y: 1}] = geom.Pt{X: 2}
	parent[geom.Pt{X: 2, Y: 2}] = geom.Pt{X: 2, Y: 1}
	rt := mkTree(t, geom.Pt{}, parent, []geom.Pt{{X: 4}, {X: 2, Y: 2}})
	// The trunk two-path runs from the root to the branch node (2,0).
	var trunk []int
	for _, p := range rt.TwoPaths() {
		if p[0] == 0 && rt.Tile[p[len(p)-1]] == (geom.Pt{X: 2}) {
			trunk = p
		}
	}
	if trunk == nil {
		t.Fatal("trunk two-path not found")
	}
	// Detour below row 0 is impossible (y=-1 would leave a real grid, but
	// spliceTwoPath is grid-agnostic; use row -1 to prove pure structure).
	newPath := []geom.Pt{
		{X: 0, Y: 0}, {X: 0, Y: -1}, {X: 1, Y: -1}, {X: 2, Y: -1}, {X: 2, Y: 0},
	}
	nt, err := spliceTwoPath(rt, trunk, newPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if len(nt.SinkNode) != 2 {
		t.Fatal("sink count changed")
	}
	for i, want := range []geom.Pt{{X: 4}, {X: 2, Y: 2}} {
		if nt.Tile[nt.SinkNode[i]] != want {
			t.Errorf("sink %d at %v, want %v", i, nt.Tile[nt.SinkNode[i]], want)
		}
	}
	// The old interior (1,0) must be gone.
	for _, tl := range nt.Tile {
		if tl == (geom.Pt{X: 1, Y: 0}) {
			t.Error("old interior tile survived")
		}
	}
}

func TestSpliceRejectsWrongEndpoints(t *testing.T) {
	parent := map[geom.Pt]geom.Pt{{X: 1}: {}, {X: 2}: {X: 1}}
	rt := mkTree(t, geom.Pt{}, parent, []geom.Pt{{X: 2}})
	paths := rt.TwoPaths()
	bad := []geom.Pt{{X: 5, Y: 5}, {X: 2, Y: 0}}
	if _, err := spliceTwoPath(rt, paths[0], bad); err == nil {
		t.Error("wrong head accepted")
	}
}

func TestSpliceIdentityPath(t *testing.T) {
	// Reconnecting with the original path must reproduce the same tree.
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x <= 3; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	rt := mkTree(t, geom.Pt{}, parent, []geom.Pt{{X: 3}})
	paths := rt.TwoPaths()
	same := rt.PathTiles(paths[0])
	nt, err := spliceTwoPath(rt, paths[0], same)
	if err != nil {
		t.Fatal(err)
	}
	if nt.NumEdges() != rt.NumEdges() {
		t.Errorf("identity splice changed the tree: %d vs %d edges", nt.NumEdges(), rt.NumEdges())
	}
}

func TestSpliceSelfCrossingPathDedups(t *testing.T) {
	// A pathological reconnection that revisits a tile: the chain-anchor
	// logic must keep the result a tree.
	parent := map[geom.Pt]geom.Pt{}
	for x := 1; x <= 2; x++ {
		parent[geom.Pt{X: x}] = geom.Pt{X: x - 1}
	}
	rt := mkTree(t, geom.Pt{}, parent, []geom.Pt{{X: 2}})
	paths := rt.TwoPaths()
	// head (0,0) .. wanders, revisits (1,1) .. tail (2,0)
	newPath := []geom.Pt{
		{X: 0, Y: 0}, {X: 1, Y: 0 + 1}, {X: 1, Y: 2}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 0},
	}
	// Make it contiguous: (0,0)->(1,1) is not adjacent; fix the walk.
	newPath = []geom.Pt{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 0},
	}
	nt, err := spliceTwoPath(rt, paths[0], newPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.Validate(nil); err != nil {
		t.Fatalf("self-crossing splice broke the tree: %v", err)
	}
	if nt.Tile[nt.SinkNode[0]] != (geom.Pt{X: 2}) {
		t.Error("sink lost")
	}
}
