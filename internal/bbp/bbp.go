// Package bbp implements the comparison baseline of Table V: buffer-block
// planning with feasible regions in the style of Cong, Kong, and Pan
// (BBP/FR, ICCAD-99), adapted to the paper's length rule (Section IV-C
// notes that RABID's experiments drive both tools from the same rule since
// early timing constraints are unreliable).
//
// For every (two-pin) net longer than its constraint, the planner computes
// the evenly spaced ideal buffer positions, snaps each into the free space
// between macro blocks — buffers may not sit inside blocks, which is
// precisely the methodological limitation the paper argues against — and
// routes the net through its buffer chain. Snapping concentrates buffers
// along block edges and channel crossings, reproducing the baseline's
// signature: high maximum tile-area percentage (MTAP) and wire overflow,
// with competitive delays.
package bbp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bufferdp"
	"repro/internal/delay"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/rtree"
	"repro/internal/steiner"
	"repro/internal/tech"
	"repro/internal/tile"
)

// Result carries the Table V statistics for one BBP/FR run.
type Result struct {
	Graph      *tile.Graph
	Routes     []*rtree.Tree
	Buffers    int
	MTAP       float64 // max percentage of any tile's area used by buffers
	WirelenMm  float64
	WireMax    float64
	WireAvg    float64
	Overflows  int
	MaxDelayPs float64
	AvgDelayPs float64
	CPU        time.Duration
}

// Run plans buffers for the circuit with buffer-block planning. Multi-sink
// nets must already be decomposed (netlist.Circuit.DecomposeTwoPin), as in
// the paper's comparison. capacity is the uniform edge capacity W(e) — pass
// the capacity of the matching RABID run so both tools face the same wire
// budget. o taps the run with a "bbp.run" span; Result.CPU is real wall
// time even with a nil observer, since Table V's cpu column prints
// untapped.
func Run(c *netlist.Circuit, capacity int, t tech.Tech, o obs.Observer) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for _, n := range c.Nets {
		if len(n.Sinks) != 1 {
			return nil, fmt.Errorf("bbp: net %d has %d sinks; decompose to two-pin first", n.ID, len(n.Sinks))
		}
	}
	if capacity < 1 {
		return nil, fmt.Errorf("bbp: capacity %d < 1", capacity)
	}
	// The span begins only after validation and closes in a defer, so
	// every error return below still yields a balanced begin/end stream.
	t0 := time.Now() //rabid:allow wallclock Table V's cpu column is reporting-only and printed untapped
	obs.Emit(o, obs.Event{Kind: obs.KindSpanBegin, Scope: "bbp.run", Net: -1})
	defer func() {
		obs.Emit(o, obs.Event{Kind: obs.KindSpanEnd, Scope: "bbp.run", Net: -1, Dur: time.Since(t0)}) //rabid:allow wallclock Table V's cpu column is reporting-only and printed untapped
	}()
	eval, err := delay.NewEvaluator(t, c.TileUm)
	if err != nil {
		return nil, err
	}
	g, err := tile.New(c.GridW, c.GridH, c.BufferSites, capacity)
	if err != nil {
		return nil, err
	}
	res := &Result{Graph: g}
	bufPerTile := make([]int, c.NumTiles())
	var dst delay.Stats
	wireTiles := 0
	for _, n := range c.Nets {
		pts, bufTiles := planNet(c, n)
		rt, bufs, err := embedChain(c, pts, bufTiles, n.Sinks[0].Tile)
		if err != nil {
			return nil, fmt.Errorf("bbp: net %d: %w", n.ID, err)
		}
		res.Routes = append(res.Routes, rt)
		route.AddUsage(g, rt)
		wireTiles += rt.NumEdges()
		for _, b := range bufs {
			bufPerTile[c.TileIndex(rt.Tile[b.Node])]++
		}
		res.Buffers += len(bufs)
		if ds, err := eval.SinkDelays(rt, bufs); err == nil {
			dst.Add(ds)
		}
	}
	ws := g.WireCongestion()
	res.WireMax, res.WireAvg, res.Overflows = ws.Max, ws.Avg, ws.Overflow
	res.WirelenMm = float64(wireTiles) * c.TileUm / 1000
	res.MaxDelayPs, res.AvgDelayPs = dst.MaxPs(), dst.AvgPs()
	res.MTAP = MTAPFromCounts(bufPerTile, c.TileUm)
	res.CPU = time.Since(t0) //rabid:allow wallclock Table V's cpu column is reporting-only and printed untapped
	return res, nil
}

// MTAPFromCounts returns the maximum percentage of a tile's area occupied
// by buffers, given per-tile buffer counts.
func MTAPFromCounts(bufPerTile []int, tileUm float64) float64 {
	maxb := 0
	for _, b := range bufPerTile {
		if b > maxb {
			maxb = b
		}
	}
	return float64(maxb) * floorplan.BufferSiteAreaUm2 / (tileUm * tileUm) * 100
}

// planNet returns the net's via points: source, snapped buffer positions,
// sink; and which of those points carry buffers.
func planNet(c *netlist.Circuit, n *netlist.Net) ([]geom.FPt, []bool) {
	src, snk := n.Source.Pos, n.Sinks[0].Pos
	distTiles := n.Source.Tile.Manhattan(n.Sinks[0].Tile)
	k := 0
	if n.L > 0 {
		k = (distTiles+n.L-1)/n.L - 1
		if k < 0 {
			k = 0
		}
	}
	pts := []geom.FPt{src}
	bufs := []bool{false}
	for i := 1; i <= k; i++ {
		f := float64(i) / float64(k+1)
		ideal := geom.FPt{X: src.X + f*(snk.X-src.X), Y: src.Y + f*(snk.Y-src.Y)}
		pts = append(pts, snapToFreeSpace(c, ideal))
		bufs = append(bufs, true)
	}
	pts = append(pts, snk)
	bufs = append(bufs, false)
	return pts, bufs
}

// snapToFreeSpace moves a point out of any macro block to the nearest point
// on that block's boundary (the channel next to it). Points already in free
// space are unchanged. This is where BBP's buffer clumping comes from.
func snapToFreeSpace(c *netlist.Circuit, p geom.FPt) geom.FPt {
	for _, b := range c.Blocks {
		if !b.Contains(p) {
			continue
		}
		// Distance to each edge; move to the closest one (plus a hair so
		// the point is strictly outside).
		const eps = 1e-3
		dl := p.X - b.Lo.X
		dr := b.Hi.X - p.X
		dd := p.Y - b.Lo.Y
		du := b.Hi.Y - p.Y
		m := math.Min(math.Min(dl, dr), math.Min(dd, du))
		switch m {
		case dl:
			p.X = b.Lo.X - eps
		case dr:
			p.X = b.Hi.X + eps
		case dd:
			p.Y = b.Lo.Y - eps
		default:
			p.Y = b.Hi.Y + eps
		}
		p.X = math.Min(math.Max(p.X, 0), c.ChipW()-eps)
		p.Y = math.Min(math.Max(p.Y, 0), c.ChipH()-eps)
		return p
	}
	return p
}

// embedChain routes the via-point chain with L-shaped tile paths and builds
// the route tree with trunk buffers at the buffer points' tiles.
func embedChain(c *netlist.Circuit, pts []geom.FPt, isBuf []bool, sinkTile geom.Pt) (*rtree.Tree, []bufferdp.Buffer, error) {
	parent := map[geom.Pt]geom.Pt{}
	srcTile := c.TileOf(pts[0])
	inTree := func(t geom.Pt) bool {
		if t == srcTile {
			return true
		}
		_, ok := parent[t]
		return ok
	}
	prevTile := srcTile
	var bufTiles []geom.Pt
	for i := 1; i < len(pts); i++ {
		cur := c.TileOf(pts[i])
		path := steiner.LPath(prevTile, cur)
		prev := path[0]
		for _, tl := range path[1:] {
			if !inTree(tl) {
				parent[tl] = prev
			}
			prev = tl
		}
		if isBuf[i] {
			bufTiles = append(bufTiles, cur)
		}
		prevTile = cur
	}
	// The tree is deliberately NOT pruned: when a snapped buffer forces a
	// detour that doubles back over the chain, the spur out to the buffer
	// is real wire and the buffer tile must stay on the route.
	rt, err := rtree.FromParentMap(srcTile, parent, []geom.Pt{sinkTile})
	if err != nil {
		return nil, nil, err
	}
	nodeOf := map[geom.Pt]int{}
	for v, tl := range rt.Tile {
		nodeOf[tl] = v
	}
	bufs := make([]bufferdp.Buffer, 0, len(bufTiles))
	for _, bt := range bufTiles {
		v, ok := nodeOf[bt]
		if !ok {
			return nil, nil, fmt.Errorf("bbp: buffer tile %v missing from route", bt)
		}
		bufs = append(bufs, bufferdp.Buffer{Node: v, Branch: -1})
	}
	return rt, bufs, nil
}
