package bbp

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// twoPin builds a 12x12 circuit with one central block and straight nets.
func twoPin(t *testing.T, nets int) *netlist.Circuit {
	t.Helper()
	c := &netlist.Circuit{
		Name:        "bbp-unit",
		GridW:       12,
		GridH:       12,
		TileUm:      600,
		BufferSites: make([]int, 144),
		Blocks: []geom.Rect{
			{Lo: geom.FPt{X: 1800, Y: 1800}, Hi: geom.FPt{X: 5400, Y: 5400}},
		},
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 4
	}
	pin := func(x, y float64) netlist.Pin {
		p := geom.FPt{X: x, Y: y}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	for i := 0; i < nets; i++ {
		y := 300 + float64(i%12)*550
		c.Nets = append(c.Nets, &netlist.Net{
			ID: i, Name: "n", L: 3,
			Source: pin(100, y),
			Sinks:  []netlist.Pin{pin(7100, y)},
		})
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunBasic(t *testing.T) {
	c := twoPin(t, 8)
	res, err := Run(c, 6, tech.Default018(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 11-tile spans with L=3 need ceil(11/3)-1 = 3 buffers each.
	if res.Buffers != 8*3 {
		t.Errorf("buffers = %d, want 24", res.Buffers)
	}
	if res.MaxDelayPs <= 0 || res.AvgDelayPs <= 0 {
		t.Error("delays not computed")
	}
	if res.WirelenMm <= 0 {
		t.Error("wirelength not computed")
	}
	if res.MTAP <= 0 {
		t.Error("MTAP not computed")
	}
	for i, rt := range res.Routes {
		if err := rt.Validate(res.Graph.InGrid); err != nil {
			t.Fatalf("route %d invalid: %v", i, err)
		}
		if rt.Tile[0] != c.Nets[i].Source.Tile {
			t.Errorf("route %d root wrong", i)
		}
		if rt.Tile[rt.SinkNode[0]] != c.Nets[i].Sinks[0].Tile {
			t.Errorf("route %d sink wrong", i)
		}
	}
}

func TestShortNetsGetNoBuffers(t *testing.T) {
	c := &netlist.Circuit{
		Name: "short", GridW: 8, GridH: 8, TileUm: 600,
		BufferSites: make([]int, 64),
	}
	pin := func(x, y float64) netlist.Pin {
		p := geom.FPt{X: x, Y: y}
		return netlist.Pin{Tile: c.TileOf(p), Pos: p}
	}
	c.Nets = []*netlist.Net{{
		ID: 0, Name: "n", L: 5,
		Source: pin(100, 100),
		Sinks:  []netlist.Pin{pin(1500, 100)}, // 2 tiles apart < L
	}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, 4, tech.Default018(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffers != 0 {
		t.Errorf("short net got %d buffers", res.Buffers)
	}
}

func TestSnapMovesOutOfBlocks(t *testing.T) {
	c := twoPin(t, 1)
	inside := geom.FPt{X: 3000, Y: 3000}
	p := snapToFreeSpace(c, inside)
	for _, b := range c.Blocks {
		if b.Contains(p) {
			t.Fatalf("snapped point %v still inside block", p)
		}
	}
	// Snapped point is on the nearest edge, not across the chip.
	if p.Manhattan(inside) > 1300 {
		t.Errorf("snap moved too far: %v -> %v", inside, p)
	}
	free := geom.FPt{X: 100, Y: 100}
	if snapToFreeSpace(c, free) != free {
		t.Error("free point moved")
	}
}

func TestBuffersClumpAtBlockEdges(t *testing.T) {
	// Nets crossing the central block must have their mid buffers snapped
	// to the block boundary: MTAP should exceed a uniform distribution.
	c := twoPin(t, 12)
	res, err := Run(c, 8, tech.Default018(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform spreading of 36 buffers over 144 tiles would put ~1 buffer
	// in a tile (MTAP ~0.11%); clumping puts several in the same boundary
	// tile.
	uniform := floorplan.BufferSiteAreaUm2 / (600 * 600) * 100
	if res.MTAP < 2*uniform {
		t.Errorf("MTAP %.3f%% shows no clumping (uniform would be %.3f%%)", res.MTAP, uniform)
	}
}

func TestRunRejections(t *testing.T) {
	c := twoPin(t, 2)
	if _, err := Run(c, 0, tech.Default018(), nil); err == nil {
		t.Error("capacity 0 accepted")
	}
	multi := twoPin(t, 2)
	multi.Nets[0].Sinks = append(multi.Nets[0].Sinks, multi.Nets[0].Sinks[0])
	if _, err := Run(multi, 4, tech.Default018(), nil); err == nil {
		t.Error("multi-sink net accepted")
	}
}

func TestMTAPFromCounts(t *testing.T) {
	counts := []int{0, 3, 1}
	got := MTAPFromCounts(counts, 600)
	want := 3 * floorplan.BufferSiteAreaUm2 / (600 * 600) * 100
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("MTAP = %v, want %v", got, want)
	}
	if MTAPFromCounts(nil, 600) != 0 {
		t.Error("empty counts should give 0")
	}
}

func TestDecomposedSuiteCircuit(t *testing.T) {
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	full, err := floorplan.Generate(spec, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := full.DecomposeTwoPin()
	res, err := Run(c, 8, tech.Default018(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffers == 0 {
		t.Error("no buffers planned on apte")
	}
	if res.MTAP <= 0 {
		t.Error("MTAP missing")
	}
	if len(res.Routes) != len(c.Nets) {
		t.Error("route count mismatch")
	}
}
