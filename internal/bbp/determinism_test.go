package bbp

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// generateTwoPin builds the named suite circuit from its spec seed and
// decomposes it for BBP.
func generateTwoPin(t *testing.T, opt floorplan.Options) *netlist.Circuit {
	t.Helper()
	spec, err := floorplan.BySuiteName("apte")
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Generate(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c.DecomposeTwoPin()
}

// TestSeededDeterminism locks the globalrand invariant end to end: all
// randomness flows from the spec/option seed through explicit *rand.Rand
// values (no math/rand package-level state anywhere, enforced by
// rabidlint), so generating and BBP-planning the same circuit twice must
// agree buffer for buffer and stat for stat.
func TestSeededDeterminism(t *testing.T) {
	for _, opt := range []floorplan.Options{{}, {Annealed: true}} {
		run := func() (*netlist.Circuit, *Result) {
			c := generateTwoPin(t, opt)
			res, err := Run(c, 8, tech.Default018(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return c, res
		}
		ca, a := run()
		cb, b := run()
		if len(ca.Nets) != len(cb.Nets) {
			t.Fatalf("annealed=%v: net counts differ: %d vs %d", opt.Annealed, len(ca.Nets), len(cb.Nets))
		}
		if a.Buffers != b.Buffers || a.Overflows != b.Overflows ||
			a.MTAP != b.MTAP || a.WirelenMm != b.WirelenMm ||
			a.WireMax != b.WireMax || a.WireAvg != b.WireAvg ||
			a.MaxDelayPs != b.MaxDelayPs || a.AvgDelayPs != b.AvgDelayPs {
			t.Fatalf("annealed=%v: results differ:\n%+v\n%+v", opt.Annealed, a, b)
		}
		for i := range a.Routes {
			pa, pb := a.Routes[i].EdgePairs(), b.Routes[i].EdgePairs()
			if len(pa) != len(pb) {
				t.Fatalf("annealed=%v: net %d route size differs", opt.Annealed, i)
			}
			for k := range pa {
				if pa[k] != pb[k] {
					t.Fatalf("annealed=%v: net %d edge %d differs: %v vs %v", opt.Annealed, i, k, pa[k], pb[k])
				}
			}
		}
	}
}

// TestUntappedRunReportsCPU asserts the reporting contract at the API
// boundary: Table V's cpu column prints from the default, untapped path,
// so Run must report real wall time even with a nil observer. (The
// per-net/per-pass telemetry spans stay clock-free when untapped; only
// this one coarse, annotated timer always runs.)
func TestUntappedRunReportsCPU(t *testing.T) {
	c := generateTwoPin(t, floorplan.Options{})
	res, err := Run(c, 8, tech.Default018(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU <= 0 {
		t.Errorf("untapped Run reported CPU = %v, want > 0 (Table V's cpu column prints untapped)", res.CPU)
	}
}
