// Package netlist defines the problem input of the buffer/wire planning
// formulation: pins, multi-sink global nets with per-net tile length
// constraints L_i, and circuits that bundle the nets with the chip tiling
// and the per-tile buffer-site budget B(v).
package netlist

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// Input bounds enforced by Validate and ReadJSON. Circuits are accepted
// from untrusted network bodies (the planning service's POST endpoints),
// so structurally absurd instances must fail fast with a precise error
// instead of driving the pipeline into huge allocations or confusing
// failures deep inside Run.
const (
	// MaxJSONBytes is ReadJSON's default decoder limit. The largest suite
	// benchmark serializes to well under 1 MiB; 64 MiB leaves two orders
	// of magnitude of headroom for dense industrial instances.
	MaxJSONBytes = 64 << 20
	// MaxTiles bounds GridW*GridH. 1<<24 (16.7M tiles) is ~3000x the
	// paper's finest tiling and keeps every per-tile allocation sane.
	MaxTiles = 1 << 24
	// MaxSinksPerNet bounds a single net's fan-out; the suite's largest
	// nets have tens of sinks.
	MaxSinksPerNet = 1 << 16
)

// Pin is a net terminal: a chip-coordinate location and the tile containing
// it. Tile must be consistent with Pos for the owning circuit's tiling;
// Circuit.Validate checks this.
type Pin struct {
	Tile geom.Pt  `json:"tile"`
	Pos  geom.FPt `json:"pos"`
}

// Net is a global signal net with one source (driver) and one or more sinks.
// L is the net's tile length constraint: the maximum total tile units of
// interconnect that the driver or any buffer inserted on the net may drive.
type Net struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Source Pin    `json:"source"`
	Sinks  []Pin  `json:"sinks"`
	L      int    `json:"l"`
}

// NumPins returns the total terminal count (source + sinks).
func (n *Net) NumPins() int { return 1 + len(n.Sinks) }

// Tiles returns the distinct tiles occupied by the net's pins, source first.
func (n *Net) Tiles() []geom.Pt {
	seen := map[geom.Pt]bool{n.Source.Tile: true}
	out := []geom.Pt{n.Source.Tile}
	for _, s := range n.Sinks {
		if !seen[s.Tile] {
			seen[s.Tile] = true
			out = append(out, s.Tile)
		}
	}
	return out
}

// Circuit is a complete planning instance: the tiling of the chip, the
// global nets, the per-tile buffer-site counts, and (for baselines and
// reporting) the macro-block outlines the floorplan was built from.
type Circuit struct {
	Name  string `json:"name"`
	GridW int    `json:"grid_w"` // tiles in x
	GridH int    `json:"grid_h"` // tiles in y
	// TileUm is the side length of a (square) tile in micrometers.
	TileUm float64 `json:"tile_um"`
	Nets   []*Net  `json:"nets"`
	// BufferSites holds B(v) per tile in row-major order (y*GridW + x).
	BufferSites []int `json:"buffer_sites"`
	// Blocks are the floorplan macro outlines in chip coordinates.
	Blocks []geom.Rect `json:"blocks"`
	// NumPads records how many terminals are chip I/O pads (statistics only).
	NumPads int `json:"num_pads"`
}

// NumTiles returns the number of tiles in the grid.
func (c *Circuit) NumTiles() int { return c.GridW * c.GridH }

// TileIndex maps a tile coordinate to its row-major index. It panics on
// out-of-grid coordinates; use InGrid to test first.
func (c *Circuit) TileIndex(p geom.Pt) int {
	if !c.InGrid(p) {
		panic(fmt.Sprintf("netlist: tile %v outside %dx%d grid", p, c.GridW, c.GridH))
	}
	return p.Y*c.GridW + p.X
}

// InGrid reports whether the tile coordinate lies inside the grid.
func (c *Circuit) InGrid(p geom.Pt) bool {
	return p.X >= 0 && p.X < c.GridW && p.Y >= 0 && p.Y < c.GridH
}

// TileOf returns the tile containing a chip-coordinate point, clamped to the
// grid so boundary pads at the exact chip edge land in the outermost tile.
func (c *Circuit) TileOf(p geom.FPt) geom.Pt {
	tx := geom.Clamp(int(p.X/c.TileUm), 0, c.GridW-1)
	ty := geom.Clamp(int(p.Y/c.TileUm), 0, c.GridH-1)
	return geom.Pt{X: tx, Y: ty}
}

// ChipW returns the chip width in micrometers.
func (c *Circuit) ChipW() float64 { return float64(c.GridW) * c.TileUm }

// ChipH returns the chip height in micrometers.
func (c *Circuit) ChipH() float64 { return float64(c.GridH) * c.TileUm }

// TotalSinks returns the sink count over all nets.
func (c *Circuit) TotalSinks() int {
	n := 0
	for _, net := range c.Nets {
		n += len(net.Sinks)
	}
	return n
}

// TotalBufferSites returns the sum of B(v) over all tiles.
func (c *Circuit) TotalBufferSites() int {
	n := 0
	for _, b := range c.BufferSites {
		n += b
	}
	return n
}

// Validate checks structural consistency: positive and bounded grid and
// tile size, finite coordinates, the buffer-site slice length, pin/tile
// agreement, per-net constraints, and unique net IDs. It returns the first
// problem found. The finiteness and size bounds exist because circuits
// arrive from untrusted network input: a NaN coordinate or an absurd grid
// must be rejected here, with a precise error, not surface as a confusing
// failure deep inside Run.
func (c *Circuit) Validate() error {
	if c.GridW <= 0 || c.GridH <= 0 {
		return fmt.Errorf("netlist: %s: grid %dx%d must be positive", c.Name, c.GridW, c.GridH)
	}
	// The product is computed in int64 so a huge GridW*GridH is caught
	// rather than overflowing NumTiles.
	if int64(c.GridW)*int64(c.GridH) > MaxTiles {
		return fmt.Errorf("netlist: %s: grid %dx%d has %d tiles, above the %d bound",
			c.Name, c.GridW, c.GridH, int64(c.GridW)*int64(c.GridH), MaxTiles)
	}
	if c.TileUm <= 0 || math.IsInf(c.TileUm, 0) || math.IsNaN(c.TileUm) {
		return fmt.Errorf("netlist: %s: tile size %g must be positive and finite", c.Name, c.TileUm)
	}
	if c.NumPads < 0 {
		return fmt.Errorf("netlist: %s: negative pad count %d", c.Name, c.NumPads)
	}
	if len(c.BufferSites) != c.NumTiles() {
		return fmt.Errorf("netlist: %s: %d buffer-site entries for %d tiles",
			c.Name, len(c.BufferSites), c.NumTiles())
	}
	for i, b := range c.BufferSites {
		if b < 0 {
			return fmt.Errorf("netlist: %s: tile %d has negative buffer sites %d", c.Name, i, b)
		}
	}
	ids := make(map[int]bool, len(c.Nets))
	for _, n := range c.Nets {
		if ids[n.ID] {
			return fmt.Errorf("netlist: %s: duplicate net id %d", c.Name, n.ID)
		}
		ids[n.ID] = true
		if len(n.Sinks) == 0 {
			return fmt.Errorf("netlist: %s: net %d has no sinks", c.Name, n.ID)
		}
		if len(n.Sinks) > MaxSinksPerNet {
			return fmt.Errorf("netlist: %s: net %d has %d sinks, above the %d bound",
				c.Name, n.ID, len(n.Sinks), MaxSinksPerNet)
		}
		if n.L < 1 {
			return fmt.Errorf("netlist: %s: net %d has length constraint %d < 1", c.Name, n.ID, n.L)
		}
		for _, p := range append([]Pin{n.Source}, n.Sinks...) {
			// Finiteness must be checked before TileOf: int(NaN) and
			// int(±Inf) are not meaningful tile coordinates.
			if !finitePt(p.Pos) {
				return fmt.Errorf("netlist: %s: net %d pin position (%g, %g) is not finite",
					c.Name, n.ID, p.Pos.X, p.Pos.Y)
			}
			if !c.InGrid(p.Tile) {
				return fmt.Errorf("netlist: %s: net %d pin tile %v outside grid", c.Name, n.ID, p.Tile)
			}
			if got := c.TileOf(p.Pos); got != p.Tile {
				return fmt.Errorf("netlist: %s: net %d pin at %v maps to tile %v, recorded %v",
					c.Name, n.ID, p.Pos, got, p.Tile)
			}
		}
	}
	return nil
}

// finitePt reports whether both coordinates are finite (no NaN, no ±Inf).
func finitePt(p geom.FPt) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// WriteJSON serializes the circuit with indentation.
func (c *Circuit) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON deserializes and validates a circuit, refusing inputs larger
// than MaxJSONBytes. Use ReadJSONLimit to choose a different bound.
func ReadJSON(r io.Reader) (*Circuit, error) {
	return ReadJSONLimit(r, MaxJSONBytes)
}

// ReadJSONLimit deserializes and validates a circuit, reading at most
// limit bytes (limit <= 0 means no bound — only for trusted local input).
// Oversized and trailing-garbage inputs fail with precise errors, so a
// malformed network body is rejected at the boundary instead of driving
// Validate (or worse, Run) into confusing failures.
func ReadJSONLimit(r io.Reader, limit int64) (*Circuit, error) {
	if limit > 0 {
		// One extra byte distinguishes "exactly limit" from "over limit".
		r = io.LimitReader(r, limit+1)
	}
	cr := &countingReader{r: r}
	dec := json.NewDecoder(cr)
	var c Circuit
	if err := dec.Decode(&c); err != nil {
		if limit > 0 && cr.n > limit {
			return nil, fmt.Errorf("netlist: input exceeds %d bytes", limit)
		}
		return nil, fmt.Errorf("netlist: decode: %w", err)
	}
	if limit > 0 && cr.n > limit {
		return nil, fmt.Errorf("netlist: input exceeds %d bytes", limit)
	}
	if dec.More() {
		return nil, fmt.Errorf("netlist: trailing data after circuit JSON")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// countingReader tracks how many bytes the decoder actually consumed, so
// the size-limit error is distinguishable from a syntax error.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// DecomposeTwoPin returns a copy of the circuit in which every multi-sink
// net is split into one two-pin net per sink (same source), the construction
// the paper uses when comparing against BBP/FR. Net IDs are renumbered
// densely; names carry a "/k" suffix for split nets.
func (c *Circuit) DecomposeTwoPin() *Circuit {
	out := &Circuit{
		Name:        c.Name,
		GridW:       c.GridW,
		GridH:       c.GridH,
		TileUm:      c.TileUm,
		BufferSites: append([]int(nil), c.BufferSites...),
		Blocks:      append([]geom.Rect(nil), c.Blocks...),
		NumPads:     c.NumPads,
	}
	id := 0
	for _, n := range c.Nets {
		for k, s := range n.Sinks {
			name := n.Name
			if len(n.Sinks) > 1 {
				name = fmt.Sprintf("%s/%d", n.Name, k)
			}
			out.Nets = append(out.Nets, &Net{
				ID:     id,
				Name:   name,
				Source: n.Source,
				Sinks:  []Pin{s},
				L:      n.L,
			})
			id++
		}
	}
	return out
}
