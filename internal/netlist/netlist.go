// Package netlist defines the problem input of the buffer/wire planning
// formulation: pins, multi-sink global nets with per-net tile length
// constraints L_i, and circuits that bundle the nets with the chip tiling
// and the per-tile buffer-site budget B(v).
package netlist

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// Pin is a net terminal: a chip-coordinate location and the tile containing
// it. Tile must be consistent with Pos for the owning circuit's tiling;
// Circuit.Validate checks this.
type Pin struct {
	Tile geom.Pt  `json:"tile"`
	Pos  geom.FPt `json:"pos"`
}

// Net is a global signal net with one source (driver) and one or more sinks.
// L is the net's tile length constraint: the maximum total tile units of
// interconnect that the driver or any buffer inserted on the net may drive.
type Net struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Source Pin    `json:"source"`
	Sinks  []Pin  `json:"sinks"`
	L      int    `json:"l"`
}

// NumPins returns the total terminal count (source + sinks).
func (n *Net) NumPins() int { return 1 + len(n.Sinks) }

// Tiles returns the distinct tiles occupied by the net's pins, source first.
func (n *Net) Tiles() []geom.Pt {
	seen := map[geom.Pt]bool{n.Source.Tile: true}
	out := []geom.Pt{n.Source.Tile}
	for _, s := range n.Sinks {
		if !seen[s.Tile] {
			seen[s.Tile] = true
			out = append(out, s.Tile)
		}
	}
	return out
}

// Circuit is a complete planning instance: the tiling of the chip, the
// global nets, the per-tile buffer-site counts, and (for baselines and
// reporting) the macro-block outlines the floorplan was built from.
type Circuit struct {
	Name  string `json:"name"`
	GridW int    `json:"grid_w"` // tiles in x
	GridH int    `json:"grid_h"` // tiles in y
	// TileUm is the side length of a (square) tile in micrometers.
	TileUm float64 `json:"tile_um"`
	Nets   []*Net  `json:"nets"`
	// BufferSites holds B(v) per tile in row-major order (y*GridW + x).
	BufferSites []int `json:"buffer_sites"`
	// Blocks are the floorplan macro outlines in chip coordinates.
	Blocks []geom.Rect `json:"blocks"`
	// NumPads records how many terminals are chip I/O pads (statistics only).
	NumPads int `json:"num_pads"`
}

// NumTiles returns the number of tiles in the grid.
func (c *Circuit) NumTiles() int { return c.GridW * c.GridH }

// TileIndex maps a tile coordinate to its row-major index. It panics on
// out-of-grid coordinates; use InGrid to test first.
func (c *Circuit) TileIndex(p geom.Pt) int {
	if !c.InGrid(p) {
		panic(fmt.Sprintf("netlist: tile %v outside %dx%d grid", p, c.GridW, c.GridH))
	}
	return p.Y*c.GridW + p.X
}

// InGrid reports whether the tile coordinate lies inside the grid.
func (c *Circuit) InGrid(p geom.Pt) bool {
	return p.X >= 0 && p.X < c.GridW && p.Y >= 0 && p.Y < c.GridH
}

// TileOf returns the tile containing a chip-coordinate point, clamped to the
// grid so boundary pads at the exact chip edge land in the outermost tile.
func (c *Circuit) TileOf(p geom.FPt) geom.Pt {
	tx := geom.Clamp(int(p.X/c.TileUm), 0, c.GridW-1)
	ty := geom.Clamp(int(p.Y/c.TileUm), 0, c.GridH-1)
	return geom.Pt{X: tx, Y: ty}
}

// ChipW returns the chip width in micrometers.
func (c *Circuit) ChipW() float64 { return float64(c.GridW) * c.TileUm }

// ChipH returns the chip height in micrometers.
func (c *Circuit) ChipH() float64 { return float64(c.GridH) * c.TileUm }

// TotalSinks returns the sink count over all nets.
func (c *Circuit) TotalSinks() int {
	n := 0
	for _, net := range c.Nets {
		n += len(net.Sinks)
	}
	return n
}

// TotalBufferSites returns the sum of B(v) over all tiles.
func (c *Circuit) TotalBufferSites() int {
	n := 0
	for _, b := range c.BufferSites {
		n += b
	}
	return n
}

// Validate checks structural consistency: positive grid and tile size, the
// buffer-site slice length, pin/tile agreement, per-net constraints, and
// unique net IDs. It returns the first problem found.
func (c *Circuit) Validate() error {
	if c.GridW <= 0 || c.GridH <= 0 {
		return fmt.Errorf("netlist: %s: grid %dx%d must be positive", c.Name, c.GridW, c.GridH)
	}
	if c.TileUm <= 0 {
		return fmt.Errorf("netlist: %s: tile size %g must be positive", c.Name, c.TileUm)
	}
	if len(c.BufferSites) != c.NumTiles() {
		return fmt.Errorf("netlist: %s: %d buffer-site entries for %d tiles",
			c.Name, len(c.BufferSites), c.NumTiles())
	}
	for i, b := range c.BufferSites {
		if b < 0 {
			return fmt.Errorf("netlist: %s: tile %d has negative buffer sites %d", c.Name, i, b)
		}
	}
	ids := make(map[int]bool, len(c.Nets))
	for _, n := range c.Nets {
		if ids[n.ID] {
			return fmt.Errorf("netlist: %s: duplicate net id %d", c.Name, n.ID)
		}
		ids[n.ID] = true
		if len(n.Sinks) == 0 {
			return fmt.Errorf("netlist: %s: net %d has no sinks", c.Name, n.ID)
		}
		if n.L < 1 {
			return fmt.Errorf("netlist: %s: net %d has length constraint %d < 1", c.Name, n.ID, n.L)
		}
		for _, p := range append([]Pin{n.Source}, n.Sinks...) {
			if !c.InGrid(p.Tile) {
				return fmt.Errorf("netlist: %s: net %d pin tile %v outside grid", c.Name, n.ID, p.Tile)
			}
			if got := c.TileOf(p.Pos); got != p.Tile {
				return fmt.Errorf("netlist: %s: net %d pin at %v maps to tile %v, recorded %v",
					c.Name, n.ID, p.Pos, got, p.Tile)
			}
		}
	}
	return nil
}

// WriteJSON serializes the circuit with indentation.
func (c *Circuit) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON deserializes and validates a circuit.
func ReadJSON(r io.Reader) (*Circuit, error) {
	var c Circuit
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("netlist: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// DecomposeTwoPin returns a copy of the circuit in which every multi-sink
// net is split into one two-pin net per sink (same source), the construction
// the paper uses when comparing against BBP/FR. Net IDs are renumbered
// densely; names carry a "/k" suffix for split nets.
func (c *Circuit) DecomposeTwoPin() *Circuit {
	out := &Circuit{
		Name:        c.Name,
		GridW:       c.GridW,
		GridH:       c.GridH,
		TileUm:      c.TileUm,
		BufferSites: append([]int(nil), c.BufferSites...),
		Blocks:      append([]geom.Rect(nil), c.Blocks...),
		NumPads:     c.NumPads,
	}
	id := 0
	for _, n := range c.Nets {
		for k, s := range n.Sinks {
			name := n.Name
			if len(n.Sinks) > 1 {
				name = fmt.Sprintf("%s/%d", n.Name, k)
			}
			out.Nets = append(out.Nets, &Net{
				ID:     id,
				Name:   name,
				Source: n.Source,
				Sinks:  []Pin{s},
				L:      n.L,
			})
			id++
		}
	}
	return out
}
