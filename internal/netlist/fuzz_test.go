package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

// FuzzReadJSON ensures arbitrary input never panics the loader and that
// anything it accepts round-trips.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	c := &Circuit{
		Name: "seed", GridW: 2, GridH: 2, TileUm: 100,
		BufferSites: []int{1, 1, 1, 1},
		Nets: []*Net{{
			ID: 0, Name: "n", L: 2,
			Source: Pin{Pos: geom.FPt{X: 50, Y: 50}, Tile: geom.Pt{X: 0, Y: 0}},
			Sinks:  []Pin{{Pos: geom.FPt{X: 150, Y: 150}, Tile: geom.Pt{X: 1, Y: 1}}},
		}},
	}
	if err := c.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x"}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, s string) {
		got, err := ReadJSON(strings.NewReader(s))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := got.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted circuit fails to serialize: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("accepted circuit fails to reload: %v", err)
		}
		if again.NumTiles() != got.NumTiles() || len(again.Nets) != len(got.Nets) {
			t.Fatal("round trip changed the circuit")
		}
	})
}
