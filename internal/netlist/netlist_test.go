package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

// small returns a valid 4x3 two-net circuit used across tests.
func small() *Circuit {
	c := &Circuit{
		Name:        "tiny",
		GridW:       4,
		GridH:       3,
		TileUm:      100,
		BufferSites: make([]int, 12),
		NumPads:     1,
	}
	for i := range c.BufferSites {
		c.BufferSites[i] = 2
	}
	pin := func(x, y int) Pin {
		pos := geom.FPt{X: (float64(x) + 0.5) * 100, Y: (float64(y) + 0.5) * 100}
		return Pin{Tile: geom.Pt{X: x, Y: y}, Pos: pos}
	}
	c.Nets = []*Net{
		{ID: 0, Name: "n0", Source: pin(0, 0), Sinks: []Pin{pin(3, 2)}, L: 3},
		{ID: 1, Name: "n1", Source: pin(1, 1), Sinks: []Pin{pin(3, 0), pin(0, 2)}, L: 3},
	}
	return c
}

func TestValidateOK(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Circuit)
	}{
		{"zero grid", func(c *Circuit) { c.GridW = 0 }},
		{"bad tile size", func(c *Circuit) { c.TileUm = 0 }},
		{"site slice length", func(c *Circuit) { c.BufferSites = c.BufferSites[:5] }},
		{"negative sites", func(c *Circuit) { c.BufferSites[0] = -1 }},
		{"dup net id", func(c *Circuit) { c.Nets[1].ID = 0 }},
		{"no sinks", func(c *Circuit) { c.Nets[0].Sinks = nil }},
		{"bad L", func(c *Circuit) { c.Nets[0].L = 0 }},
		{"pin off grid", func(c *Circuit) { c.Nets[0].Source.Tile = geom.Pt{X: 9, Y: 9} }},
		{"pin/tile mismatch", func(c *Circuit) { c.Nets[0].Source.Pos = geom.FPt{X: 350, Y: 250} }},
		{"nan tile size", func(c *Circuit) { c.TileUm = math.NaN() }},
		{"inf tile size", func(c *Circuit) { c.TileUm = math.Inf(1) }},
		{"negative pads", func(c *Circuit) { c.NumPads = -1 }},
		{"nan pin pos", func(c *Circuit) { c.Nets[0].Sinks[0].Pos.X = math.NaN() }},
		{"inf pin pos", func(c *Circuit) { c.Nets[1].Source.Pos.Y = math.Inf(-1) }},
		{"grid above tile bound", func(c *Circuit) {
			// 65536^2 = 1<<32 tiles; the bound must trip before the
			// buffer-site length check forces an absurd allocation.
			c.GridW, c.GridH = 1<<16, 1<<16
		}},
		{"sink fan-out above bound", func(c *Circuit) {
			c.Nets[0].Sinks = make([]Pin, MaxSinksPerNet+1)
			for i := range c.Nets[0].Sinks {
				c.Nets[0].Sinks[i] = c.Nets[0].Source
			}
		}},
	}
	for _, tc := range cases {
		c := small()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestTileIndexAndInGrid(t *testing.T) {
	c := small()
	if c.NumTiles() != 12 {
		t.Fatalf("NumTiles = %d", c.NumTiles())
	}
	if got := c.TileIndex(geom.Pt{X: 3, Y: 2}); got != 11 {
		t.Errorf("TileIndex(3,2) = %d, want 11", got)
	}
	if got := c.TileIndex(geom.Pt{X: 1, Y: 1}); got != 5 {
		t.Errorf("TileIndex(1,1) = %d, want 5", got)
	}
	if c.InGrid(geom.Pt{X: 4, Y: 0}) || c.InGrid(geom.Pt{X: -1, Y: 0}) {
		t.Error("InGrid accepted out-of-range point")
	}
	defer func() {
		if recover() == nil {
			t.Error("TileIndex should panic out of grid")
		}
	}()
	c.TileIndex(geom.Pt{X: 4, Y: 0})
}

func TestTileOfClampsBoundary(t *testing.T) {
	c := small()
	if got := c.TileOf(geom.FPt{X: 400, Y: 300}); got != (geom.Pt{X: 3, Y: 2}) {
		t.Errorf("chip corner maps to %v, want (3,2)", got)
	}
	if got := c.TileOf(geom.FPt{X: 0, Y: 0}); got != (geom.Pt{X: 0, Y: 0}) {
		t.Errorf("origin maps to %v", got)
	}
	if got := c.TileOf(geom.FPt{X: 150, Y: 250}); got != (geom.Pt{X: 1, Y: 2}) {
		t.Errorf("interior maps to %v", got)
	}
}

func TestChipDims(t *testing.T) {
	c := small()
	if c.ChipW() != 400 || c.ChipH() != 300 {
		t.Errorf("chip dims = %v x %v", c.ChipW(), c.ChipH())
	}
}

func TestCounts(t *testing.T) {
	c := small()
	if c.TotalSinks() != 3 {
		t.Errorf("TotalSinks = %d", c.TotalSinks())
	}
	if c.TotalBufferSites() != 24 {
		t.Errorf("TotalBufferSites = %d", c.TotalBufferSites())
	}
	if c.Nets[1].NumPins() != 3 {
		t.Errorf("NumPins = %d", c.Nets[1].NumPins())
	}
}

func TestNetTilesDedup(t *testing.T) {
	c := small()
	n := c.Nets[1]
	n.Sinks = append(n.Sinks, n.Sinks[0]) // duplicate tile
	tiles := n.Tiles()
	if len(tiles) != 3 {
		t.Errorf("Tiles() = %v, want 3 distinct", tiles)
	}
	if tiles[0] != n.Source.Tile {
		t.Error("source tile must come first")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := small()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || got.NumTiles() != c.NumTiles() || len(got.Nets) != len(c.Nets) {
		t.Error("round trip lost data")
	}
	if got.Nets[1].Sinks[1].Tile != c.Nets[1].Sinks[1].Tile {
		t.Error("round trip lost pin data")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","grid_w":0}`)); err == nil {
		t.Error("expected error for invalid circuit")
	}
	if _, err := ReadJSON(strings.NewReader(`{garbage`)); err == nil {
		t.Error("expected decode error")
	}
}

func TestReadJSONLimitRejectsOversize(t *testing.T) {
	c := small()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	limit := int64(buf.Len() / 2)
	_, err := ReadJSONLimit(bytes.NewReader(buf.Bytes()), limit)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("undersized limit: got %v, want size-limit error", err)
	}
	// At or above the encoded size the same input is accepted.
	if _, err := ReadJSONLimit(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err != nil {
		t.Fatalf("exact limit rejected valid circuit: %v", err)
	}
}

func TestReadJSONRejectsTrailingData(t *testing.T) {
	c := small()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"more":"stuff"}`)
	_, err := ReadJSON(&buf)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("got %v, want trailing-data error", err)
	}
}

func TestDecomposeTwoPin(t *testing.T) {
	c := small()
	d := c.DecomposeTwoPin()
	if len(d.Nets) != 3 {
		t.Fatalf("decomposed into %d nets, want 3", len(d.Nets))
	}
	for i, n := range d.Nets {
		if n.ID != i {
			t.Errorf("net %d has id %d", i, n.ID)
		}
		if len(n.Sinks) != 1 {
			t.Errorf("net %d has %d sinks", i, len(n.Sinks))
		}
	}
	if d.Nets[1].Source.Tile != c.Nets[1].Source.Tile {
		t.Error("split nets must keep the source")
	}
	if d.Nets[1].Name != "n1/0" || d.Nets[2].Name != "n1/1" {
		t.Errorf("split names = %q, %q", d.Nets[1].Name, d.Nets[2].Name)
	}
	if d.Nets[0].Name != "n0" {
		t.Errorf("single-sink net renamed to %q", d.Nets[0].Name)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("decomposed circuit invalid: %v", err)
	}
	// Mutating the copy must not touch the original.
	d.BufferSites[0] = 99
	if c.BufferSites[0] == 99 {
		t.Error("DecomposeTwoPin shares BufferSites slice")
	}
}
