// Package journal is the persistent, replayable run journal of the
// planning service: an append-only JSON-lines file recording, for every
// completed async job, the verbatim request body, the content key, the
// run's deterministic telemetry event stream, and a SHA-256 digest of the
// deterministic response bytes.
//
// Because RABID runs are bit-deterministic (the property the content-
// addressed cache rests on), a journal entry is a complete correctness
// witness: cmd/journal can re-run the recorded request through the core
// and require the replayed response digest — and the replayed event
// stream — to match the recorded ones byte for byte. That makes the
// journal both an audit log and a regression gate, and it is the
// foundation for shared-cache / multi-replica work: entries are location-
// independent (keyed by content, not by server).
//
// This package never reads the wall clock (rabidlint's wallclock check
// applies): the caller — the service boundary, which is clock-exempt —
// stamps Entry.UnixMs.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Version is the journal format version, stamped into every entry so a
// future layout change cannot silently alias old records.
const Version = 1

// Entry is one journaled run. Request holds the verbatim POST body the
// service accepted (circuit + params + timeout), so replay re-parses it
// through exactly the code path the original run took. Events holds the
// run's JSON-lines telemetry stream, one raw JSON object per line, present
// only when this job actually executed the pipeline (a cache hit or a
// coalesced waiter shares another entry's run and records none).
type Entry struct {
	V         int    `json:"v"`
	ID        string `json:"id"`
	RequestID string `json:"request_id,omitempty"`
	Kind      string `json:"kind"`
	Key       string `json:"key"`
	UnixMs    int64  `json:"unix_ms"`
	CacheHit  bool   `json:"cache_hit"`

	Request json.RawMessage `json:"request"`

	// Events is the run's deterministic event stream (the bytes the
	// -events sink would have written, split at line boundaries); empty
	// for cache hits.
	Events []json.RawMessage `json:"events,omitempty"`
	// EventsSHA256 digests the exact event-stream bytes (lines joined
	// with trailing newlines); empty when Events is.
	EventsSHA256 string `json:"events_sha256,omitempty"`
	// ResultSHA256 digests the deterministic response body — the replay
	// correctness gate.
	ResultSHA256 string `json:"result_sha256"`
}

// EventStream reassembles the exact JSON-lines bytes of the recorded event
// stream (each line newline-terminated), the form the digests are taken
// over and the -events sink writes.
func (e *Entry) EventStream() []byte {
	var b []byte
	for _, ln := range e.Events {
		b = append(b, ln...)
		b = append(b, '\n')
	}
	return b
}

// Digest returns the hex SHA-256 of b — the digest form used throughout
// the journal.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SplitLines cuts a newline-terminated JSON-lines buffer into per-line raw
// messages (the Entry.Events representation). A trailing fragment without
// a newline is kept as a final line.
func SplitLines(stream []byte) []json.RawMessage {
	var lines []json.RawMessage
	for len(stream) > 0 {
		i := 0
		for i < len(stream) && stream[i] != '\n' {
			i++
		}
		line := make([]byte, i)
		copy(line, stream[:i])
		lines = append(lines, line)
		if i < len(stream) {
			i++
		}
		stream = stream[i:]
	}
	return lines
}

// Writer appends entries to a journal file, one JSON object per line.
// Safe for concurrent use; each entry is written with a single Write call
// so concurrent appenders never interleave bytes.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer // nil when wrapping a plain writer
}

// Open opens (creating if needed) the journal at path for appending.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer{w: f, c: f}, nil
}

// NewWriter wraps an arbitrary writer (tests, in-memory buffers).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Append serializes e (stamping the format version) and appends it as one
// line.
func (w *Writer) Append(e Entry) error {
	e.V = Version
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: serialize entry %s: %w", e.ID, err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("journal: append entry %s: %w", e.ID, err)
	}
	return nil
}

// Close closes the underlying file, if Open created one.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.c == nil {
		return nil
	}
	return w.c.Close()
}

// Read decodes every entry of a journal stream, rejecting malformed lines
// and unsupported versions (a truncated final line — a crash mid-append —
// is reported, not silently dropped).
func Read(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(nil, 1<<30)
	var entries []Entry
	for n := 1; sc.Scan(); n++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return entries, fmt.Errorf("journal: line %d: %w", n, err)
		}
		if e.V != Version {
			return entries, fmt.Errorf("journal: line %d: unsupported version %d (want %d)", n, e.V, Version)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return entries, fmt.Errorf("journal: read: %w", err)
	}
	return entries, nil
}

// ReadFile reads every entry of the journal at path.
func ReadFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
