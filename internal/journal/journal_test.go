package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	stream := []byte(`{"k":"span_begin","scope":"run","net":-1}` + "\n" +
		`{"k":"counter","scope":"route.pops","stage":2,"v":7}` + "\n")
	in := Entry{
		ID:           "job-1",
		RequestID:    "req-1",
		Kind:         "plan",
		Key:          "abc123",
		UnixMs:       1754600000000,
		Request:      []byte(`{"circuit":{"name":"x"}}`),
		Events:       SplitLines(stream),
		EventsSHA256: Digest(stream),
		ResultSHA256: Digest([]byte(`{"key":"abc123"}`)),
	}
	if err := w.Append(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Entry{ID: "job-2", Kind: "plan", Key: "def", CacheHit: true,
		Request: []byte(`{}`), ResultSHA256: Digest(nil)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("read %d entries, want 2", len(entries))
	}
	got := entries[0]
	if got.V != Version || got.ID != "job-1" || got.Key != "abc123" || got.RequestID != "req-1" {
		t.Errorf("entry 0 header mismatch: %+v", got)
	}
	if !bytes.Equal(got.EventStream(), stream) {
		t.Errorf("EventStream round trip:\n got %q\nwant %q", got.EventStream(), stream)
	}
	if Digest(got.EventStream()) != got.EventsSHA256 {
		t.Error("recorded events digest does not match reassembled stream")
	}
	if !entries[1].CacheHit || entries[1].Events != nil {
		t.Errorf("entry 1 should be a hit with no events: %+v", entries[1])
	}
}

// TestAppendIsOneLinePerEntry: concurrent appends never interleave — every
// journal line parses on its own.
func TestAppendIsOneLinePerEntry(t *testing.T) {
	var buf bytes.Buffer
	type lockedBuf struct {
		mu sync.Mutex
		b  *bytes.Buffer
	}
	lb := &lockedBuf{b: &buf}
	w := NewWriter(writerFunc(func(p []byte) (int, error) {
		lb.mu.Lock()
		defer lb.mu.Unlock()
		return lb.b.Write(p)
	}))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := w.Append(Entry{ID: "x", Kind: "plan", Request: []byte(`{}`)}); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	entries, err := Read(&buf)
	if err != nil {
		t.Fatalf("interleaved append corrupted the journal: %v", err)
	}
	if len(entries) != 160 {
		t.Errorf("read %d entries, want 160", len(entries))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestReadRejectsGarbageAndVersionSkew(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Read(strings.NewReader(`{"v":99,"id":"x","kind":"plan","key":"k","unix_ms":0,"cache_hit":false,"request":{},"result_sha256":""}` + "\n")); err == nil {
		t.Error("future version accepted")
	}
	// Blank lines are tolerated (a crash between the newline and the next
	// entry must not poison the whole journal).
	entries, err := Read(strings.NewReader("\n"))
	if err != nil || len(entries) != 0 {
		t.Errorf("blank-only journal: %v, %d entries", err, len(entries))
	}
}

func TestSplitLines(t *testing.T) {
	lines := SplitLines([]byte("{\"a\":1}\n{\"b\":2}\n"))
	if len(lines) != 2 || string(lines[0]) != `{"a":1}` || string(lines[1]) != `{"b":2}` {
		t.Errorf("SplitLines = %q", lines)
	}
	if got := SplitLines(nil); got != nil {
		t.Errorf("SplitLines(nil) = %q, want nil", got)
	}
	// An unterminated trailing fragment is preserved.
	frag := SplitLines([]byte("{\"a\":1}\n{\"b\""))
	if len(frag) != 2 || string(frag[1]) != `{"b"` {
		t.Errorf("trailing fragment lost: %q", frag)
	}
}

func TestOpenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	for i := 0; i < 2; i++ {
		w, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(Entry{ID: "a", Kind: "plan", Request: []byte(`{}`)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("reopened journal has %d entries, want 2 (append mode)", len(entries))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
