package spanning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// mstWirelength computes the Prim MST weight over pts as a reference.
func mstWirelength(pts []geom.Pt) int {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	key := make([]int, n)
	for i := range key {
		key[i] = 1 << 30
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		key[v] = pts[0].Manhattan(pts[v])
	}
	total := 0
	for added := 1; added < n; added++ {
		pick := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (pick == -1 || key[v] < key[pick]) {
				pick = v
			}
		}
		total += key[pick]
		inTree[pick] = true
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := pts[pick].Manhattan(pts[v]); d < key[v] {
					key[v] = d
				}
			}
		}
	}
	return total
}

func randomPts(r *rand.Rand, n int) []geom.Pt {
	pts := make([]geom.Pt, n)
	for i := range pts {
		pts[i] = geom.Pt{X: r.Intn(30), Y: r.Intn(30)}
	}
	return pts
}

func TestTreeValidation(t *testing.T) {
	if _, err := Tree(nil, 0.4); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Tree([]geom.Pt{{}}, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := Tree([]geom.Pt{{}}, 1.1); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestSingleAndTwoNode(t *testing.T) {
	p, err := Tree([]geom.Pt{{X: 1, Y: 1}}, 0.4)
	if err != nil || len(p) != 1 || p[0] != -1 {
		t.Fatalf("single node: %v %v", p, err)
	}
	p, err = Tree([]geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 4}}, 0.4)
	if err != nil || p[1] != 0 {
		t.Fatalf("two nodes: %v %v", p, err)
	}
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 4}}
	if Wirelength(pts, p) != 7 || Radius(pts, p) != 7 {
		t.Error("two-node wirelength/radius wrong")
	}
}

func TestAlphaZeroIsMST(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pts := randomPts(r, 2+r.Intn(12))
		parent, err := Tree(pts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Wirelength(pts, parent), mstWirelength(pts); got != want {
			t.Fatalf("trial %d: alpha=0 wirelength %d, MST %d (pts %v)", trial, got, want, pts)
		}
	}
}

func TestAlphaOneIsShortestPathTree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pts := randomPts(r, 2+r.Intn(12))
		parent, err := Tree(pts, 1)
		if err != nil {
			t.Fatal(err)
		}
		// In a metric complete graph the SPT gives every node a tree path
		// equal to its direct Manhattan distance from the source.
		depth := treeDepths(pts, parent)
		for v := 1; v < len(pts); v++ {
			if depth[v] != pts[0].Manhattan(pts[v]) {
				t.Fatalf("trial %d: node %d path %d != direct %d",
					trial, v, depth[v], pts[0].Manhattan(pts[v]))
			}
		}
	}
}

func treeDepths(pts []geom.Pt, parent []int) []int {
	depth := make([]int, len(parent))
	var walk func(v int) int
	walk = func(v int) int {
		if parent[v] < 0 {
			return 0
		}
		return walk(parent[v]) + pts[v].Manhattan(pts[parent[v]])
	}
	for v := range parent {
		depth[v] = walk(v)
	}
	return depth
}

func TestTradeoffProperties(t *testing.T) {
	// For any alpha: wirelength >= MST wirelength, and radius >= SPT radius.
	f := func(seed int64, alphaRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomPts(r, 3+r.Intn(10))
		alpha := float64(alphaRaw%101) / 100
		parent, err := Tree(pts, alpha)
		if err != nil {
			return false
		}
		if Wirelength(pts, parent) < mstWirelength(pts) {
			return false
		}
		minRadius := 0
		for v := 1; v < len(pts); v++ {
			if d := pts[0].Manhattan(pts[v]); d > minRadius {
				minRadius = d
			}
		}
		return Radius(pts, parent) >= minRadius
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeIsSpanningAndAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomPts(r, 2+r.Intn(15))
		parent, err := Tree(pts, 0.4)
		if err != nil {
			return false
		}
		if parent[0] != -1 {
			return false
		}
		// Every node must reach the root without revisiting a node.
		for v := range parent {
			seen := map[int]bool{}
			for u := v; u != -1; u = parent[u] {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
			if !seen[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadiusDecreasesWithAlphaOnLine(t *testing.T) {
	// Collinear points: MST is the chain (radius = far end), SPT direct.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 30, Y: 0}}
	p0, _ := Tree(pts, 0)
	p1, _ := Tree(pts, 1)
	if Radius(pts, p0) != 30 || Radius(pts, p1) != 30 {
		// On a line the chain is also the SPT; radius identical. Use an
		// off-line configuration for a strict comparison below.
		t.Fatalf("line radii: %d %d", Radius(pts, p0), Radius(pts, p1))
	}
	// A configuration where MST detours: two clusters.
	pts = []geom.Pt{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 1}, {X: 0, Y: 3}}
	p0, _ = Tree(pts, 0)
	p1, _ = Tree(pts, 1)
	if Radius(pts, p1) > Radius(pts, p0) {
		t.Errorf("alpha=1 radius %d exceeds alpha=0 radius %d", Radius(pts, p1), Radius(pts, p0))
	}
	if Wirelength(pts, p0) > Wirelength(pts, p1) {
		t.Errorf("alpha=0 wirelength %d exceeds alpha=1 wirelength %d",
			Wirelength(pts, p0), Wirelength(pts, p1))
	}
}
