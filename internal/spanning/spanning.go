// Package spanning builds Prim–Dijkstra tradeoff spanning trees (Alpert,
// Hu, Huang, Kahng, Karger, TCAD 1995), the Stage-1 construction of the
// paper: a hybrid between Prim's minimum spanning tree and Dijkstra's
// shortest-path tree controlled by a parameter alpha in [0,1]. alpha = 0
// yields the MST (minimum wirelength); alpha = 1 yields the shortest-path
// tree (minimum radius); the paper's experiments use alpha = 0.4.
package spanning

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Tree computes the Prim–Dijkstra tradeoff tree over the given terminals in
// the Manhattan metric. pts[0] is the source. It returns parent[i] = the
// index of node i's parent (parent[0] = -1).
//
// A non-tree node v is attached greedily, minimizing
//
//	alpha * pathlen(u) + dist(u, v)
//
// over tree nodes u, where pathlen(u) is the length of the tree path from
// the source to u. The implementation is the O(n^2) label-update form, which
// is appropriate for global nets (tens of pins).
func Tree(pts []geom.Pt, alpha float64) ([]int, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("spanning: no terminals")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("spanning: alpha %v outside [0,1]", alpha)
	}
	parent := make([]int, n)
	pathlen := make([]float64, n) // tree path length from source
	key := make([]float64, n)     // best attachment cost
	best := make([]int, n)        // best attachment parent
	inTree := make([]bool, n)

	for i := range key {
		key[i] = math.Inf(1)
		parent[i] = -1
		best[i] = -1
	}
	// Seed with the source.
	inTree[0] = true
	for v := 1; v < n; v++ {
		d := float64(pts[0].Manhattan(pts[v]))
		key[v] = alpha*0 + d
		best[v] = 0
	}
	for added := 1; added < n; added++ {
		// Pick the cheapest non-tree node.
		pick := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (pick == -1 || key[v] < key[pick]) {
				pick = v
			}
		}
		u := best[pick]
		parent[pick] = u
		pathlen[pick] = pathlen[u] + float64(pts[u].Manhattan(pts[pick]))
		inTree[pick] = true
		// Relax remaining nodes through the new tree node.
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			c := alpha*pathlen[pick] + float64(pts[pick].Manhattan(pts[v]))
			if c < key[v] {
				key[v] = c
				best[v] = pick
			}
		}
	}
	return parent, nil
}

// CostDistanceTree computes a cost-distance tradeoff tree over the given
// terminals in the Manhattan metric (Held & Perner style: greedy attachment
// under a wire-cost plus weighted source-path-length objective). pts[0] is
// the source. It returns parent[i] = the index of node i's parent
// (parent[0] = -1).
//
// A non-tree node v is attached greedily, minimizing
//
//	dist(u, v) + w * (pathlen(u) + dist(u, v))
//
// over tree nodes u — the attachment's wire cost plus the source-to-v path
// length it induces, weighted by w. Unlike the Prim–Dijkstra form (Tree),
// the induced detour dist(u, v) is charged inside the distance term too, so
// the objective is the net's cost-distance: total wire plus w times the
// source-to-terminal path lengths. w = 0 yields the MST; growing w
// approaches the shortest-path tree. Callers derive w per net from its
// criticality (the pipeline uses w = 1/L: tighter length constraints lean
// harder toward short source paths).
//
// Ties break deterministically toward the lowest node index (the strict <
// comparisons keep the earliest minimum), so the construction is
// reproducible for cache keys and golden fixtures.
func CostDistanceTree(pts []geom.Pt, w float64) ([]int, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("spanning: no terminals")
	}
	if w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return nil, fmt.Errorf("spanning: cost-distance weight %v outside [0, +inf)", w)
	}
	parent := make([]int, n)
	pathlen := make([]float64, n) // tree path length from source
	key := make([]float64, n)     // best attachment cost
	best := make([]int, n)        // best attachment parent
	inTree := make([]bool, n)

	for i := range key {
		key[i] = math.Inf(1)
		parent[i] = -1
		best[i] = -1
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		d := float64(pts[0].Manhattan(pts[v]))
		key[v] = d + w*d
		best[v] = 0
	}
	for added := 1; added < n; added++ {
		pick := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (pick == -1 || key[v] < key[pick]) {
				pick = v
			}
		}
		u := best[pick]
		parent[pick] = u
		pathlen[pick] = pathlen[u] + float64(pts[u].Manhattan(pts[pick]))
		inTree[pick] = true
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			d := float64(pts[pick].Manhattan(pts[v]))
			if c := d + w*(pathlen[pick]+d); c < key[v] {
				key[v] = c
				best[v] = pick
			}
		}
	}
	return parent, nil
}

// Wirelength returns the total Manhattan length of the tree edges.
func Wirelength(pts []geom.Pt, parent []int) int {
	total := 0
	for v, p := range parent {
		if p >= 0 {
			total += pts[v].Manhattan(pts[p])
		}
	}
	return total
}

// Radius returns the maximum tree path length from the source (node 0) to
// any node, in Manhattan tile units.
func Radius(pts []geom.Pt, parent []int) int {
	depth := make([]int, len(parent))
	maxd := 0
	// Parents always precede children in insertion order, but parent itself
	// is arbitrary order; resolve iteratively.
	var walk func(v int) int
	walk = func(v int) int {
		if parent[v] < 0 {
			return 0
		}
		if depth[v] > 0 {
			return depth[v]
		}
		depth[v] = walk(parent[v]) + pts[v].Manhattan(pts[parent[v]])
		return depth[v]
	}
	for v := range parent {
		if d := walk(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}
