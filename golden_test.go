package rabid

import "testing"

// TestPipelineDeterminism locks the property that the whole pipeline —
// generation, routing, buffering, post-processing — is a pure function of
// (benchmark, options): two runs must agree exactly, stat for stat and
// buffer for buffer. This is what makes the experiment tables and the
// EXPERIMENTS.md numbers reproducible.
func TestPipelineDeterminism(t *testing.T) {
	run := func() *Result {
		c, err := GenerateBenchmark("apte", GenOptions{GridW: 10, GridH: 11})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, BenchmarkParams("apte"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Capacity != b.Capacity {
		t.Fatalf("capacity %d vs %d", a.Capacity, b.Capacity)
	}
	for i := range a.Stages {
		sa, sb := a.Stages[i], b.Stages[i]
		if sa.Buffers != sb.Buffers || sa.Fails != sb.Fails ||
			sa.Overflows != sb.Overflows || sa.WirelenMm != sb.WirelenMm ||
			sa.MaxDelayPs != sb.MaxDelayPs {
			t.Fatalf("stage %d differs: %+v vs %+v", i+1, sa, sb)
		}
	}
	for i := range a.Routes {
		if a.Routes[i].NumNodes() != b.Routes[i].NumNodes() {
			t.Fatalf("net %d route differs", i)
		}
		ab, bb := a.Assignments[i].Buffers, b.Assignments[i].Buffers
		if len(ab) != len(bb) {
			t.Fatalf("net %d buffer count differs", i)
		}
		for k := range ab {
			if ab[k] != bb[k] {
				t.Fatalf("net %d buffer %d differs: %+v vs %+v", i, k, ab[k], bb[k])
			}
		}
	}
}

// TestRouteMCFFacade drives the MCF router through the public API.
func TestRouteMCFFacade(t *testing.T) {
	c, err := GenerateBenchmark("apte", GenOptions{GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RouteMCF(c, 16, MCFOptions{Seed: 1, Phases: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != len(c.Nets) {
		t.Fatalf("routed %d of %d nets", len(res.Routes), len(c.Nets))
	}
	if res.FractionalMaxCongestion <= 0 || res.RoundedMaxCongestion <= 0 {
		t.Error("congestion certificates missing")
	}
}

// TestMCFPipelineParity runs the full pipeline with both Stage-2 routers;
// both must satisfy the problem formulation's constraints.
func TestMCFPipelineParity(t *testing.T) {
	c, err := GenerateBenchmark("hp", GenOptions{GridW: 10, GridH: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, useMCF := range []bool{false, true} {
		p := BenchmarkParams("hp")
		p.UseMCFRouter = useMCF
		res, err := Run(c, p)
		if err != nil {
			t.Fatal(err)
		}
		final := res.Stages[len(res.Stages)-1]
		if final.Overflows != 0 {
			t.Errorf("useMCF=%v: %d overflows", useMCF, final.Overflows)
		}
		if final.BufMax > 1 {
			t.Errorf("useMCF=%v: buffer constraint violated", useMCF)
		}
	}
}
