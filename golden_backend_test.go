package rabid

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/par"
)

// updateBackendGolden regenerates the checked-in backend golden fixtures
// (same idiom as -update-route-golden). Regenerate only when a change is
// *meant* to alter an engine's results, and say so in the PR.
var updateBackendGolden = flag.Bool("update-backend-golden", false, "rewrite testdata/golden_backend fixtures")

// goldenBackendNames are the suite circuits the mcf and rabid+lib engines
// are pinned on (coarse tilings; the rabid engine is already pinned suite-
// wide by testdata/golden_route).
var goldenBackendNames = []string{"apte", "ami49", "playout"}

// goldenBackendResult extends the router golden document with the
// per-buffer gate choices of the library DP (index into Params.Library;
// empty per-net lists for the single-type engines).
type goldenBackendResult struct {
	goldenResult
	Gates [][]int `json:"gates"`
}

func goldenBackendBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var base goldenResult
	if err := json.Unmarshal(goldenBytes(t, res), &base); err != nil {
		t.Fatal(err)
	}
	gr := goldenBackendResult{goldenResult: base}
	for _, a := range res.Assignments {
		gates := []int{}
		gates = append(gates, a.Gates...)
		gr.Gates = append(gr.Gates, gates)
	}
	b, err := json.MarshalIndent(gr, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenBackendEquivalence pins the mcf and rabid+lib engines to
// checked-in fixtures on three suite circuits, and asserts each engine is
// deterministic across Workers 1/2/4/8 — the same byte-identity contract
// the rabid engine carries via testdata/golden_route.
func TestGoldenBackendEquivalence(t *testing.T) {
	engines := []string{"mcf", "rabid+lib"}
	type job struct {
		engine  string
		circuit string
	}
	var jobs []job
	for _, e := range engines {
		for _, name := range goldenBackendNames {
			jobs = append(jobs, job{e, name})
		}
	}
	got := make([][]byte, len(jobs))
	if err := par.ForEach(0, len(jobs), func(i int) error {
		name := jobs[i].circuit
		g := coarseGrids[name]
		c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
		if err != nil {
			return err
		}
		for wi, workers := range []int{1, 2, 4, 8} {
			p := BenchmarkParams(name)
			p.Backend = jobs[i].engine
			p.Workers = workers
			res, err := Plan(context.Background(), c, p)
			if err != nil {
				return err
			}
			b := goldenBackendBytes(t, res)
			if wi == 0 {
				got[i] = b
			} else if !bytes.Equal(got[i], b) {
				t.Errorf("%s/%s: Workers=1 and Workers=%d results differ", jobs[i].engine, name, workers)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		// "+" is awkward in filenames; fixture files use "rabidlib".
		dir := map[string]string{"mcf": "mcf", "rabid+lib": "rabidlib"}[j.engine]
		path := filepath.Join("testdata", "golden_backend", dir, j.circuit+".json")
		if *updateBackendGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got[i], 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (regenerate deliberately with -update-backend-golden)", err)
		}
		if !bytes.Equal(want, got[i]) {
			t.Errorf("%s/%s: result differs from golden fixture %s (engines must stay byte-deterministic)", j.engine, j.circuit, path)
		}
	}
}
