package rabid

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	c, err := GenerateBenchmark("apte", GenOptions{GridW: 10, GridH: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, BenchmarkParams("apte"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	final := res.Stages[3]
	if final.Buffers == 0 {
		t.Error("no buffers inserted")
	}
	if final.Overflows != 0 {
		t.Errorf("%d overflows remain", final.Overflows)
	}
}

func TestSuiteAndSpecLookup(t *testing.T) {
	if len(Suite()) != 10 {
		t.Errorf("suite size %d", len(Suite()))
	}
	if _, err := BenchmarkSpec("playout"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkSpec("bogus"); err == nil {
		t.Error("bogus spec accepted")
	}
	if _, err := GenerateBenchmark("bogus", GenOptions{}); err == nil {
		t.Error("bogus generate accepted")
	}
}

func TestCircuitJSONRoundTripThroughFacade(t *testing.T) {
	c, err := GenerateBenchmark("hp", GenOptions{GridW: 10, GridH: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCircuit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || len(got.Nets) != len(c.Nets) {
		t.Error("round trip lost data")
	}
}

func TestRunBBPThroughFacade(t *testing.T) {
	c, err := GenerateBenchmark("hp", GenOptions{GridW: 10, GridH: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBBP(c.DecomposeTwoPin(), 20, Default018(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MTAP < 0 || res.WirelenMm <= 0 {
		t.Error("BBP stats missing")
	}
}

func TestTableDispatch(t *testing.T) {
	tb, err := Table(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "apte") {
		t.Error("table 1 missing apte")
	}
	if _, err := Table(9, nil); err == nil {
		t.Error("table 9 accepted")
	}
}
