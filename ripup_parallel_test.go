package rabid

import (
	"bytes"
	"testing"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/par"
)

// TestRipupParallelDeterminismSuite is the acceptance gate of the
// speculative parallel rip-up engine, in the PR 1 determinism-suite style:
// every suite circuit, at Workers 1/2/4/8, must produce a byte-identical
// full result (stage stats, route trees node for node, buffer
// assignments) AND a byte-identical observer event stream. Run under
// -race in CI, this doubles as the data-race gate for the speculative
// workers' shared-graph reads.
func TestRipupParallelDeterminismSuite(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	names := append(append([]string{}, exp.CBLNames...), exp.RandomNames...)
	if testing.Short() {
		names = names[:3]
	}
	if err := par.ForEach(0, len(names), func(i int) error {
		name := names[i]
		g := coarseGrids[name]
		c, err := GenerateBenchmark(name, GenOptions{GridW: g[0], GridH: g[1]})
		if err != nil {
			return err
		}
		var refRes, refEvs []byte
		for _, workers := range workerCounts {
			var evBuf bytes.Buffer
			sink := obs.NewJSONLines(&evBuf)
			p := BenchmarkParams(name)
			p.Workers = workers
			p.Observer = sink
			res, err := Run(c, p)
			if err != nil {
				return err
			}
			if err := sink.Err(); err != nil {
				return err
			}
			rb := goldenBytes(t, res)
			if workers == workerCounts[0] {
				refRes, refEvs = rb, evBuf.Bytes()
				continue
			}
			if !bytes.Equal(rb, refRes) {
				t.Errorf("%s: Workers=%d result differs from Workers=1", name, workers)
			}
			if !bytes.Equal(evBuf.Bytes(), refEvs) {
				t.Errorf("%s: Workers=%d event stream differs from Workers=1", name, workers)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
