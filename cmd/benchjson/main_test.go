package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/route
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReroute-8         	   19454	     55129 ns/op	       5 B/op	       0 allocs/op
BenchmarkRipupPass-8       	     186	   6877608 ns/op	    2587 B/op	       2 allocs/op
BenchmarkBufferAwarePathKernel/astar-8 	    4155	    305207 ns/op	      1807 pops/op	      5843 relaxations/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/route	5.336s
pkg: repro
BenchmarkRunSuite 	       1	 737029046 ns/op	185101016 B/op	 2833688 allocs/op
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("host fingerprint not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	// Sorted by (pkg, name): repro before repro/internal/route.
	if rep.Benchmarks[0].Name != "BenchmarkRunSuite" {
		t.Errorf("sort order wrong: first is %s", rep.Benchmarks[0].Name)
	}
	var reroute *Benchmark
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkReroute" {
			reroute = &rep.Benchmarks[i]
		}
	}
	if reroute == nil {
		t.Fatal("BenchmarkReroute missing (GOMAXPROCS suffix not stripped?)")
	}
	if reroute.Iters != 19454 || reroute.NsPerOp != 55129 || reroute.BPerOp != 5 || reroute.AllocsOp != 0 {
		t.Errorf("BenchmarkReroute fields: %+v", *reroute)
	}
	for i := range rep.Benchmarks {
		if b := rep.Benchmarks[i]; b.Name == "BenchmarkBufferAwarePathKernel/astar" {
			if b.PopsOp != 1807 || b.RelaxOp != 5843 {
				t.Errorf("custom wavefront metrics not captured: %+v", b)
			}
			return
		}
	}
	t.Error("kernel-matrix benchmark missing from parse")
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no-benchmark input accepted")
	}
}

func TestParseLineNonBench(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken-8 notanumber 12 ns/op"); ok {
		t.Error("malformed iteration count accepted")
	}
	if _, ok := parseLine("BenchmarkNoMetrics-8 12"); ok {
		t.Error("line without ns/op accepted")
	}
}

// writeReport serializes a Report to a temp file for compareReports.
func writeReport(t *testing.T, name string, rep Report) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareRegressionGate: -maxregress fails a gated benchmark past the
// threshold, spares unmatched and within-threshold ones, and stands down
// entirely when the reports come from different CPUs.
func TestCompareRegressionGate(t *testing.T) {
	cpu := "TestCPU @ 2.0GHz"
	oldPath := writeReport(t, "old.json", Report{CPU: cpu, Benchmarks: []Benchmark{
		{Name: "BenchmarkReroute", Iters: 1, NsPerOp: 1000},
		{Name: "BenchmarkOther", Iters: 1, NsPerOp: 1000},
	}})
	slow := Report{CPU: cpu, Benchmarks: []Benchmark{
		{Name: "BenchmarkReroute", Iters: 1, NsPerOp: 1300},
		{Name: "BenchmarkOther", Iters: 1, NsPerOp: 1300},
	}}
	newPath := writeReport(t, "new.json", slow)
	gate := regexp.MustCompile(`^BenchmarkReroute$`)

	var sb strings.Builder
	if err := compareReports(oldPath, newPath, 10, gate, &sb); err == nil {
		t.Error("30% regression of a gated benchmark passed a 10% gate")
	} else if !strings.Contains(err.Error(), "BenchmarkReroute") || strings.Contains(err.Error(), "BenchmarkOther") {
		t.Errorf("gate error names the wrong benchmarks: %v", err)
	}
	// Within threshold: passes.
	okPath := writeReport(t, "ok.json", Report{CPU: cpu, Benchmarks: []Benchmark{
		{Name: "BenchmarkReroute", Iters: 1, NsPerOp: 1050},
		{Name: "BenchmarkOther", Iters: 1, NsPerOp: 9000},
	}})
	if err := compareReports(oldPath, okPath, 10, gate, &sb); err != nil {
		t.Errorf("5%% regression failed a 10%% gate: %v", err)
	}
	// Different CPU fingerprint: gate stands down, report only.
	slow.CPU = "OtherCPU @ 3.0GHz"
	crossPath := writeReport(t, "cross.json", slow)
	sb.Reset()
	if err := compareReports(oldPath, crossPath, 10, gate, &sb); err != nil {
		t.Errorf("cross-CPU comparison gated: %v", err)
	}
	if !strings.Contains(sb.String(), "regression gate disabled") {
		t.Error("cross-CPU stand-down not announced in the report")
	}
	// Report-only mode (maxregress 0) never fails.
	if err := compareReports(oldPath, newPath, 0, nil, &sb); err != nil {
		t.Errorf("report-only compare failed: %v", err)
	}
}
