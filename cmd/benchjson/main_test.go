package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/route
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReroute-8         	   19454	     55129 ns/op	       5 B/op	       0 allocs/op
BenchmarkRipupPass-8       	     186	   6877608 ns/op	    2587 B/op	       2 allocs/op
PASS
ok  	repro/internal/route	5.336s
pkg: repro
BenchmarkRunSuite 	       1	 737029046 ns/op	185101016 B/op	 2833688 allocs/op
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("host fingerprint not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	// Sorted by (pkg, name): repro before repro/internal/route.
	if rep.Benchmarks[0].Name != "BenchmarkRunSuite" {
		t.Errorf("sort order wrong: first is %s", rep.Benchmarks[0].Name)
	}
	var reroute *Benchmark
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkReroute" {
			reroute = &rep.Benchmarks[i]
		}
	}
	if reroute == nil {
		t.Fatal("BenchmarkReroute missing (GOMAXPROCS suffix not stripped?)")
	}
	if reroute.Iters != 19454 || reroute.NsPerOp != 55129 || reroute.BPerOp != 5 || reroute.AllocsOp != 0 {
		t.Errorf("BenchmarkReroute fields: %+v", *reroute)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no-benchmark input accepted")
	}
}

func TestParseLineNonBench(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken-8 notanumber 12 ns/op"); ok {
		t.Error("malformed iteration count accepted")
	}
	if _, ok := parseLine("BenchmarkNoMetrics-8 12"); ok {
		t.Error("line without ns/op accepted")
	}
}
