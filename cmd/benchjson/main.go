// Command benchjson converts `go test -bench` text output into a stable
// JSON document, and compares two such documents.
//
//	go test -run '^$' -bench . -benchmem ./internal/route | benchjson -o BENCH_route.json
//	benchjson -compare baseline.json current.json
//
// The JSON form is what the repo checks in as benchmark baselines
// (BENCH_route.json) and what CI uploads as artifacts: one object with the
// host fingerprint lines go test prints (goos/goarch/pkg/cpu) and a
// name-sorted benchmark list, so diffs between runs are line-local.
//
// Compare mode prints a per-benchmark delta table (ns/op, B/op, allocs/op)
// and by default exits 0: wall-clock numbers from shared CI runners are too
// noisy to fail a build on unconditionally. -maxregress N turns the
// comparison into a gate for the benchmarks matching -gate (a Go regexp;
// default all): any matched benchmark whose ns/op regressed by more than N
// percent fails the run. The gate automatically stands down — report only,
// exit 0 — when the two reports carry different CPU fingerprints, because a
// cross-machine wall-clock delta measures the hardware, not the change.
// The allocation contracts that must not regress regardless of hardware
// are enforced by tests (internal/route/alloc_test.go), not here.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. PopsOp and RelaxOp capture the
// router's custom b.ReportMetric columns (pops/op, relaxations/op) from
// the search-kernel matrix benchmarks — the checked-in baseline is where
// the kernel pop-count win is recorded, so these survive the conversion.
type Benchmark struct {
	Name     string  `json:"name"`
	Pkg      string  `json:"pkg,omitempty"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	PopsOp   float64 `json:"pops_per_op,omitempty"`
	RelaxOp  float64 `json:"relaxations_per_op,omitempty"`
}

// Report is the checked-in/artifact document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	compare := flag.Bool("compare", false, "compare two JSON reports: benchjson -compare old.json new.json")
	maxRegress := flag.Float64("maxregress", 0, "with -compare: fail when a gated benchmark's ns/op regresses by more than this percent (0 = report only)")
	gate := flag.String("gate", "", "with -maxregress: regexp selecting the benchmark names to gate (default: all)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-maxregress pct [-gate regexp]] old.json new.json")
			os.Exit(2)
		}
		var gateRE *regexp.Regexp
		if *gate != "" {
			re, err := regexp.Compile(*gate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -gate:", err)
				os.Exit(2)
			}
			gateRE = re
		}
		if err := compareReports(flag.Arg(0), flag.Arg(1), *maxRegress, gateRE, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output. Unknown lines are ignored so
// test chatter (PASS, ok, warm-up logs) passes through harmlessly.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		a, b := rep.Benchmarks[i], rep.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return rep, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkReroute-8   27428   43007 ns/op   1 B/op   0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix so baselines compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, seen = v, true
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		case "pops/op":
			b.PopsOp = v
		case "relaxations/op":
			b.RelaxOp = v
		}
	}
	return b, seen
}

func load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(buf, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports prints old-vs-new deltas for every benchmark present in
// both reports, and names the ones present in only one. With maxRegress > 0
// it also gates: a benchmark matching gateRE (nil = all) whose ns/op
// regressed by more than maxRegress percent is an error — unless the two
// reports were taken on different CPUs, where wall-clock deltas measure
// the hardware and the gate stands down to report-only.
func compareReports(oldPath, newPath string, maxRegress float64, gateRE *regexp.Regexp, w io.Writer) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	gating := maxRegress > 0
	if gating && oldRep.CPU != newRep.CPU {
		fmt.Fprintf(w, "note: baseline CPU %q != current CPU %q; regression gate disabled (report only)\n",
			oldRep.CPU, newRep.CPU)
		gating = false
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	var violations []string
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s %12s %12.0f\n",
				nb.Name, "(new)", nb.NsPerOp, "", "", nb.AllocsOp)
			continue
		}
		delete(oldBy, nb.Name)
		delta := "n/a"
		if ob.NsPerOp > 0 {
			pct := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			delta = fmt.Sprintf("%+.1f%%", pct)
			if gating && pct > maxRegress && (gateRE == nil || gateRE.MatchString(nb.Name)) {
				violations = append(violations,
					fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% > %+.1f%%)", nb.Name, ob.NsPerOp, nb.NsPerOp, pct, maxRegress))
			}
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %8s %12.0f %12.0f\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta, ob.AllocsOp, nb.AllocsOp)
	}
	gone := make([]string, 0, len(oldBy))
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-28s %14.0f %14s\n", name, oldBy[name].NsPerOp, "(removed)")
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchmark regression gate (> %.0f%%):\n  %s", maxRegress, strings.Join(violations, "\n  "))
	}
	return nil
}
