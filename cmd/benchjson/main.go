// Command benchjson converts `go test -bench` text output into a stable
// JSON document, and compares two such documents.
//
//	go test -run '^$' -bench . -benchmem ./internal/route | benchjson -o BENCH_route.json
//	benchjson -compare baseline.json current.json
//
// The JSON form is what the repo checks in as benchmark baselines
// (BENCH_route.json) and what CI uploads as artifacts: one object with the
// host fingerprint lines go test prints (goos/goarch/pkg/cpu) and a
// name-sorted benchmark list, so diffs between runs are line-local.
//
// Compare mode prints a per-benchmark delta table (ns/op, B/op, allocs/op)
// and exits 0; it is a reporting tool, not a gate — wall-clock numbers from
// shared CI runners are too noisy to fail a build on. The allocation
// contracts that must not regress are enforced by tests
// (internal/route/alloc_test.go), not by this comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name     string  `json:"name"`
	Pkg      string  `json:"pkg,omitempty"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

// Report is the checked-in/artifact document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	compare := flag.Bool("compare", false, "compare two JSON reports: benchjson -compare old.json new.json")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		if err := compareReports(flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output. Unknown lines are ignored so
// test chatter (PASS, ok, warm-up logs) passes through harmlessly.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		a, b := rep.Benchmarks[i], rep.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return rep, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkReroute-8   27428   43007 ns/op   1 B/op   0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix so baselines compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, seen = v, true
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		}
	}
	return b, seen
}

func load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(buf, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports prints old-vs-new deltas for every benchmark present in
// both reports, and names the ones present in only one.
func compareReports(oldPath, newPath string, w io.Writer) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s %12s %12.0f\n",
				nb.Name, "(new)", nb.NsPerOp, "", "", nb.AllocsOp)
			continue
		}
		delete(oldBy, nb.Name)
		delta := "n/a"
		if ob.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nb.NsPerOp-ob.NsPerOp)/ob.NsPerOp)
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %8s %12.0f %12.0f\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta, ob.AllocsOp, nb.AllocsOp)
	}
	gone := make([]string, 0, len(oldBy))
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-28s %14.0f %14s\n", name, oldBy[name].NsPerOp, "(removed)")
	}
	return nil
}
