package main

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestSelectChecks locks the -only flag contract: valid names select, an
// unknown name is a usage error listing the whole catalog (the CLI exits 2
// on it), and an empty selection is rejected.
func TestSelectChecks(t *testing.T) {
	sel, err := selectChecks("wallclock, ctxflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || !sel["wallclock"] || !sel["ctxflow"] {
		t.Errorf("selectChecks = %v, want {wallclock, ctxflow}", sel)
	}

	if sel, err := selectChecks(""); sel != nil || err != nil {
		t.Errorf("empty -only should mean all checks, got %v, %v", sel, err)
	}

	_, err = selectChecks("wallclock,notacheck")
	if err == nil {
		t.Fatal("unknown check name accepted")
	}
	if !strings.Contains(err.Error(), `"notacheck"`) {
		t.Errorf("error does not name the bad check: %v", err)
	}
	for _, c := range lint.Checks() {
		if !strings.Contains(err.Error(), c) {
			t.Errorf("error does not list valid check %q: %v", c, err)
		}
	}

	if _, err := selectChecks(" , ,"); err == nil {
		t.Error("blank-only -only accepted")
	}
}
