// Command rabidlint runs the repository's static-analysis suite: the six
// intraprocedural determinism and numeric-safety checks, the
// interprocedural call-graph layer (transitive wallclock/globalrand/
// maprange taint, specpure, ctxflow), and — with -escape — the
// compiler-backed allocfree gate (see internal/lint and DESIGN.md "Static
// analysis").
//
// Usage:
//
//	rabidlint [-json] [-sarif file] [-only checks] [-escape] [-workers n] [packages]
//
// With no arguments (or "./...") the whole module is linted. Package
// arguments restrict *reporting*: "./internal/route" lints one package,
// "./internal/route/..." a subtree (the whole module is always loaded,
// since type information needs every dependency).
//
// -only takes a comma-separated subset of the check catalog
// (rabidlint -only wallclock,ctxflow); unknown names are a usage error
// listing the valid IDs. -escape additionally runs the allocfree escape
// gate over the hot-set manifest (internal/lint/hotset.txt; override with
// -hotset). -sarif writes the findings as SARIF 2.1.0 to the named file in
// addition to the stdout report. -workers caps the parse worker count
// (findings are identical at every value; <1 = one per CPU).
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to `file`")
	onlyChecks := flag.String("only", "", "run only these `checks` (comma-separated; see -help for catalog)")
	escape := flag.Bool("escape", false, "also run the compiler-backed allocfree escape gate")
	hotset := flag.String("hotset", "", "hot-set manifest for -escape (default: internal/lint/hotset.txt under the module root)")
	workers := flag.Int("workers", 0, "parse worker count (<1 = one per CPU; findings are identical at every value)")
	root := flag.String("C", ".", "module root directory to lint")
	flag.Parse()

	checks, err := selectChecks(*onlyChecks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabidlint:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadWorkers(*root, nil, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabidlint:", err)
		os.Exit(2)
	}
	only, err := selectPackages(mod, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabidlint:", err)
		os.Exit(2)
	}
	findings := lint.RunChecks(mod, only, checks)
	if *escape && (len(checks) == 0 || checks["allocfree"]) {
		efs, err := lint.EscapeGate(mod, *hotset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rabidlint:", err)
			os.Exit(2)
		}
		findings = lint.SortFindings(append(findings, efs...))
	}

	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err == nil {
			err = lint.WriteSARIF(f, findings)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rabidlint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		// Always an array (never null) so downstream tooling can index
		// unconditionally.
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "rabidlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rabidlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// selectChecks parses the -only flag against the check catalog. nil means
// "every check"; an unknown name is a usage error naming the valid IDs.
func selectChecks(arg string) (map[string]bool, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	valid := map[string]bool{}
	for _, c := range lint.Checks() {
		valid[c] = true
	}
	sel := map[string]bool{}
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			return nil, fmt.Errorf("unknown check %q in -only (valid: %s)",
				name, strings.Join(lint.Checks(), ", "))
		}
		sel[name] = true
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-only names no checks (valid: %s)", strings.Join(lint.Checks(), ", "))
	}
	return sel, nil
}

// selectPackages maps CLI patterns to a set of module import paths. nil
// means "everything".
func selectPackages(mod *lint.Module, args []string) (map[string]bool, error) {
	if len(args) == 0 {
		return nil, nil
	}
	only := map[string]bool{}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "all" {
			return nil, nil
		}
		rec := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			rec, arg = true, rest
		}
		rel := filepath.ToSlash(filepath.Clean(arg))
		ip := mod.Path
		if rel != "." {
			ip = mod.Path + "/" + strings.TrimPrefix(rel, "./")
		}
		matched := false
		for _, pkg := range mod.Pkgs {
			if pkg.ImportPath == ip || (rec && strings.HasPrefix(pkg.ImportPath, ip+"/")) {
				only[pkg.ImportPath] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no package in %s", arg, mod.Path)
		}
	}
	return only, nil
}
