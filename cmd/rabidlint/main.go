// Command rabidlint runs the repository's static-analysis suite: six
// determinism and numeric-safety checks over every package of the module
// (see internal/lint and DESIGN.md "Static analysis").
//
// Usage:
//
//	rabidlint [-json] [packages]
//
// With no arguments (or "./...") the whole module is linted. Package
// arguments restrict *reporting*: "./internal/route" lints one package,
// "./internal/route/..." a subtree (the whole module is always loaded,
// since type information needs every dependency).
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	root := flag.String("C", ".", "module root directory to lint")
	flag.Parse()

	mod, err := lint.Load(*root, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabidlint:", err)
		os.Exit(2)
	}
	only, err := selectPackages(mod, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabidlint:", err)
		os.Exit(2)
	}
	findings := lint.Run(mod, only)

	if *jsonOut {
		// Always an array (never null) so downstream tooling can index
		// unconditionally.
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "rabidlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rabidlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// selectPackages maps CLI patterns to a set of module import paths. nil
// means "everything".
func selectPackages(mod *lint.Module, args []string) (map[string]bool, error) {
	if len(args) == 0 {
		return nil, nil
	}
	only := map[string]bool{}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "all" {
			return nil, nil
		}
		rec := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			rec, arg = true, rest
		}
		rel := filepath.ToSlash(filepath.Clean(arg))
		ip := mod.Path
		if rel != "." {
			ip = mod.Path + "/" + strings.TrimPrefix(rel, "./")
		}
		matched := false
		for _, pkg := range mod.Pkgs {
			if pkg.ImportPath == ip || (rec && strings.HasPrefix(pkg.ImportPath, ip+"/")) {
				only[pkg.ImportPath] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no package in %s", arg, mod.Path)
		}
	}
	return only, nil
}
