// Command metricscheck validates a metrics JSON file produced by the
// -metrics flag of cmd/rabid or cmd/tables (obs.Metrics.WriteJSON). It is
// the CI gate of the benchmark-smoke job: the run must have produced one
// completed span per pipeline stage with a positive, finite duration, and
// no exported value may be non-finite (the JSON encoder writes NaN/±Inf
// as null, so a null anywhere is a telemetry bug). -counters names
// counters that must additionally be present — the Stage-2 speculation
// totals, for instance, are emitted even on a zero-pass run, so their
// absence means the engine was never threaded through.
//
// -quantiles additionally gates the exported histogram quantiles: every
// histogram with at least one sample must carry finite p50/p95/p99 in
// monotone order (p50 <= p95 <= p99) inside [min, max] — the invariants
// obs.Histogram.Quantile guarantees by construction, so a violation means
// the quantile math or its serialization regressed.
//
// Usage:
//
//	metricscheck [-stages 4] [-counters a.1,b.2] [-quantiles] metrics.json
//
// Exits non-zero with a diagnostic on the first violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// span mirrors one obs.SpanStats entry; pointers distinguish a null
// (non-finite or missing) field from a zero one.
type span struct {
	Count   *int64   `json:"count"`
	TotalNs *float64 `json:"total_ns"`
}

// dump mirrors obs.Metrics.WriteJSON. Counter, gauge, and histogram values
// decode as *float64 so the encoder's null (NaN/±Inf) stays detectable.
type dump struct {
	Counters   map[string]*float64  `json:"counters"`
	Gauges     map[string]*float64  `json:"gauges"`
	Histograms map[string]histogram `json:"histograms"`
	Spans      map[string]span      `json:"spans"`
}

type histogram struct {
	Count   *int64     `json:"count"`
	Sum     *float64   `json:"sum"`
	Min     *float64   `json:"min"`
	Max     *float64   `json:"max"`
	P50     *float64   `json:"p50"`
	P95     *float64   `json:"p95"`
	P99     *float64   `json:"p99"`
	Buckets []*float64 `json:"buckets"`
}

func main() {
	stages := flag.Int("stages", 4, "number of pipeline stages that must have completed spans (stage.1..stage.N)")
	counters := flag.String("counters", "", "comma-separated counter keys that must be present (and finite)")
	quantiles := flag.Bool("quantiles", false, "require finite monotone p50/p95/p99 on every non-empty histogram")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-stages N] [-counters a.1,b.2] [-quantiles] metrics.json")
		os.Exit(2)
	}
	var required []string
	if *counters != "" {
		required = strings.Split(*counters, ",")
	}
	if err := check(flag.Arg(0), *stages, required, *quantiles); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d stage spans, %d required counters, all values finite)\n", flag.Arg(0), *stages, len(required))
}

func check(path string, stages int, required []string, quantiles bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var d dump
	if err := json.Unmarshal(raw, &d); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for k, v := range d.Counters {
		if v == nil {
			return fmt.Errorf("counter %q is non-finite", k)
		}
	}
	for k, v := range d.Gauges {
		if v == nil {
			return fmt.Errorf("gauge %q is non-finite", k)
		}
	}
	for k, h := range d.Histograms {
		if h.Sum == nil || h.Min == nil || h.Max == nil {
			return fmt.Errorf("histogram %q has a non-finite sum/min/max", k)
		}
		for i, b := range h.Buckets {
			if b == nil {
				return fmt.Errorf("histogram %q bucket %d is non-finite", k, i)
			}
		}
		if quantiles {
			if err := checkQuantiles(k, h); err != nil {
				return err
			}
		}
	}
	for k, s := range d.Spans {
		switch {
		case s.Count == nil || s.TotalNs == nil:
			return fmt.Errorf("span %q has null fields", k)
		case *s.Count < 1:
			return fmt.Errorf("span %q count = %d, want >= 1", k, *s.Count)
		case *s.TotalNs <= 0:
			return fmt.Errorf("span %q total_ns = %g, want > 0", k, *s.TotalNs)
		}
	}
	if s, ok := d.Spans["run"]; !ok {
		return fmt.Errorf("no run span recorded")
	} else if *s.Count < 1 {
		return fmt.Errorf("run span count = %d, want >= 1", *s.Count)
	}
	for i := 1; i <= stages; i++ {
		k := fmt.Sprintf("stage.%d", i)
		if _, ok := d.Spans[k]; !ok {
			return fmt.Errorf("no completed span for %s: stage missing from the run", k)
		}
	}
	for _, k := range required {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		v, ok := d.Counters[k]
		if !ok {
			return fmt.Errorf("required counter %q missing from the run", k)
		}
		if v == nil {
			return fmt.Errorf("required counter %q is non-finite", k)
		}
	}
	return nil
}

// checkQuantiles enforces the -quantiles gate on one histogram: a sampled
// histogram must export finite p50/p95/p99, monotone and inside [min, max].
func checkQuantiles(k string, h histogram) error {
	if h.Count == nil {
		return fmt.Errorf("histogram %q has a null count", k)
	}
	if *h.Count < 1 {
		return nil // empty histograms carry no meaningful quantiles
	}
	qs := []struct {
		name string
		v    *float64
	}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}}
	for _, q := range qs {
		if q.v == nil {
			return fmt.Errorf("histogram %q %s is missing or non-finite", k, q.name)
		}
	}
	if !(*h.P50 <= *h.P95 && *h.P95 <= *h.P99) {
		return fmt.Errorf("histogram %q quantiles not monotone: p50=%g p95=%g p99=%g", k, *h.P50, *h.P95, *h.P99)
	}
	if *h.P50 < *h.Min || *h.P99 > *h.Max {
		return fmt.Errorf("histogram %q quantiles outside [min, max]: p50=%g p99=%g range [%g, %g]",
			k, *h.P50, *h.P99, *h.Min, *h.Max)
	}
	return nil
}
