// Command rabidd is the planning service daemon: it serves the RABID
// pipeline and the BBP/FR baseline over HTTP with bounded admission, a
// content-addressed result cache, per-request deadlines, and graceful
// drain on SIGTERM/SIGINT.
//
// Usage:
//
//	rabidd -addr :8080 [-journal runs.jsonl] [-access-log access.jsonl]
//
// Endpoints (see internal/server):
//
//	POST   /v1/plan             {"circuit": {...}, "params": {...}, "timeout_ms": 60000}
//	POST   /v1/bbp              {"circuit": {...}, "capacity": 2}
//	POST   /v1/jobs             async submit of a /v1/plan body; 202 + job id
//	GET    /v1/jobs/{id}        job status; embeds the result when done
//	GET    /v1/jobs/{id}/events live SSE stream of the run's obs events
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/healthz          liveness, admission pressure, cache and job load
//	GET    /v1/metricz          obs.Metrics snapshot (cmd/metricscheck-compatible)
//
// -journal appends one replayable record per completed async job to a
// JSONL file cmd/journal can list, show, and replay. -access-log writes
// one structured JSON line per request (request id, route, status,
// latency). Both are disabled — at zero cost — when unset.
//
// On SIGTERM or SIGINT the daemon stops accepting connections, lets
// in-flight requests finish (bounded by -drain), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rabidd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 0, "concurrent planning runs (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 16, "admissions waiting beyond max-inflight before 429 (negative = none)")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-request deadline (bodies may set timeout_ms)")
		cacheSize   = flag.Int("cache-entries", 128, "content-addressed result cache bound (LRU)")
		maxBody     = flag.Int64("max-body", netlist.MaxJSONBytes, "request body size cap in bytes")
		workers     = flag.Int("workers", 0, "per-run worker pool bound (0 = GOMAXPROCS; never changes results)")
		drain       = flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
		maxJobs     = flag.Int("max-jobs", 64, "async job table bound (queued + running + retained finished)")
		jobTTL      = flag.Duration("job-ttl", 15*time.Minute, "retention of finished async job records")
		journalPath = flag.String("journal", "", "append-only run journal file (JSONL; empty = disabled)")
		accessPath  = flag.String("access-log", "", "structured JSON access-log file (empty = disabled)")
	)
	flag.Parse()

	cfg := server.Config{
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheSize,
		MaxBodyBytes:   *maxBody,
		Workers:        *workers,
		MaxJobs:        *maxJobs,
		JobTTL:         *jobTTL,
	}
	if *journalPath != "" {
		jw, err := journal.Open(*journalPath)
		if err != nil {
			return fmt.Errorf("opening journal: %w", err)
		}
		defer jw.Close()
		cfg.Journal = jw
	}
	if *accessPath != "" {
		f, err := os.OpenFile(*accessPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening access log: %w", err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	s := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "rabidd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// ListenAndServe never returns nil; surface bind failures etc.
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "rabidd: shutdown signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "rabidd: drained, exiting")
	return nil
}
