// Command rabidd is the planning service daemon: it serves the RABID
// pipeline and the BBP/FR baseline over HTTP with bounded admission, a
// content-addressed result cache, per-request deadlines, and graceful
// drain on SIGTERM/SIGINT.
//
// Usage:
//
//	rabidd -addr :8080
//
// Endpoints (see internal/server):
//
//	POST /v1/plan     {"circuit": {...}, "params": {...}, "timeout_ms": 60000}
//	POST /v1/bbp      {"circuit": {...}, "capacity": 2}
//	GET  /v1/healthz  liveness and admission pressure
//	GET  /v1/metricz  obs.Metrics snapshot (cmd/metricscheck-compatible)
//
// On SIGTERM or SIGINT the daemon stops accepting connections, lets
// in-flight requests finish (bounded by -drain), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/netlist"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rabidd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 0, "concurrent planning runs (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 16, "admissions waiting beyond max-inflight before 429 (negative = none)")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-request deadline (bodies may set timeout_ms)")
		cacheSize   = flag.Int("cache-entries", 128, "content-addressed result cache bound (LRU)")
		maxBody     = flag.Int64("max-body", netlist.MaxJSONBytes, "request body size cap in bytes")
		workers     = flag.Int("workers", 0, "per-run worker pool bound (0 = GOMAXPROCS; never changes results)")
		drain       = flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	)
	flag.Parse()

	s := server.New(server.Config{
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheSize,
		MaxBodyBytes:   *maxBody,
		Workers:        *workers,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "rabidd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// ListenAndServe never returns nil; surface bind failures etc.
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "rabidd: shutdown signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "rabidd: drained, exiting")
	return nil
}
