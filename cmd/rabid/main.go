// Command rabid runs the four-stage RABID heuristic on a benchmark circuit
// (or a circuit JSON file) and prints stage-by-stage statistics in the
// layout of the paper's Table II.
//
// Usage:
//
//	rabid -bench apte                      # run a Table I benchmark
//	rabid -bench apte -grid 10x11          # coarser tiling (Table IV style)
//	rabid -bench xerox -sites 600          # smaller site budget (Table III)
//	rabid -circuit my.json                 # run a circuit from JSON
//	rabid -bench apte -twopin              # two-pin decomposition (Table V)
//
// Planning backends (see DESIGN.md "Planning backends"):
//
//	rabid -bench apte -backend rabid+lib   # buffer-library Stage-3 DP
//	rabid -bench apte -backend mcf         # multicommodity-flow engine
//	rabid -bench apte -backend rabid+lib -library lib.json  # custom library
//
// Telemetry and profiling:
//
//	rabid -bench apte -events run.jsonl    # structured event trace (JSON lines)
//	rabid -bench apte -metrics m.json      # aggregated metrics dump (JSON)
//	rabid -bench apte -summary             # human-readable metrics summary
//	rabid -bench apte -cpuprofile cpu.pb   # pprof CPU profile
//	rabid -bench apte -memprofile mem.pb   # pprof heap profile (written at exit)
//	rabid -bench apte -trace trace.out     # runtime/trace execution trace
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	rabid "repro"
	"repro/internal/textable"
	"repro/internal/viz"
)

// config collects every flag of one invocation.
type config struct {
	bench, circuit string
	grid           string
	sites          int
	seed           int64
	twopin         bool
	annealed       bool
	alpha          float64
	passes         int
	workers        int
	backend        string
	library        string
	kernel         string
	steiner        string
	mcfPhases      int
	mcfEpsilon     float64
	svgOut         string
	heat           bool
	jsonOut        string
	retime         int
	// Telemetry and profiling outputs.
	eventsOut  string
	metricsOut string
	summary    bool
	cpuProfile string
	memProfile string
	traceOut   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.bench, "bench", "", "suite benchmark name (apte, xerox, hp, ami33, ami49, playout, ac3, xc5, hc7, a9c3)")
	flag.StringVar(&cfg.circuit, "circuit", "", "path to a circuit JSON file (alternative to -bench)")
	flag.StringVar(&cfg.grid, "grid", "", "override tiling as WxH (e.g. 20x22); must keep the chip aspect ratio")
	flag.IntVar(&cfg.sites, "sites", 0, "override the total buffer-site budget")
	flag.Int64Var(&cfg.seed, "seed", 0, "override the generation seed")
	flag.BoolVar(&cfg.twopin, "twopin", false, "decompose multi-sink nets into two-pin nets before planning")
	flag.Float64Var(&cfg.alpha, "alpha", 0.4, "Prim-Dijkstra radius/wirelength tradeoff")
	flag.IntVar(&cfg.passes, "passes", 3, "maximum Stage-2 rip-up-and-reroute passes")
	flag.IntVar(&cfg.workers, "workers", 0, "worker goroutines for the per-net stages (0 = all CPUs; results are identical for every value)")
	flag.StringVar(&cfg.backend, "backend", "", "planning engine: "+strings.Join(rabid.Backends(), ", ")+" (default rabid)")
	flag.StringVar(&cfg.library, "library", "", "buffer-library JSON file for -backend rabid+lib: out_res in ohms, in_cap in farads, intrinsic in seconds (default: the built-in 0.18 um library)")
	flag.StringVar(&cfg.kernel, "kernel", "", "router wavefront kernel: "+strings.Join(rabid.SearchKernels(), ", ")+" (default heap; dial is byte-identical, astar returns identical path costs with fewer pops)")
	flag.StringVar(&cfg.steiner, "steiner", "", "Stage-1 construction: "+strings.Join(rabid.SteinerModes(), ", ")+" (default pd; costdist is the Held-Perner cost-distance tree)")
	flag.IntVar(&cfg.mcfPhases, "mcf-phases", 0, "mcf engine: number of fractional-routing phases (0 = engine default)")
	flag.Float64Var(&cfg.mcfEpsilon, "mcf-epsilon", 0, "mcf engine: dual-update epsilon in (0,1) (0 = engine default)")
	flag.StringVar(&cfg.svgOut, "svg", "", "write an SVG of the final plan (blocks, congestion, routes, buffers)")
	flag.BoolVar(&cfg.heat, "heat", false, "print ASCII wire-congestion and buffer-density maps")
	flag.BoolVar(&cfg.annealed, "annealed", false, "place benchmark blocks with the simulated annealer instead of guillotine packing")
	flag.StringVar(&cfg.jsonOut, "json", "", "write a machine-readable run report (JSON) to this file")
	flag.IntVar(&cfg.retime, "retime", 0, "after planning, re-buffer the N most critical nets with the timing-driven pass")
	flag.StringVar(&cfg.eventsOut, "events", "", "write the run's telemetry event stream (JSON lines) to this file")
	flag.StringVar(&cfg.metricsOut, "metrics", "", "write aggregated run metrics (JSON) to this file")
	flag.BoolVar(&cfg.summary, "summary", false, "print a human-readable metrics summary after the run")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	flag.StringVar(&cfg.traceOut, "trace", "", "write a runtime/trace execution trace to this file")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rabid:", err)
		os.Exit(1)
	}
}

func run(cfg config) (err error) {
	c, params, err := load(cfg)
	if err != nil {
		return err
	}
	params.Alpha = cfg.alpha
	params.RouteOpt.Alpha = cfg.alpha
	params.MaxRipupPasses = cfg.passes
	params.Workers = cfg.workers
	params.Backend = cfg.backend
	params.SearchKernel = cfg.kernel
	params.SteinerMode = cfg.steiner
	params.MCFPhases = cfg.mcfPhases
	params.MCFEpsilon = cfg.mcfEpsilon
	if cfg.library != "" {
		b, err := os.ReadFile(cfg.library)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &params.Library); err != nil {
			return fmt.Errorf("parsing -library %s: %w", cfg.library, err)
		}
	}
	if params, err = rabid.NormalizeParams(params); err != nil {
		return err
	}
	if cfg.twopin {
		c = c.DecomposeTwoPin()
	}

	stopProfiles, err := rabid.StartProfiles(cfg.cpuProfile, cfg.traceOut, cfg.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	// Assemble the observer from the requested sinks; all-nil collapses to
	// nil and the pipeline runs with zero telemetry overhead.
	var observers []rabid.Observer
	var events *rabid.JSONObserver
	if cfg.eventsOut != "" {
		f, err := os.Create(cfg.eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events = rabid.NewJSONObserver(f)
		observers = append(observers, events)
	}
	var metrics *rabid.MetricsObserver
	if cfg.metricsOut != "" || cfg.summary {
		metrics = rabid.NewMetricsObserver()
		observers = append(observers, metrics)
	}
	params.Observer = rabid.MultiObserver(observers...)

	fmt.Printf("circuit %s: %d nets, %d sinks, %dx%d tiles of %.0f um, %d buffer sites\n",
		c.Name, len(c.Nets), c.TotalSinks(), c.GridW, c.GridH, c.TileUm, c.TotalBufferSites())
	if desc, ok := rabid.DescribeBackend(params.Backend); ok {
		fmt.Printf("backend %s: %s\n", params.Backend, desc)
	}
	res, err := rabid.Plan(context.Background(), c, params)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated edge capacity W(e) = %d\n\n", res.Capacity)
	t := textable.New("stage", "wc max", "wc avg", "overflow", "bd max", "bd avg",
		"#bufs", "#fails", "wl(mm)", "dmax(ps)", "davg(ps)", "cpu(s)")
	for _, s := range res.Stages {
		t.AddF(fmt.Sprintf("%d", s.Stage), s.WireMax, s.WireAvg, s.Overflows,
			s.BufMax, s.BufAvg, s.Buffers, s.Fails,
			int(s.WirelenMm+0.5), int(s.MaxDelayPs+0.5), int(s.AvgDelayPs+0.5),
			fmt.Sprintf("%.1f", s.CPU.Seconds()))
	}
	fmt.Print(t.String())
	if cfg.heat {
		fmt.Println("\nwire congestion (max incident w/W per tile):")
		fmt.Print(viz.ASCII(viz.WireHeat(res.Graph), c.GridW, c.GridH))
		fmt.Println("\nbuffer density (b/B per tile):")
		fmt.Print(viz.ASCII(viz.BufferHeat(res.Graph), c.GridW, c.GridH))
	}
	if cfg.retime > 0 {
		reports, err := rabid.RetimeCriticalNets(res, cfg.retime, rabid.DefaultLibrary018())
		if err != nil {
			return err
		}
		fmt.Printf("\ntiming-driven re-buffering of the %d most critical nets:\n", len(reports))
		rt := textable.New("net", "before(ps)", "after(ps)", "old bufs", "new bufs")
		for _, r := range reports {
			rt.AddF(fmt.Sprintf("%d", r.NetIndex), int(r.BeforeMaxPs+0.5), int(r.AfterMaxPs+0.5),
				r.OldBuffers, len(r.NewBuffers))
		}
		fmt.Print(rt.String())
	}
	if events != nil {
		if err := events.Err(); err != nil {
			return fmt.Errorf("writing %s: %w", cfg.eventsOut, err)
		}
		fmt.Printf("\nwrote %s\n", cfg.eventsOut)
	}
	if metrics != nil && cfg.metricsOut != "" {
		f, err := os.Create(cfg.metricsOut)
		if err != nil {
			return err
		}
		if err := metrics.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.metricsOut)
	}
	if metrics != nil && cfg.summary {
		fmt.Println("\nrun telemetry summary:")
		if err := metrics.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	if cfg.jsonOut != "" {
		rep, err := res.Report()
		if err != nil {
			return err
		}
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.jsonOut)
	}
	if cfg.svgOut != "" {
		svg := viz.SVG(c, viz.SVGOptions{Graph: res.Graph, Routes: res.Routes})
		if err := os.WriteFile(cfg.svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.svgOut)
	}
	return nil
}

func load(cfg config) (*rabid.Circuit, rabid.Params, error) {
	switch {
	case cfg.bench != "" && cfg.circuit != "":
		return nil, rabid.Params{}, fmt.Errorf("use either -bench or -circuit, not both")
	case cfg.circuit != "":
		f, err := os.Open(cfg.circuit)
		if err != nil {
			return nil, rabid.Params{}, err
		}
		defer f.Close()
		c, err := rabid.ReadCircuit(f)
		if err != nil {
			return nil, rabid.Params{}, err
		}
		return c, rabid.DefaultParams(), nil
	case cfg.bench != "":
		opt := rabid.GenOptions{Sites: cfg.sites, Seed: cfg.seed, Annealed: cfg.annealed}
		if cfg.grid != "" {
			if _, err := fmt.Sscanf(cfg.grid, "%dx%d", &opt.GridW, &opt.GridH); err != nil {
				return nil, rabid.Params{}, fmt.Errorf("bad -grid %q (want WxH): %v", cfg.grid, err)
			}
		}
		c, err := rabid.GenerateBenchmark(cfg.bench, opt)
		if err != nil {
			return nil, rabid.Params{}, err
		}
		return c, rabid.BenchmarkParams(cfg.bench), nil
	default:
		return nil, rabid.Params{}, fmt.Errorf("one of -bench or -circuit is required")
	}
}
