// Command rabid runs the four-stage RABID heuristic on a benchmark circuit
// (or a circuit JSON file) and prints stage-by-stage statistics in the
// layout of the paper's Table II.
//
// Usage:
//
//	rabid -bench apte                      # run a Table I benchmark
//	rabid -bench apte -grid 10x11          # coarser tiling (Table IV style)
//	rabid -bench xerox -sites 600          # smaller site budget (Table III)
//	rabid -circuit my.json                 # run a circuit from JSON
//	rabid -bench apte -twopin              # two-pin decomposition (Table V)
package main

import (
	"flag"
	"fmt"
	"os"

	rabid "repro"
	"repro/internal/textable"
	"repro/internal/viz"
)

func main() {
	var (
		bench   = flag.String("bench", "", "suite benchmark name (apte, xerox, hp, ami33, ami49, playout, ac3, xc5, hc7, a9c3)")
		circuit = flag.String("circuit", "", "path to a circuit JSON file (alternative to -bench)")
		grid    = flag.String("grid", "", "override tiling as WxH (e.g. 20x22); must keep the chip aspect ratio")
		sites   = flag.Int("sites", 0, "override the total buffer-site budget")
		seed    = flag.Int64("seed", 0, "override the generation seed")
		twopin  = flag.Bool("twopin", false, "decompose multi-sink nets into two-pin nets before planning")
		alpha   = flag.Float64("alpha", 0.4, "Prim-Dijkstra radius/wirelength tradeoff")
		passes  = flag.Int("passes", 3, "maximum Stage-2 rip-up-and-reroute passes")
		workers = flag.Int("workers", 0, "worker goroutines for the per-net stages (0 = all CPUs; results are identical for every value)")
		svgOut  = flag.String("svg", "", "write an SVG of the final plan (blocks, congestion, routes, buffers)")
		heat    = flag.Bool("heat", false, "print ASCII wire-congestion and buffer-density maps")
		anneal  = flag.Bool("annealed", false, "place benchmark blocks with the simulated annealer instead of guillotine packing")
		jsonOut = flag.String("json", "", "write a machine-readable run report (JSON) to this file")
		retime  = flag.Int("retime", 0, "after planning, re-buffer the N most critical nets with the timing-driven pass")
	)
	flag.Parse()
	if err := run(*bench, *circuit, *grid, *sites, *seed, *anneal, *twopin, *alpha, *passes, *workers, *svgOut, *heat, *jsonOut, *retime); err != nil {
		fmt.Fprintln(os.Stderr, "rabid:", err)
		os.Exit(1)
	}
}

func run(bench, circuitPath, grid string, sites int, seed int64, annealed, twopin bool, alpha float64, passes, workers int, svgOut string, heat bool, jsonOut string, retime int) error {
	c, params, err := load(bench, circuitPath, grid, sites, seed, annealed)
	if err != nil {
		return err
	}
	params.Alpha = alpha
	params.RouteOpt.Alpha = alpha
	params.MaxRipupPasses = passes
	params.Workers = workers
	if twopin {
		c = c.DecomposeTwoPin()
	}
	fmt.Printf("circuit %s: %d nets, %d sinks, %dx%d tiles of %.0f um, %d buffer sites\n",
		c.Name, len(c.Nets), c.TotalSinks(), c.GridW, c.GridH, c.TileUm, c.TotalBufferSites())
	res, err := rabid.Run(c, params)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated edge capacity W(e) = %d\n\n", res.Capacity)
	t := textable.New("stage", "wc max", "wc avg", "overflow", "bd max", "bd avg",
		"#bufs", "#fails", "wl(mm)", "dmax(ps)", "davg(ps)", "cpu(s)")
	for _, s := range res.Stages {
		t.AddF(fmt.Sprintf("%d", s.Stage), s.WireMax, s.WireAvg, s.Overflows,
			s.BufMax, s.BufAvg, s.Buffers, s.Fails,
			int(s.WirelenMm+0.5), int(s.MaxDelayPs+0.5), int(s.AvgDelayPs+0.5),
			fmt.Sprintf("%.1f", s.CPU.Seconds()))
	}
	fmt.Print(t.String())
	if heat {
		fmt.Println("\nwire congestion (max incident w/W per tile):")
		fmt.Print(viz.ASCII(viz.WireHeat(res.Graph), c.GridW, c.GridH))
		fmt.Println("\nbuffer density (b/B per tile):")
		fmt.Print(viz.ASCII(viz.BufferHeat(res.Graph), c.GridW, c.GridH))
	}
	if retime > 0 {
		reports, err := rabid.RetimeCriticalNets(res, retime, rabid.DefaultLibrary018())
		if err != nil {
			return err
		}
		fmt.Printf("\ntiming-driven re-buffering of the %d most critical nets:\n", len(reports))
		rt := textable.New("net", "before(ps)", "after(ps)", "old bufs", "new bufs")
		for _, r := range reports {
			rt.AddF(fmt.Sprintf("%d", r.NetIndex), int(r.BeforeMaxPs+0.5), int(r.AfterMaxPs+0.5),
				r.OldBuffers, len(r.NewBuffers))
		}
		fmt.Print(rt.String())
	}
	if jsonOut != "" {
		rep, err := res.Report()
		if err != nil {
			return err
		}
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
	if svgOut != "" {
		svg := viz.SVG(c, viz.SVGOptions{Graph: res.Graph, Routes: res.Routes})
		if err := os.WriteFile(svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", svgOut)
	}
	return nil
}

func load(bench, circuitPath, grid string, sites int, seed int64, annealed bool) (*rabid.Circuit, rabid.Params, error) {
	switch {
	case bench != "" && circuitPath != "":
		return nil, rabid.Params{}, fmt.Errorf("use either -bench or -circuit, not both")
	case circuitPath != "":
		f, err := os.Open(circuitPath)
		if err != nil {
			return nil, rabid.Params{}, err
		}
		defer f.Close()
		c, err := rabid.ReadCircuit(f)
		if err != nil {
			return nil, rabid.Params{}, err
		}
		return c, rabid.DefaultParams(), nil
	case bench != "":
		opt := rabid.GenOptions{Sites: sites, Seed: seed, Annealed: annealed}
		if grid != "" {
			if _, err := fmt.Sscanf(grid, "%dx%d", &opt.GridW, &opt.GridH); err != nil {
				return nil, rabid.Params{}, fmt.Errorf("bad -grid %q (want WxH): %v", grid, err)
			}
		}
		c, err := rabid.GenerateBenchmark(bench, opt)
		if err != nil {
			return nil, rabid.Params{}, err
		}
		return c, rabid.BenchmarkParams(bench), nil
	default:
		return nil, rabid.Params{}, fmt.Errorf("one of -bench or -circuit is required")
	}
}
